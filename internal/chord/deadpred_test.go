package chord_test

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chord"
)

// TestDeadPredecessorPurged is the regression test for the
// checkpred-side cleanup: when the predecessor fails its liveness ping,
// the node must clear the predecessor pointer AND purge the dead ref
// from its successor list and fingers immediately. Before the fix, the
// dead ref lingered until stabilization propagated the failure around
// the ring — so the test parks stabilization on a 30 s period and gives
// the checkpred loop a 5 s budget that only the purge path can meet.
func TestDeadPredecessorPurged(t *testing.T) {
	r := newRing(t, 7)
	defer r.shutdown()
	cfg := chord.Config{
		StabilizeEvery:  30 * time.Second,
		FixFingersEvery: 30 * time.Second,
		CheckPredEvery:  500 * time.Millisecond,
	}
	const initial = 8
	for i := 0; i < initial; i++ {
		r.addNode(cfg)
	}
	chord.WarmStart(r.nodes)
	for _, n := range r.nodes {
		n.Start()
	}
	r.e.RunFor(2 * time.Second)

	// The victim is the lowest-ID node; its ring successor watches it as
	// predecessor. WarmStart put the victim in every nearby successor
	// list, including the watcher's.
	live := r.sortedLive()
	victim, watcher := live[0], live[1]
	found := false
	for _, s := range watcher.SuccessorList() {
		if s.ID == victim.ID() {
			found = true
		}
	}
	if !found {
		t.Fatal("setup: victim not in watcher's successor list")
	}
	var kicks atomic.Int64
	watcher.SetRingChange(func() { kicks.Add(1) })

	var victimIdx int
	for i, n := range r.nodes {
		if n == victim {
			victimIdx = i
		}
	}
	r.hosts[victimIdx].Endpoint().Crash()
	r.e.RunFor(5 * time.Second) // several checkpred rounds, zero stabilize rounds

	if pred := watcher.Predecessor(); !pred.IsZero() && pred.ID == victim.ID() {
		t.Fatal("dead predecessor still installed after checkpred rounds")
	}
	for _, s := range watcher.SuccessorList() {
		if s.ID == victim.ID() {
			t.Fatal("dead predecessor still in successor list: successor(k) targets a corpse")
		}
	}
	for _, f := range watcher.FingerTable() {
		if !f.IsZero() && f.ID == victim.ID() {
			t.Fatal("dead predecessor still in finger table")
		}
	}
	if kicks.Load() == 0 {
		t.Fatal("ring-change notification did not fire on the purge")
	}
}
