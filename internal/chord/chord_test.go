package chord_test

import (
	"fmt"
	"math"
	"sort"
	"testing"
	"time"

	"repro/internal/chord"
	"repro/internal/ids"
	"repro/internal/sim"
	"repro/internal/simhost"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// ring is a simulated Chord deployment for tests.
type ring struct {
	t     *testing.T
	e     *sim.Engine
	net   *simnet.Net
	nodes []*chord.Node
	hosts []*simhost.Host
}

func newRing(t *testing.T, seed int64) *ring {
	e := sim.NewEngine(seed)
	net := simnet.New(e)
	net.Latency = simnet.UniformLatency{Min: 5 * time.Millisecond, Max: 20 * time.Millisecond}
	return &ring{t: t, e: e, net: net}
}

func (r *ring) addNode(cfg chord.Config) *chord.Node {
	addr := simnet.Addr(fmt.Sprintf("n%03d", len(r.nodes)))
	h := simhost.New(r.net.NewEndpoint(addr))
	n := chord.New(h, cfg)
	r.nodes = append(r.nodes, n)
	r.hosts = append(r.hosts, h)
	return n
}

// do runs fn inside a proc on node i's host and drives the sim until it
// finishes (plus any background work already queued).
func (r *ring) do(i int, fn func(rt transport.Runtime)) {
	done := false
	r.hosts[i].Go("test", func(rt transport.Runtime) {
		defer func() { done = true }()
		fn(rt)
	})
	for !done {
		r.e.RunFor(time.Second)
	}
}

func (r *ring) shutdown() {
	r.e.Shutdown()
}

// sortedLive returns live nodes ordered by ID.
func (r *ring) sortedLive() []*chord.Node {
	var out []*chord.Node
	for i, n := range r.nodes {
		if r.hosts[i].Up() {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID().Less(out[j].ID()) })
	return out
}

// checkRing verifies that following successor pointers from the lowest
// node visits every live node exactly once in ID order.
func (r *ring) checkRing() error {
	live := r.sortedLive()
	for i, n := range live {
		want := live[(i+1)%len(live)]
		if got := n.Successor(); got.ID != want.ID() {
			return fmt.Errorf("node %s successor = %s, want %s", n.ID().Short(), got.ID.Short(), want.ID().Short())
		}
		wantPred := live[(i-1+len(live))%len(live)]
		if got := n.Predecessor(); got.IsZero() || got.ID != wantPred.ID() {
			return fmt.Errorf("node %s predecessor = %s, want %s", n.ID().Short(), got, wantPred.ID().Short())
		}
	}
	return nil
}

func TestSingleNodeOwnsEverything(t *testing.T) {
	r := newRing(t, 1)
	defer r.shutdown()
	n := r.addNode(chord.Config{})
	n.Create()
	for _, key := range []string{"a", "b", "c"} {
		key := key
		r.do(0, func(rt transport.Runtime) {
			owner, hops, err := n.Lookup(rt, ids.HashString(key))
			if err != nil {
				t.Errorf("lookup: %v", err)
				return
			}
			if owner.ID != n.ID() || hops != 0 {
				t.Errorf("owner=%s hops=%d", owner, hops)
			}
		})
	}
}

func TestSequentialJoinsFormCorrectRing(t *testing.T) {
	r := newRing(t, 2)
	defer r.shutdown()
	const N = 12
	first := r.addNode(chord.Config{})
	first.Create()
	first.Start()
	for i := 1; i < N; i++ {
		n := r.addNode(chord.Config{})
		r.do(i, func(rt transport.Runtime) {
			if err := n.Join(rt, "n000"); err != nil {
				t.Fatalf("join %d: %v", i, err)
			}
		})
		n.Start()
		r.e.RunFor(3 * time.Second) // let stabilization splice it in
	}
	r.e.RunFor(30 * time.Second)
	if err := r.checkRing(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentJoins(t *testing.T) {
	r := newRing(t, 3)
	defer r.shutdown()
	const N = 8
	first := r.addNode(chord.Config{})
	first.Create()
	first.Start()
	for i := 1; i < N; i++ {
		n := r.addNode(chord.Config{})
		i := i
		r.hosts[i].Go("join", func(rt transport.Runtime) {
			// All join through n000 at roughly the same time.
			rt.Sleep(time.Duration(i) * 10 * time.Millisecond)
			if err := n.Join(rt, "n000"); err != nil {
				t.Errorf("join %d: %v", i, err)
				return
			}
			n.Start()
		})
	}
	r.e.RunFor(60 * time.Second)
	if err := r.checkRing(); err != nil {
		t.Fatal(err)
	}
}

func TestWarmStartMatchesReference(t *testing.T) {
	r := newRing(t, 4)
	defer r.shutdown()
	for i := 0; i < 32; i++ {
		r.addNode(chord.Config{})
	}
	sorted := chord.WarmStart(r.nodes)
	if err := r.checkRing(); err != nil {
		t.Fatal(err)
	}
	// Every key's lookup agrees with the sorted-order reference.
	for trial := 0; trial < 50; trial++ {
		key := ids.HashString(fmt.Sprintf("key-%d", trial))
		want := sorted[chord.OwnerIndex(sorted, key)].ID()
		r.do(trial%len(r.nodes), func(rt transport.Runtime) {
			owner, _, err := r.nodes[trial%len(r.nodes)].Lookup(rt, key)
			if err != nil {
				t.Errorf("lookup: %v", err)
				return
			}
			if owner.ID != want {
				t.Errorf("key %s: owner %s, want %s", key.Short(), owner.ID.Short(), want.Short())
			}
		})
	}
}

func TestLookupHopsLogarithmic(t *testing.T) {
	r := newRing(t, 5)
	defer r.shutdown()
	const N = 128
	for i := 0; i < N; i++ {
		r.addNode(chord.Config{})
	}
	chord.WarmStart(r.nodes)
	total, count := 0, 0
	for trial := 0; trial < 100; trial++ {
		src := trial % N
		key := ids.HashString(fmt.Sprintf("hopkey-%d", trial))
		r.do(src, func(rt transport.Runtime) {
			_, hops, err := r.nodes[src].Lookup(rt, key)
			if err != nil {
				t.Errorf("lookup: %v", err)
				return
			}
			total += hops
			count++
		})
	}
	avg := float64(total) / float64(count)
	// Chord's expected path length is ~0.5*log2(N) = 3.5 for N=128.
	if avg > 1.5*math.Log2(N) {
		t.Fatalf("average hops %.2f too high for N=%d", avg, N)
	}
	t.Logf("avg hops = %.2f (0.5*log2 N = %.2f)", avg, 0.5*math.Log2(N))
}

func TestRingHealsAfterFailures(t *testing.T) {
	r := newRing(t, 6)
	defer r.shutdown()
	const N = 16
	for i := 0; i < N; i++ {
		r.addNode(chord.Config{})
	}
	chord.WarmStart(r.nodes)
	for _, n := range r.nodes {
		n.Start()
	}
	r.e.RunFor(5 * time.Second)
	// Kill 3 nodes, including adjacent ones in ID order.
	sorted := r.sortedLive()
	victims := []*chord.Node{sorted[2], sorted[3], sorted[9]}
	for _, v := range victims {
		for i, n := range r.nodes {
			if n == v {
				r.hosts[i].Endpoint().Crash()
			}
		}
	}
	r.e.RunFor(60 * time.Second)
	if err := r.checkRing(); err != nil {
		t.Fatal(err)
	}
	// Lookups from a survivor still resolve to live owners.
	liveIdx := -1
	for i, h := range r.hosts {
		if h.Up() {
			liveIdx = i
			break
		}
	}
	live := r.sortedLive()
	for trial := 0; trial < 20; trial++ {
		key := ids.HashString(fmt.Sprintf("post-fail-%d", trial))
		r.do(liveIdx, func(rt transport.Runtime) {
			owner, _, err := r.nodes[liveIdx].Lookup(rt, key)
			if err != nil {
				t.Errorf("lookup after failures: %v", err)
				return
			}
			found := false
			for _, n := range live {
				if n.ID() == owner.ID {
					found = true
				}
			}
			if !found {
				t.Errorf("owner %s is not a live node", owner)
			}
		})
	}
}

func TestLookupCountsRecorded(t *testing.T) {
	r := newRing(t, 7)
	defer r.shutdown()
	for i := 0; i < 8; i++ {
		r.addNode(chord.Config{})
	}
	chord.WarmStart(r.nodes)
	r.do(0, func(rt transport.Runtime) {
		for i := 0; i < 5; i++ {
			if _, _, err := r.nodes[0].Lookup(rt, ids.HashString(fmt.Sprint(i))); err != nil {
				t.Errorf("lookup: %v", err)
			}
		}
	})
	if r.nodes[0].Lookups != 5 {
		t.Fatalf("Lookups = %d", r.nodes[0].Lookups)
	}
}

func TestRefString(t *testing.T) {
	var z chord.Ref
	if !z.IsZero() || z.String() != "<none>" {
		t.Fatal("zero Ref misbehaves")
	}
	ref := chord.Ref{ID: ids.HashString("x"), Addr: "host:1"}
	if ref.IsZero() {
		t.Fatal("non-zero Ref reported zero")
	}
}

func TestOwnerIndexWraps(t *testing.T) {
	r := newRing(t, 8)
	defer r.shutdown()
	for i := 0; i < 8; i++ {
		r.addNode(chord.Config{})
	}
	sorted := chord.WarmStart(r.nodes)
	// A key above the highest ID wraps to index 0.
	var top ids.ID
	for i := range top {
		top[i] = 0xff
	}
	if got := chord.OwnerIndex(sorted, top); got != 0 {
		// Only if no node has the max ID, which SHA-1 of our names won't.
		t.Fatalf("OwnerIndex(max) = %d", got)
	}
}

func TestJoinUnreachableBootstrap(t *testing.T) {
	r := newRing(t, 9)
	defer r.shutdown()
	n := r.addNode(chord.Config{})
	r.do(0, func(rt transport.Runtime) {
		if err := n.Join(rt, "nowhere"); err == nil {
			t.Error("join to unreachable bootstrap succeeded")
		}
	})
}
