package chord_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/chord"
	"repro/internal/ids"
	"repro/internal/transport"
)

// TestContinuousChurn interleaves joins and crashes over several
// minutes of virtual time and checks that the ring re-converges and
// lookups remain correct afterwards — the DHT resilience the desktop
// grid's robustness story rests on.
func TestContinuousChurn(t *testing.T) {
	r := newRing(t, 42)
	defer r.shutdown()
	const initial = 16
	for i := 0; i < initial; i++ {
		r.addNode(chord.Config{})
	}
	chord.WarmStart(r.nodes)
	for _, n := range r.nodes {
		n.Start()
	}
	r.e.RunFor(5 * time.Second)

	// Six churn events: three joins, three crashes, 10 s apart.
	for k := 0; k < 3; k++ {
		n := r.addNode(chord.Config{})
		idx := len(r.nodes) - 1
		r.do(idx, func(rt transport.Runtime) {
			for try := 0; try < 5; try++ {
				if err := n.Join(rt, "n000"); err == nil {
					n.Start()
					return
				}
				rt.Sleep(2 * time.Second)
			}
			t.Errorf("join %d failed", idx)
		})
		r.e.RunFor(10 * time.Second)
		victim := 1 + k*4 // spread victims; never n000 (test driver)
		r.hosts[victim].Endpoint().Crash()
		r.e.RunFor(10 * time.Second)
	}
	r.e.RunFor(90 * time.Second)

	if err := r.checkRing(); err != nil {
		t.Fatalf("ring not converged after churn: %v", err)
	}
	// Lookup correctness against the reference owner order.
	live := r.sortedLive()
	liveIdx := -1
	for i, h := range r.hosts {
		if h.Up() {
			liveIdx = i
			break
		}
	}
	for trial := 0; trial < 25; trial++ {
		key := ids.HashString(fmt.Sprintf("churn-key-%d", trial))
		want := live[chord.OwnerIndex(live, key)].ID()
		r.do(liveIdx, func(rt transport.Runtime) {
			owner, _, err := r.nodes[liveIdx].Lookup(rt, key)
			if err != nil {
				t.Errorf("lookup: %v", err)
				return
			}
			if owner.ID != want {
				t.Errorf("key %s: owner %s, want %s", key.Short(), owner.ID.Short(), want.Short())
			}
		})
	}
}

// TestLookupWithMessageLoss verifies lookups retry around transient
// packet loss.
func TestLookupWithMessageLoss(t *testing.T) {
	r := newRing(t, 43)
	defer r.shutdown()
	for i := 0; i < 24; i++ {
		r.addNode(chord.Config{})
	}
	chord.WarmStart(r.nodes)
	r.net.DropProb = 0.05
	r.net.CallTimeout = 500 * time.Millisecond
	okCount := 0
	for trial := 0; trial < 20; trial++ {
		key := ids.HashString(fmt.Sprintf("lossy-%d", trial))
		src := trial % len(r.nodes)
		r.do(src, func(rt transport.Runtime) {
			if _, _, err := r.nodes[src].Lookup(rt, key); err == nil {
				okCount++
			}
		})
	}
	// 5% loss with per-hop retries: the vast majority must succeed.
	if okCount < 16 {
		t.Fatalf("only %d/20 lookups succeeded under 5%% loss", okCount)
	}
}
