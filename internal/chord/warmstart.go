package chord

import (
	"sort"

	"repro/internal/ids"
)

// WarmStart wires a set of nodes into a fully-converged ring: exact
// predecessors, successor lists, and finger tables. Large experiments
// use it to skip simulating thousands of sequential joins; the periodic
// maintenance loops then keep the ring converged. The return value is
// the nodes sorted by ring identifier.
func WarmStart(nodes []*Node) []*Node {
	sorted := make([]*Node, len(nodes))
	copy(sorted, nodes)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].id.Less(sorted[j].id) })

	n := len(sorted)
	refs := make([]Ref, n)
	for i, nd := range sorted {
		refs[i] = nd.Ref()
	}
	// ownerOf returns the successor of key among the sorted refs.
	ownerOf := func(key ids.ID) Ref {
		i := sort.Search(n, func(i int) bool { return !refs[i].ID.Less(key) })
		if i == n {
			i = 0 // wrap: key is above all ids
		}
		return refs[i]
	}

	for i, nd := range sorted {
		nd.mu.Lock()
		nd.pred = refs[(i-1+n)%n]
		listLen := nd.cfg.SuccessorListLen
		if listLen > n {
			listLen = n
		}
		nd.succs = nd.succs[:0]
		for j := 1; j <= listLen; j++ {
			nd.succs = append(nd.succs, refs[(i+j)%n])
		}
		if len(nd.succs) == 0 {
			nd.succs = []Ref{nd.Ref()}
		}
		for k := 0; k < ids.Bits; k++ {
			nd.fingers[k] = ownerOf(nd.id.AddPow2(k))
		}
		nd.mu.Unlock()
	}
	return sorted
}

// OwnerIndex returns the index within a WarmStart-sorted node slice of
// the node owning key. It is the reference implementation lookups are
// tested against.
func OwnerIndex(sorted []*Node, key ids.ID) int {
	n := len(sorted)
	i := sort.Search(n, func(i int) bool { return !sorted[i].id.Less(key) })
	if i == n {
		return 0
	}
	return i
}
