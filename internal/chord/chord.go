// Package chord implements the Chord distributed hash table (Stoica et
// al., SIGCOMM 2001): a ring of nodes ordered by 160-bit identifier,
// where the node owning key k is successor(k), the first node whose
// identifier is >= k on the ring. Lookups are iterative and route via
// finger tables in O(log N) hops; successor lists and periodic
// stabilization repair the ring under churn.
//
// The paper's desktop grid uses Chord both to map jobs to owner nodes
// (via GUID insertion) and as the substrate for the RN-Tree.
package chord

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/transport"
)

// Ref identifies a Chord node: its ring identifier and dialable address.
// The zero Ref is "no node".
type Ref struct {
	ID   ids.ID
	Addr transport.Addr
}

// IsZero reports whether the Ref names no node.
func (r Ref) IsZero() bool { return r.Addr == "" }

func (r Ref) String() string {
	if r.IsZero() {
		return "<none>"
	}
	return fmt.Sprintf("%s@%s", r.ID.Short(), r.Addr)
}

// Config tunes a Chord node. The zero value selects the defaults.
type Config struct {
	// SuccessorListLen is the number of successors kept for fault
	// tolerance (default 8).
	SuccessorListLen int
	// StabilizeEvery is the period of the successor-repair loop
	// (default 500 ms).
	StabilizeEvery time.Duration
	// FixFingersEvery is the period of the finger-repair loop
	// (default 500 ms).
	FixFingersEvery time.Duration
	// FingersPerRound is how many finger entries each repair round
	// refreshes (default 8).
	FingersPerRound int
	// CheckPredEvery is the period of the predecessor liveness check
	// (default 1 s).
	CheckPredEvery time.Duration
	// MaxHops aborts runaway lookups (default 120).
	MaxHops int
	// Obs, when non-nil, receives lookup metrics (hop histograms and
	// counters). Purely observational: no routing decision reads it.
	Obs *obs.Obs
}

func (c Config) withDefaults() Config {
	if c.SuccessorListLen == 0 {
		c.SuccessorListLen = 8
	}
	if c.StabilizeEvery == 0 {
		c.StabilizeEvery = 500 * time.Millisecond
	}
	if c.FixFingersEvery == 0 {
		c.FixFingersEvery = 500 * time.Millisecond
	}
	if c.FingersPerRound == 0 {
		c.FingersPerRound = 8
	}
	if c.CheckPredEvery == 0 {
		c.CheckPredEvery = time.Second
	}
	if c.MaxHops == 0 {
		c.MaxHops = 120
	}
	return c
}

// ErrLookupFailed reports a lookup that could not complete (all routes
// failed or the hop limit was exceeded).
var ErrLookupFailed = errors.New("chord: lookup failed")

// RPC message types. All fields are exported for gob encoding.
type (
	// StepReq asks a node to take one iterative-lookup step for Key.
	StepReq struct{ Key ids.ID }
	// StepResp either terminates the lookup (Done, with the Owner) or
	// names the Next node to ask.
	StepResp struct {
		Done  bool
		Owner Ref
		Next  Ref
	}
	// StateReq asks a node for its ring neighborhood.
	StateReq struct{}
	// StateResp carries a node's predecessor and successor list.
	StateResp struct {
		Self  Ref
		Pred  Ref
		Succs []Ref
	}
	// NotifyReq tells a node about a possible new predecessor.
	NotifyReq struct{ Cand Ref }
	// NotifyResp acknowledges a NotifyReq.
	NotifyResp struct{}
	// PingReq probes liveness.
	PingReq struct{}
	// PingResp answers a PingReq.
	PingResp struct{ Self Ref }
)

// Method names registered on the host.
const (
	MStep   = "chord.step"
	MState  = "chord.state"
	MNotify = "chord.notify"
	MPing   = "chord.ping"
)

// Node is one Chord participant. Create with New, then call Create (for
// the first node) or Join, then Start to launch maintenance loops.
//
// All state is guarded by mu; the lock is never held across an RPC.
type Node struct {
	host transport.Host
	id   ids.ID
	cfg  Config

	mu         sync.Mutex
	pred       Ref
	succs      []Ref // succs[0] is the immediate successor; never empty once created/joined
	fingers    [ids.Bits]Ref
	nextFinger int
	started    bool
	ringChange func()

	// Lookups counts completed local lookups; LookupHops sums their hop
	// counts. Read them for the DHT-behaviour experiment.
	Lookups    int64
	LookupHops int64

	// Resolved obs instruments (nil-safe when cfg.Obs is nil).
	mLookups  *obs.Counter
	mFailures *obs.Counter
	mHops     *obs.Histogram
}

// New creates a node bound to host with identity derived from the host
// address, and registers its RPC handlers.
func New(host transport.Host, cfg Config) *Node {
	n := &Node{
		host: host,
		id:   ids.HashString(string(host.Addr())),
		cfg:  cfg.withDefaults(),
	}
	if reg := n.cfg.Obs.Registry(); reg != nil {
		n.mLookups = reg.Counter("chord_lookups_total")
		n.mFailures = reg.Counter("chord_lookup_failures_total")
		n.mHops = reg.Histogram("chord_lookup_hops", obs.DefBucketsHops)
	}
	host.Handle(MStep, n.handleStep)
	host.Handle(MState, n.handleState)
	host.Handle(MNotify, n.handleNotify)
	host.Handle(MPing, n.handlePing)
	return n
}

// ID returns the node's ring identifier.
func (n *Node) ID() ids.ID { return n.id }

// Ref returns the node's own reference.
func (n *Node) Ref() Ref { return Ref{ID: n.id, Addr: n.host.Addr()} }

// Successor returns the current immediate successor.
func (n *Node) Successor() Ref {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.succs) == 0 {
		return Ref{}
	}
	return n.succs[0]
}

// Predecessor returns the current predecessor (possibly zero).
func (n *Node) Predecessor() Ref {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.pred
}

// SetRingChange registers fn to run (outside the node lock) whenever
// this node's ring neighborhood changes: predecessor set or cleared,
// or the successor list rewritten. Layers that re-target state on ring
// position — the replica subsystem's handoff trigger — hook in here
// instead of polling.
func (n *Node) SetRingChange(fn func()) {
	n.mu.Lock()
	n.ringChange = fn
	n.mu.Unlock()
}

func (n *Node) ringChanged() {
	n.mu.Lock()
	fn := n.ringChange
	n.mu.Unlock()
	if fn != nil {
		fn()
	}
}

// SuccessorList returns a copy of the successor list.
func (n *Node) SuccessorList() []Ref {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Ref, len(n.succs))
	copy(out, n.succs)
	return out
}

// Create initializes this node as the sole member of a new ring.
func (n *Node) Create() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.pred = n.Ref()
	n.succs = []Ref{n.Ref()}
}

// Join makes the node a member of the ring that bootstrap belongs to.
// It learns its successor via a lookup through bootstrap; stabilization
// then splices it fully into the ring.
func (n *Node) Join(rt transport.Runtime, bootstrap transport.Addr) error {
	owner, _, err := n.lookupVia(rt, bootstrap, n.id)
	if err != nil {
		return fmt.Errorf("chord: join via %s: %w", bootstrap, err)
	}
	n.mu.Lock()
	n.pred = Ref{}
	n.succs = []Ref{owner}
	n.mu.Unlock()
	return nil
}

// Start launches the periodic maintenance activities on the host.
func (n *Node) Start() {
	n.mu.Lock()
	if n.started {
		n.mu.Unlock()
		return
	}
	n.started = true
	n.mu.Unlock()
	n.host.Go("chord.stabilize", n.stabilizeLoop)
	n.host.Go("chord.fixfingers", n.fixFingersLoop)
	n.host.Go("chord.checkpred", n.checkPredLoop)
}

// Lookup resolves the owner (successor) of key, returning the owner and
// the number of overlay hops taken.
func (n *Node) Lookup(rt transport.Runtime, key ids.ID) (Ref, int, error) {
	// Fast path: we own the key ourselves.
	n.mu.Lock()
	pred := n.pred
	n.mu.Unlock()
	if !pred.IsZero() && ids.BetweenRightIncl(key, pred.ID, n.id) {
		n.countLookup(0)
		return n.Ref(), 0, nil
	}
	owner, hops, err := n.lookupFrom(rt, n.Ref(), key)
	if err == nil {
		n.countLookup(hops)
	} else {
		n.mFailures.Inc()
	}
	return owner, hops, err
}

func (n *Node) countLookup(hops int) {
	n.mu.Lock()
	n.Lookups++
	n.LookupHops += int64(hops)
	n.mu.Unlock()
	n.mLookups.Inc()
	n.mHops.Observe(float64(hops))
}

// lookupVia starts an iterative lookup at a remote bootstrap node whose
// identifier we do not yet know.
func (n *Node) lookupVia(rt transport.Runtime, start transport.Addr, key ids.ID) (Ref, int, error) {
	resp, err := rt.Call(start, MPing, PingReq{})
	if err != nil {
		return Ref{}, 0, err
	}
	return n.lookupFrom(rt, resp.(PingResp).Self, key)
}

// lookupFrom drives the iterative lookup protocol starting at cur.
func (n *Node) lookupFrom(rt transport.Runtime, cur Ref, key ids.ID) (Ref, int, error) {
	hops := 0
	failures := 0
	for hops < n.cfg.MaxHops {
		var resp StepResp
		if cur.Addr == n.host.Addr() {
			resp = n.step(key)
		} else {
			raw, err := rt.Call(cur.Addr, MStep, StepReq{Key: key})
			hops++
			if err != nil {
				failures++
				if failures > 3 {
					return Ref{}, hops, fmt.Errorf("%w: too many route failures (last: %v)", ErrLookupFailed, err)
				}
				// Route around the failure: restart from our own tables,
				// which exclude the dead node once stabilization notices.
				cur = n.Ref()
				continue
			}
			resp = raw.(StepResp)
		}
		if resp.Done {
			return resp.Owner, hops, nil
		}
		if resp.Next.IsZero() || resp.Next == cur {
			return Ref{}, hops, fmt.Errorf("%w: no progress at %s", ErrLookupFailed, cur)
		}
		cur = resp.Next
	}
	return Ref{}, hops, fmt.Errorf("%w: exceeded %d hops", ErrLookupFailed, n.cfg.MaxHops)
}

// step computes one iterative-lookup step from this node's state.
func (n *Node) step(key ids.ID) StepResp {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.succs) == 0 {
		return StepResp{}
	}
	succ := n.succs[0]
	if ids.BetweenRightIncl(key, n.id, succ.ID) {
		return StepResp{Done: true, Owner: succ}
	}
	return StepResp{Next: n.closestPrecedingLocked(key)}
}

// closestPrecedingLocked returns the best next hop for key: the highest
// known node strictly inside (n.id, key). Falls back to the successor,
// which always makes progress when successor pointers are correct.
func (n *Node) closestPrecedingLocked(key ids.ID) Ref {
	best := Ref{}
	consider := func(r Ref) {
		if r.IsZero() || r.ID == n.id {
			return
		}
		if !ids.Between(r.ID, n.id, key) {
			return
		}
		if best.IsZero() || ids.Between(best.ID, n.id, r.ID) {
			best = r
		}
	}
	for i := ids.Bits - 1; i >= 0; i-- {
		consider(n.fingers[i])
	}
	for _, s := range n.succs {
		consider(s)
	}
	if best.IsZero() {
		return n.succs[0]
	}
	return best
}

// --- RPC handlers ---

func (n *Node) handleStep(rt transport.Runtime, from transport.Addr, req any) (any, error) {
	return n.step(req.(StepReq).Key), nil
}

func (n *Node) handleState(rt transport.Runtime, from transport.Addr, req any) (any, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	succs := make([]Ref, len(n.succs))
	copy(succs, n.succs)
	return StateResp{Self: Ref{ID: n.id, Addr: n.host.Addr()}, Pred: n.pred, Succs: succs}, nil
}

func (n *Node) handleNotify(rt transport.Runtime, from transport.Addr, req any) (any, error) {
	cand := req.(NotifyReq).Cand
	n.mu.Lock()
	changed := false
	if n.pred.IsZero() || n.pred.ID == n.id || ids.Between(cand.ID, n.pred.ID, n.id) {
		changed = n.pred != cand
		n.pred = cand
	}
	n.mu.Unlock()
	if changed {
		n.ringChanged()
	}
	return NotifyResp{}, nil
}

func (n *Node) handlePing(rt transport.Runtime, from transport.Addr, req any) (any, error) {
	return PingResp{Self: n.Ref()}, nil
}

// --- maintenance loops ---

func (n *Node) stabilizeLoop(rt transport.Runtime) {
	for {
		rt.Sleep(jittered(rt, n.cfg.StabilizeEvery))
		n.stabilizeOnce(rt)
	}
}

// stabilizeOnce runs one round of the Chord stabilization protocol:
// verify the immediate successor, adopt its predecessor if closer,
// refresh the successor list, and notify the successor about us.
func (n *Node) stabilizeOnce(rt transport.Runtime) {
	self := n.Ref()
	for {
		succ := n.Successor()
		if succ.IsZero() {
			return
		}
		if succ.ID == n.id {
			// Sole member: adopt our predecessor as successor if one
			// appeared (ring of two forming).
			n.mu.Lock()
			changed := false
			if !n.pred.IsZero() && n.pred.ID != n.id {
				n.succs = prependTrim(n.pred, nil, n.cfg.SuccessorListLen)
				changed = true
			}
			n.mu.Unlock()
			if changed {
				n.ringChanged()
			}
			return
		}
		raw, err := rt.Call(succ.Addr, MState, StateReq{})
		if err != nil {
			// Successor dead: promote the next live entry.
			n.mu.Lock()
			if len(n.succs) > 0 && n.succs[0] == succ {
				n.succs = n.succs[1:]
			}
			empty := len(n.succs) == 0
			if empty {
				// Last resort: point at ourselves and wait for a notify.
				n.succs = []Ref{self}
			}
			n.mu.Unlock()
			n.ringChanged()
			if empty {
				return
			}
			continue
		}
		st := raw.(StateResp)
		newSucc := succ
		if !st.Pred.IsZero() && st.Pred.ID != n.id && ids.Between(st.Pred.ID, n.id, succ.ID) {
			// A node appeared between us and our successor. Verify it
			// answers before adopting it: the successor can report a
			// predecessor that has since died, and installing a dead
			// succs[0] stalls lookups (and replica targeting) until the
			// next round notices. In steady state st.Pred is this node
			// itself, caught above, so the ping is join/repair-only.
			if _, err := rt.Call(st.Pred.Addr, MPing, PingReq{}); err == nil {
				newSucc = st.Pred
			}
		}
		n.mu.Lock()
		old := n.succs
		if newSucc == succ {
			// Adopt successor's list, shifted by one.
			n.succs = prependTrim(succ, st.Succs, n.cfg.SuccessorListLen)
		} else {
			n.succs = prependTrim(newSucc, old, n.cfg.SuccessorListLen)
		}
		changed := !refsEqual(old, n.succs)
		n.mu.Unlock()
		if changed {
			n.ringChanged()
		}
		_, _ = rt.Call(newSucc.Addr, MNotify, NotifyReq{Cand: self})
		return
	}
}

func refsEqual(a, b []Ref) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func prependTrim(head Ref, rest []Ref, max int) []Ref {
	out := []Ref{head}
	for _, r := range rest {
		if r == head || r.IsZero() {
			continue
		}
		out = append(out, r)
		if len(out) == max {
			break
		}
	}
	return out
}

func (n *Node) fixFingersLoop(rt transport.Runtime) {
	for {
		rt.Sleep(jittered(rt, n.cfg.FixFingersEvery))
		n.fixFingersOnce(rt)
	}
}

// fixFingersOnce refreshes the next batch of finger-table entries.
// Entries whose interval start falls within (self, successor] need no
// lookup: the successor is the answer.
func (n *Node) fixFingersOnce(rt transport.Runtime) {
	for i := 0; i < n.cfg.FingersPerRound; i++ {
		n.mu.Lock()
		k := n.nextFinger
		n.nextFinger = (n.nextFinger + 1) % ids.Bits
		succ := Ref{}
		if len(n.succs) > 0 {
			succ = n.succs[0]
		}
		n.mu.Unlock()
		if succ.IsZero() {
			return
		}
		start := n.id.AddPow2(k)
		var target Ref
		if ids.BetweenRightIncl(start, n.id, succ.ID) {
			target = succ
		} else {
			owner, _, err := n.lookupFrom(rt, n.Ref(), start)
			if err != nil {
				continue
			}
			target = owner
		}
		n.mu.Lock()
		n.fingers[k] = target
		n.mu.Unlock()
	}
}

func (n *Node) checkPredLoop(rt transport.Runtime) {
	for {
		rt.Sleep(jittered(rt, n.cfg.CheckPredEvery))
		pred := n.Predecessor()
		if pred.IsZero() || pred.ID == n.id {
			continue
		}
		if _, err := rt.Call(pred.Addr, MPing, PingReq{}); err != nil {
			n.mu.Lock()
			changed := false
			if n.pred == pred {
				n.pred = Ref{}
				changed = true
			}
			if n.dropRefLocked(pred) {
				changed = true
			}
			n.mu.Unlock()
			if changed {
				n.ringChanged()
			}
		}
	}
}

// dropRefLocked purges a node that just failed a ping from the
// successor list and finger table. Without this, a dead predecessor
// lingered in routing state until stabilization propagated the failure
// around the ring — on small rings the predecessor IS in the successor
// list, so successor(k) stayed wrong for many rounds, delaying every
// layer that targets successors (replica handoff most of all).
// Reports whether anything changed.
func (n *Node) dropRefLocked(dead Ref) bool {
	changed := false
	kept := n.succs[:0]
	for _, s := range n.succs {
		if s == dead {
			changed = true
			continue
		}
		kept = append(kept, s)
	}
	n.succs = kept
	if len(n.succs) == 0 {
		// Last resort, as in stabilization: wait for a notify.
		n.succs = []Ref{n.Ref()}
	}
	for i, f := range n.fingers {
		if f == dead {
			n.fingers[i] = Ref{}
			changed = true
		}
	}
	return changed
}

// jittered spreads periodic work to avoid lock-step rounds across nodes.
func jittered(rt transport.Runtime, d time.Duration) time.Duration {
	return d/2 + time.Duration(rt.Rand().Int63n(int64(d)))
}

// FingerTable returns a copy of the finger table (diagnostics only).
func (n *Node) FingerTable() [ids.Bits]Ref {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.fingers
}
