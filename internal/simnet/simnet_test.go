package simnet

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
)

func newPair(t *testing.T) (*sim.Engine, *Net, *Endpoint, *Endpoint) {
	t.Helper()
	e := sim.NewEngine(1)
	n := New(e)
	n.Latency = FixedLatency(10 * time.Millisecond)
	a := n.NewEndpoint("a")
	b := n.NewEndpoint("b")
	return e, n, a, b
}

func TestCallRoundTrip(t *testing.T) {
	e, _, a, b := newPair(t)
	b.Handle("echo", func(p *sim.Proc, from Addr, req any) (any, error) {
		return fmt.Sprintf("%s:%v", from, req), nil
	})
	var got any
	var err error
	var rtt time.Duration
	a.Go("caller", func(p *sim.Proc) {
		start := p.Now()
		got, err = a.Call(p, "b", "echo", 42)
		rtt = p.Now().Sub(start)
	})
	e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got != "a:42" {
		t.Fatalf("got %v", got)
	}
	if rtt != 20*time.Millisecond {
		t.Fatalf("rtt = %v, want 20ms", rtt)
	}
}

func TestCallHandlerError(t *testing.T) {
	e, _, a, b := newPair(t)
	sentinel := errors.New("nope")
	b.Handle("fail", func(p *sim.Proc, from Addr, req any) (any, error) {
		return nil, sentinel
	})
	var err error
	a.Go("caller", func(p *sim.Proc) { _, err = a.Call(p, "b", "fail", nil) })
	e.Run()
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestCallNoHandler(t *testing.T) {
	e, _, a, _ := newPair(t)
	var err error
	a.Go("caller", func(p *sim.Proc) { _, err = a.Call(p, "b", "missing", nil) })
	e.Run()
	if !errors.Is(err, ErrNoHandler) {
		t.Fatalf("err = %v", err)
	}
}

func TestCallToDownEndpointRefused(t *testing.T) {
	e, _, a, b := newPair(t)
	b.Crash()
	var err error
	var took time.Duration
	a.Go("caller", func(p *sim.Proc) {
		start := p.Now()
		_, err = a.Call(p, "b", "x", nil)
		took = p.Now().Sub(start)
	})
	e.Run()
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
	if took != 10*time.Millisecond {
		t.Fatalf("refusal took %v, want one-way latency", took)
	}
}

func TestCallToDownEndpointTimesOutWithoutRST(t *testing.T) {
	e, n, a, b := newPair(t)
	n.RefuseWhenDown = false
	n.CallTimeout = time.Second
	b.Crash()
	var err error
	var took time.Duration
	a.Go("caller", func(p *sim.Proc) {
		start := p.Now()
		_, err = a.Call(p, "b", "x", nil)
		took = p.Now().Sub(start)
	})
	e.Run()
	if !errors.Is(err, ErrTimeout) || took != time.Second {
		t.Fatalf("err=%v took=%v", err, took)
	}
}

func TestCrashMidHandlerDropsResponse(t *testing.T) {
	e, n, a, b := newPair(t)
	n.CallTimeout = time.Second
	b.Handle("slow", func(p *sim.Proc, from Addr, req any) (any, error) {
		p.Sleep(500 * time.Millisecond)
		return "done", nil
	})
	e.Schedule(100*time.Millisecond, func() { b.Crash() })
	var err error
	a.Go("caller", func(p *sim.Proc) { _, err = a.Call(p, "b", "slow", nil) })
	e.Run()
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want timeout after crash mid-handler", err)
	}
}

func TestCrashInFlightRequestLost(t *testing.T) {
	// Crash while the request is on the wire: delivery re-check drops it.
	e, n, a, b := newPair(t)
	n.CallTimeout = time.Second
	b.Handle("x", func(p *sim.Proc, from Addr, req any) (any, error) { return 1, nil })
	e.Schedule(5*time.Millisecond, func() { b.Crash() })
	var err error
	a.Go("caller", func(p *sim.Proc) { _, err = a.Call(p, "b", "x", nil) })
	e.Run()
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v", err)
	}
}

func TestRestartAfterCrash(t *testing.T) {
	e, _, a, b := newPair(t)
	b.Handle("ping", func(p *sim.Proc, from Addr, req any) (any, error) { return "pong", nil })
	b.Crash()
	b.Restart()
	var got any
	a.Go("caller", func(p *sim.Proc) { got, _ = a.Call(p, "b", "ping", nil) })
	e.Run()
	if got != "pong" {
		t.Fatalf("got %v", got)
	}
}

func TestDropProbLosesEverything(t *testing.T) {
	e, n, a, b := newPair(t)
	n.DropProb = 1.0
	n.CallTimeout = 500 * time.Millisecond
	b.Handle("x", func(p *sim.Proc, from Addr, req any) (any, error) { return 1, nil })
	var err error
	a.Go("caller", func(p *sim.Proc) { _, err = a.Call(p, "b", "x", nil) })
	e.Run()
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v", err)
	}
	if n.Stats.Dropped == 0 {
		t.Fatal("no drops recorded")
	}
}

func TestPartition(t *testing.T) {
	e, n, a, b := newPair(t)
	n.CallTimeout = 200 * time.Millisecond
	b.Handle("x", func(p *sim.Proc, from Addr, req any) (any, error) { return 1, nil })
	n.SetReachable(func(x, y Addr) bool { return false })
	var err1 error
	a.Go("c1", func(p *sim.Proc) { _, err1 = a.Call(p, "b", "x", nil) })
	e.Run()
	if !errors.Is(err1, ErrTimeout) {
		t.Fatalf("partitioned call: %v", err1)
	}
	// Heal the partition.
	n.SetReachable(nil)
	var err2 error
	a.Go("c2", func(p *sim.Proc) { _, err2 = a.Call(p, "b", "x", nil) })
	e.Run()
	if err2 != nil {
		t.Fatalf("healed call: %v", err2)
	}
}

func TestConcurrentCallsIndependent(t *testing.T) {
	e, _, a, b := newPair(t)
	b.Handle("double", func(p *sim.Proc, from Addr, req any) (any, error) {
		p.Sleep(time.Duration(req.(int)) * time.Millisecond)
		return req.(int) * 2, nil
	})
	results := make(map[int]int)
	for _, d := range []int{300, 100, 200} {
		d := d
		a.Go("caller", func(p *sim.Proc) {
			v, err := a.Call(p, "b", "double", d)
			if err != nil {
				t.Errorf("call %d: %v", d, err)
				return
			}
			results[d] = v.(int)
		})
	}
	e.Run()
	for _, d := range []int{100, 200, 300} {
		if results[d] != 2*d {
			t.Fatalf("results = %v", results)
		}
	}
}

func TestCallFromDownEndpoint(t *testing.T) {
	e, _, a, b := newPair(t)
	_ = b
	var err error
	done := make(chan struct{})
	a.Go("caller", func(p *sim.Proc) {
		defer close(done)
		a.up = false // simulate crash observed by our own call path
		_, err = a.Call(p, "b", "x", nil)
	})
	e.Run()
	<-done
	if !errors.Is(err, ErrDown) {
		t.Fatalf("err = %v", err)
	}
}

func TestStatsCounting(t *testing.T) {
	e, n, a, b := newPair(t)
	b.Handle("x", func(p *sim.Proc, from Addr, req any) (any, error) { return 1, nil })
	a.Go("caller", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			if _, err := a.Call(p, "b", "x", nil); err != nil {
				t.Errorf("call: %v", err)
			}
		}
	})
	e.Run()
	if n.Stats.CallsSent != 5 || n.Stats.Handlers != 5 || n.Stats.Messages != 10 {
		t.Fatalf("stats = %+v", n.Stats)
	}
}

func TestDuplicateEndpointPanics(t *testing.T) {
	e := sim.NewEngine(1)
	n := New(e)
	n.NewEndpoint("dup")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate address")
		}
	}()
	n.NewEndpoint("dup")
}

func TestUniformLatencyBounds(t *testing.T) {
	e := sim.NewEngine(1)
	u := UniformLatency{Min: 10 * time.Millisecond, Max: 50 * time.Millisecond}
	rng := e.NewRand()
	for i := 0; i < 1000; i++ {
		d := u.Delay(rng, "a", "b")
		if d < u.Min || d > u.Max {
			t.Fatalf("delay %v out of bounds", d)
		}
	}
	deg := UniformLatency{Min: 5 * time.Millisecond, Max: 5 * time.Millisecond}
	if deg.Delay(rng, "a", "b") != 5*time.Millisecond {
		t.Fatal("degenerate uniform wrong")
	}
}

func TestEndpointLookup(t *testing.T) {
	_, n, a, _ := newPair(t)
	if n.Endpoint("a") != a {
		t.Fatal("Endpoint lookup failed")
	}
	if n.Endpoint("zzz") != nil {
		t.Fatal("missing endpoint should be nil")
	}
	if a.Addr() != "a" || !a.Up() {
		t.Fatal("endpoint accessors wrong")
	}
}

func TestCallTExplicitTimeout(t *testing.T) {
	e, _, a, b := newPair(t)
	b.Handle("slow", func(p *sim.Proc, from Addr, req any) (any, error) {
		p.Sleep(10 * time.Second)
		return nil, nil
	})
	var err error
	var took time.Duration
	a.Go("caller", func(p *sim.Proc) {
		start := p.Now()
		_, err = a.CallT(p, "b", "slow", nil, 100*time.Millisecond)
		took = p.Now().Sub(start)
	})
	e.Run()
	e.Shutdown()
	if !errors.Is(err, ErrTimeout) || took != 100*time.Millisecond {
		t.Fatalf("err=%v took=%v", err, took)
	}
}
