package simnet_test

import (
	"errors"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/simnet"
)

// faultPair builds two endpoints with a fixed 10ms latency and an echo
// handler on "b", driven by the given fault function.
func faultPair(t *testing.T, fn simnet.FaultFunc) (*sim.Engine, *simnet.Net, *simnet.Endpoint) {
	t.Helper()
	e := sim.NewEngine(1)
	net := simnet.New(e)
	net.Latency = simnet.FixedLatency(10 * time.Millisecond)
	net.Faults = fn
	a := net.NewEndpoint("a")
	b := net.NewEndpoint("b")
	b.Handle("echo", func(p *sim.Proc, from simnet.Addr, req any) (any, error) {
		return req, nil
	})
	return e, net, a
}

func TestFaultDropRequestTimesOut(t *testing.T) {
	e, net, a := faultPair(t, func(from, to simnet.Addr, method string, response bool) simnet.Fault {
		return simnet.Fault{Drop: !response}
	})
	var err error
	e.Spawn("caller", func(p *sim.Proc) {
		_, err = a.CallT(p, "b", "echo", "hi", time.Second)
	})
	e.Run()
	if !errors.Is(err, simnet.ErrTimeout) {
		t.Fatalf("dropped request returned %v, want timeout", err)
	}
	if net.Stats.Faulted != 1 || net.Stats.Dropped != 1 {
		t.Fatalf("stats: %+v", net.Stats)
	}
}

func TestFaultDropResponseTimesOut(t *testing.T) {
	e, net, a := faultPair(t, func(from, to simnet.Addr, method string, response bool) simnet.Fault {
		return simnet.Fault{Drop: response}
	})
	var err error
	e.Spawn("caller", func(p *sim.Proc) {
		_, err = a.CallT(p, "b", "echo", "hi", time.Second)
	})
	e.Run()
	if !errors.Is(err, simnet.ErrTimeout) {
		t.Fatalf("dropped response returned %v, want timeout", err)
	}
	if net.Stats.Handlers != 1 {
		t.Fatal("handler never ran; the request leg should have been clean")
	}
}

func TestFaultDelayPostponesDelivery(t *testing.T) {
	e, _, a := faultPair(t, func(from, to simnet.Addr, method string, response bool) simnet.Fault {
		if response {
			return simnet.Fault{}
		}
		return simnet.Fault{Delay: time.Second}
	})
	var took time.Duration
	e.Spawn("caller", func(p *sim.Proc) {
		start := p.Now()
		if _, err := a.CallT(p, "b", "echo", "hi", 5*time.Second); err != nil {
			t.Errorf("call: %v", err)
		}
		took = time.Duration(p.Now() - start)
	})
	e.Run()
	// 10ms out (+1s injected) + 10ms back.
	if took < 1020*time.Millisecond || took > 1100*time.Millisecond {
		t.Fatalf("delayed call took %v, want ~1.02s", took)
	}
}

func TestFaultDuplicateRunsHandlerTwice(t *testing.T) {
	e, net, a := faultPair(t, func(from, to simnet.Addr, method string, response bool) simnet.Fault {
		return simnet.Fault{Duplicate: !response}
	})
	var resp any
	var err error
	e.Spawn("caller", func(p *sim.Proc) {
		resp, err = a.CallT(p, "b", "echo", "hi", time.Second)
	})
	e.Run()
	if err != nil || resp != "hi" {
		t.Fatalf("duplicated call returned (%v, %v), want (hi, nil)", resp, err)
	}
	if net.Stats.Handlers != 2 {
		t.Fatalf("handler ran %d times, want 2 (original + duplicate)", net.Stats.Handlers)
	}
}

func TestFaultZeroValueIsTransparent(t *testing.T) {
	e, net, a := faultPair(t, func(from, to simnet.Addr, method string, response bool) simnet.Fault {
		return simnet.Fault{}
	})
	var err error
	e.Spawn("caller", func(p *sim.Proc) {
		_, err = a.CallT(p, "b", "echo", "hi", time.Second)
	})
	e.Run()
	if err != nil {
		t.Fatalf("clean call failed: %v", err)
	}
	if net.Stats.Faulted != 0 {
		t.Fatalf("zero fault counted as injected: %+v", net.Stats)
	}
}
