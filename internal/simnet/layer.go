package simnet

import "strings"

// LayerOf classifies an RPC method or proc name into the subsystem
// vocabulary the kernel stats report ranks (DESIGN.md §14). The names
// follow the same prefixes the obs metrics registry uses
// (rpc_client_calls_total{method="chord.step"}, grid_events_total, …),
// so the simulator's per-layer attribution and the live metrics speak
// one vocabulary. Handler procs are named "h:<method>" by the network;
// the prefix is stripped before classification.
func LayerOf(name string) string {
	name = strings.TrimPrefix(name, "h:")
	switch {
	case name == "grid.heartbeat":
		return "heartbeat"
	case name == "can.gossip" || name == "rnt.aggregate":
		// Periodic state dissemination, as opposed to routed lookups.
		return "gossip"
	case strings.HasPrefix(name, "chord."):
		return "chord"
	case strings.HasPrefix(name, "can."):
		return "can"
	case strings.HasPrefix(name, "rnt.") || strings.HasPrefix(name, "rn."):
		return "rntree"
	case strings.HasPrefix(name, "grid."):
		return "grid"
	case strings.HasPrefix(name, "pubsub."):
		return "pubsub"
	case strings.HasPrefix(name, "replica."):
		return "replica"
	case strings.HasPrefix(name, "match.") || strings.HasPrefix(name, "ttl"):
		return "match"
	case strings.HasPrefix(name, "client"):
		return "client"
	default:
		return "other"
	}
}
