// Package simnet models a message-passing network on top of the sim
// kernel: named endpoints, configurable latency, message loss,
// partitions, and node crashes. Its RPC primitive (Call) blocks the
// calling proc until a response arrives or a timeout fires, which is
// exactly the programming model the live TCP transport provides, so
// protocol code is transport-agnostic.
package simnet

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/sim"
)

// Addr names an endpoint (a simulated host).
type Addr string

// Errors returned by Call.
var (
	ErrTimeout     = errors.New("simnet: call timed out")
	ErrUnreachable = errors.New("simnet: destination unreachable")
	ErrNoHandler   = errors.New("simnet: no handler for method")
	ErrDown        = errors.New("simnet: local endpoint is down")
)

// LatencyModel produces one-way message delays.
type LatencyModel interface {
	Delay(rng *rand.Rand, from, to Addr) time.Duration
}

// UniformLatency draws delays uniformly from [Min, Max].
type UniformLatency struct {
	Min, Max time.Duration
}

// Delay implements LatencyModel.
func (u UniformLatency) Delay(rng *rand.Rand, from, to Addr) time.Duration {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + time.Duration(rng.Int63n(int64(u.Max-u.Min)))
}

// FixedLatency returns a constant delay.
type FixedLatency time.Duration

// Delay implements LatencyModel.
func (f FixedLatency) Delay(*rand.Rand, Addr, Addr) time.Duration {
	return time.Duration(f)
}

// Fault is an injected fate for one in-flight message. The zero value
// delivers the message normally.
type Fault struct {
	// Drop loses the message in transit; the caller times out (requests)
	// or never hears back (responses).
	Drop bool
	// Delay adds extra one-way latency before delivery.
	Delay time.Duration
	// Duplicate delivers a second copy after an additional latency draw,
	// exercising at-least-once semantics in the protocol under test.
	Duplicate bool
}

// FaultInjector is consulted once per message send — request and
// response legs separately — before latency, loss, and partition rules
// apply. Injected faults are counted in Stats.Faulted. Implementations
// must be deterministic for a fixed construction seed; the simulator
// presents messages in a reproducible order.
type FaultInjector interface {
	Fate(from, to Addr, method string, response bool) Fault
}

// FaultFunc adapts a function to the FaultInjector interface.
type FaultFunc func(from, to Addr, method string, response bool) Fault

// Fate implements FaultInjector.
func (f FaultFunc) Fate(from, to Addr, method string, response bool) Fault {
	return f(from, to, method, response)
}

// Stats counts network activity; read it after a run.
type Stats struct {
	Messages  int64 // delivered messages (requests + responses)
	Dropped   int64 // lost to DropProb, partitions, or injected drops
	Timeouts  int64 // calls that timed out
	Refused   int64 // calls rejected because the target was down
	Handlers  int64 // handler invocations
	CallsSent int64 // Call invocations
	Faulted   int64 // messages touched by the fault injector
	// ByMethod tallies delivered requests per RPC method (lazily
	// allocated on first delivery) — the breakdown experiments use to
	// attribute traffic to protocol roles (e.g. status polls vs push
	// notifications).
	ByMethod map[string]int64
}

// Net is a simulated network. All endpoints attach to one Net.
type Net struct {
	Engine *sim.Engine

	// Latency produces one-way delays; defaults to 20-60 ms.
	Latency LatencyModel
	// DropProb is the probability an individual message is lost.
	DropProb float64
	// CallTimeout bounds Call when the caller gives no explicit timeout.
	CallTimeout time.Duration
	// RefuseWhenDown makes calls to a down endpoint fail after one
	// one-way latency (TCP RST behaviour) instead of timing out.
	RefuseWhenDown bool
	// Faults, when non-nil, decides per-message injected faults (drops,
	// extra delay, duplication) on top of DropProb and partitions.
	Faults FaultInjector

	Stats Stats

	rng       *rand.Rand
	endpoints map[Addr]*Endpoint
	reachable func(a, b Addr) bool
}

// New returns a network with default latency (20-60 ms one-way),
// no drops, a 3 s call timeout, and RST-style refusal.
func New(e *sim.Engine) *Net {
	return &Net{
		Engine:         e,
		Latency:        UniformLatency{20 * time.Millisecond, 60 * time.Millisecond},
		CallTimeout:    3 * time.Second,
		RefuseWhenDown: true,
		rng:            e.NewRand(),
		endpoints:      make(map[Addr]*Endpoint),
	}
}

// SetReachable installs a reachability predicate (nil means fully
// connected) to model partitions.
func (n *Net) SetReachable(fn func(a, b Addr) bool) { n.reachable = fn }

func (n *Net) canReach(a, b Addr) bool {
	return n.reachable == nil || n.reachable(a, b)
}

// Reachable reports whether messages from a currently reach b under
// the installed partition predicate.
func (n *Net) Reachable(a, b Addr) bool { return n.canReach(a, b) }

// Endpoint returns the endpoint with the given address, or nil.
func (n *Net) Endpoint(addr Addr) *Endpoint { return n.endpoints[addr] }

// NewEndpoint creates and registers an endpoint. It panics if the
// address is taken.
func (n *Net) NewEndpoint(addr Addr) *Endpoint {
	if _, ok := n.endpoints[addr]; ok {
		panic(fmt.Sprintf("simnet: duplicate endpoint %q", addr))
	}
	ep := &Endpoint{
		net:      n,
		addr:     addr,
		up:       true,
		handlers: make(map[string]Handler),
		procs:    make(map[*sim.Proc]struct{}),
	}
	n.endpoints[addr] = ep
	return ep
}

// Handler serves one inbound request. It runs in its own proc on the
// destination endpoint and is killed if that endpoint crashes.
type Handler func(p *sim.Proc, from Addr, req any) (any, error)

// Endpoint is one simulated host's attachment to the network.
type Endpoint struct {
	net      *Net
	addr     Addr
	up       bool
	handlers map[string]Handler
	procs    map[*sim.Proc]struct{}
	seq      int
}

// Addr returns the endpoint's address.
func (ep *Endpoint) Addr() Addr { return ep.addr }

// Up reports whether the endpoint is alive.
func (ep *Endpoint) Up() bool { return ep.up }

// Handle registers a handler for a method name.
func (ep *Endpoint) Handle(method string, h Handler) {
	ep.handlers[method] = h
}

// Go spawns a proc owned by this endpoint; it is killed when the
// endpoint crashes. Use it for all node-resident activities. The
// proc's spawn — and, by tag inheritance, everything it schedules —
// is attributed to the subsystem its name classifies into.
func (ep *Endpoint) Go(name string, fn func(p *sim.Proc)) *sim.Proc {
	ep.seq++
	var p *sim.Proc
	ep.net.Engine.Tagged(LayerOf(name), func() {
		p = ep.net.Engine.Spawn(fmt.Sprintf("%s/%s#%d", ep.addr, name, ep.seq), fn)
	})
	ep.procs[p] = struct{}{}
	p.OnKilled = func() { delete(ep.procs, p) }
	return p
}

// Crash takes the endpoint down, killing every proc it owns (including
// in-flight request handlers). In-flight messages to it are lost.
func (ep *Endpoint) Crash() {
	if !ep.up {
		return
	}
	ep.up = false
	for _, p := range sim.SortProcs(ep.procs) {
		p.Kill()
	}
	ep.procs = make(map[*sim.Proc]struct{})
}

// Restart brings a crashed endpoint back up with no procs running;
// higher layers must re-start their protocol loops and rejoin.
func (ep *Endpoint) Restart() { ep.up = true }

type rpcResult struct {
	resp any
	err  error
}

// Call performs a blocking RPC with the network's default timeout.
func (ep *Endpoint) Call(p *sim.Proc, to Addr, method string, req any) (any, error) {
	return ep.CallT(p, to, method, req, ep.net.CallTimeout)
}

// CallT performs a blocking RPC with an explicit timeout.
func (ep *Endpoint) CallT(p *sim.Proc, to Addr, method string, req any, timeout time.Duration) (any, error) {
	n := ep.net
	n.Stats.CallsSent++
	if !ep.up {
		return nil, ErrDown
	}
	reply := sim.NewChan[rpcResult](n.Engine)
	oneWay := n.Latency.Delay(n.rng, ep.addr, to)
	fault := n.fate(ep.addr, to, method, false)

	if fault.Drop || !n.canReach(ep.addr, to) || (n.DropProb > 0 && n.rng.Float64() < n.DropProb) {
		n.Stats.Dropped++
		// Message lost in transit: the caller just times out.
	} else {
		target := n.endpoints[to]
		if target == nil || !target.up {
			if n.RefuseWhenDown {
				n.Stats.Refused++
				n.Engine.Tagged(LayerOf(method), func() {
					n.Engine.Schedule(oneWay, func() {
						reply.Send(rpcResult{err: ErrUnreachable})
					})
				})
			}
		} else {
			n.Engine.Tagged(LayerOf(method), func() {
				n.Engine.Schedule(oneWay+fault.Delay, func() {
					n.deliver(ep.addr, to, method, req, reply)
				})
				if fault.Duplicate {
					// The copy takes its own (later) path through the network.
					dupWay := oneWay + fault.Delay + n.Latency.Delay(n.rng, ep.addr, to)
					n.Engine.Schedule(dupWay, func() {
						n.deliver(ep.addr, to, method, req, reply)
					})
				}
			})
		}
	}

	res, ok := reply.RecvTimeout(p, timeout)
	if !ok {
		n.Stats.Timeouts++
		return nil, ErrTimeout
	}
	return res.resp, res.err
}

// deliver runs on the engine at arrival time: it re-checks liveness
// (the target may have crashed while the message was in flight) and
// spawns a handler proc.
func (n *Net) deliver(from, to Addr, method string, req any, reply *sim.Chan[rpcResult]) {
	target := n.endpoints[to]
	if target == nil || !target.up {
		n.Stats.Dropped++
		return
	}
	n.Stats.Messages++
	if n.Stats.ByMethod == nil {
		n.Stats.ByMethod = make(map[string]int64)
	}
	n.Stats.ByMethod[method]++
	h, ok := target.handlers[method]
	if !ok {
		n.respond(to, from, method, reply, rpcResult{err: fmt.Errorf("%w: %s on %s", ErrNoHandler, method, to)})
		return
	}
	n.Stats.Handlers++
	target.Go("h:"+method, func(p *sim.Proc) {
		resp, err := h(p, from, req)
		n.respond(to, from, method, reply, rpcResult{resp: resp, err: err})
	})
}

// respond sends a response back across the network, subject to the
// same loss, partition, and fault-injection rules as the request.
func (n *Net) respond(from, to Addr, method string, reply *sim.Chan[rpcResult], res rpcResult) {
	src := n.endpoints[from]
	if src != nil && !src.up {
		return // responder crashed before replying
	}
	fault := n.fate(from, to, method, true)
	if fault.Drop || !n.canReach(from, to) || (n.DropProb > 0 && n.rng.Float64() < n.DropProb) {
		n.Stats.Dropped++
		return
	}
	oneWay := n.Latency.Delay(n.rng, from, to) + fault.Delay
	send := func() {
		n.Stats.Messages++
		reply.Send(res)
	}
	n.Engine.Tagged(LayerOf(method), func() {
		n.Engine.Schedule(oneWay, send)
		if fault.Duplicate {
			// A duplicate reply is buffered and ignored by the caller, which
			// has already moved on — still worth modelling for stats.
			n.Engine.Schedule(oneWay+n.Latency.Delay(n.rng, from, to), send)
		}
	})
}

// fate consults the fault injector, if any.
func (n *Net) fate(from, to Addr, method string, response bool) Fault {
	if n.Faults == nil {
		return Fault{}
	}
	f := n.Faults.Fate(from, to, method, response)
	if f.Drop || f.Duplicate || f.Delay != 0 {
		n.Stats.Faulted++
	}
	return f
}
