package simnet

import "testing"

func TestLayerOf(t *testing.T) {
	cases := map[string]string{
		// RPC methods, as tagged at CallT/respond.
		"grid.heartbeat": "heartbeat",
		"can.gossip":     "gossip",
		"rnt.aggregate":  "gossip",
		"chord.getsucc":  "chord",
		"can.route":      "can",
		"rnt.match":      "rntree",
		"grid.inject":    "grid",
		"grid.own":       "grid",
		"pubsub.publish": "pubsub",
		"replica.put":    "replica",
		"ttlsearch":      "match",
		"client.deliver": "client",
		"somethingelse":  "other",
		// Proc names, as tagged at Endpoint.Go — handlers get an "h:"
		// prefix that must be stripped before classification.
		"h:grid.heartbeat": "heartbeat",
		"h:chord.getsucc":  "chord",
		"chord.stabilize":  "chord",
		"grid.exec":        "grid",
		"grid.client":      "grid", // grid. prefix wins over the client fallback
	}
	for name, want := range cases {
		if got := LayerOf(name); got != want {
			t.Errorf("LayerOf(%q) = %q, want %q", name, got, want)
		}
	}
}
