package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/grid"
	"repro/internal/ids"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("summary: %+v", s)
	}
	want := math.Sqrt(2.5) // sample stdev of 1..5
	if math.Abs(s.Std-want) > 1e-9 {
		t.Fatalf("std = %v, want %v", s.Std, want)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatal("empty summary")
	}
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Std != 0 || s.P99 != 7 {
		t.Fatalf("singleton: %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("input reordered")
	}
}

func TestQuantileExported(t *testing.T) {
	xs := []float64{50, 10, 30, 20, 40} // unsorted on purpose
	if got := Quantile(xs, 0.5); got != 30 {
		t.Fatalf("p50 = %v, want 30", got)
	}
	if got := Quantile(xs, 0); got != 10 {
		t.Fatalf("p0 = %v, want 10", got)
	}
	if got := Quantile(xs, 1); got != 50 {
		t.Fatalf("p100 = %v, want 50", got)
	}
	// Interpolation: p75 of 10..50 lies between 30 and 40.
	if got := Quantile(xs, 0.75); got != 40 {
		t.Fatalf("p75 = %v, want 40", got)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty sample")
	}
	if xs[0] != 50 {
		t.Fatal("input mutated")
	}
	// Quantile must agree with Summarize on the same sample.
	s := Summarize(xs)
	if Quantile(xs, 0.50) != s.P50 || Quantile(xs, 0.95) != s.P95 || Quantile(xs, 0.99) != s.P99 {
		t.Fatal("Quantile disagrees with Summarize")
	}
}

func TestQuantilesTriple(t *testing.T) {
	var xs []float64
	for i := 1; i <= 100; i++ {
		xs = append(xs, float64(i))
	}
	p50, p95, p99 := Quantiles(xs)
	s := Summarize(xs)
	if p50 != s.P50 || p95 != s.P95 || p99 != s.P99 {
		t.Fatalf("triple (%v,%v,%v) vs summary (%v,%v,%v)", p50, p95, p99, s.P50, s.P95, s.P99)
	}
	if a, b, c := Quantiles(nil); a != 0 || b != 0 || c != 0 {
		t.Fatal("empty triple")
	}
}

func TestCollectorQuantiles(t *testing.T) {
	c := NewCollector()
	// Five jobs with wait times 1..5 s and turnarounds 11..15 s.
	for i := 1; i <= 5; i++ {
		id := ids.HashString(string(rune('a' + i)))
		c.Record(grid.Event{Kind: grid.EvSubmitted, JobID: id, At: 0})
		c.Record(grid.Event{Kind: grid.EvStarted, JobID: id, At: time.Duration(i) * time.Second})
		c.Record(grid.Event{Kind: grid.EvResultDelivered, JobID: id, At: time.Duration(10+i) * time.Second})
	}
	p50, p95, p99 := c.WaitQuantiles()
	ws, ts := Summarize(c.WaitTimes()), Summarize(c.Turnarounds())
	if p50 != ws.P50 || p95 != ws.P95 || p99 != ws.P99 {
		t.Fatalf("wait quantiles (%v,%v,%v) vs %+v", p50, p95, p99, ws)
	}
	if p50 != 3 {
		t.Fatalf("wait p50 = %v, want 3", p50)
	}
	q50, q95, q99 := c.TurnaroundQuantiles()
	if q50 != ts.P50 || q95 != ts.P95 || q99 != ts.P99 {
		t.Fatalf("turnaround quantiles (%v,%v,%v) vs %+v", q50, q95, q99, ts)
	}
}

func TestQuantileMonotone(t *testing.T) {
	s := Summarize([]float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	if !(s.P50 <= s.P90 && s.P90 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.Max) {
		t.Fatalf("quantiles not monotone: %+v", s)
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var w Welford
	var xs []float64
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*10 + 50
		xs = append(xs, x)
		w.Add(x)
	}
	s := Summarize(xs)
	if math.Abs(w.Mean()-s.Mean) > 1e-9 || math.Abs(w.Std()-s.Std) > 1e-9 {
		t.Fatalf("welford (%.6f, %.6f) vs batch (%.6f, %.6f)", w.Mean(), w.Std(), s.Mean, s.Std)
	}
	if w.N() != 1000 {
		t.Fatal("count")
	}
}

func TestWelfordSmall(t *testing.T) {
	var w Welford
	if w.Std() != 0 {
		t.Fatal("empty std")
	}
	w.Add(5)
	if w.Mean() != 5 || w.Std() != 0 {
		t.Fatal("single observation")
	}
}

func TestSummaryMeanBounds(t *testing.T) {
	f := func(xs []float64) bool {
		var clean []float64
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				// Bound magnitudes so the sum cannot overflow; summary
				// statistics target measured durations, not 1e308.
				clean = append(clean, math.Mod(x, 1e6))
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10)
	for _, x := range []float64{1, 5, 15, 25, 25.5} {
		h.Add(x)
	}
	if h.N() != 5 {
		t.Fatal("count")
	}
	out := h.String()
	if !strings.Contains(out, "#") || strings.Count(out, "\n") != 3 {
		t.Fatalf("histogram render:\n%s", out)
	}
	if NewHistogram(1).String() != "(empty)" {
		t.Fatal("empty histogram")
	}
}

func TestImbalance(t *testing.T) {
	cv, mm := Imbalance([]float64{10, 10, 10, 10})
	if cv != 0 || mm != 1 {
		t.Fatalf("balanced: cv=%v mm=%v", cv, mm)
	}
	cv2, mm2 := Imbalance([]float64{0, 0, 0, 40})
	if cv2 <= 1 || mm2 != 4 {
		t.Fatalf("imbalanced: cv=%v mm=%v", cv2, mm2)
	}
	if cv3, _ := Imbalance([]float64{0, 0}); cv3 != 0 {
		t.Fatal("zero-mean imbalance")
	}
}

func TestCollectorBuildsTraces(t *testing.T) {
	c := NewCollector()
	id := ids.HashString("job")
	evts := []grid.Event{
		{Kind: grid.EvSubmitted, JobID: id, At: 0},
		{Kind: grid.EvInjected, JobID: id, At: time.Second, Hops: 4},
		{Kind: grid.EvOwned, JobID: id, At: 2 * time.Second},
		{Kind: grid.EvMatched, JobID: id, At: 3 * time.Second, Match: grid.MatchStats{Hops: 6, Visits: 3}},
		{Kind: grid.EvStarted, JobID: id, At: 10 * time.Second},
		{Kind: grid.EvResultDelivered, JobID: id, At: 40 * time.Second},
	}
	for _, ev := range evts {
		c.Record(ev)
	}
	jobs := c.Jobs()
	if len(jobs) != 1 {
		t.Fatal("trace count")
	}
	tr := jobs[0]
	if w, ok := tr.Wait(); !ok || w != 10*time.Second {
		t.Fatalf("wait = %v %v", w, ok)
	}
	if ta, ok := tr.Turnaround(); !ok || ta != 40*time.Second {
		t.Fatalf("turnaround = %v %v", ta, ok)
	}
	if got := c.WaitTimes(); len(got) != 1 || got[0] != 10 {
		t.Fatalf("WaitTimes = %v", got)
	}
	if got := c.MatchCosts(); len(got) != 1 || got[0] != 10 { // 4 route + 6 match
		t.Fatalf("MatchCosts = %v", got)
	}
	if got := c.MatchVisits(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("MatchVisits = %v", got)
	}
	if c.Count(grid.EvStarted) != 1 || c.Count(grid.EvResubmitted) != 0 {
		t.Fatal("counts")
	}
}

func TestCollectorFirstStartWins(t *testing.T) {
	// Recovery re-runs must not overwrite the original start time.
	c := NewCollector()
	id := ids.HashString("dup")
	c.Record(grid.Event{Kind: grid.EvSubmitted, JobID: id, At: 0})
	c.Record(grid.Event{Kind: grid.EvStarted, JobID: id, At: 5 * time.Second})
	c.Record(grid.Event{Kind: grid.EvStarted, JobID: id, At: 50 * time.Second})
	if w, _ := c.Jobs()[0].Wait(); w != 5*time.Second {
		t.Fatalf("wait = %v", w)
	}
}

func TestCollectorCheckpointAccounting(t *testing.T) {
	c := NewCollector()
	id := ids.HashString("ckpt")
	work := 30 * time.Second
	evts := []grid.Event{
		{Kind: grid.EvSubmitted, JobID: id, At: 0},
		{Kind: grid.EvStarted, JobID: id, At: time.Second},
		{Kind: grid.EvCheckpointed, JobID: id, At: 6 * time.Second, Progress: 5 * time.Second},
		{Kind: grid.EvCheckpointed, JobID: id, At: 11 * time.Second, Progress: 10 * time.Second},
		{Kind: grid.EvRunFailureDetected, JobID: id, At: 14 * time.Second, Progress: 10 * time.Second},
		{Kind: grid.EvResumed, JobID: id, At: 15 * time.Second, Progress: 10 * time.Second},
		{Kind: grid.EvResultDelivered, JobID: id, At: 40 * time.Second, Progress: work},
	}
	for _, ev := range evts {
		c.Record(ev)
	}
	tr := c.Jobs()[0]
	if tr.Checkpoints != 2 || tr.Resumes != 1 {
		t.Fatalf("checkpoints=%d resumes=%d", tr.Checkpoints, tr.Resumes)
	}
	if tr.ResumedWork != 10*time.Second || tr.Work != work {
		t.Fatalf("resumedWork=%v work=%v", tr.ResumedWork, tr.Work)
	}
	if c.Count(grid.EvCheckpointed) != 2 || c.Count(grid.EvResumed) != 1 {
		t.Fatal("event counts")
	}
	if c.UsefulWork() != work || c.ResumedWork() != 10*time.Second {
		t.Fatalf("useful=%v resumed=%v", c.UsefulWork(), c.ResumedWork())
	}
}

func TestCollectorIncompleteJobsExcluded(t *testing.T) {
	c := NewCollector()
	c.Record(grid.Event{Kind: grid.EvSubmitted, JobID: ids.HashString("never"), At: 0})
	if len(c.WaitTimes()) != 0 || len(c.Turnarounds()) != 0 {
		t.Fatal("unstarted job contributed stats")
	}
}

func TestWrongDeliveries(t *testing.T) {
	c := NewCollector()
	good := ids.HashString("job-good")
	bad := ids.HashString("job-bad")
	open := ids.HashString("job-open")
	c.Record(grid.Event{Kind: grid.EvSubmitted, JobID: good, Seq: 1, Digest: "dA"})
	c.Record(grid.Event{Kind: grid.EvResultDelivered, JobID: good, Digest: "dA"})
	c.Record(grid.Event{Kind: grid.EvSubmitted, JobID: bad, Seq: 2, Digest: "dB"})
	c.Record(grid.Event{Kind: grid.EvResultDelivered, JobID: bad, Digest: "corrupt"})
	c.Record(grid.Event{Kind: grid.EvSubmitted, JobID: open, Seq: 3, Digest: "dC"})
	if got := c.WrongDeliveries(); got != 1 {
		t.Fatalf("WrongDeliveries = %d, want 1", got)
	}
	for _, tr := range c.Jobs() {
		switch tr.JobID {
		case good:
			if tr.WrongDelivered() || tr.Seq != 1 || tr.Expect != "dA" || tr.Digest != "dA" {
				t.Fatalf("good trace wrong: %+v", tr)
			}
		case bad:
			if !tr.WrongDelivered() {
				t.Fatalf("bad trace not flagged: %+v", tr)
			}
		case open:
			if tr.WrongDelivered() {
				t.Fatal("undelivered job must not count as wrong")
			}
		}
	}
	// Legacy traces without digests never count as wrong.
	legacy := ids.HashString("job-legacy")
	c.Record(grid.Event{Kind: grid.EvSubmitted, JobID: legacy})
	c.Record(grid.Event{Kind: grid.EvResultDelivered, JobID: legacy})
	if got := c.WrongDeliveries(); got != 1 {
		t.Fatalf("legacy digestless trace flagged: WrongDeliveries = %d", got)
	}
}
