package metrics

import (
	"sort"
	"sync"
	"time"

	"repro/internal/grid"
	"repro/internal/ids"
	"repro/internal/transport"
)

// JobTrace accumulates the lifecycle timeline of one job GUID.
type JobTrace struct {
	JobID      ids.ID
	Client     transport.Addr
	Attempt    int
	SubmitAt   time.Duration
	OwnedAt    time.Duration
	MatchedAt  time.Duration
	StartedAt  time.Duration
	ResultAt   time.Duration
	Started    bool
	Delivered  bool
	RouteHops  int
	Match      grid.MatchStats
	MatchTries int
	// Checkpoint/resume accounting.
	Checkpoints int           // snapshots taken across all attempts
	Resumes     int           // executions that resumed from a snapshot
	ResumedWork time.Duration // work skipped thanks to resumption, summed
	Work        time.Duration // the job's nominal work, known once delivered
	// Sabotage-tolerance accounting: the digest an honest execution
	// must produce (from EvSubmitted), the digest actually delivered
	// (from EvResultDelivered), and the client-local submission number.
	Seq    int
	Expect string
	Digest string
}

// WrongDelivered reports whether the client accepted a result whose
// digest differs from the honest expectation — an accepted sabotage.
func (t *JobTrace) WrongDelivered() bool {
	return t.Delivered && t.Expect != "" && t.Digest != t.Expect
}

// Wait returns the paper's job wait time: submission to start of
// execution.
func (t *JobTrace) Wait() (time.Duration, bool) {
	if !t.Started {
		return 0, false
	}
	return t.StartedAt - t.SubmitAt, true
}

// Turnaround returns submission to result delivery.
func (t *JobTrace) Turnaround() (time.Duration, bool) {
	if !t.Delivered {
		return 0, false
	}
	return t.ResultAt - t.SubmitAt, true
}

// Collector implements grid.Recorder, building per-job traces and
// aggregate counters.
type Collector struct {
	mu     sync.Mutex
	jobs   map[ids.ID]*JobTrace
	counts map[grid.EventKind]int
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		jobs:   make(map[ids.ID]*JobTrace),
		counts: make(map[grid.EventKind]int),
	}
}

// Record implements grid.Recorder.
func (c *Collector) Record(ev grid.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.counts[ev.Kind]++
	t, ok := c.jobs[ev.JobID]
	if !ok {
		t = &JobTrace{JobID: ev.JobID, Attempt: ev.Attempt}
		c.jobs[ev.JobID] = t
	}
	switch ev.Kind {
	case grid.EvSubmitted:
		t.SubmitAt = ev.At
		t.Client = ev.Node
		t.Seq = ev.Seq
		t.Expect = ev.Digest
	case grid.EvInjected:
		t.RouteHops = ev.Hops
	case grid.EvOwned:
		t.OwnedAt = ev.At
	case grid.EvMatched:
		t.MatchedAt = ev.At
		t.Match = ev.Match
		t.MatchTries++
	case grid.EvStarted:
		if !t.Started {
			t.StartedAt = ev.At
			t.Started = true
		}
	case grid.EvResultDelivered:
		if !t.Delivered {
			t.ResultAt = ev.At
			t.Delivered = true
			t.Work = ev.Progress
			t.Digest = ev.Digest
		}
	case grid.EvCheckpointed:
		t.Checkpoints++
	case grid.EvResumed:
		t.Resumes++
		t.ResumedWork += ev.Progress
	}
}

// Count returns how many events of a kind were recorded.
func (c *Collector) Count(kind grid.EventKind) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[kind]
}

// Jobs returns a snapshot of all traces, ordered by job identifier so
// downstream float accumulation is deterministic.
func (c *Collector) Jobs() []*JobTrace {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*JobTrace, 0, len(c.jobs))
	for _, t := range c.jobs {
		cp := *t
		out = append(out, &cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].JobID.Less(out[j].JobID) })
	return out
}

// WaitTimes returns wait times in seconds for every started job.
func (c *Collector) WaitTimes() []float64 {
	var out []float64
	for _, t := range c.Jobs() {
		if w, ok := t.Wait(); ok {
			out = append(out, w.Seconds())
		}
	}
	return out
}

// Turnarounds returns turnaround times in seconds for delivered jobs.
func (c *Collector) Turnarounds() []float64 {
	var out []float64
	for _, t := range c.Jobs() {
		if w, ok := t.Turnaround(); ok {
			out = append(out, w.Seconds())
		}
	}
	return out
}

// WaitQuantiles returns the (p50, p95, p99) wait-time triple in
// seconds — the tail shape the live /metrics endpoint estimates from
// bucketed histograms, computed here exactly from the event stream.
func (c *Collector) WaitQuantiles() (p50, p95, p99 float64) {
	return Quantiles(c.WaitTimes())
}

// TurnaroundQuantiles returns the (p50, p95, p99) turnaround triple in
// seconds for delivered jobs.
func (c *Collector) TurnaroundQuantiles() (p50, p95, p99 float64) {
	return Quantiles(c.Turnarounds())
}

// MatchCosts returns, per matched job, the total matchmaking message
// count (route hops + search RPCs + walk + pushes).
func (c *Collector) MatchCosts() []float64 {
	var out []float64
	for _, t := range c.Jobs() {
		if t.MatchTries == 0 {
			continue
		}
		cost := t.RouteHops + t.Match.Hops + t.Match.WalkHops + t.Match.Pushes
		out = append(out, float64(cost))
	}
	return out
}

// UsefulWork sums the nominal work of every delivered job — the
// denominator of waste accounting.
func (c *Collector) UsefulWork() time.Duration {
	var sum time.Duration
	for _, t := range c.Jobs() {
		if t.Delivered {
			sum += t.Work
		}
	}
	return sum
}

// ResumedWork sums the work salvaged by checkpoint resumption across
// all jobs.
func (c *Collector) ResumedWork() time.Duration {
	var sum time.Duration
	for _, t := range c.Jobs() {
		sum += t.ResumedWork
	}
	return sum
}

// WrongDeliveries counts jobs whose delivered result digest differs
// from the submission's honest expectation — the accepted-wrong-result
// numerator of the sabotage-tolerance evaluation.
func (c *Collector) WrongDeliveries() int {
	n := 0
	for _, t := range c.Jobs() {
		if t.WrongDelivered() {
			n++
		}
	}
	return n
}

// MatchVisits returns per-job matchmaking node-visit counts.
func (c *Collector) MatchVisits() []float64 {
	var out []float64
	for _, t := range c.Jobs() {
		if t.MatchTries == 0 {
			continue
		}
		out = append(out, float64(t.Match.Visits))
	}
	return out
}
