// Package metrics provides the statistics the paper reports — job wait
// times (average and standard deviation), matchmaking cost, recovery
// counts — computed from the grid layer's event stream.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N                  int
	Mean, Std          float64
	Min, Max           float64
	P50, P90, P95, P99 float64
}

// Summarize computes descriptive statistics. An empty sample yields the
// zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs)}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	s.P50 = quantileSorted(sorted, 0.50)
	s.P90 = quantileSorted(sorted, 0.90)
	s.P95 = quantileSorted(sorted, 0.95)
	s.P99 = quantileSorted(sorted, 0.99)
	var sum float64
	for _, x := range xs {
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// Quantile interpolates the q-quantile of a sample (q in [0,1]). It is
// the exact-sample counterpart of obs.Histogram.Quantile's bucketed
// estimate; the obs tests cross-check the two. An empty sample yields
// 0.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// Quantiles returns the (p50, p95, p99) triple of a sample — the
// shape reported by grid.stats and the paper's wait-time tables.
func Quantiles(xs []float64) (p50, p95, p99 float64) {
	if len(xs) == 0 {
		return 0, 0, 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, 0.50), quantileSorted(sorted, 0.95), quantileSorted(sorted, 0.99)
}

// quantileSorted interpolates the q-quantile of a sorted sample.
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f std=%.2f min=%.2f p50=%.2f p95=%.2f max=%.2f",
		s.N, s.Mean, s.Std, s.Min, s.P50, s.P95, s.Max)
}

// Welford is a streaming mean/variance accumulator.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation in.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the observation count.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Std returns the running sample standard deviation.
func (w *Welford) Std() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n-1))
}

// Histogram counts observations in fixed-width buckets.
type Histogram struct {
	Width   float64
	buckets map[int]int
	n       int
}

// NewHistogram creates a histogram with the given bucket width.
func NewHistogram(width float64) *Histogram {
	return &Histogram{Width: width, buckets: make(map[int]int)}
}

// Add folds one observation in.
func (h *Histogram) Add(x float64) {
	h.buckets[int(math.Floor(x/h.Width))]++
	h.n++
}

// N returns the observation count.
func (h *Histogram) N() int { return h.n }

// String renders an ASCII bar chart.
func (h *Histogram) String() string {
	if h.n == 0 {
		return "(empty)"
	}
	keys := make([]int, 0, len(h.buckets))
	maxCount := 0
	for k, c := range h.buckets {
		keys = append(keys, k)
		if c > maxCount {
			maxCount = c
		}
	}
	sort.Ints(keys)
	var b strings.Builder
	for _, k := range keys {
		c := h.buckets[k]
		bar := strings.Repeat("#", 1+c*40/maxCount)
		fmt.Fprintf(&b, "%10.1f-%-10.1f %6d %s\n", float64(k)*h.Width, float64(k+1)*h.Width, c, bar)
	}
	return b.String()
}

// Imbalance quantifies load imbalance across nodes: the coefficient of
// variation (std/mean) of per-node completed-job counts, plus the
// max/mean ratio. Perfect balance gives CV 0.
func Imbalance(perNode []float64) (cv, maxOverMean float64) {
	s := Summarize(perNode)
	if s.Mean == 0 {
		return 0, 0
	}
	return s.Std / s.Mean, s.Max / s.Mean
}
