package flow_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/flow"
	"repro/internal/grid"
	"repro/internal/ids"
	"repro/internal/match"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/simhost"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// A minimal simulated grid for engine tests, mirroring the grid
// package's test cluster: omniscient central matchmaking (grid
// mechanics are under test elsewhere; here the DAG engine is).

type recorder struct {
	mu  sync.Mutex
	evs []grid.Event
}

func (r *recorder) Record(ev grid.Event) {
	r.mu.Lock()
	r.evs = append(r.evs, ev)
	r.mu.Unlock()
}

type cluster struct {
	e     *sim.Engine
	net   *simnet.Net
	hosts []*simhost.Host
	nodes []*grid.Node
	eps   []*simnet.Endpoint
	rec   *recorder
}

type switchableOverlay struct {
	owners []*simnet.Endpoint
}

func (o *switchableOverlay) RouteJob(rt transport.Runtime, jobID ids.ID, cons resource.Constraints) (transport.Addr, int, error) {
	for _, ep := range o.owners {
		if ep.Up() {
			return transport.Addr(ep.Addr()), 1, nil
		}
	}
	return "", 0, fmt.Errorf("no live owner")
}

func newCluster(t *testing.T, n int, seed int64, cfg grid.Config) *cluster {
	t.Helper()
	e := sim.NewEngine(seed)
	net := simnet.New(e)
	net.Latency = simnet.UniformLatency{Min: 5 * time.Millisecond, Max: 20 * time.Millisecond}
	c := &cluster{e: e, net: net, rec: &recorder{}}
	reg := match.NewRegistry()
	overlay := &switchableOverlay{}
	for i := 0; i < n; i++ {
		ep := net.NewEndpoint(simnet.Addr(fmt.Sprintf("n%03d", i)))
		h := simhost.New(ep)
		caps := resource.Vector{5, 4096, 100}
		gn := grid.NewNode(h, caps, "linux", overlay, &match.Central{Reg: reg}, c.rec, cfg)
		c.hosts = append(c.hosts, h)
		c.eps = append(c.eps, ep)
		c.nodes = append(c.nodes, gn)
		overlay.owners = append(overlay.owners, ep)
		reg.Register(h.Addr(), match.RegistryEntry{Caps: caps, OS: "linux", Load: gn.QueueLen, Up: ep.Up})
		gn.Start()
	}
	return c
}

// do runs fn in a client activity on node i, pumping the engine until
// it returns.
func (c *cluster) do(i int, fn func(rt transport.Runtime)) {
	done := false
	c.hosts[i].Go("test", func(rt transport.Runtime) {
		defer func() { done = true }()
		fn(rt)
	})
	for !done {
		c.e.RunFor(time.Second)
	}
}

// collectingPublisher records flow updates in publish order.
type collectingPublisher struct {
	mu      sync.Mutex
	updates []flow.Update
}

func (p *collectingPublisher) Publish(topic ids.ID, payload []byte) {
	u, err := flow.DecodeUpdate(payload)
	if err != nil {
		panic(err)
	}
	p.mu.Lock()
	p.updates = append(p.updates, u)
	p.mu.Unlock()
}

// TestFlowDiamondDataPassing runs the diamond DAG end to end and
// checks fan-in ordering plus cross-stage data passing: each stage's
// delivered output must equal the pure derivation from its submission
// identity and bundled input, and the fan-in stage must start only
// after both branches delivered.
func TestFlowDiamondDataPassing(t *testing.T) {
	c := newCluster(t, 6, 41, grid.Config{})
	defer c.e.Shutdown()
	client := c.nodes[0]
	g := flow.Graph{Name: "diamond", Stages: []flow.Stage{
		{Name: "prep", Spec: grid.JobSpec{Work: 2 * time.Second, OutputKB: 2}},
		{Name: "left", Spec: grid.JobSpec{Work: 10 * time.Second, OutputKB: 1}, After: []string{"prep"}},
		{Name: "right", Spec: grid.JobSpec{Work: 6 * time.Second, OutputKB: 1}, After: []string{"prep"}},
		{Name: "merge", Spec: grid.JobSpec{Work: 4 * time.Second, OutputKB: 1}, After: []string{"left", "right"}},
	}}
	pub := &collectingPublisher{}
	var results map[string]flow.StageResult
	var err error
	c.do(0, func(rt transport.Runtime) {
		results, err = flow.Run(rt, client, g, flow.Options{
			Deadline: rt.Now() + time.Hour,
			Notify:   pub,
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("completed %d/4 stages", len(results))
	}

	// Fan-in ordering: merge submits only after both branches deliver.
	for _, dep := range []string{"left", "right"} {
		if results["merge"].Started < results[dep].Finished {
			t.Fatalf("merge started %v before %s delivered %v",
				results["merge"].Started, dep, results[dep].Finished)
		}
	}
	// Branches overlap: both start before either finishes.
	if results["right"].Started >= results["left"].Finished {
		t.Fatal("branches serialized")
	}

	// Data passing: outputs are the pure derivation over (client, seq,
	// input). Submission order fixes the seqs: prep=1, then the ready
	// batch left=2, right=3, then merge=4.
	addr := client.Addr()
	prepOut := grid.StageOutput(grid.Profile{Client: addr, Seq: 1, OutputKB: 2})
	if string(results["prep"].Output) != string(prepOut) {
		t.Fatal("prep output is not the pure derivation")
	}
	leftOut := grid.StageOutput(grid.Profile{Client: addr, Seq: 2, OutputKB: 1, Input: prepOut})
	rightOut := grid.StageOutput(grid.Profile{Client: addr, Seq: 3, OutputKB: 1, Input: prepOut})
	if string(results["left"].Output) != string(leftOut) {
		t.Fatal("left output does not derive from prep's bytes")
	}
	if string(results["right"].Output) != string(rightOut) {
		t.Fatal("right output does not derive from prep's bytes")
	}
	// The sink stage carries no output.
	if results["merge"].Output != nil {
		t.Fatal("sink stage carried output")
	}

	// Flow status: one submitted and one delivered per stage, and for
	// every stage the pair is ordered.
	kinds := map[string][]string{}
	pub.mu.Lock()
	for _, u := range pub.updates {
		if u.Flow != "diamond" {
			t.Fatalf("update for flow %q", u.Flow)
		}
		kinds[u.Stage] = append(kinds[u.Stage], u.Kind)
	}
	pub.mu.Unlock()
	for _, s := range []string{"prep", "left", "right", "merge"} {
		if got := fmt.Sprint(kinds[s]); got != "[submitted delivered]" {
			t.Fatalf("stage %s updates = %v", s, got)
		}
	}
}

// TestFlowStallsPastDeadline: an undersized deadline aborts with
// ErrStalled instead of blocking forever.
func TestFlowStallsPastDeadline(t *testing.T) {
	c := newCluster(t, 2, 42, grid.Config{})
	defer c.e.Shutdown()
	g := flow.Graph{Name: "slow", Stages: []flow.Stage{
		{Name: "long", Spec: grid.JobSpec{Work: time.Hour}},
	}}
	c.do(0, func(rt transport.Runtime) {
		_, err := flow.Run(rt, c.nodes[0], g, flow.Options{Deadline: rt.Now() + 10*time.Second})
		if !errors.Is(err, flow.ErrStalled) {
			t.Errorf("deadline: %v", err)
		}
	})
}
