package flow_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/flow"
	"repro/internal/grid"
	"repro/internal/ids"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// The flow soak drives a whole DAG — not independent jobs — through
// seeded crash/drop schedules: owners die mid-stage, run nodes crash
// with inherited input bytes in their resumable state, and the client
// monitor resubmits stages whose lineage was wholly lost. The DAG must
// finish with every stage delivered exactly once, every output equal
// to its pure derivation (so inherited data survived recovery), and
// the full event trace must replay byte-identically.

const (
	flowSoakNodes  = 7
	flowSoakClient = flowSoakNodes - 1
)

type flowSoakHarness struct{ c *cluster }

func (h flowSoakHarness) Crash(i int) { h.c.eps[i].Crash() }
func (h flowSoakHarness) Restart(i int) {
	h.c.eps[i].Restart()
	h.c.nodes[i].Restart()
}

func flowSoakPlan() faultinject.Plan {
	return faultinject.Plan{
		Nodes:           flowSoakNodes,
		Protect:         []int{flowSoakClient},
		Window:          40 * time.Second,
		Crashes:         3,
		RestartProb:     0.7,
		RestartDelayMin: 5 * time.Second,
		RestartDelayMax: 15 * time.Second,
		Rules: []faultinject.Rule{
			{Method: grid.MHeartbeat, DropProb: 0.3},
			{Method: grid.MComplete, DropProb: 0.2, DupProb: 0.2},
			{Method: grid.MResult, DropProb: 0.2, DupProb: 0.2},
			{Method: grid.MAssign, DropProb: 0.1, DupProb: 0.1},
			{Method: grid.MAdopt, DropProb: 0.1, DupProb: 0.1},
			{DelayProb: 0.1, DelayMin: 50 * time.Millisecond, DelayMax: 500 * time.Millisecond},
		},
	}
}

func flowSoakCfg(aware bool) grid.Config {
	return grid.Config{
		HeartbeatEvery:          time.Second,
		RunDeadAfter:            3 * time.Second,
		OwnerDeadAfter:          3 * time.Second,
		MatchRetryEvery:         2 * time.Second,
		MaxRematch:              8,
		IdlePoll:                time.Second,
		CheckpointEvery:         2 * time.Second,
		CheckpointAdaptive:      true,
		CheckpointMinEvery:      time.Second,
		CheckpointMaxEvery:      5 * time.Second,
		CheckpointWorkflowAware: aware,
	}
}

// flowSoakGraph: a fan-out/fan-in DAG with multi-second stages so the
// crash window reliably lands mid-stage. Submission order (and thus
// each stage's client seq) is deterministic: prep=1, mid1=2, mid2=3,
// sink=4.
func flowSoakGraph() flow.Graph {
	return flow.Graph{Name: "soak", Stages: []flow.Stage{
		{Name: "prep", Spec: grid.JobSpec{Work: 4 * time.Second, OutputKB: 2}},
		{Name: "mid1", Spec: grid.JobSpec{Work: 5 * time.Second, OutputKB: 1}, After: []string{"prep"}},
		{Name: "mid2", Spec: grid.JobSpec{Work: 4 * time.Second, OutputKB: 1}, After: []string{"prep"}},
		{Name: "sink", Spec: grid.JobSpec{Work: 3 * time.Second, OutputKB: 1}, After: []string{"mid1", "mid2"}},
	}}
}

// runFlowSoak executes one seeded schedule and returns (trace, resumes):
// the full event trace for replay comparison, and how many resume-from-
// checkpoint events the schedule provoked.
func runFlowSoak(t *testing.T, seed int64, cfg grid.Config) ([]string, int) {
	t.Helper()
	c := newCluster(t, flowSoakNodes, seed, cfg)
	defer c.e.Shutdown()
	client := c.nodes[flowSoakClient]
	client.StartClientMonitor(10 * time.Second)

	sched := faultinject.Generate(seed, flowSoakPlan())
	c.net.Faults = sched.Injector(func() time.Duration { return time.Duration(c.e.Now()) })
	disarm := sched.Arm(c.e, c.net, flowSoakHarness{c}, func(i int) simnet.Addr {
		return simnet.Addr(c.hosts[i].Addr())
	})
	defer disarm()

	var results map[string]flow.StageResult
	var err error
	c.do(flowSoakClient, func(rt transport.Runtime) {
		results, err = flow.Run(rt, client, flowSoakGraph(), flow.Options{
			Deadline: rt.Now() + 10*time.Minute,
		})
	})
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	if len(results) != 4 {
		t.Fatalf("seed %d: %d/4 stages", seed, len(results))
	}

	// Outputs must be the pure derivations even when a stage was
	// resumed on another node or resubmitted under a new GUID — the
	// proof that inherited input bytes survived recovery.
	addr := client.Addr()
	prepOut := grid.StageOutput(grid.Profile{Client: addr, Seq: 1, OutputKB: 2})
	mid1Out := grid.StageOutput(grid.Profile{Client: addr, Seq: 2, OutputKB: 1, Input: prepOut})
	mid2Out := grid.StageOutput(grid.Profile{Client: addr, Seq: 3, OutputKB: 1, Input: prepOut})
	for name, want := range map[string][]byte{"prep": prepOut, "mid1": mid1Out, "mid2": mid2Out} {
		if string(results[name].Output) != string(want) {
			t.Fatalf("seed %d: stage %s output diverged after recovery", seed, name)
		}
	}

	// Exactly once: one delivery per stage lineage, no double fires.
	c.rec.mu.Lock()
	delivered := map[ids.ID]int{}
	total, resumes := 0, 0
	for _, ev := range c.rec.evs {
		switch ev.Kind {
		case grid.EvResultDelivered:
			delivered[ev.JobID]++
			total++
		case grid.EvResumed:
			resumes++
		}
	}
	c.rec.mu.Unlock()
	for id, n := range delivered {
		if n > 1 {
			t.Fatalf("seed %d: job %s delivered %d times", seed, id.Short(), n)
		}
	}
	if total != 4 {
		t.Fatalf("seed %d: %d deliveries, want 4", seed, total)
	}
	return flowEventTrace(c.rec), resumes
}

func flowEventTrace(rec *recorder) []string {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	trace := make([]string, len(rec.evs))
	for i, ev := range rec.evs {
		trace[i] = fmt.Sprintf("%v %s a%d %s @%v +%v d=%s r=%+.2f s%d",
			ev.Kind, ev.JobID.Short(), ev.Attempt, ev.Node, ev.At, ev.Progress, ev.Digest, ev.Delta, ev.Seq)
	}
	return trace
}

// TestFlowCrashSoak: many seeds, workflow-aware checkpointing on. At
// least one schedule across the set must have exercised the
// resume-from-shipped-checkpoint path (mid-DAG owner/run-node loss
// with progress recovered), or the soak is not probing what it claims.
func TestFlowCrashSoak(t *testing.T) {
	seeds := 30
	if testing.Short() {
		seeds = 10
	}
	totalResumes := 0
	for seed := int64(1); seed <= int64(seeds); seed++ {
		_, resumes := runFlowSoak(t, seed, flowSoakCfg(true))
		totalResumes += resumes
	}
	if totalResumes == 0 {
		t.Fatal("no schedule provoked a checkpoint resume; the soak is toothless")
	}
}

// TestFlowCrashSoakReplayDeterministic: the same seed must produce a
// byte-identical event trace on replay, with the workflow-aware policy
// both on and off — the determinism bar every subsystem holds.
func TestFlowCrashSoakReplayDeterministic(t *testing.T) {
	for _, aware := range []bool{false, true} {
		for seed := int64(1); seed <= 3; seed++ {
			a, _ := runFlowSoak(t, seed, flowSoakCfg(aware))
			b, _ := runFlowSoak(t, seed, flowSoakCfg(aware))
			if len(a) != len(b) {
				t.Fatalf("aware=%v seed %d: trace lengths %d vs %d", aware, seed, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("aware=%v seed %d: traces diverge at %d:\n  %s\n  %s", aware, seed, i, a[i], b[i])
				}
			}
		}
	}
}
