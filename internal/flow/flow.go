// Package flow is the workflow-DAG engine over the grid layer: named
// stages with fan-in/fan-out dependency edges, validated upfront
// (topological sort with duplicate/self-dependency/cycle/missing-edge
// detection at parse time), scheduled through the client's batched
// submission path, and recovery-transparent — a stage's owner death,
// handoff, or monitor resubmission is absorbed by the same machinery
// that protects independent jobs, so the DAG never wedges on a fault.
//
// Data passes between stages: a stage with dependents derives an
// output payload (grid.StageOutput, attached to its delivered Result),
// and the engine ships the concatenated outputs of a stage's
// dependencies as its Input. The run node seeds its resumable state
// from those bytes, so the inherited data rides the ordinary
// grid.checkpoint transfer path through every recovery.
//
// The checkpoint policy is workflow-aware (Ni & Harwood): stages whose
// loss would re-execute much downstream work — critical-path and
// high-fan-out stages — carry a CkptBias that tightens the run node's
// adaptive Young's-rule interval by sqrt(bias).
package flow

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/grid"
)

// Stage is one node of the workflow DAG: a job template plus the names
// of the stages whose delivered results gate (and feed) it.
type Stage struct {
	Name  string
	Spec  grid.JobSpec
	After []string
}

// Graph is a declarative workflow: a named set of stages.
type Graph struct {
	Name   string
	Stages []Stage
}

// Validation errors. All are detected upfront by Validate, before
// anything is submitted.
var (
	ErrDuplicateStage = errors.New("flow: duplicate stage name")
	ErrUnknownDep     = errors.New("flow: dependency on unknown stage")
	ErrSelfDep        = errors.New("flow: stage depends on itself")
	ErrCycle          = errors.New("flow: dependency cycle")
	// ErrStalled is returned by Run when the deadline passes with
	// stages still outstanding.
	ErrStalled = errors.New("flow: deadline passed")
)

// MaxCkptBias caps the computed workflow bias: beyond it the adaptive
// interval is already pinned to its floor for any sane configuration,
// and an unbounded ratio would let one long tail stage dominate.
const MaxCkptBias = 16.0

// Plan is a validated, scheduled view of a Graph.
type Plan struct {
	Graph Graph
	// Order is a deterministic topological order (ties broken by stage
	// name), the engine's submission scan order.
	Order []string
	// Deps and Dependents are the edge sets, sorted by name. Deps also
	// fixes the input-bundle concatenation order.
	Deps       map[string][]string
	Dependents map[string][]string
	// Bias is the per-stage workflow checkpoint bias: 1 + the ratio of
	// transitive downstream work to the stage's own work, capped at
	// MaxCkptBias. Sink stages get 1 (unbiased); an explicit
	// Spec.CkptBias wins over the computed value.
	Bias map[string]float64
	// CriticalPath names the stages on the longest work-weighted
	// dependency path, first to last.
	CriticalPath []string
}

// stageByName indexes stages and rejects duplicates.
func stageByName(g Graph) (map[string]*Stage, error) {
	byName := make(map[string]*Stage, len(g.Stages))
	for i := range g.Stages {
		s := &g.Stages[i]
		if s.Name == "" {
			return nil, fmt.Errorf("flow: stage %d has no name", i)
		}
		if _, dup := byName[s.Name]; dup {
			return nil, fmt.Errorf("%w: %q", ErrDuplicateStage, s.Name)
		}
		byName[s.Name] = s
	}
	return byName, nil
}

// Validate checks the graph upfront and returns its execution plan:
// topological order, edge sets, per-stage checkpoint bias, and the
// critical path. Every structural defect — duplicate names, edges to
// unknown stages, self-dependencies, cycles of any length — is
// reported here, before a single job is submitted.
func (g Graph) Validate() (*Plan, error) {
	byName, err := stageByName(g)
	if err != nil {
		return nil, err
	}
	deps := make(map[string][]string, len(g.Stages))
	dependents := make(map[string][]string, len(g.Stages))
	for _, s := range g.Stages {
		seen := make(map[string]bool, len(s.After))
		for _, d := range s.After {
			if d == s.Name {
				return nil, fmt.Errorf("%w: %q", ErrSelfDep, s.Name)
			}
			if _, ok := byName[d]; !ok {
				return nil, fmt.Errorf("%w: stage %q after %q", ErrUnknownDep, s.Name, d)
			}
			if seen[d] {
				continue // a repeated edge is harmless; keep one
			}
			seen[d] = true
			deps[s.Name] = append(deps[s.Name], d)
			dependents[d] = append(dependents[d], s.Name)
		}
	}
	for _, edges := range deps {
		sort.Strings(edges)
	}
	for _, edges := range dependents {
		sort.Strings(edges)
	}

	// Kahn's algorithm with a sorted ready set: the order is a pure
	// function of the graph, independent of map iteration.
	indeg := make(map[string]int, len(g.Stages))
	for _, s := range g.Stages {
		indeg[s.Name] = len(deps[s.Name])
	}
	var ready []string
	for _, s := range g.Stages {
		if indeg[s.Name] == 0 {
			ready = append(ready, s.Name)
		}
	}
	sort.Strings(ready)
	order := make([]string, 0, len(g.Stages))
	for len(ready) > 0 {
		name := ready[0]
		ready = ready[1:]
		order = append(order, name)
		changed := false
		for _, d := range dependents[name] {
			indeg[d]--
			if indeg[d] == 0 {
				ready = append(ready, d)
				changed = true
			}
		}
		if changed {
			sort.Strings(ready)
		}
	}
	if len(order) < len(g.Stages) {
		var stuck []string
		for name, n := range indeg {
			if n > 0 {
				stuck = append(stuck, name)
			}
		}
		sort.Strings(stuck)
		return nil, fmt.Errorf("%w through %v", ErrCycle, stuck)
	}

	p := &Plan{
		Graph:      g,
		Order:      order,
		Deps:       deps,
		Dependents: dependents,
		Bias:       make(map[string]float64, len(g.Stages)),
	}
	p.computeBias(byName)
	p.computeCriticalPath(byName)
	return p, nil
}

// computeBias fills Plan.Bias: 1 + downstream/own work, where
// downstream is the summed Work of the stage's transitive dependents —
// exactly what a lost snapshot would delay. Fan-out is covered for
// free: many dependents means a large downstream sum.
func (p *Plan) computeBias(byName map[string]*Stage) {
	// Transitive descendant sets, built in reverse topological order so
	// each stage's set is final before its dependencies read it.
	desc := make(map[string]map[string]bool, len(p.Order))
	for i := len(p.Order) - 1; i >= 0; i-- {
		name := p.Order[i]
		set := make(map[string]bool)
		for _, d := range p.Dependents[name] {
			set[d] = true
			for dd := range desc[d] {
				set[dd] = true
			}
		}
		desc[name] = set
	}
	for _, name := range p.Order {
		if explicit := byName[name].Spec.CkptBias; explicit > 0 {
			p.Bias[name] = explicit
			continue
		}
		var down time.Duration
		for d := range desc[name] {
			down += byName[d].Spec.Work
		}
		if down <= 0 {
			p.Bias[name] = 1
			continue
		}
		own := byName[name].Spec.Work
		if own <= 0 {
			own = time.Second
		}
		bias := 1 + float64(down)/float64(own)
		if bias > MaxCkptBias {
			bias = MaxCkptBias
		}
		p.Bias[name] = bias
	}
}

// computeCriticalPath fills Plan.CriticalPath with the longest
// work-weighted path, ties broken by stage name for determinism.
func (p *Plan) computeCriticalPath(byName map[string]*Stage) {
	// cp[s] = s.Work + max over dependents cp[d]; next[s] = that argmax.
	cp := make(map[string]time.Duration, len(p.Order))
	next := make(map[string]string, len(p.Order))
	for i := len(p.Order) - 1; i >= 0; i-- {
		name := p.Order[i]
		var best time.Duration
		bestName := ""
		for _, d := range p.Dependents[name] {
			if cp[d] > best || (cp[d] == best && (bestName == "" || d < bestName)) {
				best, bestName = cp[d], d
			}
		}
		cp[name] = byName[name].Spec.Work + best
		next[name] = bestName
	}
	start := ""
	for _, name := range p.Order {
		if len(p.Deps[name]) > 0 {
			continue // critical path starts at a root
		}
		if start == "" || cp[name] > cp[start] || (cp[name] == cp[start] && name < start) {
			start = name
		}
	}
	for at := start; at != ""; at = next[at] {
		p.CriticalPath = append(p.CriticalPath, at)
	}
}

// CriticalWork returns the summed Work along the critical path.
func (p *Plan) CriticalWork() time.Duration {
	byName := make(map[string]*Stage, len(p.Graph.Stages))
	for i := range p.Graph.Stages {
		byName[p.Graph.Stages[i].Name] = &p.Graph.Stages[i]
	}
	var sum time.Duration
	for _, name := range p.CriticalPath {
		sum += byName[name].Spec.Work
	}
	return sum
}

// FromGrid converts the deprecated grid.Workflow shape into a Graph,
// so existing DAG definitions run on this engine unchanged.
func FromGrid(name string, wf grid.Workflow) Graph {
	g := Graph{Name: name, Stages: make([]Stage, 0, len(wf.Tasks))}
	for _, t := range wf.Tasks {
		g.Stages = append(g.Stages, Stage{Name: t.Name, Spec: t.Spec, After: t.DependsOn})
	}
	return g
}
