package flow

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"time"

	"repro/internal/ids"
	"repro/internal/transport"
)

// Flow status rides the PR 8 notification overlay: the engine
// publishes one Update per stage transition to the workflow's own
// topic, and watchers subscribe there instead of polling the client.
// Like grid.JobUpdate, the payload is gob inside pubsub's envelope —
// not a new wire message.

// FlowTopic returns the pub/sub topic of one client's named workflow.
func FlowTopic(client transport.Addr, flow string) ids.ID {
	return ids.HashString(fmt.Sprintf("flow/%s/%s", client, flow))
}

// Update is the payload of one flow-status notification: a stage
// transition as the engine saw it.
type Update struct {
	Flow    string
	Stage   string
	Kind    string // "submitted" | "delivered"
	JobID   ids.ID // the attempt's GUID
	Attempt int
	At      time.Duration
}

// EncodeUpdate serializes an Update for the pub/sub payload.
func EncodeUpdate(u Update) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(u); err != nil {
		panic("flow: encode update: " + err.Error())
	}
	return buf.Bytes()
}

// DecodeUpdate parses a pub/sub payload produced by EncodeUpdate.
func DecodeUpdate(data []byte) (Update, error) {
	var u Update
	err := gob.NewDecoder(bytes.NewReader(data)).Decode(&u)
	return u, err
}
