package flow

import (
	"fmt"
	"time"

	"repro/internal/grid"
	"repro/internal/ids"
	"repro/internal/transport"
)

// Publisher is where the engine pushes flow-status transitions; a
// *pubsub.Broker satisfies it. Nil disables publishing.
type Publisher interface {
	Publish(topic ids.ID, payload []byte)
}

// Options tunes one workflow run.
type Options struct {
	// Deadline is the absolute instant (on rt's clock) past which the
	// run aborts with ErrStalled. Zero means no deadline.
	Deadline time.Duration
	// Notify, when set, receives an Update on every stage submission
	// and delivery, published to FlowTopic(client, graph name).
	Notify Publisher
	// OnStage, when set, is called as each stage delivers — in plan
	// order within a harvest round, so the callback sequence is
	// deterministic.
	OnStage func(StageResult)
}

// StageResult records one stage's completion.
type StageResult struct {
	Name     string
	JobID    ids.ID // the delivering attempt's GUID
	Attempt  int
	Seq      int           // client-local sequence number (stable across resubmission)
	Started  time.Duration // submit instant
	Finished time.Duration // delivery instant
	Output   []byte        // carried output bytes (nil for sink stages)
}

// Run validates the graph and executes it to completion: ready stages
// are submitted together through the client's batched injection path,
// completions are harvested by client-local sequence number (stable
// across monitor resubmissions), and each stage's Input is the bundle
// of its dependencies' delivered outputs. It must run in a client
// activity on the node's host, like Submit.
func Run(rt transport.Runtime, client *grid.Node, g Graph, opt Options) (map[string]StageResult, error) {
	plan, err := g.Validate()
	if err != nil {
		return nil, err
	}
	return RunPlan(rt, client, plan, opt)
}

// inflightStage tracks one submitted, not-yet-delivered stage.
type inflightStage struct {
	seq     int // client-local sequence number
	started time.Duration
}

// RunPlan executes an already-validated plan; see Run.
func RunPlan(rt transport.Runtime, client *grid.Node, plan *Plan, opt Options) (map[string]StageResult, error) {
	byName := make(map[string]*Stage, len(plan.Graph.Stages))
	for i := range plan.Graph.Stages {
		byName[plan.Graph.Stages[i].Name] = &plan.Graph.Stages[i]
	}
	topic := FlowTopic(client.Addr(), plan.Graph.Name)
	publish := func(kind, stage string, jobID ids.ID, attempt int) {
		if opt.Notify == nil {
			return
		}
		opt.Notify.Publish(topic, EncodeUpdate(Update{
			Flow: plan.Graph.Name, Stage: stage, Kind: kind,
			JobID: jobID, Attempt: attempt, At: rt.Now(),
		}))
	}

	results := make(map[string]StageResult, len(plan.Order))
	inflight := make(map[string]inflightStage, len(plan.Order))

	for len(results) < len(plan.Order) {
		// Submit every stage whose dependencies have all delivered, in
		// one batch. Input and policy hints are stamped here: the bundle
		// of dependency outputs (in sorted dependency-name order), the
		// plan's checkpoint bias, and CarryOutput for stages that feed
		// someone downstream.
		var names []string
		var specs []grid.JobSpec
		for _, name := range plan.Order {
			if _, done := results[name]; done {
				continue
			}
			if _, running := inflight[name]; running {
				continue
			}
			ready := true
			for _, d := range plan.Deps[name] {
				if _, ok := results[d]; !ok {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			spec := byName[name].Spec
			spec.Input = bundleInputs(plan.Deps[name], results)
			if spec.CkptBias == 0 {
				spec.CkptBias = plan.Bias[name]
			}
			if len(plan.Dependents[name]) > 0 {
				spec.CarryOutput = true
			}
			names = append(names, name)
			specs = append(specs, spec)
		}
		if len(specs) > 0 {
			at := rt.Now()
			// The inject error is informational: every job is registered
			// for monitoring before injection, so failed injects are
			// resubmitted by the client monitor, not by us.
			jobIDs, _ := client.SubmitAll(rt, specs)
			for i, name := range names {
				seq, ok := client.SeqFor(jobIDs[i])
				if !ok {
					return results, fmt.Errorf("flow: stage %q vanished after submit", name)
				}
				inflight[name] = inflightStage{seq: seq, started: at}
				publish("submitted", name, jobIDs[i], 0)
			}
		}

		// Harvest deliveries by sequence number, in plan order so the
		// publish/callback sequence is deterministic.
		harvested := 0
		for _, name := range plan.Order {
			fs, running := inflight[name]
			if !running {
				continue
			}
			st, ok := client.StatusBySeq(fs.seq)
			if !ok || !st.Done {
				continue
			}
			sr := StageResult{
				Name: name, JobID: st.JobID, Attempt: st.Attempt, Seq: fs.seq,
				Started: fs.started, Finished: st.Finished, Output: st.Res.Data,
			}
			results[name] = sr
			delete(inflight, name)
			harvested++
			publish("delivered", name, st.JobID, st.Attempt)
			if opt.OnStage != nil {
				opt.OnStage(sr)
			}
		}
		if len(results) == len(plan.Order) {
			return results, nil
		}
		if opt.Deadline > 0 && rt.Now() >= opt.Deadline {
			return results, fmt.Errorf("%w: %d/%d stages done", ErrStalled, len(results), len(plan.Order))
		}
		if harvested > 0 {
			// A delivery may have unblocked dependents: go straight back
			// to the submit scan. Waiting here would park on an event that
			// can never arrive when nothing is left in flight — on the
			// live transport that is a stall until the deadline.
			continue
		}
		// Wait for the next result or pushed lineage transition; with a
		// deadline the wait is capped so the stall check above fires.
		maxWait := time.Duration(0)
		if opt.Deadline > 0 {
			maxWait = opt.Deadline - rt.Now()
		}
		client.AwaitResultEvent(rt, maxWait)
	}
	return results, nil
}

// bundleInputs concatenates the delivered outputs of a stage's
// dependencies in sorted dependency-name order (the order deps is
// stored in) — a deterministic input payload for the dependent stage.
func bundleInputs(deps []string, results map[string]StageResult) []byte {
	var out []byte
	for _, d := range deps {
		out = append(out, results[d].Output...)
	}
	return out
}
