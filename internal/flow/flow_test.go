package flow_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/flow"
	"repro/internal/grid"
)

func stage(name string, work time.Duration, after ...string) flow.Stage {
	return flow.Stage{Name: name, Spec: grid.JobSpec{Work: work}, After: after}
}

func TestValidateRejectsBadGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    flow.Graph
		want error
	}{
		{"duplicate", flow.Graph{Stages: []flow.Stage{stage("a", time.Second), stage("a", time.Second)}}, flow.ErrDuplicateStage},
		{"self-dep", flow.Graph{Stages: []flow.Stage{stage("a", time.Second, "a")}}, flow.ErrSelfDep},
		{"missing", flow.Graph{Stages: []flow.Stage{stage("a", time.Second, "ghost")}}, flow.ErrUnknownDep},
		{"two-cycle", flow.Graph{Stages: []flow.Stage{
			stage("a", time.Second, "b"), stage("b", time.Second, "a"),
		}}, flow.ErrCycle},
		{"long-cycle", flow.Graph{Stages: []flow.Stage{
			stage("a", time.Second, "e"), stage("b", time.Second, "a"),
			stage("c", time.Second, "b"), stage("d", time.Second, "c"),
			stage("e", time.Second, "d"),
		}}, flow.ErrCycle},
		{"cycle-behind-valid-prefix", flow.Graph{Stages: []flow.Stage{
			stage("root", time.Second),
			stage("x", time.Second, "root", "z"), stage("y", time.Second, "x"),
			stage("z", time.Second, "y"),
		}}, flow.ErrCycle},
		{"unnamed", flow.Graph{Stages: []flow.Stage{{Spec: grid.JobSpec{Work: time.Second}}}}, nil},
	}
	for _, tc := range cases {
		_, err := tc.g.Validate()
		if err == nil {
			t.Errorf("%s: validated", tc.name)
			continue
		}
		if tc.want != nil && !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func diamond() flow.Graph {
	return flow.Graph{Name: "diamond", Stages: []flow.Stage{
		stage("merge", 4*time.Second, "left", "right"),
		stage("left", 10*time.Second, "prep"),
		stage("right", 6*time.Second, "prep"),
		stage("prep", 2*time.Second),
	}}
}

func TestValidatePlanDiamond(t *testing.T) {
	p, err := diamond().Validate()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := strings.Join(p.Order, " "), "prep left right merge"; got != want {
		t.Fatalf("order = %q, want %q", got, want)
	}
	if got := p.Deps["merge"]; len(got) != 2 || got[0] != "left" || got[1] != "right" {
		t.Fatalf("merge deps = %v", got)
	}
	if got := p.Dependents["prep"]; len(got) != 2 || got[0] != "left" || got[1] != "right" {
		t.Fatalf("prep dependents = %v", got)
	}
	// Critical path is the heaviest chain: prep -> left -> merge.
	if got, want := strings.Join(p.CriticalPath, " "), "prep left merge"; got != want {
		t.Fatalf("critical path = %q, want %q", got, want)
	}
	if p.CriticalWork() != 16*time.Second {
		t.Fatalf("critical work = %v", p.CriticalWork())
	}
	// Bias: prep carries all 20s of downstream work over its own 2s
	// (ratio 10 -> bias 11), left 4s/10s -> 1.4, right 4s/6s -> 1.67,
	// and the sink is unbiased.
	if got := p.Bias["prep"]; got != 11 {
		t.Fatalf("prep bias = %v", got)
	}
	if got := p.Bias["merge"]; got != 1 {
		t.Fatalf("merge bias = %v", got)
	}
	if p.Bias["left"] <= 1 || p.Bias["left"] >= p.Bias["right"] {
		t.Fatalf("fan biases left=%v right=%v", p.Bias["left"], p.Bias["right"])
	}
}

func TestValidateBiasCapAndOverride(t *testing.T) {
	// A tiny root feeding enormous downstream work hits the cap.
	g := flow.Graph{Stages: []flow.Stage{
		stage("root", time.Second),
		stage("huge", time.Hour, "root"),
	}}
	p, err := g.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if p.Bias["root"] != flow.MaxCkptBias {
		t.Fatalf("capped bias = %v, want %v", p.Bias["root"], flow.MaxCkptBias)
	}
	// An explicit Spec.CkptBias wins over the computed value.
	g.Stages[0].Spec.CkptBias = 3
	p, err = g.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if p.Bias["root"] != 3 {
		t.Fatalf("explicit bias = %v, want 3", p.Bias["root"])
	}
}

func TestParseFlowfile(t *testing.T) {
	src := `
# render pipeline
flow render
stage prep work=4s out=2
stage left after=prep work=8s out=1
stage right after=prep work=6s out=1 bias=2.5
stage merge after=left,right work=3s in=2
`
	g, err := flow.Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "render" || len(g.Stages) != 4 {
		t.Fatalf("parsed %q with %d stages", g.Name, len(g.Stages))
	}
	if s := g.Stages[2]; s.Name != "right" || s.Spec.Work != 6*time.Second ||
		s.Spec.OutputKB != 1 || s.Spec.CkptBias != 2.5 || len(s.After) != 1 {
		t.Fatalf("stage right = %+v", s)
	}
	if s := g.Stages[3]; len(s.After) != 2 || s.After[0] != "left" || s.Spec.InputKB != 2 {
		t.Fatalf("stage merge = %+v", s)
	}
	if _, err := g.Validate(); err != nil {
		t.Fatalf("parsed graph invalid: %v", err)
	}

	for _, bad := range []string{
		"",                         // no stages
		"stage",                    // missing name
		"stage a work=",            // bad duration
		"stage a wat=1",            // unknown option
		"orbit a",                  // unknown directive
		"flow a b\nstage x",        // malformed flow line
		"stage a after",            // option without value
		"stage a out=somethinglot", // bad int
	} {
		if _, err := flow.Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("parsed %q", bad)
		}
	}
}

func TestFromGrid(t *testing.T) {
	wf := grid.Workflow{Tasks: []grid.Task{
		{Name: "sim", Spec: grid.JobSpec{Work: 10 * time.Second}},
		{Name: "analyze", Spec: grid.JobSpec{Work: 5 * time.Second}, DependsOn: []string{"sim"}},
	}}
	p, err := flow.FromGrid("legacy", wf).Validate()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := strings.Join(p.Order, " "), "sim analyze"; got != want {
		t.Fatalf("order = %q, want %q", got, want)
	}
}

func TestUpdateEnvelopeRoundTrip(t *testing.T) {
	u := flow.Update{Flow: "render", Stage: "merge", Kind: "delivered", Attempt: 2, At: 90 * time.Second}
	got, err := flow.DecodeUpdate(flow.EncodeUpdate(u))
	if err != nil {
		t.Fatal(err)
	}
	if got != u {
		t.Fatalf("round trip %+v != %+v", got, u)
	}
	if _, err := flow.DecodeUpdate([]byte("junk")); err == nil {
		t.Fatal("junk decoded")
	}
	if flow.FlowTopic("c1", "render") == flow.FlowTopic("c1", "other") {
		t.Fatal("topics collide")
	}
}
