package flow

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Flowfile: the declarative workflow format `gridctl flow run` reads.
// One directive per line, '#' comments, blank lines ignored:
//
//	flow render
//	stage prep work=4s out=2
//	stage left after=prep work=8s out=1
//	stage right after=prep work=6s out=1
//	stage merge after=left,right work=3s
//
// Stage options: after=a,b (dependencies), work=<duration>,
// in=<KB> (declared input size), out=<KB> (output size — also the
// carried payload size for stages with dependents), bias=<float>
// (explicit checkpoint bias overriding the plan's computed one).
// Validation (Graph.Validate) runs before anything is submitted.

// Parse reads a flowfile and returns the graph it declares. The graph
// is syntactically parsed only; call Validate for structural checks.
func Parse(r io.Reader) (Graph, error) {
	var g Graph
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "flow":
			if len(fields) != 2 {
				return g, fmt.Errorf("flow: line %d: want 'flow <name>'", lineNo)
			}
			g.Name = fields[1]
		case "stage":
			if len(fields) < 2 {
				return g, fmt.Errorf("flow: line %d: want 'stage <name> [opts]'", lineNo)
			}
			s := Stage{Name: fields[1]}
			for _, opt := range fields[2:] {
				k, v, ok := strings.Cut(opt, "=")
				if !ok {
					return g, fmt.Errorf("flow: line %d: option %q is not key=value", lineNo, opt)
				}
				var err error
				switch k {
				case "after":
					s.After = strings.Split(v, ",")
				case "work":
					s.Spec.Work, err = time.ParseDuration(v)
				case "in":
					s.Spec.InputKB, err = strconv.Atoi(v)
				case "out":
					s.Spec.OutputKB, err = strconv.Atoi(v)
				case "bias":
					s.Spec.CkptBias, err = strconv.ParseFloat(v, 64)
				default:
					return g, fmt.Errorf("flow: line %d: unknown option %q", lineNo, k)
				}
				if err != nil {
					return g, fmt.Errorf("flow: line %d: option %q: %v", lineNo, opt, err)
				}
			}
			g.Stages = append(g.Stages, s)
		default:
			return g, fmt.Errorf("flow: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return g, fmt.Errorf("flow: read: %w", err)
	}
	if g.Name == "" {
		g.Name = "flow"
	}
	if len(g.Stages) == 0 {
		return g, fmt.Errorf("flow: no stages declared")
	}
	return g, nil
}

// MustGraph is a test/experiment helper: validate or panic.
func MustGraph(g Graph) *Plan {
	p, err := g.Validate()
	if err != nil {
		panic(err)
	}
	return p
}
