package ids

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHashDeterministic(t *testing.T) {
	a := HashString("node-1")
	b := HashString("node-1")
	if a != b {
		t.Fatalf("Hash not deterministic: %s vs %s", a, b)
	}
	c := HashString("node-2")
	if a == c {
		t.Fatalf("distinct keys collided: %s", a)
	}
}

func TestParseRoundTrip(t *testing.T) {
	id := HashString("round-trip")
	got, err := Parse(id.String())
	if err != nil {
		t.Fatalf("Parse(%q): %v", id.String(), err)
	}
	if got != id {
		t.Fatalf("round trip mismatch: %s vs %s", got, id)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{"", "abcd", "zz" + HashString("x").String()[2:]}
	for _, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", c)
		}
	}
}

func TestFromUint64(t *testing.T) {
	id := FromUint64(0xdeadbeef)
	if got := id.Uint64(); got != 0xdeadbeef {
		t.Fatalf("Uint64 = %#x, want 0xdeadbeef", got)
	}
	if !FromUint64(0).IsZero() {
		t.Fatal("FromUint64(0) not zero")
	}
}

func TestAddSubInverse(t *testing.T) {
	f := func(a, b uint64) bool {
		x, y := FromUint64(a), FromUint64(b)
		return x.Add(y).Sub(y) == x && x.Sub(y).Add(y) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddCarryPropagation(t *testing.T) {
	// all-ones + 1 wraps to zero
	var ones ID
	for i := range ones {
		ones[i] = 0xff
	}
	if got := ones.Add(FromUint64(1)); !got.IsZero() {
		t.Fatalf("max + 1 = %s, want 0", got)
	}
	// 0 - 1 wraps to all-ones
	if got := (ID{}).Sub(FromUint64(1)); got != ones {
		t.Fatalf("0 - 1 = %s, want all-ones", got)
	}
}

func TestAddPow2(t *testing.T) {
	id := FromUint64(5)
	if got := id.AddPow2(0); got != FromUint64(6) {
		t.Fatalf("5 + 2^0 = %s, want 6", got)
	}
	if got := id.AddPow2(10); got != FromUint64(5+1024) {
		t.Fatalf("5 + 2^10 = %s", got)
	}
	// 2^159 twice wraps back
	top := (ID{}).AddPow2(Bits - 1)
	if got := top.AddPow2(Bits - 1); !got.IsZero() {
		t.Fatalf("2^159 + 2^159 = %s, want 0", got)
	}
}

func TestAddPow2Panics(t *testing.T) {
	for _, k := range []int{-1, Bits} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AddPow2(%d) did not panic", k)
				}
			}()
			(ID{}).AddPow2(k)
		}()
	}
}

func TestCmp(t *testing.T) {
	a, b := FromUint64(1), FromUint64(2)
	if a.Cmp(b) != -1 || b.Cmp(a) != 1 || a.Cmp(a) != 0 {
		t.Fatal("Cmp ordering wrong")
	}
	if !a.Less(b) || b.Less(a) {
		t.Fatal("Less wrong")
	}
	// High bytes dominate.
	var hi ID
	hi[0] = 1
	if !b.Less(hi) {
		t.Fatal("high-byte comparison wrong")
	}
}

func TestBetweenSimpleArc(t *testing.T) {
	a, b := FromUint64(10), FromUint64(20)
	for _, tc := range []struct {
		x    uint64
		want bool
	}{
		{15, true}, {10, false}, {20, false}, {5, false}, {25, false}, {11, true}, {19, true},
	} {
		if got := Between(FromUint64(tc.x), a, b); got != tc.want {
			t.Errorf("Between(%d, 10, 20) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestBetweenWrappingArc(t *testing.T) {
	a, b := FromUint64(100), FromUint64(5) // arc wraps through 0
	for _, tc := range []struct {
		x    uint64
		want bool
	}{
		{101, true}, {3, true}, {0, true}, {100, false}, {5, false}, {50, false},
	} {
		if got := Between(FromUint64(tc.x), a, b); got != tc.want {
			t.Errorf("Between(%d, 100, 5) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestBetweenDegenerateArc(t *testing.T) {
	// a == b: everything except a itself is inside.
	a := FromUint64(42)
	if Between(a, a, a) {
		t.Error("Between(a,a,a) = true")
	}
	if !Between(FromUint64(7), a, a) {
		t.Error("Between(7,a,a) = false")
	}
}

func TestBetweenRightIncl(t *testing.T) {
	a, b := FromUint64(10), FromUint64(20)
	if !BetweenRightIncl(b, a, b) {
		t.Error("right endpoint should be included")
	}
	if BetweenRightIncl(a, a, b) {
		t.Error("left endpoint should be excluded")
	}
}

func TestDistance(t *testing.T) {
	a, b := FromUint64(10), FromUint64(25)
	if got := Distance(a, b); got != FromUint64(15) {
		t.Fatalf("Distance(10,25) = %s, want 15", got)
	}
	// Wrapping distance: from 25 back to 10 is 2^160 - 15.
	d := Distance(b, a)
	if d.Add(FromUint64(15)) != (ID{}) {
		t.Fatalf("wrapping distance wrong: %s", d)
	}
}

func TestPrefixRoundTrip(t *testing.T) {
	f := func(p uint64) bool {
		const m = 16
		p &= (1 << m) - 1
		return FromPrefix(p, m).Prefix(m) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixOfHash(t *testing.T) {
	id := HashString("prefix-test")
	p := id.Prefix(8)
	if byte(p) != id[0] {
		t.Fatalf("Prefix(8) = %#x, want first byte %#x", p, id[0])
	}
}

func TestClearLowestSetBit(t *testing.T) {
	for _, tc := range []struct{ in, want uint64 }{
		{0, 0}, {1, 0}, {2, 0}, {3, 2}, {0b1100, 0b1000}, {0b1010100, 0b1010000},
	} {
		if got := ClearLowestSetBit(tc.in); got != tc.want {
			t.Errorf("ClearLowestSetBit(%#b) = %#b, want %#b", tc.in, got, tc.want)
		}
	}
}

func TestClearLowestSetBitReachesZero(t *testing.T) {
	// Iterating the RN-Tree parent rule must terminate at 0 within
	// popcount steps — the property the tree's bounded height rests on.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		v := rng.Uint64()
		steps := 0
		for v != 0 {
			v = ClearLowestSetBit(v)
			steps++
			if steps > 64 {
				t.Fatal("parent chain did not terminate")
			}
		}
	}
}

func TestBetweenAntisymmetry(t *testing.T) {
	// For distinct a, b and x not an endpoint, x is in exactly one of
	// (a,b) and (b,a).
	f := func(x, a, b uint64) bool {
		X, A, B := FromUint64(x), FromUint64(a), FromUint64(b)
		if A == B || X == A || X == B {
			return true
		}
		return Between(X, A, B) != Between(X, B, A)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShort(t *testing.T) {
	id := HashString("short")
	if got := id.Short(); len(got) != 8 || id.String()[:8] != got {
		t.Fatalf("Short() = %q", got)
	}
}
