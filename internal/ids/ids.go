// Package ids provides 160-bit globally unique identifiers (GUIDs) and
// the modular ring arithmetic needed by DHT overlays such as Chord.
//
// Identifiers are fixed-size [20]byte values interpreted as big-endian
// unsigned integers modulo 2^160. The zero value is the identifier 0.
package ids

import (
	"crypto/sha1"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// Bits is the number of bits in an identifier.
const Bits = 160

// Bytes is the number of bytes in an identifier.
const Bytes = Bits / 8

// ID is a 160-bit identifier on the ring [0, 2^160), big-endian.
type ID [Bytes]byte

// Hash returns the SHA-1 based identifier of an arbitrary byte string.
// DHT GUIDs for nodes and jobs are derived this way, matching the
// "computationally secure hashes" the paper assumes.
func Hash(data []byte) ID {
	return ID(sha1.Sum(data))
}

// HashString returns the identifier of a string key.
func HashString(s string) ID {
	return Hash([]byte(s))
}

// FromUint64 returns the identifier whose value is v.
func FromUint64(v uint64) ID {
	var id ID
	binary.BigEndian.PutUint64(id[Bytes-8:], v)
	return id
}

// Uint64 returns the low 64 bits of the identifier.
func (id ID) Uint64() uint64 {
	return binary.BigEndian.Uint64(id[Bytes-8:])
}

// Parse decodes a 40-character hex string into an ID.
func Parse(s string) (ID, error) {
	var id ID
	if len(s) != 2*Bytes {
		return id, fmt.Errorf("ids: identifier %q must be %d hex characters", s, 2*Bytes)
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return id, fmt.Errorf("ids: identifier %q: %w", s, err)
	}
	copy(id[:], b)
	return id, nil
}

// String returns the full 40-character hex encoding.
func (id ID) String() string {
	return hex.EncodeToString(id[:])
}

// Short returns an abbreviated hex prefix for logs.
func (id ID) Short() string {
	return hex.EncodeToString(id[:4])
}

// IsZero reports whether the identifier is 0.
func (id ID) IsZero() bool {
	return id == ID{}
}

// Cmp compares two identifiers as unsigned integers, returning
// -1, 0, or +1.
func (id ID) Cmp(other ID) int {
	for i := 0; i < Bytes; i++ {
		switch {
		case id[i] < other[i]:
			return -1
		case id[i] > other[i]:
			return 1
		}
	}
	return 0
}

// Less reports whether id < other.
func (id ID) Less(other ID) bool { return id.Cmp(other) < 0 }

// Add returns (id + other) mod 2^160.
func (id ID) Add(other ID) ID {
	var out ID
	var carry uint16
	for i := Bytes - 1; i >= 0; i-- {
		sum := uint16(id[i]) + uint16(other[i]) + carry
		out[i] = byte(sum)
		carry = sum >> 8
	}
	return out
}

// Sub returns (id - other) mod 2^160.
func (id ID) Sub(other ID) ID {
	var out ID
	var borrow uint16
	for i := Bytes - 1; i >= 0; i-- {
		diff := uint16(id[i]) - uint16(other[i]) - borrow
		out[i] = byte(diff)
		borrow = (diff >> 8) & 1
	}
	return out
}

// AddPow2 returns (id + 2^k) mod 2^160 for 0 <= k < Bits. It computes
// the start of the k-th Chord finger interval.
func (id ID) AddPow2(k int) ID {
	if k < 0 || k >= Bits {
		panic(fmt.Sprintf("ids: AddPow2 exponent %d out of range [0,%d)", k, Bits))
	}
	var p ID
	byteIdx := Bytes - 1 - k/8
	p[byteIdx] = 1 << (k % 8)
	return id.Add(p)
}

// Between reports whether x lies on the ring arc (a, b) traversed
// clockwise (increasing) from a, exclusive at both ends. When a == b
// the arc covers the whole ring except a itself.
func Between(x, a, b ID) bool {
	ca, cb := a.Cmp(x), x.Cmp(b)
	if a.Cmp(b) < 0 {
		return ca < 0 && cb < 0
	}
	// Arc wraps around zero (or a == b, covering everything but a).
	return ca < 0 || cb < 0
}

// BetweenRightIncl reports whether x lies on the arc (a, b], the
// successor-ownership test used by Chord: x is owned by b when x is in
// (predecessor(b), b].
func BetweenRightIncl(x, a, b ID) bool {
	return Between(x, a, b) || x == b
}

// Distance returns the clockwise ring distance from a to b,
// i.e. (b - a) mod 2^160.
func Distance(a, b ID) ID {
	return b.Sub(a)
}

// Prefix returns the top m bits of the identifier as a uint64
// (m must be in [1, 64]). The RN-Tree parent rule operates on this
// truncated prefix.
func (id ID) Prefix(m int) uint64 {
	if m < 1 || m > 64 {
		panic(fmt.Sprintf("ids: Prefix width %d out of range [1,64]", m))
	}
	v := binary.BigEndian.Uint64(id[:8])
	return v >> (64 - uint(m))
}

// FromPrefix returns the identifier whose top m bits are p and whose
// remaining bits are zero. It is the inverse of Prefix for identifiers
// produced by FromPrefix.
func FromPrefix(p uint64, m int) ID {
	if m < 1 || m > 64 {
		panic(fmt.Sprintf("ids: FromPrefix width %d out of range [1,64]", m))
	}
	var id ID
	binary.BigEndian.PutUint64(id[:8], p<<(64-uint(m)))
	return id
}

// ClearLowestSetBit returns v with its lowest set bit cleared.
// ClearLowestSetBit(0) == 0.
func ClearLowestSetBit(v uint64) uint64 {
	return v & (v - 1)
}
