// Package rntree implements the Rendezvous Node Tree — the paper's
// matchmaking data structure layered over Chord (Section 3.1). Every
// node determines its parent from purely local information, subtree
// resource summaries are aggregated up the tree periodically, and job
// placement searches the tree with pruning, escalating to ancestors
// only when the local subtree has no satisfactory candidate, collecting
// at least k candidates ("extended search") for load balancing.
//
// Parent rule (reconstructed; see DESIGN.md): take the m-bit prefix of
// the node's GUID and clear its lowest set bit; the parent is the Chord
// owner of the resulting identifier. Random prefixes give a
// binomial-tree shape of expected height O(log N); the owner of prefix
// zero is the root.
package rntree

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/chord"
	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/resource"
	"repro/internal/transport"
)

// Config tunes the RN-Tree. The zero value selects the defaults.
type Config struct {
	// PrefixBits is m, the GUID prefix width the parent rule operates
	// on (default 24). 2^m must comfortably exceed the node count.
	PrefixBits int
	// AggregateEvery is the period of child->parent summary pushes
	// (default 2 s).
	AggregateEvery time.Duration
	// ChildTTL expires children that stop reporting (default 3x
	// AggregateEvery).
	ChildTTL time.Duration
	// K is the extended-search candidate target (default 4).
	K int
	// RandomWalkLen is the limited random walk length applied after the
	// initial DHT mapping of a job to its owner (default 3).
	RandomWalkLen int
	// MaxVisits bounds the number of nodes one search may touch
	// (default 64).
	MaxVisits int
	// ParentRefreshEvery is how often the parent is recomputed from
	// Chord ownership even when pushes succeed (default 15 s); between
	// refreshes the cached parent is reused.
	ParentRefreshEvery time.Duration
	// Obs, when non-nil, receives search metrics (visit/escalation/walk
	// histograms and counters). Purely observational: no search decision
	// reads it.
	Obs *obs.Obs
}

func (c Config) withDefaults() Config {
	if c.PrefixBits == 0 {
		c.PrefixBits = 24
	}
	if c.AggregateEvery == 0 {
		c.AggregateEvery = 2 * time.Second
	}
	if c.ChildTTL == 0 {
		c.ChildTTL = 3 * c.AggregateEvery
	}
	if c.K == 0 {
		c.K = 4
	}
	if c.RandomWalkLen == 0 {
		c.RandomWalkLen = 3
	}
	if c.MaxVisits == 0 {
		c.MaxVisits = 64
	}
	if c.ParentRefreshEvery == 0 {
		c.ParentRefreshEvery = 15 * time.Second
	}
	return c
}

// ErrNoCandidate reports a search that reached the root without finding
// any node satisfying the constraints.
var ErrNoCandidate = errors.New("rntree: no satisfying node found")

// Summary aggregates a subtree's resources: the elementwise maximum
// capability vector, the minimum queue length, the node count, and the
// set of operating systems present.
type Summary struct {
	MaxCaps resource.Vector
	MinLoad int
	Nodes   int
	OSes    []string
}

// merge folds o into s.
func (s Summary) merge(o Summary) Summary {
	s.MaxCaps = s.MaxCaps.Max(o.MaxCaps)
	if o.MinLoad < s.MinLoad {
		s.MinLoad = o.MinLoad
	}
	s.Nodes += o.Nodes
	s.OSes = mergeOSes(s.OSes, o.OSes)
	return s
}

func mergeOSes(a, b []string) []string {
	seen := make(map[string]bool, len(a)+len(b))
	var out []string
	for _, s := range append(append([]string{}, a...), b...) {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// mightSatisfy reports whether some node in the summarized subtree
// could satisfy the constraints — the search pruning test.
func (s Summary) mightSatisfy(c resource.Constraints) bool {
	if c.OS != "" {
		found := false
		for _, os := range s.OSes {
			if os == c.OS {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	for i, m := range c.Mask {
		if m && s.MaxCaps[i] < c.Min[i] {
			return false
		}
	}
	return true
}

// Candidate is one capable node discovered by a search, with the queue
// length it reported.
type Candidate struct {
	Ref  chord.Ref
	Load int
}

// SearchStats quantifies one matchmaking search.
type SearchStats struct {
	Visits      int // nodes whose state was examined
	RPCs        int // overlay messages exchanged
	Escalations int // ancestor levels climbed
	WalkHops    int // random-walk hops before the search
}

// RPC message types.
type (
	// UpdateReq is the periodic child->parent aggregation push.
	UpdateReq struct {
		Child chord.Ref
		Sum   Summary
	}
	// UpdateResp acknowledges an UpdateReq; Reject tells the child the
	// receiver is not its parent (stale routing).
	UpdateResp struct{ Reject bool }
	// SearchReq asks a node to search its subtree for candidates.
	SearchReq struct {
		Cons    resource.Constraints
		K       int
		Exclude transport.Addr // child subtree to skip (ancestor search)
		Budget  int            // remaining visit budget
	}
	// SearchResp returns discovered candidates and accounting.
	SearchResp struct {
		Cands  []Candidate
		Visits int
		RPCs   int
	}
	// ParentReq asks a node for its current parent.
	ParentReq struct{}
	// ParentResp carries it (zero for the root).
	ParentResp struct{ Parent chord.Ref }
	// WalkReq asks a node for a random overlay neighbor.
	WalkReq struct{}
	// WalkResp names it (possibly the node itself if isolated).
	WalkResp struct{ Next chord.Ref }
)

// Method names registered on the host.
const (
	MUpdate = "rnt.update"
	MSearch = "rnt.search"
	MParent = "rnt.parent"
	MWalk   = "rnt.walk"
)

type childEntry struct {
	ref      chord.Ref
	sum      Summary
	lastSeen time.Duration
}

// Node is one RN-Tree participant, layered over a Chord node on the
// same host.
type Node struct {
	host  transport.Host
	chord *chord.Node
	cfg   Config
	caps  resource.Vector
	os    string

	mu       sync.Mutex
	parent   chord.Ref
	isRoot   bool
	children map[transport.Addr]*childEntry
	loadFn   func() int
	started  bool

	// Resolved obs instruments (nil-safe when cfg.Obs is nil).
	mSearches    *obs.Counter
	mNoCandidate *obs.Counter
	mVisits      *obs.Histogram
	mEscalations *obs.Histogram
	mWalkHops    *obs.Histogram
}

// New creates an RN-Tree node over ch, advertising the given
// capabilities, and registers its RPC handlers on host.
func New(host transport.Host, ch *chord.Node, caps resource.Vector, os string, cfg Config) *Node {
	n := &Node{
		host:     host,
		chord:    ch,
		cfg:      cfg.withDefaults(),
		caps:     caps,
		os:       os,
		children: make(map[transport.Addr]*childEntry),
		loadFn:   func() int { return 0 },
	}
	if reg := n.cfg.Obs.Registry(); reg != nil {
		n.mSearches = reg.Counter("rntree_searches_total")
		n.mNoCandidate = reg.Counter("rntree_search_no_candidate_total")
		n.mVisits = reg.Histogram("rntree_search_visits", obs.DefBucketsHops)
		n.mEscalations = reg.Histogram("rntree_search_escalations", obs.DefBucketsHops)
		n.mWalkHops = reg.Histogram("rntree_walk_hops", obs.DefBucketsHops)
	}
	host.Handle(MUpdate, n.handleUpdate)
	host.Handle(MSearch, n.handleSearch)
	host.Handle(MParent, n.handleParent)
	host.Handle(MWalk, n.handleWalk)
	return n
}

// SetLoadFn installs the queue-length provider (the grid layer's run
// queue). It must be safe to call from handler contexts.
func (n *Node) SetLoadFn(fn func() int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.loadFn = fn
}

// Caps returns the node's capability vector.
func (n *Node) Caps() resource.Vector { return n.caps }

// OS returns the node's operating system label.
func (n *Node) OS() string { return n.os }

// Parent returns the current parent (zero for the root).
func (n *Node) Parent() chord.Ref {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.parent
}

// Children returns the addresses of the current children, sorted.
func (n *Node) Children() []transport.Addr {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sortedChildAddrsLocked()
}

func (n *Node) sortedChildAddrsLocked() []transport.Addr {
	out := make([]transport.Addr, 0, len(n.children))
	for a := range n.children {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Start launches the aggregation loop.
func (n *Node) Start() {
	n.mu.Lock()
	if n.started {
		n.mu.Unlock()
		return
	}
	n.started = true
	n.mu.Unlock()
	n.host.Go("rnt.aggregate", n.aggregateLoop)
}

// localSummary folds the node's own state with its live children.
func (n *Node) localSummary(now time.Duration) Summary {
	n.mu.Lock()
	defer n.mu.Unlock()
	sum := Summary{MaxCaps: n.caps, MinLoad: n.loadFn(), Nodes: 1, OSes: []string{n.os}}
	for addr, c := range n.children {
		if now-c.lastSeen > n.cfg.ChildTTL {
			delete(n.children, addr)
			continue
		}
		sum = sum.merge(c.sum)
	}
	return sum
}

// aggregateLoop periodically pushes the subtree summary to the parent,
// recomputing the parent from Chord ownership on a slower cadence (or
// immediately after a push failure, which usually signals churn).
func (n *Node) aggregateLoop(rt transport.Runtime) {
	var lastRefresh time.Duration = -1
	for {
		rt.Sleep(jitter(rt, n.cfg.AggregateEvery))
		n.mu.Lock()
		parent := n.parent
		isRoot := n.isRoot
		n.mu.Unlock()
		if (parent.IsZero() && !isRoot) || rt.Now()-lastRefresh > n.cfg.ParentRefreshEvery {
			p, err := n.computeParent(rt)
			if err != nil {
				continue
			}
			lastRefresh = rt.Now()
			n.mu.Lock()
			n.parent = p
			n.isRoot = p.IsZero()
			parent, isRoot = p, n.isRoot
			n.mu.Unlock()
		}
		if isRoot || parent.IsZero() {
			continue
		}
		sum := n.localSummary(rt.Now())
		raw, err := rt.Call(parent.Addr, MUpdate, UpdateReq{Child: n.chord.Ref(), Sum: sum})
		if err != nil || raw.(UpdateResp).Reject {
			// Parent unreachable or disavowed us: force recompute.
			n.mu.Lock()
			n.parent = chord.Ref{}
			n.isRoot = false
			n.mu.Unlock()
			lastRefresh = -1
		}
	}
}

// computeParent applies the parent rule: clear the lowest set bit of
// the m-bit GUID prefix (repeatedly, when the resulting identifier is
// still owned by this node) and look up the owner. A zero return means
// this node is the root.
func (n *Node) computeParent(rt transport.Runtime) (chord.Ref, error) {
	m := n.cfg.PrefixBits
	p := n.chord.ID().Prefix(m)
	for {
		if p == 0 {
			// Owner of identifier zero: root if that is us.
			owner, _, err := n.chord.Lookup(rt, ids.FromPrefix(0, m))
			if err != nil {
				return chord.Ref{}, err
			}
			if owner.ID == n.chord.ID() {
				return chord.Ref{}, nil
			}
			return owner, nil
		}
		p = ids.ClearLowestSetBit(p)
		owner, _, err := n.chord.Lookup(rt, ids.FromPrefix(p, m))
		if err != nil {
			return chord.Ref{}, err
		}
		if owner.ID != n.chord.ID() {
			return owner, nil
		}
		// We own the ancestor identifier too; keep climbing.
		if p == 0 {
			return chord.Ref{}, nil
		}
	}
}

// RandomWalk performs the limited random walk the paper applies after
// the initial DHT mapping, returning the endpoint where matchmaking
// should start.
func (n *Node) RandomWalk(rt transport.Runtime) (chord.Ref, int) {
	return n.RandomWalkFrom(rt, n.chord.Ref())
}

// RandomWalkFrom performs the limited random walk starting at an
// arbitrary node (each remote step asks that node for one of its own
// overlay neighbors).
func (n *Node) RandomWalkFrom(rt transport.Runtime, start chord.Ref) (chord.Ref, int) {
	cur := start
	hops := 0
	for i := 0; i < n.cfg.RandomWalkLen; i++ {
		var next chord.Ref
		if cur.Addr == n.host.Addr() {
			next = n.randomNeighbor(rt)
		} else {
			raw, err := rt.Call(cur.Addr, MWalk, WalkReq{})
			if err != nil {
				break
			}
			next = raw.(WalkResp).Next
		}
		hops++
		if next.IsZero() {
			break
		}
		cur = next
	}
	n.mWalkHops.Observe(float64(hops))
	return cur, hops
}

// randomNeighbor picks a uniformly random entry from the Chord routing
// state (fingers spread across the ring make repeated steps mix fast).
func (n *Node) randomNeighbor(rt transport.Runtime) chord.Ref {
	table := n.chord.FingerTable()
	var opts []chord.Ref
	seen := map[transport.Addr]bool{n.host.Addr(): true}
	for _, f := range table {
		if !f.IsZero() && !seen[f.Addr] {
			seen[f.Addr] = true
			opts = append(opts, f)
		}
	}
	for _, s := range n.chord.SuccessorList() {
		if !s.IsZero() && !seen[s.Addr] {
			seen[s.Addr] = true
			opts = append(opts, s)
		}
	}
	if len(opts) == 0 {
		return chord.Ref{}
	}
	return opts[rt.Rand().Intn(len(opts))]
}

// FindCandidates searches for nodes satisfying cons, starting from this
// node's subtree and escalating to ancestors while fewer than k
// candidates are known and the root has not been reached.
func (n *Node) FindCandidates(rt transport.Runtime, cons resource.Constraints, k int) ([]Candidate, SearchStats, error) {
	if k <= 0 {
		k = n.cfg.K
	}
	var stats SearchStats
	budget := n.cfg.MaxVisits

	resp := n.searchSubtree(rt, SearchReq{Cons: cons, K: k, Budget: budget})
	cands := resp.Cands
	stats.Visits += resp.Visits
	stats.RPCs += resp.RPCs
	budget -= resp.Visits

	// Escalate: ask ancestors to search their subtrees, excluding the
	// child we arrived from.
	cur := n.chord.Ref()
	for len(cands) < k && budget > 0 {
		parent, err := n.parentOf(rt, cur)
		if err != nil || parent.IsZero() {
			break
		}
		stats.Escalations++
		raw, err := rt.Call(parent.Addr, MSearch, SearchReq{
			Cons:    cons,
			K:       k - len(cands),
			Exclude: cur.Addr,
			Budget:  budget,
		})
		stats.RPCs++
		if err == nil {
			sr := raw.(SearchResp)
			cands = dedupCands(append(cands, sr.Cands...))
			stats.Visits += sr.Visits
			stats.RPCs += sr.RPCs
			budget -= sr.Visits
		}
		cur = parent
	}
	n.mSearches.Inc()
	n.mVisits.Observe(float64(stats.Visits))
	n.mEscalations.Observe(float64(stats.Escalations))
	if len(cands) == 0 {
		n.mNoCandidate.Inc()
		return nil, stats, fmt.Errorf("%w: %s", ErrNoCandidate, cons)
	}
	return cands, stats, nil
}

// parentOf resolves a node's parent, locally for ourselves, over RPC
// otherwise.
func (n *Node) parentOf(rt transport.Runtime, node chord.Ref) (chord.Ref, error) {
	if node.Addr == n.host.Addr() {
		p := n.Parent()
		if p.IsZero() {
			// Parent may not be cached yet (before first aggregation
			// round); compute it on demand.
			return n.computeParent(rt)
		}
		return p, nil
	}
	raw, err := rt.Call(node.Addr, MParent, ParentReq{})
	if err != nil {
		return chord.Ref{}, err
	}
	return raw.(ParentResp).Parent, nil
}

// searchSubtree runs the subtree search rooted at this node: itself
// first, then children whose summaries pass the pruning test, depth
// first in deterministic order, until k candidates or the budget runs
// out.
func (n *Node) searchSubtree(rt transport.Runtime, req SearchReq) SearchResp {
	resp := SearchResp{Visits: 1}
	if req.Cons.SatisfiedBy(n.caps, n.os) {
		n.mu.Lock()
		load := n.loadFn()
		n.mu.Unlock()
		resp.Cands = append(resp.Cands, Candidate{Ref: n.chord.Ref(), Load: load})
	}
	budget := req.Budget - 1
	n.mu.Lock()
	type childSnap struct {
		addr transport.Addr
		sum  Summary
	}
	var snaps []childSnap
	for _, addr := range n.sortedChildAddrsLocked() {
		snaps = append(snaps, childSnap{addr, n.children[addr].sum})
	}
	n.mu.Unlock()

	for _, c := range snaps {
		if len(resp.Cands) >= req.K || budget <= 0 {
			break
		}
		if c.addr == req.Exclude || !c.sum.mightSatisfy(req.Cons) {
			continue
		}
		raw, err := rt.Call(c.addr, MSearch, SearchReq{
			Cons:   req.Cons,
			K:      req.K - len(resp.Cands),
			Budget: budget,
		})
		resp.RPCs++
		if err != nil {
			continue
		}
		sr := raw.(SearchResp)
		resp.Cands = dedupCands(append(resp.Cands, sr.Cands...))
		resp.Visits += sr.Visits
		resp.RPCs += sr.RPCs
		budget -= sr.Visits
	}
	return resp
}

func dedupCands(cands []Candidate) []Candidate {
	seen := make(map[transport.Addr]bool, len(cands))
	out := cands[:0]
	for _, c := range cands {
		if !seen[c.Ref.Addr] {
			seen[c.Ref.Addr] = true
			out = append(out, c)
		}
	}
	return out
}

// --- RPC handlers ---

func (n *Node) handleUpdate(rt transport.Runtime, from transport.Addr, req any) (any, error) {
	u := req.(UpdateReq)
	// Sanity: we should be the Chord owner of the child's parent
	// identifier; rather than recompute (expensive), accept and rely on
	// the child's periodic parent recomputation to fix stale routing.
	n.mu.Lock()
	n.children[u.Child.Addr] = &childEntry{ref: u.Child, sum: u.Sum, lastSeen: rt.Now()}
	n.mu.Unlock()
	return UpdateResp{}, nil
}

func (n *Node) handleSearch(rt transport.Runtime, from transport.Addr, req any) (any, error) {
	return n.searchSubtree(rt, req.(SearchReq)), nil
}

func (n *Node) handleParent(rt transport.Runtime, from transport.Addr, req any) (any, error) {
	return ParentResp{Parent: n.Parent()}, nil
}

func (n *Node) handleWalk(rt transport.Runtime, from transport.Addr, req any) (any, error) {
	return WalkResp{Next: n.randomNeighbor(rt)}, nil
}

func jitter(rt transport.Runtime, d time.Duration) time.Duration {
	return d/2 + time.Duration(rt.Rand().Int63n(int64(d)))
}
