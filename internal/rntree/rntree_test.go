package rntree

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/chord"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/simhost"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// forest is a simulated Chord+RN-Tree deployment for tests.
type forest struct {
	e     *sim.Engine
	net   *simnet.Net
	hosts []*simhost.Host
	chs   []*chord.Node
	rns   []*Node
}

func newForest(t *testing.T, n int, seed int64, caps func(i int) (resource.Vector, string)) *forest {
	t.Helper()
	e := sim.NewEngine(seed)
	net := simnet.New(e)
	net.Latency = simnet.UniformLatency{Min: 5 * time.Millisecond, Max: 20 * time.Millisecond}
	f := &forest{e: e, net: net}
	for i := 0; i < n; i++ {
		h := simhost.New(net.NewEndpoint(simnet.Addr(fmt.Sprintf("n%03d", i))))
		ch := chord.New(h, chord.Config{})
		cv, os := caps(i)
		rn := New(h, ch, cv, os, Config{})
		f.hosts = append(f.hosts, h)
		f.chs = append(f.chs, ch)
		f.rns = append(f.rns, rn)
	}
	chord.WarmStart(f.chs)
	return f
}

func (f *forest) do(i int, fn func(rt transport.Runtime)) {
	done := false
	f.hosts[i].Go("test", func(rt transport.Runtime) {
		defer func() { done = true }()
		fn(rt)
	})
	for !done {
		f.e.RunFor(time.Second)
	}
}

func uniformCaps(resource.Vector, string) func(int) (resource.Vector, string) {
	return func(int) (resource.Vector, string) {
		return resource.Vector{5, 4096, 100}, "linux"
	}
}

func variedCaps(i int) (resource.Vector, string) {
	oses := []string{"linux", "windows", "macos"}
	return resource.Vector{
		float64(1 + i%10),
		float64(256 * (1 + i%8)),
		float64(10 * (1 + i%16)),
	}, oses[i%len(oses)]
}

func TestWarmStartBuildsSingleRootedTree(t *testing.T) {
	f := newForest(t, 64, 1, variedCaps)
	defer f.e.Shutdown()
	root := WarmStart(f.rns, 0)
	if root == nil {
		t.Fatal("no root")
	}
	roots := 0
	for _, n := range f.rns {
		if n.Parent().IsZero() {
			roots++
		}
	}
	if roots != 1 {
		t.Fatalf("%d roots, want 1", roots)
	}
	h := TreeHeight(f.rns)
	if h < 1 || h > 4*int(math.Log2(64)) {
		t.Fatalf("tree height %d implausible for 64 nodes", h)
	}
	t.Logf("height=%d for 64 nodes", h)
}

func TestWarmStartRootSummaryCoversAllNodes(t *testing.T) {
	f := newForest(t, 32, 2, variedCaps)
	defer f.e.Shutdown()
	root := WarmStart(f.rns, 0)
	sum := root.localSummary(0)
	if sum.Nodes != 32 {
		t.Fatalf("root summary covers %d nodes, want 32", sum.Nodes)
	}
	// Max caps across all nodes must match the true maximum.
	var want resource.Vector
	for _, n := range f.rns {
		want = want.Max(n.caps)
	}
	if sum.MaxCaps != want {
		t.Fatalf("root MaxCaps %v, want %v", sum.MaxCaps, want)
	}
	if len(sum.OSes) != 3 {
		t.Fatalf("root OSes %v", sum.OSes)
	}
}

func TestAggregationConvergesWithoutWarmStart(t *testing.T) {
	f := newForest(t, 16, 3, variedCaps)
	defer f.e.Shutdown()
	for _, rn := range f.rns {
		rn.Start()
	}
	f.e.RunFor(60 * time.Second)
	// Identify the root and check it has aggregated everyone.
	var root *Node
	for _, n := range f.rns {
		if n.Parent().IsZero() {
			if root != nil {
				t.Fatal("two roots")
			}
			root = n
		}
	}
	if root == nil {
		t.Fatal("no root emerged")
	}
	sum := root.localSummary(time.Duration(f.e.Now()))
	if sum.Nodes != 16 {
		t.Fatalf("root sees %d nodes, want 16", sum.Nodes)
	}
}

func TestSearchFindsRareCapableNode(t *testing.T) {
	// Exactly one node has cpu=10; every search must find it.
	f := newForest(t, 48, 4, func(i int) (resource.Vector, string) {
		cpu := 2.0
		if i == 17 {
			cpu = 10
		}
		return resource.Vector{cpu, 1024, 50}, "linux"
	})
	defer f.e.Shutdown()
	WarmStart(f.rns, 0)
	cons := resource.Unconstrained.Require(resource.CPU, 9)
	for _, start := range []int{0, 17, 31, 47} {
		start := start
		f.do(start, func(rt transport.Runtime) {
			cands, stats, err := f.rns[start].FindCandidates(rt, cons, 1)
			if err != nil {
				t.Errorf("from %d: %v", start, err)
				return
			}
			if len(cands) == 0 || cands[0].Ref.Addr != f.hosts[17].Addr() {
				t.Errorf("from %d: candidates %v", start, cands)
			}
			if stats.Visits > 64 {
				t.Errorf("visits %d exceeded budget", stats.Visits)
			}
		})
	}
}

func TestSearchReturnsKCandidates(t *testing.T) {
	f := newForest(t, 40, 5, variedCaps)
	defer f.e.Shutdown()
	WarmStart(f.rns, 0)
	f.do(0, func(rt transport.Runtime) {
		cands, _, err := f.rns[0].FindCandidates(rt, resource.Unconstrained, 4)
		if err != nil {
			t.Fatalf("find: %v", err)
		}
		if len(cands) < 4 {
			t.Fatalf("got %d candidates, want >= 4", len(cands))
		}
		seen := map[transport.Addr]bool{}
		for _, c := range cands {
			if seen[c.Ref.Addr] {
				t.Fatalf("duplicate candidate %s", c.Ref.Addr)
			}
			seen[c.Ref.Addr] = true
		}
	})
}

func TestSearchImpossibleConstraint(t *testing.T) {
	f := newForest(t, 16, 6, variedCaps)
	defer f.e.Shutdown()
	WarmStart(f.rns, 0)
	cons := resource.Unconstrained.Require(resource.CPU, 99)
	f.do(0, func(rt transport.Runtime) {
		_, _, err := f.rns[0].FindCandidates(rt, cons, 1)
		if !errors.Is(err, ErrNoCandidate) {
			t.Fatalf("err = %v, want ErrNoCandidate", err)
		}
	})
}

func TestSearchHonorsOSConstraint(t *testing.T) {
	f := newForest(t, 30, 7, variedCaps)
	defer f.e.Shutdown()
	WarmStart(f.rns, 0)
	cons := resource.Unconstrained.RequireOS("macos")
	f.do(3, func(rt transport.Runtime) {
		cands, _, err := f.rns[3].FindCandidates(rt, cons, 3)
		if err != nil {
			t.Fatalf("find: %v", err)
		}
		for _, c := range cands {
			for i, h := range f.hosts {
				if h.Addr() == c.Ref.Addr && f.rns[i].os != "macos" {
					t.Fatalf("candidate %s has os %s", c.Ref.Addr, f.rns[i].os)
				}
			}
		}
	})
}

func TestSearchPruningLimitsVisits(t *testing.T) {
	// Constraint satisfiable by many nodes: the search should stop well
	// short of visiting the whole tree.
	f := newForest(t, 64, 8, variedCaps)
	defer f.e.Shutdown()
	WarmStart(f.rns, 0)
	f.do(9, func(rt transport.Runtime) {
		_, stats, err := f.rns[9].FindCandidates(rt, resource.Unconstrained, 4)
		if err != nil {
			t.Fatalf("find: %v", err)
		}
		if stats.Visits > 32 {
			t.Fatalf("unconstrained search visited %d of 64 nodes", stats.Visits)
		}
	})
}

func TestRandomWalkTerminatesAndMoves(t *testing.T) {
	f := newForest(t, 32, 9, variedCaps)
	defer f.e.Shutdown()
	moved := 0
	for trial := 0; trial < 10; trial++ {
		f.do(0, func(rt transport.Runtime) {
			end, hops := f.rns[0].RandomWalk(rt)
			if hops > f.rns[0].cfg.RandomWalkLen {
				t.Fatalf("walk took %d hops", hops)
			}
			if end.Addr != f.hosts[0].Addr() {
				moved++
			}
		})
	}
	if moved == 0 {
		t.Fatal("random walk never left the origin in 10 trials")
	}
}

func TestLoadFnReflectedInCandidates(t *testing.T) {
	f := newForest(t, 8, 10, uniformCaps(resource.Vector{}, ""))
	defer f.e.Shutdown()
	WarmStart(f.rns, 0)
	f.rns[5].SetLoadFn(func() int { return 42 })
	// Re-warm to refresh aggregates after load change.
	WarmStart(f.rns, 0)
	f.do(0, func(rt transport.Runtime) {
		cands, _, err := f.rns[0].FindCandidates(rt, resource.Unconstrained, 8)
		if err != nil {
			t.Fatalf("find: %v", err)
		}
		for _, c := range cands {
			if c.Ref.Addr == f.hosts[5].Addr() && c.Load != 42 {
				t.Fatalf("node 5 load = %d, want 42", c.Load)
			}
		}
	})
}

func TestSummaryMerge(t *testing.T) {
	a := Summary{MaxCaps: resource.Vector{1, 9, 3}, MinLoad: 5, Nodes: 2, OSes: []string{"linux"}}
	b := Summary{MaxCaps: resource.Vector{4, 2, 3}, MinLoad: 1, Nodes: 3, OSes: []string{"macos", "linux"}}
	m := a.merge(b)
	if m.MaxCaps != (resource.Vector{4, 9, 3}) || m.MinLoad != 1 || m.Nodes != 5 {
		t.Fatalf("merge = %+v", m)
	}
	if len(m.OSes) != 2 {
		t.Fatalf("OSes = %v", m.OSes)
	}
}

func TestSummaryMightSatisfy(t *testing.T) {
	s := Summary{MaxCaps: resource.Vector{4, 1024, 100}, OSes: []string{"linux"}}
	if !s.mightSatisfy(resource.Unconstrained.Require(resource.CPU, 4)) {
		t.Fatal("boundary capability pruned")
	}
	if s.mightSatisfy(resource.Unconstrained.Require(resource.CPU, 5)) {
		t.Fatal("unsatisfiable constraint not pruned")
	}
	if s.mightSatisfy(resource.Unconstrained.RequireOS("windows")) {
		t.Fatal("missing OS not pruned")
	}
	if !s.mightSatisfy(resource.Unconstrained.RequireOS("linux")) {
		t.Fatal("present OS pruned")
	}
}

func TestChildExpiry(t *testing.T) {
	f := newForest(t, 12, 11, variedCaps)
	defer f.e.Shutdown()
	for _, rn := range f.rns {
		rn.Start()
	}
	f.e.RunFor(30 * time.Second)
	var root *Node
	var rootIdx int
	for i, n := range f.rns {
		if n.Parent().IsZero() {
			root, rootIdx = n, i
		}
	}
	if root == nil {
		t.Fatal("no root")
	}
	before := root.localSummary(time.Duration(f.e.Now())).Nodes
	if before != 12 {
		t.Fatalf("root sees %d nodes before crash", before)
	}
	// Crash a child subtree; the root's summary must shrink.
	victim := (rootIdx + 1) % len(f.rns)
	f.hosts[victim].Endpoint().Crash()
	f.e.RunFor(60 * time.Second)
	after := root.localSummary(time.Duration(f.e.Now())).Nodes
	if after >= before {
		t.Fatalf("root still sees %d nodes after crash (before %d)", after, before)
	}
}
