package rntree

import (
	"sort"
	"time"

	"repro/internal/chord"
	"repro/internal/ids"
	"repro/internal/transport"
)

// WarmStart wires a set of RN-Tree nodes (whose Chord ring is already
// converged, e.g. via chord.WarmStart) into a fully-built tree with
// exact aggregates, as of virtual time now. The periodic aggregation
// loops then maintain it. It returns the root.
func WarmStart(nodes []*Node, now time.Duration) *Node {
	sorted := make([]*Node, len(nodes))
	copy(sorted, nodes)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].chord.ID().Less(sorted[j].chord.ID())
	})
	ownerOf := func(key ids.ID) *Node {
		i := sort.Search(len(sorted), func(i int) bool { return !sorted[i].chord.ID().Less(key) })
		if i == len(sorted) {
			i = 0
		}
		return sorted[i]
	}

	// Determine every node's parent with the global ownership map.
	var root *Node
	parentOf := make(map[*Node]*Node, len(nodes))
	for _, n := range sorted {
		m := n.cfg.PrefixBits
		p := n.chord.ID().Prefix(m)
		var parent *Node
		for {
			if p == 0 {
				owner := ownerOf(ids.FromPrefix(0, m))
				if owner != n {
					parent = owner
				}
				break
			}
			p = ids.ClearLowestSetBit(p)
			owner := ownerOf(ids.FromPrefix(p, m))
			if owner != n {
				parent = owner
				break
			}
		}
		if parent == nil {
			root = n
		} else {
			parentOf[n] = parent
		}
		n.mu.Lock()
		if parent != nil {
			n.parent = parent.chord.Ref()
			n.isRoot = false
		} else {
			n.parent = chord.Ref{}
			n.isRoot = true
		}
		n.children = make(map[transport.Addr]*childEntry)
		n.mu.Unlock()
	}

	// Compute exact subtree summaries bottom-up and install child
	// entries on each parent.
	childrenOf := make(map[*Node][]*Node, len(nodes))
	for child, parent := range parentOf {
		childrenOf[parent] = append(childrenOf[parent], child)
	}
	for _, kids := range childrenOf {
		sort.Slice(kids, func(i, j int) bool { return kids[i].host.Addr() < kids[j].host.Addr() })
	}
	var summarize func(n *Node) Summary
	summarize = func(n *Node) Summary {
		n.mu.Lock()
		sum := Summary{MaxCaps: n.caps, MinLoad: n.loadFn(), Nodes: 1, OSes: []string{n.os}}
		n.mu.Unlock()
		for _, child := range childrenOf[n] {
			cs := summarize(child)
			n.mu.Lock()
			n.children[child.host.Addr()] = &childEntry{ref: child.chord.Ref(), sum: cs, lastSeen: now}
			n.mu.Unlock()
			sum = sum.merge(cs)
		}
		return sum
	}
	if root != nil {
		summarize(root)
	}
	return root
}

// TreeHeight returns the height of a warm-started tree rooted at root
// — a diagnostic for the O(log N) height property.
func TreeHeight(nodes []*Node) int {
	depth := func(n *Node) int {
		d := 0
		byAddr := make(map[transport.Addr]*Node, len(nodes))
		for _, m := range nodes {
			byAddr[m.host.Addr()] = m
		}
		for !n.Parent().IsZero() {
			n = byAddr[n.Parent().Addr]
			if n == nil {
				break
			}
			d++
			if d > len(nodes) {
				break // cycle guard
			}
		}
		return d
	}
	max := 0
	for _, n := range nodes {
		if d := depth(n); d > max {
			max = d
		}
	}
	return max
}
