// Package wire registers every protocol message type with encoding/gob
// so the live TCP transport can carry them. The simulator passes Go
// values directly; tests in this package verify that every message
// survives a gob round trip, keeping simulation and live deployments
// honest with each other.
package wire

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"

	"repro/internal/can"
	"repro/internal/chord"
	"repro/internal/grid"
	"repro/internal/match"
	"repro/internal/pubsub"
	"repro/internal/replica"
	"repro/internal/rntree"
)

var once sync.Once

// RegisterAll registers every RPC message type. Safe to call multiple
// times.
func RegisterAll() {
	once.Do(func() {
		for _, v := range Messages() {
			gob.Register(v)
		}
	})
}

// Messages enumerates one zero value of every wire message type.
func Messages() []any {
	return []any{
		// chord
		chord.StepReq{}, chord.StepResp{}, chord.StateReq{}, chord.StateResp{},
		chord.NotifyReq{}, chord.NotifyResp{}, chord.PingReq{}, chord.PingResp{},
		// rntree
		rntree.UpdateReq{}, rntree.UpdateResp{}, rntree.SearchReq{}, rntree.SearchResp{},
		rntree.ParentReq{}, rntree.ParentResp{}, rntree.WalkReq{}, rntree.WalkResp{},
		// can
		can.StepReq{}, can.StepResp{}, can.JoinReq{}, can.JoinResp{},
		can.GossipReq{}, can.GossipResp{}, can.MatchReq{}, can.MatchResp{},
		can.LoadReq{}, can.LoadResp{},
		// grid
		grid.InjectReq{}, grid.InjectResp{}, grid.OwnReq{}, grid.OwnResp{},
		grid.InjectBatchReq{}, grid.InjectBatchResp{}, grid.OwnBatchReq{}, grid.OwnBatchResp{},
		grid.AssignReq{}, grid.AssignResp{}, grid.HeartbeatReq{}, grid.HeartbeatResp{},
		grid.CompleteReq{}, grid.CompleteResp{}, grid.ResultReq{}, grid.ResultResp{},
		grid.RelayReq{}, grid.RelayResp{}, grid.AdoptReq{}, grid.AdoptResp{},
		grid.StatusReq{}, grid.StatusResp{},
		grid.CheckpointReq{}, grid.CheckpointResp{},
		grid.ProbeJobReq{}, grid.ProbeJobResp{}, grid.TrustReq{}, grid.TrustResp{},
		grid.StatsReq{}, grid.StatsResp{}, grid.TraceReq{}, grid.TraceResp{},
		grid.ReplicasReq{}, grid.ReplicasResp{},
		grid.HealthReq{}, grid.HealthResp{},
		// replica
		replica.PutReq{}, replica.PutResp{}, replica.SyncReq{}, replica.SyncResp{},
		replica.ProbeReq{}, replica.ProbeResp{},
		// match
		match.ProbeReq{}, match.ProbeResp{},
		// pubsub
		pubsub.SubscribeReq{}, pubsub.SubscribeResp{},
		pubsub.UnsubscribeReq{}, pubsub.UnsubscribeResp{},
		pubsub.PublishReq{}, pubsub.PublishResp{},
		pubsub.NotifyReq{}, pubsub.NotifyResp{},
		pubsub.AckReq{}, pubsub.AckResp{},
		pubsub.ResolveReq{}, pubsub.ResolveResp{},
	}
}

// RoundTrip gob-encodes and decodes v through an any-typed envelope,
// returning the decoded value — the exact path live RPC payloads take.
func RoundTrip(v any) (any, error) {
	RegisterAll()
	var buf bytes.Buffer
	holder := struct{ V any }{V: v}
	if err := gob.NewEncoder(&buf).Encode(&holder); err != nil {
		return nil, fmt.Errorf("wire: encode %T: %w", v, err)
	}
	var out struct{ V any }
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		return nil, fmt.Errorf("wire: decode %T: %w", v, err)
	}
	return out.V, nil
}
