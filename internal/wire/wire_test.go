package wire

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/can"
	"repro/internal/chord"
	"repro/internal/flow"
	"repro/internal/grid"
	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/pubsub"
	"repro/internal/replica"
	"repro/internal/resource"
	"repro/internal/rntree"
	"repro/internal/transport"
	"repro/internal/trust"
)

func TestAllMessagesRoundTripZeroValues(t *testing.T) {
	for _, msg := range Messages() {
		got, err := RoundTrip(msg)
		if err != nil {
			t.Errorf("%T: %v", msg, err)
			continue
		}
		if reflect.TypeOf(got) != reflect.TypeOf(msg) {
			t.Errorf("%T decoded as %T", msg, got)
		}
	}
}

func TestPopulatedMessagesRoundTrip(t *testing.T) {
	ref := chord.Ref{ID: ids.HashString("n"), Addr: "host:1"}
	cons := resource.Unconstrained.Require(resource.CPU, 2).RequireOS("linux")
	cases := []any{
		chord.StepResp{Done: true, Owner: ref, Next: ref},
		chord.StateResp{Self: ref, Pred: ref, Succs: []chord.Ref{ref, ref}},
		rntree.SearchReq{Cons: cons, K: 4, Exclude: "x", Budget: 64},
		rntree.SearchResp{Cands: []rntree.Candidate{{Ref: ref, Load: 3}}, Visits: 5, RPCs: 4},
		rntree.UpdateReq{Child: ref, Sum: rntree.Summary{
			MaxCaps: resource.Vector{1, 2, 3}, MinLoad: 1, Nodes: 9, OSes: []string{"linux"},
		}},
		can.GossipReq{
			From: can.Info{
				Ref:   can.Ref{ID: ids.HashString("c"), Addr: "c:1"},
				Zones: []can.Zone{can.UnitZone()},
				Caps:  resource.Vector{1, 2, 3},
				OS:    "linux",
				Load:  7,
			},
			Digest: []can.Brief{{Ref: can.Ref{Addr: "d:1"}, Zones: []can.Zone{can.UnitZone()}}},
		},
		can.MatchReq{Cons: cons, Exclude: []transport.Addr{"a", "b"}, TTL: 3, Push: true},
		grid.OwnReq{Prof: grid.Profile{
			ID:     ids.HashString("job"),
			Client: "client:9",
			Cons:   cons,
			Work:   100,
		}},
		grid.HeartbeatReq{Run: "r:1", Jobs: []ids.ID{ids.HashString("a"), ids.HashString("b")}},
		grid.HeartbeatReq{
			Run:  "r:1",
			Jobs: []ids.ID{ids.HashString("a")},
			Ckpts: []grid.Checkpoint{{
				JobID: ids.HashString("a"), Attempt: 1, Run: "r:1",
				Done: 3e9, Data: []byte{1, 2, 3}, At: 9e9,
			}},
		},
		grid.AssignReq{
			Prof:  grid.Profile{ID: ids.HashString("job"), Client: "c:1", Work: 100},
			Owner: "o:1",
			Ckpt:  grid.Checkpoint{JobID: ids.HashString("job"), Run: "r:3", Done: 42e9},
			Reps:  []transport.Addr{"s:1", "s:2"},
		},
		grid.AdoptReq{
			Prof: grid.Profile{ID: ids.HashString("job"), Attempt: 2},
			Run:  "r:4",
			Ckpt: grid.Checkpoint{JobID: ids.HashString("job"), Attempt: 2, Run: "r:4", Done: 5e9},
		},
		grid.CheckpointReq{
			Run: "r:5",
			Ckpt: grid.Checkpoint{
				JobID: ids.HashString("big"), Run: "r:5",
				Done: 7e9, Data: make([]byte, 8192), At: 11e9,
			},
		},
		grid.ResultReq{Res: grid.Result{JobID: ids.HashString("j"), RunNode: "r:2", OutputKB: 3}},
		grid.CompleteReq{
			JobID:  ids.HashString("j"),
			Run:    "r:2",
			Digest: grid.ResultDigest("c:1", 3, 7, ""),
			Res:    grid.Result{JobID: ids.HashString("j"), RunNode: "r:2", OutputKB: 7, Digest: grid.ResultDigest("c:1", 3, 7, "")},
		},
		// Trace-context propagation: every job-scoped message carries a
		// TC; these must survive the wire byte-for-byte or cross-node
		// trace reconstruction silently loses hops.
		grid.InjectReq{
			Client: "c:1", Seq: 3, Attempt: 1, Cons: cons, Work: 50, OutputKB: 2,
			TC: obs.TC{ID: grid.TraceID("c:1", 3), Hop: 1},
		},
		grid.AssignReq{
			Prof:  grid.Profile{ID: ids.HashString("tjob"), Client: "c:1", Work: 100},
			Owner: "o:1",
			TC:    obs.TC{ID: grid.TraceID("c:1", 4), Hop: 7},
		},
		grid.ResultReq{
			Res: grid.Result{JobID: ids.HashString("tj"), RunNode: "r:2", OutputKB: 3},
			TC:  obs.TC{ID: grid.TraceID("c:1", 5), Hop: 12},
		},
		grid.StatusReq{JobID: ids.HashString("tj"), TC: obs.TC{ID: grid.TraceID("c:1", 6), Hop: 2}},
		// Batched injection (DESIGN.md §11): per-item trace contexts and
		// positional results, including the backpressure retry-after hint.
		grid.InjectBatchReq{Items: []grid.InjectReq{
			{Client: "c:1", Seq: 7, Cons: cons, Work: 50, TC: obs.TC{ID: grid.TraceID("c:1", 7), Hop: 1}},
			{Client: "c:1", Seq: 8, Work: 60},
		}},
		grid.InjectBatchResp{Results: []grid.InjectResult{
			{JobID: ids.HashString("bj"), Owner: "o:1", Hops: 2, Reps: []transport.Addr{"s:1"}},
			{RetryAfterMS: 750},
			{Err: "route job deadbeef: no live owner"},
		}},
		grid.OwnBatchReq{Items: []grid.OwnReq{
			{Prof: grid.Profile{ID: ids.HashString("bj"), Client: "c:1", Work: 50}, TC: obs.TC{ID: grid.TraceID("c:1", 7), Hop: 2}},
		}},
		grid.OwnBatchResp{Results: []grid.OwnResult{
			{Reps: []transport.Addr{"s:1", "s:2"}},
			{RetryAfterMS: 500},
		}},
		grid.InjectResp{JobID: ids.HashString("bj"), Owner: "o:1", RetryAfterMS: 1250},
		grid.StatsResp{Stats: grid.NodeStats{
			Addr: "n:1", Now: 30e9, QueueLen: 2, Owned: 3, Pending: 1, Completed: 9, Executed: 70e9,
			Samples: []obs.Sample{{Name: "grid_queue_depth", Value: 2}, {Name: "grid_events_total{kind=\"started\"}", Value: 9}},
		}},
		grid.TraceReq{Trace: grid.TraceID("c:1", 3)},
		grid.TraceResp{
			Events: []obs.TraceEvent{
				{Trace: grid.TraceID("c:1", 3), Hop: 1, At: 1e9, Node: "c:1", Stage: "submitted", Note: "work=10s"},
				{Trace: grid.TraceID("c:1", 3), Hop: 2, At: 2e9, Node: "o:1", Stage: "owned", Peer: "c:1"},
			},
			Peers: []transport.Addr{"o:1", "r:2"},
		},
		grid.ProbeJobReq{Nonce: "r:9/4", Work: 5e9},
		grid.ProbeJobResp{Digest: grid.ProbeDigest("r:9/4")},
		grid.TrustResp{Entries: []trust.Entry{
			{Node: "r:1", Score: 0.85, Agreed: 7},
			{Node: "r:2", Score: 0.1, Disagreed: 2, ProbesBad: 1, Blacklisted: true},
		}},
		// Replication protocol (DESIGN.md §10).
		replica.PutReq{From: "o:1", Recs: []replica.Record{
			{Key: ids.HashString("rj"), Epoch: 2, Version: 5, Owner: "o:1", Reps: []transport.Addr{"s:1", "s:2"}, Data: []byte{9, 8, 7}},
			{Key: ids.HashString("rk"), Epoch: 1, Version: 3, Owner: "o:1", Deleted: true},
		}},
		replica.PutResp{Newer: []replica.Record{
			{Key: ids.HashString("rj"), Epoch: 3, Version: 0, Owner: "o:2", Data: []byte{1}},
		}},
		replica.SyncReq{From: "o:1", Metas: []replica.Meta{
			{Key: ids.HashString("rj"), Epoch: 2, Version: 5, Owner: "o:1"},
			{Key: ids.HashString("rk"), Epoch: 1, Version: 3, Owner: "o:1", Deleted: true},
		}},
		replica.SyncResp{
			Want:  []ids.ID{ids.HashString("rj")},
			Newer: []replica.Record{{Key: ids.HashString("rk"), Epoch: 4, Version: 1, Owner: "o:3"}},
		},
		replica.ProbeReq{From: "s:1", Keys: []ids.ID{ids.HashString("rj"), ids.HashString("rk")}},
		replica.ProbeResp{Owned: []replica.Meta{
			{Key: ids.HashString("rj"), Epoch: 2, Version: 5, Owner: "o:1"},
		}, Since: 42 * time.Second, Has: []ids.ID{ids.HashString("rj"), ids.HashString("rk")}},
		grid.ReplicasReq{JobID: ids.HashString("rj")},
		grid.ReplicasResp{Status: replica.Status{
			Known: true, Owner: "o:1", Epoch: 2, Version: 5,
			Peers: []replica.PeerStatus{
				{Addr: "s:1", Epoch: 2, Version: 5, Acked: true},
				{Addr: "s:2", Epoch: 2, Version: 4},
			},
		}},
		grid.HealthReq{},
		grid.HealthResp{Node: "o:1", Peers: []grid.PeerHealth{
			{Peer: "s:1", State: "open", ConsecFails: 5, Failures: 9, Successes: 3, Opens: 1, RetryIn: 2 * time.Second},
			{Peer: "s:2", State: "closed", Successes: 40},
		}},
		// Pub/sub notification overlay (DESIGN.md §13).
		pubsub.SubscribeReq{Topic: grid.NotifyTopic("c:1", 3), Sub: "c:1"},
		pubsub.SubscribeResp{Epoch: 2},
		pubsub.UnsubscribeReq{Topic: grid.NotifyTopic("c:1", 3), Sub: "c:1"},
		pubsub.PublishReq{
			Topic: grid.NotifyTopic("c:1", 3), From: "o:1",
			Payloads: [][]byte{
				grid.EncodeJobUpdate(grid.JobUpdate{
					JobID: grid.JobGUID("c:1", 3, 0), Kind: "owned", Node: "o:1", From: "o:1", At: 2e9,
				}),
				grid.EncodeJobUpdate(grid.JobUpdate{
					JobID: grid.JobGUID("c:1", 3, 1), Attempt: 1, Kind: "checkpointed",
					Node: "r:2", From: "o:1", At: 9e9, Progress: 4e9,
				}),
			},
		},
		pubsub.PublishResp{Seq: 17},
		pubsub.NotifyReq{
			Topic: grid.NotifyTopic("c:1", 3), Epoch: 1, From: "o:1",
			Events: []pubsub.Event{
				{Seq: 4, Payload: []byte{1, 2, 3}},
				{Seq: 5, Payload: []byte{4}},
			},
		},
		pubsub.NotifyResp{AckUpTo: 5},
		pubsub.AckReq{Topic: grid.NotifyTopic("c:1", 3), Sub: "c:1", Epoch: 1, UpTo: 5},
		pubsub.ResolveReq{Topic: grid.NotifyTopic("c:1", 3)},
		pubsub.ResolveResp{Addr: "rdv:1"},
		// Workflow data passing (DESIGN.md §15): the stage-output
		// envelope — inherited input bytes, the workflow checkpoint
		// bias, and the carried output payload all ride the existing
		// inject/assign/result messages, so populated instances must
		// survive gob's delta encoding byte-for-byte.
		grid.InjectReq{
			Client: "c:1", Seq: 9, Cons: cons, Work: 50, OutputKB: 1,
			Input: []byte{0xca, 0xfe, 1, 2}, CkptBias: 2.5, CarryOutput: true,
			TC: obs.TC{ID: grid.TraceID("c:1", 9), Hop: 1},
		},
		grid.AssignReq{
			Prof: grid.Profile{
				ID: ids.HashString("fjob"), Client: "c:1", Seq: 9, Work: 50,
				Input: []byte{0xca, 0xfe}, CkptBias: 2.5, CarryOutput: true,
			},
			Owner: "o:1",
			Ckpt:  grid.Checkpoint{JobID: ids.HashString("fjob"), Run: "r:2", Done: 2e9, Data: []byte{3, 4}},
		},
		grid.ResultReq{Res: grid.Result{
			JobID: ids.HashString("fjob"), RunNode: "r:2", OutputKB: 1,
			Data: grid.StageOutput(grid.Profile{Client: "c:1", Seq: 9, OutputKB: 1}),
		}},
		// Flow status updates ride pubsub payloads, like grid.JobUpdate.
		pubsub.PublishReq{
			Topic: flow.FlowTopic("c:1", "render"), From: "c:1",
			Payloads: [][]byte{flow.EncodeUpdate(flow.Update{
				Flow: "render", Stage: "merge", Kind: "delivered",
				JobID: grid.JobGUID("c:1", 4, 1), Attempt: 1, At: 30e9,
			})},
		},
	}
	for _, msg := range cases {
		got, err := RoundTrip(msg)
		if err != nil {
			t.Errorf("%T: %v", msg, err)
			continue
		}
		if !reflect.DeepEqual(got, msg) {
			t.Errorf("%T round trip mismatch:\n got %+v\nwant %+v", msg, got, msg)
		}
	}
}
