package wire

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
	"time"

	"repro/internal/flow"
	"repro/internal/grid"
	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/pubsub"
	"repro/internal/replica"
	"repro/internal/transport"
)

// encode produces the exact byte stream a live RPC payload puts on the
// wire: the message wrapped in an any-typed envelope.
func encode(t testing.TB, v any) []byte {
	t.Helper()
	RegisterAll()
	var buf bytes.Buffer
	holder := struct{ V any }{V: v}
	if err := gob.NewEncoder(&buf).Encode(&holder); err != nil {
		t.Fatalf("encode %T: %v", v, err)
	}
	return buf.Bytes()
}

// FuzzWireDecode feeds arbitrary byte streams through the envelope
// decoder. The corpus seeds one encoding of every registered message
// type, so mutations explore the real protocol surface; the decoder
// must either fail cleanly or yield a value that survives a second
// round trip unchanged.
func FuzzWireDecode(f *testing.F) {
	for _, msg := range Messages() {
		f.Add(encode(f, msg))
	}
	// Seed trace-context-bearing encodings too: zero-value seeds omit
	// the TC fields entirely under gob's delta encoding, so mutations
	// would never reach the trace-propagation surface without these.
	tc := obs.TC{ID: grid.TraceID("fuzz:1", 1), Hop: 3}
	for _, msg := range []any{
		grid.InjectReq{Client: "fuzz:1", Seq: 1, TC: tc},
		grid.OwnReq{Prof: grid.Profile{ID: ids.HashString("fz")}, TC: tc},
		grid.AssignReq{Owner: "fuzz:1", Reps: []transport.Addr{"fuzz:3"}, TC: tc},
		grid.CompleteReq{JobID: ids.HashString("fz"), Run: "fuzz:2", TC: tc},
		grid.ResultReq{Res: grid.Result{JobID: ids.HashString("fz")}, TC: tc},
		grid.RelayReq{Res: grid.Result{JobID: ids.HashString("fz")}, TC: tc},
		grid.AdoptReq{Prof: grid.Profile{ID: ids.HashString("fz")}, Run: "fuzz:2", TC: tc},
		grid.CheckpointReq{Run: "fuzz:2", Ckpt: grid.Checkpoint{JobID: ids.HashString("fz")}, TC: tc},
		grid.StatusReq{JobID: ids.HashString("fz"), TC: tc},
		grid.TraceReq{Trace: tc.ID},
		grid.TraceResp{
			Events: []obs.TraceEvent{{Trace: tc.ID, Hop: 1, Node: "fuzz:1", Stage: "submitted"}},
			Peers:  []transport.Addr{"fuzz:2"},
		},
		grid.StatsResp{Stats: grid.NodeStats{Addr: "fuzz:1", Samples: []obs.Sample{{Name: "m", Value: 1}}}},
		// Replication messages: seed populated encodings so mutations
		// reach the record/meta surface (zero-value seeds omit every
		// field under gob's delta encoding).
		replica.PutReq{From: "fuzz:1", Recs: []replica.Record{
			{Key: ids.HashString("fz"), Epoch: 1, Version: 2, Owner: "fuzz:1", Reps: []transport.Addr{"fuzz:2"}, Data: []byte{1, 2}},
		}},
		replica.PutResp{Newer: []replica.Record{{Key: ids.HashString("fz"), Epoch: 2, Owner: "fuzz:2", Deleted: true}}},
		replica.SyncReq{From: "fuzz:1", Metas: []replica.Meta{{Key: ids.HashString("fz"), Epoch: 1, Version: 2, Owner: "fuzz:1"}}},
		replica.SyncResp{Want: []ids.ID{ids.HashString("fz")}, Newer: []replica.Record{{Key: ids.HashString("fz"), Epoch: 3, Owner: "fuzz:3"}}},
		replica.ProbeReq{From: "fuzz:2", Keys: []ids.ID{ids.HashString("fz")}},
		replica.ProbeResp{Owned: []replica.Meta{{Key: ids.HashString("fz"), Epoch: 1, Version: 2, Owner: "fuzz:1"}}, Since: 7 * time.Second, Has: []ids.ID{ids.HashString("fz")}},
		grid.ReplicasReq{JobID: ids.HashString("fz")},
		grid.ReplicasResp{Status: replica.Status{Known: true, Owner: "fuzz:1", Epoch: 1, Version: 2,
			Peers: []replica.PeerStatus{{Addr: "fuzz:2", Epoch: 1, Version: 2, Acked: true}}}},
		// Pub/sub messages: populated seeds so mutations reach the
		// event-batch and payload surface.
		pubsub.SubscribeReq{Topic: grid.NotifyTopic("fuzz:1", 1), Sub: "fuzz:1"},
		pubsub.SubscribeResp{Epoch: 3},
		pubsub.UnsubscribeReq{Topic: grid.NotifyTopic("fuzz:1", 1), Sub: "fuzz:1"},
		pubsub.PublishReq{Topic: grid.NotifyTopic("fuzz:1", 1), From: "fuzz:2",
			Payloads: [][]byte{grid.EncodeJobUpdate(grid.JobUpdate{
				JobID: grid.JobGUID("fuzz:1", 1, 0), Kind: "matched", Node: "fuzz:3", From: "fuzz:2", At: 5e9,
			})}},
		pubsub.PublishResp{Seq: 9},
		pubsub.NotifyReq{Topic: grid.NotifyTopic("fuzz:1", 1), Epoch: 2, From: "fuzz:2",
			Events: []pubsub.Event{{Seq: 8, Payload: []byte{1}}, {Seq: 9, Payload: []byte{2, 3}}}},
		pubsub.NotifyResp{AckUpTo: 9},
		pubsub.AckReq{Topic: grid.NotifyTopic("fuzz:1", 1), Sub: "fuzz:1", Epoch: 2, UpTo: 9},
		pubsub.ResolveReq{Topic: grid.NotifyTopic("fuzz:1", 1)},
		pubsub.ResolveResp{Addr: "fuzz:4"},
		// Workflow data passing: populated stage-output envelopes so
		// mutations reach the input/bias/carry fields (omitted entirely
		// from zero-value seeds under gob's delta encoding), plus a
		// flow-status update riding a pubsub payload.
		grid.InjectReq{Client: "fuzz:1", Seq: 2, Input: []byte{0xca, 0xfe}, CkptBias: 2.5, CarryOutput: true, TC: tc},
		grid.AssignReq{Prof: grid.Profile{
			ID: ids.HashString("fw"), Client: "fuzz:1", Seq: 2,
			Input: []byte{0xca, 0xfe}, CkptBias: 2.5, CarryOutput: true,
		}, Owner: "fuzz:2", TC: tc},
		grid.ResultReq{Res: grid.Result{
			JobID: ids.HashString("fw"), RunNode: "fuzz:3",
			Data: grid.StageOutput(grid.Profile{Client: "fuzz:1", Seq: 2, OutputKB: 1}),
		}, TC: tc},
		pubsub.PublishReq{Topic: flow.FlowTopic("fuzz:1", "soak"), From: "fuzz:1",
			Payloads: [][]byte{flow.EncodeUpdate(flow.Update{
				Flow: "soak", Stage: "sink", Kind: "submitted",
				JobID: grid.JobGUID("fuzz:1", 4, 0), At: 7e9,
			})}},
	} {
		f.Add(encode(f, msg))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		RegisterAll()
		var out struct{ V any }
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&out); err != nil {
			return // malformed input rejected cleanly — fine
		}
		if out.V == nil {
			return
		}
		// Whatever decoded must be stable under re-encoding.
		again, err := RoundTrip(out.V)
		if err != nil {
			t.Fatalf("decoded %T but re-encode failed: %v", out.V, err)
		}
		if reflect.TypeOf(again) != reflect.TypeOf(out.V) {
			t.Fatalf("re-decode changed type: %T -> %T", out.V, again)
		}
	})
}
