package wire

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
)

// encode produces the exact byte stream a live RPC payload puts on the
// wire: the message wrapped in an any-typed envelope.
func encode(t testing.TB, v any) []byte {
	t.Helper()
	RegisterAll()
	var buf bytes.Buffer
	holder := struct{ V any }{V: v}
	if err := gob.NewEncoder(&buf).Encode(&holder); err != nil {
		t.Fatalf("encode %T: %v", v, err)
	}
	return buf.Bytes()
}

// FuzzWireDecode feeds arbitrary byte streams through the envelope
// decoder. The corpus seeds one encoding of every registered message
// type, so mutations explore the real protocol surface; the decoder
// must either fail cleanly or yield a value that survives a second
// round trip unchanged.
func FuzzWireDecode(f *testing.F) {
	for _, msg := range Messages() {
		f.Add(encode(f, msg))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		RegisterAll()
		var out struct{ V any }
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&out); err != nil {
			return // malformed input rejected cleanly — fine
		}
		if out.V == nil {
			return
		}
		// Whatever decoded must be stable under re-encoding.
		again, err := RoundTrip(out.V)
		if err != nil {
			t.Fatalf("decoded %T but re-encode failed: %v", out.V, err)
		}
		if reflect.TypeOf(again) != reflect.TypeOf(out.V) {
			t.Fatalf("re-decode changed type: %T -> %T", out.V, again)
		}
	})
}
