// Package sandbox provides contained execution for grid jobs,
// implementing the policies the paper sketches in Section 5: jobs may
// not access the network, may only read and write files under a
// prescribed root (a chroot-jail equivalent), are subject to
// generalized quotas (output bytes, file count, wall-clock runtime),
// and cannot crash the hosting node (panics become errors).
//
// The paper delegates containment to chroot/Xen; this package is the
// in-process equivalent for Go job functions, exercising the same
// admission, quota, and violation code paths.
package sandbox

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// Policy bounds what a job may do.
type Policy struct {
	// Root is the only directory subtree the job may touch. Empty means
	// a fresh temporary directory per job.
	Root string
	// MaxOutputBytes caps total bytes written (default 10 MiB).
	MaxOutputBytes int64
	// MaxFiles caps the number of files created (default 64).
	MaxFiles int
	// MaxRuntime kills jobs that run too long (default 10 min).
	MaxRuntime time.Duration
}

func (p Policy) withDefaults() Policy {
	if p.MaxOutputBytes == 0 {
		p.MaxOutputBytes = 10 << 20
	}
	if p.MaxFiles == 0 {
		p.MaxFiles = 64
	}
	if p.MaxRuntime == 0 {
		p.MaxRuntime = 10 * time.Minute
	}
	return p
}

// Violation kinds.
var (
	ErrNetworkForbidden = errors.New("sandbox: network access forbidden")
	ErrPathEscape       = errors.New("sandbox: path escapes sandbox root")
	ErrQuotaExceeded    = errors.New("sandbox: quota exceeded")
	ErrTimeout          = errors.New("sandbox: job exceeded runtime limit")
	ErrPanic            = errors.New("sandbox: job panicked")
)

// Violation records one policy breach.
type Violation struct {
	Err    error
	Detail string
	At     time.Time
}

// JobFunc is the contained unit of work: it receives a cancellation
// context and a restricted environment, and returns its result bytes.
type JobFunc func(ctx context.Context, env *Env) ([]byte, error)

// Sandbox executes jobs under a policy. One Sandbox may run many jobs
// sequentially (the run node's FIFO discipline); it is safe for
// concurrent use.
type Sandbox struct {
	policy Policy

	mu         sync.Mutex
	violations []Violation
	ran        int
}

// New creates a sandbox with the given policy.
func New(policy Policy) *Sandbox {
	return &Sandbox{policy: policy.withDefaults()}
}

// Violations returns a copy of all recorded violations.
func (s *Sandbox) Violations() []Violation {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Violation(nil), s.violations...)
}

// Ran returns how many jobs have been executed.
func (s *Sandbox) Ran() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ran
}

func (s *Sandbox) violate(err error, detail string) error {
	s.mu.Lock()
	s.violations = append(s.violations, Violation{Err: err, Detail: detail, At: time.Now()})
	s.mu.Unlock()
	return fmt.Errorf("%w: %s", err, detail)
}

// Run executes one job under the policy. The job's filesystem access
// is confined to the policy root (or a fresh temp dir), its runtime is
// bounded, and panics are converted to errors.
func (s *Sandbox) Run(ctx context.Context, job JobFunc) (result []byte, err error) {
	s.mu.Lock()
	s.ran++
	s.mu.Unlock()

	root := s.policy.Root
	cleanup := func() {}
	if root == "" {
		dir, terr := os.MkdirTemp("", "gridjob-*")
		if terr != nil {
			return nil, fmt.Errorf("sandbox: temp root: %w", terr)
		}
		root = dir
		cleanup = func() { os.RemoveAll(dir) }
	}
	defer cleanup()

	ctx, cancel := context.WithTimeout(ctx, s.policy.MaxRuntime)
	defer cancel()

	env := &Env{s: s, root: root}
	type outcome struct {
		res []byte
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				done <- outcome{err: s.violate(ErrPanic, fmt.Sprint(r))}
			}
		}()
		res, jerr := job(ctx, env)
		done <- outcome{res: res, err: jerr}
	}()
	select {
	case o := <-done:
		return o.res, o.err
	case <-ctx.Done():
		// The job goroutine may still be running; it holds only the Env,
		// whose operations all fail once the context is done.
		return nil, s.violate(ErrTimeout, s.policy.MaxRuntime.String())
	}
}

// Env is the restricted world a job sees.
type Env struct {
	s    *Sandbox
	root string

	mu      sync.Mutex
	written int64
	files   int
}

// Root returns the job's private directory.
func (e *Env) Root() string { return e.root }

// resolve confines a job-relative path to the root. Absolute paths and
// paths that climb out of the root are violations, not silently
// remapped — the job gets caught, matching chroot-jail expectations.
func (e *Env) resolve(name string) (string, error) {
	clean := filepath.Clean(name)
	if filepath.IsAbs(clean) || clean == ".." || strings.HasPrefix(clean, ".."+string(filepath.Separator)) {
		return "", e.s.violate(ErrPathEscape, name)
	}
	return filepath.Join(e.root, clean), nil
}

// WriteFile writes data to a file inside the sandbox, enforcing byte
// and file-count quotas.
func (e *Env) WriteFile(name string, data []byte) error {
	full, err := e.resolve(name)
	if err != nil {
		return err
	}
	e.mu.Lock()
	if e.written+int64(len(data)) > e.s.policy.MaxOutputBytes {
		e.mu.Unlock()
		return e.s.violate(ErrQuotaExceeded, fmt.Sprintf("output bytes > %d", e.s.policy.MaxOutputBytes))
	}
	if e.files+1 > e.s.policy.MaxFiles {
		e.mu.Unlock()
		return e.s.violate(ErrQuotaExceeded, fmt.Sprintf("files > %d", e.s.policy.MaxFiles))
	}
	e.written += int64(len(data))
	e.files++
	e.mu.Unlock()
	if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
		return fmt.Errorf("sandbox: mkdir: %w", err)
	}
	return os.WriteFile(full, data, 0o644)
}

// ReadFile reads a file from inside the sandbox.
func (e *Env) ReadFile(name string) ([]byte, error) {
	full, err := e.resolve(name)
	if err != nil {
		return nil, err
	}
	return os.ReadFile(full)
}

// Dial always fails: grid jobs are forbidden from network access, as
// the paper requires ("we will constrain jobs to not be able to access
// the network").
func (e *Env) Dial(network, address string) (any, error) {
	return nil, e.s.violate(ErrNetworkForbidden, network+"/"+address)
}

// BytesWritten returns the job's output byte count so far.
func (e *Env) BytesWritten() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.written
}
