package sandbox

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestRunSuccess(t *testing.T) {
	s := New(Policy{})
	out, err := s.Run(context.Background(), func(ctx context.Context, env *Env) ([]byte, error) {
		if err := env.WriteFile("result.txt", []byte("42")); err != nil {
			return nil, err
		}
		return env.ReadFile("result.txt")
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "42" {
		t.Fatalf("out = %q", out)
	}
	if s.Ran() != 1 || len(s.Violations()) != 0 {
		t.Fatalf("ran=%d violations=%v", s.Ran(), s.Violations())
	}
}

func TestPathEscapeBlocked(t *testing.T) {
	s := New(Policy{})
	_, err := s.Run(context.Background(), func(ctx context.Context, env *Env) ([]byte, error) {
		return nil, env.WriteFile("../../etc/passwd", []byte("evil"))
	})
	if !errors.Is(err, ErrPathEscape) {
		t.Fatalf("err = %v", err)
	}
	if len(s.Violations()) != 1 {
		t.Fatal("violation not recorded")
	}
}

func TestDotDotWithinRootAllowed(t *testing.T) {
	s := New(Policy{})
	_, err := s.Run(context.Background(), func(ctx context.Context, env *Env) ([]byte, error) {
		// a/../b stays inside the root.
		return nil, env.WriteFile("a/../b.txt", []byte("ok"))
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestByteQuota(t *testing.T) {
	s := New(Policy{MaxOutputBytes: 10})
	_, err := s.Run(context.Background(), func(ctx context.Context, env *Env) ([]byte, error) {
		return nil, env.WriteFile("big", make([]byte, 11))
	})
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("err = %v", err)
	}
}

func TestFileQuota(t *testing.T) {
	s := New(Policy{MaxFiles: 2})
	_, err := s.Run(context.Background(), func(ctx context.Context, env *Env) ([]byte, error) {
		for i := 0; i < 3; i++ {
			if err := env.WriteFile(filepath.Join("f", string(rune('a'+i))), []byte("x")); err != nil {
				return nil, err
			}
		}
		return nil, nil
	})
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("err = %v", err)
	}
}

func TestNetworkForbidden(t *testing.T) {
	s := New(Policy{})
	_, err := s.Run(context.Background(), func(ctx context.Context, env *Env) ([]byte, error) {
		_, derr := env.Dial("tcp", "example.com:80")
		return nil, derr
	})
	if !errors.Is(err, ErrNetworkForbidden) {
		t.Fatalf("err = %v", err)
	}
}

func TestTimeout(t *testing.T) {
	s := New(Policy{MaxRuntime: 50 * time.Millisecond})
	start := time.Now()
	_, err := s.Run(context.Background(), func(ctx context.Context, env *Env) ([]byte, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("timeout did not fire promptly")
	}
}

func TestPanicContained(t *testing.T) {
	s := New(Policy{})
	_, err := s.Run(context.Background(), func(ctx context.Context, env *Env) ([]byte, error) {
		panic("malicious job")
	})
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("err = %v", err)
	}
}

func TestTempRootCleanedUp(t *testing.T) {
	s := New(Policy{})
	var root string
	_, err := s.Run(context.Background(), func(ctx context.Context, env *Env) ([]byte, error) {
		root = env.Root()
		return nil, env.WriteFile("f", []byte("x"))
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, statErr := os.Stat(root); !os.IsNotExist(statErr) {
		t.Fatalf("temp root %s not cleaned up", root)
	}
}

func TestExplicitRootReused(t *testing.T) {
	dir := t.TempDir()
	s := New(Policy{Root: dir})
	_, err := s.Run(context.Background(), func(ctx context.Context, env *Env) ([]byte, error) {
		return nil, env.WriteFile("keep.txt", []byte("kept"))
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, statErr := os.Stat(filepath.Join(dir, "keep.txt")); statErr != nil {
		t.Fatalf("file not kept in explicit root: %v", statErr)
	}
}

func TestBytesWritten(t *testing.T) {
	s := New(Policy{})
	_, err := s.Run(context.Background(), func(ctx context.Context, env *Env) ([]byte, error) {
		if err := env.WriteFile("a", make([]byte, 7)); err != nil {
			return nil, err
		}
		if env.BytesWritten() != 7 {
			t.Errorf("BytesWritten = %d", env.BytesWritten())
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
