package experiments

import (
	"fmt"
	"time"

	"repro/internal/faultinject"
	"repro/internal/grid"
	"repro/internal/workload"
)

// replPlan is the double-failure schedule the replication subsystem
// exists for: correlated pair crashes, both victims dying at the same
// instant, over lossy control traffic. Crash-stop on purpose — a
// restarted node that reclaims its ring arc with wiped state forces a
// (safe) resubmission no replication degree can remove (DESIGN.md
// §10), which would drown the signal this sweep measures.
func replPlan() *faultinject.Plan {
	return &faultinject.Plan{
		PairCrashes: 5,
		Rules: []faultinject.Rule{
			{Method: grid.MHeartbeat, DropProb: 0.1},
			{DelayProb: 0.1, DelayMin: 50 * time.Millisecond, DelayMax: 500 * time.Millisecond},
		},
	}
}

// ReplSweep measures what owner-state replication (DESIGN.md §10) buys
// as the replication degree k rises, under seeded schedules of
// correlated owner+run double crashes. k=0 is the paper's baseline,
// where the only recovery from a double failure is the client noticing
// and resubmitting; at k>=1 a successor holding the replicated owner
// record promotes itself instead. The interesting columns are
// resubmit-rate (client-visible recovery, which replication should
// drive toward zero) and lost-work (the restart-from-scratch cost a
// promotion avoids by reattaching or rematching with the replicated
// checkpoint).
func ReplSweep(o Options) *Table {
	// Per-message fault draws (drops, delays) are consumed in runtime
	// order, so two runs differing only in k see different per-message
	// noise even under the same crash schedule; averaging a few seeded
	// schedules per row keeps one lucky (or unlucky) draw sequence from
	// dominating a row.
	const repeats = 3
	tbl := &Table{
		Title:  "Replication sweep: owner-state replication degree under correlated owner+run crashes (RN-Tree, maintenance on)",
		Header: []string{"k", "delivered", "resubmits", "resubmit-rate", "adoptions", "promotions", "handoffs", "restores", "demotions", "lost-work", "re-exec-work", "avg-turnaround"},
		Notes: []string{
			"schedules are seeded: identical options reproduce identical rows",
			fmt.Sprintf("each row averages %d seeded double-crash schedules on the same topology", repeats),
			"resubmit-rate: client resubmissions per submitted job (the double-failure recovery replication replaces)",
		},
	}
	for _, k := range []int{0, 1, 2, 3} {
		wcfg := o.base()
		wcfg.Jobs = wcfg.Jobs / 5
		wcfg.NodePop = workload.Mixed
		wcfg.JobPop = workload.Mixed
		wcfg.Level = workload.Lightly
		var delivered, jobs, resubmits, adoptions, promotions, handoffs, restores, demotions int
		var lost, reexec, turn float64
		for r := 0; r < repeats; r++ {
			o.logf("replsweep k=%d schedule %d/%d", k, r+1, repeats)
			res := o.Build(Scenario{
				Alg:         AlgRNTree,
				Workload:    wcfg,
				Grid:        grid.Config{ReplicaK: k},
				NetSeed:     o.Seed + 95,
				Maintenance: true,
				Faults:      replPlan(),
				FaultSeed:   o.Seed + 96 + 1000*int64(r),
			}).Run()
			delivered += res.Delivered
			jobs += res.Jobs
			resubmits += res.Resubmits
			adoptions += res.Adoptions
			promotions += res.Promotions
			handoffs += res.Handoffs
			restores += res.Restores
			demotions += res.Demotions
			lost += res.WastedWork.Seconds()
			reexec += res.ReexecutedWork.Seconds()
			turn += res.Turnaround.Mean
		}
		rf := float64(repeats)
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprint(k),
			fmt.Sprintf("%d/%d", delivered, jobs),
			fmt.Sprintf("%.1f", float64(resubmits)/rf),
			fmt.Sprintf("%.3f", float64(resubmits)/float64(jobs)),
			fmt.Sprintf("%.1f", float64(adoptions)/rf),
			fmt.Sprintf("%.1f", float64(promotions)/rf),
			fmt.Sprintf("%.1f", float64(handoffs)/rf),
			fmt.Sprintf("%.1f", float64(restores)/rf),
			fmt.Sprintf("%.1f", float64(demotions)/rf),
			fmtF(lost / rf),
			fmtF(reexec / rf),
			fmtF(turn / rf),
		})
	}
	return tbl
}
