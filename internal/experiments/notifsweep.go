package experiments

import (
	"fmt"
	"time"

	"repro/internal/faultinject"
	"repro/internal/grid"
)

// notifPlan is the delay-heavy schedule the notification overlay is
// measured under: run-node crashes (mostly restarted) plus lossy
// heartbeats stretch job lifetimes past the monitor's patience, so a
// polling client has to keep asking owners where its jobs are. The
// push path answers the same question with the transitions recovery
// already generates.
func notifPlan() *faultinject.Plan {
	return &faultinject.Plan{
		Crashes:         8,
		RestartProb:     0.9,
		RestartDelayMin: 5 * time.Second,
		RestartDelayMax: 15 * time.Second,
		Rules: []faultinject.Rule{
			{Method: grid.MHeartbeat, DropProb: 0.5},
		},
	}
}

// notifGridCfg is the grid tuning NotifSweep runs under: tight failure
// detection against lossy heartbeats makes false run-deaths routine, so
// most jobs live through a few recovery rounds and overrun the
// monitor's patience. Every recovery step publishes a transition, and
// the periodic checkpoints fill the gaps between them, so in push mode
// the same stretched jobs stay inside the silence window and never
// cost a probe.
func notifGridCfg() grid.Config {
	return grid.Config{
		HeartbeatEvery:  time.Second,
		RunDeadAfter:    3 * time.Second,
		OwnerDeadAfter:  3 * time.Second,
		MatchRetryEvery: 2 * time.Second,
		MaxRematch:      50,
		CheckpointEvery: 2 * time.Second,
		NotifySilence:   10 * time.Second,
	}
}

// NotifRun executes one cell of the notification sweep: the standard
// workload at o.Scale (jobs cut to a fifth, runtimes around 10s)
// driven through notifPlan's crash-and-drop schedule, with the pub/sub
// overlay wired (push) or absent (poll). Exposed separately so tests
// can assert on the raw Results rather than re-parse the table.
func NotifRun(o Options, clients int, notify bool) Results {
	wcfg := o.base()
	wcfg.Jobs = wcfg.Jobs / 5
	wcfg.Clients = clients
	wcfg.MeanRuntime = 10 * time.Second
	return o.Build(Scenario{
		Alg:                  AlgCentral,
		Workload:             wcfg,
		Grid:                 notifGridCfg(),
		NetSeed:              o.Seed + 105,
		Notify:               notify,
		Monitor:              true,
		MonitorResubmitAfter: 2 * time.Second,
		Faults:               notifPlan(),
		FaultSeed:            o.Seed + 106,
	}).Run()
}

// NotifSweep compares the client monitor's traffic with and without
// the pub/sub notification overlay (DESIGN.md §13) on identical seeded
// fault schedules. In polling mode every delayed job costs the client
// repeated grid.status probes; in push mode owners publish each
// job-state transition and the monitor polls only on notification
// silence, so status traffic collapses while the push traffic rides
// the (batched) pubsub.* methods. The paper-level claim pinned by CI:
// push cuts status-poll RPCs by at least 3x on the same schedule.
func NotifSweep(o Options) *Table {
	tbl := &Table{
		Title:  "Notification sweep: client monitor traffic, push vs status polling (central matchmaker, seeded crash/drop schedule)",
		Header: []string{"clients", "jobs", "mode", "delivered", "status-rpcs", "status/job", "pubsub-msgs", "pubsub/job", "notify-recv", "resubmits", "poll-reduction"},
		Notes: []string{
			"schedules are seeded: identical options reproduce identical rows",
			"status-rpcs: grid.status requests on the wire; pubsub-msgs: all pubsub.* requests",
			"poll-reduction: polling run's status-rpcs over the push run's, same schedule",
		},
	}
	for _, clients := range []int{4, 8} {
		var polled Results
		for _, notify := range []bool{false, true} {
			mode := "poll"
			if notify {
				mode = "push"
			}
			o.logf("notifsweep clients=%d mode=%s", clients, mode)
			res := NotifRun(o, clients, notify)
			reduction := "-"
			if notify {
				switch {
				case res.StatusRPCs > 0:
					reduction = fmt.Sprintf("%.1fx", float64(polled.StatusRPCs)/float64(res.StatusRPCs))
				case polled.StatusRPCs > 0:
					reduction = fmt.Sprintf(">=%dx", polled.StatusRPCs)
				}
			}
			jobs := float64(res.Jobs)
			tbl.Rows = append(tbl.Rows, []string{
				fmt.Sprint(clients),
				fmt.Sprint(res.Jobs),
				mode,
				fmt.Sprintf("%d/%d", res.Delivered, res.Jobs),
				fmt.Sprint(res.StatusRPCs),
				fmt.Sprintf("%.2f", float64(res.StatusRPCs)/jobs),
				fmt.Sprint(res.PubsubMsgs),
				fmt.Sprintf("%.2f", float64(res.PubsubMsgs)/jobs),
				fmt.Sprint(res.NotifyRecv),
				fmt.Sprint(res.Resubmits),
				reduction,
			})
			if !notify {
				polled = res
			}
		}
	}
	return tbl
}
