package experiments

import (
	"fmt"
	"time"

	"repro/internal/grid"
	"repro/internal/workload"
)

// ckptPolicy is one checkpointing configuration under comparison.
type ckptPolicy struct {
	name string
	cfg  grid.Config
}

func ckptPolicies() []ckptPolicy {
	return []ckptPolicy{
		// The paper's baseline: recovery restarts jobs from scratch.
		{name: "off", cfg: grid.Config{}},
		// Fixed-interval snapshots every 10 s of execution.
		{name: "fixed-10s", cfg: grid.Config{CheckpointEvery: 10 * time.Second}},
		// Young's-rule interval adapted to the observed failure rate
		// (Ni & Harwood's adaptive scheme), clamped to [2 s, 30 s].
		{name: "adaptive", cfg: grid.Config{
			CheckpointEvery:    10 * time.Second,
			CheckpointAdaptive: true,
			CheckpointMinEvery: 2 * time.Second,
			CheckpointMaxEvery: 30 * time.Second,
		}},
	}
}

// CkptSweep compares checkpoint policies — off, fixed interval, and
// failure-rate-adaptive — under the fault sweep's seeded schedules.
// The interesting columns are re-exec-work (recovery re-runs that
// checkpointing exists to cut) and lost-work (all executed-but-undelivered
// effort); resumed-work is what snapshots salvaged outright.
func CkptSweep(o Options) *Table {
	tbl := &Table{
		Title:  "Checkpoint sweep: off vs fixed vs adaptive under seeded faults (RN-Tree, maintenance on)",
		Header: []string{"faults", "policy", "delivered", "ckpts", "resumes", "resumed-work", "lost-work", "re-exec-work", "avg-turnaround"},
		Notes: []string{
			"work columns are seconds of nominal work; schedules are seeded and replayable",
			"lost-work: executed work absent from any delivered result; re-exec-work: its share on eventually-delivered jobs",
			"resumed-work: work skipped by resuming from owner-held snapshots instead of restarting",
		},
	}
	for _, lvl := range faultLevels() {
		if lvl.plan == nil || lvl.plan.Crashes == 0 {
			// Checkpoints only pay off when executions actually die;
			// keep the sweep to the crash-bearing levels plus pure
			// message loss (false run-failure detections still rematch
			// mid-execution there).
			if lvl.name != "drops" {
				continue
			}
		}
		for _, pol := range ckptPolicies() {
			wcfg := o.base()
			wcfg.Jobs = wcfg.Jobs / 5
			wcfg.NodePop = workload.Mixed
			wcfg.JobPop = workload.Mixed
			wcfg.Level = workload.Lightly
			o.logf("ckptsweep level=%s policy=%s", lvl.name, pol.name)
			res := o.Build(Scenario{
				Alg:         AlgRNTree,
				Workload:    wcfg,
				Grid:        pol.cfg,
				NetSeed:     o.Seed + 90,
				Maintenance: true,
				Faults:      lvl.plan,
				FaultSeed:   o.Seed + 91,
			}).Run()
			tbl.Rows = append(tbl.Rows, []string{
				lvl.name, pol.name,
				fmt.Sprintf("%d/%d", res.Delivered, res.Jobs),
				fmt.Sprint(res.Checkpoints), fmt.Sprint(res.Resumes),
				fmtF(res.ResumedWork.Seconds()),
				fmtF(res.WastedWork.Seconds()),
				fmtF(res.ReexecutedWork.Seconds()),
				fmtF(res.Turnaround.Mean),
			})
		}
	}
	return tbl
}
