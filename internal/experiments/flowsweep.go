package experiments

import (
	"fmt"
	"time"

	"repro/internal/faultinject"
	"repro/internal/flow"
	"repro/internal/grid"
	"repro/internal/ids"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// The flow sweep measures what workflow awareness buys on top of
// adaptive checkpointing (DESIGN.md §15). A DAG concentrates risk on
// its critical path: losing progress on a stage that feeds the rest of
// the graph delays every descendant, while the same loss on a sink
// delays only itself. The workflow-aware policy tightens snapshot
// intervals by sqrt(bias) on exactly those upstream stages, so the
// comparison that matters is critical-path re-executed work between
// "adaptive" and "workflow-aware" under the identical seeded crash
// schedule — the schedules are pregenerated from (seed, plan), so the
// policy cannot perturb when crashes land.

// flowTopo is one DAG shape under test.
type flowTopo struct {
	name  string
	graph func() flow.Graph
}

func flowTopos() []flowTopo {
	return []flowTopo{
		// Fan-out/fan-in: one source feeds two branches that merge.
		{name: "diamond", graph: func() flow.Graph {
			return flow.Graph{Name: "diamond", Stages: []flow.Stage{
				{Name: "prep", Spec: grid.JobSpec{Work: 15 * time.Second, OutputKB: 2}},
				{Name: "left", Spec: grid.JobSpec{Work: 25 * time.Second, OutputKB: 1}, After: []string{"prep"}},
				{Name: "right", Spec: grid.JobSpec{Work: 20 * time.Second, OutputKB: 1}, After: []string{"prep"}},
				{Name: "merge", Spec: grid.JobSpec{Work: 12 * time.Second}, After: []string{"left", "right"}},
			}}
		}},
		// Wide fan-out: one source feeds five independent workers whose
		// results a sink collects; the source's bias is the largest here.
		{name: "wide", graph: func() flow.Graph {
			stages := []flow.Stage{
				{Name: "src", Spec: grid.JobSpec{Work: 15 * time.Second, OutputKB: 2}},
			}
			var workers []string
			for i := 0; i < 5; i++ {
				name := fmt.Sprintf("w%d", i)
				workers = append(workers, name)
				stages = append(stages, flow.Stage{
					Name:  name,
					Spec:  grid.JobSpec{Work: time.Duration(12+2*i) * time.Second, OutputKB: 1},
					After: []string{"src"},
				})
			}
			stages = append(stages, flow.Stage{
				Name: "sink", Spec: grid.JobSpec{Work: 10 * time.Second}, After: workers,
			})
			return flow.Graph{Name: "wide", Stages: stages}
		}},
		// Deep chain: every stage is on the critical path, with bias
		// decaying toward the tail.
		{name: "deep", graph: func() flow.Graph {
			var stages []flow.Stage
			for i := 0; i < 6; i++ {
				s := flow.Stage{
					Name: fmt.Sprintf("s%d", i),
					Spec: grid.JobSpec{Work: 12 * time.Second, OutputKB: 1},
				}
				if i > 0 {
					s.After = []string{fmt.Sprintf("s%d", i-1)}
				}
				if i == 5 {
					s.Spec.OutputKB = 0
				}
				stages = append(stages, s)
			}
			return flow.Graph{Name: "deep", Stages: stages}
		}},
	}
}

// flowGridCfg is the shared grid tuning: tight failure detection so the
// seeded crashes are noticed mid-stage, and the notification overlay's
// silence window so completions are pushed, not polled.
func flowGridCfg() grid.Config {
	return grid.Config{
		HeartbeatEvery:  time.Second,
		RunDeadAfter:    5 * time.Second,
		OwnerDeadAfter:  5 * time.Second,
		MatchRetryEvery: 2 * time.Second,
		MaxRematch:      8,
		IdlePoll:        time.Second,
		NotifySilence:   10 * time.Second,
	}
}

// flowPolicies are the four checkpoint policies compared per topology.
func flowPolicies() []ckptPolicy {
	off := flowGridCfg()
	fixed := flowGridCfg()
	fixed.CheckpointEvery = 5 * time.Second
	adaptive := flowGridCfg()
	adaptive.CheckpointEvery = 5 * time.Second
	adaptive.CheckpointAdaptive = true
	adaptive.CheckpointMinEvery = 2 * time.Second
	adaptive.CheckpointMaxEvery = 20 * time.Second
	aware := adaptive
	aware.CheckpointWorkflowAware = true
	return []ckptPolicy{
		{name: "off", cfg: off},
		{name: "fixed-5s", cfg: fixed},
		{name: "adaptive", cfg: adaptive},
		{name: "workflow-aware", cfg: aware},
	}
}

// flowFaultPlan is the crash schedule every policy replays: run-node
// and owner crashes landing inside the DAG's execution window, a
// little control-plane loss, and a light tail of random delays. The
// loss rates stay low on purpose: false run-death rematch produces
// duplicate full executions no snapshot policy can recover, and too
// much of that noise would bury the crash-loss signal the sweep is
// measuring.
func flowFaultPlan() faultinject.Plan {
	return faultinject.Plan{
		Window:          2 * time.Minute,
		Crashes:         5,
		RestartProb:     0.8,
		RestartDelayMin: 5 * time.Second,
		RestartDelayMax: 12 * time.Second,
		Rules: []faultinject.Rule{
			{Method: grid.MHeartbeat, DropProb: 0.1},
			{Method: grid.MComplete, DropProb: 0.1, DupProb: 0.1},
			{Method: grid.MResult, DropProb: 0.1, DupProb: 0.1},
			{DelayProb: 0.1, DelayMin: 50 * time.Millisecond, DelayMax: 500 * time.Millisecond},
		},
	}
}

// FlowStats aggregates one DAG run. All fields are scalars so tests can
// compare whole runs for replay identity.
type FlowStats struct {
	Stages      int
	Delivered   int
	Makespan    time.Duration // flow start to last stage delivery
	Checkpoints int
	Resumes     int
	Resubmits   int
	// ReexecWork is executed work beyond each stage's nominal Work,
	// summed over all attempts of all stages (the recovery re-run
	// overhead); CritReexecWork is its share on critical-path stages.
	ReexecWork     time.Duration
	CritReexecWork time.Duration
}

// flowMaxAttempts bounds the per-stage GUID scan when tallying executed
// work across resubmissions; the monitor never gets anywhere near it.
const flowMaxAttempts = 64

// FlowRun executes one cell of the flow sweep: the named topology on a
// small central-matchmade grid with the notification overlay wired,
// under the seeded crash schedule, with one checkpoint policy. The
// seed fixes both the network timeline and the fault schedule, so runs
// differing only in policy face the identical failure sequence.
// Exposed so tests can assert on raw stats rather than re-parse the
// table.
func FlowRun(o Options, topo flowTopo, pol ckptPolicy, seed int64) (FlowStats, error) {
	wcfg := o.base()
	wcfg.Nodes = 16
	wcfg.Jobs = 1 // generated but never submitted; the flow engine drives
	wcfg.Clients = 1
	d := o.Build(Scenario{
		Alg:      AlgCentral,
		Workload: wcfg,
		Grid:     pol.cfg,
		NetSeed:  seed,
		Notify:   true,
	})
	defer d.Engine.Shutdown()

	ci := d.clients[0]
	client := d.Grids[ci]
	client.StartClientMonitor(10 * time.Second)

	g := topo.graph()
	plan, err := g.Validate()
	if err != nil {
		return FlowStats{}, err
	}

	fplan := flowFaultPlan()
	fplan.Nodes = len(d.Grids)
	fplan.Protect = []int{ci}
	sched := faultinject.Generate(seed, fplan)
	d.Net.Faults = sched.Injector(func() time.Duration { return time.Duration(d.Engine.Now()) })
	disarm := sched.Arm(d.Engine, d.Net, d, func(i int) simnet.Addr {
		return simnet.Addr(d.Hosts[i].Addr())
	})
	defer disarm()

	var results map[string]flow.StageResult
	var ferr error
	started := time.Duration(d.Engine.Now())
	done := false
	d.Hosts[ci].Go("flow.run", func(rt transport.Runtime) {
		defer func() { done = true }()
		results, ferr = flow.RunPlan(rt, client, plan, flow.Options{
			Deadline: rt.Now() + 30*time.Minute,
			Notify:   d.Brokers[ci],
		})
	})
	for !done {
		d.Engine.RunFor(5 * time.Second)
	}
	if ferr != nil {
		return FlowStats{}, fmt.Errorf("flow %s/%s seed %d: %w", topo.name, pol.name, seed, ferr)
	}

	st := FlowStats{
		Stages:      len(plan.Order),
		Delivered:   len(results),
		Checkpoints: d.Collector.Count(grid.EvCheckpointed),
		Resumes:     d.Collector.Count(grid.EvResumed),
		Resubmits:   d.Collector.Count(grid.EvResubmitted),
	}
	for _, sr := range results {
		if end := sr.Finished - started; end > st.Makespan {
			st.Makespan = end
		}
	}

	// Re-executed work per stage: everything run nodes computed for any
	// attempt of the stage's lineage, beyond its nominal Work. Stage
	// lineages are scanned by GUID — stable accounting even after the
	// monitor re-keyed an attempt.
	perJob := make(map[ids.ID]time.Duration)
	for _, gn := range d.Grids {
		for id, w := range gn.ExecutedByJob() {
			perJob[id] += w
		}
	}
	onCP := make(map[string]bool, len(plan.CriticalPath))
	for _, name := range plan.CriticalPath {
		onCP[name] = true
	}
	byName := make(map[string]flow.Stage, len(g.Stages))
	for _, s := range g.Stages {
		byName[s.Name] = s
	}
	addr := transport.Addr(client.Addr())
	for name, sr := range results {
		var executed time.Duration
		for k := 0; k < flowMaxAttempts; k++ {
			executed += perJob[grid.JobGUID(addr, sr.Seq, k)]
		}
		if extra := executed - byName[name].Spec.Work; extra > 0 {
			st.ReexecWork += extra
			if onCP[name] {
				st.CritReexecWork += extra
			}
		}
	}
	return st, nil
}

// flowRepeats picks how many seeded schedules each cell averages over.
func flowRepeats(o Options) int {
	if o.Scale >= 0.5 {
		return 12
	}
	return 3
}

// FlowSweep compares checkpoint policies on whole DAGs: three
// topologies x four policies, each cell summed over the same seeded
// crash schedules. The claim pinned by CI: workflow-aware biasing cuts
// critical-path re-executed work versus plain adaptive on the
// identical schedules.
func FlowSweep(o Options) *Table {
	tbl := &Table{
		Title:  "Flow sweep: DAG makespan and re-executed work by checkpoint policy (central matchmaker, notification overlay, seeded crash schedules)",
		Header: []string{"topology", "policy", "delivered", "makespan", "ckpts", "resumes", "resubmits", "re-exec-work", "cp-re-exec"},
		Notes: []string{
			"each cell sums the same seeded crash schedules; makespan is the mean across them",
			"re-exec-work: seconds executed beyond each stage's nominal work, over all attempts",
			"cp-re-exec: the share of re-exec-work on critical-path stages — what workflow-aware biasing targets",
		},
	}
	repeats := flowRepeats(o)
	for _, topo := range flowTopos() {
		for _, pol := range flowPolicies() {
			o.logf("flowsweep topo=%s policy=%s", topo.name, pol.name)
			var agg FlowStats
			var makespans time.Duration
			stages, delivered := 0, 0
			for r := 0; r < repeats; r++ {
				st, err := FlowRun(o, topo, pol, o.Seed+120+int64(r)*7)
				if err != nil {
					tbl.Rows = append(tbl.Rows, []string{topo.name, pol.name, "ERR: " + err.Error(), "", "", "", "", "", ""})
					continue
				}
				stages += st.Stages
				delivered += st.Delivered
				makespans += st.Makespan
				agg.Checkpoints += st.Checkpoints
				agg.Resumes += st.Resumes
				agg.Resubmits += st.Resubmits
				agg.ReexecWork += st.ReexecWork
				agg.CritReexecWork += st.CritReexecWork
			}
			tbl.Rows = append(tbl.Rows, []string{
				topo.name, pol.name,
				fmt.Sprintf("%d/%d", delivered, stages),
				fmt.Sprintf("%.1fs", (makespans / time.Duration(repeats)).Seconds()),
				fmt.Sprint(agg.Checkpoints), fmt.Sprint(agg.Resumes), fmt.Sprint(agg.Resubmits),
				fmtF(agg.ReexecWork.Seconds()),
				fmtF(agg.CritReexecWork.Seconds()),
			})
		}
	}
	return tbl
}

// FlowCell resolves a (topology, policy) pair by name for tests and
// external drivers.
func FlowCell(topoName, polName string) (flowTopo, ckptPolicy, error) {
	var topo flowTopo
	var pol ckptPolicy
	found := false
	for _, t := range flowTopos() {
		if t.name == topoName {
			topo, found = t, true
		}
	}
	if !found {
		return topo, pol, fmt.Errorf("flowsweep: unknown topology %q", topoName)
	}
	found = false
	for _, p := range flowPolicies() {
		if p.name == polName {
			pol, found = p, true
		}
	}
	if !found {
		return topo, pol, fmt.Errorf("flowsweep: unknown policy %q", polName)
	}
	return topo, pol, nil
}
