package experiments

import (
	"fmt"
	"time"

	"repro/internal/faultinject"
	"repro/internal/grid"
	"repro/internal/workload"
)

// faultLevel is one severity step of the sweep.
type faultLevel struct {
	name string
	plan *faultinject.Plan // nil = clean baseline
}

func faultLevels() []faultLevel {
	// Message-fault rules shared by the lossy levels: the grid's own
	// control traffic is hit hardest, exactly the messages whose loss
	// the recovery protocol must tolerate.
	lossy := []faultinject.Rule{
		{Method: grid.MHeartbeat, DropProb: 0.25},
		{Method: grid.MComplete, DropProb: 0.15},
		{Method: grid.MResult, DropProb: 0.15},
	}
	dupes := append([]faultinject.Rule{
		{Method: grid.MAssign, DupProb: 0.2},
		{Method: grid.MAdopt, DupProb: 0.2},
	}, lossy...)
	// The catch-all delay rule must come last: the injector's first
	// matching rule wins, and a leading Method:"" rule would shadow the
	// per-method drop/dup rules for every message.
	chaos := append(append([]faultinject.Rule{}, dupes...),
		faultinject.Rule{DelayProb: 0.2, DelayMin: 100 * time.Millisecond, DelayMax: time.Second})
	return []faultLevel{
		{name: "none", plan: nil},
		{name: "drops", plan: &faultinject.Plan{Rules: lossy}},
		{name: "drops+dups", plan: &faultinject.Plan{Rules: dupes}},
		{name: "chaos", plan: &faultinject.Plan{
			Rules:           chaos,
			Crashes:         4,
			RestartProb:     0.5,
			RestartDelayMin: 20 * time.Second,
			RestartDelayMax: time.Minute,
			Partitions:      1,
			PartitionSize:   2,
			PartitionDurMin: 15 * time.Second,
			PartitionDurMax: 45 * time.Second,
		}},
	}
}

// FaultSweep measures recovery behaviour as injected-fault severity
// rises, on the paper's RN-Tree configuration with maintenance on:
// message loss alone, loss plus duplicated control messages, and full
// chaos (extra delays, node crashes with restarts, and a partition).
// Every schedule derives from the run seed, so any row is replayable
// bit-for-bit by rerunning with the same options.
func FaultSweep(o Options) *Table {
	tbl := &Table{
		Title:  "Fault sweep: recovery under seeded fault injection (RN-Tree, maintenance on)",
		Header: []string{"faults", "delivered", "dup-starts", "run-failures", "owner-failures", "adoptions", "resubmits", "gave-up", "injected", "lost-work", "re-exec-work", "avg-turnaround"},
		Notes: []string{
			"schedules are seeded: identical options reproduce identical rows",
			"lost-work: seconds of nominal work executed but absent from any delivered result (failures + duplicates)",
			"re-exec-work: the share of lost-work spent on jobs that were eventually delivered (recovery re-runs)",
		},
	}
	for _, lvl := range faultLevels() {
		wcfg := o.base()
		wcfg.Jobs = wcfg.Jobs / 5
		wcfg.NodePop = workload.Mixed
		wcfg.JobPop = workload.Mixed
		wcfg.Level = workload.Lightly
		o.logf("faultsweep level=%s", lvl.name)
		res := o.Build(Scenario{
			Alg:         AlgRNTree,
			Workload:    wcfg,
			NetSeed:     o.Seed + 90,
			Maintenance: true,
			Faults:      lvl.plan,
			FaultSeed:   o.Seed + 91,
		}).Run()
		tbl.Rows = append(tbl.Rows, []string{
			lvl.name,
			fmt.Sprintf("%d/%d", res.Delivered, res.Jobs),
			fmt.Sprint(res.DupStarts),
			fmt.Sprint(res.RunFailures), fmt.Sprint(res.OwnerFailures),
			fmt.Sprint(res.Adoptions), fmt.Sprint(res.Resubmits),
			fmt.Sprint(res.GaveUp),
			fmt.Sprint(res.Faulted),
			fmtF(res.WastedWork.Seconds()),
			fmtF(res.ReexecutedWork.Seconds()),
			fmtF(res.Turnaround.Mean),
		})
	}
	return tbl
}
