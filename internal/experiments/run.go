package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/faultinject"
	"repro/internal/grid"
	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// Results aggregates one deployment run.
type Results struct {
	Alg       Algorithm
	Nodes     int
	Jobs      int
	Delivered int
	Started   int

	Wait        metrics.Summary // seconds, submission -> execution start
	Turnaround  metrics.Summary // seconds, submission -> result delivery
	MatchCost   metrics.Summary // messages per match (route+search+walk+push)
	MatchVisits metrics.Summary // nodes examined per match

	ImbalanceCV      float64 // coefficient of variation of per-node completions
	ImbalanceMaxMean float64

	Messages int64 // total network messages

	RunFailures   int // owner-detected run-node failures
	OwnerFailures int // run-node-detected owner failures
	Adoptions     int
	Resubmits     int
	MatchFailed   int
	GaveUp        int
	DupStarts     int   // surplus executions beyond one per job GUID
	Faulted       int64 // messages touched by the fault injector

	// Work accounting (nominal-work units). ExecutedWork is everything
	// run nodes computed, counted at slice boundaries; UsefulWork is the
	// nominal work of delivered jobs; WastedWork is the difference —
	// work lost to failures, re-executed on recovery, or discarded as
	// duplicate.
	ExecutedWork time.Duration
	UsefulWork   time.Duration
	WastedWork   time.Duration

	// ReexecutedWork is the share of WastedWork spent on jobs that were
	// eventually delivered — the recovery re-run overhead checkpointing
	// exists to cut. The remainder of WastedWork belongs to jobs never
	// delivered (gave up / still pending) and to discarded duplicates.
	ReexecutedWork time.Duration

	// Checkpoint/resume counters (zero with checkpointing off).
	Checkpoints int
	Resumes     int
	ResumedWork time.Duration // work salvaged by resuming from snapshots

	// Notification-overlay accounting (DESIGN.md §13; zero without
	// Scenario.Notify except StatusRPCs, which counts polling too).
	StatusRPCs   int64 // grid.status requests on the wire (polling cost)
	PubsubMsgs   int64 // pubsub.* requests on the wire (push cost)
	NotifyRecv   int64 // notifications absorbed by client nodes
	StatusProbes int64 // status probes client monitors chose to send

	// Replication counters (zero with ReplicaK 0).
	Promotions int // replicas that took over a dead owner's jobs
	Handoffs   int // re-established execution paths after takeover/restore
	Restores   int // records pushed back to a restarted, amnesiac owner
	Demotions  int // stale owners fenced out by a newer epoch

	// Sabotage-tolerance counters (zero without voting/saboteurs).
	Saboteurs     int // nodes configured Byzantine
	WrongAccepted int // delivered results whose digest != honest expectation
	Votes         int // replica completion votes tallied
	Accepted      int // quorums reached
	Rejected      int // dissenting replicas rejected against a quorum
	QuorumFailed  int // jobs abandoned with quorum unreachable
	Blacklists    int // peers crossing into a blacklist
	Probes        int // known-answer probes completed

	SimEnd time.Duration // virtual time when the run stopped
}

// Run executes the workload on the deployment: each client submits its
// jobs at their arrival instants, and the simulation continues until
// every job's result is delivered or the drain deadline passes.
func (d *Deployment) Run() Results {
	s := d.Scenario
	w := d.W

	// Partition jobs by client, preserving arrival order.
	perClient := make([][]int, len(d.clients))
	for ji, job := range w.Jobs {
		c := job.Client % len(d.clients)
		perClient[c] = append(perClient[c], ji)
	}
	for c, jobIdxs := range perClient {
		node := d.Grids[d.clients[c]]
		jobIdxs := jobIdxs
		d.Hosts[d.clients[c]].Go("client.submit", func(rt transport.Runtime) {
			for _, ji := range jobIdxs {
				job := w.Jobs[ji]
				if wait := job.Arrival - rt.Now(); wait > 0 {
					rt.Sleep(wait)
				}
				_, _ = node.Submit(rt, grid.JobSpec{Cons: job.Cons, Work: job.Work, InputKB: 4})
			}
		})
		if s.Monitor || s.Churn > 0 || s.Faults != nil || s.Sabotage != nil {
			resubmitAfter := s.MonitorResubmitAfter
			if resubmitAfter == 0 {
				resubmitAfter = 30 * time.Second
			}
			node.StartClientMonitor(resubmitAfter)
		}
	}

	// Churn injection: crash a fraction of non-client nodes across the
	// arrival window.
	if s.Churn > 0 {
		clientSet := map[int]bool{}
		for _, c := range d.clients {
			clientSet[c] = true
		}
		rng := d.Engine.NewRand()
		var victims []int
		for i := range d.Grids {
			if !clientSet[i] {
				victims = append(victims, i)
			}
		}
		rng.Shuffle(len(victims), func(i, j int) { victims[i], victims[j] = victims[j], victims[i] })
		kill := int(float64(len(victims)) * s.Churn)
		span := w.Makespan()
		if span == 0 {
			span = time.Minute
		}
		for k := 0; k < kill; k++ {
			at := time.Duration(float64(span) * (0.1 + 0.8*rng.Float64()))
			victim := victims[k]
			d.Engine.Schedule(at, func() { d.Eps[victim].Crash() })
		}
	}

	// Seeded fault schedule: fill population-derived defaults, arm it,
	// and disarm before the final drain so a pending restart event
	// cannot respawn protocol loops mid-shutdown.
	var disarmFaults func()
	if s.Faults != nil {
		plan := *s.Faults
		if plan.Nodes == 0 {
			plan.Nodes = len(d.Grids)
		}
		if plan.Protect == nil {
			plan.Protect = append([]int(nil), d.clients...)
		}
		if plan.Window == 0 {
			plan.Window = w.Makespan()
			if plan.Window == 0 {
				plan.Window = time.Minute
			}
		}
		seed := s.FaultSeed
		if seed == 0 {
			seed = s.NetSeed
		}
		sched := faultinject.Generate(seed, plan)
		d.Net.Faults = sched.Injector(func() time.Duration { return time.Duration(d.Engine.Now()) })
		disarmFaults = sched.Arm(d.Engine, d.Net, d, func(i int) simnet.Addr {
			return simnet.Addr(d.Hosts[i].Addr())
		})
	}

	drain := s.DrainSlack
	if drain == 0 {
		drain = 40 * s.Workload.MeanRuntime
	}
	deadline := w.Makespan() + drain
	for {
		d.Engine.RunFor(10 * time.Second)
		if d.Collector.Count(grid.EvResultDelivered) >= len(w.Jobs) {
			break
		}
		if time.Duration(d.Engine.Now()) >= deadline {
			break
		}
	}
	if disarmFaults != nil {
		disarmFaults()
	}
	res := d.results()
	d.Engine.Shutdown()
	if ins := s.Instrument; ins != nil && ins.OnStats != nil && d.Engine.Stats() != nil {
		ins.OnStats(fmt.Sprintf("%s nodes=%d jobs=%d", s.Alg, res.Nodes, res.Jobs), d.Engine.Stats())
	}
	return res
}

func (d *Deployment) results() Results {
	col := d.Collector
	res := Results{
		Alg:           d.Scenario.Alg,
		Nodes:         len(d.Grids),
		Jobs:          len(d.W.Jobs),
		Delivered:     col.Count(grid.EvResultDelivered),
		Started:       col.Count(grid.EvStarted),
		Wait:          metrics.Summarize(col.WaitTimes()),
		Turnaround:    metrics.Summarize(col.Turnarounds()),
		MatchCost:     metrics.Summarize(col.MatchCosts()),
		MatchVisits:   metrics.Summarize(col.MatchVisits()),
		Messages:      d.Net.Stats.Messages,
		RunFailures:   col.Count(grid.EvRunFailureDetected),
		OwnerFailures: col.Count(grid.EvOwnerFailureDetected),
		Adoptions:     col.Count(grid.EvOwnerAdopted),
		Resubmits:     col.Count(grid.EvResubmitted),
		MatchFailed:   col.Count(grid.EvMatchFailed),
		GaveUp:        col.Count(grid.EvGaveUp),
		Faulted:       d.Net.Stats.Faulted,
		SimEnd:        time.Duration(d.Engine.Now()),
	}
	res.StatusRPCs = d.Net.Stats.ByMethod[grid.MStatus]
	for method, count := range d.Net.Stats.ByMethod {
		if strings.HasPrefix(method, "pubsub.") {
			res.PubsubMsgs += count
		}
	}
	for _, g := range d.Grids {
		res.NotifyRecv += g.NotifyRecv
		res.StatusProbes += g.StatusProbes
	}
	startedJobs := 0
	for _, tr := range col.Jobs() {
		if tr.Started {
			startedJobs++
		}
	}
	res.DupStarts = res.Started - startedJobs
	if d.Byz != nil {
		res.Saboteurs = len(d.Byz.Saboteurs())
	}
	res.Promotions = col.Count(grid.EvPromoted)
	res.Handoffs = col.Count(grid.EvHandoff)
	res.Restores = col.Count(grid.EvRestored)
	res.Demotions = col.Count(grid.EvDemoted)
	res.WrongAccepted = col.WrongDeliveries()
	res.Votes = col.Count(grid.EvVoted)
	res.Accepted = col.Count(grid.EvAccepted)
	res.Rejected = col.Count(grid.EvRejected)
	res.QuorumFailed = col.Count(grid.EvQuorumFailed)
	res.Blacklists = col.Count(grid.EvBlacklisted)
	res.Probes = col.Count(grid.EvProbed)
	res.Checkpoints = col.Count(grid.EvCheckpointed)
	res.Resumes = col.Count(grid.EvResumed)
	res.ResumedWork = col.ResumedWork()
	res.UsefulWork = col.UsefulWork()
	for _, g := range d.Grids {
		res.ExecutedWork += g.Executed
	}
	if res.WastedWork = res.ExecutedWork - res.UsefulWork; res.WastedWork < 0 {
		res.WastedWork = 0
	}
	perJob := make(map[ids.ID]time.Duration)
	for _, g := range d.Grids {
		for id, w := range g.ExecutedByJob() {
			perJob[id] += w
		}
	}
	for _, tr := range col.Jobs() {
		if !tr.Delivered {
			continue
		}
		if extra := perJob[tr.JobID] - tr.Work; extra > 0 {
			res.ReexecutedWork += extra
		}
	}
	perNode := make([]float64, 0, len(d.Grids))
	for _, g := range d.Grids {
		perNode = append(perNode, float64(g.Completed))
	}
	res.ImbalanceCV, res.ImbalanceMaxMean = metrics.Imbalance(perNode)
	return res
}

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	out := t.Title + "\n"
	line := func(cells []string) string {
		s := ""
		for i, c := range cells {
			s += fmt.Sprintf("%-*s  ", widths[i], c)
		}
		return s + "\n"
	}
	out += line(t.Header)
	for _, w := range widths {
		out += dashes(w) + "  "
	}
	out += "\n"
	for _, row := range t.Rows {
		out += line(row)
	}
	for _, n := range t.Notes {
		out += "note: " + n + "\n"
	}
	return out
}

func dashes(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '-'
	}
	return string(b)
}

// SortRows orders rows lexicographically (stable output for goldens).
func (t *Table) SortRows() {
	sort.Slice(t.Rows, func(i, j int) bool {
		for k := range t.Rows[i] {
			if t.Rows[i][k] != t.Rows[j][k] {
				return t.Rows[i][k] < t.Rows[j][k]
			}
		}
		return false
	})
}

// CSV renders the table as comma-separated values (header first).
func (t *Table) CSV() string {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	line := func(cells []string) string {
		out := make([]string, len(cells))
		for i, c := range cells {
			out[i] = esc(c)
		}
		return strings.Join(out, ",") + "\n"
	}
	s := line(t.Header)
	for _, row := range t.Rows {
		s += line(row)
	}
	return s
}
