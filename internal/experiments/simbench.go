package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/workload"
)

// The simbench harness measures the simulator itself: how fast the
// kernel burns through a representative grid workload at each rung of
// a declarative scale ladder (dedis/onet's runfile-driven simulation
// ladders are the exemplar). Its output, BENCH_sim.json, is the
// baseline every later scale refactor must beat or explain — and its
// per-layer attribution names the subsystems such a refactor should
// target first.

// SimBenchConfig is the declarative workload ladder. The zero value is
// unusable; start from DefaultSimBench or ParseRunfile.
type SimBenchConfig struct {
	// Scales are the ladder rungs as fractions of paper scale
	// (1 = 1000 nodes / 5000 jobs).
	Scales []float64
	// Grow keeps doubling past the last rung while the projected rung
	// cost fits WallBudget — "the largest scale that finishes under a
	// wall budget".
	Grow bool
	// WallBudget bounds one rung's wall time. A rung that exceeds it
	// still finishes (runs are never aborted mid-flight, so every rung
	// reported is a complete run) but ends the ladder.
	WallBudget time.Duration
	// Alg is the matchmaking system under test.
	Alg Algorithm
	// Maintenance turns on the periodic overlay loops (stabilization,
	// heartbeats, gossip) — the steady-state load the scale work cares
	// about.
	Maintenance bool
}

// DefaultSimBench is the checked-in ladder: quarter, half, and full
// paper scale under RN-Tree with maintenance on.
func DefaultSimBench() SimBenchConfig {
	return SimBenchConfig{
		Scales:      []float64{0.25, 0.5, 1},
		Grow:        false,
		WallBudget:  5 * time.Minute,
		Alg:         AlgRNTree,
		Maintenance: true,
	}
}

// ParseRunfile reads a declarative simbench runfile: one "key = value"
// per line, '#' comments. Keys: scales (comma-separated floats), grow
// (bool), budget (duration), alg (matchmaker name), maintenance
// (bool). Unset keys keep their DefaultSimBench values.
func ParseRunfile(data string) (SimBenchConfig, error) {
	cfg := DefaultSimBench()
	for ln, line := range strings.Split(data, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		key, val, ok := strings.Cut(line, "=")
		if !ok {
			return cfg, fmt.Errorf("runfile line %d: want key = value, got %q", ln+1, line)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		var err error
		switch key {
		case "scales":
			cfg.Scales = cfg.Scales[:0]
			for _, f := range strings.Split(val, ",") {
				v, perr := strconv.ParseFloat(strings.TrimSpace(f), 64)
				if perr != nil || v <= 0 {
					return cfg, fmt.Errorf("runfile line %d: bad scale %q", ln+1, f)
				}
				cfg.Scales = append(cfg.Scales, v)
			}
		case "grow":
			cfg.Grow, err = strconv.ParseBool(val)
		case "budget":
			cfg.WallBudget, err = time.ParseDuration(val)
		case "alg":
			cfg.Alg, err = ParseAlgorithm(val)
		case "maintenance":
			cfg.Maintenance, err = strconv.ParseBool(val)
		default:
			return cfg, fmt.Errorf("runfile line %d: unknown key %q", ln+1, key)
		}
		if err != nil {
			return cfg, fmt.Errorf("runfile line %d: %s: %v", ln+1, key, err)
		}
	}
	if len(cfg.Scales) == 0 {
		return cfg, fmt.Errorf("runfile: no scales")
	}
	return cfg, nil
}

// SimBenchLayer is one subsystem's share of the kernel load at a rung.
type SimBenchLayer struct {
	Layer       string  `json:"layer"`
	Scheduled   int64   `json:"scheduled"`
	Fired       int64   `json:"fired"`
	Switches    int64   `json:"switches"`
	WallSeconds float64 `json:"wall_seconds"`
}

// SimBenchRung is one completed ladder rung.
type SimBenchRung struct {
	Scale            float64         `json:"scale"`
	Nodes            int             `json:"nodes"`
	Jobs             int             `json:"jobs"`
	Delivered        int             `json:"delivered"`
	SimSeconds       float64         `json:"sim_seconds"`
	WallSeconds      float64         `json:"wall_seconds"`  // inside the kernel run loops
	TotalSeconds     float64         `json:"total_seconds"` // build + run (the budget basis)
	EventsScheduled  int64           `json:"events_scheduled"`
	EventsFired      int64           `json:"events_fired"`
	Switches         int64           `json:"switches"`
	EventsPerSec     float64         `json:"events_per_sec"`
	WallPerSimSec    float64         `json:"wall_per_sim_second"`
	SwitchesPerEvent float64         `json:"switches_per_event"`
	PeakEventHeap    int             `json:"peak_event_heap"`
	PeakProcs        int             `json:"peak_procs"`
	OverBudget       bool            `json:"over_budget,omitempty"`
	TopLayer         string          `json:"top_layer"`
	Layers           []SimBenchLayer `json:"layers"`
}

// SimBenchResult is the BENCH_sim.json payload.
type SimBenchResult struct {
	Alg               string         `json:"alg"`
	Seed              int64          `json:"seed"`
	Maintenance       bool           `json:"maintenance"`
	WallBudgetSeconds float64        `json:"wall_budget_seconds"`
	Rungs             []SimBenchRung `json:"rungs"`
}

// SimBench runs the ladder and reports per-rung kernel throughput with
// per-layer attribution. Options.Scale is ignored — the ladder's rungs
// set the scale — but Seed and Instrument (trace/report sinks) apply.
func SimBench(cfg SimBenchConfig, o Options) (*SimBenchResult, *Table) {
	result := &SimBenchResult{
		Alg:               cfg.Alg.String(),
		Seed:              o.Seed,
		Maintenance:       cfg.Maintenance,
		WallBudgetSeconds: cfg.WallBudget.Seconds(),
	}
	tbl := &Table{
		Title: fmt.Sprintf("simbench: kernel throughput ladder (%s, maintenance=%v)", cfg.Alg, cfg.Maintenance),
		Header: []string{"scale", "nodes", "jobs", "delivered", "events", "events/s",
			"wall-s/sim-s", "sw/event", "peak-heap", "peak-procs", "top-layer", "wall"},
	}

	scales := append([]float64(nil), cfg.Scales...)
	for i := 0; i < len(scales); i++ {
		scale := scales[i]
		o.logf("simbench rung %d: scale %g", i+1, scale)
		rung := simBenchRung(cfg, o, scale)
		result.Rungs = append(result.Rungs, rung)
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%g", scale), fmt.Sprint(rung.Nodes), fmt.Sprint(rung.Jobs),
			fmt.Sprintf("%d/%d", rung.Delivered, rung.Jobs),
			fmt.Sprint(rung.EventsFired), fmt.Sprintf("%.0f", rung.EventsPerSec),
			fmt.Sprintf("%.3f", rung.WallPerSimSec), fmt.Sprintf("%.2f", rung.SwitchesPerEvent),
			fmt.Sprint(rung.PeakEventHeap), fmt.Sprint(rung.PeakProcs),
			rung.TopLayer, fmt.Sprintf("%.1fs", rung.TotalSeconds),
		})
		if rung.OverBudget {
			break
		}
		// Grow mode: double the ladder while the next rung's projected
		// cost (wall time scales a bit superlinearly with population;
		// 3x the last rung is a conservative projection for 2x scale)
		// still fits the budget.
		if cfg.Grow && i == len(scales)-1 &&
			time.Duration(rung.TotalSeconds*3*float64(time.Second)) < cfg.WallBudget {
			scales = append(scales, scale*2)
		}
	}
	if n := len(result.Rungs); n > 0 {
		top := result.Rungs[n-1]
		tbl.Notes = append(tbl.Notes, fmt.Sprintf(
			"largest rung under the %v budget: scale %g (%d nodes) at %.0f events/s; top event producer: %s",
			cfg.WallBudget, top.Scale, top.Nodes, top.EventsPerSec, top.TopLayer))
	}
	return result, tbl
}

// simBenchRung builds, runs, and measures one rung.
func simBenchRung(cfg SimBenchConfig, o Options, scale float64) SimBenchRung {
	wcfg := workload.NewConfig()
	wcfg.Seed = o.Seed + 1
	wcfg = wcfg.Scale(scale)

	// Kernel stats are the point of this experiment, so they are forced
	// on; the caller's trace/report sinks still apply.
	ins := &Instrument{Stats: true}
	if o.Instrument != nil {
		ins.Trace = o.Instrument.Trace
		ins.OnStats = o.Instrument.OnStats
	}

	t0 := time.Now()
	d := Build(Scenario{
		Alg:         cfg.Alg,
		Workload:    wcfg,
		NetSeed:     o.Seed + 77,
		Maintenance: cfg.Maintenance,
		Instrument:  ins,
	})
	res := d.Run()
	total := time.Since(t0)
	st := d.Engine.Stats()

	rung := SimBenchRung{
		Scale:            scale,
		Nodes:            res.Nodes,
		Jobs:             res.Jobs,
		Delivered:        res.Delivered,
		SimSeconds:       res.SimEnd.Seconds(),
		WallSeconds:      float64(st.WallNS) / 1e9,
		TotalSeconds:     total.Seconds(),
		EventsScheduled:  st.EventsScheduled,
		EventsFired:      st.EventsFired,
		Switches:         st.Switches,
		EventsPerSec:     st.EventsPerSec(),
		WallPerSimSec:    st.WallPerVirtSec(),
		SwitchesPerEvent: st.SwitchesPerEvent(),
		PeakEventHeap:    st.PeakQueue,
		PeakProcs:        st.PeakProcs,
		OverBudget:       total > cfg.WallBudget,
		TopLayer:         st.TopTag(),
	}
	for _, r := range st.RankedTags() {
		rung.Layers = append(rung.Layers, SimBenchLayer{
			Layer:       r.Tag,
			Scheduled:   r.Scheduled,
			Fired:       r.Fired,
			Switches:    r.Switches,
			WallSeconds: float64(r.WallNS) / 1e9,
		})
	}
	return rung
}
