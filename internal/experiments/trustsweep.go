package experiments

import (
	"fmt"
	"time"

	"repro/internal/faultinject"
	"repro/internal/grid"
	"repro/internal/trust"
	"repro/internal/workload"
)

// trustPolicy is one sabotage-tolerance configuration of the sweep.
type trustPolicy struct {
	name     string
	replicas int
	quorum   int
	trust    bool
	probes   bool
}

func trustPolicies() []trustPolicy {
	return []trustPolicy{
		// The paper's protocol: single execution, first answer accepted.
		{name: "r1", replicas: 1, quorum: 1},
		// Minimal redundancy: two replicas must agree.
		{name: "r2-q2", replicas: 2, quorum: 2, trust: true},
		// The headline configuration: majority of three, reputation
		// feedback, and probe-based spot checks of blacklisted peers.
		{name: "r3-q2", replicas: 3, quorum: 2, trust: true, probes: true},
	}
}

// TrustSweep measures sabotage tolerance: for each redundancy/quorum
// policy and each saboteur fraction, how many wrong results the clients
// accept, what the redundancy costs in wasted work, and what voting
// adds to wait time. Saboteur selection and per-job corruption draws
// all derive from the run seed.
func TrustSweep(o Options) *Table {
	tbl := &Table{
		Title:  "Trust sweep: redundant execution + quorum voting under Byzantine saboteurs (RN-Tree, maintenance on)",
		Header: []string{"policy", "saboteurs", "delivered", "wrong-accepted", "votes", "rejected", "quorum-failed", "blacklists", "probes", "redundant-work", "avg-wait", "avg-turnaround"},
		Notes: []string{
			"saboteurs corrupt result digests with p=0.7 and withhold results with p=0.1, per (job, attempt)",
			"wrong-accepted: delivered results whose digest differs from the honest expectation",
			"redundant-work: seconds of nominal work executed beyond the delivered jobs' own work (replicas + recovery)",
			"r1 = the paper's single-execution protocol (no voting, no reputation)",
		},
	}
	for _, pol := range trustPolicies() {
		for _, frac := range []float64{0, 0.10, 0.30} {
			wcfg := o.base()
			wcfg.Jobs = wcfg.Jobs / 5
			wcfg.NodePop = workload.Mixed
			wcfg.JobPop = workload.Mixed
			wcfg.Level = workload.Lightly
			o.logf("trustsweep policy=%s saboteurs=%.0f%%", pol.name, frac*100)
			gcfg := grid.Config{Replicas: pol.replicas, Quorum: pol.quorum}
			s := Scenario{
				Alg:          AlgRNTree,
				Workload:     wcfg,
				Grid:         gcfg,
				NetSeed:      o.Seed + 95,
				Maintenance:  true,
				SabotageSeed: o.Seed + 96,
			}
			if pol.trust {
				s.Trust = &trust.Config{}
			}
			if pol.probes {
				s.Grid.ProbeEvery = 30 * time.Second
			}
			if frac > 0 {
				s.Sabotage = &faultinject.ByzPlan{Fraction: frac, WrongProb: 0.7, WithholdProb: 0.1}
			}
			res := o.Build(s).Run()
			redundant := res.ExecutedWork - res.UsefulWork
			if redundant < 0 {
				redundant = 0
			}
			tbl.Rows = append(tbl.Rows, []string{
				pol.name,
				fmt.Sprintf("%d (%.0f%%)", res.Saboteurs, frac*100),
				fmt.Sprintf("%d/%d", res.Delivered, res.Jobs),
				fmt.Sprint(res.WrongAccepted),
				fmt.Sprint(res.Votes),
				fmt.Sprint(res.Rejected),
				fmt.Sprint(res.QuorumFailed),
				fmt.Sprint(res.Blacklists),
				fmt.Sprint(res.Probes),
				fmtF(redundant.Seconds()),
				fmtF(res.Wait.Mean),
				fmtF(res.Turnaround.Mean),
			})
		}
	}
	return tbl
}
