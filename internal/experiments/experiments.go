package experiments

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/can"
	"repro/internal/chord"
	"repro/internal/grid"
	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/simhost"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/workload"
)

// Options control experiment size so the same drivers serve quick CI
// runs (Scale ~0.05-0.2) and full paper-scale runs (Scale 1).
type Options struct {
	// Scale shrinks the paper's 1000-node / 5000-job workload.
	Scale float64
	// Seed offsets all randomness.
	Seed int64
	// Verbose receives progress lines (may be nil).
	Verbose func(format string, args ...any)
	// Instrument, if non-nil, attaches kernel-level observability to
	// every engine the drivers create (gridsim's -simstats,
	// -switch-trace, and the simbench harness ride on it).
	Instrument *Instrument
}

// Instrument configures simulation-kernel observability for a run. It
// is deliberately outside Scenario's protocol knobs: instrumentation
// must never change what the simulation does, only what is recorded
// about it (sim.Stats is replay-neutral by construction).
type Instrument struct {
	// Stats enables the kernel's event/switch/wall-clock collector.
	Stats bool
	// Trace, if non-nil, receives the engine's context-switch trace
	// (one line per proc start/park/wake/exit).
	Trace func(format string, args ...any)
	// OnStats is called after each instrumented run with a short label
	// and the engine's collector (requires Stats).
	OnStats func(label string, st *sim.Stats)
}

// Build wires o's instrumentation into the scenario and builds it.
// Drivers use this instead of the package-level Build so every
// experiment honours gridsim's -simstats / -switch-trace flags.
func (o Options) Build(s Scenario) *Deployment {
	s.Instrument = o.Instrument
	return Build(s)
}

// engine creates a bare engine (for drivers that bypass Build, like
// the DHT study) with o's instrumentation applied.
func (o Options) engine(seed int64) *sim.Engine {
	e := sim.NewEngine(seed)
	if ins := o.Instrument; ins != nil {
		if ins.Stats {
			e.EnableStats()
		}
		if ins.Trace != nil {
			e.Trace = ins.Trace
		}
	}
	return e
}

// reportStats flushes an instrumented engine's collector to the
// OnStats sink, if both halves are configured.
func (o Options) reportStats(label string, e *sim.Engine) {
	if ins := o.Instrument; ins != nil && ins.OnStats != nil && e.Stats() != nil {
		ins.OnStats(label, e.Stats())
	}
}

func (o Options) logf(format string, args ...any) {
	if o.Verbose != nil {
		o.Verbose(format, args...)
	}
}

func (o Options) base() workload.Config {
	cfg := workload.NewConfig()
	cfg.Seed = o.Seed + 1
	if o.Scale > 0 && o.Scale < 1 {
		cfg = cfg.Scale(o.Scale)
	}
	return cfg
}

// fmtF formats a float cell.
func fmtF(v float64) string { return fmt.Sprintf("%.1f", v) }

// --- Figure 2: job wait times ---

// Fig2Row is one (constraint level, algorithm) cell pair of a Figure 2
// panel.
type Fig2Row struct {
	Level    workload.ConstraintLevel
	Alg      Algorithm
	WaitMean float64
	WaitStd  float64
	Results  Results
}

// Fig2 reproduces one pair of Figure 2 panels: average and standard
// deviation of job wait time for the given population quadrant, for
// RN-Tree, CAN, and the centralized baseline, at both constraint
// levels.
func Fig2(pop workload.Population, o Options) ([]Fig2Row, *Table) {
	algs := []Algorithm{AlgRNTree, AlgCAN, AlgCentral}
	levels := []workload.ConstraintLevel{workload.Lightly, workload.Heavily}
	var rows []Fig2Row
	tbl := &Table{
		Title:  fmt.Sprintf("Figure 2 (%s workloads): job wait time (s)", pop),
		Header: []string{"constraints", "algorithm", "avg-wait", "stdev-wait", "delivered", "match-msgs"},
	}
	for _, level := range levels {
		for _, alg := range algs {
			wcfg := o.base()
			wcfg.NodePop = pop
			wcfg.JobPop = pop
			wcfg.Level = level
			o.logf("fig2 %s/%s/%s: %d nodes, %d jobs", pop, level, alg, wcfg.Nodes, wcfg.Jobs)
			res := o.Build(Scenario{Alg: alg, Workload: wcfg, NetSeed: o.Seed + 77}).Run()
			rows = append(rows, Fig2Row{Level: level, Alg: alg, WaitMean: res.Wait.Mean, WaitStd: res.Wait.Std, Results: res})
			tbl.Rows = append(tbl.Rows, []string{
				level.String(), alg.String(),
				fmtF(res.Wait.Mean), fmtF(res.Wait.Std),
				fmt.Sprintf("%d/%d", res.Delivered, res.Jobs),
				fmtF(res.MatchCost.Mean),
			})
		}
	}
	return rows, tbl
}

// --- tab1: matchmaking cost (claim: "small number of hops") ---

// MatchCost measures matchmaking message cost and node visits for every
// workload quadrant, for RN-Tree and CAN — the paper's "results not
// shown" verification that both find run nodes with a small number of
// hops through the overlay.
func MatchCost(o Options) *Table {
	tbl := &Table{
		Title:  "Table 1: matchmaking cost (messages and node visits per job)",
		Header: []string{"workload", "constraints", "algorithm", "avg-msgs", "p95-msgs", "avg-visits", "avg-wait"},
	}
	for _, pop := range []workload.Population{workload.Clustered, workload.Mixed} {
		for _, level := range []workload.ConstraintLevel{workload.Lightly, workload.Heavily} {
			for _, alg := range []Algorithm{AlgRNTree, AlgCAN} {
				wcfg := o.base()
				wcfg.NodePop = pop
				wcfg.JobPop = pop
				wcfg.Level = level
				o.logf("tab1 %s/%s/%s", pop, level, alg)
				res := o.Build(Scenario{Alg: alg, Workload: wcfg, NetSeed: o.Seed + 78}).Run()
				tbl.Rows = append(tbl.Rows, []string{
					pop.String(), level.String(), alg.String(),
					fmtF(res.MatchCost.Mean), fmtF(res.MatchCost.P95),
					fmtF(res.MatchVisits.Mean), fmtF(res.Wait.Mean),
				})
			}
		}
	}
	return tbl
}

// --- tab2: CAN load pushing ---

// CANPush reproduces the paper's preliminary claim that load-based
// pushing "dramatically improves the quality of load balancing
// compared to the basic scheme ... still with low matchmaking cost",
// in the pathological quadrant (mixed nodes, lightly-constrained jobs).
func CANPush(o Options) *Table {
	tbl := &Table{
		Title:  "Table 2: CAN load pushing (mixed nodes, lightly-constrained jobs)",
		Header: []string{"algorithm", "avg-wait", "stdev-wait", "imbalance-cv", "avg-msgs", "delivered"},
	}
	for _, alg := range []Algorithm{AlgCAN, AlgCANPush, AlgCentral} {
		wcfg := o.base()
		wcfg.NodePop = workload.Mixed
		wcfg.JobPop = workload.Mixed
		wcfg.Level = workload.Lightly
		o.logf("tab2 %s", alg)
		res := o.Build(Scenario{Alg: alg, Workload: wcfg, NetSeed: o.Seed + 79}).Run()
		tbl.Rows = append(tbl.Rows, []string{
			alg.String(), fmtF(res.Wait.Mean), fmtF(res.Wait.Std),
			fmt.Sprintf("%.2f", res.ImbalanceCV), fmtF(res.MatchCost.Mean),
			fmt.Sprintf("%d/%d", res.Delivered, res.Jobs),
		})
	}
	return tbl
}

// --- tab3: DHT behaviour ---

// DHTRow is one network size's lookup/routing measurements.
type DHTRow struct {
	N          int
	ChordHops  float64
	ChordExp   float64 // 0.5*log2(N)
	CANHops    float64
	CANExp     float64 // (d/4)*N^(1/d)
	ChordMsgs  int64   // maintenance messages over the window
	CANMsgs    int64
	WindowSecs float64
}

// DHTBehavior reproduces the "basic behavior of a P2P network" study:
// creating and maintaining the overlay and performing lookups, across
// network sizes.
func DHTBehavior(sizes []int, o Options) ([]DHTRow, *Table) {
	if len(sizes) == 0 {
		sizes = []int{64, 256, 1024}
	}
	const lookups = 200
	const window = 30 * time.Second
	var rows []DHTRow
	tbl := &Table{
		Title:  "Table 3: DHT lookup hops and maintenance cost vs network size",
		Header: []string{"nodes", "chord-hops", "0.5*log2N", "can-hops", "(d/4)N^(1/d)", "chord-maint-msg/s/node", "can-maint-msg/s/node"},
	}
	for _, n := range sizes {
		o.logf("tab3 N=%d", n)
		row := DHTRow{N: n, ChordExp: 0.5 * math.Log2(float64(n)), WindowSecs: window.Seconds()}
		row.CANExp = float64(can.Dims) / 4 * math.Pow(float64(n), 1/float64(can.Dims))

		// Chord: warm-start, measure lookups, then maintenance traffic.
		{
			e := o.engine(o.Seed + 5)
			net := simnet.New(e)
			hosts := make([]*simhost.Host, n)
			nodes := make([]*chord.Node, n)
			for i := 0; i < n; i++ {
				hosts[i] = simhost.New(net.NewEndpoint(simnet.Addr(fmt.Sprintf("n%05d", i))))
				nodes[i] = chord.New(hosts[i], chord.Config{})
			}
			chord.WarmStart(nodes)
			total, count := 0, 0
			done := false
			hosts[0].Go("lookups", func(rt transport.Runtime) {
				rng := rt.Rand()
				for i := 0; i < lookups; i++ {
					src := nodes[rng.Intn(n)]
					_, hops, err := src.Lookup(rt, ids.HashString(fmt.Sprintf("key%d", i)))
					if err == nil {
						total += hops
						count++
					}
				}
				done = true
			})
			for !done {
				e.RunFor(10 * time.Second)
			}
			if count > 0 {
				row.ChordHops = float64(total) / float64(count)
			}
			before := net.Stats.Messages
			for _, nd := range nodes {
				nd.Start()
			}
			e.RunFor(window)
			row.ChordMsgs = net.Stats.Messages - before
			e.Shutdown()
			o.reportStats(fmt.Sprintf("tab3 chord N=%d", n), e)
		}

		// CAN: warm-start, measure routes, then gossip traffic.
		{
			e := o.engine(o.Seed + 6)
			net := simnet.New(e)
			hosts := make([]*simhost.Host, n)
			nodes := make([]*can.Node, n)
			for i := 0; i < n; i++ {
				hosts[i] = simhost.New(net.NewEndpoint(simnet.Addr(fmt.Sprintf("n%05d", i))))
				nodes[i] = can.New(hosts[i], capsForIndex(i), "linux", can.Config{})
			}
			can.WarmStart(nodes, 0)
			total, count := 0, 0
			done := false
			hosts[0].Go("routes", func(rt transport.Runtime) {
				rng := rt.Rand()
				for i := 0; i < lookups; i++ {
					src := nodes[rng.Intn(n)]
					var target can.Point
					for d := range target {
						target[d] = rng.Float64()
					}
					_, hops, err := src.Route(rt, target)
					if err == nil {
						total += hops
						count++
					}
				}
				done = true
			})
			for !done {
				e.RunFor(10 * time.Second)
			}
			if count > 0 {
				row.CANHops = float64(total) / float64(count)
			}
			before := net.Stats.Messages
			for _, nd := range nodes {
				nd.Start()
			}
			e.RunFor(window)
			row.CANMsgs = net.Stats.Messages - before
			e.Shutdown()
			o.reportStats(fmt.Sprintf("tab3 can N=%d", n), e)
		}

		rows = append(rows, row)
		perNodeSec := func(msgs int64) string {
			return fmt.Sprintf("%.2f", float64(msgs)/window.Seconds()/float64(n))
		}
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprint(n),
			fmt.Sprintf("%.2f", row.ChordHops), fmt.Sprintf("%.2f", row.ChordExp),
			fmt.Sprintf("%.2f", row.CANHops), fmt.Sprintf("%.2f", row.CANExp),
			perNodeSec(row.ChordMsgs), perNodeSec(row.CANMsgs),
		})
	}
	return rows, tbl
}

func capsForIndex(i int) resource.Vector {
	return resource.Vector{
		float64(1 + i%10),
		float64(256 + (i*331)%7936),
		float64(1 + (i*97)%499),
	}
}

// --- tab4: robustness under churn ---

// Robustness exercises the Section 2 failure-recovery protocols: crash
// a fraction of nodes during the run and verify jobs still complete via
// owner rematching, run-node adoption, and client resubmission.
func Robustness(churns []float64, o Options) *Table {
	if len(churns) == 0 {
		churns = []float64{0, 0.05, 0.15, 0.30}
	}
	tbl := &Table{
		Title:  "Table 4: robustness under churn (RN-Tree matchmaking, maintenance on)",
		Header: []string{"churn", "delivered", "run-failures", "owner-failures", "adoptions", "resubmits", "avg-wait", "avg-turnaround"},
	}
	for _, churn := range churns {
		wcfg := o.base()
		// Smaller, failure-focused workload: fewer jobs, same load.
		wcfg.Jobs = wcfg.Jobs / 5
		wcfg.NodePop = workload.Mixed
		wcfg.JobPop = workload.Mixed
		wcfg.Level = workload.Lightly
		o.logf("tab4 churn=%.2f", churn)
		res := o.Build(Scenario{
			Alg:         AlgRNTree,
			Workload:    wcfg,
			NetSeed:     o.Seed + 80,
			Maintenance: true,
			Churn:       churn,
		}).Run()
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%.0f%%", churn*100),
			fmt.Sprintf("%d/%d", res.Delivered, res.Jobs),
			fmt.Sprint(res.RunFailures), fmt.Sprint(res.OwnerFailures),
			fmt.Sprint(res.Adoptions), fmt.Sprint(res.Resubmits),
			fmtF(res.Wait.Mean), fmtF(res.Turnaround.Mean),
		})
	}
	return tbl
}

// --- tab5: TTL search misses rare resources ---

// TTLFailure reproduces the related-work criticism: a TTL-bounded
// search "may fail to find a resource capable of running a given job,
// even though such a resource exists somewhere in the network", while
// the DHT-structured matchmakers find it. Every job requires a CPU
// speed only the top ~3% of nodes possess, so a blind 10-probe search
// usually misses while the RN-Tree's aggregates and CAN's geometry
// route straight to the capable region.
func TTLFailure(o Options) *Table {
	tbl := &Table{
		Title:  "Table 5: rare-resource discovery, TTL flooding vs structured matchmaking",
		Header: []string{"algorithm", "delivered", "match-failures", "gave-up", "capable-nodes", "avg-msgs"},
	}
	rare := func(w *workload.Workload) {
		// Threshold at the 97th percentile of node CPU speeds.
		speeds := make([]float64, len(w.Nodes))
		for i, n := range w.Nodes {
			speeds[i] = n.Caps[resource.CPU]
		}
		sort.Float64s(speeds)
		thr := speeds[len(speeds)*97/100]
		for i := range w.Jobs {
			w.Jobs[i].Cons = resource.Unconstrained.Require(resource.CPU, thr)
		}
	}
	for _, alg := range []Algorithm{AlgTTL, AlgRNTree, AlgCAN, AlgCentral} {
		wcfg := o.base()
		wcfg.Jobs = wcfg.Jobs / 10
		// Stretch arrivals so the few capable nodes can absorb the work.
		wcfg.MeanInterarrival *= 10
		wcfg.NodePop = workload.Mixed
		wcfg.JobPop = workload.Mixed
		o.logf("tab5 %s", alg)
		d := o.Build(Scenario{
			Alg:            alg,
			Workload:       wcfg,
			NetSeed:        o.Seed + 81,
			TTLBudget:      10,
			MutateWorkload: rare,
		})
		capable := d.W.SatisfiableBy(d.W.Jobs[0])
		res := d.Run()
		tbl.Rows = append(tbl.Rows, []string{
			alg.String(),
			fmt.Sprintf("%d/%d", res.Delivered, res.Jobs),
			fmt.Sprint(res.MatchFailed), fmt.Sprint(res.GaveUp),
			fmt.Sprintf("%d/%d", capable, res.Nodes),
			fmtF(res.MatchCost.Mean),
		})
	}
	return tbl
}

// --- ablations ---

// VirtualDimAblation quantifies the virtual dimension's effect on CAN
// load balance (Section 3.2's identical-node clustering problem).
func VirtualDimAblation(o Options) *Table {
	tbl := &Table{
		Title:  "Ablation: CAN virtual dimension (clustered nodes, lightly-constrained jobs)",
		Header: []string{"virtual-dim", "avg-wait", "stdev-wait", "imbalance-cv", "delivered"},
	}
	for _, disable := range []bool{false, true} {
		wcfg := o.base()
		wcfg.NodePop = workload.Clustered
		wcfg.JobPop = workload.Clustered
		wcfg.Level = workload.Lightly
		o.logf("ablation virtualdim disable=%v", disable)
		res := o.Build(Scenario{
			Alg:               AlgCAN,
			Workload:          wcfg,
			NetSeed:           o.Seed + 82,
			DisableVirtualDim: disable,
		}).Run()
		label := "on"
		if disable {
			label = "off"
		}
		tbl.Rows = append(tbl.Rows, []string{
			label, fmtF(res.Wait.Mean), fmtF(res.Wait.Std),
			fmt.Sprintf("%.2f", res.ImbalanceCV),
			fmt.Sprintf("%d/%d", res.Delivered, res.Jobs),
		})
	}
	return tbl
}

// ExtendedSearchAblation quantifies the RN-Tree extended search
// ("rather than stopping at the first candidate ... the search proceeds
// until at least k capable nodes are found for better load balancing").
func ExtendedSearchAblation(o Options) *Table {
	tbl := &Table{
		Title:  "Ablation: RN-Tree extended search k (mixed nodes, heavily-constrained jobs)",
		Header: []string{"k", "avg-wait", "stdev-wait", "avg-visits", "delivered"},
	}
	for _, k := range []int{1, 4, 8} {
		wcfg := o.base()
		wcfg.NodePop = workload.Mixed
		wcfg.JobPop = workload.Mixed
		wcfg.Level = workload.Heavily
		o.logf("ablation k=%d", k)
		res := o.Build(Scenario{
			Alg:             AlgRNTree,
			Workload:        wcfg,
			NetSeed:         o.Seed + 83,
			ExtendedSearchK: k,
		}).Run()
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprint(k), fmtF(res.Wait.Mean), fmtF(res.Wait.Std),
			fmtF(res.MatchVisits.Mean),
			fmt.Sprintf("%d/%d", res.Delivered, res.Jobs),
		})
	}
	return tbl
}

// FairnessAblation exercises the fairness extension (the paper's other
// future-work item): a heavy client floods the grid while a light
// client submits occasionally; fair-share run queues should cut the
// light client's turnaround without hurting overall completion.
func FairnessAblation(o Options) *Table {
	tbl := &Table{
		Title:  "Ablation: fair-share run queues (heavy vs light client)",
		Header: []string{"discipline", "light-avg-turnaround", "heavy-avg-turnaround", "overall-avg-wait", "delivered"},
	}
	for _, fair := range []bool{false, true} {
		wcfg := o.base()
		// Two clients with an 8:1 submission ratio, on a grid half the
		// usual size so queues actually form.
		wcfg.Clients = 2
		wcfg.Nodes /= 2
		wcfg.NodePop = workload.Mixed
		wcfg.JobPop = workload.Mixed
		wcfg.Level = workload.Heavily
		o.logf("ablate-fair fair=%v", fair)
		d := o.Build(Scenario{
			Alg:      AlgRNTree,
			Workload: wcfg,
			NetSeed:  o.Seed + 84,
			Grid:     grid.Config{FairShare: fair},
		})
		lightAddr := d.Hosts[d.clients[0]].Addr()
		heavyAddr := d.Hosts[d.clients[1]].Addr()
		res := d.Run()
		var light, heavy []float64
		for _, tr := range d.Collector.Jobs() {
			ta, ok := tr.Turnaround()
			if !ok {
				continue
			}
			switch tr.Client {
			case lightAddr:
				light = append(light, ta.Seconds())
			case heavyAddr:
				heavy = append(heavy, ta.Seconds())
			}
		}
		name := "fifo"
		if fair {
			name = "fair-share"
		}
		tbl.Rows = append(tbl.Rows, []string{
			name,
			fmtF(metrics.Summarize(light).Mean),
			fmtF(metrics.Summarize(heavy).Mean),
			fmtF(res.Wait.Mean),
			fmt.Sprintf("%d/%d", res.Delivered, res.Jobs),
		})
	}
	return tbl
}
