// Package experiments assembles full simulated deployments and drives
// the paper's evaluation: every figure panel and every quantitative
// claim in the text maps to one driver here (see DESIGN.md's
// per-experiment index).
package experiments

import (
	"fmt"
	"time"

	"repro/internal/can"
	"repro/internal/chord"
	"repro/internal/faultinject"
	"repro/internal/grid"
	"repro/internal/ids"
	"repro/internal/match"
	"repro/internal/metrics"
	"repro/internal/pubsub"
	"repro/internal/replica"
	"repro/internal/rntree"
	"repro/internal/sim"
	"repro/internal/simhost"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/trust"
	"repro/internal/workload"
)

// Algorithm selects the matchmaking system under test.
type Algorithm int

// The matchmakers compared in the paper (plus two extra baselines).
const (
	AlgRNTree Algorithm = iota
	AlgCAN
	AlgCANPush
	AlgCentral
	AlgTTL
	AlgRandom
)

var algNames = [...]string{"rntree", "can", "can-push", "central", "ttl", "random"}

func (a Algorithm) String() string {
	if int(a) < len(algNames) {
		return algNames[a]
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// ParseAlgorithm resolves an algorithm name.
func ParseAlgorithm(s string) (Algorithm, error) {
	for i, n := range algNames {
		if n == s {
			return Algorithm(i), nil
		}
	}
	return 0, fmt.Errorf("experiments: unknown algorithm %q", s)
}

// Scenario describes one deployment to simulate.
type Scenario struct {
	Alg      Algorithm
	Workload workload.Config
	Grid     grid.Config
	// NetSeed seeds network latency and protocol randomness
	// independently of the workload seed.
	NetSeed int64
	// Maintenance starts the periodic overlay repair loops (needed only
	// under churn; static experiments skip them for speed).
	Maintenance bool
	// DisableVirtualDim is the CAN clustering ablation.
	DisableVirtualDim bool
	// TTLBudget is the probe budget for the TTL baseline (default 10).
	TTLBudget int
	// ExtendedSearchK overrides the RN-Tree candidate target.
	ExtendedSearchK int
	// RandomWalkLen overrides the RN-Tree walk length (-1 disables).
	RandomWalkLen int
	// DrainSlack is how long past the last arrival the simulation may
	// run to drain queues (default 40x mean runtime).
	DrainSlack time.Duration
	// Churn, if set, crashes that fraction of nodes (uniformly chosen,
	// never clients) spread over the arrival window.
	Churn float64
	// Faults, if set, arms a seeded fault-injection schedule on top of
	// (or instead of) Churn: message drops/delays/duplicates by RPC
	// method, node crashes with restarts, and temporary partitions.
	// Zero-valued Nodes/Protect/Window fields are filled in by Run
	// (population size, the client nodes, and the arrival window).
	Faults *faultinject.Plan
	// FaultSeed seeds the fault schedule; defaults to NetSeed.
	FaultSeed int64
	// Trust, when set, equips every node with a fresh local reputation
	// table under this configuration and wraps its matchmaker with
	// match.Trusted (blacklist exclusion + suspect retry). Tables are
	// strictly per-node; there is no score gossip.
	Trust *trust.Config
	// Sabotage, when set, turns a seeded fraction of non-client nodes
	// Byzantine: as run nodes they corrupt result digests or withhold
	// results per faultinject.ByzPlan. Zero-valued Protect is filled
	// with the client nodes by Build.
	Sabotage *faultinject.ByzPlan
	// SabotageSeed seeds saboteur selection; defaults to NetSeed.
	SabotageSeed int64
	// Notify equips every node with a pub/sub broker and wires it into
	// the grid (DESIGN.md §13): owners push job-state transitions,
	// clients subscribe per lineage, and the client monitor polls only
	// on notification silence. Chord algorithms resolve rendezvous
	// nodes through the ring (with subscriber-list replication at the
	// grid's ReplicaK); others fall back to a fixed rendezvous.
	Notify bool
	// Monitor forces the client recovery monitor on even in fault-free
	// runs (it is always on under Churn/Faults/Sabotage), so polling
	// traffic is measurable in clean push-vs-poll comparisons.
	Monitor bool
	// MonitorResubmitAfter overrides the monitor's resubmit grace
	// (default 30s).
	MonitorResubmitAfter time.Duration
	// NodeSpecs overrides the generated node population (the facade and
	// examples use this to supply explicit per-node resources).
	NodeSpecs []workload.NodeSpec
	// MutateWorkload, if set, edits the generated workload before the
	// deployment is wired (e.g. to plant rare-resource constraints).
	MutateWorkload func(w *workload.Workload)
	// Instrument attaches kernel observability (stats collector and/or
	// switch trace) to the deployment's engine. It never changes the
	// virtual timeline; Options.Build fills it from gridsim's flags.
	Instrument *Instrument
}

// Deployment is a fully-wired simulated grid.
type Deployment struct {
	Scenario  Scenario
	Engine    *sim.Engine
	Net       *simnet.Net
	W         *workload.Workload
	Hosts     []*simhost.Host
	Eps       []*simnet.Endpoint
	Grids     []*grid.Node
	Chords    []*chord.Node
	RNs       []*rntree.Node
	CANs      []*can.Node
	Registry  *match.Registry
	Collector *metrics.Collector
	Byz       *faultinject.Byz // saboteur selection; nil without Sabotage
	Brokers   []*pubsub.Broker // notification overlay; nil without Notify
	ttls      []*match.TTL
	clients   []int // grid node index serving each workload client
}

// Build constructs and wires the deployment; nothing runs yet.
func Build(s Scenario) *Deployment {
	w := workload.Generate(s.Workload)
	if s.NodeSpecs != nil {
		w.Nodes = s.NodeSpecs
	}
	if s.MutateWorkload != nil {
		s.MutateWorkload(w)
	}
	e := sim.NewEngine(s.NetSeed)
	if ins := s.Instrument; ins != nil {
		if ins.Stats {
			e.EnableStats()
		}
		if ins.Trace != nil {
			e.Trace = ins.Trace
		}
	}
	net := simnet.New(e)
	net.Latency = simnet.UniformLatency{Min: 10 * time.Millisecond, Max: 50 * time.Millisecond}

	d := &Deployment{
		Scenario:  s,
		Engine:    e,
		Net:       net,
		W:         w,
		Registry:  match.NewRegistry(),
		Collector: metrics.NewCollector(),
	}

	n := len(w.Nodes)
	needChord := s.Alg == AlgRNTree || s.Alg == AlgCentral || s.Alg == AlgTTL || s.Alg == AlgRandom
	needCAN := s.Alg == AlgCAN || s.Alg == AlgCANPush

	// Map workload clients onto grid nodes, spread across the ID space.
	// Computed before node wiring so saboteur selection can protect them.
	clients := s.Workload.Clients
	if clients <= 0 {
		clients = 1
	}
	for c := 0; c < clients; c++ {
		d.clients = append(d.clients, (c*n)/clients)
	}

	// Saboteur selection: deterministic in the seed, never a client.
	if s.Sabotage != nil {
		plan := *s.Sabotage
		if plan.Protect == nil {
			plan.Protect = append([]int(nil), d.clients...)
		}
		seed := s.SabotageSeed
		if seed == 0 {
			seed = s.NetSeed
		}
		d.Byz = faultinject.GenerateByz(seed, n, plan)
	}

	for i := 0; i < n; i++ {
		ep := net.NewEndpoint(simnet.Addr(fmt.Sprintf("n%04d", i)))
		h := simhost.New(ep)
		d.Eps = append(d.Eps, ep)
		d.Hosts = append(d.Hosts, h)
		spec := w.Nodes[i]

		var overlay grid.Overlay
		var matcher grid.Matchmaker

		if needChord {
			ch := chord.New(h, chord.Config{})
			d.Chords = append(d.Chords, ch)
			switch s.Alg {
			case AlgRNTree:
				rcfg := rntree.Config{K: s.ExtendedSearchK}
				if s.RandomWalkLen != 0 {
					rcfg.RandomWalkLen = s.RandomWalkLen
				}
				rn := rntree.New(h, ch, spec.Caps, spec.OS, rcfg)
				d.RNs = append(d.RNs, rn)
				walk := rn
				if s.RandomWalkLen < 0 {
					walk = nil
				}
				overlay = &match.ChordOverlay{Chord: ch, Walk: walk}
				matcher = &match.RNTree{RN: rn, K: s.ExtendedSearchK}
			case AlgCentral:
				overlay = &match.ChordOverlay{Chord: ch}
				matcher = &match.Central{Reg: d.Registry}
			case AlgRandom:
				overlay = &match.ChordOverlay{Chord: ch}
				matcher = &match.Random{Reg: d.Registry}
			case AlgTTL:
				overlay = &match.ChordOverlay{Chord: ch}
				ttl := &match.TTL{
					Self:      h.Addr(),
					Caps:      spec.Caps,
					OS:        spec.OS,
					Budget:    s.TTLBudget,
					Neighbors: ttlNeighborFn(ch),
				}
				d.ttls = append(d.ttls, ttl)
				matcher = ttl
			}
		}
		if needCAN {
			cn := can.New(h, spec.Caps, spec.OS, can.Config{
				DisableVirtualDim: s.DisableVirtualDim,
				Space:             s.Workload.Space,
			})
			d.CANs = append(d.CANs, cn)
			overlay = &match.CANOverlay{CAN: cn}
			matcher = &match.CAN{CN: cn, Push: s.Alg == AlgCANPush}
		}

		gcfg := s.Grid
		if gcfg.ReplicaK > 0 && needChord {
			gcfg.ReplicaRing = replica.ChordRing{Node: d.Chords[i]}
		}
		if s.Notify {
			pcfg := pubsub.Config{Obs: gcfg.Obs}
			if needChord {
				ch := d.Chords[i]
				pcfg.Lookup = func(rt transport.Runtime, key ids.ID) (transport.Addr, error) {
					ref, _, err := ch.Lookup(rt, key)
					if err != nil {
						return "", err
					}
					return ref.Addr, nil
				}
				if gcfg.ReplicaK > 0 {
					pcfg.Ring = replica.ChordRing{Node: ch}
					pcfg.K = gcfg.ReplicaK
				}
			} else {
				// No ring to hash topics onto: a fixed rendezvous keeps
				// the overlay usable under the CAN algorithms.
				rdv := d.Hosts[0].Addr()
				pcfg.Lookup = func(rt transport.Runtime, key ids.ID) (transport.Addr, error) {
					return rdv, nil
				}
			}
			b := pubsub.New(h, pcfg)
			d.Brokers = append(d.Brokers, b)
			gcfg.Notify = b
		}
		if s.Trust != nil {
			tb := trust.New(*s.Trust)
			gcfg.Trust = tb
			matcher = &match.Trusted{Inner: matcher, Table: tb}
		}
		if d.Byz != nil {
			gcfg.Byzantine = d.Byz.Behavior(i)
		}
		gn := grid.NewNode(h, spec.Caps, spec.OS, overlay, matcher, d.Collector, gcfg)
		d.Grids = append(d.Grids, gn)
		d.Registry.Register(h.Addr(), match.RegistryEntry{
			Caps: spec.Caps,
			OS:   spec.OS,
			Load: gn.QueueLen,
			Up:   ep.Up,
		})
	}

	// Late wiring that needs the grid node.
	for i := 0; i < n; i++ {
		gn := d.Grids[i]
		if s.Notify {
			d.Brokers[i].SetOnEvent(gn.OnNotification)
		}
		if needChord {
			// Stabilization events re-aim replica pushes (and pub/sub
			// subscriber-list replication) immediately instead of
			// waiting out the next anti-entropy period.
			replKick := s.Grid.ReplicaK > 0
			switch {
			case replKick && s.Notify:
				b := d.Brokers[i]
				d.Chords[i].SetRingChange(func() { gn.ReplicaKick(); b.RingChange() })
			case replKick:
				d.Chords[i].SetRingChange(gn.ReplicaKick)
			case s.Notify:
				d.Chords[i].SetRingChange(d.Brokers[i].RingChange)
			}
		}
		if len(d.RNs) > 0 {
			d.RNs[i].SetLoadFn(gn.QueueLen)
		}
		if len(d.CANs) > 0 {
			d.CANs[i].SetLoadFn(gn.QueueLen)
		}
		if s.Alg == AlgTTL {
			// The TTL baseline also needs remote probes answered.
			match.RegisterProbe(d.Hosts[i], w.Nodes[i].Caps, w.Nodes[i].OS, gn.QueueLen, ttlNeighborFn(d.Chords[i]))
			d.ttls[i].Load = gn.QueueLen
		}
	}

	// Converged overlays without simulating thousands of joins.
	if needChord {
		chord.WarmStart(d.Chords)
	}
	if len(d.RNs) > 0 {
		rntree.WarmStart(d.RNs, time.Duration(e.Now()))
	}
	if needCAN {
		can.WarmStart(d.CANs, time.Duration(e.Now()))
	}

	// Start node activities.
	for i := 0; i < n; i++ {
		d.Grids[i].Start()
		if s.Notify {
			d.Brokers[i].Start()
		}
		if s.Maintenance {
			if needChord {
				d.Chords[i].Start()
			}
			if len(d.RNs) > 0 {
				d.RNs[i].Start()
			}
			if needCAN {
				d.CANs[i].Start()
			}
		}
	}

	return d
}

// Crash implements faultinject.Harness: node i's endpoint goes down,
// killing every proc it owns.
func (d *Deployment) Crash(i int) { d.Eps[i].Crash() }

// Restart implements faultinject.Harness: the endpoint comes back up
// and the grid layer relaunches its loops with soft state cleared.
// Overlay Start methods are started-flag guarded, so their periodic
// loops stay down after a restart — the node still answers overlay
// RPCs (handlers survive on the endpoint) but degrades until the next
// run, which is the honest post-crash behaviour for this harness.
func (d *Deployment) Restart(i int) {
	d.Eps[i].Restart()
	d.Grids[i].Restart()
	if d.Brokers != nil {
		// The broker restarts alongside the grid node, soft state
		// cleared — replicated subscriber lists recover via push-back.
		d.Brokers[i].Reset()
		d.Brokers[i].Start()
	}
}

func chordNeighbors(ch *chord.Node) []transport.Addr {
	seen := map[transport.Addr]bool{}
	var out []transport.Addr
	for _, f := range ch.FingerTable() {
		if !f.IsZero() && !seen[f.Addr] && f.Addr != ch.Ref().Addr {
			seen[f.Addr] = true
			out = append(out, f.Addr)
		}
	}
	for _, s := range ch.SuccessorList() {
		if !s.IsZero() && !seen[s.Addr] && s.Addr != ch.Ref().Addr {
			seen[s.Addr] = true
			out = append(out, s.Addr)
		}
	}
	return out
}

func ttlNeighborFn(ch *chord.Node) func() []transport.Addr {
	return func() []transport.Addr { return chordNeighbors(ch) }
}
