package experiments

import (
	"testing"
	"time"
)

// TestFlowSweepAwareCutsCriticalPathReexec pins the flow sweep's
// headline claim: summed over the sweep's topologies and seeded crash
// schedules, the workflow-aware policy re-executes strictly less
// critical-path work than plain adaptive checkpointing — on identical
// schedules, since the policy is the only variable per (topology,
// seed) pair.
func TestFlowSweepAwareCutsCriticalPathReexec(t *testing.T) {
	o := Options{Scale: 0.05, Seed: 1}
	var adaptiveCP, awareCP time.Duration
	awareCkpts, awareResumes := 0, 0
	for _, topoName := range []string{"diamond", "wide", "deep"} {
		for r := 0; r < flowRepeats(o); r++ {
			seed := o.Seed + 120 + int64(r)*7
			run := func(polName string) FlowStats {
				topo, pol, err := FlowCell(topoName, polName)
				if err != nil {
					t.Fatal(err)
				}
				st, err := FlowRun(o, topo, pol, seed)
				if err != nil {
					t.Fatalf("%s/%s seed %d: %v", topoName, polName, seed, err)
				}
				if st.Delivered != st.Stages {
					t.Fatalf("%s/%s seed %d: %d/%d stages delivered",
						topoName, polName, seed, st.Delivered, st.Stages)
				}
				return st
			}
			a := run("adaptive")
			w := run("workflow-aware")
			adaptiveCP += a.CritReexecWork
			awareCP += w.CritReexecWork
			awareCkpts += w.Checkpoints
			awareResumes += w.Resumes
			if w.Checkpoints < a.Checkpoints {
				t.Fatalf("%s seed %d: aware checkpointed less than adaptive (%d vs %d)",
					topoName, seed, w.Checkpoints, a.Checkpoints)
			}
		}
	}
	t.Logf("cp-re-exec: adaptive=%v aware=%v (ckpts=%d resumes=%d)",
		adaptiveCP, awareCP, awareCkpts, awareResumes)
	if awareCkpts == 0 || awareResumes == 0 {
		t.Fatalf("aware policy never checkpointed/resumed (ckpts=%d resumes=%d); schedule too gentle to measure",
			awareCkpts, awareResumes)
	}
	if awareCP >= adaptiveCP {
		t.Fatalf("workflow-aware did not cut critical-path re-exec: %v vs adaptive %v", awareCP, adaptiveCP)
	}
}

// TestFlowRunReplayDeterministic: a flow-sweep cell is a seeded
// simulation like any other — the same (topology, policy, seed) must
// reproduce the identical stats, field for field.
func TestFlowRunReplayDeterministic(t *testing.T) {
	o := Options{Scale: 0.05, Seed: 1}
	topo, pol, err := FlowCell("diamond", "workflow-aware")
	if err != nil {
		t.Fatal(err)
	}
	a, err := FlowRun(o, topo, pol, 121)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FlowRun(o, topo, pol, 121)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("flow run not replayable:\n%+v\nvs\n%+v", a, b)
	}
}
