package experiments

import (
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/grid"
	"repro/internal/trust"
	"repro/internal/workload"
)

func opts(seed int64) Options {
	return Options{Scale: 0.04, Seed: seed} // 40 nodes, 200 jobs
}

func TestBuildAndRunRNTree(t *testing.T) {
	wcfg := workload.NewConfig().Scale(0.03)
	res := Build(Scenario{Alg: AlgRNTree, Workload: wcfg, NetSeed: 1}).Run()
	if res.Delivered < res.Jobs*95/100 {
		t.Fatalf("delivered %d/%d", res.Delivered, res.Jobs)
	}
	if res.Wait.N == 0 || res.Wait.Mean < 0 {
		t.Fatalf("wait stats empty: %+v", res.Wait)
	}
	if res.MatchCost.Mean <= 0 {
		t.Fatalf("match cost not recorded: %+v", res.MatchCost)
	}
}

func TestBuildAndRunCAN(t *testing.T) {
	// Clustered populations: the quadrant where basic CAN behaves well.
	// (Mixed+lightly is its documented pathology — asserted separately
	// in TestFig2ShapesHold.)
	wcfg := workload.NewConfig().Scale(0.03)
	wcfg.NodePop = workload.Clustered
	wcfg.JobPop = workload.Clustered
	res := Build(Scenario{Alg: AlgCAN, Workload: wcfg, NetSeed: 2}).Run()
	if res.Delivered < res.Jobs*90/100 {
		t.Fatalf("delivered %d/%d", res.Delivered, res.Jobs)
	}
}

func TestBuildAndRunCentral(t *testing.T) {
	wcfg := workload.NewConfig().Scale(0.03)
	res := Build(Scenario{Alg: AlgCentral, Workload: wcfg, NetSeed: 3}).Run()
	if res.Delivered != res.Jobs {
		t.Fatalf("central delivered %d/%d", res.Delivered, res.Jobs)
	}
}

func TestBuildAndRunTTLAndRandom(t *testing.T) {
	wcfg := workload.NewConfig().Scale(0.02)
	for _, alg := range []Algorithm{AlgTTL, AlgRandom} {
		res := Build(Scenario{Alg: alg, Workload: wcfg, NetSeed: 4, TTLBudget: 10}).Run()
		if res.Delivered == 0 {
			t.Fatalf("%s delivered nothing", alg)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	wcfg := workload.NewConfig().Scale(0.02)
	run := func() Results {
		return Build(Scenario{Alg: AlgRNTree, Workload: wcfg, NetSeed: 9}).Run()
	}
	a, b := run(), run()
	if a.Wait.Mean != b.Wait.Mean || a.Messages != b.Messages || a.Delivered != b.Delivered {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestFig2ShapesHold(t *testing.T) {
	if testing.Short() {
		t.Skip("full-quadrant run")
	}
	rows, tbl := Fig2(workload.Mixed, opts(11))
	t.Log("\n" + tbl.Format())
	get := func(level workload.ConstraintLevel, alg Algorithm) Fig2Row {
		for _, r := range rows {
			if r.Level == level && r.Alg == alg {
				return r
			}
		}
		t.Fatalf("missing row %v/%v", level, alg)
		return Fig2Row{}
	}
	// The paper's headline pathology: basic CAN on mixed nodes with
	// lightly-constrained jobs is much worse than Centralized.
	canLight := get(workload.Lightly, AlgCAN)
	centralLight := get(workload.Lightly, AlgCentral)
	if canLight.WaitStd < 2*centralLight.WaitStd && canLight.WaitMean < 2*centralLight.WaitMean {
		t.Errorf("CAN pathology absent: can(avg %.1f std %.1f) vs central(avg %.1f std %.1f)",
			canLight.WaitMean, canLight.WaitStd, centralLight.WaitMean, centralLight.WaitStd)
	}
	// RN-Tree stays within a reasonable factor of Centralized.
	rnLight := get(workload.Lightly, AlgRNTree)
	if rnLight.WaitMean > 10*centralLight.WaitMean+60 {
		t.Errorf("RN-Tree far from central: %.1f vs %.1f", rnLight.WaitMean, centralLight.WaitMean)
	}
}

func TestRobustnessCompletesUnderChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("churn sweep")
	}
	tbl := Robustness([]float64{0.15}, opts(13))
	t.Log("\n" + tbl.Format())
	if len(tbl.Rows) != 1 {
		t.Fatal("row count")
	}
}

func TestDHTBehaviorShapes(t *testing.T) {
	rows, tbl := DHTBehavior([]int{32, 128}, Options{Seed: 7})
	t.Log("\n" + tbl.Format())
	if len(rows) != 2 {
		t.Fatal("row count")
	}
	// Hops grow with N and track the analytic expectation loosely.
	if rows[1].ChordHops <= rows[0].ChordHops*0.8 {
		t.Errorf("chord hops did not grow: %+v", rows)
	}
	for _, r := range rows {
		if r.ChordHops > 3*r.ChordExp+2 {
			t.Errorf("chord hops %f far above expectation %f", r.ChordHops, r.ChordExp)
		}
		if r.CANHops > 4*r.CANExp+2 {
			t.Errorf("can hops %f far above expectation %f", r.CANHops, r.CANExp)
		}
	}
}

func TestParseAlgorithm(t *testing.T) {
	for i := 0; i < len(algNames); i++ {
		a, err := ParseAlgorithm(algNames[i])
		if err != nil || a != Algorithm(i) {
			t.Fatalf("ParseAlgorithm(%s) = %v, %v", algNames[i], a, err)
		}
	}
	if _, err := ParseAlgorithm("bogus"); err == nil {
		t.Fatal("bogus accepted")
	}
}

func TestTableFormat(t *testing.T) {
	tbl := &Table{
		Title:  "T",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"x", "y"}, {"longer", "z"}},
		Notes:  []string{"hello"},
	}
	out := tbl.Format()
	if len(out) == 0 || out[0] != 'T' {
		t.Fatalf("format: %q", out)
	}
	tbl.SortRows()
	if tbl.Rows[0][0] != "longer" {
		t.Fatalf("sort: %v", tbl.Rows)
	}
}

func TestScenarioDrainSlack(t *testing.T) {
	wcfg := workload.NewConfig().Scale(0.02)
	start := time.Now()
	res := Build(Scenario{Alg: AlgCentral, Workload: wcfg, NetSeed: 5, DrainSlack: 30 * time.Minute}).Run()
	if res.Delivered != res.Jobs {
		t.Fatalf("delivered %d/%d", res.Delivered, res.Jobs)
	}
	_ = start
}

func TestFaultInjectionRecoveryDeterministic(t *testing.T) {
	// Failure-focused workload, same shaping as Robustness/FaultSweep:
	// few jobs, lightly loaded, mixed populations.
	wcfg := workload.NewConfig().Scale(0.03)
	wcfg.Jobs = wcfg.Jobs / 5
	wcfg.NodePop = workload.Mixed
	wcfg.JobPop = workload.Mixed
	wcfg.Level = workload.Lightly
	plan := &faultinject.Plan{
		Rules: []faultinject.Rule{
			{Method: grid.MHeartbeat, DropProb: 0.25},
			{Method: grid.MComplete, DropProb: 0.15, DupProb: 0.15},
			{Method: grid.MResult, DropProb: 0.15},
		},
		Crashes:         3,
		RestartProb:     0.5,
		RestartDelayMin: 20 * time.Second,
		RestartDelayMax: time.Minute,
		Partitions:      1,
		PartitionSize:   2,
		PartitionDurMin: 15 * time.Second,
		PartitionDurMax: 30 * time.Second,
	}
	run := func() Results {
		return Build(Scenario{
			Alg: AlgRNTree, Workload: wcfg, NetSeed: 11,
			Maintenance: true, Faults: plan, FaultSeed: 12,
		}).Run()
	}
	a := run()
	if a.Faulted == 0 {
		t.Fatal("fault injector never fired")
	}
	if a.Delivered < a.Jobs*9/10 {
		t.Fatalf("delivered %d/%d under faults", a.Delivered, a.Jobs)
	}
	// Same seeds, same schedule, same results — the replay guarantee at
	// the experiment level.
	if b := run(); a != b {
		t.Fatalf("fault-injected run not replayable:\n%+v\nvs\n%+v", a, b)
	}
}

func TestCheckpointingReducesWaste(t *testing.T) {
	// Same crash-bearing schedule as the deterministic fault test; the
	// only variable is the checkpoint policy. Adaptive checkpointing
	// must cut re-executed work relative to restart-from-scratch, and
	// the checkpointed run must stay exactly as replayable.
	wcfg := workload.NewConfig().Scale(0.03)
	wcfg.Jobs = wcfg.Jobs / 5
	wcfg.NodePop = workload.Mixed
	wcfg.JobPop = workload.Mixed
	wcfg.Level = workload.Lightly
	plan := &faultinject.Plan{
		Rules: []faultinject.Rule{
			{Method: grid.MHeartbeat, DropProb: 0.25},
			{Method: grid.MComplete, DropProb: 0.15, DupProb: 0.15},
			{Method: grid.MResult, DropProb: 0.15},
		},
		Crashes:         3,
		RestartProb:     0.5,
		RestartDelayMin: 20 * time.Second,
		RestartDelayMax: time.Minute,
	}
	run := func(gcfg grid.Config) Results {
		return Build(Scenario{
			Alg: AlgRNTree, Workload: wcfg, Grid: gcfg, NetSeed: 11,
			Maintenance: true, Faults: plan, FaultSeed: 12,
		}).Run()
	}
	off := run(grid.Config{})
	adaptive := run(grid.Config{
		CheckpointEvery:    10 * time.Second,
		CheckpointAdaptive: true,
		CheckpointMinEvery: 2 * time.Second,
		CheckpointMaxEvery: 30 * time.Second,
	})
	if off.Checkpoints != 0 || off.Resumes != 0 {
		t.Fatalf("baseline took checkpoints: %+v", off)
	}
	if adaptive.Checkpoints == 0 {
		t.Fatal("adaptive policy never checkpointed")
	}
	if adaptive.Delivered < off.Delivered {
		t.Fatalf("checkpointing lost deliveries: %d vs %d", adaptive.Delivered, off.Delivered)
	}
	if off.ExecutedWork <= off.UsefulWork {
		t.Fatalf("crash schedule produced no waste to recover: %+v", off)
	}
	if adaptive.ReexecutedWork >= off.ReexecutedWork {
		t.Fatalf("adaptive checkpointing did not cut re-executed work: %v vs %v",
			adaptive.ReexecutedWork, off.ReexecutedWork)
	}
	// Checkpointed runs replay bit-for-bit too.
	if again := run(grid.Config{
		CheckpointEvery:    10 * time.Second,
		CheckpointAdaptive: true,
		CheckpointMinEvery: 2 * time.Second,
		CheckpointMaxEvery: 30 * time.Second,
	}); again != adaptive {
		t.Fatalf("checkpointed run not replayable:\n%+v\nvs\n%+v", again, adaptive)
	}
}

func TestSabotageRunDeterministic(t *testing.T) {
	// Redundant execution triples the load; shape the workload the way
	// trustsweep does so the run drains within the deadline.
	wcfg := workload.NewConfig().Scale(0.02)
	wcfg.Jobs /= 5
	wcfg.Level = workload.Lightly
	run := func() Results {
		return Build(Scenario{
			Alg:      AlgRNTree,
			Workload: wcfg,
			Grid:     grid.Config{Replicas: 3, Quorum: 2},
			Trust:    &trust.Config{},
			Sabotage: &faultinject.ByzPlan{Fraction: 0.25, WrongProb: 0.7, WithholdProb: 0.1},
			NetSeed:  11,
		}).Run()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("sabotage run nondeterministic:\n%+v\nvs\n%+v", a, b)
	}
	if a.Saboteurs == 0 || a.Votes == 0 || a.Accepted == 0 {
		t.Fatalf("sabotage machinery not exercised: %+v", a)
	}
}

// TestVotingStopsSabotage is the headline claim: at R=3/quorum=2 with
// trust enabled, the wrong-accept rate is zero under a quarter of the
// population sabotaging, while the unprotected R=1 baseline on the
// same seeds accepts wrong results.
func TestVotingStopsSabotage(t *testing.T) {
	wcfg := workload.NewConfig().Scale(0.02)
	wcfg.Jobs /= 5
	wcfg.Level = workload.Lightly
	byz := &faultinject.ByzPlan{Fraction: 0.25, WrongProb: 0.7, WithholdProb: 0.1}
	run := func(cfg grid.Config, tc *trust.Config) Results {
		return Build(Scenario{
			Alg: AlgRNTree, Workload: wcfg, Grid: cfg,
			Trust: tc, Sabotage: byz, NetSeed: 12,
		}).Run()
	}
	base := run(grid.Config{}, nil)
	if base.WrongAccepted == 0 {
		t.Fatal("baseline accepted no wrong results; sabotage plan too weak to test voting")
	}
	voted := run(grid.Config{Replicas: 3, Quorum: 2}, &trust.Config{})
	if voted.WrongAccepted != 0 {
		t.Fatalf("voting accepted %d wrong results", voted.WrongAccepted)
	}
	if voted.Delivered < voted.Jobs*95/100 {
		t.Fatalf("voting delivered only %d/%d", voted.Delivered, voted.Jobs)
	}
}

// TestZeroConfigTraceUnchangedByVotingCode guards the R=1 default: with
// voting off, runs must be indistinguishable from a build that never
// heard of sabotage tolerance (no votes, no probes, no reputation).
func TestZeroConfigTraceUnchangedByVotingCode(t *testing.T) {
	wcfg := workload.NewConfig().Scale(0.02)
	res := Build(Scenario{Alg: AlgRNTree, Workload: wcfg, NetSeed: 13}).Run()
	if res.Votes != 0 || res.Accepted != 0 || res.Rejected != 0 ||
		res.QuorumFailed != 0 || res.Blacklists != 0 || res.Probes != 0 || res.Saboteurs != 0 {
		t.Fatalf("zero-config run shows voting activity: %+v", res)
	}
}

// TestNotifSweepCutsPolling pins the notification overlay's headline
// claim: on the same seeded crash/drop schedule, push mode cuts the
// client monitor's status-poll RPCs by at least 3x versus polling,
// without losing a single job or changing the resubmit count.
func TestNotifSweepCutsPolling(t *testing.T) {
	o := Options{Scale: 0.04, Seed: 7}
	for _, clients := range []int{4, 8} {
		poll := NotifRun(o, clients, false)
		push := NotifRun(o, clients, true)
		t.Logf("clients=%d poll: status=%d resubmits=%d; push: status=%d pubsub=%d notify=%d resubmits=%d",
			clients, poll.StatusRPCs, poll.Resubmits, push.StatusRPCs, push.PubsubMsgs, push.NotifyRecv, push.Resubmits)
		if poll.Delivered != poll.Jobs || push.Delivered != push.Jobs {
			t.Fatalf("clients=%d lost jobs: poll %d/%d push %d/%d",
				clients, poll.Delivered, poll.Jobs, push.Delivered, push.Jobs)
		}
		if poll.PubsubMsgs != 0 || poll.NotifyRecv != 0 {
			t.Fatalf("clients=%d poll mode leaked pubsub traffic: msgs=%d recv=%d",
				clients, poll.PubsubMsgs, poll.NotifyRecv)
		}
		if push.PubsubMsgs == 0 || push.NotifyRecv == 0 {
			t.Fatalf("clients=%d push mode pushed nothing: msgs=%d recv=%d",
				clients, push.PubsubMsgs, push.NotifyRecv)
		}
		if push.StatusRPCs*3 > poll.StatusRPCs {
			t.Fatalf("clients=%d push did not cut polling 3x: poll=%d push=%d",
				clients, poll.StatusRPCs, push.StatusRPCs)
		}
	}
}
