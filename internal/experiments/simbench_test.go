package experiments

import (
	"encoding/json"
	"testing"
	"time"
)

func TestParseRunfile(t *testing.T) {
	cfg, err := ParseRunfile(`
# kernel throughput ladder
scales = 0.1, 0.5, 2   # fractions of paper scale
grow = true
budget = 90s
alg = can
maintenance = false
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Scales) != 3 || cfg.Scales[0] != 0.1 || cfg.Scales[2] != 2 {
		t.Fatalf("scales = %v", cfg.Scales)
	}
	if !cfg.Grow || cfg.WallBudget != 90*time.Second || cfg.Maintenance {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.Alg != AlgCAN {
		t.Fatalf("alg = %v", cfg.Alg)
	}
}

func TestParseRunfileDefaultsAndErrors(t *testing.T) {
	cfg, err := ParseRunfile("# comments only\n")
	if err != nil {
		t.Fatal(err)
	}
	if d := DefaultSimBench(); len(cfg.Scales) != len(d.Scales) || cfg.Alg != d.Alg {
		t.Fatalf("empty runfile should keep defaults, got %+v", cfg)
	}
	for _, bad := range []string{
		"scales 0.5",          // no '='
		"scales = -1",         // non-positive scale
		"grow = perhaps",      // bad bool
		"budget = fortnight",  // bad duration
		"alg = quantum",       // unknown matchmaker
		"unknown = 1",         // unknown key
		"scales = # all gone", // empties the ladder
	} {
		if _, err := ParseRunfile(bad); err == nil {
			t.Errorf("ParseRunfile(%q) accepted", bad)
		}
	}
}

func TestSimBenchTinyLadder(t *testing.T) {
	cfg := SimBenchConfig{
		Scales:      []float64{0.005, 0.01},
		WallBudget:  time.Minute,
		Alg:         AlgRNTree,
		Maintenance: true,
	}
	res, tbl := SimBench(cfg, Options{Seed: 1})
	if len(res.Rungs) != 2 {
		t.Fatalf("%d rungs, want 2", len(res.Rungs))
	}
	for i, r := range res.Rungs {
		if r.Delivered != r.Jobs {
			t.Fatalf("rung %d: %d/%d jobs delivered", i, r.Delivered, r.Jobs)
		}
		if r.EventsFired == 0 || r.EventsPerSec == 0 || r.SwitchesPerEvent == 0 {
			t.Fatalf("rung %d: empty kernel stats: %+v", i, r)
		}
		if r.TopLayer == "" || len(r.Layers) == 0 {
			t.Fatalf("rung %d: no layer attribution", i)
		}
		if r.PeakEventHeap == 0 || r.PeakProcs < r.Nodes {
			t.Fatalf("rung %d: peaks: heap=%d procs=%d nodes=%d", i, r.PeakEventHeap, r.PeakProcs, r.Nodes)
		}
		if r.OverBudget {
			t.Fatalf("rung %d: over a %v budget at scale %g", i, cfg.WallBudget, r.Scale)
		}
	}
	if res.Rungs[1].EventsFired <= res.Rungs[0].EventsFired {
		t.Fatal("larger rung fired fewer events")
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("table has %d rows", len(tbl.Rows))
	}
	// The payload is what sim_bench.sh writes to BENCH_sim.json: it must
	// round-trip and expose the rung metrics under their documented keys.
	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	rungs, ok := decoded["rungs"].([]any)
	if !ok || len(rungs) != 2 {
		t.Fatalf("rungs key missing: %s", blob)
	}
	first := rungs[0].(map[string]any)
	for _, key := range []string{"events_per_sec", "wall_per_sim_second", "switches_per_event", "top_layer", "layers"} {
		if _, ok := first[key]; !ok {
			t.Fatalf("rung JSON missing %q: %s", key, blob)
		}
	}
}

func TestSimBenchGrowLadder(t *testing.T) {
	if testing.Short() {
		t.Skip("grow ladder runs several rungs")
	}
	cfg := SimBenchConfig{
		Scales:      []float64{0.005},
		Grow:        true,
		WallBudget:  5 * time.Second,
		Alg:         AlgRNTree,
		Maintenance: false,
	}
	res, _ := SimBench(cfg, Options{Seed: 1})
	if len(res.Rungs) < 2 {
		t.Fatalf("grow mode added no rungs: %d", len(res.Rungs))
	}
	for i := 1; i < len(res.Rungs); i++ {
		if res.Rungs[i].Scale != res.Rungs[i-1].Scale*2 {
			t.Fatalf("rung %d scale %g, want double of %g", i, res.Rungs[i].Scale, res.Rungs[i-1].Scale)
		}
	}
}
