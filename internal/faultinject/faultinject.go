// Package faultinject is a deterministic, seedable fault-injection
// harness for the simulated grid. It produces two artefacts from one
// seed:
//
//   - an Injector (message-level faults): drop, delay, or duplicate
//     individual messages matched by RPC method name, on the request
//     and/or response leg, via simnet's FaultInjector hook;
//   - a Schedule (node- and network-level faults): crash/restart
//     events for individual nodes and temporary partitions of address
//     sets, armed onto the sim engine at fixed virtual times.
//
// Because the simulator itself is deterministic, re-running the same
// deployment with the same schedule seed reproduces the identical
// failure sequence and the identical protocol event trace — every bug
// a random schedule surfaces is replayable by seed.
package faultinject

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/ids"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// Rule applies message-level faults to one RPC method (or to all
// methods when Method is empty). The first rule matching a message
// decides its fate; probabilities are evaluated per message.
type Rule struct {
	// Method is the exact RPC method name ("grid.heartbeat", ...);
	// empty matches every method.
	Method string
	// Requests/Responses select which leg the rule covers; with both
	// false the rule covers both legs.
	Requests  bool
	Responses bool
	// DropProb loses the message entirely.
	DropProb float64
	// DupProb delivers a second copy of the message.
	DupProb float64
	// DelayProb adds a uniform extra delay in [DelayMin, DelayMax].
	DelayProb float64
	DelayMin  time.Duration
	DelayMax  time.Duration
}

func (r Rule) matches(method string, response bool) bool {
	if r.Method != "" && r.Method != method {
		return false
	}
	if !r.Requests && !r.Responses {
		return true
	}
	if response {
		return r.Responses
	}
	return r.Requests
}

// Injector implements simnet.FaultInjector: a seeded RNG plus an
// ordered rule list. Construct with NewInjector or Schedule.Injector.
type Injector struct {
	rng   *rand.Rand
	rules []Rule

	// Now, when set together with Until, confines faults to virtual
	// times before Until, letting a run quiesce and drain.
	Now   func() time.Duration
	Until time.Duration

	// Counters, readable after a run.
	Drops, Dups, Delays int64
}

// NewInjector returns an injector whose randomness derives only from
// seed; given the same message sequence it injects the same faults.
func NewInjector(seed int64, rules ...Rule) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed)), rules: rules}
}

// Fate implements simnet.FaultInjector.
func (in *Injector) Fate(from, to simnet.Addr, method string, response bool) simnet.Fault {
	if in.Until > 0 && in.Now != nil && in.Now() >= in.Until {
		return simnet.Fault{}
	}
	for _, r := range in.rules {
		if !r.matches(method, response) {
			continue
		}
		var f simnet.Fault
		if r.DropProb > 0 && in.rng.Float64() < r.DropProb {
			in.Drops++
			f.Drop = true
			return f
		}
		if r.DupProb > 0 && in.rng.Float64() < r.DupProb {
			in.Dups++
			f.Duplicate = true
		}
		if r.DelayProb > 0 && in.rng.Float64() < r.DelayProb {
			in.Delays++
			f.Delay = r.DelayMin
			if r.DelayMax > r.DelayMin {
				f.Delay += time.Duration(in.rng.Int63n(int64(r.DelayMax - r.DelayMin)))
			}
		}
		return f
	}
	return simnet.Fault{}
}

// NodeEvent is one scheduled crash or restart of a node, identified by
// its index in the harness's node list.
type NodeEvent struct {
	At      time.Duration
	Node    int
	Restart bool // false = crash
}

// Partition isolates Group from the rest of the network during
// [From, Heal). Nodes inside the group still reach each other.
type Partition struct {
	From, Heal time.Duration
	Group      []int
}

// Schedule is one replayable failure schedule over a fixed node
// population: message-fault rules plus timed node and partition events.
type Schedule struct {
	Seed  int64
	Rules []Rule
	// RuleWindow, when nonzero, stops message faults at that virtual
	// time (node/partition events carry their own times).
	RuleWindow time.Duration
	Nodes      []NodeEvent
	Parts      []Partition
}

// Plan parameterizes random schedule generation.
type Plan struct {
	// Nodes is the population size; node indexes are [0, Nodes).
	Nodes int
	// Protect lists node indexes never crashed or partitioned (clients).
	Protect []int
	// Window is the virtual-time span [0, Window) in which faults occur.
	Window time.Duration
	// Crashes is how many crash events to schedule.
	Crashes int
	// RestartProb is the chance a crashed node is later restarted.
	RestartProb float64
	// RestartDelay bounds the crash-to-restart gap (uniform).
	RestartDelayMin, RestartDelayMax time.Duration
	// PairCrashes is how many correlated double-crash events to
	// schedule: two distinct nodes crash at the same instant. Aimed at
	// a job's owner and run node dying together — the double failure
	// that defeats single-owner recovery and only replicated owner
	// state (grid.ReplicaK) survives without a client resubmit. Each
	// victim draws its restart independently, like single crashes.
	PairCrashes int
	// Partitions is how many partition events to schedule; each isolates
	// PartitionSize nodes (default 1) for a uniform duration in
	// [PartitionDurMin, PartitionDurMax].
	Partitions      int
	PartitionSize   int
	PartitionDurMin time.Duration
	PartitionDurMax time.Duration
	// Rules are the message-fault rules, active during [0, Window).
	Rules []Rule
}

// Generate derives a schedule deterministically from (seed, plan).
func Generate(seed int64, p Plan) Schedule {
	rng := rand.New(rand.NewSource(seed))
	s := Schedule{Seed: seed, Rules: p.Rules, RuleWindow: p.Window}
	protect := make(map[int]bool, len(p.Protect))
	for _, i := range p.Protect {
		protect[i] = true
	}
	var eligible []int
	for i := 0; i < p.Nodes; i++ {
		if !protect[i] {
			eligible = append(eligible, i)
		}
	}
	if len(eligible) == 0 {
		return s
	}
	uniform := func(min, max time.Duration) time.Duration {
		if max <= min {
			return min
		}
		return min + time.Duration(rng.Int63n(int64(max-min)))
	}
	for k := 0; k < p.Crashes; k++ {
		node := eligible[rng.Intn(len(eligible))]
		at := uniform(0, p.Window)
		s.Nodes = append(s.Nodes, NodeEvent{At: at, Node: node})
		if p.RestartProb > 0 && rng.Float64() < p.RestartProb {
			back := at + uniform(p.RestartDelayMin, p.RestartDelayMax)
			s.Nodes = append(s.Nodes, NodeEvent{At: back, Node: node, Restart: true})
		}
	}
	// Pair-crash draws come after single-crash draws and before
	// partition draws; a zero PairCrashes consumes no draws, so
	// schedules generated before the knob existed replay identically.
	for k := 0; k < p.PairCrashes && len(eligible) >= 2; k++ {
		perm := rng.Perm(len(eligible))
		at := uniform(0, p.Window)
		for i := 0; i < 2; i++ {
			node := eligible[perm[i]]
			s.Nodes = append(s.Nodes, NodeEvent{At: at, Node: node})
			if p.RestartProb > 0 && rng.Float64() < p.RestartProb {
				back := at + uniform(p.RestartDelayMin, p.RestartDelayMax)
				s.Nodes = append(s.Nodes, NodeEvent{At: back, Node: node, Restart: true})
			}
		}
	}
	size := p.PartitionSize
	if size <= 0 {
		size = 1
	}
	if size > len(eligible) {
		size = len(eligible)
	}
	for k := 0; k < p.Partitions; k++ {
		perm := rng.Perm(len(eligible))
		group := make([]int, size)
		for i := 0; i < size; i++ {
			group[i] = eligible[perm[i]]
		}
		sort.Ints(group)
		from := uniform(0, p.Window)
		s.Parts = append(s.Parts, Partition{
			From:  from,
			Heal:  from + uniform(p.PartitionDurMin, p.PartitionDurMax),
			Group: group,
		})
	}
	sort.SliceStable(s.Nodes, func(i, j int) bool { return s.Nodes[i].At < s.Nodes[j].At })
	sort.SliceStable(s.Parts, func(i, j int) bool { return s.Parts[i].From < s.Parts[j].From })
	return s
}

// Injector builds the schedule's message-fault injector. now may be
// nil; when set, rules stop applying at RuleWindow. The injector's RNG
// is derived from the schedule seed, independent of generation draws.
func (s Schedule) Injector(now func() time.Duration) *Injector {
	in := NewInjector(s.Seed+1, s.Rules...)
	in.Now = now
	in.Until = s.RuleWindow
	return in
}

// --- Byzantine (sabotage) behaviors ---

// ByzPlan parameterizes saboteur generation: which nodes lie, and how
// often.
type ByzPlan struct {
	// Fraction of the (unprotected) population that sabotages.
	Fraction float64
	// WrongProb is the per-(job, attempt) chance a saboteur corrupts
	// its result digest.
	WrongProb float64
	// WithholdProb is the per-(job, attempt) chance a saboteur
	// completes a job but silently withholds the result.
	WithholdProb float64
	// Protect lists node indexes never made saboteurs (clients).
	Protect []int
}

// Byz maps node indexes to sabotage behaviors for one seeded plan.
type Byz struct {
	seed int64
	plan ByzPlan
	bad  map[int]bool
}

// GenerateByz deterministically selects which of nodes sabotage. The
// node-selection draws come from (seed, plan) only, so the same seed
// always corrupts the same peers.
func GenerateByz(seed int64, nodes int, p ByzPlan) *Byz {
	rng := rand.New(rand.NewSource(seed))
	protect := make(map[int]bool, len(p.Protect))
	for _, i := range p.Protect {
		protect[i] = true
	}
	var eligible []int
	for i := 0; i < nodes; i++ {
		if !protect[i] {
			eligible = append(eligible, i)
		}
	}
	count := int(float64(len(eligible))*p.Fraction + 0.5)
	b := &Byz{seed: seed, plan: p, bad: make(map[int]bool)}
	perm := rng.Perm(len(eligible))
	for i := 0; i < count && i < len(eligible); i++ {
		b.bad[eligible[perm[i]]] = true
	}
	return b
}

// Saboteur reports whether node index i sabotages.
func (b *Byz) Saboteur(i int) bool { return b.bad[i] }

// Saboteurs returns the saboteur indexes, sorted.
func (b *Byz) Saboteurs() []int {
	var out []int
	for i := range b.bad {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// chance derives a deterministic pseudo-probability draw in [0, 1)
// from a hash of the decision's full identity. Unlike an RNG stream,
// the draw is independent of execution interleaving — the same
// (node, job, attempt) decision comes out the same under any schedule,
// which keeps seeded soaks replayable.
func (b *Byz) chance(kind string, node int, jobID ids.ID, attempt int) float64 {
	h := ids.HashString(fmt.Sprintf("byz/%d/%s/%d/%s/%d", b.seed, kind, node, jobID, attempt))
	return float64(h.Uint64()>>11) / float64(1<<53)
}

// Behavior returns the grid-layer Byzantine hook for node index i, or
// nil when the node is honest.
func (b *Byz) Behavior(i int) func(jobID ids.ID, attempt int) (wrong, withhold bool) {
	if !b.bad[i] {
		return nil
	}
	return func(jobID ids.ID, attempt int) (wrong, withhold bool) {
		wrong = b.chance("wrong", i, jobID, attempt) < b.plan.WrongProb
		withhold = !wrong && b.chance("withhold", i, jobID, attempt) < b.plan.WithholdProb
		return wrong, withhold
	}
}

// Harness is what a deployment exposes for node events to act on.
// Crash takes a node down (killing its activities); Restart brings it
// back with protocol loops relaunched and soft state cleared.
type Harness interface {
	Crash(node int)
	Restart(node int)
}

// Arm schedules the node and partition events onto engine e. Node
// events call the harness; partitions install a reachability predicate
// on net via addrOf (node index -> address). Overlapping partitions
// compose: two addresses reach each other only if they are on the same
// side of every active partition.
//
// The returned disarm cancels every not-yet-fired event. Call it
// before draining the engine (e.g. sim.Engine.Shutdown): a pending
// restart event that fires during the drain would spawn fresh protocol
// loops after the kill sweep and the drain would never terminate.
func (s Schedule) Arm(e *sim.Engine, net *simnet.Net, h Harness, addrOf func(i int) simnet.Addr) (disarm func()) {
	var armed []*sim.Event
	for _, ev := range s.Nodes {
		ev := ev
		if ev.Restart {
			armed = append(armed, e.Schedule(ev.At, func() { h.Restart(ev.Node) }))
		} else {
			armed = append(armed, e.Schedule(ev.At, func() { h.Crash(ev.Node) }))
		}
	}
	if len(s.Parts) > 0 {
		active := make(map[int]map[simnet.Addr]bool)
		net.SetReachable(func(a, b simnet.Addr) bool {
			for _, group := range active {
				if group[a] != group[b] {
					return false
				}
			}
			return true
		})
		for i, part := range s.Parts {
			i, part := i, part
			armed = append(armed, e.Schedule(part.From, func() {
				group := make(map[simnet.Addr]bool, len(part.Group))
				for _, n := range part.Group {
					group[addrOf(n)] = true
				}
				active[i] = group
			}))
			armed = append(armed, e.Schedule(part.Heal, func() { delete(active, i) }))
		}
	}
	return func() {
		for _, ev := range armed {
			ev.Stop()
		}
	}
}
