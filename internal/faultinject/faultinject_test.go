package faultinject

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/sim"
	"repro/internal/simnet"
)

func TestRuleMatching(t *testing.T) {
	cases := []struct {
		rule     Rule
		method   string
		response bool
		want     bool
	}{
		{Rule{}, "grid.heartbeat", false, true},
		{Rule{}, "grid.heartbeat", true, true},
		{Rule{Method: "grid.heartbeat"}, "grid.heartbeat", false, true},
		{Rule{Method: "grid.heartbeat"}, "grid.complete", false, false},
		{Rule{Requests: true}, "x", false, true},
		{Rule{Requests: true}, "x", true, false},
		{Rule{Responses: true}, "x", true, true},
		{Rule{Responses: true}, "x", false, false},
		{Rule{Method: "m", Responses: true}, "m", false, false},
	}
	for i, c := range cases {
		if got := c.rule.matches(c.method, c.response); got != c.want {
			t.Errorf("case %d: matches(%q, %v) = %v, want %v", i, c.method, c.response, got, c.want)
		}
	}
}

func TestInjectorFirstMatchWins(t *testing.T) {
	in := NewInjector(1,
		Rule{Method: "a", DropProb: 1},
		Rule{DelayProb: 1, DelayMin: time.Second, DelayMax: time.Second},
	)
	if f := in.Fate("x", "y", "a", false); !f.Drop {
		t.Fatalf("method rule not applied: %+v", f)
	}
	f := in.Fate("x", "y", "b", false)
	if f.Drop || f.Delay != time.Second {
		t.Fatalf("catch-all delay rule not applied: %+v", f)
	}
	if in.Drops != 1 || in.Delays != 1 {
		t.Fatalf("counters wrong: drops=%d delays=%d", in.Drops, in.Delays)
	}
}

func TestInjectorDeterministic(t *testing.T) {
	rules := []Rule{{DropProb: 0.3, DupProb: 0.3, DelayProb: 0.3,
		DelayMin: time.Millisecond, DelayMax: 50 * time.Millisecond}}
	run := func() []simnet.Fault {
		in := NewInjector(42, rules...)
		var out []simnet.Fault
		for i := 0; i < 200; i++ {
			out = append(out, in.Fate("a", "b", "m", i%2 == 0))
		}
		return out
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different fault sequences")
	}
}

func TestInjectorWindow(t *testing.T) {
	now := time.Duration(0)
	in := NewInjector(7, Rule{DropProb: 1})
	in.Now = func() time.Duration { return now }
	in.Until = time.Minute
	if f := in.Fate("a", "b", "m", false); !f.Drop {
		t.Fatal("fault not injected inside the window")
	}
	now = time.Minute
	if f := in.Fate("a", "b", "m", false); f.Drop {
		t.Fatal("fault injected after the window closed")
	}
}

func TestGenerateDeterministicAndProtects(t *testing.T) {
	plan := Plan{
		Nodes:           10,
		Protect:         []int{0, 9},
		Window:          time.Minute,
		Crashes:         5,
		RestartProb:     0.5,
		RestartDelayMin: time.Second,
		RestartDelayMax: 10 * time.Second,
		Partitions:      3,
		PartitionSize:   3,
		PartitionDurMin: time.Second,
		PartitionDurMax: 20 * time.Second,
	}
	a, b := Generate(5, plan), Generate(5, plan)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if len(a.Nodes) < plan.Crashes {
		t.Fatalf("only %d node events for %d crashes", len(a.Nodes), plan.Crashes)
	}
	if len(a.Parts) != plan.Partitions {
		t.Fatalf("%d partitions, want %d", len(a.Parts), plan.Partitions)
	}
	for _, ev := range a.Nodes {
		if ev.Node == 0 || ev.Node == 9 {
			t.Fatalf("protected node %d scheduled for crash/restart", ev.Node)
		}
		if !ev.Restart && ev.At > plan.Window {
			t.Fatalf("crash at %v outside window %v", ev.At, plan.Window)
		}
	}
	for _, p := range a.Parts {
		if p.Heal <= p.From {
			t.Fatalf("partition heals (%v) before it forms (%v)", p.Heal, p.From)
		}
		if len(p.Group) != plan.PartitionSize {
			t.Fatalf("partition group size %d, want %d", len(p.Group), plan.PartitionSize)
		}
		for _, n := range p.Group {
			if n == 0 || n == 9 {
				t.Fatalf("protected node %d partitioned", n)
			}
		}
	}
	// Different seeds diverge (with overwhelming probability).
	if c := Generate(6, plan); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestGenerateAllProtected(t *testing.T) {
	s := Generate(1, Plan{Nodes: 2, Protect: []int{0, 1}, Crashes: 3, Partitions: 2, Window: time.Minute})
	if len(s.Nodes) != 0 || len(s.Parts) != 0 {
		t.Fatalf("events scheduled with no eligible nodes: %+v", s)
	}
}

func TestScheduleInjectorIndependentOfGeneration(t *testing.T) {
	plan := Plan{Nodes: 4, Window: time.Minute, Crashes: 2,
		Rules: []Rule{{DropProb: 0.5}}}
	// The injector's stream must depend only on the seed, not on how
	// many draws generation consumed.
	more := plan
	more.Crashes = 7
	a := Generate(9, plan).Injector(nil)
	b := Generate(9, more).Injector(nil)
	for i := 0; i < 100; i++ {
		fa := a.Fate("x", "y", "m", false)
		fb := b.Fate("x", "y", "m", false)
		if fa != fb {
			t.Fatalf("draw %d differs: %+v vs %+v", i, fa, fb)
		}
	}
}

type fakeHarness struct {
	crashes, restarts []int
}

func (h *fakeHarness) Crash(i int)   { h.crashes = append(h.crashes, i) }
func (h *fakeHarness) Restart(i int) { h.restarts = append(h.restarts, i) }

func TestArmFiresEventsAndDisarms(t *testing.T) {
	e := sim.NewEngine(1)
	net := simnet.New(e)
	addrOf := func(i int) simnet.Addr { return simnet.Addr(fmt.Sprintf("n%d", i)) }
	s := Schedule{
		Nodes: []NodeEvent{
			{At: time.Second, Node: 1},
			{At: 2 * time.Second, Node: 1, Restart: true},
			{At: 10 * time.Second, Node: 2},
		},
		Parts: []Partition{{From: time.Second, Heal: 3 * time.Second, Group: []int{1, 2}}},
	}
	h := &fakeHarness{}
	disarm := s.Arm(e, net, h, addrOf)

	e.RunFor(1500 * time.Millisecond)
	if len(h.crashes) != 1 || h.crashes[0] != 1 {
		t.Fatalf("crashes after 1.5s: %v", h.crashes)
	}
	// Partition active: group nodes reach each other but not outsiders.
	if !net.Reachable(addrOf(1), addrOf(2)) || net.Reachable(addrOf(1), addrOf(0)) {
		t.Fatal("partition predicate wrong while active")
	}
	e.RunFor(2 * time.Second) // now at 3.5s: restart fired, partition healed
	if len(h.restarts) != 1 || h.restarts[0] != 1 {
		t.Fatalf("restarts after 3.5s: %v", h.restarts)
	}
	if !net.Reachable(addrOf(1), addrOf(0)) {
		t.Fatal("partition did not heal")
	}

	disarm()
	e.RunFor(time.Minute)
	if len(h.crashes) != 1 {
		t.Fatalf("disarmed event still fired: %v", h.crashes)
	}
}

func TestGenerateByzDeterministicAndProtected(t *testing.T) {
	p := ByzPlan{Fraction: 0.3, WrongProb: 0.7, WithholdProb: 0.1, Protect: []int{9}}
	a := GenerateByz(42, 10, p)
	b := GenerateByz(42, 10, p)
	got, want := fmt.Sprint(a.Saboteurs()), fmt.Sprint(b.Saboteurs())
	if got != want {
		t.Fatalf("same seed differs: %s vs %s", got, want)
	}
	// 9 eligible * 0.3 rounds to 3 saboteurs; the protected index never
	// sabotages.
	if len(a.Saboteurs()) != 3 {
		t.Fatalf("saboteurs = %v, want 3 of them", a.Saboteurs())
	}
	if a.Saboteur(9) {
		t.Fatal("protected node selected as saboteur")
	}
	if a.Behavior(9) != nil {
		t.Fatal("protected node must have nil behavior")
	}
	c := GenerateByz(43, 10, p)
	if fmt.Sprint(c.Saboteurs()) == got {
		t.Logf("seeds 42 and 43 picked the same set (possible but unlikely): %s", got)
	}
}

func TestByzBehaviorHashStable(t *testing.T) {
	p := ByzPlan{Fraction: 1, WrongProb: 0.5, WithholdProb: 0.5}
	b := GenerateByz(7, 4, p)
	beh := b.Behavior(2)
	if beh == nil {
		t.Fatal("fraction 1 must make every node a saboteur")
	}
	job := ids.HashString("job-x")
	w1, h1 := beh(job, 0)
	w2, h2 := beh(job, 0)
	if w1 != w2 || h1 != h2 {
		t.Fatal("behavior draw must be pure in (job, attempt)")
	}
	if w1 && h1 {
		t.Fatal("wrong and withhold are mutually exclusive")
	}
	// Different attempts should be able to draw differently; scan a few
	// jobs to confirm both outcomes occur at these probabilities.
	var wrongs, holds int
	for i := 0; i < 200; i++ {
		w, h := beh(ids.HashString(fmt.Sprintf("job-%d", i)), 0)
		if w {
			wrongs++
		}
		if h {
			holds++
		}
	}
	if wrongs < 60 || wrongs > 140 || holds < 10 {
		t.Fatalf("draw distribution off: wrongs=%d holds=%d of 200", wrongs, holds)
	}
}

func TestGeneratePairCrashes(t *testing.T) {
	plan := Plan{
		Nodes:           10,
		Protect:         []int{0},
		Window:          time.Minute,
		PairCrashes:     4,
		RestartProb:     1,
		RestartDelayMin: time.Second,
		RestartDelayMax: 5 * time.Second,
	}
	a, b := Generate(11, plan), Generate(11, plan)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different pair-crash schedules")
	}
	// Group the crash events by instant: each pair event must yield two
	// distinct victims crashing at the same virtual time.
	byAt := make(map[time.Duration][]int)
	for _, ev := range a.Nodes {
		if ev.Node == 0 {
			t.Fatalf("protected node %d scheduled", ev.Node)
		}
		if ev.Restart {
			continue
		}
		byAt[ev.At] = append(byAt[ev.At], ev.Node)
	}
	pairs := 0
	for at, victims := range byAt {
		if len(victims) != 2 {
			t.Fatalf("crash instant %v has %d victims, want 2", at, len(victims))
		}
		if victims[0] == victims[1] {
			t.Fatalf("pair at %v crashed the same node twice", at)
		}
		pairs++
	}
	if pairs != plan.PairCrashes {
		t.Fatalf("%d pair instants, want %d", pairs, plan.PairCrashes)
	}
	// RestartProb 1: every victim restarts after its crash.
	restarts := 0
	for _, ev := range a.Nodes {
		if ev.Restart {
			restarts++
		}
	}
	if restarts != 2*plan.PairCrashes {
		t.Fatalf("%d restarts, want %d", restarts, 2*plan.PairCrashes)
	}
}

func TestGeneratePairCrashesZeroPreservesDraws(t *testing.T) {
	// The PairCrashes knob must not consume RNG draws when zero, so
	// schedules generated before it existed replay identically.
	plan := Plan{
		Nodes:           8,
		Window:          time.Minute,
		Crashes:         3,
		RestartProb:     0.5,
		RestartDelayMin: time.Second,
		RestartDelayMax: 5 * time.Second,
		Partitions:      2,
		PartitionDurMin: time.Second,
		PartitionDurMax: 10 * time.Second,
	}
	withKnob := plan
	withKnob.PairCrashes = 0
	if !reflect.DeepEqual(Generate(3, plan), Generate(3, withKnob)) {
		t.Fatal("zero PairCrashes changed the schedule")
	}
}
