// Package replica is a generic successor-list replication subsystem:
// each node pushes the records it owns to the first k live successors
// of its ring position, an anti-entropy loop reconciles replica sets
// after churn, and replicas that detect an owner's death promote
// themselves — when the ring says the key is now theirs, or when they
// are the first surviving member of the record's ranked replica list
// (owners place records off their ring position in some deployments,
// e.g. the grid's random-walk owner spreading, so ring ownership alone
// cannot elect a successor).
//
// The package is deliberately ignorant of what the records mean. The
// grid layer stores owner-side job state in it (DESIGN.md §10); the
// application reacts to ownership changes through two callbacks:
//
//   - OnOwn(rec, promoted): this node just became responsible for rec —
//     either it promoted itself after the owner died (promoted=true) or
//     a replica pushed back a record this node owned before it crashed
//     and restarted (promoted=false).
//   - OnFenced(rec): a newer record owned elsewhere displaced one this
//     node was serving — a stale owner must stand down.
//
// Consistency model: single-writer per record (the owner), with
// (Epoch, Version) ordering. Version counts the owner's own writes;
// Epoch counts ownership transfers. Any takeover — promotion, adoption,
// a restarted owner reclaiming its key — opens a new epoch above the
// highest it has seen, so the previous owner's unsynced writes lose.
// Races where both sides of a healed partition claim a key resolve
// asymmetrically: only the node the ring says owns the key re-asserts
// (escalating above the remote epoch); everyone else defers. Tombstones
// are terminal and always win regardless of ring position.
package replica

import (
	"bytes"
	"sort"
	"sync"
	"time"

	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/transport"
)

// Ring abstracts the overlay: who am I, who replicates for me, and
// which keys are mine. Implementations must be safe for concurrent use.
type Ring interface {
	Self() transport.Addr
	// Successors returns up to k distinct live peers, nearest first,
	// excluding the node itself.
	Successors(k int) []transport.Addr
	// Owns reports whether this node is currently the ring's owner
	// (first successor) of key.
	Owns(key ids.ID) bool
}

// Record is one replicated entry.
type Record struct {
	Key     ids.ID
	Epoch   int // ownership generation; bumped on every takeover
	Version int // owner-local write counter within the epoch
	Owner   transport.Addr
	Deleted bool // tombstone: the record's lifecycle ended at the owner
	// Reps is the owner's ranked replica list (its push targets, nearest
	// first) as of this version. It rides the record so replicas agree
	// on promotion order after the owner dies without consulting the
	// ring: the first member still alive and still holding the record
	// promotes; everyone behind it defers.
	Reps []transport.Addr
	Data []byte
}

// Newer reports whether r supersedes o. Epochs dominate versions;
// the owner address breaks exact ties deterministically so two nodes
// that somehow mint the same (epoch, version) still converge.
func (r Record) Newer(o Record) bool {
	return newer(r.Epoch, r.Version, r.Owner, o.Epoch, o.Version, o.Owner)
}

func newer(ae, av int, ao transport.Addr, be, bv int, bo transport.Addr) bool {
	if ae != be {
		return ae > be
	}
	if av != bv {
		return av > bv
	}
	return ao > bo
}

// Meta is a record's identity and ordering fields without the payload,
// exchanged during anti-entropy to avoid shipping bodies needlessly.
type Meta struct {
	Key     ids.ID
	Epoch   int
	Version int
	Owner   transport.Addr
	Deleted bool
}

func metaOf(r Record) Meta {
	return Meta{Key: r.Key, Epoch: r.Epoch, Version: r.Version, Owner: r.Owner, Deleted: r.Deleted}
}

// Wire methods.
const (
	MPut   = "replica.put"   // PutReq -> PutResp: ship full records
	MSync  = "replica.sync"  // SyncReq -> SyncResp: reconcile by meta
	MProbe = "replica.probe" // ProbeReq -> ProbeResp: owner liveness
)

// PutReq ships full records to a replica.
type PutReq struct {
	From transport.Addr
	Recs []Record
}

// PutResp returns records the receiver holds that supersede the pushed
// ones (including escalations the receiver just minted to fence the
// sender off a key the ring says is the receiver's).
type PutResp struct {
	Newer []Record
}

// SyncReq announces the sender's view of a set of records by meta only.
type SyncReq struct {
	From  transport.Addr
	Metas []Meta
}

// SyncResp partitions the announced metas: Want lists keys the receiver
// is missing or holds stale, Newer returns full records where the
// receiver is ahead.
type SyncResp struct {
	Want  []ids.ID
	Newer []Record
}

// ProbeReq asks a record owner whether it still serves these keys.
type ProbeReq struct {
	From transport.Addr
	Keys []ids.ID
}

// ProbeResp lists the probed keys the receiver currently owns
// (tombstoned entries included — owning a tombstone still proves the
// owner is alive and authoritative). Since is when the receiver's
// manager last (re)started: a prober distinguishes an owner that lost
// records to a crash/restart (Since postdates the prober's copy —
// push it back) from one that dropped them deliberately, a completed
// job whose tombstone was GC'd (Since predates the copy — forget it,
// never resurrect it).
type ProbeResp struct {
	Owned []Meta
	Since time.Duration
	// Has lists the probed keys the receiver stores at all, under any
	// owner and including tombstones. Replicas probing their peers
	// during a takeover use it to tell a live peer that will handle the
	// promotion itself (it has the record) from one that cannot (it
	// never got the record, or already reclaimed it).
	Has []ids.ID
}

// Config parameterizes a Manager.
type Config struct {
	// K is the replication degree: records push to the first K
	// successors.
	K int
	// PushEvery is the anti-entropy period (owner side).
	PushEvery time.Duration
	// ProbeEvery is the owner-liveness probe period (replica side).
	ProbeEvery time.Duration
	// DeadAfter is how long an owner must fail probes before replicas
	// take over its keys.
	DeadAfter time.Duration
	// GCAfter is how long tombstones are retained so late replicas
	// learn of the deletion instead of resurrecting the record.
	GCAfter time.Duration
	// OnOwn fires when this node becomes responsible for a record:
	// promoted=true for a takeover after owner death, false when a
	// replica restores a record this (restarted) node already owned.
	// Called without the manager lock held.
	OnOwn func(rt transport.Runtime, rec Record, promoted bool)
	// OnFenced fires when a newer record owned elsewhere displaces one
	// this node was serving. Called without the manager lock held.
	OnFenced func(rt transport.Runtime, rec Record)
	// Obs, when non-nil, receives replica counters and gauges.
	Obs *obs.Obs
	// MethodPrefix is prepended to the wire method names this manager
	// registers and calls ("" keeps the canonical "replica.*" names).
	// A host can then run several independent managers — the grid's
	// owner-state manager and the pub/sub subsystem's subscriber-list
	// manager — without their RPC handlers clashing. Both sides of a
	// deployment must agree on the prefix.
	MethodPrefix string
}

func (c Config) withDefaults() Config {
	if c.PushEvery == 0 {
		c.PushEvery = time.Second
	}
	if c.ProbeEvery == 0 {
		c.ProbeEvery = time.Second
	}
	if c.DeadAfter == 0 {
		c.DeadAfter = 3 * time.Second
	}
	if c.GCAfter == 0 {
		c.GCAfter = 2 * time.Minute
	}
	return c
}

type ackVer struct {
	epoch, version int
}

type entry struct {
	rec    Record
	acked  map[transport.Addr]ackVer // per-replica last version confirmed stored
	deadAt time.Duration             // when the tombstone was learned (GC clock)
	at     time.Duration             // when a remote write last set rec (restore fencing)
}

func (e *entry) ack(tgt transport.Addr, rec Record) {
	if e.acked == nil {
		e.acked = make(map[transport.Addr]ackVer)
	}
	e.acked[tgt] = ackVer{epoch: rec.Epoch, version: rec.Version}
}

// Manager runs the replication protocol for one node.
type Manager struct {
	host transport.Host
	ring Ring
	cfg  Config

	// Wire method names after applying cfg.MethodPrefix.
	mPut, mSync, mProbe string

	mu       sync.Mutex
	recs     map[ids.ID]*entry
	silent   map[transport.Addr]time.Duration // owner -> first failed probe
	started  bool
	kicking  bool
	since    time.Duration // first activity after the last (re)start
	sinceSet bool

	// Instruments (nil-safe when cfg.Obs is nil).
	mPuts      *obs.Counter
	mPutRecv   *obs.Counter
	mSyncs     *obs.Counter
	mProbes    *obs.Counter
	mPromoted  *obs.Counter
	mRestored  *obs.Counter
	mFenced    *obs.Counter
	mReclaimed *obs.Counter
}

// markAlive stamps the manager's first activity after a (re)start.
// Every loop tick and handler calls it, so the stamp can neither
// predate a restart nor postdate the first record this node pushes.
func (m *Manager) markAlive(now time.Duration) {
	m.mu.Lock()
	if !m.sinceSet {
		m.since = now
		m.sinceSet = true
	}
	m.mu.Unlock()
}

// New creates a manager bound to host and registers its RPC handlers.
// Call Start to launch the periodic loops.
func New(host transport.Host, ring Ring, cfg Config) *Manager {
	m := &Manager{
		host:   host,
		ring:   ring,
		cfg:    cfg.withDefaults(),
		recs:   make(map[ids.ID]*entry),
		silent: make(map[transport.Addr]time.Duration),
	}
	m.mPut = m.cfg.MethodPrefix + MPut
	m.mSync = m.cfg.MethodPrefix + MSync
	m.mProbe = m.cfg.MethodPrefix + MProbe
	if reg := m.cfg.Obs.Registry(); reg != nil {
		m.mPuts = reg.Counter("replica_puts_total")
		m.mPutRecv = reg.Counter("replica_put_received_total")
		m.mSyncs = reg.Counter("replica_syncs_total")
		m.mProbes = reg.Counter("replica_probes_total")
		m.mPromoted = reg.Counter("replica_promotions_total")
		m.mRestored = reg.Counter("replica_restores_total")
		m.mFenced = reg.Counter("replica_fenced_total")
		m.mReclaimed = reg.Counter("replica_reclaimed_total")
		reg.GaugeFunc("replica_records", func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return float64(len(m.recs))
		})
		reg.GaugeFunc("replica_owned", func() float64 {
			self := m.ring.Self()
			m.mu.Lock()
			defer m.mu.Unlock()
			n := 0
			for _, e := range m.recs {
				if e.rec.Owner == self && !e.rec.Deleted {
					n++
				}
			}
			return float64(n)
		})
	}
	host.Handle(m.mPut, m.handlePut)
	host.Handle(m.mSync, m.handleSync)
	host.Handle(m.mProbe, m.handleProbe)
	return m
}

// Start launches the push and probe loops. Safe to call again after
// Reset (a crash/restart cycle).
func (m *Manager) Start() {
	m.mu.Lock()
	if m.started {
		m.mu.Unlock()
		return
	}
	m.started = true
	m.mu.Unlock()
	m.host.Go("replica.push", func(rt transport.Runtime) {
		for {
			rt.Sleep(jittered(rt, m.cfg.PushEvery))
			m.pushOnce(rt)
		}
	})
	m.host.Go("replica.probe", func(rt transport.Runtime) {
		for {
			rt.Sleep(jittered(rt, m.cfg.ProbeEvery))
			m.probeOnce(rt)
		}
	})
}

// Reset clears all replicated state and marks the loops stopped, for a
// crash/restart cycle (the crash killed the loop procs; restart calls
// Reset then Start). A restarted node recovers its records from the
// replicas that survived, via their probe push-back.
func (m *Manager) Reset() {
	m.mu.Lock()
	m.recs = make(map[ids.ID]*entry)
	m.silent = make(map[transport.Addr]time.Duration)
	m.started = false
	m.kicking = false
	m.sinceSet = false
	m.mu.Unlock()
}

// Kick schedules one immediate push+probe round, coalescing bursts.
// The overlay calls it on ring changes (new successor, dead
// predecessor) so re-targeting and takeover don't wait a full period.
func (m *Manager) Kick() {
	m.mu.Lock()
	if !m.started || m.kicking {
		m.mu.Unlock()
		return
	}
	m.kicking = true
	m.mu.Unlock()
	m.host.Go("replica.kick", func(rt transport.Runtime) {
		m.mu.Lock()
		m.kicking = false
		m.mu.Unlock()
		m.pushOnce(rt)
		m.probeOnce(rt)
	})
}

// Publish writes (or overwrites) the record for key with this node as
// owner. If the entry was last owned elsewhere — adoption, promotion
// already applied, or a tombstone being superseded by a new lifecycle —
// a fresh epoch above the stored one fences the previous owner out.
func (m *Manager) Publish(key ids.ID, data []byte) {
	self := m.ring.Self()
	m.mu.Lock()
	e, ok := m.recs[key]
	if !ok {
		e = &entry{rec: Record{Key: key, Owner: self}}
		m.recs[key] = e
	} else if e.rec.Owner != self || e.rec.Deleted {
		e.rec.Epoch++
		e.rec.Version = -1
		e.rec.Owner = self
		e.rec.Deleted = false
		e.acked = nil
	}
	e.rec.Version++
	e.rec.Data = data
	e.deadAt = 0
	m.mu.Unlock()
}

// Delete tombstones a record this node owns (the job finished); the
// tombstone replicates like any write and is GC'd after cfg.GCAfter.
func (m *Manager) Delete(now time.Duration, key ids.ID) {
	self := m.ring.Self()
	m.mu.Lock()
	if e, ok := m.recs[key]; ok && e.rec.Owner == self && !e.rec.Deleted {
		e.rec.Version++
		e.rec.Deleted = true
		e.rec.Data = nil
		e.deadAt = now
	}
	m.mu.Unlock()
}

// Responsible reports whether, as far as this node can tell, SOME node
// is still responsible for key: this node owns it, or it holds a
// replica whose owner has not been failing probes past DeadAfter.
// The grid answers client liveness checks with it so a job mid-handoff
// is not needlessly resubmitted — but a record whose owner is dead with
// no promotion in sight does NOT count, keeping the client's resubmit
// path as the final backstop.
func (m *Manager) Responsible(now time.Duration, key ids.ID) bool {
	self := m.ring.Self()
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.recs[key]
	if !ok || e.rec.Deleted {
		return false
	}
	if e.rec.Owner == self {
		return true
	}
	if since, failing := m.silent[e.rec.Owner]; failing && now-since >= m.cfg.DeadAfter {
		return false
	}
	return true
}

// PeerStatus is one replica's acknowledgement state, owner side.
type PeerStatus struct {
	Addr    transport.Addr
	Epoch   int
	Version int
	Acked   bool // replica confirmed storing the current (epoch, version)
}

// Status is a point-in-time view of one record for diagnostics
// (the grid.replicas RPC / gridctl replicas).
type Status struct {
	Known   bool
	Owner   transport.Addr
	Epoch   int
	Version int
	Deleted bool
	// Peers lists the current successor set and what each last acked;
	// populated only on the record's owner.
	Peers []PeerStatus
}

// Status reports the record's current ordering fields and, if this
// node owns it, the per-replica acknowledgement state.
func (m *Manager) Status(key ids.ID) Status {
	self := m.ring.Self()
	targets := m.ring.Successors(m.cfg.K)
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.recs[key]
	if !ok {
		return Status{}
	}
	st := Status{
		Known:   true,
		Owner:   e.rec.Owner,
		Epoch:   e.rec.Epoch,
		Version: e.rec.Version,
		Deleted: e.rec.Deleted,
	}
	if e.rec.Owner == self {
		for _, tgt := range targets {
			ps := PeerStatus{Addr: tgt}
			if av, ok := e.acked[tgt]; ok {
				ps.Epoch = av.epoch
				ps.Version = av.version
				ps.Acked = av == ackVer{epoch: e.rec.Epoch, version: e.rec.Version}
			}
			st.Peers = append(st.Peers, ps)
		}
	}
	return st
}

// pushOnce runs one owner-side anti-entropy round: announce every
// owned record to each of the first K successors, ship the ones they
// lack, absorb anything they hold that supersedes ours, and finally
// drop expired tombstones.
func (m *Manager) pushOnce(rt transport.Runtime) {
	m.markAlive(rt.Now())
	self := m.ring.Self()
	targets := m.ring.Successors(m.cfg.K)
	m.mu.Lock()
	keys := make([]ids.ID, 0, len(m.recs))
	for k, e := range m.recs {
		if e.rec.Owner == self {
			if !addrsEqual(e.rec.Reps, targets) {
				// Retargeting is an owner write: the ranked replica
				// list must reach the replicas so they agree on
				// promotion order should this node die.
				e.rec.Reps = append([]transport.Addr(nil), targets...)
				e.rec.Version++
				e.acked = nil
			}
			keys = append(keys, k)
		}
	}
	sortIDs(keys)
	metas := make([]Meta, 0, len(keys))
	for _, k := range keys {
		metas = append(metas, metaOf(m.recs[k].rec))
	}
	m.mu.Unlock()
	if len(metas) > 0 {
		for _, tgt := range targets {
			m.syncTarget(rt, tgt, metas)
		}
	}
	m.gc(rt.Now())
}

// syncTarget reconciles one replica: meta exchange first, full records
// only for what it actually lacks.
func (m *Manager) syncTarget(rt transport.Runtime, tgt transport.Addr, metas []Meta) {
	self := m.ring.Self()
	m.mSyncs.Inc()
	raw, err := rt.Call(tgt, m.mSync, SyncReq{From: self, Metas: metas})
	if err != nil {
		return
	}
	resp := raw.(SyncResp)
	m.absorbNewer(rt, resp.Newer)
	wanted := make(map[ids.ID]bool, len(resp.Want))
	for _, k := range resp.Want {
		wanted[k] = true
	}
	superseded := make(map[ids.ID]bool, len(resp.Newer))
	for _, r := range resp.Newer {
		superseded[r.Key] = true
	}
	m.mu.Lock()
	var push []Record
	for _, meta := range metas {
		e, ok := m.recs[meta.Key]
		if !ok || e.rec.Owner != self {
			continue // lost ownership since the snapshot
		}
		if wanted[meta.Key] {
			push = append(push, e.rec)
		} else if !superseded[meta.Key] &&
			e.rec.Epoch == meta.Epoch && e.rec.Version == meta.Version {
			// Neither wanted nor superseded: the replica already stores
			// exactly what we announced.
			e.ack(tgt, e.rec)
		}
	}
	m.mu.Unlock()
	if len(push) == 0 {
		return
	}
	m.mPuts.Inc()
	praw, err := rt.Call(tgt, m.mPut, PutReq{From: self, Recs: push})
	if err != nil {
		return
	}
	presp := praw.(PutResp)
	m.absorbNewer(rt, presp.Newer)
	rejected := make(map[ids.ID]bool, len(presp.Newer))
	for _, r := range presp.Newer {
		rejected[r.Key] = true
	}
	m.mu.Lock()
	for _, rec := range push {
		if rejected[rec.Key] {
			continue
		}
		if e, ok := m.recs[rec.Key]; ok && e.rec.Owner == self &&
			e.rec.Epoch == rec.Epoch && e.rec.Version == rec.Version {
			e.ack(tgt, rec)
		}
	}
	m.mu.Unlock()
}

// probeOnce runs one replica-side round: probe every distinct owner we
// replicate for; owners failing past DeadAfter lose their keys to the
// ring's new successor, owners that answer but no longer hold a record
// (crash + restart wiped them) get it pushed back.
func (m *Manager) probeOnce(rt transport.Runtime) {
	m.markAlive(rt.Now())
	self := m.ring.Self()
	m.mu.Lock()
	byOwner := make(map[transport.Addr][]ids.ID)
	for k, e := range m.recs {
		if e.rec.Owner != self && !e.rec.Deleted {
			byOwner[e.rec.Owner] = append(byOwner[e.rec.Owner], k)
		}
	}
	owners := make([]transport.Addr, 0, len(byOwner))
	for o := range byOwner {
		owners = append(owners, o)
		sortIDs(byOwner[o])
	}
	m.mu.Unlock()
	sort.Slice(owners, func(i, j int) bool { return owners[i] < owners[j] })

	for _, owner := range owners {
		keys := byOwner[owner]
		m.mProbes.Inc()
		raw, err := rt.Call(owner, m.mProbe, ProbeReq{From: self, Keys: keys})
		if err != nil {
			now := rt.Now()
			m.mu.Lock()
			since, failing := m.silent[owner]
			if !failing {
				since = now
				m.silent[owner] = since
			}
			dead := now-since >= m.cfg.DeadAfter
			m.mu.Unlock()
			if dead {
				m.takeover(rt, owner, keys)
			}
			continue
		}
		m.mu.Lock()
		delete(m.silent, owner)
		m.mu.Unlock()
		resp := raw.(ProbeResp)
		owned := make(map[ids.ID]bool, len(resp.Owned))
		for _, meta := range resp.Owned {
			owned[meta.Key] = true
		}
		var restore []Record
		m.mu.Lock()
		for _, k := range keys {
			if owned[k] {
				continue
			}
			e, ok := m.recs[k]
			if !ok || e.rec.Owner != owner || e.rec.Deleted {
				continue
			}
			if resp.Since > e.at {
				// The owner restarted after we stored this record: it
				// lost it to a crash. Push our copy back so it resumes
				// its jobs instead of orphaning them.
				restore = append(restore, e.rec)
				continue
			}
			// The owner has been up since before we stored this record,
			// so its absence is deliberate: the lifecycle ended and the
			// tombstone was GC'd, or ownership moved on while we were
			// out of the replica set. Forget our copy — pushing it back
			// would resurrect a finished job as a zombie execution.
			delete(m.recs, k)
			m.mReclaimed.Inc()
		}
		m.mu.Unlock()
		if len(restore) > 0 {
			m.mPuts.Inc()
			if praw, err := rt.Call(owner, m.mPut, PutReq{From: self, Recs: restore}); err == nil {
				m.absorbNewer(rt, praw.(PutResp).Newer)
			}
		}
	}
}

// takeover promotes this node to owner of the dead owner's keys. Two
// independent claims elect the new owner:
//
//   - the ring now assigns the key to this node (an owner that sat at
//     its ring position, classic successor takeover), or
//   - this node is the first member of the record's ranked replica
//     list (Record.Reps) that is still alive and still holds the
//     record. This is the path for owners placed off their ring
//     position (the grid's random-walk owner spreading): no replica
//     will ever ring-own such a key, so rank breaks the tie instead.
//
// Earlier-ranked peers are ruled out by probing them: dead past
// DeadAfter, or alive but without the record, forfeits the rank. A
// live peer that still holds the record vetoes us — it will promote
// on its own probe schedule. The epoch bump fences the dead owner out
// should it resurface; a double promotion lost to a transient
// disagreement resolves the same way.
func (m *Manager) takeover(rt transport.Runtime, owner transport.Addr, keys []ids.ID) {
	self := m.ring.Self()
	var took []Record
	blocked := make(map[ids.ID][]transport.Addr)
	m.mu.Lock()
	for _, k := range keys {
		e, ok := m.recs[k]
		if !ok || e.rec.Owner != owner || e.rec.Deleted {
			continue
		}
		if m.ring.Owns(k) {
			took = append(took, m.promoteLocked(e))
			continue
		}
		rank := addrIndex(e.rec.Reps, self)
		if rank < 0 {
			continue // a stale copy outside the owner's replica set never promotes
		}
		blocked[k] = e.rec.Reps[:rank]
	}
	m.mu.Unlock()

	if len(blocked) > 0 {
		veto := m.probePeers(rt, blocked)
		bkeys := make([]ids.ID, 0, len(blocked))
		for k := range blocked {
			bkeys = append(bkeys, k)
		}
		sortIDs(bkeys)
		m.mu.Lock()
		for _, k := range bkeys {
			if veto[k] {
				continue
			}
			if e, ok := m.recs[k]; ok && e.rec.Owner == owner && !e.rec.Deleted {
				took = append(took, m.promoteLocked(e))
			}
		}
		m.mu.Unlock()
	}

	for _, rec := range took {
		m.mPromoted.Inc()
		if m.cfg.OnOwn != nil {
			m.cfg.OnOwn(rt, rec, true)
		}
	}
}

// promoteLocked applies the ownership transfer to an entry; the caller
// holds m.mu and fires OnOwn after releasing it.
func (m *Manager) promoteLocked(e *entry) Record {
	e.rec.Epoch++
	e.rec.Version = 0
	e.rec.Owner = m.ring.Self()
	e.acked = nil
	return e.rec
}

// probePeers decides, for each blocked key, whether an earlier-ranked
// replica vetoes this node's promotion. A peer that answers and still
// stores the key keeps its claim (and the prober syncs against it, so
// a peer that already promoted hands over the new ownership record
// immediately); a peer dead past DeadAfter, or alive without the key,
// forfeits its rank.
func (m *Manager) probePeers(rt transport.Runtime, blocked map[ids.ID][]transport.Addr) map[ids.ID]bool {
	self := m.ring.Self()
	byPeer := make(map[transport.Addr][]ids.ID)
	for k, peers := range blocked {
		for _, p := range peers {
			byPeer[p] = append(byPeer[p], k)
		}
	}
	peers := make([]transport.Addr, 0, len(byPeer))
	for p := range byPeer {
		peers = append(peers, p)
		sortIDs(byPeer[p])
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })

	veto := make(map[ids.ID]bool)
	for _, p := range peers {
		keys := byPeer[p]
		m.mProbes.Inc()
		raw, err := rt.Call(p, m.mProbe, ProbeReq{From: self, Keys: keys})
		if err != nil {
			now := rt.Now()
			m.mu.Lock()
			since, failing := m.silent[p]
			if !failing {
				since = now
				m.silent[p] = since
			}
			dead := now-since >= m.cfg.DeadAfter
			m.mu.Unlock()
			if !dead {
				for _, k := range keys {
					veto[k] = true // not ruled out yet: wait out DeadAfter
				}
			}
			continue
		}
		m.mu.Lock()
		delete(m.silent, p)
		m.mu.Unlock()
		resp := raw.(ProbeResp)
		has := make(map[ids.ID]bool, len(resp.Has))
		for _, k := range resp.Has {
			has[k] = true
		}
		var metas []Meta
		m.mu.Lock()
		for _, k := range keys {
			if !has[k] {
				continue
			}
			veto[k] = true
			if e, ok := m.recs[k]; ok {
				metas = append(metas, metaOf(e.rec))
			}
		}
		m.mu.Unlock()
		if len(metas) > 0 {
			// Learn whatever the peer holds that supersedes our copy —
			// if it already promoted, this re-aims our probes at it and
			// ends the dead-owner polling.
			m.mSyncs.Inc()
			if sraw, err := rt.Call(p, m.mSync, SyncReq{From: self, Metas: metas}); err == nil {
				m.absorbNewer(rt, sraw.(SyncResp).Newer)
			}
		}
	}
	return veto
}

// absorbNewer folds records a peer proved are ahead of ours into the
// store, applying the fencing rules (see handlePut for the cases).
func (m *Manager) absorbNewer(rt transport.Runtime, recs []Record) {
	if len(recs) == 0 {
		return
	}
	self := m.ring.Self()
	now := rt.Now()
	var fenced, restored []Record
	m.mu.Lock()
	for _, rec := range recs {
		e, ok := m.recs[rec.Key]
		if !ok {
			ne := &entry{rec: rec, at: now}
			if rec.Deleted {
				ne.deadAt = now
			}
			m.recs[rec.Key] = ne
			if rec.Owner == self && !rec.Deleted {
				restored = append(restored, rec)
			}
			continue
		}
		if !rec.Newer(e.rec) {
			continue
		}
		if e.rec.Owner == self && rec.Owner != self && !e.rec.Deleted {
			if !rec.Deleted && m.ring.Owns(rec.Key) {
				// The ring says the key is ours: re-assert above the
				// remote epoch instead of deferring (a stale pre-crash
				// replica is pushing an old lifecycle at us).
				e.rec.Epoch = rec.Epoch + 1
				e.rec.Version = 0
				e.acked = nil
				continue
			}
			e.rec = rec
			e.acked = nil
			e.at = now
			if rec.Deleted {
				e.deadAt = now
			}
			fenced = append(fenced, rec)
			continue
		}
		wasOurs := e.rec.Owner == self && !e.rec.Deleted
		e.rec = rec
		e.acked = nil
		e.at = now
		if rec.Deleted {
			e.deadAt = now
		}
		if rec.Owner == self && !rec.Deleted && !wasOurs {
			restored = append(restored, rec)
		}
	}
	m.mu.Unlock()
	m.fire(rt, fenced, restored)
}

func (m *Manager) fire(rt transport.Runtime, fenced, restored []Record) {
	for _, rec := range fenced {
		m.mFenced.Inc()
		if m.cfg.OnFenced != nil {
			m.cfg.OnFenced(rt, rec)
		}
	}
	for _, rec := range restored {
		m.mRestored.Inc()
		if m.cfg.OnOwn != nil {
			m.cfg.OnOwn(rt, rec, false)
		}
	}
}

// gc drops tombstones past their retention and prunes liveness state
// for owners no record references anymore.
func (m *Manager) gc(now time.Duration) {
	m.mu.Lock()
	referenced := make(map[transport.Addr]bool)
	for k, e := range m.recs {
		if e.rec.Deleted && e.deadAt > 0 && now-e.deadAt >= m.cfg.GCAfter {
			delete(m.recs, k)
			continue
		}
		referenced[e.rec.Owner] = true
		// Replica-list peers carry liveness clocks too (rank-based
		// takeover); keep theirs while any record still names them.
		for _, p := range e.rec.Reps {
			referenced[p] = true
		}
	}
	for o := range m.silent {
		if !referenced[o] {
			delete(m.silent, o)
		}
	}
	m.mu.Unlock()
}

// handlePut stores pushed records, resolving conflicts:
//
//   - unknown record: store it; if it names this node as owner it is a
//     restore (this node crashed, restarted, and a replica is handing
//     its state back) -> OnOwn(promoted=false).
//   - incoming not newer: reject; return our record if strictly newer.
//   - incoming newer but we are actively serving the record and the
//     ring still assigns us the key: escalate above the remote epoch
//     and return the escalated record (asymmetric fencing — exactly one
//     side of a conflict may escalate, so epochs cannot war forever).
//   - incoming newer, owned elsewhere, and we were serving it (ring
//     moved on, or it is a tombstone): defer and OnFenced.
//   - incoming newer otherwise: plain replica update.
func (m *Manager) handlePut(rt transport.Runtime, from transport.Addr, req any) (any, error) {
	p := req.(PutReq)
	m.mPutRecv.Inc()
	m.markAlive(rt.Now())
	self := m.ring.Self()
	now := rt.Now()
	var resp PutResp
	var fenced, restored []Record
	m.mu.Lock()
	for _, rec := range p.Recs {
		e, ok := m.recs[rec.Key]
		if !ok {
			ne := &entry{rec: rec, at: now}
			if rec.Deleted {
				ne.deadAt = now
			}
			m.recs[rec.Key] = ne
			if rec.Owner == self && !rec.Deleted {
				restored = append(restored, rec)
			}
			continue
		}
		if !rec.Newer(e.rec) {
			if e.rec.Newer(rec) {
				resp.Newer = append(resp.Newer, e.rec)
			}
			continue
		}
		if e.rec.Owner == self && rec.Owner != self && !e.rec.Deleted {
			if !rec.Deleted && m.ring.Owns(rec.Key) {
				e.rec.Epoch = rec.Epoch + 1
				e.rec.Version = 0
				e.acked = nil
				resp.Newer = append(resp.Newer, e.rec)
				continue
			}
			e.rec = rec
			e.acked = nil
			e.at = now
			if rec.Deleted {
				e.deadAt = now
			}
			fenced = append(fenced, rec)
			continue
		}
		wasOurs := e.rec.Owner == self && !e.rec.Deleted
		e.rec = rec
		e.acked = nil
		e.at = now
		if rec.Deleted {
			e.deadAt = now
		}
		if rec.Owner == self && !rec.Deleted && !wasOurs {
			restored = append(restored, rec)
		}
	}
	m.mu.Unlock()
	m.fire(rt, fenced, restored)
	return resp, nil
}

// handleSync answers a meta announcement: which of these do I lack
// (Want), and which do I supersede (Newer, full records).
func (m *Manager) handleSync(rt transport.Runtime, from transport.Addr, req any) (any, error) {
	s := req.(SyncReq)
	m.markAlive(rt.Now())
	var resp SyncResp
	m.mu.Lock()
	for _, meta := range s.Metas {
		e, ok := m.recs[meta.Key]
		if !ok {
			if !meta.Deleted {
				resp.Want = append(resp.Want, meta.Key)
			}
			continue
		}
		if newer(meta.Epoch, meta.Version, meta.Owner, e.rec.Epoch, e.rec.Version, e.rec.Owner) {
			resp.Want = append(resp.Want, meta.Key)
		} else if newer(e.rec.Epoch, e.rec.Version, e.rec.Owner, meta.Epoch, meta.Version, meta.Owner) {
			resp.Newer = append(resp.Newer, e.rec)
		}
	}
	m.mu.Unlock()
	return resp, nil
}

// handleProbe answers which of the probed keys this node currently
// owns; answering at all proves liveness.
func (m *Manager) handleProbe(rt transport.Runtime, from transport.Addr, req any) (any, error) {
	p := req.(ProbeReq)
	m.markAlive(rt.Now())
	self := m.ring.Self()
	var resp ProbeResp
	m.mu.Lock()
	resp.Since = m.since
	for _, k := range p.Keys {
		e, ok := m.recs[k]
		if !ok {
			continue
		}
		resp.Has = append(resp.Has, k)
		if e.rec.Owner == self {
			resp.Owned = append(resp.Owned, metaOf(e.rec))
		}
	}
	m.mu.Unlock()
	return resp, nil
}

func addrsEqual(a, b []transport.Addr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func addrIndex(list []transport.Addr, a transport.Addr) int {
	for i, x := range list {
		if x == a {
			return i
		}
	}
	return -1
}

func sortIDs(keys []ids.ID) {
	sort.Slice(keys, func(i, j int) bool {
		return bytes.Compare(keys[i][:], keys[j][:]) < 0
	})
}

// jittered spreads periodic work uniformly over [d/2, 3d/2) using the
// caller's deterministic random stream (same scheme as chord's loops).
func jittered(rt transport.Runtime, d time.Duration) time.Duration {
	return d/2 + time.Duration(rt.Rand().Int63n(int64(d)))
}
