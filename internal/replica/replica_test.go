package replica

import (
	"sync"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/sim"
	"repro/internal/simhost"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// scriptRing is a fully scripted Ring: tests set the successor list and
// per-key ownership directly, standing in for chord's stabilization.
type scriptRing struct {
	mu    sync.Mutex
	self  transport.Addr
	succs []transport.Addr
	owns  map[ids.ID]bool
}

func (r *scriptRing) Self() transport.Addr { return r.self }

func (r *scriptRing) Successors(k int) []transport.Addr {
	r.mu.Lock()
	defer r.mu.Unlock()
	if k > len(r.succs) {
		k = len(r.succs)
	}
	return append([]transport.Addr(nil), r.succs[:k]...)
}

func (r *scriptRing) Owns(key ids.ID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.owns[key]
}

func (r *scriptRing) setSuccs(succs ...transport.Addr) {
	r.mu.Lock()
	r.succs = succs
	r.mu.Unlock()
}

func (r *scriptRing) setOwns(key ids.ID, v bool) {
	r.mu.Lock()
	if r.owns == nil {
		r.owns = make(map[ids.ID]bool)
	}
	r.owns[key] = v
	r.mu.Unlock()
}

type ownEvent struct {
	rec      Record
	promoted bool
}

// testNode is one manager plus its scripted ring and callback log.
type testNode struct {
	host *simhost.Host
	ring *scriptRing
	mgr  *Manager

	mu     sync.Mutex
	owned  []ownEvent
	fenced []Record
}

func (n *testNode) ownEvents() []ownEvent {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]ownEvent(nil), n.owned...)
}

func (n *testNode) fencedEvents() []Record {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]Record(nil), n.fenced...)
}

type harness struct {
	t     *testing.T
	e     *sim.Engine
	net   *simnet.Net
	nodes map[string]*testNode
}

func newHarness(t *testing.T, seed int64) *harness {
	e := sim.NewEngine(seed)
	net := simnet.New(e)
	net.Latency = simnet.UniformLatency{Min: 5 * time.Millisecond, Max: 20 * time.Millisecond}
	return &harness{t: t, e: e, net: net, nodes: make(map[string]*testNode)}
}

func (h *harness) add(name string, k int) *testNode {
	host := simhost.New(h.net.NewEndpoint(simnet.Addr(name)))
	n := &testNode{host: host, ring: &scriptRing{self: transport.Addr(name)}}
	n.mgr = New(host, n.ring, Config{
		K: k,
		OnOwn: func(rt transport.Runtime, rec Record, promoted bool) {
			n.mu.Lock()
			n.owned = append(n.owned, ownEvent{rec: rec, promoted: promoted})
			n.mu.Unlock()
		},
		OnFenced: func(rt transport.Runtime, rec Record) {
			n.mu.Lock()
			n.fenced = append(n.fenced, rec)
			n.mu.Unlock()
		},
	})
	h.nodes[name] = n
	return n
}

// do runs fn inside a proc on the named node and drives the sim until
// it returns.
func (h *harness) do(name string, fn func(rt transport.Runtime)) {
	done := false
	h.nodes[name].host.Go("test", func(rt transport.Runtime) {
		defer func() { done = true }()
		fn(rt)
	})
	for !done {
		h.e.RunFor(time.Second)
	}
}

func key(s string) ids.ID { return ids.HashString(s) }

func TestNewerOrdering(t *testing.T) {
	base := Record{Epoch: 1, Version: 3, Owner: "b"}
	cases := []struct {
		name string
		r    Record
		want bool
	}{
		{"higher epoch wins over higher version", Record{Epoch: 2, Version: 0, Owner: "a"}, true},
		{"lower epoch loses", Record{Epoch: 0, Version: 99, Owner: "z"}, false},
		{"same epoch higher version wins", Record{Epoch: 1, Version: 4, Owner: "a"}, true},
		{"same epoch lower version loses", Record{Epoch: 1, Version: 2, Owner: "z"}, false},
		{"exact tie broken by owner address", Record{Epoch: 1, Version: 3, Owner: "c"}, true},
		{"identical is not newer", Record{Epoch: 1, Version: 3, Owner: "b"}, false},
	}
	for _, tc := range cases {
		if got := tc.r.Newer(base); got != tc.want {
			t.Errorf("%s: Newer = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestPushReplicatesAndAcks: an owned record reaches the successor in
// one anti-entropy round and the owner records the ack.
func TestPushReplicatesAndAcks(t *testing.T) {
	h := newHarness(t, 1)
	a := h.add("a", 2)
	b := h.add("b", 2)
	defer h.e.Shutdown()
	k := key("job-1")
	a.ring.setSuccs("b")
	a.ring.setOwns(k, true)

	a.mgr.Publish(k, []byte("v0"))
	h.do("a", func(rt transport.Runtime) { a.mgr.pushOnce(rt) })

	st := b.mgr.Status(k)
	if !st.Known || st.Owner != "a" || st.Deleted {
		t.Fatalf("replica status = %+v, want known live record owned by a", st)
	}
	ost := a.mgr.Status(k)
	if len(ost.Peers) != 1 || !ost.Peers[0].Acked {
		t.Fatalf("owner peer status = %+v, want one acked peer", ost.Peers)
	}

	// A subsequent write invalidates the ack until the next round.
	a.mgr.Publish(k, []byte("v1"))
	if st := a.mgr.Status(k); st.Peers[0].Acked {
		t.Fatal("stale ack survived a new version")
	}
	h.do("a", func(rt transport.Runtime) { a.mgr.pushOnce(rt) })
	if st := a.mgr.Status(k); !st.Peers[0].Acked {
		t.Fatal("replica did not re-ack after push")
	}
}

// TestPromotionAfterOwnerDeath: the replica probes the owner, declares
// it dead after DeadAfter, and — because the scripted ring now assigns
// it the key — promotes itself with a fresh epoch.
func TestPromotionAfterOwnerDeath(t *testing.T) {
	h := newHarness(t, 2)
	a := h.add("a", 1)
	b := h.add("b", 1)
	defer h.e.Shutdown()
	k := key("job-2")
	a.ring.setSuccs("b")
	a.ring.setOwns(k, true)
	a.mgr.Publish(k, []byte("state"))
	h.do("a", func(rt transport.Runtime) { a.mgr.pushOnce(rt) })

	a.host.Endpoint().Crash()
	b.ring.setOwns(k, true) // ring hands the dead owner's arc to b

	h.do("b", func(rt transport.Runtime) { b.mgr.probeOnce(rt) }) // first failure: starts the clock
	if evs := b.ownEvents(); len(evs) != 0 {
		t.Fatalf("promoted before DeadAfter: %+v", evs)
	}
	h.e.RunFor(4 * time.Second) // DeadAfter defaults to 3 s
	h.do("b", func(rt transport.Runtime) { b.mgr.probeOnce(rt) })

	evs := b.ownEvents()
	if len(evs) != 1 || !evs[0].promoted {
		t.Fatalf("own events = %+v, want one promotion", evs)
	}
	if evs[0].rec.Epoch != 1 || evs[0].rec.Owner != "b" || string(evs[0].rec.Data) != "state" {
		t.Fatalf("promoted record = %+v, want epoch 1 owned by b with replicated data", evs[0].rec)
	}
}

// TestStaleOwnerFenced: an owner that resurfaces after a replica
// promoted finds the newer epoch during its own push round, defers
// (the ring no longer assigns it the key), and gets the OnFenced
// callback; the promoted side keeps ownership.
func TestStaleOwnerFenced(t *testing.T) {
	h := newHarness(t, 3)
	a := h.add("a", 1)
	b := h.add("b", 1)
	defer h.e.Shutdown()
	k := key("job-3")
	a.ring.setSuccs("b")
	a.ring.setOwns(k, true)
	a.mgr.Publish(k, []byte("state"))
	h.do("a", func(rt transport.Runtime) { a.mgr.pushOnce(rt) })

	a.host.Endpoint().Crash()
	b.ring.setOwns(k, true)
	h.do("b", func(rt transport.Runtime) { b.mgr.probeOnce(rt) })
	h.e.RunFor(4 * time.Second)
	h.do("b", func(rt transport.Runtime) { b.mgr.probeOnce(rt) })

	// The old owner comes back with its pre-crash state intact (a healed
	// partition rather than a process restart) but the ring has moved on.
	a.host.Endpoint().Restart()
	a.ring.setOwns(k, false)
	h.do("a", func(rt transport.Runtime) { a.mgr.pushOnce(rt) })

	fenced := a.fencedEvents()
	if len(fenced) != 1 || fenced[0].Key != k || fenced[0].Owner != "b" {
		t.Fatalf("fenced events = %+v, want one fencing by b", fenced)
	}
	if st := a.mgr.Status(k); st.Owner != "b" || st.Epoch != 1 {
		t.Fatalf("stale owner's record = %+v, want deferred to b@epoch1", st)
	}
}

// TestEscalationWhenRingStillOurs: the mirror case — the ring still
// assigns the contested key to the pushed-at node, so instead of
// deferring it escalates above the remote epoch and fences the pusher.
func TestEscalationWhenRingStillOurs(t *testing.T) {
	h := newHarness(t, 4)
	a := h.add("a", 1)
	b := h.add("b", 1)
	defer h.e.Shutdown()
	k := key("job-4")
	// Both sides claim the key (a partition both halves survived).
	a.ring.setSuccs("b")
	a.ring.setOwns(k, true)
	a.mgr.Publish(k, []byte("a-state"))
	a.mgr.Publish(k, []byte("a-state-2")) // version 1: strictly newer than b's
	b.ring.setSuccs("a")
	b.ring.setOwns(k, true)
	b.mgr.Publish(k, []byte("b-state"))

	// a pushes its older record at b; b escalates, a defers (a's ring
	// claim is irrelevant — only the receiver's matters on this path,
	// and the returned escalated epoch beats a's record outright).
	a.ring.setOwns(k, false)
	h.do("a", func(rt transport.Runtime) { a.mgr.pushOnce(rt) })

	bst := b.mgr.Status(k)
	if bst.Owner != "b" || bst.Epoch != 1 {
		t.Fatalf("receiver status = %+v, want escalated b@epoch1", bst)
	}
	ast := a.mgr.Status(k)
	if ast.Owner != "b" || ast.Epoch != 1 {
		t.Fatalf("pusher status = %+v, want deferred to b@epoch1", ast)
	}
	if fenced := a.fencedEvents(); len(fenced) != 1 {
		t.Fatalf("pusher fenced events = %+v, want exactly one", fenced)
	}
}

// TestRestoreAfterOwnerRestart: a restarted owner (state wiped by
// Reset) answers probes without the record; the replica pushes it back
// and the owner gets OnOwn(promoted=false) in the original epoch.
func TestRestoreAfterOwnerRestart(t *testing.T) {
	h := newHarness(t, 5)
	a := h.add("a", 1)
	b := h.add("b", 1)
	defer h.e.Shutdown()
	k := key("job-5")
	a.ring.setSuccs("b")
	a.ring.setOwns(k, true)
	a.mgr.Publish(k, []byte("progress"))
	h.do("a", func(rt transport.Runtime) { a.mgr.pushOnce(rt) })

	a.mgr.Reset() // crash+restart: soft state gone, node stays reachable
	h.do("b", func(rt transport.Runtime) { b.mgr.probeOnce(rt) })

	evs := a.ownEvents()
	if len(evs) != 1 || evs[0].promoted {
		t.Fatalf("own events = %+v, want one restore", evs)
	}
	if evs[0].rec.Epoch != 0 || string(evs[0].rec.Data) != "progress" {
		t.Fatalf("restored record = %+v, want original epoch and data", evs[0].rec)
	}
	if evs := b.ownEvents(); len(evs) != 0 {
		t.Fatalf("replica should not promote across a successful probe, got %+v", evs)
	}
}

// TestRetargetAfterSuccessorChange: when stabilization hands the owner
// a different successor list, the next push round replicates to the
// new target without any explicit migration step.
func TestRetargetAfterSuccessorChange(t *testing.T) {
	h := newHarness(t, 6)
	a := h.add("a", 1)
	b := h.add("b", 1)
	c := h.add("c", 1)
	defer h.e.Shutdown()
	k := key("job-6")
	a.ring.setSuccs("b")
	a.ring.setOwns(k, true)
	a.mgr.Publish(k, []byte("v"))
	h.do("a", func(rt transport.Runtime) { a.mgr.pushOnce(rt) })
	if !b.mgr.Status(k).Known {
		t.Fatal("first successor missing record")
	}

	a.ring.setSuccs("c") // b left the successor list
	h.do("a", func(rt transport.Runtime) { a.mgr.pushOnce(rt) })
	if !c.mgr.Status(k).Known {
		t.Fatal("record not re-targeted to new successor")
	}
	st := a.mgr.Status(k)
	if len(st.Peers) != 1 || st.Peers[0].Addr != "c" || !st.Peers[0].Acked {
		t.Fatalf("owner peers = %+v, want acked c only", st.Peers)
	}
}

// TestTombstoneReplicatesAndGC: a Delete fans out as a tombstone that
// flips the replica's Responsible answer, and both copies are dropped
// once the GC retention passes.
func TestTombstoneReplicatesAndGC(t *testing.T) {
	h := newHarness(t, 7)
	a := h.add("a", 1)
	b := h.add("b", 1)
	defer h.e.Shutdown()
	k := key("job-7")
	a.ring.setSuccs("b")
	a.ring.setOwns(k, true)
	a.mgr.Publish(k, []byte("v"))
	h.do("a", func(rt transport.Runtime) { a.mgr.pushOnce(rt) })
	h.do("b", func(rt transport.Runtime) {
		if !b.mgr.Responsible(rt.Now(), k) {
			t.Error("replica of a live record should report responsible")
		}
	})

	h.do("a", func(rt transport.Runtime) {
		a.mgr.Delete(rt.Now(), k)
		a.mgr.pushOnce(rt)
	})
	st := b.mgr.Status(k)
	if !st.Known || !st.Deleted {
		t.Fatalf("replica status after delete = %+v, want tombstone", st)
	}
	h.do("b", func(rt transport.Runtime) {
		if b.mgr.Responsible(rt.Now(), k) {
			t.Error("tombstoned record should not be responsible")
		}
	})

	h.e.RunFor(3 * time.Minute) // GCAfter defaults to 2 min
	h.do("a", func(rt transport.Runtime) { a.mgr.pushOnce(rt) })
	h.do("b", func(rt transport.Runtime) { b.mgr.gc(rt.Now()) })
	if a.mgr.Status(k).Known || b.mgr.Status(k).Known {
		t.Fatal("tombstones survived GC")
	}
}

// TestResponsibleTracksOwnerLiveness: a replica vouches for a record
// only while the owner has not been failing probes past DeadAfter —
// the property the grid's client-status fallback depends on.
func TestResponsibleTracksOwnerLiveness(t *testing.T) {
	h := newHarness(t, 8)
	a := h.add("a", 1)
	b := h.add("b", 1)
	defer h.e.Shutdown()
	k := key("job-8")
	a.ring.setSuccs("b")
	a.ring.setOwns(k, true)
	a.mgr.Publish(k, []byte("v"))
	h.do("a", func(rt transport.Runtime) { a.mgr.pushOnce(rt) })

	a.host.Endpoint().Crash()
	h.do("b", func(rt transport.Runtime) { b.mgr.probeOnce(rt) })
	h.do("b", func(rt transport.Runtime) {
		if !b.mgr.Responsible(rt.Now(), k) {
			t.Error("owner only just went silent; replica should still vouch")
		}
	})
	h.e.RunFor(4 * time.Second)
	h.do("b", func(rt transport.Runtime) {
		if b.mgr.Responsible(rt.Now(), k) {
			t.Error("owner silent past DeadAfter; replica must stop vouching")
		}
	})
}

// TestKickCoalesces: Kick schedules exactly one push+probe round per
// burst of ring-change notifications.
func TestKickCoalesces(t *testing.T) {
	h := newHarness(t, 9)
	a := h.add("a", 1)
	b := h.add("b", 1)
	defer h.e.Shutdown()
	k := key("job-9")
	a.ring.setSuccs("b")
	a.ring.setOwns(k, true)
	a.mgr.Start()
	a.mgr.Publish(k, []byte("v"))
	for i := 0; i < 10; i++ {
		a.mgr.Kick()
	}
	h.e.RunFor(500 * time.Millisecond) // before the first periodic round
	if !b.mgr.Status(k).Known {
		t.Fatal("kick did not trigger an immediate push")
	}
}
