package replica

import (
	"repro/internal/chord"
	"repro/internal/ids"
	"repro/internal/transport"
)

// ChordRing adapts a chord node to the Ring interface: replica targets
// are the node's successor list, and key ownership follows Chord's
// successor rule (a key belongs to the first node at or after it).
type ChordRing struct {
	Node *chord.Node
}

// Self returns the chord node's address.
func (r ChordRing) Self() transport.Addr { return r.Node.Ref().Addr }

// Successors returns up to k distinct successor addresses, nearest
// first, excluding this node itself (a successor list on a small ring
// wraps around to self; replicating to self would be a no-op lie).
func (r ChordRing) Successors(k int) []transport.Addr {
	self := r.Node.Ref().Addr
	var out []transport.Addr
	seen := map[transport.Addr]bool{self: true}
	for _, s := range r.Node.SuccessorList() {
		if len(out) >= k {
			break
		}
		if s.IsZero() || seen[s.Addr] {
			continue
		}
		seen[s.Addr] = true
		out = append(out, s.Addr)
	}
	return out
}

// Owns reports whether the key falls in (pred, self]. With no live
// predecessor the node answers for the whole vacated arc — after heavy
// churn two nodes may transiently both claim a key, which the replica
// layer's epoch ordering and asymmetric fencing resolve once the ring
// stabilizes.
func (r ChordRing) Owns(key ids.ID) bool {
	self := r.Node.Ref()
	pred := r.Node.Predecessor()
	if pred.IsZero() || pred.ID == self.ID {
		return true
	}
	return ids.BetweenRightIncl(key, pred.ID, self.ID)
}
