// Package sim implements a deterministic discrete-event simulation
// kernel. Protocol code runs inside Procs — goroutines that execute one
// at a time under a virtual clock, so blocking-style code (sleep, RPC,
// channel receive) simulates exactly and reproducibly.
//
// Concurrency model: the engine goroutine (the one calling Run) and at
// most one Proc goroutine are runnable at any instant; control is handed
// back and forth over unbuffered channels. Given a fixed seed and
// workload, every run produces an identical event order.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Time is an instant of virtual time, in nanoseconds since the start of
// the simulation.
type Time int64

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Seconds returns the instant as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

func (t Time) String() string { return time.Duration(t).String() }

// Event is a scheduled occurrence. Stop cancels it if it has not fired.
type Event struct {
	at      Time
	seq     uint64
	fire    func()
	stopped bool
	index   int // heap index, -1 once popped
	eng     *Engine
	tag     string // attribution tag (see Engine.Tagged)
}

// Stop cancels the event. It is safe to call after the event has fired
// and idempotent on an already-stopped event.
func (ev *Event) Stop() {
	if ev.stopped {
		return
	}
	ev.stopped = true
	if ev.index >= 0 && ev.eng != nil {
		// Still in the heap: it will be skipped at pop, so it leaves the
		// pending population now.
		ev.eng.pending--
		if st := ev.eng.stats; st != nil {
			st.EventsStopped++
		}
	}
}

// Engine is a discrete-event simulation driver. Create one with
// NewEngine; it is not safe for concurrent use from multiple OS threads
// outside the Proc discipline.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	pending int           // uncancelled events in the heap (O(1) Pending)
	ctl     chan struct{} // proc -> engine: "I yielded"
	rng     *rand.Rand
	procs   map[*Proc]struct{}
	procSeq uint64
	stopped bool
	failure any // panic value escaped from a proc

	// curTag is the attribution tag inherited by Schedule: the tag of
	// the currently-firing event, or whatever Tagged installed. Tags are
	// always tracked (a string copy per event) so enabling stats cannot
	// perturb anything; only the counting is gated on stats.
	curTag string
	stats  *Stats // nil until EnableStats

	// Trace, if non-nil, receives a line per context switch; useful when
	// debugging protocol interleavings.
	Trace func(format string, args ...any)
}

// NewEngine returns an engine whose randomness derives from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		ctl:   make(chan struct{}),
		rng:   rand.New(rand.NewSource(seed)),
		procs: make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's master random stream. For independent
// streams (one per node), use NewRand.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// NewRand returns a new random stream seeded from the master stream, so
// per-node randomness is stable under changes elsewhere.
func (e *Engine) NewRand() *rand.Rand {
	return rand.New(rand.NewSource(e.rng.Int63()))
}

// Schedule registers fn to run in engine context (it must not block) at
// time now+d. Negative d is treated as zero. The event inherits the
// current attribution tag (see Tagged).
func (e *Engine) Schedule(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	ev := &Event{at: e.now.Add(d), seq: e.seq, fire: fn, eng: e, tag: e.curTag}
	e.seq++
	e.pending++
	heap.Push(&e.queue, ev)
	if st := e.stats; st != nil {
		st.EventsScheduled++
		if len(e.queue) > st.PeakQueue {
			st.PeakQueue = len(e.queue)
		}
		st.tag(ev.tag).Scheduled++
	}
	return ev
}

// Pending returns the number of scheduled (uncancelled) events. It is
// O(1): the engine maintains the count on Schedule, Stop, and pop, so
// hot loops may poll it freely.
func (e *Engine) Pending() int { return e.pending }

// Tagged runs fn with the given attribution tag installed, restoring
// the previous tag afterwards. Events scheduled inside fn — and,
// transitively, events scheduled while those events fire — are
// attributed to tag in the kernel stats. Tagging is always active so
// the virtual timeline is identical with stats on or off.
func (e *Engine) Tagged(tag string, fn func()) {
	prev := e.curTag
	e.curTag = tag
	fn()
	e.curTag = prev
}

// EnableStats attaches a fresh kernel stats collector and returns it.
// Call before running; the collector is cumulative across Run calls.
func (e *Engine) EnableStats() *Stats {
	e.stats = &Stats{ByTag: make(map[string]*TagStats)}
	return e.stats
}

// Stats returns the collector enabled by EnableStats, or nil.
func (e *Engine) Stats() *Stats { return e.stats }

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run processes events until none remain or Stop is called. It panics
// with the original value if any Proc panicked.
func (e *Engine) Run() {
	e.stopped = false
	defer e.measure()()
	for e.queue.Len() > 0 && !e.stopped {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.stopped {
			continue
		}
		e.pending--
		e.now = ev.at
		e.fireEvent(ev)
		e.checkFailure()
	}
}

// RunUntil processes events with timestamps <= deadline, then sets the
// clock to deadline (if it advanced that far).
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	defer e.measure()()
	for e.queue.Len() > 0 && !e.stopped {
		ev := e.queue[0]
		if ev.at > deadline {
			e.now = deadline
			return
		}
		heap.Pop(&e.queue)
		if ev.stopped {
			continue
		}
		e.pending--
		e.now = ev.at
		e.fireEvent(ev)
		e.checkFailure()
	}
	if e.now < deadline && e.queue.Len() == 0 {
		e.now = deadline
	}
}

// fireEvent runs one popped event under its attribution tag, counting
// it (and its wall cost) when stats are enabled.
func (e *Engine) fireEvent(ev *Event) {
	e.curTag = ev.tag
	st := e.stats
	if st == nil {
		ev.fire()
		return
	}
	st.EventsFired++
	t0 := time.Now()
	ev.fire()
	ts := st.tag(ev.tag)
	ts.Fired++
	ts.WallNS += time.Since(t0).Nanoseconds()
}

// measure opens a wall/virtual-clock accounting window over one run
// loop; the returned closure closes it. A no-op without stats.
func (e *Engine) measure() func() {
	st := e.stats
	if st == nil {
		return func() {}
	}
	t0, v0 := time.Now(), e.now
	return func() {
		st.WallNS += time.Since(t0).Nanoseconds()
		st.VirtNS += int64(e.now - v0)
	}
}

// RunFor processes events for d of virtual time from now.
func (e *Engine) RunFor(d time.Duration) { e.RunUntil(e.now.Add(d)) }

// Parked returns the number of live procs currently blocked. A nonzero
// value when Run returns indicates procs waiting on conditions that can
// no longer occur (often intentional, e.g. servers awaiting requests).
func (e *Engine) Parked() int {
	n := 0
	for p := range e.procs {
		if p.state == pParked {
			n++
		}
	}
	return n
}

// Shutdown kills every live proc so their goroutines exit. Call after
// Run when the engine will be discarded before process exit.
func (e *Engine) Shutdown() {
	for _, p := range SortProcs(e.procs) {
		p.Kill()
	}
	// Drain the kill events.
	e.Run()
}

// SortProcs returns the procs in a set ordered by creation, giving
// callers a deterministic iteration order.
func SortProcs(set map[*Proc]struct{}) []*Proc {
	out := make([]*Proc, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

func (e *Engine) checkFailure() {
	if e.failure != nil {
		f := e.failure
		e.failure = nil
		panic(fmt.Sprintf("sim: proc panic: %v", f))
	}
}

func (e *Engine) tracef(format string, args ...any) {
	if e.Trace != nil {
		e.Trace(format, args...)
	}
}

// eventHeap orders events by (time, sequence) so simultaneous events
// fire in scheduling order — the determinism guarantee.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
