package sim

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestRunUntilEmptyQueueAdvancesClock(t *testing.T) {
	e := NewEngine(1)
	e.RunUntil(Time(5 * time.Second))
	if e.Now() != Time(5*time.Second) {
		t.Fatalf("now = %v, want 5s", e.Now())
	}
	// A second call must not move the clock backwards.
	e.RunUntil(Time(3 * time.Second))
	if e.Now() != Time(5*time.Second) {
		t.Fatalf("now = %v after earlier deadline, want 5s", e.Now())
	}
}

func TestStopInsideFiringEvent(t *testing.T) {
	e := NewEngine(1)
	st := e.EnableStats()
	fired := false
	var victim *Event
	e.Schedule(time.Second, func() { victim.Stop() })
	victim = e.Schedule(2*time.Second, func() { fired = true })
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	e.Run()
	if fired {
		t.Fatal("stopped event fired")
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after Run, want 0", e.Pending())
	}
	if st.EventsStopped != 1 || st.EventsFired != 1 || st.EventsScheduled != 2 {
		t.Fatalf("stopped=%d fired=%d scheduled=%d", st.EventsStopped, st.EventsFired, st.EventsScheduled)
	}
}

func TestStopAfterFireDoesNotUnderflowPending(t *testing.T) {
	e := NewEngine(1)
	ev := e.Schedule(time.Second, func() {})
	e.Run()
	ev.Stop() // already fired: must be a no-op on the pending count
	ev.Stop() // and idempotent
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", e.Pending())
	}
	if e.Stats() != nil {
		t.Fatal("stats enabled without EnableStats")
	}
}

func TestStopSelfWhileFiring(t *testing.T) {
	// An event that stops itself mid-fire: it already left the heap, so
	// the pending count must not move.
	e := NewEngine(1)
	var self *Event
	self = e.Schedule(time.Second, func() { self.Stop() })
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", e.Pending())
	}
}

func TestPendingMatchesQueueScan(t *testing.T) {
	e := NewEngine(9)
	var evs []*Event
	for i := 0; i < 200; i++ {
		evs = append(evs, e.Schedule(time.Duration(i)*time.Millisecond, func() {}))
	}
	for i := 0; i < 200; i += 3 {
		evs[i].Stop()
		evs[i].Stop() // double-stop must not double-decrement
	}
	scan := 0
	for _, ev := range e.queue {
		if !ev.stopped {
			scan++
		}
	}
	if e.Pending() != scan {
		t.Fatalf("Pending = %d, heap scan = %d", e.Pending(), scan)
	}
	e.RunFor(50 * time.Millisecond)
	scan = 0
	for _, ev := range e.queue {
		if !ev.stopped {
			scan++
		}
	}
	if e.Pending() != scan {
		t.Fatalf("after partial run: Pending = %d, heap scan = %d", e.Pending(), scan)
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after drain, want 0", e.Pending())
	}
}

func TestParkedAcrossKillAndRestart(t *testing.T) {
	e := NewEngine(1)
	st := e.EnableStats()
	c := NewChan[int](e)
	worker := func(p *Proc) { c.Recv(p) }
	p := e.Spawn("w1", worker)
	e.Run()
	if e.Parked() != 1 {
		t.Fatalf("Parked = %d, want 1", e.Parked())
	}
	p.Kill()
	e.Run()
	if e.Parked() != 0 {
		t.Fatalf("Parked = %d after kill, want 0", e.Parked())
	}
	e.Spawn("w2", worker)
	e.Run()
	if e.Parked() != 1 {
		t.Fatalf("Parked = %d after restart, want 1", e.Parked())
	}
	if st.Spawns != 2 || st.Kills != 1 {
		t.Fatalf("spawns=%d kills=%d, want 2/1", st.Spawns, st.Kills)
	}
	if st.PeakProcs != 1 {
		t.Fatalf("PeakProcs = %d, want 1 (never two alive at once)", st.PeakProcs)
	}
	e.Shutdown()
}

func TestStatsCounts(t *testing.T) {
	e := NewEngine(5)
	st := e.EnableStats()
	c := NewChan[int](e)
	e.Spawn("rx", func(p *Proc) {
		for i := 0; i < 3; i++ {
			c.Recv(p)
		}
	})
	e.Spawn("tx", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(time.Second)
			c.Send(i)
		}
	})
	e.Run()
	if st.EventsFired+st.EventsStopped != st.EventsScheduled {
		t.Fatalf("fired %d + stopped %d != scheduled %d",
			st.EventsFired, st.EventsStopped, st.EventsScheduled)
	}
	if st.Switches != st.Spawns+st.Wakes {
		t.Fatalf("switches %d != spawns %d + wakes %d", st.Switches, st.Spawns, st.Wakes)
	}
	if st.PeakProcs != 2 {
		t.Fatalf("PeakProcs = %d, want 2", st.PeakProcs)
	}
	if st.PeakQueue < 1 {
		t.Fatalf("PeakQueue = %d", st.PeakQueue)
	}
	if st.VirtNS != int64(e.Now()) {
		t.Fatalf("VirtNS = %d, now = %d", st.VirtNS, int64(e.Now()))
	}
	if got := st.Report(); !strings.Contains(got, "events fired") {
		t.Fatalf("Report missing summary: %q", got)
	}
}

func TestTaggedAttributionInherits(t *testing.T) {
	e := NewEngine(1)
	st := e.EnableStats()
	e.Tagged("alpha", func() {
		e.Schedule(time.Second, func() {
			// Scheduled while an alpha event fires: inherits alpha.
			e.Schedule(time.Second, func() {})
		})
	})
	e.Schedule(time.Second, func() {}) // outside any Tagged scope
	e.Run()
	a := st.ByTag["alpha"]
	if a == nil || a.Scheduled != 2 || a.Fired != 2 {
		t.Fatalf("alpha bucket = %+v", a)
	}
	u := st.ByTag["untagged"]
	if u == nil || u.Fired != 1 {
		t.Fatalf("untagged bucket = %+v", u)
	}
	if st.TopTag() != "alpha" {
		t.Fatalf("TopTag = %q", st.TopTag())
	}
	ranked := st.RankedTags()
	if len(ranked) != 2 || ranked[0].Tag != "alpha" || ranked[1].Tag != "untagged" {
		t.Fatalf("RankedTags = %+v", ranked)
	}
}

func TestTaggedRestoresPreviousTag(t *testing.T) {
	e := NewEngine(1)
	st := e.EnableStats()
	e.Tagged("outer", func() {
		e.Tagged("inner", func() {
			e.Schedule(time.Second, func() {})
		})
		e.Schedule(time.Second, func() {})
	})
	e.Run()
	if st.ByTag["inner"].Fired != 1 || st.ByTag["outer"].Fired != 1 {
		t.Fatalf("buckets: inner=%+v outer=%+v", st.ByTag["inner"], st.ByTag["outer"])
	}
}

func TestStaleWakeCounted(t *testing.T) {
	e := NewEngine(1)
	st := e.EnableStats()
	// The sleeper dies before its 2s sleep timer fires; the timer's wake
	// then finds a dead proc and is rejected as stale.
	p := e.Spawn("sleeper", func(p *Proc) { p.Sleep(2 * time.Second) })
	e.Schedule(time.Second, func() { p.Kill() })
	e.Run()
	if st.StaleWakes == 0 {
		t.Fatal("expected at least one stale wake")
	}
	if st.Kills != 1 {
		t.Fatalf("Kills = %d, want 1", st.Kills)
	}
}

// TestStatsTimelineNeutral is the kernel-level half of the
// trace-neutrality invariant: the same seeded multi-proc scenario must
// produce an identical interleaving with stats enabled and disabled.
// (internal/grid's soak test pins the same property for a full grid.)
func TestStatsTimelineNeutral(t *testing.T) {
	run := func(stats bool) []string {
		e := NewEngine(42)
		if stats {
			e.EnableStats()
		}
		var log []string
		// Trace lines capture every park/wake/start/exit transition.
		e.Trace = func(format string, args ...any) {
			log = append(log, fmt.Sprintf(format, args...))
		}
		c := NewChan[int](e)
		for i := 0; i < 4; i++ {
			name := string(rune('a' + i))
			e.Spawn(name, func(p *Proc) {
				for j := 0; j < 5; j++ {
					p.Sleep(time.Duration(p.Rand().Intn(900)) * time.Millisecond)
					c.Send(j)
				}
			})
		}
		e.Spawn("sink", func(p *Proc) {
			for i := 0; i < 20; i++ {
				c.Recv(p)
			}
		})
		e.Run()
		return log
	}
	off, on := run(false), run(true)
	if len(off) == 0 {
		t.Fatal("no trace lines")
	}
	if len(off) != len(on) {
		t.Fatalf("trace length differs: off=%d on=%d", len(off), len(on))
	}
	for i := range off {
		if off[i] != on[i] {
			t.Fatalf("trace diverges at line %d: %q vs %q", i, off[i], on[i])
		}
	}
}
