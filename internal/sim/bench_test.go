package sim

import (
	"testing"
	"time"
)

// BenchmarkScheduleFire measures the pure event path — schedule, heap
// push/pop, fire — with no proc involvement: the floor for everything
// the kernel does.
func BenchmarkScheduleFire(b *testing.B) {
	e := NewEngine(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.Schedule(time.Millisecond, tick)
		}
	}
	e.Schedule(time.Millisecond, tick)
	b.ResetTimer()
	e.Run()
}

// BenchmarkProcPingPong measures the engine<->proc context-switch cost:
// each round trip is two wakes (and two parks) through real goroutine
// handoffs — the overhead an event-callback fast path would eliminate.
func BenchmarkProcPingPong(b *testing.B) {
	e := NewEngine(1)
	ping, pong := NewChan[int](e), NewChan[int](e)
	e.Spawn("ping", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			ping.Send(i)
			pong.Recv(p)
		}
	})
	e.Spawn("pong", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			ping.Recv(p)
			pong.Send(i)
		}
	})
	b.ResetTimer()
	e.Run()
}

// BenchmarkHeapPushPopDepth measures one schedule+fire while the event
// heap holds ~10k pending timers — the regime a 10k-node simulation
// lives in, where heap depth sets the per-event log factor.
func BenchmarkHeapPushPopDepth(b *testing.B) {
	e := NewEngine(1)
	for i := 0; i < 10_000; i++ {
		e.Schedule(time.Hour+time.Duration(i)*time.Second, func() {})
	}
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.Schedule(time.Microsecond, tick)
		} else {
			// Stop instead of draining: the 10k-deep backlog must stay in
			// the heap for the whole measurement.
			e.Stop()
		}
	}
	e.Schedule(time.Microsecond, tick)
	b.ResetTimer()
	e.Run()
	b.StopTimer()
	e.Shutdown()
}
