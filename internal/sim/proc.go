package sim

import (
	"math/rand"
	"time"
)

type procState int

const (
	pStart  procState = iota // spawn event pending
	pActive                  // currently executing
	pParked                  // blocked awaiting a wake
	pDead                    // exited or killed
)

// Proc is a simulated process: a goroutine that runs exclusively and
// blocks only through the primitives on this type. All methods must be
// called from the proc's own goroutine unless documented otherwise.
type Proc struct {
	e     *Engine
	id    uint64
	name  string
	state procState
	gen   uint64 // park generation; stale wakes are dropped
	wakes chan wake
	rng   *rand.Rand

	killed   bool
	spawnEv  *Event
	OnKilled func() // optional cleanup, runs in proc context during unwind
}

type wake struct {
	gen     uint64
	val     any
	timeout bool
	killed  bool
}

// killedSignal unwinds a killed proc's stack.
type killedSignal struct{ p *Proc }

// Spawn starts fn as a new proc at the current instant.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.SpawnAfter(0, name, fn)
}

// SpawnAfter starts fn as a new proc after delay d.
func (e *Engine) SpawnAfter(d time.Duration, name string, fn func(p *Proc)) *Proc {
	e.procSeq++
	p := &Proc{
		e:     e,
		id:    e.procSeq,
		name:  name,
		state: pStart,
		wakes: make(chan wake),
		rng:   e.NewRand(),
	}
	e.procs[p] = struct{}{}
	if st := e.stats; st != nil && len(e.procs) > st.PeakProcs {
		st.PeakProcs = len(e.procs)
	}
	p.spawnEv = e.Schedule(d, func() {
		if p.state != pStart {
			return
		}
		p.state = pActive
		e.tracef("%v start %s", e.now, p.name)
		if st := e.stats; st != nil {
			st.Spawns++
			st.Switches++
			st.tag(e.curTag).Switches++
		}
		go p.run(fn)
		<-e.ctl
	})
	return p
}

// Spawn starts a child proc; a convenience mirror of Engine.Spawn.
func (p *Proc) Spawn(name string, fn func(p *Proc)) *Proc {
	return p.e.Spawn(name, fn)
}

func (p *Proc) run(fn func(p *Proc)) {
	defer func() {
		if r := recover(); r != nil {
			if ks, ok := r.(killedSignal); ok && ks.p == p {
				if p.OnKilled != nil {
					p.OnKilled()
				}
			} else {
				p.e.failure = r
			}
		}
		p.state = pDead
		delete(p.e.procs, p)
		p.e.tracef("%v exit %s", p.e.now, p.name)
		p.e.ctl <- struct{}{}
	}()
	fn(p)
}

// Engine returns the owning engine.
func (p *Proc) Engine() *Engine { return p.e }

// Name returns the proc's debug name.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.e.now }

// Rand returns this proc's private random stream.
func (p *Proc) Rand() *rand.Rand { return p.rng }

// Killed reports whether the proc has been killed (observable from
// engine context; a killed proc itself unwinds before it could ask).
func (p *Proc) Killed() bool { return p.killed }

// nextGen starts a new park generation. Wake sources created afterward
// carry this generation; anything older is stale.
func (p *Proc) nextGen() uint64 {
	p.gen++
	return p.gen
}

// park yields to the engine and blocks until a wake arrives. It panics
// with killedSignal if the proc was killed.
func (p *Proc) park() wake {
	p.state = pParked
	p.e.tracef("%v park %s", p.e.now, p.name)
	p.e.ctl <- struct{}{}
	w := <-p.wakes
	if w.killed {
		panic(killedSignal{p})
	}
	return w
}

// deliver hands a wake to a parked proc and runs it until its next
// yield. It must be called from engine context only. It reports whether
// the wake was accepted (false if stale or the proc is gone).
func (p *Proc) deliver(w wake) bool {
	if p.state != pParked || (!w.killed && w.gen != p.gen) {
		if st := p.e.stats; st != nil {
			st.StaleWakes++
		}
		return false
	}
	p.state = pActive
	p.e.tracef("%v wake %s", p.e.now, p.name)
	if st := p.e.stats; st != nil {
		st.Switches++
		st.Wakes++
		st.tag(p.e.curTag).Switches++
	}
	p.wakes <- w
	<-p.e.ctl
	return true
}

// Sleep suspends the proc for d of virtual time.
func (p *Proc) Sleep(d time.Duration) {
	p.checkKilled()
	g := p.nextGen()
	p.e.Schedule(d, func() { p.deliver(wake{gen: g}) })
	p.park()
}

// Yield lets all other currently-runnable work proceed before resuming.
func (p *Proc) Yield() { p.Sleep(0) }

func (p *Proc) checkKilled() {
	if p.killed {
		panic(killedSignal{p})
	}
}

// Kill terminates the proc: immediately if it has not started, at its
// next blocking point if it is parked. Safe to call from any proc or
// engine context, including on an already-dead proc.
func (p *Proc) Kill() {
	if p.state == pDead || p.killed {
		return
	}
	p.killed = true
	if st := p.e.stats; st != nil {
		st.Kills++
	}
	switch p.state {
	case pStart:
		p.spawnEv.Stop()
		p.state = pDead
		delete(p.e.procs, p)
	case pParked, pActive:
		// pActive means self-kill or kill from another proc that will
		// yield before we park; the killed flag plus a nudge covers both.
		p.e.Schedule(0, func() { p.deliver(wake{killed: true}) })
	}
}
