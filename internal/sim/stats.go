package sim

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Stats is the kernel's opt-in performance collector. Enable it with
// Engine.EnableStats before running; all fields are maintained by the
// engine strictly outside the virtual timeline — a seeded run replays
// byte-identically with stats on or off, the same invariant the obs
// layer pins for live instrumentation. Wall-clock fields (WallNS and
// TagStats.WallNS) come from the host clock and vary run to run; every
// other field is a pure function of the seed and workload.
type Stats struct {
	EventsScheduled int64 // Schedule calls
	EventsFired     int64 // events whose handler ran
	EventsStopped   int64 // events cancelled before firing
	Switches        int64 // engine<->proc control transfers (spawns + wakes)
	Spawns          int64 // proc goroutines started
	Kills           int64 // procs killed before natural exit
	Wakes           int64 // wake deliveries accepted by a parked proc
	StaleWakes      int64 // wake deliveries rejected (stale generation or dead proc)
	PeakQueue       int   // deepest the event heap got
	PeakProcs       int   // most live procs registered at once
	WallNS          int64 // host ns spent inside Run/RunUntil
	VirtNS          int64 // virtual ns the clock advanced while measured

	// ByTag attributes events and switches to the subsystem that
	// scheduled them (see Engine.Tagged and simnet's layer classifier).
	ByTag map[string]*TagStats
}

// TagStats is one attribution bucket.
type TagStats struct {
	Scheduled int64 // events scheduled under this tag
	Fired     int64 // events fired under this tag
	Switches  int64 // proc control transfers during those firings
	WallNS    int64 // host ns spent firing them (handler + proc time)
}

// untagged is the bucket for events scheduled outside any Tagged scope.
const untagged = "untagged"

// tag returns the bucket for name, creating it on first use.
func (s *Stats) tag(name string) *TagStats {
	if name == "" {
		name = untagged
	}
	t := s.ByTag[name]
	if t == nil {
		t = &TagStats{}
		s.ByTag[name] = t
	}
	return t
}

// EventsPerSec is fired events per wall-clock second.
func (s *Stats) EventsPerSec() float64 {
	if s.WallNS == 0 {
		return 0
	}
	return float64(s.EventsFired) / (float64(s.WallNS) / 1e9)
}

// WallPerVirtSec is host seconds burned per simulated second — the
// number a scale refactor must drive down.
func (s *Stats) WallPerVirtSec() float64 {
	if s.VirtNS == 0 {
		return 0
	}
	return float64(s.WallNS) / float64(s.VirtNS)
}

// SwitchesPerEvent is goroutine control transfers per fired event —
// the coroutine-parking overhead an event-callback fast path would
// eliminate.
func (s *Stats) SwitchesPerEvent() float64 {
	if s.EventsFired == 0 {
		return 0
	}
	return float64(s.Switches) / float64(s.EventsFired)
}

// TagRank is one row of the per-layer ranking.
type TagRank struct {
	Tag string
	TagStats
}

// RankedTags returns the attribution buckets sorted by fired events
// (descending), ties broken by name for stable output.
func (s *Stats) RankedTags() []TagRank {
	out := make([]TagRank, 0, len(s.ByTag))
	for name, t := range s.ByTag {
		out = append(out, TagRank{Tag: name, TagStats: *t})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Fired != out[j].Fired {
			return out[i].Fired > out[j].Fired
		}
		return out[i].Tag < out[j].Tag
	})
	return out
}

// TopTag names the subsystem that fired the most events ("" when no
// tagged events fired).
func (s *Stats) TopTag() string {
	ranked := s.RankedTags()
	if len(ranked) == 0 {
		return ""
	}
	return ranked[0].Tag
}

// Report renders the collector as an aligned human-readable block —
// what gridsim -simstats prints after every run.
func (s *Stats) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sim kernel: %d events fired (%d scheduled, %d stopped), %d switches (%.2f/event)\n",
		s.EventsFired, s.EventsScheduled, s.EventsStopped, s.Switches, s.SwitchesPerEvent())
	fmt.Fprintf(&b, "  procs: %d spawned, %d killed, %d wakes (%d stale), peak %d live\n",
		s.Spawns, s.Kills, s.Wakes, s.StaleWakes, s.PeakProcs)
	fmt.Fprintf(&b, "  queue: peak depth %d\n", s.PeakQueue)
	fmt.Fprintf(&b, "  wall: %v for %v virtual (%.3f wall-s/sim-s), %.0f events/s\n",
		time.Duration(s.WallNS).Round(time.Millisecond),
		time.Duration(s.VirtNS).Round(time.Millisecond),
		s.WallPerVirtSec(), s.EventsPerSec())
	ranked := s.RankedTags()
	if len(ranked) > 0 {
		fmt.Fprintf(&b, "  %-12s %10s %10s %10s %10s\n", "layer", "scheduled", "fired", "switches", "wall")
		for _, r := range ranked {
			fmt.Fprintf(&b, "  %-12s %10d %10d %10d %10v\n",
				r.Tag, r.Scheduled, r.Fired, r.Switches, time.Duration(r.WallNS).Round(time.Millisecond))
		}
	}
	return b.String()
}
