package sim

import "time"

// Chan is an unbounded FIFO queue connecting procs. Send never blocks
// and is callable from proc or engine context; Recv blocks the calling
// proc until a value arrives. Values are delivered in send order to
// receivers in arrival order.
type Chan[T any] struct {
	e       *Engine
	buf     []T
	waiters []chanWaiter
	kicked  bool
}

type chanWaiter struct {
	p   *Proc
	gen uint64
}

// NewChan returns an empty channel bound to engine e.
func NewChan[T any](e *Engine) *Chan[T] {
	return &Chan[T]{e: e}
}

// Len returns the number of buffered (undelivered) values.
func (c *Chan[T]) Len() int { return len(c.buf) }

// Send enqueues v and wakes a waiting receiver, if any.
func (c *Chan[T]) Send(v T) {
	c.buf = append(c.buf, v)
	c.kick()
}

// kick schedules a matching pass between buffered values and live
// waiters. Matching happens in engine context because waking a proc
// transfers control.
func (c *Chan[T]) kick() {
	if c.kicked || len(c.waiters) == 0 {
		return
	}
	c.kicked = true
	c.e.Schedule(0, func() {
		c.kicked = false
		for len(c.buf) > 0 && len(c.waiters) > 0 {
			w := c.waiters[0]
			c.waiters = c.waiters[1:]
			// Pop before delivering: the woken proc runs inside deliver and
			// may re-enter Recv/TryRecv, so the value must already be out of
			// the buffer or it would be taken twice.
			v := c.buf[0]
			c.buf = c.buf[1:]
			if !w.p.deliver(wake{gen: w.gen, val: v}) {
				// Stale waiter: the value goes back to the head for the next
				// match.
				c.buf = append([]T{v}, c.buf...)
			}
		}
	})
}

// TryRecv returns a buffered value without blocking. It reports false
// when the channel is empty or other receivers are already queued.
func (c *Chan[T]) TryRecv() (T, bool) {
	var zero T
	if len(c.buf) == 0 || len(c.waiters) > 0 {
		return zero, false
	}
	v := c.buf[0]
	c.buf = c.buf[1:]
	return v, true
}

// Recv blocks p until a value is available and returns it.
func (c *Chan[T]) Recv(p *Proc) T {
	p.checkKilled()
	if v, ok := c.TryRecv(); ok {
		return v
	}
	g := p.nextGen()
	c.waiters = append(c.waiters, chanWaiter{p, g})
	c.kick()
	w := p.park()
	return w.val.(T)
}

// RecvTimeout is Recv with a deadline; ok is false on timeout.
func (c *Chan[T]) RecvTimeout(p *Proc, d time.Duration) (v T, ok bool) {
	p.checkKilled()
	if v, ok := c.TryRecv(); ok {
		return v, true
	}
	g := p.nextGen()
	c.waiters = append(c.waiters, chanWaiter{p, g})
	c.kick()
	timer := c.e.Schedule(d, func() {
		if p.deliver(wake{gen: g, timeout: true}) {
			c.removeWaiter(p, g)
		}
	})
	w := p.park()
	if w.timeout {
		var zero T
		return zero, false
	}
	timer.Stop()
	return w.val.(T), true
}

func (c *Chan[T]) removeWaiter(p *Proc, gen uint64) {
	for i, w := range c.waiters {
		if w.p == p && w.gen == gen {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			return
		}
	}
}
