package sim

import (
	"testing"
	"time"
)

func TestClockAdvancesThroughSleep(t *testing.T) {
	e := NewEngine(1)
	var wokeAt Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * time.Second)
		wokeAt = p.Now()
	})
	e.Run()
	if wokeAt != Time(5*time.Second) {
		t.Fatalf("woke at %v, want 5s", wokeAt)
	}
	if e.Now() != Time(5*time.Second) {
		t.Fatalf("engine now %v, want 5s", e.Now())
	}
}

func TestEventOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.Schedule(3*time.Second, func() { order = append(order, 3) })
	e.Schedule(1*time.Second, func() { order = append(order, 1) })
	e.Schedule(2*time.Second, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestSimultaneousEventsFireInScheduleOrder(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestEventStop(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.Schedule(time.Second, func() { fired = true })
	ev.Stop()
	e.Run()
	if fired {
		t.Fatal("stopped event fired")
	}
}

func TestRunUntilPausesAndResumes(t *testing.T) {
	e := NewEngine(1)
	var ticks []Time
	e.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 4; i++ {
			p.Sleep(time.Second)
			ticks = append(ticks, p.Now())
		}
	})
	e.RunUntil(Time(2 * time.Second))
	if len(ticks) != 2 {
		t.Fatalf("after RunUntil(2s): %d ticks", len(ticks))
	}
	if e.Now() != Time(2*time.Second) {
		t.Fatalf("now = %v", e.Now())
	}
	e.Run()
	if len(ticks) != 4 {
		t.Fatalf("after Run: %d ticks", len(ticks))
	}
}

func TestSpawnAfter(t *testing.T) {
	e := NewEngine(1)
	var started Time = -1
	e.SpawnAfter(7*time.Second, "late", func(p *Proc) { started = p.Now() })
	e.Run()
	if started != Time(7*time.Second) {
		t.Fatalf("started at %v", started)
	}
}

func TestInterleavedProcsDeterministic(t *testing.T) {
	run := func() []string {
		e := NewEngine(42)
		var log []string
		for i := 0; i < 5; i++ {
			name := string(rune('a' + i))
			e.Spawn(name, func(p *Proc) {
				for j := 0; j < 3; j++ {
					p.Sleep(time.Duration(p.Rand().Intn(1000)) * time.Millisecond)
					log = append(log, name)
				}
			})
		}
		e.Run()
		return log
	}
	a, b := run(), run()
	if len(a) != 15 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, a, b)
		}
	}
}

func TestChanSendThenRecv(t *testing.T) {
	e := NewEngine(1)
	c := NewChan[int](e)
	c.Send(1)
	c.Send(2)
	var got []int
	e.Spawn("rx", func(p *Proc) {
		got = append(got, c.Recv(p), c.Recv(p))
	})
	e.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestChanRecvBlocksUntilSend(t *testing.T) {
	e := NewEngine(1)
	c := NewChan[string](e)
	var got string
	var at Time
	e.Spawn("rx", func(p *Proc) {
		got = c.Recv(p)
		at = p.Now()
	})
	e.Spawn("tx", func(p *Proc) {
		p.Sleep(3 * time.Second)
		c.Send("hello")
	})
	e.Run()
	if got != "hello" || at != Time(3*time.Second) {
		t.Fatalf("got %q at %v", got, at)
	}
}

func TestChanFIFOAcrossReceivers(t *testing.T) {
	e := NewEngine(1)
	c := NewChan[int](e)
	var got []int
	for i := 0; i < 3; i++ {
		e.Spawn("rx", func(p *Proc) { got = append(got, c.Recv(p)) })
	}
	e.Spawn("tx", func(p *Proc) {
		p.Sleep(time.Second)
		for i := 1; i <= 3; i++ {
			c.Send(i * 10)
		}
	})
	e.Run()
	if len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Fatalf("got %v", got)
	}
}

func TestChanRecvTimeout(t *testing.T) {
	e := NewEngine(1)
	c := NewChan[int](e)
	var ok bool
	var at Time
	e.Spawn("rx", func(p *Proc) {
		_, ok = c.RecvTimeout(p, 2*time.Second)
		at = p.Now()
	})
	e.Run()
	if ok || at != Time(2*time.Second) {
		t.Fatalf("ok=%v at=%v", ok, at)
	}
}

func TestChanRecvTimeoutValueWins(t *testing.T) {
	e := NewEngine(1)
	c := NewChan[int](e)
	var v int
	var ok bool
	e.Spawn("rx", func(p *Proc) { v, ok = c.RecvTimeout(p, 5*time.Second) })
	e.Spawn("tx", func(p *Proc) {
		p.Sleep(time.Second)
		c.Send(99)
	})
	e.Run()
	if !ok || v != 99 {
		t.Fatalf("v=%d ok=%v", v, ok)
	}
}

func TestChanTimeoutDoesNotEatLaterValue(t *testing.T) {
	// A receiver that timed out must not consume a value sent later;
	// the next receiver must get it.
	e := NewEngine(1)
	c := NewChan[int](e)
	var v int
	e.Spawn("rx1", func(p *Proc) {
		if _, ok := c.RecvTimeout(p, time.Second); ok {
			t.Error("rx1 should have timed out")
		}
	})
	e.Spawn("tx", func(p *Proc) {
		p.Sleep(2 * time.Second)
		c.Send(7)
	})
	e.SpawnAfter(90*time.Second, "rx2", func(p *Proc) { v = c.Recv(p) })
	e.Run()
	if v != 7 {
		t.Fatalf("rx2 got %d, want 7", v)
	}
}

func TestTryRecv(t *testing.T) {
	e := NewEngine(1)
	c := NewChan[int](e)
	if _, ok := c.TryRecv(); ok {
		t.Fatal("TryRecv on empty chan succeeded")
	}
	c.Send(5)
	if v, ok := c.TryRecv(); !ok || v != 5 {
		t.Fatalf("TryRecv = %d,%v", v, ok)
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestKillParkedProc(t *testing.T) {
	e := NewEngine(1)
	c := NewChan[int](e)
	reachedEnd := false
	cleaned := false
	var p *Proc
	p = e.Spawn("victim", func(pp *Proc) {
		pp.OnKilled = func() { cleaned = true }
		c.Recv(pp)
		reachedEnd = true
	})
	e.Spawn("killer", func(pp *Proc) {
		pp.Sleep(time.Second)
		p.Kill()
	})
	e.Run()
	if reachedEnd {
		t.Fatal("killed proc continued")
	}
	if !cleaned {
		t.Fatal("OnKilled not run")
	}
	if len(e.procs) != 0 {
		t.Fatalf("%d procs leaked", len(e.procs))
	}
}

func TestKillBeforeStart(t *testing.T) {
	e := NewEngine(1)
	started := false
	p := e.SpawnAfter(time.Second, "never", func(*Proc) { started = true })
	p.Kill()
	e.Run()
	if started {
		t.Fatal("killed-before-start proc ran")
	}
}

func TestKillIdempotent(t *testing.T) {
	e := NewEngine(1)
	p := e.Spawn("x", func(p *Proc) { p.Sleep(time.Hour) })
	e.Schedule(time.Second, func() { p.Kill(); p.Kill() })
	e.Run()
	if len(e.procs) != 0 {
		t.Fatal("proc leaked")
	}
}

func TestKilledProcSleepUnwinds(t *testing.T) {
	e := NewEngine(1)
	var last Time
	p := e.Spawn("loop", func(p *Proc) {
		for {
			p.Sleep(time.Second)
			last = p.Now()
		}
	})
	e.Schedule(3500*time.Millisecond, func() { p.Kill() })
	e.Run()
	if last != Time(3*time.Second) {
		t.Fatalf("last tick %v, want 3s", last)
	}
}

func TestProcPanicPropagates(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("boom", func(p *Proc) {
		p.Sleep(time.Second)
		panic("kaboom")
	})
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic did not propagate to Run")
		}
	}()
	e.Run()
}

func TestShutdownKillsParked(t *testing.T) {
	e := NewEngine(1)
	c := NewChan[int](e)
	for i := 0; i < 3; i++ {
		e.Spawn("waiter", func(p *Proc) { c.Recv(p) })
	}
	e.Run()
	if e.Parked() != 3 {
		t.Fatalf("parked = %d", e.Parked())
	}
	e.Shutdown()
	if len(e.procs) != 0 {
		t.Fatalf("%d procs after shutdown", len(e.procs))
	}
}

func TestYield(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	e.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
	})
	e.Run()
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestNewRandStreamsIndependent(t *testing.T) {
	e := NewEngine(7)
	r1, r2 := e.NewRand(), e.NewRand()
	same := true
	for i := 0; i < 10; i++ {
		if r1.Int63() != r2.Int63() {
			same = false
		}
	}
	if same {
		t.Fatal("derived streams identical")
	}
}

func TestTimeHelpers(t *testing.T) {
	tm := Time(0).Add(1500 * time.Millisecond)
	if tm.Seconds() != 1.5 {
		t.Fatalf("Seconds = %v", tm.Seconds())
	}
	if tm.Sub(Time(time.Second)) != 500*time.Millisecond {
		t.Fatal("Sub wrong")
	}
	if tm.String() != "1.5s" {
		t.Fatalf("String = %q", tm.String())
	}
}

func TestPendingCount(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(time.Second, func() {})
	ev := e.Schedule(time.Second, func() {})
	ev.Stop()
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d", e.Pending())
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine(1)
	n := 0
	e.Spawn("loop", func(p *Proc) {
		for {
			p.Sleep(time.Second)
			n++
			if n == 5 {
				e.Stop()
			}
		}
	})
	e.Run()
	if n != 5 {
		t.Fatalf("n = %d", n)
	}
	e.Shutdown()
}

func TestManyProcsStress(t *testing.T) {
	e := NewEngine(3)
	const N = 500
	done := 0
	for i := 0; i < N; i++ {
		e.Spawn("w", func(p *Proc) {
			for j := 0; j < 20; j++ {
				p.Sleep(time.Duration(p.Rand().Intn(100)) * time.Millisecond)
			}
			done++
		})
	}
	e.Run()
	if done != N {
		t.Fatalf("done = %d", done)
	}
}
