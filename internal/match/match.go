// Package match provides the grid.Matchmaker and grid.Overlay
// implementations compared in the paper's evaluation:
//
//   - RNTree: matchmaking via the Rendezvous Node Tree over Chord
//     (Section 3.1), with the limited random walk and extended search.
//   - CAN and CANPush: matchmaking in the Content-Addressable Network
//     (Section 3.2), without and with load-based pushing.
//   - Central: the omniscient least-loaded baseline the paper uses as
//     its load-balance target.
//   - TTL: the related-work TTL-bounded search baseline that can miss
//     existing capable nodes.
//   - Random: an omniscient random-capable baseline (sanity floor).
package match

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/can"
	"repro/internal/chord"
	"repro/internal/grid"
	"repro/internal/ids"
	"repro/internal/resource"
	"repro/internal/rntree"
	"repro/internal/transport"
)

// --- RN-Tree ---

// RNTree adapts an rntree.Node to grid.Matchmaker.
type RNTree struct {
	RN *rntree.Node
	// K is the extended-search candidate target (0 = the node default).
	K int
}

// FindRunNode implements grid.Matchmaker: search the tree for
// candidates and pick the least loaded that is not excluded.
func (m *RNTree) FindRunNode(rt transport.Runtime, cons resource.Constraints, exclude []transport.Addr) (transport.Addr, grid.MatchStats, error) {
	k := m.K
	if k <= 0 {
		k = 4
	}
	cands, st, err := m.RN.FindCandidates(rt, cons, k+len(exclude))
	stats := grid.MatchStats{
		Hops:        st.RPCs,
		Visits:      st.Visits,
		Escalations: st.Escalations,
		WalkHops:    st.WalkHops,
	}
	if err != nil {
		return "", stats, err
	}
	best := rntree.Candidate{}
	found := false
	for _, c := range cands {
		if addrIn(exclude, c.Ref.Addr) {
			continue
		}
		if !found || c.Load < best.Load || (c.Load == best.Load && c.Ref.Addr < best.Ref.Addr) {
			best, found = c, true
		}
	}
	if !found {
		return "", stats, fmt.Errorf("rntree: all %d candidates excluded", len(cands))
	}
	return best.Ref.Addr, stats, nil
}

// --- CAN ---

// CAN adapts a can.Node to grid.Matchmaker. Push selects the improved
// load-pushing variant.
type CAN struct {
	CN   *can.Node
	Push bool
}

// FindRunNode implements grid.Matchmaker.
func (m *CAN) FindRunNode(rt transport.Runtime, cons resource.Constraints, exclude []transport.Addr) (transport.Addr, grid.MatchStats, error) {
	run, st, err := m.CN.FindRunNode(rt, cons, exclude, m.Push)
	stats := grid.MatchStats{Hops: st.Hops, Pushes: st.Pushes, Visits: st.Visits}
	if err != nil {
		return "", stats, err
	}
	return run.Addr, stats, nil
}

// --- Centralized baseline ---

// Registry is the omniscient global view of node state that the
// centralized baseline consults. It stands in for the paper's
// "centralized scheme that uses knowledge of the status of all nodes
// and jobs", which "would be very expensive to implement in a
// decentralized P2P system".
type Registry struct {
	mu      sync.Mutex
	entries map[transport.Addr]*RegistryEntry
}

// RegistryEntry describes one node to the registry.
type RegistryEntry struct {
	Caps resource.Vector
	OS   string
	Load func() int
	Up   func() bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[transport.Addr]*RegistryEntry)}
}

// Register adds or replaces a node's entry.
func (r *Registry) Register(addr transport.Addr, e RegistryEntry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries[addr] = &e
}

// Snapshot returns the live entries, sorted by address.
func (r *Registry) Snapshot() []struct {
	Addr  transport.Addr
	Entry RegistryEntry
} {
	r.mu.Lock()
	defer r.mu.Unlock()
	addrs := make([]transport.Addr, 0, len(r.entries))
	for a := range r.entries {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	out := make([]struct {
		Addr  transport.Addr
		Entry RegistryEntry
	}, 0, len(addrs))
	for _, a := range addrs {
		out = append(out, struct {
			Addr  transport.Addr
			Entry RegistryEntry
		}{a, *r.entries[a]})
	}
	return out
}

// Central is the omniscient least-loaded matchmaker.
type Central struct {
	Reg *Registry
}

// FindRunNode implements grid.Matchmaker: scan the global view for the
// least-loaded live nodes satisfying the constraints, breaking ties
// uniformly at random (deterministic tie-breaking would pile work onto
// the alphabetically-first idle node).
func (m *Central) FindRunNode(rt transport.Runtime, cons resource.Constraints, exclude []transport.Addr) (transport.Addr, grid.MatchStats, error) {
	var best []transport.Addr
	bestLoad := 0
	for _, e := range m.Reg.Snapshot() {
		if addrIn(exclude, e.Addr) || !e.Entry.Up() {
			continue
		}
		if !cons.SatisfiedBy(e.Entry.Caps, e.Entry.OS) {
			continue
		}
		load := e.Entry.Load()
		switch {
		case len(best) == 0 || load < bestLoad:
			best, bestLoad = []transport.Addr{e.Addr}, load
		case load == bestLoad:
			best = append(best, e.Addr)
		}
	}
	if len(best) == 0 {
		return "", grid.MatchStats{}, fmt.Errorf("central: no satisfying node for %s", cons)
	}
	return best[rt.Rand().Intn(len(best))], grid.MatchStats{}, nil
}

// Random is an omniscient baseline that picks a uniformly random
// satisfying node, ignoring load.
type Random struct {
	Reg *Registry
}

// FindRunNode implements grid.Matchmaker.
func (m *Random) FindRunNode(rt transport.Runtime, cons resource.Constraints, exclude []transport.Addr) (transport.Addr, grid.MatchStats, error) {
	var ok []transport.Addr
	for _, e := range m.Reg.Snapshot() {
		if addrIn(exclude, e.Addr) || !e.Entry.Up() {
			continue
		}
		if cons.SatisfiedBy(e.Entry.Caps, e.Entry.OS) {
			ok = append(ok, e.Addr)
		}
	}
	if len(ok) == 0 {
		return "", grid.MatchStats{}, fmt.Errorf("random: no satisfying node for %s", cons)
	}
	return ok[rt.Rand().Intn(len(ok))], grid.MatchStats{}, nil
}

// --- overlays ---

// ChordOverlay routes jobs by GUID through Chord; with Walk set it
// appends the RN-Tree's limited random walk after the initial mapping,
// exactly as Section 3.1 describes.
type ChordOverlay struct {
	Chord *chord.Node
	Walk  *rntree.Node
}

// RouteJob implements grid.Overlay.
func (o *ChordOverlay) RouteJob(rt transport.Runtime, jobID ids.ID, cons resource.Constraints) (transport.Addr, int, error) {
	owner, hops, err := o.Chord.Lookup(rt, jobID)
	if err != nil {
		return "", hops, err
	}
	if o.Walk != nil {
		end, walkHops := o.Walk.RandomWalkFrom(rt, owner)
		return end.Addr, hops + walkHops, nil
	}
	return owner.Addr, hops, nil
}

// CANOverlay routes jobs to the zone containing their requirement
// coordinates (plus virtual coordinate).
type CANOverlay struct {
	CAN *can.Node
}

// RouteJob implements grid.Overlay.
func (o *CANOverlay) RouteJob(rt transport.Runtime, jobID ids.ID, cons resource.Constraints) (transport.Addr, int, error) {
	pt := o.CAN.JobPoint(jobID, cons)
	owner, hops, err := o.CAN.Route(rt, pt)
	if err != nil {
		return "", hops, err
	}
	return owner.Addr, hops, nil
}

// StaticOverlay routes every job to one fixed owner (unit tests and
// single-server deployments).
type StaticOverlay struct {
	Owner transport.Addr
}

// RouteJob implements grid.Overlay.
func (o *StaticOverlay) RouteJob(transport.Runtime, ids.ID, resource.Constraints) (transport.Addr, int, error) {
	return o.Owner, 0, nil
}

func addrIn(list []transport.Addr, a transport.Addr) bool {
	for _, x := range list {
		if x == a {
			return true
		}
	}
	return false
}
