package match

import (
	"repro/internal/grid"
	"repro/internal/resource"
	"repro/internal/transport"
	"repro/internal/trust"
)

// Trusted wraps any grid.Matchmaker with the owner's local reputation
// table: blacklisted peers are excluded outright, and a candidate whose
// score has sunk below the neutral starting score triggers one retry in
// the hope of a better-reputed alternative. It composes with every
// algorithm in this package — reputation filters the candidate set, the
// wrapped matchmaker still decides placement.
type Trusted struct {
	Inner grid.Matchmaker
	Table *trust.Table
}

// FindRunNode implements grid.Matchmaker.
func (m *Trusted) FindRunNode(rt transport.Runtime, cons resource.Constraints, exclude []transport.Addr) (transport.Addr, grid.MatchStats, error) {
	if m.Table != nil {
		exclude = append(append([]transport.Addr(nil), exclude...), m.Table.BlacklistedPeers()...)
	}
	run, stats, err := m.Inner.FindRunNode(rt, cons, exclude)
	if err != nil || m.Table == nil {
		return run, stats, err
	}
	score := m.Table.Score(run)
	if score >= m.Table.InitialScore() {
		return run, stats, nil
	}
	// Suspect (below neutral, not yet blacklisted): look once for a
	// better-reputed alternative, keeping the suspect as fallback.
	alt, altStats, altErr := m.Inner.FindRunNode(rt, cons, append(exclude, run))
	stats.Hops += altStats.Hops
	stats.Visits += altStats.Visits
	stats.Pushes += altStats.Pushes
	stats.Escalations += altStats.Escalations
	stats.WalkHops += altStats.WalkHops
	if altErr == nil && m.Table.Score(alt) > score {
		return alt, stats, nil
	}
	return run, stats, nil
}
