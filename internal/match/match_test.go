package match_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/chord"
	"repro/internal/grid"
	"repro/internal/ids"
	"repro/internal/match"
	"repro/internal/resource"
	"repro/internal/rntree"
	"repro/internal/sim"
	"repro/internal/simhost"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/trust"
)

// rig wires a Chord+RN-Tree overlay for matchmaker integration tests.
type rig struct {
	e     *sim.Engine
	hosts []*simhost.Host
	chs   []*chord.Node
	rns   []*rntree.Node
	loads []int
}

func newRig(t *testing.T, n int, seed int64, caps func(i int) resource.Vector) *rig {
	t.Helper()
	e := sim.NewEngine(seed)
	net := simnet.New(e)
	net.Latency = simnet.FixedLatency(10 * time.Millisecond)
	r := &rig{e: e, loads: make([]int, n)}
	for i := 0; i < n; i++ {
		h := simhost.New(net.NewEndpoint(simnet.Addr(fmt.Sprintf("n%03d", i))))
		ch := chord.New(h, chord.Config{})
		rn := rntree.New(h, ch, caps(i), "linux", rntree.Config{})
		i := i
		rn.SetLoadFn(func() int { return r.loads[i] })
		r.hosts = append(r.hosts, h)
		r.chs = append(r.chs, ch)
		r.rns = append(r.rns, rn)
	}
	chord.WarmStart(r.chs)
	rntree.WarmStart(r.rns, 0)
	return r
}

func (r *rig) do(i int, fn func(rt transport.Runtime)) {
	done := false
	r.hosts[i].Go("test", func(rt transport.Runtime) {
		defer func() { done = true }()
		fn(rt)
	})
	for !done {
		r.e.RunFor(time.Second)
	}
}

func TestRNTreeMatchmakerPicksLeastLoaded(t *testing.T) {
	r := newRig(t, 24, 1, func(i int) resource.Vector { return resource.Vector{5, 1024, 50} })
	defer r.e.Shutdown()
	for i := range r.loads {
		r.loads[i] = 10
	}
	r.loads[7] = 0
	// Refresh aggregates to reflect loads.
	rntree.WarmStart(r.rns, 0)
	m := &match.RNTree{RN: r.rns[3], K: 24}
	r.do(3, func(rt transport.Runtime) {
		addr, stats, err := m.FindRunNode(rt, resource.Unconstrained, nil)
		if err != nil {
			t.Fatalf("find: %v", err)
		}
		if addr != r.hosts[7].Addr() {
			t.Fatalf("chose %s (stats %+v), want n007", addr, stats)
		}
	})
}

func TestRNTreeMatchmakerHonorsExclude(t *testing.T) {
	r := newRig(t, 16, 2, func(i int) resource.Vector { return resource.Vector{5, 1024, 50} })
	defer r.e.Shutdown()
	m := &match.RNTree{RN: r.rns[0], K: 4}
	var first transport.Addr
	r.do(0, func(rt transport.Runtime) {
		var err error
		first, _, err = m.FindRunNode(rt, resource.Unconstrained, nil)
		if err != nil {
			t.Fatalf("find: %v", err)
		}
		second, _, err := m.FindRunNode(rt, resource.Unconstrained, []transport.Addr{first})
		if err != nil {
			t.Fatalf("find excluded: %v", err)
		}
		if second == first {
			t.Fatal("excluded node chosen again")
		}
	})
}

func TestChordOverlayRoutesDeterministically(t *testing.T) {
	r := newRig(t, 16, 3, func(i int) resource.Vector { return resource.Vector{5, 1024, 50} })
	defer r.e.Shutdown()
	ov := &match.ChordOverlay{Chord: r.chs[0]} // no walk: pure DHT mapping
	jobID := ids.HashString("routed-job")
	var owners []transport.Addr
	for trial := 0; trial < 3; trial++ {
		r.do(0, func(rt transport.Runtime) {
			owner, hops, err := ov.RouteJob(rt, jobID, resource.Unconstrained)
			if err != nil {
				t.Fatalf("route: %v", err)
			}
			if hops < 0 {
				t.Fatal("negative hops")
			}
			owners = append(owners, owner)
		})
	}
	if owners[0] != owners[1] || owners[1] != owners[2] {
		t.Fatalf("same GUID routed to different owners: %v", owners)
	}
}

func TestChordOverlayWalkSpreadsOwners(t *testing.T) {
	r := newRig(t, 32, 4, func(i int) resource.Vector { return resource.Vector{5, 1024, 50} })
	defer r.e.Shutdown()
	ov := &match.ChordOverlay{Chord: r.chs[0], Walk: r.rns[0]}
	owners := map[transport.Addr]bool{}
	for trial := 0; trial < 20; trial++ {
		jobID := ids.HashString(fmt.Sprintf("walk-job-%d", trial))
		r.do(0, func(rt transport.Runtime) {
			owner, _, err := ov.RouteJob(rt, jobID, resource.Unconstrained)
			if err != nil {
				t.Fatalf("route: %v", err)
			}
			owners[owner] = true
		})
	}
	if len(owners) < 5 {
		t.Fatalf("walk did not spread owners: %d distinct", len(owners))
	}
}

func TestCentralRegistrySnapshotSorted(t *testing.T) {
	reg := match.NewRegistry()
	for _, a := range []transport.Addr{"c", "a", "b"} {
		reg.Register(a, match.RegistryEntry{
			Load: func() int { return 0 },
			Up:   func() bool { return true },
		})
	}
	snap := reg.Snapshot()
	if len(snap) != 3 || snap[0].Addr != "a" || snap[2].Addr != "c" {
		t.Fatalf("snapshot order: %+v", snap)
	}
}

func TestCentralSkipsDownAndUnsatisfying(t *testing.T) {
	reg := match.NewRegistry()
	mk := func(addr transport.Addr, cpu float64, up bool, load int) {
		reg.Register(addr, match.RegistryEntry{
			Caps: resource.Vector{cpu, 1024, 50},
			OS:   "linux",
			Load: func() int { return load },
			Up:   func() bool { return up },
		})
	}
	mk("dead-fast", 10, false, 0)
	mk("slow", 1, true, 0)
	mk("ok", 5, true, 3)
	c := &match.Central{Reg: reg}
	e := sim.NewEngine(1)
	net := simnet.New(e)
	h := simhost.New(net.NewEndpoint("t"))
	done := false
	h.Go("t", func(rt transport.Runtime) {
		defer func() { done = true }()
		addr, _, err := c.FindRunNode(rt, resource.Unconstrained.Require(resource.CPU, 4), nil)
		if err != nil || addr != "ok" {
			t.Errorf("addr=%s err=%v", addr, err)
		}
		// Nothing satisfies cpu>=20.
		if _, _, err := c.FindRunNode(rt, resource.Unconstrained.Require(resource.CPU, 20), nil); err == nil {
			t.Error("impossible constraint satisfied")
		}
		// Excluding the only candidate fails.
		if _, _, err := c.FindRunNode(rt, resource.Unconstrained.Require(resource.CPU, 4), []transport.Addr{"ok"}); err == nil {
			t.Error("excluded-only candidate chosen")
		}
	})
	e.Run()
	if !done {
		t.Fatal("proc did not finish")
	}
	e.Shutdown()
}

func TestTTLFindsCommonMissesRare(t *testing.T) {
	// 48 nodes, budget 6: a common capability is found, a 1-in-48
	// capability usually is not.
	n := 48
	r := newRig(t, n, 5, func(i int) resource.Vector {
		cpu := 5.0
		if i == 37 {
			cpu = 10
		}
		return resource.Vector{cpu, 1024, 50}
	})
	defer r.e.Shutdown()
	// Register probes on every host.
	for i := 0; i < n; i++ {
		i := i
		ch := r.chs[i]
		match.RegisterProbe(r.hosts[i], r.rns[i].Caps(), "linux",
			func() int { return 0 },
			func() []transport.Addr { return chordNeighborAddrs(ch) })
	}
	mkTTL := func(i int) *match.TTL {
		ch := r.chs[i]
		return &match.TTL{
			Self:      r.hosts[i].Addr(),
			Caps:      r.rns[i].Caps(),
			OS:        "linux",
			Load:      func() int { return 0 },
			Neighbors: func() []transport.Addr { return chordNeighborAddrs(ch) },
			Budget:    6,
		}
	}
	common := resource.Unconstrained.Require(resource.CPU, 3)
	rare := resource.Unconstrained.Require(resource.CPU, 9)
	foundCommon, foundRare := 0, 0
	for trial := 0; trial < 10; trial++ {
		src := (trial * 5) % n
		r.do(src, func(rt transport.Runtime) {
			if _, _, err := mkTTL(src).FindRunNode(rt, common, nil); err == nil {
				foundCommon++
			}
			if _, _, err := mkTTL(src).FindRunNode(rt, rare, nil); err == nil {
				foundRare++
			}
		})
	}
	if foundCommon != 10 {
		t.Fatalf("common capability found only %d/10 times", foundCommon)
	}
	if foundRare == 10 {
		t.Fatal("TTL never missed the rare capability — the related-work claim cannot reproduce")
	}
	t.Logf("rare found %d/10 with budget 6", foundRare)
}

func chordNeighborAddrs(ch *chord.Node) []transport.Addr {
	seen := map[transport.Addr]bool{}
	var out []transport.Addr
	for _, f := range ch.FingerTable() {
		if !f.IsZero() && !seen[f.Addr] && f.Addr != ch.Ref().Addr {
			seen[f.Addr] = true
			out = append(out, f.Addr)
		}
	}
	for _, s := range ch.SuccessorList() {
		if !s.IsZero() && !seen[s.Addr] && s.Addr != ch.Ref().Addr {
			seen[s.Addr] = true
			out = append(out, s.Addr)
		}
	}
	return out
}

// scriptedMatcher returns preset candidates in order, recording the
// exclusions it saw.
type scriptedMatcher struct {
	picks    []transport.Addr
	i        int
	excludes [][]transport.Addr
}

func (s *scriptedMatcher) FindRunNode(rt transport.Runtime, cons resource.Constraints, exclude []transport.Addr) (transport.Addr, grid.MatchStats, error) {
	s.excludes = append(s.excludes, append([]transport.Addr(nil), exclude...))
	if s.i >= len(s.picks) {
		return "", grid.MatchStats{}, fmt.Errorf("no candidate")
	}
	p := s.picks[s.i]
	s.i++
	return p, grid.MatchStats{Hops: 1}, nil
}

func TestTrustedExcludesBlacklisted(t *testing.T) {
	tb := trust.New(trust.Config{})
	for i := 0; i < 2; i++ {
		tb.Disagree("bad") // 0.5 -> 0.2 -> 0: blacklisted
	}
	inner := &scriptedMatcher{picks: []transport.Addr{"good"}}
	m := &match.Trusted{Inner: inner, Table: tb}
	run, _, err := m.FindRunNode(nil, resource.Constraints{}, []transport.Addr{"held"})
	if err != nil || run != "good" {
		t.Fatalf("FindRunNode = (%v, %v)", run, err)
	}
	saw := inner.excludes[0]
	if len(saw) != 2 || saw[0] != "held" || saw[1] != "bad" {
		t.Fatalf("inner exclusions = %v, want [held bad]", saw)
	}
}

func TestTrustedRetriesSuspectCandidate(t *testing.T) {
	tb := trust.New(trust.Config{})
	tb.Disagree("shady") // 0.2: below neutral, above blacklist
	inner := &scriptedMatcher{picks: []transport.Addr{"shady", "clean"}}
	m := &match.Trusted{Inner: inner, Table: tb}
	run, stats, err := m.FindRunNode(nil, resource.Constraints{}, nil)
	if err != nil || run != "clean" {
		t.Fatalf("FindRunNode = (%v, %v), want clean", run, err)
	}
	if stats.Hops != 2 {
		t.Fatalf("stats not combined across retry: %+v", stats)
	}
	if got := inner.excludes[1]; len(got) != 1 || got[0] != "shady" {
		t.Fatalf("retry exclusions = %v, want [shady]", got)
	}
}

func TestTrustedKeepsSuspectWhenNoBetter(t *testing.T) {
	tb := trust.New(trust.Config{})
	tb.Disagree("shady")
	inner := &scriptedMatcher{picks: []transport.Addr{"shady"}} // retry fails
	m := &match.Trusted{Inner: inner, Table: tb}
	run, _, err := m.FindRunNode(nil, resource.Constraints{}, nil)
	if err != nil || run != "shady" {
		t.Fatalf("FindRunNode = (%v, %v), want the suspect as fallback", run, err)
	}
}
