package match

import (
	"fmt"
	"sort"

	"repro/internal/grid"
	"repro/internal/resource"
	"repro/internal/transport"
)

// MProbe is the RPC method the TTL baseline uses to inspect a node.
const MProbe = "match.probe"

// ProbeReq asks a node whether it satisfies a job's constraints.
type ProbeReq struct{ Cons resource.Constraints }

// ProbeResp carries the answer plus the node's overlay neighbors, which
// the searching node uses to expand its frontier.
type ProbeResp struct {
	Satisfies bool
	Load      int
	Neighbors []transport.Addr
}

// RegisterProbe installs the probe handler on a host. neighbors must
// return the node's current overlay neighbors (e.g. Chord fingers and
// successors).
func RegisterProbe(host transport.Host, caps resource.Vector, os string, load func() int, neighbors func() []transport.Addr) {
	host.Handle(MProbe, func(rt transport.Runtime, from transport.Addr, req any) (any, error) {
		cons := req.(ProbeReq).Cons
		return ProbeResp{
			Satisfies: cons.SatisfiedBy(caps, os),
			Load:      load(),
			Neighbors: neighbors(),
		}, nil
	})
}

// TTL is the related-work baseline ([Iamnitchi & Foster], [Butt et
// al.]): a TTL-bounded expanding search over overlay neighbors. The
// paper's criticism — "such mechanisms may fail to find a resource
// capable of running a given job, even though such a resource exists
// somewhere in the network" — is exactly what the tab5 experiment
// measures.
type TTL struct {
	// Self is this node's own description (the search starts here).
	Self      transport.Addr
	Caps      resource.Vector
	OS        string
	Load      func() int
	Neighbors func() []transport.Addr
	// Budget is the number of remote probes allowed (default 10).
	Budget int
}

// FindRunNode implements grid.Matchmaker: probe up to Budget nodes
// breadth-first from our neighbors and pick the least-loaded satisfying
// one.
func (m *TTL) FindRunNode(rt transport.Runtime, cons resource.Constraints, exclude []transport.Addr) (transport.Addr, grid.MatchStats, error) {
	budget := m.Budget
	if budget <= 0 {
		budget = 10
	}
	stats := grid.MatchStats{}
	type hit struct {
		addr transport.Addr
		load int
	}
	var hits []hit
	visited := map[transport.Addr]bool{m.Self: true}
	if !addrIn(exclude, m.Self) && cons.SatisfiedBy(m.Caps, m.OS) {
		hits = append(hits, hit{m.Self, m.Load()})
	}
	stats.Visits++

	frontier := append([]transport.Addr(nil), m.Neighbors()...)
	sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
	for len(frontier) > 0 && stats.Hops < budget {
		// Expand a uniformly random frontier node (the classic random
		// TTL walk with branching).
		i := rt.Rand().Intn(len(frontier))
		addr := frontier[i]
		frontier = append(frontier[:i], frontier[i+1:]...)
		if visited[addr] {
			continue
		}
		visited[addr] = true
		raw, err := rt.Call(addr, MProbe, ProbeReq{Cons: cons})
		stats.Hops++
		if err != nil {
			continue
		}
		stats.Visits++
		resp := raw.(ProbeResp)
		if resp.Satisfies && !addrIn(exclude, addr) {
			hits = append(hits, hit{addr, resp.Load})
		}
		for _, nb := range resp.Neighbors {
			if !visited[nb] {
				frontier = append(frontier, nb)
			}
		}
	}
	if len(hits) == 0 {
		return "", stats, fmt.Errorf("ttl: no satisfying node within %d probes for %s", budget, cons)
	}
	best := hits[0]
	for _, h := range hits[1:] {
		if h.load < best.load || (h.load == best.load && h.addr < best.addr) {
			best = h
		}
	}
	return best.addr, stats, nil
}
