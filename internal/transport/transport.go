// Package transport defines the execution and messaging interfaces that
// all protocol code (Chord, CAN, RN-Tree, the grid layer) is written
// against. Two implementations exist: internal/simhost binds protocols
// to the deterministic simulator, and internal/nettransport binds them
// to real TCP sockets. Protocol packages therefore contain no knowledge
// of whether time is virtual or wall-clock.
package transport

import (
	"errors"
	"math/rand"
	"time"
)

// Addr names a host. Under simulation it is a symbolic name ("n042");
// over TCP it is a dialable "host:port".
type Addr string

// Sentinel errors surfaced by Call. Implementations translate their
// native failures into these so protocol code can branch portably.
var (
	ErrTimeout     = errors.New("transport: call timed out")
	ErrUnreachable = errors.New("transport: destination unreachable")
	ErrNoHandler   = errors.New("transport: no handler for method")
	// ErrDown reports a host that is not serving: the local host after
	// Close, or a remote peer that answered a call by declaring itself
	// closed (the live transport's down-peer reply maps here).
	ErrDown = errors.New("transport: host is down")
)

// Transient reports whether err is a delivery-level failure worth
// retrying elsewhere (the peer may be dead, restarting, or partitioned
// away) as opposed to a definitive answer from a live handler. Callers
// use it to classify retry policy: transient errors re-route and
// retry; everything else is the application's to interpret.
func Transient(err error) bool {
	return errors.Is(err, ErrTimeout) || errors.Is(err, ErrUnreachable) || errors.Is(err, ErrDown)
}

// Handler serves one inbound request. It runs in its own execution
// context (a simulated proc or a real goroutine) and may block.
type Handler func(rt Runtime, from Addr, req any) (any, error)

// Host is one node's attachment to the network: a registry of RPC
// handlers plus the ability to start node-scoped activities. When the
// node crashes (simulation) or shuts down (live), its activities stop.
type Host interface {
	Addr() Addr
	Handle(method string, h Handler)
	// Go starts a named node-scoped activity. fn may block.
	Go(name string, fn func(rt Runtime))
	// Up reports whether the host is currently alive.
	Up() bool
}

// Runtime is the execution context handed to every activity and
// handler: a clock, a private random stream, and blocking RPC.
// Methods must be called only from the activity that owns the Runtime.
type Runtime interface {
	// Now returns elapsed time since the epoch of the underlying clock
	// (simulation start or process start).
	Now() time.Duration
	// Sleep suspends the activity.
	Sleep(d time.Duration)
	// Rand returns the activity's private random stream.
	Rand() *rand.Rand
	// Call performs a blocking RPC with the transport's default timeout.
	Call(to Addr, method string, req any) (any, error)
	// CallT performs a blocking RPC with an explicit timeout.
	CallT(to Addr, method string, req any, timeout time.Duration) (any, error)
}

// ChanWaiter is the optional Runtime extension for waiting on an
// ordinary Go channel. Only runtimes whose clock is wall-clock (the
// live transport) implement it: there, parking on a channel wakes the
// waiter exactly when the producer closes it, with no polling.
// Simulated runtimes deliberately do not implement it — a simulated
// proc may suspend only through its Runtime, or the virtual clock
// stalls — so callers must type-assert and fall back to a bounded
// Sleep poll.
type ChanWaiter interface {
	// AwaitChan blocks until ch is closed (or yields a value).
	AwaitChan(ch <-chan struct{})
}
