package pubsub

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/replica"
	"repro/internal/sim"
	"repro/internal/simhost"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// scriptRing is a fully scripted replica.Ring: tests set the successor
// list and per-key ownership directly, standing in for chord.
type scriptRing struct {
	mu    sync.Mutex
	self  transport.Addr
	succs []transport.Addr
	owns  map[ids.ID]bool
}

func (r *scriptRing) Self() transport.Addr { return r.self }

func (r *scriptRing) Successors(k int) []transport.Addr {
	r.mu.Lock()
	defer r.mu.Unlock()
	if k > len(r.succs) {
		k = len(r.succs)
	}
	return append([]transport.Addr(nil), r.succs[:k]...)
}

func (r *scriptRing) Owns(key ids.ID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.owns[key]
}

func (r *scriptRing) setSuccs(succs ...transport.Addr) {
	r.mu.Lock()
	r.succs = succs
	r.mu.Unlock()
}

func (r *scriptRing) setOwns(key ids.ID, v bool) {
	r.mu.Lock()
	if r.owns == nil {
		r.owns = make(map[ids.ID]bool)
	}
	r.owns[key] = v
	r.mu.Unlock()
}

// testNode is one broker plus its scripted ring and delivery log.
type testNode struct {
	host *simhost.Host
	ring *scriptRing
	b    *Broker

	mu  sync.Mutex
	got []string // payloads delivered via OnEvent, in order
}

func (n *testNode) events() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]string(nil), n.got...)
}

type harness struct {
	t   *testing.T
	e   *sim.Engine
	net *simnet.Net

	mu  sync.Mutex
	rdv map[ids.ID]transport.Addr // scripted topic -> rendezvous table

	nodes map[string]*testNode
}

func newHarness(t *testing.T, seed int64) *harness {
	e := sim.NewEngine(seed)
	net := simnet.New(e)
	net.Latency = simnet.UniformLatency{Min: 5 * time.Millisecond, Max: 20 * time.Millisecond}
	return &harness{t: t, e: e, net: net, rdv: make(map[ids.ID]transport.Addr), nodes: make(map[string]*testNode)}
}

func (h *harness) setRendezvous(topic ids.ID, addr transport.Addr) {
	h.mu.Lock()
	h.rdv[topic] = addr
	h.mu.Unlock()
}

func (h *harness) lookup(rt transport.Runtime, key ids.ID) (transport.Addr, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	a, ok := h.rdv[key]
	if !ok {
		return "", fmt.Errorf("pubsub test: no rendezvous scripted for %s", key.Short())
	}
	return a, nil
}

// add creates one broker node. k > 0 turns on subscriber-list
// replication over the scripted ring.
func (h *harness) add(name string, k int) *testNode {
	host := simhost.New(h.net.NewEndpoint(simnet.Addr(name)))
	n := &testNode{host: host, ring: &scriptRing{self: transport.Addr(name)}}
	cfg := Config{
		Lookup:         h.lookup,
		FlushEvery:     20 * time.Millisecond,
		RedeliverEvery: 200 * time.Millisecond,
		RedeliverMax:   4,
		SyncEvery:      200 * time.Millisecond,
		DeadAfter:      time.Second,
		OnEvent: func(rt transport.Runtime, topic ids.ID, payload []byte) {
			n.mu.Lock()
			n.got = append(n.got, string(payload))
			n.mu.Unlock()
		},
	}
	if k > 0 {
		cfg.Ring = n.ring
		cfg.K = k
	}
	n.b = New(host, cfg)
	n.b.Start()
	h.nodes[name] = n
	return n
}

func topicKey(s string) ids.ID { return ids.HashString(s) }

// TestPublishDeliversInOrder: events published from one node reach a
// subscriber on another, exactly once, in publish order.
func TestPublishDeliversInOrder(t *testing.T) {
	h := newHarness(t, 1)
	h.add("rdv", 0)
	sub := h.add("sub", 0)
	pub := h.add("pub", 0)
	defer h.e.Shutdown()
	k := topicKey("job-1")
	h.setRendezvous(k, "rdv")

	sub.b.Subscribe(k)
	h.e.RunFor(2 * time.Second)
	for i := 0; i < 5; i++ {
		pub.b.Publish(k, []byte(fmt.Sprintf("ev-%d", i)))
	}
	h.e.RunFor(3 * time.Second)

	got := sub.events()
	if len(got) != 5 {
		t.Fatalf("delivered = %v, want 5 events", got)
	}
	for i, p := range got {
		if want := fmt.Sprintf("ev-%d", i); p != want {
			t.Fatalf("event %d = %q, want %q (order violated)", i, p, want)
		}
	}
	if st := sub.b.Stats(); st.Delivered != 5 || st.Duplicates != 0 {
		t.Fatalf("subscriber stats = %+v, want 5 delivered 0 duplicates", st)
	}
}

// TestDuplicateNotifyDeduped: the same NotifyReq arriving twice (a
// redelivery race or network duplication) produces one OnEvent call
// and counts a duplicate; the ack watermark still advances.
func TestDuplicateNotifyDeduped(t *testing.T) {
	h := newHarness(t, 2)
	sub := h.add("sub", 0)
	defer h.e.Shutdown()
	k := topicKey("job-2")
	h.setRendezvous(k, "rdv-nowhere") // never contacted: we inject notifies directly

	sub.b.Subscribe(k)
	req := NotifyReq{Topic: k, Epoch: 0, From: "rdv", Events: []Event{
		{Seq: 1, Payload: []byte("a")},
		{Seq: 2, Payload: []byte("b")},
	}}
	var acks []int
	h.do("sub", func(rt transport.Runtime) {
		for i := 0; i < 2; i++ {
			raw, err := sub.b.handleNotify(rt, "rdv", req)
			if err != nil {
				t.Errorf("notify %d: %v", i, err)
				return
			}
			acks = append(acks, raw.(NotifyResp).AckUpTo)
		}
	})

	if got := sub.events(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("delivered = %v, want [a b] exactly once", got)
	}
	if len(acks) != 2 || acks[0] != 2 || acks[1] != 2 {
		t.Fatalf("acks = %v, want cumulative 2 both times", acks)
	}
	if st := sub.b.Stats(); st.Duplicates != 2 || st.Delivered != 2 {
		t.Fatalf("stats = %+v, want 2 duplicates 2 delivered", st)
	}
}

// TestEpochFencing: the same sequence numbers under a different epoch
// are fresh events, not duplicates — the property that makes a
// promoted rendezvous's restarted sequence space safe.
func TestEpochFencing(t *testing.T) {
	h := newHarness(t, 3)
	sub := h.add("sub", 0)
	defer h.e.Shutdown()
	k := topicKey("job-3")
	h.setRendezvous(k, "rdv-nowhere")

	sub.b.Subscribe(k)
	h.do("sub", func(rt transport.Runtime) {
		for _, epoch := range []int{0, 1} {
			req := NotifyReq{Topic: k, Epoch: epoch, From: "rdv", Events: []Event{{Seq: 1, Payload: []byte(fmt.Sprintf("e%d", epoch))}}}
			if _, err := sub.b.handleNotify(rt, "rdv", req); err != nil {
				t.Errorf("epoch %d: %v", epoch, err)
			}
		}
	})
	if got := sub.events(); len(got) != 2 || got[0] != "e0" || got[1] != "e1" {
		t.Fatalf("delivered = %v, want seq 1 accepted under both epochs", got)
	}
	if st := sub.b.Stats(); st.Duplicates != 0 {
		t.Fatalf("stats = %+v, want no duplicates across epochs", st)
	}
}

// TestRendezvousHandoff: with subscriber-list replication on, a dead
// rendezvous's successor promotes the replicated list and delivery
// resumes under a new epoch — subscribers survive the crash.
func TestRendezvousHandoff(t *testing.T) {
	h := newHarness(t, 4)
	a := h.add("a", 1) // rendezvous
	b := h.add("b", 1) // successor, then replacement rendezvous
	sub := h.add("sub", 0)
	pub := h.add("pub", 0)
	defer h.e.Shutdown()
	k := topicKey("job-4")
	h.setRendezvous(k, "a")
	a.ring.setSuccs("b")
	a.ring.setOwns(k, true)

	sub.b.Subscribe(k)
	pub.b.Publish(k, []byte("before"))
	h.e.RunFor(3 * time.Second) // subscribe, deliver, replicate the list

	if got := sub.events(); len(got) != 1 || got[0] != "before" {
		t.Fatalf("pre-crash delivery = %v, want [before]", got)
	}

	a.host.Endpoint().Crash()
	b.ring.setOwns(k, true) // the ring hands a's arc to b
	h.setRendezvous(k, "b") // lookups now resolve to the successor
	b.b.RingChange()
	h.e.RunFor(5 * time.Second) // probe a dead, promote, rebuild topic

	if st := b.b.Stats(); st.Takeovers != 1 {
		t.Fatalf("successor stats = %+v, want exactly one takeover", st)
	}
	pub.b.Publish(k, []byte("after"))
	h.e.RunFor(3 * time.Second)

	got := sub.events()
	if len(got) != 2 || got[1] != "after" {
		t.Fatalf("post-handoff delivery = %v, want [before after]", got)
	}
	if st := sub.b.Stats(); st.Delivered != 2 {
		t.Fatalf("subscriber stats = %+v, want 2 delivered", st)
	}
}

// TestRedeliveryAndAbandon: an event for a briefly-down subscriber is
// redelivered once it returns (at-least-once), while a subscriber that
// never comes back has its event abandoned after RedeliverMax; the
// always-reachable subscriber is unaffected throughout.
func TestRedeliveryAndAbandon(t *testing.T) {
	h := newHarness(t, 5)
	rdv := h.add("rdv", 0)
	sub := h.add("sub", 0)
	flaky := h.add("flaky", 0)
	gone := h.add("gone", 0)
	pub := h.add("pub", 0)
	defer h.e.Shutdown()
	k := topicKey("job-5")
	h.setRendezvous(k, "rdv")

	sub.b.Subscribe(k)
	flaky.b.Subscribe(k)
	gone.b.Subscribe(k)
	h.e.RunFor(2 * time.Second)
	flaky.host.Endpoint().Crash()
	gone.host.Endpoint().Crash()

	pub.b.Publish(k, []byte("x"))
	h.e.RunFor(300 * time.Millisecond) // one or two failed attempts at flaky
	flaky.host.Endpoint().Restart()
	h.e.RunFor(30 * time.Second) // flaky catches up; gone exhausts RedeliverMax

	if got := sub.events(); len(got) != 1 || got[0] != "x" {
		t.Fatalf("live subscriber got %v, want [x]", got)
	}
	if got := flaky.events(); len(got) != 1 || got[0] != "x" {
		t.Fatalf("recovered subscriber got %v, want [x] (at-least-once violated)", got)
	}
	st := rdv.b.Stats()
	if st.Redelivered == 0 {
		t.Fatalf("rendezvous stats = %+v, want a counted redelivery to the recovered subscriber", st)
	}
	if st.Abandoned == 0 {
		t.Fatalf("rendezvous stats = %+v, want the dead subscriber's event abandoned", st)
	}
}

// TestUnsubscribeStopsDelivery: after an unsubscribe syncs, new
// publishes no longer reach the node, and an empty topic is dropped
// at the rendezvous.
func TestUnsubscribeStopsDelivery(t *testing.T) {
	h := newHarness(t, 6)
	rdv := h.add("rdv", 0)
	sub := h.add("sub", 0)
	pub := h.add("pub", 0)
	defer h.e.Shutdown()
	k := topicKey("job-6")
	h.setRendezvous(k, "rdv")

	sub.b.Subscribe(k)
	h.e.RunFor(2 * time.Second)
	pub.b.Publish(k, []byte("one"))
	h.e.RunFor(2 * time.Second)
	sub.b.Unsubscribe(k)
	h.e.RunFor(2 * time.Second)
	pub.b.Publish(k, []byte("two"))
	h.e.RunFor(3 * time.Second)

	if got := sub.events(); len(got) != 1 || got[0] != "one" {
		t.Fatalf("delivered = %v, want only the pre-unsubscribe event", got)
	}
	rdv.b.mu.Lock()
	_, live := rdv.b.topics[k]
	rdv.b.mu.Unlock()
	if live {
		t.Fatal("empty topic survived the last unsubscribe")
	}
}

// do runs fn inside a proc on the named node and drives the sim until
// it returns.
func (h *harness) do(name string, fn func(rt transport.Runtime)) {
	done := false
	h.nodes[name].host.Go("test", func(rt transport.Runtime) {
		defer func() { done = true }()
		fn(rt)
	})
	for !done {
		h.e.RunFor(time.Second)
	}
}

var _ replica.Ring = (*scriptRing)(nil)
