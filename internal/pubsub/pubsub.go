// Package pubsub is a topic-based publish/subscribe overlay on the
// DHT (DESIGN.md §13). A topic is an ids.ID that hashes onto the
// Chord ring; the ring successor of that key is the topic's
// *rendezvous* node. Subscribers register there, publishers route
// events there, and the rendezvous fans each event out to every
// subscriber with at-least-once delivery:
//
//   - the rendezvous mints a per-topic sequence number for every
//     event and keeps the events a subscriber has not acknowledged;
//   - unacknowledged events are redelivered every RedeliverEvery up
//     to RedeliverMax attempts, then abandoned (the application's
//     fallback path — the grid's slow liveness polling — covers the
//     remainder);
//   - receivers deduplicate on (topic, epoch, seq) with a contiguous
//     watermark plus a sparse seen-set, so duplicates from
//     redelivery or network-level duplication collapse to one
//     OnEvent callback.
//
// Rendezvous death does not drop subscribers: the subscriber list is
// a replica.Record replicated over the rendezvous's successor list
// (a second replica.Manager under the "pubsub." method prefix, so it
// coexists with the grid's owner-state manager). When the rendezvous
// dies, a successor promotes the record, rebuilds the topic from the
// replicated list, and resumes delivery under the record's new
// epoch. Epochs fence sequence numbers: a promoted rendezvous
// restarts seq from 1, and receivers scope their dedup watermark per
// epoch, so reused sequence numbers are never misread as duplicates.
// Events in flight at the moment of the crash may be lost — the
// subsystem promises at-least-once only while a rendezvous is up,
// and the application's silence fallback covers handoff gaps.
//
// One Broker per node plays all three roles (publisher, subscriber,
// rendezvous). The public API (Subscribe, Unsubscribe, Publish)
// never blocks and never performs I/O on the caller's execution
// context: work is queued under the broker lock and drained by
// broker-owned activities. Under the deterministic simulator this
// keeps the protocol hot path's timing untouched — the
// trace-neutrality invariant the grid layer relies on.
package pubsub

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/replica"
	"repro/internal/transport"
)

// Wire methods.
const (
	MSubscribe   = "pubsub.subscribe"   // SubscribeReq -> SubscribeResp
	MUnsubscribe = "pubsub.unsubscribe" // UnsubscribeReq -> UnsubscribeResp
	MPublish     = "pubsub.publish"     // PublishReq -> PublishResp
	MNotify      = "pubsub.notify"      // NotifyReq -> NotifyResp
	MAck         = "pubsub.ack"         // AckReq -> AckResp
	MResolve     = "pubsub.resolve"     // ResolveReq -> ResolveResp
)

// ReplicaPrefix namespaces the broker's subscriber-list replica
// manager, yielding "pubsub.replica.put" etc. so it never clashes
// with the grid's owner-state manager on the same host.
const ReplicaPrefix = "pubsub."

// SubscribeReq registers Sub as a subscriber of Topic at the
// receiving rendezvous.
type SubscribeReq struct {
	Topic ids.ID
	Sub   transport.Addr
}

// SubscribeResp acknowledges a subscription; Epoch is the topic's
// current delivery epoch (informational — receivers learn epochs
// authoritatively from NotifyReq).
type SubscribeResp struct {
	Epoch int
}

// UnsubscribeReq removes Sub from Topic's subscriber list.
type UnsubscribeReq struct {
	Topic ids.ID
	Sub   transport.Addr
}

// UnsubscribeResp acknowledges an unsubscribe.
type UnsubscribeResp struct{}

// PublishReq ships a batch of event payloads for Topic to its
// rendezvous, which assigns sequence numbers in arrival order.
type PublishReq struct {
	Topic    ids.ID
	From     transport.Addr
	Payloads [][]byte
}

// PublishResp returns the last sequence number assigned to the batch.
type PublishResp struct {
	Seq int
}

// Event is one published payload with its rendezvous-assigned
// per-topic sequence number (1-based within an epoch).
type Event struct {
	Seq     int
	Payload []byte
}

// NotifyReq delivers a batch of events for Topic to one subscriber.
// Epoch scopes the sequence numbers: receivers deduplicate on
// (topic, epoch, seq).
type NotifyReq struct {
	Topic  ids.ID
	Epoch  int
	From   transport.Addr
	Events []Event
}

// NotifyResp carries the receiver's cumulative acknowledgement: every
// seq <= AckUpTo in this epoch has been received.
type NotifyResp struct {
	AckUpTo int
}

// AckReq is a standalone cumulative acknowledgement, used by thin
// subscribers (gridctl watch) that want to advance the rendezvous
// watermark outside a notify exchange.
type AckReq struct {
	Topic ids.ID
	Sub   transport.Addr
	Epoch int
	UpTo  int
}

// AckResp acknowledges an AckReq.
type AckResp struct{}

// ResolveReq asks any broker to resolve Topic's rendezvous address —
// the entry point for external clients that do not run an overlay.
type ResolveReq struct {
	Topic ids.ID
}

// ResolveResp names the rendezvous.
type ResolveResp struct {
	Addr transport.Addr
}

// Config parameterizes a Broker.
type Config struct {
	// Lookup resolves the rendezvous node for a topic key: the Chord
	// lookup in deployments, a scripted map in tests. Required.
	Lookup func(rt transport.Runtime, key ids.ID) (transport.Addr, error)
	// Ring and K configure subscriber-list replication over the
	// rendezvous's successor list. K == 0 (or a nil Ring) disables
	// replication: a dead rendezvous then drops its subscribers and
	// the application fallback carries the jobs.
	Ring replica.Ring
	K    int
	// SyncEvery is the subscriber-list anti-entropy period and
	// DeadAfter the rendezvous-death threshold (both forwarded to the
	// inner replica manager).
	SyncEvery time.Duration
	DeadAfter time.Duration
	// FlushEvery is the publisher-side coalescing window: transitions
	// published within it ride one PublishReq.
	FlushEvery time.Duration
	// RedeliverEvery is the retry period for unacknowledged events,
	// unconfirmed subscriptions, and unflushed publishes.
	RedeliverEvery time.Duration
	// RedeliverMax bounds delivery attempts per event per subscriber
	// (and per publish batch); beyond it the event is abandoned.
	RedeliverMax int
	// OnEvent receives each fresh (deduplicated) event delivered to
	// this node's subscriptions. Called outside the broker lock.
	OnEvent func(rt transport.Runtime, topic ids.ID, payload []byte)
	// Obs, when non-nil, receives broker counters and gauges.
	Obs *obs.Obs
}

func (c Config) withDefaults() Config {
	if c.SyncEvery == 0 {
		c.SyncEvery = 2 * time.Second
	}
	if c.DeadAfter == 0 {
		c.DeadAfter = 5 * time.Second
	}
	if c.FlushEvery == 0 {
		c.FlushEvery = 100 * time.Millisecond
	}
	if c.RedeliverEvery == 0 {
		c.RedeliverEvery = 2 * time.Second
	}
	if c.RedeliverMax == 0 {
		c.RedeliverMax = 8
	}
	return c
}

// Stats is a snapshot of the broker's additive counters.
type Stats struct {
	Published   int64 // events accepted at this rendezvous
	Notified    int64 // events delivered in successful notify calls
	Redelivered int64 // events re-sent after a failed/partial attempt
	Abandoned   int64 // events dropped after RedeliverMax attempts
	Delivered   int64 // fresh events handed to OnEvent here
	Duplicates  int64 // events discarded by receiver dedup
	Takeovers   int64 // topics adopted after a rendezvous death
}

type pendEvent struct {
	ev    Event
	tries int
}

// subState is the rendezvous's delivery cursor for one subscriber.
type subState struct {
	acked   int // cumulative: all seq <= acked confirmed received
	pending []pendEvent
}

// topicState is the rendezvous-side state for one topic this node
// serves. Only the subscriber list is replicated; sequence numbers
// and pending queues are ephemeral, fenced by the record epoch.
type topicState struct {
	epoch   int
	nextSeq int
	subs    map[transport.Addr]*subState
}

// outTopic is the publisher-side queue for one topic.
type outTopic struct {
	payloads [][]byte
	tries    int
	rdv      transport.Addr // cached rendezvous ("" = resolve again)
}

// dedupState deduplicates one (topic, epoch) stream: a contiguous
// watermark plus a sparse set for events received ahead of a gap.
type dedupState struct {
	upTo int
	seen map[int]bool
}

// inTopic is the subscriber-side state for one topic.
type inTopic struct {
	want   bool // true: subscribed; false: unsubscribe in flight
	synced bool // rendezvous confirmed the current want
	rdv    transport.Addr
	epochs map[int]*dedupState
}

// Broker runs the pub/sub protocol for one node, playing publisher,
// subscriber, and rendezvous as traffic demands.
type Broker struct {
	host transport.Host
	cfg  Config
	mgr  *replica.Manager // subscriber-list replication; nil when off

	mu      sync.Mutex
	topics  map[ids.ID]*topicState // rendezvous role
	out     map[ids.ID]*outTopic   // publisher role
	subs    map[ids.ID]*inTopic    // subscriber role
	onEvent func(rt transport.Runtime, topic ids.ID, payload []byte)
	started bool
	kicking bool
	stats   Stats

	// Instruments (nil-safe when cfg.Obs is nil).
	mPublished *obs.Counter
	mNotified  *obs.Counter
	mRedeliver *obs.Counter
	mAbandoned *obs.Counter
	mDelivered *obs.Counter
	mDup       *obs.Counter
	mTakeover  *obs.Counter
}

// New creates a broker bound to host and registers its RPC handlers.
// Call Start to launch the periodic retry loop.
func New(host transport.Host, cfg Config) *Broker {
	b := &Broker{
		host:    host,
		cfg:     cfg.withDefaults(),
		topics:  make(map[ids.ID]*topicState),
		out:     make(map[ids.ID]*outTopic),
		subs:    make(map[ids.ID]*inTopic),
		onEvent: cfg.OnEvent,
	}
	if b.cfg.K > 0 && b.cfg.Ring != nil {
		// The inner manager keeps its own Obs nil: its instrument
		// names ("replica_*") belong to the grid's owner-state
		// manager on the same registry.
		b.mgr = replica.New(host, b.cfg.Ring, replica.Config{
			K:            b.cfg.K,
			PushEvery:    b.cfg.SyncEvery,
			ProbeEvery:   b.cfg.SyncEvery,
			DeadAfter:    b.cfg.DeadAfter,
			MethodPrefix: ReplicaPrefix,
			OnOwn:        b.onOwn,
			OnFenced:     b.onFenced,
		})
	}
	if reg := b.cfg.Obs.Registry(); reg != nil {
		b.mPublished = reg.Counter("pubsub_published_total")
		b.mNotified = reg.Counter("pubsub_notifications_total")
		b.mRedeliver = reg.Counter("pubsub_redeliveries_total")
		b.mAbandoned = reg.Counter("pubsub_abandoned_total")
		b.mDelivered = reg.Counter("pubsub_delivered_total")
		b.mDup = reg.Counter("pubsub_duplicates_total")
		b.mTakeover = reg.Counter("pubsub_takeovers_total")
		reg.GaugeFunc("pubsub_topics", func() float64 {
			b.mu.Lock()
			defer b.mu.Unlock()
			return float64(len(b.topics))
		})
		reg.GaugeFunc("pubsub_subscriptions", func() float64 {
			b.mu.Lock()
			defer b.mu.Unlock()
			n := 0
			for _, ts := range b.topics {
				n += len(ts.subs)
			}
			return float64(n)
		})
	}
	host.Handle(MSubscribe, b.handleSubscribe)
	host.Handle(MUnsubscribe, b.handleUnsubscribe)
	host.Handle(MPublish, b.handlePublish)
	host.Handle(MNotify, b.handleNotify)
	host.Handle(MAck, b.handleAck)
	host.Handle(MResolve, b.handleResolve)
	return b
}

// SetOnEvent installs (or replaces) the fresh-event callback. Used
// when the consumer is constructed after the broker (the grid node
// takes the broker in its Config).
func (b *Broker) SetOnEvent(fn func(rt transport.Runtime, topic ids.ID, payload []byte)) {
	b.mu.Lock()
	b.onEvent = fn
	b.mu.Unlock()
}

// Start launches the periodic retry loop (and the subscriber-list
// replication loops when configured).
func (b *Broker) Start() {
	b.mu.Lock()
	if b.started {
		b.mu.Unlock()
		return
	}
	b.started = true
	b.mu.Unlock()
	if b.mgr != nil {
		b.mgr.Start()
	}
	b.host.Go("pubsub.tick", func(rt transport.Runtime) {
		for {
			rt.Sleep(b.cfg.RedeliverEvery)
			b.tick(rt)
		}
	})
}

// Kick schedules one near-immediate work round (publish flush,
// subscription sync, delivery), coalescing bursts: events enqueued
// within one FlushEvery window ride the same RPCs.
func (b *Broker) Kick() {
	b.mu.Lock()
	if !b.started || b.kicking {
		b.mu.Unlock()
		return
	}
	b.kicking = true
	b.mu.Unlock()
	b.host.Go("pubsub.kick", func(rt transport.Runtime) {
		rt.Sleep(b.cfg.FlushEvery)
		b.mu.Lock()
		b.kicking = false
		b.mu.Unlock()
		b.tick(rt)
	})
}

// Reset clears all broker soft state and marks the loops stopped, for
// a crash/restart cycle (the crash killed the loop procs; restart
// calls Reset then Start). Rendezvous topic state, queued publishes,
// and subscription intents are all lost, exactly as a process restart
// loses them: replicated subscriber lists come back via the inner
// manager's recovery, publishers re-enqueue on the next transition,
// and subscribers fall back to polling until they resubscribe.
// Cumulative stats survive, like the network's own counters.
func (b *Broker) Reset() {
	b.mu.Lock()
	b.topics = make(map[ids.ID]*topicState)
	b.out = make(map[ids.ID]*outTopic)
	b.subs = make(map[ids.ID]*inTopic)
	b.started = false
	b.kicking = false
	b.mu.Unlock()
	if b.mgr != nil {
		b.mgr.Reset()
	}
}

// RingChange is the overlay's ring-change hook: it kicks the
// subscriber-list replication (re-target, takeover) and schedules a
// work round so delivery resumes promptly after a handoff.
func (b *Broker) RingChange() {
	if b.mgr != nil {
		b.mgr.Kick()
	}
	b.Kick()
}

// Stats returns a snapshot of the broker's counters.
func (b *Broker) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// Publish enqueues one event payload for topic. It never blocks and
// performs no I/O: a broker activity resolves the rendezvous and
// ships the batch within FlushEvery.
func (b *Broker) Publish(topic ids.ID, payload []byte) {
	b.mu.Lock()
	ot := b.out[topic]
	if ot == nil {
		ot = &outTopic{}
		b.out[topic] = ot
	}
	ot.payloads = append(ot.payloads, payload)
	ot.tries = 0
	b.mu.Unlock()
	b.Kick()
}

// Subscribe registers this node's interest in topic. Idempotent;
// never blocks. Confirmation (and retries on failure) happen on
// broker activities.
func (b *Broker) Subscribe(topic ids.ID) {
	b.mu.Lock()
	st := b.subs[topic]
	if st == nil {
		st = &inTopic{epochs: make(map[int]*dedupState)}
		b.subs[topic] = st
	}
	if st.want && st.synced {
		b.mu.Unlock()
		return
	}
	st.want = true
	st.synced = false
	b.mu.Unlock()
	b.Kick()
}

// Unsubscribe withdraws this node's interest in topic; never blocks.
func (b *Broker) Unsubscribe(topic ids.ID) {
	b.mu.Lock()
	st := b.subs[topic]
	if st == nil {
		b.mu.Unlock()
		return
	}
	st.want = false
	st.synced = false
	b.mu.Unlock()
	b.Kick()
}

// tick performs one work round: flush queued publishes, sync
// subscription intents, deliver and redeliver pending events.
func (b *Broker) tick(rt transport.Runtime) {
	b.flushPublishes(rt)
	b.syncSubscriptions(rt)
	b.deliverPending(rt)
}

// resolve returns the rendezvous for topic, preferring cached (the
// caller passes it) and falling back to a fresh lookup.
func (b *Broker) resolve(rt transport.Runtime, topic ids.ID, cached transport.Addr) (transport.Addr, error) {
	if cached != "" {
		return cached, nil
	}
	return b.cfg.Lookup(rt, topic)
}

func sortedIDs[T any](m map[ids.ID]T) []ids.ID {
	keys := make([]ids.ID, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	return keys
}

func sortedAddrs[T any](m map[transport.Addr]T) []transport.Addr {
	addrs := make([]transport.Addr, 0, len(m))
	for a := range m {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	return addrs
}

// flushPublishes drains the publisher queues, one PublishReq per
// topic. Failed batches re-queue (ahead of anything published since)
// and retry next round with a fresh lookup, up to RedeliverMax.
func (b *Broker) flushPublishes(rt transport.Runtime) {
	self := b.host.Addr()
	b.mu.Lock()
	topics := sortedIDs(b.out)
	b.mu.Unlock()
	for _, topic := range topics {
		b.mu.Lock()
		ot := b.out[topic]
		if ot == nil || len(ot.payloads) == 0 {
			delete(b.out, topic)
			b.mu.Unlock()
			continue
		}
		batch := ot.payloads
		ot.payloads = nil
		tries, cached := ot.tries, ot.rdv
		b.mu.Unlock()

		rdv, err := b.resolve(rt, topic, cached)
		if err == nil {
			_, err = rt.Call(rdv, MPublish, PublishReq{Topic: topic, From: self, Payloads: batch})
		}
		b.mu.Lock()
		ot = b.out[topic]
		if ot == nil { // Unreachable today, but harmless to guard.
			ot = &outTopic{}
			b.out[topic] = ot
		}
		if err == nil {
			ot.rdv = rdv
			ot.tries = 0
			if len(ot.payloads) == 0 {
				delete(b.out, topic)
			}
		} else if tries+1 >= b.cfg.RedeliverMax {
			b.stats.Abandoned += int64(len(batch))
			b.mAbandoned.Add(int64(len(batch)))
			ot.rdv = ""
			if len(ot.payloads) == 0 {
				delete(b.out, topic)
			}
		} else {
			// Re-queue ahead of newer payloads so arrival order at
			// the rendezvous matches publish order.
			ot.payloads = append(batch, ot.payloads...)
			ot.tries = tries + 1
			ot.rdv = "" // the rendezvous may have moved; look up again
		}
		b.mu.Unlock()
	}
}

// syncSubscriptions pushes unconfirmed subscribe/unsubscribe intents
// to each topic's rendezvous. Subscribes retry forever (the periodic
// tick); completed unsubscribes drop the local state.
func (b *Broker) syncSubscriptions(rt transport.Runtime) {
	self := b.host.Addr()
	b.mu.Lock()
	topics := sortedIDs(b.subs)
	b.mu.Unlock()
	for _, topic := range topics {
		b.mu.Lock()
		st := b.subs[topic]
		if st == nil || st.synced {
			b.mu.Unlock()
			continue
		}
		want, cached := st.want, st.rdv
		b.mu.Unlock()

		rdv, err := b.resolve(rt, topic, cached)
		if err == nil {
			if want {
				_, err = rt.Call(rdv, MSubscribe, SubscribeReq{Topic: topic, Sub: self})
			} else {
				_, err = rt.Call(rdv, MUnsubscribe, UnsubscribeReq{Topic: topic, Sub: self})
			}
		}
		b.mu.Lock()
		if st = b.subs[topic]; st != nil && st.want == want {
			if err == nil {
				st.synced = true
				st.rdv = rdv
				if !want {
					delete(b.subs, topic)
				}
			} else {
				st.rdv = ""
			}
		}
		b.mu.Unlock()
	}
}

// deliverPending sends every subscriber its outstanding events, one
// NotifyReq per (topic, subscriber). Acknowledged events drop;
// events that outlive RedeliverMax attempts are abandoned.
func (b *Broker) deliverPending(rt transport.Runtime) {
	self := b.host.Addr()
	b.mu.Lock()
	topics := sortedIDs(b.topics)
	b.mu.Unlock()
	for _, topic := range topics {
		b.mu.Lock()
		ts := b.topics[topic]
		if ts == nil {
			b.mu.Unlock()
			continue
		}
		epoch := ts.epoch
		subAddrs := sortedAddrs(ts.subs)
		b.mu.Unlock()
		for _, sub := range subAddrs {
			b.mu.Lock()
			ts = b.topics[topic]
			if ts == nil || ts.epoch != epoch {
				b.mu.Unlock()
				break
			}
			ss := ts.subs[sub]
			if ss == nil || len(ss.pending) == 0 {
				b.mu.Unlock()
				continue
			}
			events := make([]Event, len(ss.pending))
			redelivered := 0
			for i, pe := range ss.pending {
				events[i] = pe.ev
				if pe.tries > 0 {
					redelivered++
				}
			}
			b.mu.Unlock()

			raw, err := rt.Call(sub, MNotify, NotifyReq{Topic: topic, Epoch: epoch, From: self, Events: events})

			b.mu.Lock()
			ts = b.topics[topic]
			if ts == nil || ts.epoch != epoch {
				b.mu.Unlock()
				break
			}
			if ss = ts.subs[sub]; ss == nil {
				b.mu.Unlock()
				continue
			}
			if err == nil {
				ack := raw.(NotifyResp).AckUpTo
				if ack > ss.acked {
					ss.acked = ack
				}
				kept := ss.pending[:0]
				for _, pe := range ss.pending {
					if pe.ev.Seq > ss.acked {
						pe.tries++
						kept = append(kept, pe)
					}
				}
				ss.pending = kept
				b.stats.Notified += int64(len(events))
				b.stats.Redelivered += int64(redelivered)
				b.mNotified.Add(int64(len(events)))
				b.mRedeliver.Add(int64(redelivered))
			} else {
				sent := make(map[int]bool, len(events))
				for _, ev := range events {
					sent[ev.Seq] = true
				}
				kept := ss.pending[:0]
				dropped := 0
				for _, pe := range ss.pending {
					if sent[pe.ev.Seq] {
						pe.tries++
					}
					if pe.tries >= b.cfg.RedeliverMax {
						dropped++
						continue
					}
					kept = append(kept, pe)
				}
				ss.pending = kept
				b.stats.Abandoned += int64(dropped)
				b.mAbandoned.Add(int64(dropped))
			}
			b.mu.Unlock()
		}
	}
}

// servingElsewhere reports whether the replicated record for topic
// names a different live owner — the request reached a stale or
// merely-replica node and the caller should look the rendezvous up
// again.
func (b *Broker) servingElsewhere(topic ids.ID) bool {
	if b.mgr == nil {
		return false
	}
	st := b.mgr.Status(topic)
	return st.Known && !st.Deleted && st.Owner != b.host.Addr()
}

// ensureTopicLocked returns (creating if needed) the rendezvous
// state for topic.
func (b *Broker) ensureTopicLocked(topic ids.ID) *topicState {
	ts := b.topics[topic]
	if ts == nil {
		ts = &topicState{nextSeq: 1, subs: make(map[transport.Addr]*subState)}
		b.topics[topic] = ts
	}
	return ts
}

// republish pushes the current subscriber list into the replica
// layer and refreshes the topic's delivery epoch from the record
// (Publish on a re-owned or tombstoned record opens a new epoch).
func (b *Broker) republish(topic ids.ID) {
	if b.mgr == nil {
		return
	}
	b.mu.Lock()
	ts := b.topics[topic]
	if ts == nil {
		b.mu.Unlock()
		return
	}
	addrs := sortedAddrs(ts.subs)
	b.mu.Unlock()
	b.mgr.Publish(topic, encodeSubs(addrs))
	epoch := b.mgr.Status(topic).Epoch
	b.mu.Lock()
	if ts = b.topics[topic]; ts != nil {
		ts.epoch = epoch
	}
	b.mu.Unlock()
	b.mgr.Kick()
}

func (b *Broker) handleSubscribe(rt transport.Runtime, from transport.Addr, req any) (any, error) {
	r := req.(SubscribeReq)
	if b.servingElsewhere(r.Topic) {
		return nil, fmt.Errorf("pubsub: not the rendezvous for %s", r.Topic.Short())
	}
	b.mu.Lock()
	ts := b.ensureTopicLocked(r.Topic)
	_, known := ts.subs[r.Sub]
	if !known {
		ts.subs[r.Sub] = &subState{}
	}
	epoch := ts.epoch
	b.mu.Unlock()
	if !known {
		b.republish(r.Topic)
	}
	return SubscribeResp{Epoch: epoch}, nil
}

func (b *Broker) handleUnsubscribe(rt transport.Runtime, from transport.Addr, req any) (any, error) {
	r := req.(UnsubscribeReq)
	b.mu.Lock()
	ts := b.topics[r.Topic]
	if ts == nil {
		b.mu.Unlock()
		return UnsubscribeResp{}, nil
	}
	if _, known := ts.subs[r.Sub]; !known {
		b.mu.Unlock()
		return UnsubscribeResp{}, nil
	}
	delete(ts.subs, r.Sub)
	empty := len(ts.subs) == 0
	if empty {
		delete(b.topics, r.Topic)
	}
	b.mu.Unlock()
	if empty {
		if b.mgr != nil {
			b.mgr.Delete(rt.Now(), r.Topic)
		}
	} else {
		b.republish(r.Topic)
	}
	return UnsubscribeResp{}, nil
}

func (b *Broker) handlePublish(rt transport.Runtime, from transport.Addr, req any) (any, error) {
	r := req.(PublishReq)
	if b.servingElsewhere(r.Topic) {
		return nil, fmt.Errorf("pubsub: not the rendezvous for %s", r.Topic.Short())
	}
	b.mu.Lock()
	ts := b.ensureTopicLocked(r.Topic)
	last := 0
	for _, p := range r.Payloads {
		ev := Event{Seq: ts.nextSeq, Payload: p}
		ts.nextSeq++
		last = ev.Seq
		for _, ss := range ts.subs {
			ss.pending = append(ss.pending, pendEvent{ev: ev})
		}
	}
	b.stats.Published += int64(len(r.Payloads))
	b.mPublished.Add(int64(len(r.Payloads)))
	if len(ts.subs) == 0 {
		// No subscribers: the events have nowhere to go and the bare
		// state would leak (every publish to an unsubscribed topic
		// would pin a topicState forever). Drop it; sequence numbering
		// restarts if a subscriber ever arrives, which is safe because
		// receivers scope dedup state to their own live subscriptions.
		delete(b.topics, r.Topic)
	}
	b.mu.Unlock()
	b.Kick()
	return PublishResp{Seq: last}, nil
}

func (b *Broker) handleNotify(rt transport.Runtime, from transport.Addr, req any) (any, error) {
	r := req.(NotifyReq)
	b.mu.Lock()
	st := b.subs[r.Topic]
	if st == nil || !st.want {
		// Not (or no longer) interested: acknowledge everything so
		// the rendezvous stops redelivering.
		b.mu.Unlock()
		ack := 0
		for _, ev := range r.Events {
			if ev.Seq > ack {
				ack = ev.Seq
			}
		}
		return NotifyResp{AckUpTo: ack}, nil
	}
	d := st.epochs[r.Epoch]
	if d == nil {
		d = &dedupState{seen: make(map[int]bool)}
		st.epochs[r.Epoch] = d
		// Keep the dedup window bounded across rendezvous handoffs:
		// only the latest few epochs stay resident.
		for len(st.epochs) > 4 {
			low := r.Epoch
			for e := range st.epochs {
				if e < low {
					low = e
				}
			}
			delete(st.epochs, low)
		}
	}
	fresh := make([]Event, 0, len(r.Events))
	for _, ev := range r.Events {
		if ev.Seq <= d.upTo || d.seen[ev.Seq] {
			b.stats.Duplicates++
			b.mDup.Inc()
			continue
		}
		d.seen[ev.Seq] = true
		fresh = append(fresh, ev)
	}
	for d.seen[d.upTo+1] {
		delete(d.seen, d.upTo+1)
		d.upTo++
	}
	sort.Slice(fresh, func(i, j int) bool { return fresh[i].Seq < fresh[j].Seq })
	b.stats.Delivered += int64(len(fresh))
	b.mDelivered.Add(int64(len(fresh)))
	ack := d.upTo
	cb := b.onEvent
	b.mu.Unlock()
	if cb != nil {
		for _, ev := range fresh {
			cb(rt, r.Topic, ev.Payload)
		}
	}
	return NotifyResp{AckUpTo: ack}, nil
}

func (b *Broker) handleAck(rt transport.Runtime, from transport.Addr, req any) (any, error) {
	r := req.(AckReq)
	b.mu.Lock()
	if ts := b.topics[r.Topic]; ts != nil && ts.epoch == r.Epoch {
		if ss := ts.subs[r.Sub]; ss != nil {
			if r.UpTo > ss.acked {
				ss.acked = r.UpTo
			}
			kept := ss.pending[:0]
			for _, pe := range ss.pending {
				if pe.ev.Seq > ss.acked {
					kept = append(kept, pe)
				}
			}
			ss.pending = kept
		}
	}
	b.mu.Unlock()
	return AckResp{}, nil
}

func (b *Broker) handleResolve(rt transport.Runtime, from transport.Addr, req any) (any, error) {
	r := req.(ResolveReq)
	addr, err := b.cfg.Lookup(rt, r.Topic)
	if err != nil {
		return nil, err
	}
	return ResolveResp{Addr: addr}, nil
}

// onOwn fires when the replica layer hands this node a subscriber
// list: promotion after a rendezvous death, or a replica restoring
// the record after this node restarted. The topic resumes here under
// the record's (new) epoch with sequence numbers starting over.
func (b *Broker) onOwn(rt transport.Runtime, rec replica.Record, promoted bool) {
	if rec.Deleted {
		b.mu.Lock()
		delete(b.topics, rec.Key)
		b.mu.Unlock()
		return
	}
	addrs := decodeSubs(rec.Data)
	b.mu.Lock()
	ts := b.ensureTopicLocked(rec.Key)
	ts.epoch = rec.Epoch
	for _, a := range addrs {
		if ts.subs[a] == nil {
			ts.subs[a] = &subState{}
		}
	}
	if promoted {
		b.stats.Takeovers++
		b.mTakeover.Inc()
	}
	b.mu.Unlock()
	b.Kick()
}

// onFenced fires when a newer record owned elsewhere displaces one
// this node was serving: a stale rendezvous stands down.
func (b *Broker) onFenced(rt transport.Runtime, rec replica.Record) {
	b.mu.Lock()
	delete(b.topics, rec.Key)
	b.mu.Unlock()
}

func encodeSubs(addrs []transport.Addr) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(addrs); err != nil {
		panic(fmt.Sprintf("pubsub: encode subscribers: %v", err))
	}
	return buf.Bytes()
}

func decodeSubs(data []byte) []transport.Addr {
	var addrs []transport.Addr
	if len(data) == 0 {
		return nil
	}
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&addrs); err != nil {
		return nil
	}
	return addrs
}
