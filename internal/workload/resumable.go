package workload

import (
	"fmt"
	"time"
)

// Resumable is a unit of work that can snapshot its completed progress
// and later be reconstructed from such a snapshot on another node. It
// is the contract between run nodes and checkpointable computations:
// the grid layer periodically calls Progress, ships the snapshot to the
// job's owner, and a replacement run node calls ResumeFrom instead of
// restarting from scratch.
type Resumable interface {
	// Progress returns a snapshot of all work completed so far.
	Progress() Snapshot
	// ResumeFrom restores the computation to a snapshot's state.
	ResumeFrom(Snapshot) error
}

// Snapshot is an opaque, transferable record of partial progress. Done
// is the amount of nominal work the snapshot represents; Data carries
// whatever serialized state the computation needs to continue (empty
// for pure-duration simulated jobs).
type Snapshot struct {
	Done time.Duration
	Data []byte
}

// SliceWork is the reference Resumable: a computation of a fixed total
// nominal duration that advances in slices. Simulated jobs are pure
// durations, so its snapshot is just the completed prefix plus an
// optional application-state payload; live executors can embed real
// state via SetState.
type SliceWork struct {
	total time.Duration
	done  time.Duration
	state []byte
}

// NewSliceWork returns resumable work of the given total duration.
func NewSliceWork(total time.Duration) *SliceWork {
	if total < 0 {
		total = 0
	}
	return &SliceWork{total: total}
}

// Total returns the nominal duration of the whole computation.
func (s *SliceWork) Total() time.Duration { return s.total }

// Done returns how much nominal work has completed.
func (s *SliceWork) Done() time.Duration { return s.done }

// Remaining returns the nominal work still to do.
func (s *SliceWork) Remaining() time.Duration { return s.total - s.done }

// Finished reports whether all work has completed.
func (s *SliceWork) Finished() bool { return s.done >= s.total }

// Advance performs up to d more nominal work and returns how much was
// actually performed (less than d only at the end of the computation).
func (s *SliceWork) Advance(d time.Duration) time.Duration {
	if d < 0 {
		d = 0
	}
	if rem := s.Remaining(); d > rem {
		d = rem
	}
	s.done += d
	return d
}

// SetState attaches application state to subsequent snapshots. The
// slice is retained; callers hand over ownership.
func (s *SliceWork) SetState(data []byte) { s.state = data }

// State returns the application state restored by ResumeFrom (or set
// by SetState).
func (s *SliceWork) State() []byte { return s.state }

// Progress implements Resumable.
func (s *SliceWork) Progress() Snapshot {
	return Snapshot{Done: s.done, Data: s.state}
}

// ResumeFrom implements Resumable. A snapshot claiming more work than
// the computation holds is rejected rather than silently truncated —
// it indicates a checkpoint from a different job or attempt.
func (s *SliceWork) ResumeFrom(snap Snapshot) error {
	if snap.Done < 0 || snap.Done > s.total {
		return fmt.Errorf("workload: snapshot done %v outside [0, %v]", snap.Done, s.total)
	}
	s.done = snap.Done
	s.state = snap.Data
	return nil
}

var _ Resumable = (*SliceWork)(nil)
