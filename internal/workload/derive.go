package workload

import (
	"crypto/sha1"
	"encoding/binary"
)

// DeriveBytes deterministically expands a seed string into n
// pseudo-random bytes via a SHA-1 counter chain. Workflow stages use it
// to derive their output payload from the submission identity alone, so
// every attempt on every honest run node produces byte-identical output
// without coordination.
func DeriveBytes(seed string, n int) []byte {
	if n <= 0 {
		return nil
	}
	out := make([]byte, 0, n+sha1.Size)
	var ctr [8]byte
	for i := uint64(0); len(out) < n; i++ {
		binary.BigEndian.PutUint64(ctr[:], i)
		h := sha1.New()
		h.Write([]byte(seed))
		h.Write(ctr[:])
		out = h.Sum(out)
	}
	return out[:n]
}
