package workload

import (
	"bytes"
	"math"
	"testing"
	"time"

	"repro/internal/resource"
)

func small() Config {
	c := NewConfig()
	c.Nodes = 200
	c.Jobs = 1000
	return c
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(small())
	b := Generate(small())
	if len(a.Nodes) != len(b.Nodes) || len(a.Jobs) != len(b.Jobs) {
		t.Fatal("sizes differ")
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatalf("node %d differs", i)
		}
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("job %d differs", i)
		}
	}
	c := small()
	c.Seed = 2
	if Generate(c).Nodes[0] == a.Nodes[0] {
		t.Fatal("different seeds produced identical first node")
	}
}

func TestConstraintDensityMatchesPaper(t *testing.T) {
	// Lightly-constrained: average 1.2 of 3 resources; heavily: 2.4.
	for _, tc := range []struct {
		level ConstraintLevel
		want  float64
	}{{Lightly, 1.2}, {Heavily, 2.4}} {
		cfg := small()
		cfg.Level = tc.level
		w := Generate(cfg)
		total := 0
		for _, j := range w.Jobs {
			total += j.Cons.Count()
		}
		avg := float64(total) / float64(len(w.Jobs))
		if math.Abs(avg-tc.want) > 0.15 {
			t.Errorf("%s: avg constraints %.2f, want ~%.1f", tc.level, avg, tc.want)
		}
	}
}

func TestClusteredPopulationsHaveFewClasses(t *testing.T) {
	cfg := small()
	cfg.NodePop = Clustered
	cfg.JobPop = Clustered
	w := Generate(cfg)
	nodeCaps := map[resource.Vector]bool{}
	for _, n := range w.Nodes {
		nodeCaps[n.Caps] = true
	}
	if len(nodeCaps) > cfg.NodeClasses {
		t.Fatalf("%d distinct node capability vectors, want <= %d", len(nodeCaps), cfg.NodeClasses)
	}
	jobCons := map[string]bool{}
	for _, j := range w.Jobs {
		jobCons[j.Cons.String()] = true
	}
	if len(jobCons) > cfg.JobClasses {
		t.Fatalf("%d distinct job constraint classes, want <= %d", len(jobCons), cfg.JobClasses)
	}
}

func TestMixedPopulationsAreDiverse(t *testing.T) {
	w := Generate(small())
	caps := map[resource.Vector]bool{}
	for _, n := range w.Nodes {
		caps[n.Caps] = true
	}
	if len(caps) < len(w.Nodes)*9/10 {
		t.Fatalf("mixed nodes not diverse: %d distinct of %d", len(caps), len(w.Nodes))
	}
}

func TestEveryJobSatisfiable(t *testing.T) {
	for _, pop := range []Population{Clustered, Mixed} {
		for _, level := range []ConstraintLevel{Lightly, Heavily} {
			cfg := small()
			cfg.NodePop = pop
			cfg.JobPop = pop
			cfg.Level = level
			w := Generate(cfg)
			for i, j := range w.Jobs {
				if w.SatisfiableBy(j) == 0 {
					t.Fatalf("%s/%s: job %d (%s) unsatisfiable", pop, level, i, j.Cons)
				}
			}
		}
	}
}

func TestArrivalsPoissonish(t *testing.T) {
	w := Generate(small())
	// Arrivals strictly ordered, mean gap ~= MeanInterarrival.
	var gaps []float64
	for i := 1; i < len(w.Jobs); i++ {
		d := w.Jobs[i].Arrival - w.Jobs[i-1].Arrival
		if d < 0 {
			t.Fatal("arrivals not monotone")
		}
		gaps = append(gaps, d.Seconds())
	}
	mean := 0.0
	for _, g := range gaps {
		mean += g
	}
	mean /= float64(len(gaps))
	want := w.Config.MeanInterarrival.Seconds()
	if mean < want*0.85 || mean > want*1.15 {
		t.Fatalf("mean inter-arrival %.3fs, want ~%.3fs", mean, want)
	}
}

func TestRuntimeDistribution(t *testing.T) {
	w := Generate(small())
	mean := 0.0
	for _, j := range w.Jobs {
		r := j.Work.Seconds()
		if r < 0.5*w.Config.MeanRuntime.Seconds() || r > 1.5*w.Config.MeanRuntime.Seconds() {
			t.Fatalf("runtime %v outside [0.5,1.5]x mean", j.Work)
		}
		mean += r
	}
	mean /= float64(len(w.Jobs))
	if math.Abs(mean-w.Config.MeanRuntime.Seconds()) > 5 {
		t.Fatalf("mean runtime %.1fs, want ~%v", mean, w.Config.MeanRuntime)
	}
}

func TestClientRatesDiffer(t *testing.T) {
	w := Generate(small())
	counts := make([]int, w.Config.Clients)
	for _, j := range w.Jobs {
		counts[j.Client]++
	}
	// The highest-rate client submits several times more than the lowest.
	if counts[len(counts)-1] < counts[0]*2 {
		t.Fatalf("client rates too uniform: %v", counts)
	}
}

func TestScalePreservesLoad(t *testing.T) {
	full := NewConfig()
	scaled := full.Scale(0.1)
	if scaled.Nodes != 100 || scaled.Jobs != 500 {
		t.Fatalf("scaled to %d nodes / %d jobs", scaled.Nodes, scaled.Jobs)
	}
	wf := Generate(full)
	ws := Generate(scaled)
	lf, ls := wf.OfferedLoad(), ws.OfferedLoad()
	if math.Abs(lf-ls) > 0.25*lf {
		t.Fatalf("offered load drifted: full %.2f scaled %.2f", lf, ls)
	}
	// Degenerate scales are clamped, not zeroed.
	if c := full.Scale(0.0001); c.Nodes < 2 || c.Jobs < 1 {
		t.Fatalf("degenerate scale: %+v", c)
	}
	// Growth rungs (scale benchmarks) resize past paper scale while
	// preserving the offered load.
	grown := full.Scale(2)
	if grown.Nodes != 2000 || grown.Jobs != 10000 {
		t.Fatalf("grew to %d nodes / %d jobs", grown.Nodes, grown.Jobs)
	}
	lg := Generate(grown).OfferedLoad()
	if math.Abs(lf-lg) > 0.25*lf {
		t.Fatalf("offered load drifted on growth: full %.2f grown %.2f", lf, lg)
	}
}

func TestOfferedLoadNearOne(t *testing.T) {
	// The paper's parameters produce a heavily-loaded system.
	w := Generate(NewConfig())
	load := w.OfferedLoad()
	if load < 0.7 || load > 1.4 {
		t.Fatalf("offered load %.2f, want ~1 (heavy)", load)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	w := Generate(Config{
		Nodes: 10, Jobs: 20, Seed: 3, Clients: 2,
		MeanRuntime: time.Minute, MeanInterarrival: time.Second,
	})
	var buf bytes.Buffer
	if err := w.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Nodes) != 10 || len(got.Jobs) != 20 {
		t.Fatalf("decoded %d nodes / %d jobs", len(got.Nodes), len(got.Jobs))
	}
	if got.Jobs[5] != w.Jobs[5] {
		t.Fatalf("job 5 mismatch: %+v vs %+v", got.Jobs[5], w.Jobs[5])
	}
	if _, err := ReadJSON(bytes.NewBufferString("{bad")); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

func TestStringers(t *testing.T) {
	if Clustered.String() != "clustered" || Mixed.String() != "mixed" {
		t.Fatal("population names")
	}
	if Lightly.String() != "lightly" || Heavily.String() != "heavily" {
		t.Fatal("level names")
	}
	if Lightly.Prob() != 0.4 || Heavily.Prob() != 0.8 {
		t.Fatal("constraint probabilities")
	}
}
