package workload

import (
	"bytes"
	"testing"
	"time"
)

func TestSliceWorkAdvance(t *testing.T) {
	s := NewSliceWork(10 * time.Second)
	if s.Finished() || s.Done() != 0 || s.Remaining() != 10*time.Second {
		t.Fatalf("fresh work: done=%v rem=%v", s.Done(), s.Remaining())
	}
	if got := s.Advance(4 * time.Second); got != 4*time.Second {
		t.Fatalf("advance = %v", got)
	}
	// Over-advance clamps to the remaining work.
	if got := s.Advance(time.Minute); got != 6*time.Second {
		t.Fatalf("final advance = %v", got)
	}
	if !s.Finished() || s.Remaining() != 0 {
		t.Fatalf("not finished: done=%v", s.Done())
	}
	if got := s.Advance(time.Second); got != 0 {
		t.Fatalf("advance past end = %v", got)
	}
	if got := s.Advance(-time.Second); got != 0 {
		t.Fatal("negative advance performed work")
	}
}

func TestSliceWorkSnapshotRoundTrip(t *testing.T) {
	s := NewSliceWork(20 * time.Second)
	s.Advance(7 * time.Second)
	s.SetState([]byte("phase-1"))
	snap := s.Progress()
	if snap.Done != 7*time.Second || string(snap.Data) != "phase-1" {
		t.Fatalf("snapshot: %+v", snap)
	}

	// A fresh instance on another node resumes mid-computation.
	r := NewSliceWork(20 * time.Second)
	if err := r.ResumeFrom(snap); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if r.Done() != 7*time.Second || !bytes.Equal(r.State(), []byte("phase-1")) {
		t.Fatalf("resumed: done=%v state=%q", r.Done(), r.State())
	}
	r.Advance(13 * time.Second)
	if !r.Finished() {
		t.Fatal("resumed work did not finish")
	}
}

func TestSliceWorkResumeRejectsForeignSnapshot(t *testing.T) {
	s := NewSliceWork(5 * time.Second)
	if err := s.ResumeFrom(Snapshot{Done: 6 * time.Second}); err == nil {
		t.Fatal("oversized snapshot accepted")
	}
	if err := s.ResumeFrom(Snapshot{Done: -time.Second}); err == nil {
		t.Fatal("negative snapshot accepted")
	}
	if s.Done() != 0 {
		t.Fatal("rejected snapshot mutated progress")
	}
}

func TestSliceWorkNegativeTotal(t *testing.T) {
	s := NewSliceWork(-time.Second)
	if !s.Finished() || s.Total() != 0 {
		t.Fatalf("negative total: %+v", s)
	}
}
