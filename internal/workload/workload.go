// Package workload generates the synthetic populations the paper's
// evaluation uses (Section 3.3): node capabilities and job constraints
// that are either clustered (a small number of equivalence classes) or
// mixed (sampled independently per node/job), jobs that are lightly or
// heavily constrained (each of the three resource types constrained
// with a fixed independent probability), Poisson job arrivals, and
// runtimes centered on a configurable mean.
package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/resource"
)

// Population selects how capabilities/constraints are distributed.
type Population int

// The two population axes of the paper's problem space.
const (
	// Clustered divides nodes or jobs into a small number of
	// equivalence classes; all members of a class are identical
	// (Condor-like node pools, BOINC-like job batches).
	Clustered Population = iota
	// Mixed samples every node or job independently.
	Mixed
)

func (p Population) String() string {
	if p == Clustered {
		return "clustered"
	}
	return "mixed"
}

// ConstraintLevel selects the job constraint density.
type ConstraintLevel int

// The paper's two constraint levels: lightly-constrained jobs average
// 1.2 of the 3 resource types constrained (probability 0.4 each);
// heavily-constrained jobs average 2.4 (probability 0.8 each).
const (
	Lightly ConstraintLevel = iota
	Heavily
)

func (l ConstraintLevel) String() string {
	if l == Lightly {
		return "lightly"
	}
	return "heavily"
}

// Prob returns the per-resource constraint probability.
func (l ConstraintLevel) Prob() float64 {
	if l == Lightly {
		return 0.4
	}
	return 0.8
}

// Config parameterizes generation. NewConfig supplies the paper's
// defaults: 1000 nodes, 5000 jobs, 100 s mean runtime, 0.1 s mean
// inter-arrival.
type Config struct {
	Nodes       int
	Jobs        int
	Seed        int64
	NodePop     Population
	JobPop      Population
	Level       ConstraintLevel
	NodeClasses int // class count when NodePop == Clustered
	JobClasses  int // class count when JobPop == Clustered
	Clients     int // distinct submitting clients

	MeanRuntime      time.Duration
	MeanInterarrival time.Duration

	// Space bounds capability sampling (default resource.DefaultSpace).
	Space resource.Space
}

// NewConfig returns the paper-scale defaults.
func NewConfig() Config {
	return Config{
		Nodes:            1000,
		Jobs:             5000,
		Seed:             1,
		NodePop:          Mixed,
		JobPop:           Mixed,
		Level:            Lightly,
		NodeClasses:      5,
		JobClasses:       5,
		Clients:          8,
		MeanRuntime:      100 * time.Second,
		MeanInterarrival: 100 * time.Millisecond,
		Space:            resource.DefaultSpace,
	}
}

// Scale resizes a config by factor f > 0 — shrinking (f < 1) for quick
// CI runs or growing (f > 1) for scale benchmarks — preserving the
// offered load (jobs-per-node and arrival rate scale together).
func (c Config) Scale(f float64) Config {
	if f <= 0 || f == 1 {
		return c
	}
	c.Nodes = max(2, int(float64(c.Nodes)*f))
	c.Jobs = max(1, int(float64(c.Jobs)*f))
	// Fewer nodes absorb proportionally fewer jobs per second.
	c.MeanInterarrival = time.Duration(float64(c.MeanInterarrival) / f)
	return c
}

// NodeSpec describes one generated node.
type NodeSpec struct {
	Caps resource.Vector
	OS   string
	// Class is the equivalence class index (clustered populations).
	Class int
}

// JobSpec describes one generated job.
type JobSpec struct {
	Cons resource.Constraints
	// Work is the job's nominal runtime.
	Work time.Duration
	// Arrival is the submission instant relative to workload start.
	Arrival time.Duration
	// Client indexes the submitting client in [0, Config.Clients).
	Client int
	// Class is the equivalence class index (clustered populations).
	Class int
}

// Workload is a generated node and job population.
type Workload struct {
	Config Config
	Nodes  []NodeSpec
	Jobs   []JobSpec
}

// Generate builds a workload deterministically from cfg.Seed.
func Generate(cfg Config) *Workload {
	if cfg.Space == (resource.Space{}) {
		cfg.Space = resource.DefaultSpace
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.NodeClasses <= 0 {
		cfg.NodeClasses = 5
	}
	if cfg.JobClasses <= 0 {
		cfg.JobClasses = 5
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &Workload{Config: cfg}

	// --- nodes ---
	sampleCaps := func() resource.Vector {
		var v resource.Vector
		for i := range v {
			lo, hi := cfg.Space.Lo[i], cfg.Space.Hi[i]
			v[i] = lo + rng.Float64()*(hi-lo)
		}
		return v
	}
	var nodeClasses []resource.Vector
	if cfg.NodePop == Clustered {
		for i := 0; i < cfg.NodeClasses; i++ {
			nodeClasses = append(nodeClasses, sampleCaps())
		}
	}
	for i := 0; i < cfg.Nodes; i++ {
		spec := NodeSpec{OS: "linux"}
		if cfg.NodePop == Clustered {
			spec.Class = rng.Intn(len(nodeClasses))
			spec.Caps = nodeClasses[spec.Class]
		} else {
			spec.Caps = sampleCaps()
		}
		w.Nodes = append(w.Nodes, spec)
	}

	// --- jobs ---
	// Constraints are anchored at a random node so every job is
	// satisfiable by at least one node in the population.
	sampleCons := func() resource.Constraints {
		anchor := w.Nodes[rng.Intn(len(w.Nodes))].Caps
		cons := resource.Unconstrained
		p := cfg.Level.Prob()
		for t := resource.Type(0); t < resource.NumTypes; t++ {
			if rng.Float64() >= p {
				continue
			}
			lo := cfg.Space.Lo[t]
			cons = cons.Require(t, lo+rng.Float64()*(anchor[t]-lo))
		}
		return cons
	}
	// Clustered job classes anchor their requirements just below a node
	// class's capabilities, as in workloads where job batches target a
	// known machine class; their insertion points in the CAN space then
	// fall inside that class's zone stack. Classes are assigned
	// round-robin over the node classes so each machine class receives
	// its own batch stream (random anchoring would occasionally point
	// two job classes at one machine class, overloading it while other
	// classes idle — a workload artifact, not a matchmaking effect).
	var jobClasses []resource.Constraints
	if cfg.JobPop == Clustered {
		for i := 0; i < cfg.JobClasses; i++ {
			var anchor resource.Vector
			if cfg.NodePop == Clustered {
				anchor = nodeClasses[i%len(nodeClasses)]
			} else {
				anchor = w.Nodes[rng.Intn(len(w.Nodes))].Caps
			}
			cons := resource.Unconstrained
			p := cfg.Level.Prob()
			for t := resource.Type(0); t < resource.NumTypes; t++ {
				if rng.Float64() >= p {
					continue
				}
				cons = cons.Require(t, anchor[t]*(0.9+0.1*rng.Float64()))
			}
			jobClasses = append(jobClasses, cons)
		}
	}
	// Clients submit at different average rates: client c's weight is
	// proportional to c+1.
	clientPick := func() int {
		total := cfg.Clients * (cfg.Clients + 1) / 2
		x := rng.Intn(total)
		for c := 0; c < cfg.Clients; c++ {
			x -= c + 1
			if x < 0 {
				return c
			}
		}
		return cfg.Clients - 1
	}
	var clock time.Duration
	for i := 0; i < cfg.Jobs; i++ {
		spec := JobSpec{Client: clientPick()}
		if cfg.JobPop == Clustered {
			spec.Class = rng.Intn(len(jobClasses))
			spec.Cons = jobClasses[spec.Class]
		} else {
			spec.Cons = sampleCons()
		}
		// Runtime uniform in [0.5, 1.5] x mean.
		spec.Work = time.Duration((0.5 + rng.Float64()) * float64(cfg.MeanRuntime))
		// Poisson arrivals: exponential inter-arrival gaps.
		clock += time.Duration(rng.ExpFloat64() * float64(cfg.MeanInterarrival))
		spec.Arrival = clock
		w.Jobs = append(w.Jobs, spec)
	}
	return w
}

// SatisfiableBy returns how many nodes satisfy a job's constraints —
// a diagnostic for workload hardness.
func (w *Workload) SatisfiableBy(j JobSpec) int {
	n := 0
	for _, node := range w.Nodes {
		if j.Cons.SatisfiedBy(node.Caps, node.OS) {
			n++
		}
	}
	return n
}

// Makespan returns the last arrival instant.
func (w *Workload) Makespan() time.Duration {
	if len(w.Jobs) == 0 {
		return 0
	}
	return w.Jobs[len(w.Jobs)-1].Arrival
}

// TotalWork sums all job runtimes.
func (w *Workload) TotalWork() time.Duration {
	var t time.Duration
	for _, j := range w.Jobs {
		t += j.Work
	}
	return t
}

// OfferedLoad estimates system utilization: total work divided by
// (nodes x arrival span).
func (w *Workload) OfferedLoad() float64 {
	span := w.Makespan()
	if span == 0 || len(w.Nodes) == 0 {
		return 0
	}
	return float64(w.TotalWork()) / (float64(span) * float64(len(w.Nodes)))
}

// WriteJSON serializes the workload (trace export).
func (w *Workload) WriteJSON(out io.Writer) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(w)
}

// ReadJSON deserializes a workload written by WriteJSON.
func ReadJSON(in io.Reader) (*Workload, error) {
	var w Workload
	if err := json.NewDecoder(in).Decode(&w); err != nil {
		return nil, fmt.Errorf("workload: decode: %w", err)
	}
	return &w, nil
}
