// Package simhost adapts a simnet.Endpoint to the transport.Host and
// transport.Runtime interfaces, binding protocol code to the
// deterministic simulator.
package simhost

import (
	"errors"
	"math/rand"
	"time"

	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// Host implements transport.Host over a simulated endpoint.
type Host struct {
	ep *simnet.Endpoint
}

// New wraps a simulated endpoint.
func New(ep *simnet.Endpoint) *Host { return &Host{ep: ep} }

// Endpoint returns the underlying simulated endpoint.
func (h *Host) Endpoint() *simnet.Endpoint { return h.ep }

// Addr implements transport.Host.
func (h *Host) Addr() transport.Addr { return transport.Addr(h.ep.Addr()) }

// Up implements transport.Host.
func (h *Host) Up() bool { return h.ep.Up() }

// Handle implements transport.Host.
func (h *Host) Handle(method string, fn transport.Handler) {
	h.ep.Handle(method, func(p *sim.Proc, from simnet.Addr, req any) (any, error) {
		return fn(&runtime{h: h, p: p}, transport.Addr(from), req)
	})
}

// Go implements transport.Host.
func (h *Host) Go(name string, fn func(rt transport.Runtime)) {
	h.ep.Go(name, func(p *sim.Proc) {
		fn(&runtime{h: h, p: p})
	})
}

// runtime binds one simulated proc to the transport.Runtime interface.
type runtime struct {
	h *Host
	p *sim.Proc
}

func (r *runtime) Now() time.Duration    { return time.Duration(r.p.Now()) }
func (r *runtime) Sleep(d time.Duration) { r.p.Sleep(d) }
func (r *runtime) Rand() *rand.Rand      { return r.p.Rand() }

func (r *runtime) Call(to transport.Addr, method string, req any) (any, error) {
	resp, err := r.h.ep.Call(r.p, simnet.Addr(to), method, req)
	return resp, translate(err)
}

func (r *runtime) CallT(to transport.Addr, method string, req any, timeout time.Duration) (any, error) {
	resp, err := r.h.ep.CallT(r.p, simnet.Addr(to), method, req, timeout)
	return resp, translate(err)
}

// translate maps simnet errors to the transport sentinels.
func translate(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, simnet.ErrTimeout):
		return transport.ErrTimeout
	case errors.Is(err, simnet.ErrUnreachable):
		return transport.ErrUnreachable
	case errors.Is(err, simnet.ErrNoHandler):
		return transport.ErrNoHandler
	case errors.Is(err, simnet.ErrDown):
		return transport.ErrDown
	default:
		return err
	}
}
