package simhost

import (
	"errors"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/transport"
)

func pair(t *testing.T) (*sim.Engine, *Host, *Host) {
	t.Helper()
	e := sim.NewEngine(1)
	n := simnet.New(e)
	n.Latency = simnet.FixedLatency(5 * time.Millisecond)
	n.CallTimeout = 300 * time.Millisecond
	return e, New(n.NewEndpoint("a")), New(n.NewEndpoint("b"))
}

func TestHostBasics(t *testing.T) {
	e, a, b := pair(t)
	defer e.Shutdown()
	if a.Addr() != "a" || !a.Up() {
		t.Fatal("addr/up wrong")
	}
	b.Handle("echo", func(rt transport.Runtime, from transport.Addr, req any) (any, error) {
		if from != "a" {
			t.Errorf("from = %s", from)
		}
		return req, nil
	})
	done := false
	a.Go("caller", func(rt transport.Runtime) {
		defer func() { done = true }()
		if rt.Now() != 0 {
			t.Errorf("epoch now = %v", rt.Now())
		}
		rt.Sleep(time.Second)
		if rt.Now() != time.Second {
			t.Errorf("now after sleep = %v", rt.Now())
		}
		if rt.Rand() == nil {
			t.Error("nil rand")
		}
		resp, err := rt.Call("b", "echo", 42)
		if err != nil || resp != 42 {
			t.Errorf("call: %v %v", resp, err)
		}
	})
	e.Run()
	if !done {
		t.Fatal("activity did not run")
	}
	if a.Endpoint() == nil {
		t.Fatal("Endpoint accessor nil")
	}
}

func TestErrorTranslation(t *testing.T) {
	e, a, b := pair(t)
	defer e.Shutdown()
	b.Handle("slow", func(rt transport.Runtime, from transport.Addr, req any) (any, error) {
		rt.Sleep(time.Hour)
		return nil, nil
	})
	sentinel := errors.New("app error")
	b.Handle("fail", func(rt transport.Runtime, from transport.Addr, req any) (any, error) {
		return nil, sentinel
	})
	a.Go("caller", func(rt transport.Runtime) {
		if _, err := rt.Call("b", "missing", nil); !errors.Is(err, transport.ErrNoHandler) {
			t.Errorf("no-handler: %v", err)
		}
		if _, err := rt.CallT("b", "slow", nil, 50*time.Millisecond); !errors.Is(err, transport.ErrTimeout) {
			t.Errorf("timeout: %v", err)
		}
		if _, err := rt.Call("nowhere", "x", nil); !errors.Is(err, transport.ErrUnreachable) {
			t.Errorf("unreachable: %v", err)
		}
		// Application errors pass through untranslated.
		if _, err := rt.Call("b", "fail", nil); err == nil || err.Error() != "app error" {
			t.Errorf("app error: %v", err)
		}
	})
	e.Run()
}

func TestCrashKillsActivities(t *testing.T) {
	e, a, _ := pair(t)
	progressed := 0
	a.Go("loop", func(rt transport.Runtime) {
		for {
			rt.Sleep(time.Second)
			progressed++
		}
	})
	e.Schedule(2500*time.Millisecond, func() { a.Endpoint().Crash() })
	e.Run()
	if progressed != 2 {
		t.Fatalf("progressed %d ticks, want 2 (killed at 2.5s)", progressed)
	}
	if a.Up() {
		t.Fatal("host still up after crash")
	}
}
