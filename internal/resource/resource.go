// Package resource models node capabilities and job requirements: the
// three resource types of the paper's evaluation (CPU speed, memory,
// disk), dominance and satisfaction predicates used by matchmaking, and
// the normalization of capability values into unit coordinates for the
// CAN space.
package resource

import (
	"fmt"
	"strings"
)

// Type identifies one resource dimension.
type Type int

// The resource types used throughout the system. The paper's workloads
// constrain jobs on three types ("out of the 3").
const (
	CPU Type = iota // relative CPU speed
	Memory
	Disk
	NumTypes
)

var typeNames = [NumTypes]string{"cpu", "memory", "disk"}

func (t Type) String() string {
	if t < 0 || t >= NumTypes {
		return fmt.Sprintf("resource.Type(%d)", int(t))
	}
	return typeNames[t]
}

// Vector holds one value per resource type; used both for node
// capabilities and for job requirement minima.
type Vector [NumTypes]float64

// Dominates reports whether v >= o in every dimension.
func (v Vector) Dominates(o Vector) bool {
	for i := range v {
		if v[i] < o[i] {
			return false
		}
	}
	return true
}

// StrictlyDominates reports whether v >= o in every dimension and
// v > o in at least one — the CAN candidate-set rule ("at least as
// capable in all dimensions, more capable in at least one").
func (v Vector) StrictlyDominates(o Vector) bool {
	strict := false
	for i := range v {
		if v[i] < o[i] {
			return false
		}
		if v[i] > o[i] {
			strict = true
		}
	}
	return strict
}

// Max returns the elementwise maximum — the RN-Tree aggregation
// operator for subtree capability summaries.
func (v Vector) Max(o Vector) Vector {
	out := v
	for i := range out {
		if o[i] > out[i] {
			out[i] = o[i]
		}
	}
	return out
}

func (v Vector) String() string {
	parts := make([]string, NumTypes)
	for i := range v {
		parts[i] = fmt.Sprintf("%s=%.2f", Type(i), v[i])
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// Constraints is a job's minimum resource requirements. Only masked
// dimensions constrain matchmaking; an unmasked dimension means "don't
// care", the common case for lightly-constrained workloads. OS, when
// non-empty, additionally requires an exact operating-system match.
type Constraints struct {
	Min  Vector
	Mask [NumTypes]bool
	OS   string
}

// Unconstrained is the empty requirement that any node satisfies.
var Unconstrained = Constraints{}

// Require returns a copy of c with an additional minimum on one type.
func (c Constraints) Require(t Type, min float64) Constraints {
	c.Min[t] = min
	c.Mask[t] = true
	return c
}

// RequireOS returns a copy of c requiring an exact OS match.
func (c Constraints) RequireOS(os string) Constraints {
	c.OS = os
	return c
}

// Count returns the number of constrained resource dimensions
// (the paper's "average of 1.2 / 2.4 constraints out of the 3").
func (c Constraints) Count() int {
	n := 0
	for _, m := range c.Mask {
		if m {
			n++
		}
	}
	return n
}

// SatisfiedBy reports whether a node with the given capabilities and OS
// can run a job with these constraints.
func (c Constraints) SatisfiedBy(caps Vector, os string) bool {
	if c.OS != "" && c.OS != os {
		return false
	}
	for i, m := range c.Mask {
		if m && caps[i] < c.Min[i] {
			return false
		}
	}
	return true
}

// Effective returns the requirement vector with unconstrained
// dimensions set to zero — the job's coordinates in the CAN space.
func (c Constraints) Effective() Vector {
	var v Vector
	for i, m := range c.Mask {
		if m {
			v[i] = c.Min[i]
		}
	}
	return v
}

func (c Constraints) String() string {
	var parts []string
	for i, m := range c.Mask {
		if m {
			parts = append(parts, fmt.Sprintf("%s>=%.2f", Type(i), c.Min[i]))
		}
	}
	if c.OS != "" {
		parts = append(parts, "os="+c.OS)
	}
	if len(parts) == 0 {
		return "{any}"
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// Space maps raw resource values into unit coordinates [0,1) per
// dimension, as the CAN overlay requires. Values outside the declared
// range are clamped.
type Space struct {
	Lo, Hi Vector
}

// DefaultSpace covers the capability ranges the workload generator
// draws from: CPU speed 1-10 units, memory 0.25-8 GB, disk 1-500 GB.
var DefaultSpace = Space{
	Lo: Vector{1, 256, 1},
	Hi: Vector{10, 8192, 500},
}

// Normalize maps a raw vector to unit coordinates.
func (s Space) Normalize(v Vector) Vector {
	var out Vector
	for i := range v {
		span := s.Hi[i] - s.Lo[i]
		if span <= 0 {
			continue
		}
		x := (v[i] - s.Lo[i]) / span
		if x < 0 {
			x = 0
		}
		// Keep strictly below 1 so coordinates stay inside the CAN torus.
		if x >= 1 {
			x = 0.999999
		}
		out[i] = x
	}
	return out
}

// Denormalize maps unit coordinates back to raw values.
func (s Space) Denormalize(v Vector) Vector {
	var out Vector
	for i := range v {
		out[i] = s.Lo[i] + v[i]*(s.Hi[i]-s.Lo[i])
	}
	return out
}
