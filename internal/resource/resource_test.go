package resource

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestTypeString(t *testing.T) {
	if CPU.String() != "cpu" || Memory.String() != "memory" || Disk.String() != "disk" {
		t.Fatal("type names wrong")
	}
	if !strings.Contains(Type(99).String(), "99") {
		t.Fatal("out-of-range type name")
	}
}

func TestDominates(t *testing.T) {
	a := Vector{2, 2, 2}
	b := Vector{1, 2, 2}
	if !a.Dominates(b) || b.Dominates(a) {
		t.Fatal("Dominates wrong")
	}
	if !a.Dominates(a) {
		t.Fatal("Dominates not reflexive")
	}
}

func TestStrictlyDominates(t *testing.T) {
	a := Vector{2, 2, 2}
	if a.StrictlyDominates(a) {
		t.Fatal("strict dominance must exclude equality")
	}
	if !a.StrictlyDominates(Vector{2, 1, 2}) {
		t.Fatal("strict dominance missed")
	}
	if a.StrictlyDominates(Vector{3, 1, 1}) {
		t.Fatal("incomparable vectors must not dominate")
	}
}

func TestMax(t *testing.T) {
	a := Vector{1, 5, 2}
	b := Vector{3, 1, 2}
	want := Vector{3, 5, 2}
	if got := a.Max(b); got != want {
		t.Fatalf("Max = %v", got)
	}
	if a.Max(b) != b.Max(a) {
		t.Fatal("Max not commutative")
	}
}

func TestMaxProperties(t *testing.T) {
	f := func(a0, a1, a2, b0, b1, b2 float64) bool {
		a := Vector{a0, a1, a2}
		b := Vector{b0, b1, b2}
		m := a.Max(b)
		// Max dominates both inputs and is idempotent.
		return m.Dominates(a) && m.Dominates(b) && m.Max(m) == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConstraintsSatisfiedBy(t *testing.T) {
	c := Unconstrained.Require(CPU, 2).Require(Memory, 1024)
	if c.Count() != 2 {
		t.Fatalf("Count = %d", c.Count())
	}
	if !c.SatisfiedBy(Vector{2, 1024, 0}, "linux") {
		t.Fatal("boundary values must satisfy")
	}
	if c.SatisfiedBy(Vector{1.9, 2048, 0}, "linux") {
		t.Fatal("cpu shortfall must fail")
	}
	if c.SatisfiedBy(Vector{4, 512, 0}, "linux") {
		t.Fatal("memory shortfall must fail")
	}
	// Unconstrained disk is ignored entirely.
	if !c.SatisfiedBy(Vector{9, 9999, -5}, "") {
		t.Fatal("unmasked dimension must not matter")
	}
}

func TestConstraintsOS(t *testing.T) {
	c := Unconstrained.RequireOS("linux")
	if !c.SatisfiedBy(Vector{}, "linux") {
		t.Fatal("matching OS rejected")
	}
	if c.SatisfiedBy(Vector{}, "windows") {
		t.Fatal("mismatched OS accepted")
	}
	if Unconstrained.SatisfiedBy(Vector{}, "anything") != true {
		t.Fatal("empty OS requirement must match all")
	}
}

func TestUnconstrainedSatisfiedByAnyone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		v := Vector{rng.Float64() * 10, rng.Float64() * 8192, rng.Float64() * 500}
		if !Unconstrained.SatisfiedBy(v, "os") {
			t.Fatalf("Unconstrained rejected %v", v)
		}
	}
}

func TestEffective(t *testing.T) {
	c := Unconstrained.Require(Disk, 100)
	want := Vector{0, 0, 100}
	if got := c.Effective(); got != want {
		t.Fatalf("Effective = %v", got)
	}
}

func TestRequireDoesNotMutate(t *testing.T) {
	base := Unconstrained.Require(CPU, 1)
	_ = base.Require(Memory, 5)
	if base.Mask[Memory] {
		t.Fatal("Require mutated receiver")
	}
}

func TestConstraintsString(t *testing.T) {
	if Unconstrained.String() != "{any}" {
		t.Fatalf("String = %q", Unconstrained.String())
	}
	s := Unconstrained.Require(CPU, 2).RequireOS("linux").String()
	if !strings.Contains(s, "cpu>=2.00") || !strings.Contains(s, "os=linux") {
		t.Fatalf("String = %q", s)
	}
}

func TestVectorString(t *testing.T) {
	s := Vector{1, 2, 3}.String()
	if !strings.Contains(s, "cpu=1.00") || !strings.Contains(s, "disk=3.00") {
		t.Fatalf("String = %q", s)
	}
}

func TestNormalizeBounds(t *testing.T) {
	s := DefaultSpace
	lo := s.Normalize(s.Lo)
	if lo != (Vector{}) {
		t.Fatalf("Normalize(Lo) = %v", lo)
	}
	hi := s.Normalize(s.Hi)
	for i := range hi {
		if hi[i] < 0 || hi[i] >= 1 {
			t.Fatalf("Normalize(Hi)[%d] = %v, want in [0,1)", i, hi[i])
		}
	}
	// Clamping below and above.
	under := s.Normalize(Vector{-100, -100, -100})
	if under != (Vector{}) {
		t.Fatalf("under-range = %v", under)
	}
	over := s.Normalize(Vector{1e9, 1e9, 1e9})
	for i := range over {
		if over[i] >= 1 {
			t.Fatalf("over-range coordinate %v escaped torus", over[i])
		}
	}
}

func TestNormalizeMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		// restrict to in-range cpu values
		a = 1 + mod(a, 9)
		b = 1 + mod(b, 9)
		na := DefaultSpace.Normalize(Vector{a, 256, 1})
		nb := DefaultSpace.Normalize(Vector{b, 256, 1})
		if a < b {
			return na[CPU] <= nb[CPU]
		}
		return na[CPU] >= nb[CPU]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDenormalizeRoundTrip(t *testing.T) {
	s := DefaultSpace
	v := Vector{5, 4096, 250}
	rt := s.Denormalize(s.Normalize(v))
	for i := range v {
		if diff := rt[i] - v[i]; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("round trip: %v vs %v", rt, v)
		}
	}
}

func TestDegenerateSpace(t *testing.T) {
	s := Space{Lo: Vector{5, 5, 5}, Hi: Vector{5, 5, 5}}
	if got := s.Normalize(Vector{5, 7, 3}); got != (Vector{}) {
		t.Fatalf("degenerate Normalize = %v", got)
	}
}

func mod(x, m float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Abs(math.Mod(x, m))
}
