package grid

// White-box tests for the checkpoint subsystem's acceptance rules and
// the adaptive interval, plus owner-handler edge cases (adoption of an
// already-owned job, status for a completed job) that the simulator
// only reaches through rare interleavings.

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/transport"
)

func TestAbsorbCkptRules(t *testing.T) {
	id := ids.HashString("job")
	job := &ownedJob{
		prof:     Profile{ID: id, Attempt: 1},
		run:      "run1",
		matched:  true,
		excluded: []transport.Addr{"zombie"},
	}
	ck := func(run transport.Addr, attempt int, done time.Duration) Checkpoint {
		return Checkpoint{JobID: id, Attempt: attempt, Run: run, Done: done}
	}

	if job.absorbCkpt(Checkpoint{}) {
		t.Fatal("zero checkpoint absorbed")
	}
	if job.absorbCkpt(ck("run1", 0, 5*time.Second)) {
		t.Fatal("wrong-attempt checkpoint absorbed")
	}
	if job.absorbCkpt(ck("zombie", 1, 5*time.Second)) {
		t.Fatal("excluded run node's checkpoint absorbed")
	}
	if job.absorbCkpt(ck("run2", 1, 5*time.Second)) {
		t.Fatal("checkpoint from a non-matched run node absorbed")
	}
	if !job.absorbCkpt(ck("run1", 1, 5*time.Second)) {
		t.Fatal("valid checkpoint rejected")
	}
	if job.ckpt.Done != 5*time.Second {
		t.Fatalf("ckpt.Done = %v", job.ckpt.Done)
	}
	// Progress must be monotonic: a stale snapshot never wins.
	if job.absorbCkpt(ck("run1", 1, 3*time.Second)) {
		t.Fatal("non-monotonic checkpoint absorbed")
	}
	if !job.absorbCkpt(ck("run1", 1, 9*time.Second)) {
		t.Fatal("fresher checkpoint rejected")
	}
	// While a rematch is in flight (unmatched), any non-excluded node's
	// progress is acceptable — it may be the replacement's first report.
	job.matched = false
	if !job.absorbCkpt(ck("run3", 1, 11*time.Second)) {
		t.Fatal("unmatched job rejected replacement's checkpoint")
	}
}

func TestCkptIntervalFixedAndAdaptive(t *testing.T) {
	fixed, _ := newStubNode(nil, Config{CheckpointEvery: 10 * time.Second})
	if got := fixed.ckptInterval(time.Minute, 0); got != 10*time.Second {
		t.Fatalf("fixed interval = %v", got)
	}

	n, _ := newStubNode(nil, Config{
		CheckpointEvery:      10 * time.Second,
		CheckpointAdaptive:   true,
		CheckpointMinEvery:   time.Second,
		CheckpointMaxEvery:   time.Minute,
		CheckpointCost:       500 * time.Millisecond,
		CheckpointFailWindow: 2 * time.Minute,
	})
	now := 10 * time.Minute
	// No observed failures: back off to the max interval.
	if got := n.ckptInterval(now, 0); got != time.Minute {
		t.Fatalf("quiet interval = %v, want max", got)
	}
	// One failure in the window: Young's rule sqrt(2*0.5/(1/120)) ≈ 11 s.
	n.noteFailureSignal(now)
	got := n.ckptInterval(now, 0)
	if got < 9*time.Second || got > 13*time.Second {
		t.Fatalf("1-failure interval = %v, want ~11s", got)
	}
	// A burst of failures drives the interval to the floor.
	for i := 0; i < 500; i++ {
		n.noteFailureSignal(now)
	}
	if got := n.ckptInterval(now, 0); got != time.Second {
		t.Fatalf("burst interval = %v, want min clamp", got)
	}
	// Outside the window the observations expire and the interval
	// relaxes back to the max.
	later := now + 5*time.Minute
	n.noteFailureSignal(later) // triggers pruning of the stale burst
	n.failObs = nil
	if got := n.ckptInterval(later, 0); got != time.Minute {
		t.Fatalf("post-window interval = %v, want max", got)
	}
}

// TestCkptIntervalWorkflowAware: under CheckpointWorkflowAware a
// CkptBias > 1 divides the adaptive interval by sqrt(bias) — including
// the stable-neighbourhood backoff — clamped at the floor; without the
// flag (or with bias <= 1, or under fixed policy) the bias is inert.
func TestCkptIntervalWorkflowAware(t *testing.T) {
	cfg := Config{
		CheckpointEvery:      10 * time.Second,
		CheckpointAdaptive:   true,
		CheckpointMinEvery:   time.Second,
		CheckpointMaxEvery:   time.Minute,
		CheckpointCost:       500 * time.Millisecond,
		CheckpointFailWindow: 2 * time.Minute,
	}
	now := 10 * time.Minute

	// Flag off: bias ignored entirely.
	plain, _ := newStubNode(nil, cfg)
	if got := plain.ckptInterval(now, 4); got != time.Minute {
		t.Fatalf("bias honored without CheckpointWorkflowAware: %v", got)
	}

	cfg.CheckpointWorkflowAware = true
	n, _ := newStubNode(nil, cfg)
	// Quiet neighbourhood: the backoff itself tightens, 60s/sqrt(4)=30s.
	if got := n.ckptInterval(now, 4); got != 30*time.Second {
		t.Fatalf("biased quiet interval = %v, want 30s", got)
	}
	// bias <= 1 means unbiased.
	if got := n.ckptInterval(now, 1); got != time.Minute {
		t.Fatalf("bias=1 interval = %v, want max", got)
	}
	if got := n.ckptInterval(now, 0); got != time.Minute {
		t.Fatalf("bias=0 interval = %v, want max", got)
	}
	// With a failure observed, Young's optimum (~11s) divides by
	// sqrt(bias) too.
	n.noteFailureSignal(now)
	base := n.ckptInterval(now, 0)
	biased := n.ckptInterval(now, 4)
	if want := base / 2; biased < want-time.Millisecond || biased > want+time.Millisecond {
		t.Fatalf("biased interval = %v, want %v (base %v / sqrt(4))", biased, want, base)
	}
	// The floor still holds under extreme bias.
	if got := n.ckptInterval(now, 1e6); got != time.Second {
		t.Fatalf("extreme bias broke the floor: %v", got)
	}

	// Fixed policy ignores the bias.
	fixed, _ := newStubNode(nil, Config{CheckpointEvery: 10 * time.Second, CheckpointWorkflowAware: true})
	if got := fixed.ckptInterval(now, 9); got != 10*time.Second {
		t.Fatalf("fixed policy honored bias: %v", got)
	}
}

func TestNoteFailureSignalPrunesWindow(t *testing.T) {
	n, _ := newStubNode(nil, Config{
		CheckpointEvery:      10 * time.Second,
		CheckpointAdaptive:   true,
		CheckpointFailWindow: time.Minute,
	})
	n.noteFailureSignal(10 * time.Second)
	n.noteFailureSignal(20 * time.Second)
	n.noteFailureSignal(2 * time.Minute) // first two now outside the window
	if len(n.failObs) != 1 {
		t.Fatalf("failObs = %v, want pruned to 1", n.failObs)
	}
	// Signals are ignored entirely when the policy is not adaptive.
	fixed, _ := newStubNode(nil, Config{CheckpointEvery: 10 * time.Second})
	fixed.noteFailureSignal(time.Second)
	if len(fixed.failObs) != 0 {
		t.Fatal("fixed policy recorded a failure observation")
	}
}

func TestCollectPendingCkptsAndMarkShipped(t *testing.T) {
	n, _ := newStubNode(nil, Config{CheckpointEvery: 2 * time.Second})
	idA, idB := orderedIDs()
	idDone := ids.HashString("done-job")
	fresh := &queuedJob{
		prof:  Profile{ID: idA},
		owner: "owner1",
		ckpt:  Checkpoint{JobID: idA, Done: 6 * time.Second},
	}
	shipped := &queuedJob{
		prof:        Profile{ID: idB},
		owner:       "owner2",
		ckpt:        Checkpoint{JobID: idB, Done: 4 * time.Second},
		shippedDone: 4 * time.Second,
	}
	done := &queuedJob{
		prof:  Profile{ID: idDone},
		owner: "owner1",
		ckpt:  Checkpoint{JobID: idDone, Done: 2 * time.Second},
	}
	noCkpt := &queuedJob{prof: Profile{ID: ids.HashString("fresh")}, owner: "owner1"}
	n.done[idDone] = true

	got := n.collectPendingCkpts([]*queuedJob{fresh, shipped, done, noCkpt})
	if len(got) != 1 || got[0].ckpt.JobID != idA || got[0].owner != "owner1" {
		t.Fatalf("collectPendingCkpts = %+v, want only the fresh job", got)
	}

	n.markShipped(got[0])
	if fresh.shippedDone != 6*time.Second {
		t.Fatalf("shippedDone = %v", fresh.shippedDone)
	}
	// Shipping an older snapshot later must not regress the mark.
	n.markShipped(pendingCkpt{job: fresh, ckpt: Checkpoint{JobID: idA, Done: 3 * time.Second}})
	if fresh.shippedDone != 6*time.Second {
		t.Fatalf("shippedDone regressed to %v", fresh.shippedDone)
	}
	if again := n.collectPendingCkpts([]*queuedJob{fresh}); len(again) != 0 {
		t.Fatalf("already-shipped checkpoint collected again: %+v", again)
	}

	// With checkpointing off, nothing is ever collected.
	off, _ := newStubNode(nil, Config{})
	if got := off.collectPendingCkpts([]*queuedJob{fresh}); got != nil {
		t.Fatal("disabled subsystem collected checkpoints")
	}
}

// TestAdoptAlreadyOwnedJobKeepsRecord: a duplicated AdoptReq (or one
// re-routed to an owner that already tracks the job) must not reset the
// owner's record — but it must still absorb a fresher checkpoint.
func TestAdoptAlreadyOwnedJobKeepsRecord(t *testing.T) {
	id := ids.HashString("job")
	adopted := 0
	rec := RecorderFunc(func(ev Event) {
		if ev.Kind == EvOwnerAdopted {
			adopted++
		}
	})
	n, _ := newStubNode(rec, Config{CheckpointEvery: 2 * time.Second})
	n.owned[id] = &ownedJob{
		prof:    Profile{ID: id, Attempt: 0, Client: "client"},
		run:     "run1",
		matched: true,
		lastHB:  5 * time.Second,
		ckpt:    Checkpoint{JobID: id, Run: "run1", Done: 3 * time.Second},
	}
	rt := &stubRT{now: 20 * time.Second, rng: rand.New(rand.NewSource(1))}

	_, err := n.handleAdopt(rt, "run1", AdoptReq{
		Prof: Profile{ID: id, Attempt: 0, Client: "client"},
		Run:  "run1",
		Ckpt: Checkpoint{JobID: id, Run: "run1", Done: 8 * time.Second},
	})
	if err != nil {
		t.Fatalf("handleAdopt: %v", err)
	}
	job := n.owned[id]
	if job.run != "run1" || !job.matched {
		t.Fatalf("duplicate adopt rewrote the record: %+v", job)
	}
	if job.lastHB != 5*time.Second {
		t.Fatalf("duplicate adopt touched lastHB: %v", job.lastHB)
	}
	if job.ckpt.Done != 8*time.Second {
		t.Fatalf("fresher checkpoint not absorbed on duplicate adopt: %v", job.ckpt.Done)
	}
	if adopted != 1 {
		t.Fatalf("EvOwnerAdopted recorded %d times, want 1", adopted)
	}

	// A first-time adopt creates the record and seeds its checkpoint.
	id2 := ids.HashString("job2")
	_, err = n.handleAdopt(rt, "run2", AdoptReq{
		Prof: Profile{ID: id2, Client: "client"},
		Run:  "run2",
		Ckpt: Checkpoint{JobID: id2, Run: "run2", Done: 4 * time.Second},
	})
	if err != nil {
		t.Fatalf("handleAdopt: %v", err)
	}
	if job2 := n.owned[id2]; job2 == nil || job2.run != "run2" || job2.ckpt.Done != 4*time.Second {
		t.Fatalf("fresh adopt record wrong: %+v", n.owned[id2])
	}
}

// TestStatusForCompletedJob: once a job completes the owner forgets it,
// so a status probe must answer Known=false — the signal the client
// monitor uses to resubmit, and the reason completed jobs must never
// linger as Known.
func TestStatusForCompletedJob(t *testing.T) {
	id := ids.HashString("job")
	n, _ := newStubNode(nil, Config{})
	n.owned[id] = &ownedJob{
		prof:    Profile{ID: id, Client: "client"},
		run:     "run1",
		matched: true,
	}
	rt := &stubRT{now: 10 * time.Second, rng: rand.New(rand.NewSource(2))}

	raw, err := n.handleStatus(rt, "client", StatusReq{JobID: id})
	if err != nil {
		t.Fatalf("handleStatus: %v", err)
	}
	if resp := raw.(StatusResp); !resp.Known || resp.Run != "run1" {
		t.Fatalf("live job status = %+v", resp)
	}

	if _, err := n.handleComplete(rt, "run1", CompleteReq{JobID: id, Run: "run1"}); err != nil {
		t.Fatalf("handleComplete: %v", err)
	}
	raw, err = n.handleStatus(rt, "client", StatusReq{JobID: id})
	if err != nil {
		t.Fatalf("handleStatus: %v", err)
	}
	if resp := raw.(StatusResp); resp.Known {
		t.Fatalf("completed job still Known: %+v", resp)
	}
	// Entirely unknown jobs answer the same way.
	raw, _ = n.handleStatus(rt, "client", StatusReq{JobID: ids.HashString("never")})
	if resp := raw.(StatusResp); resp.Known {
		t.Fatal("unknown job reported Known")
	}
}

// TestHandleCheckpointStandalone covers the oversized-snapshot RPC:
// known jobs absorb valid checkpoints, unknown jobs are ignored, and
// the per-job acceptance rules still apply.
func TestHandleCheckpointStandalone(t *testing.T) {
	id := ids.HashString("job")
	n, _ := newStubNode(nil, Config{CheckpointEvery: 2 * time.Second})
	n.owned[id] = &ownedJob{
		prof:    Profile{ID: id, Client: "client"},
		run:     "run1",
		matched: true,
	}
	rt := &stubRT{now: 10 * time.Second, rng: rand.New(rand.NewSource(3))}

	big := Checkpoint{JobID: id, Run: "run1", Done: 7 * time.Second, Data: make([]byte, 64<<10)}
	if _, err := n.handleCheckpoint(rt, "run1", CheckpointReq{Run: "run1", Ckpt: big}); err != nil {
		t.Fatalf("handleCheckpoint: %v", err)
	}
	if got := n.owned[id].ckpt.Done; got != 7*time.Second {
		t.Fatalf("standalone checkpoint not absorbed: %v", got)
	}
	// Unknown job: silently ignored, no entry materializes.
	stray := Checkpoint{JobID: ids.HashString("stray"), Run: "run1", Done: time.Second}
	if _, err := n.handleCheckpoint(rt, "run1", CheckpointReq{Run: "run1", Ckpt: stray}); err != nil {
		t.Fatalf("handleCheckpoint stray: %v", err)
	}
	if len(n.owned) != 1 {
		t.Fatal("stray checkpoint created an owned entry")
	}
	// Wrong-sender checkpoint rejected by the same absorb rules.
	zombie := Checkpoint{JobID: id, Run: "run2", Done: 20 * time.Second}
	_, _ = n.handleCheckpoint(rt, "run2", CheckpointReq{Run: "run2", Ckpt: zombie})
	if got := n.owned[id].ckpt.Done; got != 7*time.Second {
		t.Fatalf("zombie checkpoint absorbed: %v", got)
	}
}
