package grid

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/workload"
)

// --- run-node role ---

// assign validates and enqueues a job locally.
func (n *Node) assign(rt transport.Runtime, req AssignReq) (AssignResp, error) {
	if !req.Prof.Cons.SatisfiedBy(n.caps, n.os) {
		return AssignResp{}, fmt.Errorf("%w: %s on %s", ErrConstraints, req.Prof.Cons, n.host.Addr())
	}
	// An assignment carrying saved progress means a previous run node
	// died mid-job — a failure observation for the adaptive interval.
	if !req.Ckpt.Zero() {
		n.noteFailureSignal(rt.Now())
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	// Idempotence: re-assignment of a job we already hold just updates
	// the owner and its replica chain (both may have changed after
	// adoption). Local progress is at least as fresh as the owner's
	// copy, so the attached checkpoint is ignored.
	if n.running != nil && n.running.prof.ID == req.Prof.ID {
		n.running.owner = req.Owner
		n.running.reps = req.Reps
		return AssignResp{Position: 0}, nil
	}
	for i, q := range n.queue {
		if q.prof.ID == req.Prof.ID {
			q.owner = req.Owner
			q.reps = req.Reps
			return AssignResp{Position: i + 1}, nil
		}
	}
	delete(n.done, req.Prof.ID)
	q := &queuedJob{prof: req.Prof, owner: req.Owner, reps: req.Reps, enqueuedAt: rt.Now()}
	if !req.Ckpt.Zero() && req.Ckpt.Attempt == req.Prof.Attempt {
		// Resume seed: the owner already holds this snapshot, so it is
		// born shipped.
		q.ckpt = req.Ckpt
		q.shippedDone = req.Ckpt.Done
	}
	n.queue = append(n.queue, q)
	pos := len(n.queue)
	if n.running != nil {
		pos++
	}
	q.tc = n.trace(req.TC, rt.Now(), "enqueued", req.Prof.Attempt, req.Owner, n.traceNote("pos=%d", pos))
	n.record(EvEnqueued, req.Prof, rt.Now())
	return AssignResp{Position: pos}, nil
}

func (n *Node) handleAssign(rt transport.Runtime, from transport.Addr, req any) (any, error) {
	resp, err := n.assign(rt, req.(AssignReq))
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// execLoop is the run node's executor: one job at a time, FIFO by
// default, least-served-client-first under the FairShare extension.
func (n *Node) execLoop(rt transport.Runtime) {
	served := make(map[transport.Addr]int)
	for {
		n.mu.Lock()
		var job *queuedJob
		if len(n.queue) > 0 {
			pick := 0
			if n.cfg.FairShare {
				for i, q := range n.queue {
					if served[q.prof.Client] < served[n.queue[pick].prof.Client] {
						pick = i
					}
				}
			}
			job = n.queue[pick]
			n.queue = append(n.queue[:pick], n.queue[pick+1:]...)
			n.running = job
			served[job.prof.Client]++
			job.tc = n.trace(job.tc, rt.Now(), "started", job.prof.Attempt, "", "")
		}
		n.mu.Unlock()
		if job == nil {
			rt.Sleep(n.cfg.IdlePoll)
			continue
		}
		started := rt.Now()
		n.om.queueWait.Observe((started - job.enqueuedAt).Seconds())
		n.record(EvStarted, job.prof, started)
		n.notifyTransition(started, job.prof, EvStarted, n.host.Addr(), job.ckpt.Done)
		n.executeAndReport(rt, job, started)
	}
}

// execTime returns the job's execution duration on this node.
func (n *Node) execTime(prof Profile) time.Duration {
	if !n.cfg.SpeedScaling {
		return prof.Work
	}
	speed := n.caps[0]
	if speed < 0.1 {
		speed = 0.1
	}
	return time.Duration(float64(prof.Work) / speed)
}

// executeAndReport runs one job to completion and delivers the result.
func (n *Node) executeAndReport(rt transport.Runtime, job *queuedJob, started time.Duration) {
	outKB := job.prof.OutputKB
	execErr := ""
	aborted := false
	if n.cfg.Executor != nil {
		// Live executors are one-shot computations; the checkpoint
		// subsystem covers the simulated (resumable) execution path.
		kb, err := n.cfg.Executor(job.prof)
		if err != nil {
			execErr = err.Error()
		} else {
			outKB = kb
		}
	} else {
		aborted = n.executeSliced(rt, job)
	}
	finished := rt.Now()

	// The result digest fingerprints what the computation determined; a
	// Byzantine node corrupts it (distinctly per saboteur) or withholds
	// the result entirely.
	digest := ResultDigest(job.prof.Client, job.prof.Seq, outKB, execErr)
	wrong, withhold := false, false
	if n.cfg.Byzantine != nil {
		wrong, withhold = n.cfg.Byzantine(job.prof.ID, job.prof.Attempt)
	}
	if wrong {
		digest = CorruptDigest(digest, n.host.Addr())
	}

	n.om.runSeconds.Observe((finished - started).Seconds())
	n.mu.Lock()
	dropped := n.done[job.prof.ID] || aborted
	n.running = nil
	n.done[job.prof.ID] = true
	owner := job.owner
	tc := job.tc
	n.mu.Unlock()
	if dropped {
		// The owner reassigned this job while we ran it; discard.
		return
	}
	if withhold {
		// Result withholding: the job ran to completion but the
		// saboteur reports nothing and stops heartbeating it. To the
		// owner this replica now looks crashed — the heartbeat timeout
		// disavows it and recruits a replacement.
		return
	}
	n.mu.Lock()
	n.Completed++
	n.mu.Unlock()
	tc = n.trace(tc, finished, "executed", job.prof.Attempt, "", n.traceNote("out_kb=%d", outKB))

	res := Result{
		JobID:    job.prof.ID,
		Attempt:  job.prof.Attempt,
		RunNode:  n.host.Addr(),
		Started:  started,
		Finished: finished,
		OutputKB: outKB,
		Err:      execErr,
		Digest:   digest,
	}
	if job.prof.CarryOutput && execErr == "" {
		// Stage output for workflow data passing: a pure function of the
		// submission identity and input bytes, so every attempt on every
		// run node derives identical bytes (resubmission-safe).
		res.Data = StageOutput(job.prof)
	}
	if n.cfg.votingOn() {
		// Redundant execution: the replica does not deliver to the
		// client; its completion IS its vote, and the owner delivers
		// the quorum winner.
		n.reportVote(rt, owner, res, tc)
		return
	}
	// Deliver the result first, then release the owner: completing
	// before delivery would make the owner forget the job and lose the
	// relay fallback.
	delivered, tc := n.deliverResult(rt, job.prof, owner, res, tc)
	if delivered {
		req := CompleteReq{JobID: res.JobID, Run: n.host.Addr(), TC: tc}
		if owner == n.host.Addr() {
			_, _ = n.handleComplete(rt, n.host.Addr(), req)
		} else {
			_, _ = rt.Call(owner, MComplete, req)
		}
	}
}

// reportVote sends a replica's completion vote (digest + full result)
// to the owner, with bounded retries. If the owner stays unreachable
// the vote is abandoned: the heartbeat loop's owner-failure path finds
// the successor owner, and the client monitor resubmits if the whole
// vote was lost.
func (n *Node) reportVote(rt transport.Runtime, owner transport.Addr, res Result, tc obs.TC) {
	req := CompleteReq{JobID: res.JobID, Run: n.host.Addr(), Digest: res.Digest, Res: res, TC: tc}
	for try := 0; try < n.cfg.ResultRetries; try++ {
		var err error
		if owner == n.host.Addr() {
			_, err = n.handleComplete(rt, n.host.Addr(), req)
		} else {
			_, err = rt.Call(owner, MComplete, req)
		}
		if err == nil {
			return
		}
		rt.Sleep(time.Second)
	}
}

// executeSliced performs the job's resumable work in bounded slices:
// it resumes from any checkpoint attached to the assignment, snapshots
// progress at the (possibly adaptive) checkpoint interval, counts
// executed work for waste accounting, and aborts between slices when
// the owner has disavowed the job. It reports whether the execution
// was aborted.
func (n *Node) executeSliced(rt transport.Runtime, job *queuedJob) bool {
	total := job.prof.Work
	sw := workload.NewSliceWork(total)
	if n.cfg.CheckpointStateKB > 0 {
		sw.SetState(make([]byte, n.cfg.CheckpointStateKB*1024))
	}
	if len(job.prof.Input) > 0 {
		// Cross-stage data passing: upstream output seeds the resumable
		// state before execution, so the first snapshot already embeds
		// the inherited bytes and recovery ships them like any other
		// checkpoint data. A genuine resume below overrides this — its
		// Data evolved from the same seed.
		sw.SetState(append([]byte(nil), job.prof.Input...))
	}
	n.mu.Lock()
	seed := job.ckpt
	n.mu.Unlock()
	if !seed.Zero() && seed.Attempt == job.prof.Attempt {
		if err := sw.ResumeFrom(workload.Snapshot{Done: seed.Done, Data: seed.Data}); err == nil {
			n.mu.Lock()
			job.tc = n.trace(job.tc, rt.Now(), "resumed", job.prof.Attempt, "", n.traceNote("done=%s", seed.Done))
			n.mu.Unlock()
			n.rec.Record(Event{
				Kind: EvResumed, JobID: job.prof.ID, Attempt: job.prof.Attempt,
				At: rt.Now(), Node: n.host.Addr(), Progress: seed.Done,
			})
		}
	}
	// Execution seconds per nominal work second (SpeedScaling support:
	// snapshots stay in portable nominal-work units).
	scale := 1.0
	if total > 0 {
		scale = float64(n.execTime(job.prof)) / float64(total)
	}
	nextCkpt := rt.Now() + n.ckptInterval(rt.Now(), job.prof.CkptBias)
	for !sw.Finished() {
		quantum := n.cfg.ProgressSlice
		if rem := sw.Remaining(); quantum > rem {
			quantum = rem
		}
		rt.Sleep(time.Duration(float64(quantum) * scale))
		sw.Advance(quantum)
		n.mu.Lock()
		n.Executed += quantum
		n.executedBy[job.prof.ID] += quantum
		dropped := n.done[job.prof.ID]
		n.mu.Unlock()
		if dropped {
			return true
		}
		if n.ckptEnabled() && !sw.Finished() && rt.Now() >= nextCkpt {
			snap := sw.Progress()
			ck := Checkpoint{
				JobID: job.prof.ID, Attempt: job.prof.Attempt, Run: n.host.Addr(),
				Done: snap.Done, Data: snap.Data, At: rt.Now(),
			}
			n.mu.Lock()
			job.ckpt = ck
			job.tc = n.trace(job.tc, rt.Now(), "checkpointed", job.prof.Attempt, "",
				n.traceNote("done=%s bytes=%d", snap.Done, len(snap.Data)))
			n.mu.Unlock()
			n.om.ckptBytes.Observe(float64(len(snap.Data)))
			n.rec.Record(Event{
				Kind: EvCheckpointed, JobID: job.prof.ID, Attempt: job.prof.Attempt,
				At: rt.Now(), Node: n.host.Addr(), Progress: snap.Done,
			})
			nextCkpt = rt.Now() + n.ckptInterval(rt.Now(), job.prof.CkptBias)
		}
	}
	return false
}

// deliverResult returns the result to the client directly, falling back
// to relaying through the owner — the owner is "responsible for ...
// ensuring that its results are returned to the client". It reports
// whether direct delivery succeeded; on the relay path the owner keeps
// the job until its own delivery attempt lands.
func (n *Node) deliverResult(rt transport.Runtime, prof Profile, owner transport.Addr, res Result, tc obs.TC) (bool, obs.TC) {
	if prof.Client == n.host.Addr() {
		return true, n.acceptResult(rt, res, tc)
	}
	tc = n.trace(tc, rt.Now(), "result-sent", prof.Attempt, prof.Client, "")
	for try := 0; try < n.cfg.ResultRetries; try++ {
		if _, err := rt.Call(prof.Client, MResult, ResultReq{Res: res, TC: tc}); err == nil {
			return true, tc
		}
		rt.Sleep(time.Second)
	}
	tc = n.trace(tc, rt.Now(), "relay-requested", prof.Attempt, owner, "")
	if owner == n.host.Addr() {
		_, _ = n.handleRelay(rt, n.host.Addr(), RelayReq{Res: res, TC: tc})
	} else {
		_, _ = rt.Call(owner, MRelay, RelayReq{Res: res, TC: tc})
	}
	return false, tc
}

// heartbeatLoop implements the paper's soft-state heartbeats: every
// period, the run node reports each job in its queue (including jobs
// not yet running) to that job's owner over a direct connection. If an
// owner stays unreachable beyond OwnerDeadAfter, the run node routes
// the job's GUID to find the new owner and asks it to adopt the job.
func (n *Node) heartbeatLoop(rt transport.Runtime) {
	ownerSilentSince := make(map[transport.Addr]time.Duration)
	for {
		rt.Sleep(n.cfg.HeartbeatEvery)
		now := rt.Now()

		n.mu.Lock()
		byOwner := make(map[transport.Addr][]ids.ID)
		profs := make(map[ids.ID]Profile)
		tcs := make(map[ids.ID]obs.TC)
		reps := make(map[ids.ID][]transport.Addr)
		jobs := make([]*queuedJob, 0, len(n.queue)+1)
		if n.running != nil {
			jobs = append(jobs, n.running)
		}
		jobs = append(jobs, n.queue...)
		for _, q := range jobs {
			byOwner[q.owner] = append(byOwner[q.owner], q.prof.ID)
			profs[q.prof.ID] = q.prof
			tcs[q.prof.ID] = q.tc
			reps[q.prof.ID] = q.reps
		}
		n.mu.Unlock()

		// Fresh checkpoints ride the same round: each owner's heartbeat
		// piggybacks snapshots up to the payload cap; oversized ones go
		// in standalone grid.checkpoint calls after the heartbeat.
		pending := n.collectPendingCkpts(jobs)
		piggy := make(map[transport.Addr][]pendingCkpt)
		oversize := make(map[transport.Addr][]pendingCkpt)
		for _, p := range pending {
			budget := n.cfg.CheckpointPiggybackKB * 1024
			used := 0
			for _, prev := range piggy[p.owner] {
				used += len(prev.ckpt.Data)
			}
			if len(p.ckpt.Data) <= budget-used {
				piggy[p.owner] = append(piggy[p.owner], p)
			} else {
				oversize[p.owner] = append(oversize[p.owner], p)
			}
		}

		owners := make([]transport.Addr, 0, len(byOwner))
		for o := range byOwner {
			owners = append(owners, o)
		}
		sort.Slice(owners, func(i, j int) bool { return owners[i] < owners[j] })

		for _, owner := range owners {
			jobIDs := byOwner[owner]
			req := HeartbeatReq{Run: n.host.Addr(), Jobs: jobIDs}
			for _, p := range piggy[owner] {
				req.Ckpts = append(req.Ckpts, p.ckpt)
			}
			n.om.hbSent.Inc()
			var resp any
			var err error
			if owner == n.host.Addr() {
				resp, err = n.handleHeartbeat(rt, n.host.Addr(), req)
			} else {
				resp, err = rt.Call(owner, MHeartbeat, req)
			}
			if err != nil {
				n.om.hbFailed.Inc()
				if _, ok := ownerSilentSince[owner]; !ok {
					ownerSilentSince[owner] = now
				} else if now-ownerSilentSince[owner] > n.cfg.OwnerDeadAfter {
					delete(ownerSilentSince, owner)
					n.noteFailureSignal(now)
					for _, id := range jobIDs {
						tc := n.trace(tcs[id], now, "owner-failure-detected", profs[id].Attempt, owner, "")
						n.record(EvOwnerFailureDetected, profs[id], now)
						n.reassignOwner(rt, profs[id], owner, reps[id], tc)
					}
				}
				continue
			}
			n.om.hbAcked.Inc()
			delete(ownerSilentSince, owner)
			for _, p := range piggy[owner] {
				n.markShipped(p)
			}
			for _, p := range oversize[owner] {
				ckReq := CheckpointReq{Run: n.host.Addr(), Ckpt: p.ckpt, TC: p.tc}
				var err error
				if owner == n.host.Addr() {
					_, err = n.handleCheckpoint(rt, n.host.Addr(), ckReq)
				} else {
					_, err = rt.Call(owner, MCkpt, ckReq)
				}
				if err == nil {
					n.markShipped(p)
				}
			}
			hb := resp.(HeartbeatResp)
			if len(hb.Drop) > 0 {
				n.dropJobs(hb.Drop)
			}
		}
	}
}

// reassignOwner finds a new owner for a job whose owner went silent and
// asks it to adopt; the run node then reports heartbeats there. With
// replication on, the dead owner's replica chain (shipped with the
// assignment) is tried first, in rank order: those nodes hold the job's
// replicated state, and the replica layer's rank-based promotion elects
// from the same list — offering adoption there makes both recovery
// paths converge on one owner instead of racing a walk-routed stranger
// against the promoting replica (double owners, fencing, wasted work).
// Only when the whole chain is unreachable does the run node fall back
// to routing the job's GUID through the overlay.
func (n *Node) reassignOwner(rt transport.Runtime, prof Profile, deadOwner transport.Addr, reps []transport.Addr, tc obs.TC) {
	// The adoption request carries our newest snapshot so the new owner
	// starts with the dead owner's replicated progress, not zero.
	ckpt := n.localCkpt(prof.ID)
	for _, rep := range reps {
		if rep == deadOwner {
			continue
		}
		var ok bool
		if tc, ok = n.tryAdopt(rt, prof, rep, ckpt, tc); ok {
			return
		}
	}
	newOwner, _, err := n.overlay.RouteJob(rt, prof.ID, prof.Cons)
	if err != nil || newOwner == deadOwner {
		return // retry on a later heartbeat round
	}
	n.tryAdopt(rt, prof, newOwner, ckpt, tc)
}

// tryAdopt offers a job to one adoption candidate (self-adopting
// locally when the candidate is this node) and, on success, repoints
// the held job's heartbeats at it. It returns the advanced trace
// context and whether the adoption landed.
func (n *Node) tryAdopt(rt transport.Runtime, prof Profile, newOwner transport.Addr, ckpt Checkpoint, tc obs.TC) (obs.TC, bool) {
	tc = n.trace(tc, rt.Now(), "adopt-requested", prof.Attempt, newOwner, "")
	if newOwner == n.host.Addr() {
		n.mu.Lock()
		job, dup := n.owned[prof.ID]
		if !dup {
			job = &ownedJob{prof: prof, run: n.host.Addr(), matched: true, lastHB: rt.Now(), tc: tc}
			n.owned[prof.ID] = job
		}
		job.absorbCkpt(ckpt)
		n.mu.Unlock()
		if !dup {
			n.trace(tc, rt.Now(), "owner-adopted", prof.Attempt, "", "")
			n.record(EvOwnerAdopted, prof, rt.Now())
		}
	} else if _, err := rt.Call(newOwner, MAdopt, AdoptReq{Prof: prof, Run: n.host.Addr(), Ckpt: ckpt, TC: tc}); err != nil {
		return tc, false
	}
	n.mu.Lock()
	if n.running != nil && n.running.prof.ID == prof.ID {
		n.running.owner = newOwner
	}
	for _, q := range n.queue {
		if q.prof.ID == prof.ID {
			q.owner = newOwner
			q.tc = tc
			// The new owner holds whatever the adoption carried.
			if !ckpt.Zero() && ckpt.Done > q.shippedDone {
				q.shippedDone = ckpt.Done
			}
		}
	}
	n.mu.Unlock()
	return tc, true
}

// localCkpt returns this node's newest snapshot for a held job, or a
// zero checkpoint when the job is unknown or has no saved progress.
func (n *Node) localCkpt(id ids.ID) Checkpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.running != nil && n.running.prof.ID == id {
		return n.running.ckpt
	}
	for _, q := range n.queue {
		if q.prof.ID == id {
			return q.ckpt
		}
	}
	return Checkpoint{}
}

// dropJobs removes queued jobs the owner disavowed; a currently-running
// job is marked so its result is discarded.
func (n *Node) dropJobs(drop []ids.ID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	dropSet := make(map[ids.ID]bool, len(drop))
	for _, id := range drop {
		dropSet[id] = true
	}
	kept := n.queue[:0]
	for _, q := range n.queue {
		if dropSet[q.prof.ID] {
			n.done[q.prof.ID] = true
			continue
		}
		kept = append(kept, q)
	}
	n.queue = kept
	if n.running != nil && dropSet[n.running.prof.ID] {
		n.done[n.running.prof.ID] = true
	}
}
