package grid_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/grid"
	"repro/internal/ids"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// The recovery soak drives the full grid stack through hundreds of
// distinct randomly generated — but seed-replayable — failure
// schedules: message drops/delays/duplicates on the grid's own RPC
// methods, node crashes with probabilistic restarts, and temporary
// partitions. For every schedule it asserts the paper's core
// robustness claim: every submitted job terminates exactly once at the
// client, no matter what the fault layer did to the protocol.

const (
	soakNodes  = 7 // node 6 is the client and is protected
	soakClient = soakNodes - 1
	soakJobs   = 8
)

// soakHarness adapts the test cluster to faultinject.Harness.
type soakHarness struct{ c *cluster }

func (h soakHarness) Crash(i int) { h.c.eps[i].Crash() }
func (h soakHarness) Restart(i int) {
	h.c.eps[i].Restart()
	h.c.nodes[i].Restart()
}

func soakPlan() faultinject.Plan {
	return faultinject.Plan{
		Nodes:           soakNodes,
		Protect:         []int{soakClient},
		Window:          45 * time.Second,
		Crashes:         3,
		RestartProb:     0.7,
		RestartDelayMin: 5 * time.Second,
		RestartDelayMax: 20 * time.Second,
		Partitions:      1,
		PartitionSize:   2,
		PartitionDurMin: 5 * time.Second,
		PartitionDurMax: 15 * time.Second,
		Rules: []faultinject.Rule{
			{Method: grid.MHeartbeat, DropProb: 0.3},
			{Method: grid.MComplete, DropProb: 0.2, DupProb: 0.2},
			{Method: grid.MResult, DropProb: 0.2, DupProb: 0.2},
			{Method: grid.MAssign, DropProb: 0.1, DupProb: 0.1},
			{Method: grid.MRelay, DropProb: 0.1},
			{Method: grid.MAdopt, DropProb: 0.1, DupProb: 0.1},
			{DelayProb: 0.1, DelayMin: 50 * time.Millisecond, DelayMax: 500 * time.Millisecond},
		},
	}
}

func soakCfg() grid.Config {
	return grid.Config{
		HeartbeatEvery:  time.Second,
		RunDeadAfter:    3 * time.Second,
		OwnerDeadAfter:  3 * time.Second,
		MatchRetryEvery: 2 * time.Second,
		MaxRematch:      8,
		IdlePoll:        time.Second,
	}
}

// soakCkptCfg is the soak configuration with adaptive checkpointing on,
// intervals tightened to the soak's few-second jobs.
func soakCkptCfg() grid.Config {
	cfg := soakCfg()
	cfg.CheckpointEvery = 2 * time.Second
	cfg.CheckpointAdaptive = true
	cfg.CheckpointMinEvery = time.Second
	cfg.CheckpointMaxEvery = 5 * time.Second
	return cfg
}

// runSoak executes one seeded schedule and returns the full event
// trace (for replay comparison). It fails the test, tagged with the
// seed, if any job is lost or delivered more than once.
func runSoak(t *testing.T, seed int64) []string {
	return runSoakCfg(t, seed, soakCfg())
}

func runSoakCfg(t *testing.T, seed int64, cfg grid.Config) []string {
	return runSoakPrep(t, seed, cfg, nil)
}

// runSoakPrep is runSoakCfg with a hook that runs against the fresh
// cluster before anything is scheduled — the stats-neutrality soak uses
// it to flip kernel instrumentation on without otherwise touching the
// run.
func runSoakPrep(t *testing.T, seed int64, cfg grid.Config, prep func(c *cluster)) []string {
	t.Helper()
	c := newCluster(t, soakNodes, seed, cfg, uniform)
	defer c.e.Shutdown()
	if prep != nil {
		prep(c)
	}
	c.nodes[soakClient].StartClientMonitor(15 * time.Second)

	// Submit everything on a clean network, then arm the schedule: the
	// faults land on the execution and recovery phases, which is what
	// the soak is probing.
	c.do(soakClient, func(rt transport.Runtime) {
		for i := 0; i < soakJobs; i++ {
			if _, err := c.nodes[soakClient].Submit(rt, grid.JobSpec{Work: time.Duration(2+i%4) * time.Second}); err != nil {
				t.Fatalf("seed %d: submit %d: %v", seed, i, err)
			}
		}
	})

	sched := faultinject.Generate(seed, soakPlan())
	c.net.Faults = sched.Injector(func() time.Duration { return time.Duration(c.e.Now()) })
	disarm := sched.Arm(c.e, c.net, soakHarness{c}, func(i int) simnet.Addr {
		return simnet.Addr(c.hosts[i].Addr())
	})
	defer disarm() // before Shutdown's drain, which runs LIFO after this

	deadline := c.e.Now().Add(10 * time.Minute)
	for c.e.Now() < deadline && c.nodes[soakClient].PendingCount() > 0 {
		c.e.RunFor(5 * time.Second)
	}
	if left := c.nodes[soakClient].PendingCount(); left != 0 {
		t.Fatalf("seed %d: %d of %d jobs never terminated (crashes=%d parts=%d)",
			seed, left, soakJobs, len(sched.Nodes), len(sched.Parts))
	}

	// Exactly once: every delivery is for a distinct GUID, and the
	// number of deliveries matches the number of submitted jobs —
	// resubmissions retire the old GUID before minting a new one, so
	// each job lineage ends in exactly one delivery.
	c.rec.mu.Lock()
	delivered := map[ids.ID]int{}
	total := 0
	for _, ev := range c.rec.evs {
		if ev.Kind == grid.EvResultDelivered {
			delivered[ev.JobID]++
			total++
		}
	}
	c.rec.mu.Unlock()
	for id, n := range delivered {
		if n > 1 {
			t.Fatalf("seed %d: job %s delivered %d times", seed, id.Short(), n)
		}
	}
	if total != soakJobs {
		t.Fatalf("seed %d: %d results delivered, want %d", seed, total, soakJobs)
	}

	return eventTrace(c.rec)
}

// eventTrace renders every recorded event as one line, including the
// voting fields (digest, reputation delta, client seq) so the replay
// checks cover sabotage-tolerance outcomes too.
func eventTrace(rec *recorder) []string {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	trace := make([]string, len(rec.evs))
	for i, ev := range rec.evs {
		trace[i] = fmt.Sprintf("%v %s a%d %s @%v +%v d=%s r=%+.2f s%d",
			ev.Kind, ev.JobID.Short(), ev.Attempt, ev.Node, ev.At, ev.Progress, ev.Digest, ev.Delta, ev.Seq)
	}
	return trace
}

func TestRecoverySoak(t *testing.T) {
	seeds := 120
	if testing.Short() {
		seeds = 30
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		runSoak(t, seed)
	}
}

// TestRecoverySoakCheckpointed re-runs the soak with adaptive
// checkpointing enabled: snapshots, piggybacked shipping, and resume
// paths must preserve the exactly-once guarantee under every fault
// schedule, not just speed recovery up.
func TestRecoverySoakCheckpointed(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 15
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		runSoakCfg(t, seed, soakCkptCfg())
	}
}

// TestRecoverySoakReplayDeterministic re-runs a handful of schedules
// and requires the event trace to be byte-identical: the whole point
// of seeding the fault layer is that any failure it surfaces can be
// replayed exactly.
func TestRecoverySoakReplayDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		assertReplayIdentical(t, seed, soakCfg())
	}
}

// TestRecoverySoakCheckpointedReplayDeterministic extends the replay
// guarantee to the checkpoint subsystem: snapshot instants, shipping,
// and resume offsets must be bit-identical across replays (the trace
// lines include each event's Progress field).
func TestRecoverySoakCheckpointedReplayDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 2; seed++ {
		assertReplayIdentical(t, seed, soakCkptCfg())
	}
}

func assertReplayIdentical(t *testing.T, seed int64, cfg grid.Config) {
	t.Helper()
	a := runSoakCfg(t, seed, cfg)
	b := runSoakCfg(t, seed, cfg)
	if len(a) != len(b) {
		t.Fatalf("seed %d: replay produced %d events, first run %d", seed, len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed %d: traces diverge at event %d:\n  first:  %s\n  replay: %s", seed, i, a[i], b[i])
		}
	}
}
