package grid_test

import (
	"strings"
	"testing"

	"repro/internal/grid"
	"repro/internal/obs"
)

// Trace neutrality: attaching the observability layer must not perturb
// the protocol. The seeded soaks are the strongest probe available —
// their event traces are byte-identical across replays, so any obs
// feedback into scheduling, timing, or recovery decisions would show
// up as a diverging trace.

// obsSoakCfg is cfg with a fresh obs sink attached. All nodes share
// one Obs (one registry/tracer/hub) — the multi-node worst case for
// instrument contention, and also what asserts that shared GaugeFunc
// re-registration stays harmless.
func obsSoakCfg(cfg grid.Config) (grid.Config, *obs.Obs) {
	o := obs.New()
	cfg.Obs = o
	return cfg, o
}

// TestSoakObsTraceNeutral replays seeded fault schedules with obs off
// and obs on; the event traces must match byte for byte, and the obs
// side must actually have observed the run (so the test cannot pass
// vacuously with instrumentation compiled out).
func TestSoakObsTraceNeutral(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		bare := runSoakCfg(t, seed, soakCfg())
		cfg, o := obsSoakCfg(soakCfg())
		instrumented := runSoakCfg(t, seed, cfg)
		assertTracesEqual(t, seed, bare, instrumented)
		assertObsPopulated(t, seed, o)
	}
}

// TestSoakObsTraceNeutralCheckpointed extends neutrality to the
// checkpoint subsystem (snapshot instants and resume offsets are in
// the trace lines via Progress).
func TestSoakObsTraceNeutralCheckpointed(t *testing.T) {
	for seed := int64(1); seed <= 2; seed++ {
		bare := runSoakCfg(t, seed, soakCkptCfg())
		cfg, o := obsSoakCfg(soakCkptCfg())
		instrumented := runSoakCfg(t, seed, cfg)
		assertTracesEqual(t, seed, bare, instrumented)
		assertObsPopulated(t, seed, o)
	}
}

// TestSoakObsReplayDeterministic: two obs-enabled runs of the same
// seed must also replay byte-identically (the obs layer itself holds
// no wall-clock or global state that could leak between runs).
func TestSoakObsReplayDeterministic(t *testing.T) {
	seed := int64(2)
	cfgA, _ := obsSoakCfg(soakCfg())
	cfgB, _ := obsSoakCfg(soakCfg())
	a := runSoakCfg(t, seed, cfgA)
	b := runSoakCfg(t, seed, cfgB)
	assertTracesEqual(t, seed, a, b)
}

func assertTracesEqual(t *testing.T, seed int64, a, b []string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("seed %d: obs-on produced %d events, obs-off %d", seed, len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed %d: traces diverge at event %d:\n  obs-off: %s\n  obs-on:  %s", seed, i, a[i], b[i])
		}
	}
}

// assertObsPopulated checks the instrumentation saw the run: lifecycle
// counters advanced and the tracer holds at least one full job trace
// ending in a delivery.
func assertObsPopulated(t *testing.T, seed int64, o *obs.Obs) {
	t.Helper()
	samples := o.Registry().Snapshot()
	byName := map[string]float64{}
	for _, s := range samples {
		byName[s.Name] = s.Value
	}
	for _, name := range []string{
		`grid_events_total{kind="submitted"}`,
		`grid_events_total{kind="started"}`,
		`grid_events_total{kind="result-delivered"}`,
		"grid_heartbeats_sent_total",
	} {
		if byName[name] <= 0 {
			t.Errorf("seed %d: metric %s = %v, want > 0", seed, name, byName[name])
		}
	}
	if byName[`grid_events_total{kind="result-delivered"}`] != float64(soakJobs) {
		t.Errorf("seed %d: delivered counter = %v, want %d", seed,
			byName[`grid_events_total{kind="result-delivered"}`], soakJobs)
	}
	traces := o.GetTracer().Traces()
	if len(traces) == 0 {
		t.Fatalf("seed %d: tracer recorded no traces", seed)
	}
	delivered := 0
	for _, id := range traces {
		evs, _ := o.GetTracer().Get(id)
		sorted := obs.MergeSort(evs)
		for _, ev := range sorted {
			if ev.Stage == "result-delivered" {
				delivered++
				break
			}
		}
		// Hop ordering must be internally consistent after the merge.
		for i := 1; i < len(sorted); i++ {
			if sorted[i].Hop < sorted[i-1].Hop {
				t.Fatalf("seed %d: trace %s hops unsorted after MergeSort", seed, id.Short())
			}
		}
	}
	if delivered != soakJobs {
		t.Errorf("seed %d: %d traces reach result-delivered, want %d", seed, delivered, soakJobs)
	}
	// Every trace must begin at a submission.
	for _, id := range traces {
		evs, _ := o.GetTracer().Get(id)
		first := obs.MergeSort(evs)[0]
		if !strings.HasPrefix(first.Stage, "submitted") {
			t.Errorf("seed %d: trace %s starts at %q, want submitted", seed, id.Short(), first.Stage)
		}
	}
}
