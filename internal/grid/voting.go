package grid

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/ids"
	"repro/internal/transport"
)

// This file is the owner side of the sabotage-tolerance subsystem:
// redundant execution with quorum voting over result digests, plus the
// known-answer probes that spot-check blacklisted peers. A job enters
// this state machine only when Config.votingOn() — with R=1/quorum=1
// (the zero config) none of this code runs and the owner behaves
// exactly as the paper's single-execution protocol.
//
// Protocol sketch: the owner assigns the job to R distinct run nodes
// (never one already holding or previously disavowed for this job).
// Each replica's grid.complete doubles as a vote carrying the result
// digest. The first digest reaching Quorum matching votes wins: its
// result is handed to the relay machinery for client delivery, voters
// are scored against the winner (agree/disagree feeding Config.Trust),
// and still-running losers are cancelled through the usual heartbeat
// drop answer. Dead replicas (heartbeat timeout — crashes and
// result-withholders look identical) are replaced; the total number of
// assignments is bounded by MaxRematch*Replicas, after which an
// unreachable quorum gives the job up (EvQuorumFailed) and the
// client's monitor resubmits.

// replica is one run node holding a copy of a voting job.
type replica struct {
	run    transport.Addr
	lastHB time.Duration
	voted  bool
}

// voteState is the per-job voting bookkeeping hanging off ownedJob.
type voteState struct {
	reps    []*replica                // current replicas (voted ones stay)
	votes   map[string]int            // digest -> tally
	voted   map[transport.Addr]string // run node -> digest it reported
	scored  map[transport.Addr]bool   // run nodes already scored vs the winner
	assigns int                       // assignment attempts consumed
	filling bool                      // a fillReplicas proc is active
	winner  string                    // accepted digest; "" until quorum
}

func newVoteState() *voteState {
	return &voteState{
		votes:  make(map[string]int),
		voted:  make(map[transport.Addr]string),
		scored: make(map[transport.Addr]bool),
	}
}

// refresh updates a known replica's heartbeat clock, reporting whether
// the sender is one.
func (v *voteState) refresh(run transport.Addr, now time.Duration) bool {
	for _, r := range v.reps {
		if r.run == run {
			r.lastHB = now
			return true
		}
	}
	return false
}

func (v *voteState) hasReplica(run transport.Addr) bool {
	for _, r := range v.reps {
		if r.run == run {
			return true
		}
	}
	return false
}

// bestTally returns the highest vote count of any digest.
func (v *voteState) bestTally() int {
	best := 0
	for _, c := range v.votes {
		if c > best {
			best = c
		}
	}
	return best
}

// liveUnvoted counts replicas still expected to vote.
func (v *voteState) liveUnvoted() int {
	n := 0
	for _, r := range v.reps {
		if !r.voted {
			n++
		}
	}
	return n
}

// maxAssigns bounds total assignment attempts per voting job — the
// R-scaled analogue of the single-execution MaxRematch budget.
func (n *Node) maxAssigns() int { return n.cfg.MaxRematch * n.cfg.Replicas }

// quorumFeasibleLocked reports whether the current replica set can
// still reach quorum without further assignments.
func (n *Node) quorumFeasibleLocked(v *voteState) bool {
	return v.bestTally()+v.liveUnvoted() >= n.cfg.Quorum
}

// replicaNeedLocked is how many additional replicas the owner should
// recruit right now: enough to keep R copies in flight, and — after an
// all-voted split verdict — enough extra voters to break the tie.
func (n *Node) replicaNeedLocked(v *voteState) int {
	need := n.cfg.Replicas - len(v.reps)
	if tie := n.cfg.Quorum - v.bestTally() - v.liveUnvoted(); tie > need {
		need = tie
	}
	return need
}

// newVotingJobLocked builds an owner record on the voting path.
func (n *Node) newVotingJobLocked(prof Profile) *ownedJob {
	job := &ownedJob{prof: prof, vote: newVoteState()}
	job.vote.filling = true
	return job
}

// adoptReplicaLocked registers a run node as a replica of a voting job
// (the owner-failover re-registration path). Excluded senders, known
// replicas, and settled votes are left untouched.
func adoptReplicaLocked(job *ownedJob, run transport.Addr, now time.Duration) {
	v := job.vote
	if v.winner != "" || job.isExcluded(run) || v.hasReplica(run) {
		return
	}
	v.reps = append(v.reps, &replica{run: run, lastHB: now})
}

// fillReplicas is the voting analogue of matchAndAssign: it recruits
// run nodes one at a time until the job needs no more replicas, the
// vote settles, or the assignment budget runs out. Only one filler per
// job runs at a time (voteState.filling).
func (n *Node) fillReplicas(rt transport.Runtime, jobID ids.ID) {
	defer func() {
		n.mu.Lock()
		if job, ok := n.owned[jobID]; ok && job.vote != nil {
			job.vote.filling = false
		}
		n.mu.Unlock()
	}()
	for {
		n.mu.Lock()
		job, ok := n.owned[jobID]
		if !ok || job.vote == nil || job.vote.winner != "" {
			n.mu.Unlock()
			return
		}
		v := job.vote
		if n.replicaNeedLocked(v) <= 0 {
			n.mu.Unlock()
			return
		}
		if v.assigns >= n.maxAssigns() {
			if n.quorumFeasibleLocked(v) {
				// Out of budget but the outstanding replicas can still
				// settle the vote: wait for them (the monitor re-spawns
				// a filler only if feasibility is lost).
				n.mu.Unlock()
				return
			}
			prof := job.prof
			tc := job.tc
			delete(n.owned, jobID)
			n.mu.Unlock()
			tc = n.trace(tc, rt.Now(), "quorum-failed", prof.Attempt, "", "")
			n.trace(tc, rt.Now(), "gave-up", prof.Attempt, "", "")
			n.rec.Record(Event{Kind: EvQuorumFailed, JobID: prof.ID, Attempt: prof.Attempt, At: rt.Now(), Node: n.host.Addr()})
			n.record(EvGaveUp, prof, rt.Now())
			n.retire(rt.Now(), jobID)
			return
		}
		v.assigns++
		prof := job.prof
		tc := job.tc
		// Never place two replicas on one node, nor on a disavowed one.
		exclude := append([]transport.Addr(nil), job.excluded...)
		for _, r := range v.reps {
			exclude = append(exclude, r.run)
		}
		n.mu.Unlock()

		run, stats, err := n.matcher.FindRunNode(rt, prof.Cons, exclude)
		if err != nil {
			n.trace(tc, rt.Now(), "match-failed", prof.Attempt, "", "")
			n.record(EvMatchFailed, prof, rt.Now(), stats)
			rt.Sleep(n.cfg.MatchRetryEvery)
			continue
		}
		tc = n.trace(tc, rt.Now(), "matched", prof.Attempt, run, n.traceNote("hops=%d visits=%d", stats.Hops, stats.Visits))
		req := AssignReq{Prof: prof, Owner: n.host.Addr(), Reps: n.replTargets(), TC: tc}
		var assignErr error
		if run == n.host.Addr() {
			_, assignErr = n.assign(rt, req)
		} else {
			_, assignErr = rt.Call(run, MAssign, req)
		}
		if assignErr != nil {
			n.mu.Lock()
			if job, ok := n.owned[jobID]; ok {
				job.excluded = append(job.excluded, run)
			}
			n.mu.Unlock()
			continue
		}
		n.mu.Lock()
		if job, ok := n.owned[jobID]; ok && job.vote != nil &&
			job.vote.winner == "" && !job.isExcluded(run) && !job.vote.hasReplica(run) {
			job.vote.reps = append(job.vote.reps, &replica{run: run, lastHB: rt.Now()})
			job.tc = tc
		}
		n.mu.Unlock()
		n.record(EvMatched, prof, rt.Now(), stats)
	}
}

// voteTickLocked is the monitor's per-tick pass over one voting job:
// replicas silent beyond RunDeadAfter are disavowed (crashed nodes and
// result-withholding saboteurs look identical here) and a filler is
// requested when the replica set needs topping up. Dead replicas are
// appended to deadReps for event emission outside the lock.
func (n *Node) voteTickLocked(now time.Duration, id ids.ID, job *ownedJob, deadReps *[]deadRun) (fill bool) {
	v := job.vote
	if v.winner != "" {
		return false
	}
	kept := v.reps[:0]
	for _, r := range v.reps {
		if !r.voted && now-r.lastHB > n.cfg.RunDeadAfter {
			job.excluded = append(job.excluded, r.run)
			*deadReps = append(*deadReps, deadRun{id: id, prof: job.prof})
			continue
		}
		kept = append(kept, r)
	}
	v.reps = kept
	if v.filling {
		return false
	}
	need := n.replicaNeedLocked(v)
	if need > 0 && (v.assigns < n.maxAssigns() || !n.quorumFeasibleLocked(v)) {
		v.filling = true
		return true
	}
	return false
}

// applyVoteLocked tallies one replica's completion vote. It returns
// the lifecycle events to emit after n.mu is released (the recorder
// must never be called under the lock) and whether a replica filler
// should be spawned (split verdict needing tie-break voters).
func (n *Node) applyVoteLocked(now time.Duration, job *ownedJob, c CompleteReq) (evs []Event, fill bool) {
	v := job.vote
	// Zombie and duplicate votes: a disavowed replica must not vote
	// (the complete-side mirror of the excluded-heartbeat rule), an
	// unknown sender was never assigned this job, and a replica votes
	// once.
	if job.isExcluded(c.Run) || !v.hasReplica(c.Run) {
		return nil, false
	}
	if _, dup := v.voted[c.Run]; dup {
		return nil, false
	}
	for _, r := range v.reps {
		if r.run == c.Run {
			r.voted = true
			r.lastHB = now
		}
	}
	v.voted[c.Run] = c.Digest
	v.votes[c.Digest]++
	evs = append(evs, Event{
		Kind: EvVoted, JobID: job.prof.ID, Attempt: job.prof.Attempt,
		At: now, Node: c.Run, Digest: c.Digest,
	})
	if v.winner != "" {
		// Late vote after acceptance: score it against the winner, but
		// the settled result stands.
		evs = append(evs, n.scoreVoterLocked(now, job, c.Run, c.Digest)...)
		return evs, false
	}
	if v.votes[c.Digest] >= n.cfg.Quorum {
		v.winner = c.Digest
		res := c.Res
		job.relay = &res
		evs = append(evs, Event{
			Kind: EvAccepted, JobID: job.prof.ID, Attempt: job.prof.Attempt,
			At: now, Node: n.host.Addr(), Digest: c.Digest,
		})
		// Score every voter so far against the winner, in address order
		// for deterministic event sequences.
		addrs := make([]transport.Addr, 0, len(v.voted))
		for a := range v.voted {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		for _, a := range addrs {
			evs = append(evs, n.scoreVoterLocked(now, job, a, v.voted[a])...)
		}
		return evs, false
	}
	// No quorum yet. If every outstanding path to quorum needs more
	// replicas (split verdict), request a filler.
	if !v.filling && n.replicaNeedLocked(v) > 0 &&
		(v.assigns < n.maxAssigns() || !n.quorumFeasibleLocked(v)) {
		v.filling = true
		fill = true
	}
	return evs, fill
}

// scoreVoterLocked applies one voter's reputation outcome against the
// accepted digest: dissenters are rejected and penalized, agreeing
// replicas credited. Each voter is scored at most once per job.
func (n *Node) scoreVoterLocked(now time.Duration, job *ownedJob, run transport.Addr, digest string) []Event {
	v := job.vote
	if v.scored[run] {
		return nil
	}
	v.scored[run] = true
	var evs []Event
	agree := digest == v.winner
	if !agree {
		evs = append(evs, Event{
			Kind: EvRejected, JobID: job.prof.ID, Attempt: job.prof.Attempt,
			At: now, Node: run, Digest: digest,
		})
	}
	if n.cfg.Trust == nil {
		return evs
	}
	var delta float64
	var crossed bool
	if agree {
		delta, crossed = n.cfg.Trust.Agree(run)
	} else {
		delta, crossed = n.cfg.Trust.Disagree(run)
	}
	evs = append(evs, Event{
		Kind: EvReputation, JobID: job.prof.ID, Attempt: job.prof.Attempt,
		At: now, Node: run, Delta: delta,
	})
	if crossed {
		evs = append(evs, Event{
			Kind: EvBlacklisted, JobID: job.prof.ID, Attempt: job.prof.Attempt,
			At: now, Node: run, Delta: delta,
		})
	}
	return evs
}

// --- known-answer probes ---

// maybeProbe sends one spot-check probe to the worst-scored
// blacklisted peer when the probe timer elapses. A correct answer is
// the redemption path back out of the blacklist; a wrong one digs the
// hole deeper. Call errors are no evidence either way.
func (n *Node) maybeProbe(rt transport.Runtime, now time.Duration) {
	if n.cfg.ProbeEvery == 0 || n.cfg.Trust == nil {
		return
	}
	n.mu.Lock()
	if n.nextProbe == 0 {
		n.nextProbe = now + n.cfg.ProbeEvery
		n.mu.Unlock()
		return
	}
	if now < n.nextProbe {
		n.mu.Unlock()
		return
	}
	n.nextProbe = now + n.cfg.ProbeEvery
	target, ok := n.cfg.Trust.WorstBlacklisted()
	if !ok {
		n.mu.Unlock()
		return
	}
	n.probeSeq++
	nonce := fmt.Sprintf("%s/%d", n.host.Addr(), n.probeSeq)
	n.mu.Unlock()

	raw, err := rt.Call(target, MProbe, ProbeJobReq{Nonce: nonce, Work: n.cfg.ProbeWork})
	if err != nil {
		return
	}
	var delta float64
	if raw.(ProbeJobResp).Digest == ProbeDigest(nonce) {
		delta, _ = n.cfg.Trust.ProbeOK(target)
	} else {
		delta, _ = n.cfg.Trust.ProbeBad(target)
	}
	n.rec.Record(Event{
		Kind: EvProbed, JobID: ids.HashString("probe/" + nonce),
		At: rt.Now(), Node: target, Delta: delta,
	})
}

// handleProbe executes a known-answer probe job. A Byzantine node
// sabotages probes exactly as it sabotages real jobs — which is what
// lets probes catch it.
func (n *Node) handleProbe(rt transport.Runtime, from transport.Addr, req any) (any, error) {
	p := req.(ProbeJobReq)
	rt.Sleep(p.Work)
	correct := ProbeDigest(p.Nonce)
	if n.cfg.Byzantine != nil {
		wrong, withhold := n.cfg.Byzantine(ids.HashString("probe/"+p.Nonce), 0)
		if withhold {
			return nil, fmt.Errorf("grid: probe %s withheld", p.Nonce)
		}
		if wrong {
			return ProbeJobResp{Digest: CorruptDigest(correct, n.host.Addr())}, nil
		}
	}
	return ProbeJobResp{Digest: correct}, nil
}

// handleTrust dumps the node's local reputation table (the gridctl
// `trust` subcommand's backend).
func (n *Node) handleTrust(rt transport.Runtime, from transport.Addr, req any) (any, error) {
	if n.cfg.Trust == nil {
		return TrustResp{}, nil
	}
	return TrustResp{Entries: n.cfg.Trust.Snapshot()}, nil
}
