package grid_test

import (
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/transport"
)

// TestOwnerBackpressureNoLostJobs floods a grid whose owners accept at
// most a couple of jobs at a time. Every submission beyond capacity is
// rejected with a retry-after hint rather than queued without bound,
// and the client's honor-the-hint retry loop (plus the monitor as the
// last resort) must still land every job: rejections shed load, they
// never lose work.
func TestOwnerBackpressureNoLostJobs(t *testing.T) {
	cfg := grid.Config{
		OwnerCapacity: 2,
		RetryAfter:    200 * time.Millisecond,
		InjectRetries: 8,
	}
	c := newCluster(t, 6, 11, cfg, uniform)
	defer c.e.Shutdown()
	c.nodes[0].StartClientMonitor(10 * time.Second)
	const J = 24
	c.do(0, func(rt transport.Runtime) {
		for i := 0; i < J; i++ {
			// Errors are tolerated here: a submission whose bounded
			// retries all hit capacity is still registered and will be
			// resubmitted by the monitor. Lost jobs show up below as a
			// non-zero AwaitAll.
			_, _ = c.nodes[0].Submit(rt, grid.JobSpec{Work: 2 * time.Second})
		}
		if left := c.nodes[0].AwaitAll(rt, rt.Now()+15*time.Minute); left != 0 {
			t.Fatalf("%d jobs lost under backpressure", left)
		}
	})
	if got := c.rec.count(grid.EvResultDelivered); got != J {
		t.Fatalf("%d results, want %d", got, J)
	}
	// The flood must actually have tripped the bound, or this test
	// proved nothing.
	if c.rec.count(grid.EvInjectRejected) == 0 {
		t.Fatal("no inject-rejected events: capacity bound never engaged")
	}
}

// TestSubmitAllBatched pushes a batch through the grouped
// grid.ownbatch handoff and checks every job completes exactly once.
func TestSubmitAllBatched(t *testing.T) {
	c := newCluster(t, 8, 12, grid.Config{}, uniform)
	defer c.e.Shutdown()
	const J = 30
	c.do(0, func(rt transport.Runtime) {
		specs := make([]grid.JobSpec, J)
		for i := range specs {
			specs[i] = grid.JobSpec{Work: time.Second}
		}
		ids, err := c.nodes[0].SubmitAll(rt, specs)
		if err != nil {
			t.Fatalf("submit all: %v", err)
		}
		if len(ids) != J {
			t.Fatalf("%d ids, want %d", len(ids), J)
		}
		seen := map[string]bool{}
		for _, id := range ids {
			if seen[id.String()] {
				t.Fatalf("duplicate GUID %s in batch", id.Short())
			}
			seen[id.String()] = true
		}
		if left := c.nodes[0].AwaitAll(rt, rt.Now()+10*time.Minute); left != 0 {
			t.Fatalf("%d jobs unfinished", left)
		}
	})
	if got := c.rec.count(grid.EvResultDelivered); got != J {
		t.Fatalf("%d results, want %d", got, J)
	}
}

// TestSubmitAllWithBackpressure combines the batched path with tight
// owner capacity: per-item retry-after results must be honored and
// retried without losing batch-mates that were accepted.
func TestSubmitAllWithBackpressure(t *testing.T) {
	cfg := grid.Config{
		OwnerCapacity: 3,
		RetryAfter:    200 * time.Millisecond,
		InjectRetries: 8,
	}
	c := newCluster(t, 6, 13, cfg, uniform)
	defer c.e.Shutdown()
	c.nodes[0].StartClientMonitor(10 * time.Second)
	const J = 18
	c.do(0, func(rt transport.Runtime) {
		specs := make([]grid.JobSpec, J)
		for i := range specs {
			specs[i] = grid.JobSpec{Work: 2 * time.Second}
		}
		_, _ = c.nodes[0].SubmitAll(rt, specs) // monitor recovers exhausted retries
		if left := c.nodes[0].AwaitAll(rt, rt.Now()+15*time.Minute); left != 0 {
			t.Fatalf("%d jobs lost under batched backpressure", left)
		}
	})
	if got := c.rec.count(grid.EvResultDelivered); got != J {
		t.Fatalf("%d results, want %d", got, J)
	}
}

// TestSubmitFlushWindowCoalesces runs concurrent submitters through
// the flush-window batcher: submissions from many procs coalesce into
// shared batches and every job still completes.
func TestSubmitFlushWindowCoalesces(t *testing.T) {
	cfg := grid.Config{InjectFlushWindow: 50 * time.Millisecond}
	c := newCluster(t, 6, 14, cfg, uniform)
	defer c.e.Shutdown()
	const procs = 5
	const each = 4
	done := 0
	for p := 0; p < procs; p++ {
		c.hosts[0].Go("submitter", func(rt transport.Runtime) {
			defer func() { done++ }()
			for i := 0; i < each; i++ {
				if _, err := c.nodes[0].Submit(rt, grid.JobSpec{Work: time.Second}); err != nil {
					t.Errorf("submit: %v", err)
				}
			}
		})
	}
	for done < procs {
		c.e.RunFor(time.Second)
	}
	c.do(0, func(rt transport.Runtime) {
		if left := c.nodes[0].AwaitAll(rt, rt.Now()+10*time.Minute); left != 0 {
			t.Fatalf("%d jobs unfinished", left)
		}
	})
	if got := c.rec.count(grid.EvResultDelivered); got != procs*each {
		t.Fatalf("%d results, want %d", got, procs*each)
	}
}
