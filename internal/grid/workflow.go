package grid

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/ids"
	"repro/internal/transport"
)

// The paper leaves inter-job dependencies to future work, suggesting
// Condor's DAGMan: an orchestrator *outside* the scheduler that submits
// jobs in dependency order ("perform the jobs in the correct order
// (analysis after simulation of a given problem)"). Workflow is that
// orchestrator: a client-side DAG runner over the grid's independent
// jobs, requiring no changes to owners or run nodes.

// Task is one node of a workflow DAG.
type Task struct {
	Name      string
	Spec      JobSpec
	DependsOn []string
}

// Workflow is a set of tasks with dependencies.
type Workflow struct {
	Tasks []Task
}

// Errors returned by RunWorkflow.
var (
	ErrWorkflowCycle = errors.New("grid: workflow has a cycle or missing dependency")
	ErrWorkflowStall = errors.New("grid: workflow deadline passed")
)

// TaskResult records one task's completion.
type TaskResult struct {
	Name     string
	JobID    ids.ID
	Started  time.Duration
	Finished time.Duration
}

// RunWorkflow executes the DAG: tasks whose dependencies have all
// delivered results are submitted (concurrently, as independent grid
// jobs); the call returns when every task finished or the deadline
// passed. It must run in a client activity on this node's host.
func (n *Node) RunWorkflow(rt transport.Runtime, wf Workflow, deadline time.Duration) (map[string]TaskResult, error) {
	byName := make(map[string]*Task, len(wf.Tasks))
	for i := range wf.Tasks {
		t := &wf.Tasks[i]
		if _, dup := byName[t.Name]; dup {
			return nil, fmt.Errorf("grid: duplicate task %q", t.Name)
		}
		byName[t.Name] = t
	}
	for _, t := range wf.Tasks {
		for _, d := range t.DependsOn {
			if _, ok := byName[d]; !ok {
				return nil, fmt.Errorf("%w: task %q depends on unknown %q", ErrWorkflowCycle, t.Name, d)
			}
		}
	}

	results := make(map[string]TaskResult, len(wf.Tasks))
	submitted := make(map[string]ids.ID)

	for len(results) < len(wf.Tasks) {
		// Submit every task whose dependencies are complete.
		progress := false
		for _, t := range wf.Tasks {
			if _, done := results[t.Name]; done {
				continue
			}
			if _, inFlight := submitted[t.Name]; inFlight {
				continue
			}
			ready := true
			for _, d := range t.DependsOn {
				if _, ok := results[d]; !ok {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			jobID, err := n.Submit(rt, t.Spec)
			if err != nil {
				return results, fmt.Errorf("grid: submit task %q: %w", t.Name, err)
			}
			submitted[t.Name] = jobID
			progress = true
		}
		// Harvest completions.
		n.mu.Lock()
		for name, jobID := range submitted {
			if p, ok := n.pending[jobID]; ok && p.got {
				results[name] = TaskResult{Name: name, JobID: jobID, Finished: p.resultAt}
				delete(submitted, name)
				progress = true
			}
		}
		n.mu.Unlock()
		if len(results) == len(wf.Tasks) {
			return results, nil
		}
		if len(submitted) == 0 && !progress {
			// Nothing running and nothing became ready: cycle.
			return results, ErrWorkflowCycle
		}
		if rt.Now() >= deadline {
			return results, fmt.Errorf("%w: %d/%d tasks done", ErrWorkflowStall, len(results), len(wf.Tasks))
		}
		rt.Sleep(500 * time.Millisecond)
	}
	return results, nil
}
