package grid

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/ids"
	"repro/internal/transport"
)

// The paper leaves inter-job dependencies to future work, suggesting
// Condor's DAGMan: an orchestrator *outside* the scheduler that submits
// jobs in dependency order ("perform the jobs in the correct order
// (analysis after simulation of a given problem)"). Workflow is that
// orchestrator: a client-side DAG runner over the grid's independent
// jobs, requiring no changes to owners or run nodes.

// Task is one node of a workflow DAG.
type Task struct {
	Name      string
	Spec      JobSpec
	DependsOn []string
}

// Workflow is a set of tasks with dependencies.
type Workflow struct {
	Tasks []Task
}

// Errors returned by RunWorkflow.
var (
	ErrWorkflowCycle = errors.New("grid: workflow has a cycle or missing dependency")
	ErrWorkflowStall = errors.New("grid: workflow deadline passed")
)

// TaskResult records one task's completion.
type TaskResult struct {
	Name     string
	JobID    ids.ID
	Started  time.Duration
	Finished time.Duration
}

// RunWorkflow executes the DAG: tasks whose dependencies have all
// delivered results are submitted (concurrently, as independent grid
// jobs); the call returns when every task finished or the deadline
// passed. It must run in a client activity on this node's host.
//
// Deprecated: RunWorkflow predates the flow engine (internal/flow),
// which adds upfront DAG validation, SubmitAll batching, cross-stage
// data passing, and the workflow-aware checkpoint bias. New code
// should convert the Workflow with flow.FromGrid and run it through
// flow.Run. This entry point remains for compatibility; it shares the
// engine's seq-keyed harvest and notification-driven wakeups.
func (n *Node) RunWorkflow(rt transport.Runtime, wf Workflow, deadline time.Duration) (map[string]TaskResult, error) {
	byName := make(map[string]*Task, len(wf.Tasks))
	for i := range wf.Tasks {
		t := &wf.Tasks[i]
		if _, dup := byName[t.Name]; dup {
			return nil, fmt.Errorf("grid: duplicate task %q", t.Name)
		}
		byName[t.Name] = t
	}
	for _, t := range wf.Tasks {
		for _, d := range t.DependsOn {
			if _, ok := byName[d]; !ok {
				return nil, fmt.Errorf("%w: task %q depends on unknown %q", ErrWorkflowCycle, t.Name, d)
			}
		}
	}

	results := make(map[string]TaskResult, len(wf.Tasks))
	submitted := make(map[string]int)           // task name -> client-local seq
	startedAt := make(map[string]time.Duration) // task name -> submit instant

	for len(results) < len(wf.Tasks) {
		// Submit every task whose dependencies are complete.
		progress := false
		for _, t := range wf.Tasks {
			if _, done := results[t.Name]; done {
				continue
			}
			if _, inFlight := submitted[t.Name]; inFlight {
				continue
			}
			ready := true
			for _, d := range t.DependsOn {
				if _, ok := results[d]; !ok {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			at := rt.Now()
			jobID, err := n.Submit(rt, t.Spec)
			if err != nil {
				return results, fmt.Errorf("grid: submit task %q: %w", t.Name, err)
			}
			seq, ok := n.SeqFor(jobID)
			if !ok {
				return results, fmt.Errorf("grid: task %q vanished after submit", t.Name)
			}
			submitted[t.Name] = seq
			// Record the submit instant here: pendingJob.submitAt is
			// monitor state (backdated on proof-of-life), not history.
			startedAt[t.Name] = at
			progress = true
		}
		// Harvest completions by client-local sequence number — stable
		// across monitor resubmissions, which re-key the job GUID per
		// attempt (harvesting by the submit-time GUID would wedge the
		// DAG on the first resubmission).
		for name, seq := range submitted {
			if st, ok := n.StatusBySeq(seq); ok && st.Done {
				results[name] = TaskResult{Name: name, JobID: st.JobID, Started: startedAt[name], Finished: st.Finished}
				delete(submitted, name)
				progress = true
			}
		}
		if len(results) == len(wf.Tasks) {
			return results, nil
		}
		if len(submitted) == 0 && !progress {
			// Nothing running and nothing became ready: cycle.
			return results, ErrWorkflowCycle
		}
		if rt.Now() >= deadline {
			return results, fmt.Errorf("%w: %d/%d tasks done", ErrWorkflowStall, len(results), len(wf.Tasks))
		}
		// Notification-driven wakeup: block until a result lands or a
		// pushed lineage transition arrives, capped at the deadline;
		// without a wakeup-capable runtime this degrades to an IdlePoll
		// sleep (the sim path).
		n.AwaitResultEvent(rt, deadline-rt.Now())
	}
	return results, nil
}
