package grid

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/transport"
)

// Unit tests for the submit-path retry classification (client.go):
// delivery-level and routing failures retry, backpressure rejections
// honor the owner's hint, and definitive handler answers fail fast.

func TestClassifyInjectErr(t *testing.T) {
	cases := []struct {
		name  string
		err   error
		class injectClass
		after time.Duration
	}{
		{"timeout", transport.ErrTimeout, injectTransient, 0},
		{"unreachable wrapped", fmt.Errorf("grid: hand job x to owner y: %w", transport.ErrUnreachable), injectTransient, 0},
		{"down wrapped", fmt.Errorf("call: %w: peer reported closed", transport.ErrDown), injectTransient, 0},
		{"route failure", fmt.Errorf("%w: job x: no live owner", errRoute), injectTransient, 0},
		{"retry after", &RetryAfterError{After: 750 * time.Millisecond}, injectRetryAfter, 750 * time.Millisecond},
		{"retry after wrapped", fmt.Errorf("inject: %w", &RetryAfterError{After: time.Second}), injectRetryAfter, time.Second},
		{"handler answer", errors.New("grid: node does not satisfy job constraints"), injectPermanent, 0},
		{"no handler", transport.ErrNoHandler, injectPermanent, 0},
	}
	for _, tc := range cases {
		cls, after := classifyInjectErr(tc.err)
		if cls != tc.class || after != tc.after {
			t.Errorf("%s: classified (%v, %v), want (%v, %v)", tc.name, cls, after, tc.class, tc.after)
		}
	}
}

// fixedRuntime satisfies the Rand-only needs of jitterAfter.
type fixedRuntime struct {
	transport.Runtime
	rng *rand.Rand
}

func (f *fixedRuntime) Rand() *rand.Rand { return f.rng }

func TestJitterAfterBounds(t *testing.T) {
	rt := &fixedRuntime{rng: rand.New(rand.NewSource(1))}
	base := 400 * time.Millisecond
	for i := 0; i < 100; i++ {
		got := jitterAfter(rt, base)
		if got < base || got > base+base/2 {
			t.Fatalf("jitter %v outside [%v, %v]", got, base, base+base/2)
		}
	}
	if got := jitterAfter(rt, 0); got <= 0 {
		t.Fatalf("zero hint must still wait, got %v", got)
	}
}

func TestInjectResultErr(t *testing.T) {
	if err := (InjectResult{}).resultErr(); err != nil {
		t.Fatalf("clean result errored: %v", err)
	}
	err := InjectResult{RetryAfterMS: 600}.resultErr()
	cls, after := classifyInjectErr(err)
	if cls != injectRetryAfter || after != 600*time.Millisecond {
		t.Fatalf("retry-after result classified (%v, %v)", cls, after)
	}
	err = InjectResult{Err: "route job x: no live owner"}.resultErr()
	if cls, _ := classifyInjectErr(err); cls != injectTransient {
		t.Fatalf("route-failure result classified %v, want transient", cls)
	}
}

// TestAdmitOwnBackoffScales checks admission control: under capacity
// everything is admitted; at and past capacity the rejection hint grows
// with overload depth and saturates at 10x the base.
func TestAdmitOwnBackoffScales(t *testing.T) {
	base := 100 * time.Millisecond
	n := &Node{
		cfg:   Config{OwnerCapacity: 2, RetryAfter: base}.withDefaults(),
		owned: map[ids.ID]*ownedJob{},
	}
	admit := func() (time.Duration, bool) {
		n.mu.Lock()
		defer n.mu.Unlock()
		err := n.admitOwnLocked()
		if err == nil {
			return 0, true
		}
		var ra *RetryAfterError
		if !errors.As(err, &ra) {
			t.Fatalf("admission returned %T, want *RetryAfterError", err)
		}
		return ra.After, false
	}
	fill := func(k int) {
		n.mu.Lock()
		for len(n.owned) < k {
			n.owned[ids.HashString(fmt.Sprintf("j%d", len(n.owned)))] = &ownedJob{}
		}
		n.mu.Unlock()
	}
	if _, ok := admit(); !ok {
		t.Fatal("rejected below capacity")
	}
	fill(2)
	atCap, ok := admit()
	if ok {
		t.Fatal("admitted at capacity")
	}
	if atCap != base {
		t.Fatalf("at-capacity hint %v, want %v", atCap, base)
	}
	fill(5)
	deeper, _ := admit()
	if deeper <= atCap {
		t.Fatalf("hint did not grow with overload: %v <= %v", deeper, atCap)
	}
	fill(200)
	saturated, _ := admit()
	if saturated != 10*base {
		t.Fatalf("saturated hint %v, want %v", saturated, 10*base)
	}
	if _, ok := admit(); ok {
		t.Fatal("admitted while far past capacity")
	}
	// Uncapacitated owners never reject.
	n.cfg.OwnerCapacity = 0
	if _, ok := admit(); !ok {
		t.Fatal("capacity off but admission rejected")
	}
}
