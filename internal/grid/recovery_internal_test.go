package grid

// Regression tests for recovery-path races in the owner role. These
// are white-box: they drive monitorTick, handleHeartbeat, and tryRelay
// directly against a stub host, reproducing interleavings that the
// cooperative simulator cannot schedule (the original
// ownerMonitorLoop nil-dereference needed a map deletion between two
// lock regions of the same tick).

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/resource"
	"repro/internal/transport"
)

// stubRT is a minimal transport.Runtime whose Call is scripted.
type stubRT struct {
	now  time.Duration
	rng  *rand.Rand
	call func(to transport.Addr, method string, req any) (any, error)
}

func (r *stubRT) Now() time.Duration    { return r.now }
func (r *stubRT) Sleep(d time.Duration) { r.now += d }
func (r *stubRT) Rand() *rand.Rand      { return r.rng }
func (r *stubRT) Call(to transport.Addr, method string, req any) (any, error) {
	if r.call == nil {
		return nil, transport.ErrUnreachable
	}
	return r.call(to, method, req)
}
func (r *stubRT) CallT(to transport.Addr, method string, req any, _ time.Duration) (any, error) {
	return r.Call(to, method, req)
}

// stubHost records spawned activities without running them.
type stubHost struct {
	addr   transport.Addr
	spawns []string
}

func (h *stubHost) Addr() transport.Addr             { return h.addr }
func (h *stubHost) Handle(string, transport.Handler) {}
func (h *stubHost) Go(name string, fn func(rt transport.Runtime)) {
	h.spawns = append(h.spawns, name)
}
func (h *stubHost) Up() bool { return true }

type stubMatcher struct{}

func (stubMatcher) FindRunNode(transport.Runtime, resource.Constraints, []transport.Addr) (transport.Addr, MatchStats, error) {
	return "", MatchStats{}, errors.New("no candidates")
}

func newStubNode(rec Recorder, cfg Config) (*Node, *stubHost) {
	h := &stubHost{addr: "owner"}
	n := NewNode(h, resource.Vector{4, 1024, 100}, "linux", nil, stubMatcher{}, rec, cfg)
	return n, h
}

// orderedIDs returns two distinct job IDs with a.Less(b).
func orderedIDs() (ids.ID, ids.ID) {
	a, b := ids.HashString("job-a"), ids.HashString("job-b")
	if b.Less(a) {
		a, b = b, a
	}
	return a, b
}

// TestMonitorTickSurvivesConcurrentComplete reproduces the
// ownerMonitorLoop nil-dereference: two jobs' run nodes go silent in
// the same tick, and while the first failure is being recorded a
// completion for the second job arrives and deletes it. The old code
// re-read n.owned[id].prof after the scan unlocked and panicked on the
// deleted entry; the fix captures the profile during the scan.
func TestMonitorTickSurvivesConcurrentComplete(t *testing.T) {
	idA, idB := orderedIDs()
	cfg := Config{HeartbeatEvery: time.Second, RunDeadAfter: 3 * time.Second}
	rt := &stubRT{now: time.Minute, rng: rand.New(rand.NewSource(1))}

	var n *Node
	completed := false
	rec := RecorderFunc(func(ev Event) {
		// The instant the first dead run node is recorded, the second
		// job completes — the interleaving a concurrent handleComplete
		// produces between the monitor's lock regions.
		if ev.Kind == EvRunFailureDetected && ev.JobID == idA && !completed {
			completed = true
			if _, err := n.handleComplete(rt, "run2", CompleteReq{JobID: idB, Run: "run2"}); err != nil {
				t.Fatalf("handleComplete: %v", err)
			}
		}
	})
	n, _ = newStubNode(rec, cfg)
	for _, id := range []ids.ID{idA, idB} {
		n.owned[id] = &ownedJob{
			prof:    Profile{ID: id, Client: "client"},
			run:     transport.Addr("run-" + id.Short()),
			matched: true,
			lastHB:  0, // long silent
		}
	}

	n.monitorTick(rt) // old code: nil-pointer panic on idB

	if !completed {
		t.Fatal("interleaving not exercised: no EvRunFailureDetected for idA")
	}
	if _, ok := n.owned[idB]; ok {
		t.Fatal("completed job still owned")
	}
}

// TestHeartbeatDropsExcludedRunNode covers the stale-heartbeat race:
// while a job is mid-rematch (matched=false), the excluded old run
// node's heartbeat must not refresh lastHB and must be answered with a
// drop instruction — otherwise the job executes twice once the rematch
// lands.
func TestHeartbeatDropsExcludedRunNode(t *testing.T) {
	id := ids.HashString("job")
	n, _ := newStubNode(nil, Config{})
	staleHB := 5 * time.Second
	n.owned[id] = &ownedJob{
		prof:     Profile{ID: id, Client: "client"},
		matched:  false,
		matching: true,
		excluded: []transport.Addr{"old-run"},
		lastHB:   staleHB,
	}
	rt := &stubRT{now: 20 * time.Second, rng: rand.New(rand.NewSource(2))}

	raw, err := n.handleHeartbeat(rt, "old-run", HeartbeatReq{Run: "old-run", Jobs: []ids.ID{id}})
	if err != nil {
		t.Fatalf("handleHeartbeat: %v", err)
	}
	resp := raw.(HeartbeatResp)
	if len(resp.Drop) != 1 || resp.Drop[0] != id {
		t.Fatalf("excluded run node not told to drop: %+v", resp)
	}
	if got := n.owned[id].lastHB; got != staleHB {
		t.Fatalf("excluded heartbeat refreshed lastHB: %v", got)
	}

	// A fresh (non-excluded) run node's heartbeat still refreshes.
	raw, err = n.handleHeartbeat(rt, "new-run", HeartbeatReq{Run: "new-run", Jobs: []ids.ID{id}})
	if err != nil {
		t.Fatalf("handleHeartbeat: %v", err)
	}
	if resp := raw.(HeartbeatResp); len(resp.Drop) != 0 {
		t.Fatalf("fresh run node told to drop: %+v", resp)
	}
	if got := n.owned[id].lastHB; got != rt.now {
		t.Fatalf("fresh heartbeat did not refresh lastHB: %v", got)
	}
}

// TestRelayAttemptsBounded covers the relay leak: when the client
// never comes back, the owner must stop retrying after ResultRetries
// attempts, free the owned entry, and record EvGaveUp.
func TestRelayAttemptsBounded(t *testing.T) {
	id := ids.HashString("job")
	var gaveUp int
	rec := RecorderFunc(func(ev Event) {
		if ev.Kind == EvGaveUp && ev.JobID == id {
			gaveUp++
		}
	})
	cfg := Config{ResultRetries: 3}
	n, _ := newStubNode(rec, cfg)
	res := Result{JobID: id, RunNode: "run"}
	n.owned[id] = &ownedJob{prof: Profile{ID: id, Client: "client"}, relay: &res}
	rt := &stubRT{rng: rand.New(rand.NewSource(3))}
	rt.call = func(transport.Addr, string, any) (any, error) { return nil, transport.ErrTimeout }

	for i := 0; i < 10; i++ {
		n.monitorTick(rt)
		rt.now += time.Second
	}
	if _, ok := n.owned[id]; ok {
		t.Fatal("owned entry leaked after relay retries exhausted")
	}
	if gaveUp != 1 {
		t.Fatalf("EvGaveUp recorded %d times, want 1", gaveUp)
	}

	// A reachable client still gets the relayed result before the cap.
	id2 := ids.HashString("job2")
	res2 := Result{JobID: id2, RunNode: "run"}
	n.owned[id2] = &ownedJob{prof: Profile{ID: id2, Client: "client"}, relay: &res2}
	delivered := 0
	rt.call = func(to transport.Addr, method string, req any) (any, error) {
		if method == MResult {
			delivered++
			return ResultResp{}, nil
		}
		return nil, transport.ErrTimeout
	}
	n.monitorTick(rt)
	if delivered != 1 {
		t.Fatalf("relay delivered %d results, want 1", delivered)
	}
	if _, ok := n.owned[id2]; ok {
		t.Fatal("owned entry kept after successful relay")
	}
}
