package grid

import (
	"time"

	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/transport"
)

// The grid.stats and grid.trace RPCs are the pull side of the
// observability layer: gridctl scrapes node statistics and walks job
// traces across nodes through them. Tracing itself is pull-based —
// nodes only buffer locally and never report anywhere — which is what
// keeps observability out of the protocol's scheduling.

// Stats/trace method names registered on the host.
const (
	MStats = "grid.stats"
	MTrace = "grid.trace"
)

// NodeStats is one node's self-reported state snapshot.
type NodeStats struct {
	Addr      transport.Addr
	Now       time.Duration // the node's local clock (process-relative)
	QueueLen  int           // run queue length incl. the running job
	Owned     int           // jobs currently owned
	Pending   int           // client-role submissions awaiting results
	Completed int64         // jobs finished as run node
	Executed  time.Duration // nominal work executed
	Samples   []obs.Sample  // flattened metrics registry, sorted by name
}

// RPC message types for stats and trace.
type (
	// StatsReq asks a node for its statistics snapshot.
	StatsReq struct{}
	// StatsResp returns the snapshot.
	StatsResp struct{ Stats NodeStats }
	// TraceReq asks a node for its local events of one job trace.
	TraceReq struct{ Trace ids.ID }
	// TraceResp returns the node's trace events plus the peer addresses
	// its context recorded — the frontier a cross-node reconstruction
	// (gridctl trace) walks next.
	TraceResp struct {
		Events []obs.TraceEvent
		Peers  []transport.Addr
	}
)

func (n *Node) handleStats(rt transport.Runtime, from transport.Addr, req any) (any, error) {
	n.mu.Lock()
	owned := len(n.owned)
	pending := 0
	for _, p := range n.pending {
		if !p.got {
			pending++
		}
	}
	completed := n.Completed
	executed := n.Executed
	n.mu.Unlock()
	return StatsResp{Stats: NodeStats{
		Addr:      n.host.Addr(),
		Now:       rt.Now(),
		QueueLen:  n.QueueLen(),
		Owned:     owned,
		Pending:   pending,
		Completed: completed,
		Executed:  executed,
		Samples:   n.obsv.Registry().Snapshot(),
	}}, nil
}

func (n *Node) handleTrace(rt transport.Runtime, from transport.Addr, req any) (any, error) {
	t := req.(TraceReq)
	evs, peers := n.om.tracer.Get(t.Trace)
	return TraceResp{Events: evs, Peers: peers}, nil
}
