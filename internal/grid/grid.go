// Package grid implements the desktop-grid layer of the paper (Section
// 2, Figure 1): clients inject jobs at any node, the injection node
// assigns a GUID and routes the job to its owner node, the owner runs
// matchmaking to choose a run node, run nodes execute jobs from a FIFO
// queue one at a time while heartbeating every queued job to its owner
// over a direct connection, and results return to the client.
//
// Robustness: the job profile is replicated at the owner and run node.
// The owner detects run-node failure by heartbeat timeout and rematches
// the job; the run node detects owner failure by heartbeat delivery
// failure and routes the job's GUID to its new owner (the DHT
// reassigns the key automatically); if both fail, the client's monitor
// times out and resubmits.
package grid

import (
	"fmt"
	"time"

	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/pubsub"
	"repro/internal/resource"
	"repro/internal/transport"
	"repro/internal/trust"
	"repro/internal/workload"
)

// Config tunes the grid layer. The zero value selects the defaults.
type Config struct {
	// HeartbeatEvery is the run node's per-owner heartbeat period
	// (default 2 s).
	HeartbeatEvery time.Duration
	// RunDeadAfter is how long an owner waits without heartbeats before
	// declaring a run node dead and rematching (default 8 s).
	RunDeadAfter time.Duration
	// OwnerDeadAfter is how long a run node tolerates failing
	// heartbeats before seeking a new owner (default 8 s).
	OwnerDeadAfter time.Duration
	// IdlePoll is the run queue's idle polling interval (default 250 ms).
	IdlePoll time.Duration
	// MaxRematch bounds how many distinct run nodes the owner will try
	// per job (default 5).
	MaxRematch int
	// MatchRetryEvery spaces retries when matchmaking finds no
	// candidate (default 5 s).
	MatchRetryEvery time.Duration
	// ResultRetries bounds direct result-delivery attempts before the
	// run node hands the result to the owner to relay (default 3).
	ResultRetries int
	// SpeedScaling divides a job's nominal work by the run node's CPU
	// capability — the heterogeneous-runtime extension (default off:
	// the paper's evaluation uses workload-specified runtimes).
	SpeedScaling bool
	// Executor, when set, performs the job's actual computation instead
	// of sleeping for the nominal Work duration. Live deployments use it
	// to run real (sandboxed) work; the simulator leaves it nil.
	Executor func(prof Profile) (outputKB int, err error)
	// FairShare changes the run queue discipline from the paper's FIFO
	// to least-served-client-first — the fairness extension the paper
	// leaves as future work ("allocating resources to requests from
	// both users submitting large numbers of jobs at once ... and from
	// users with smaller resource requirements").
	FairShare bool

	// CheckpointEvery enables the checkpoint/resume subsystem: run
	// nodes snapshot job progress at this interval and ship snapshots
	// to the owner, so a recovered job resumes instead of restarting
	// (default 0: off, the paper's restart-from-scratch recovery).
	CheckpointEvery time.Duration
	// CheckpointAdaptive adapts the interval to the observed failure
	// rate (Young's rule, after Ni & Harwood's adaptive scheme for P2P
	// volunteer grids): sqrt(2*CheckpointCost/rate), clamped to
	// [CheckpointMinEvery, CheckpointMaxEvery]. With no recent failure
	// observations the interval backs off to CheckpointMaxEvery.
	CheckpointAdaptive bool
	// CheckpointMinEvery / CheckpointMaxEvery clamp the adaptive
	// interval (defaults 1 s and 60 s).
	CheckpointMinEvery time.Duration
	CheckpointMaxEvery time.Duration
	// CheckpointCost is the assumed overhead of taking one checkpoint,
	// the numerator of Young's rule (default 500 ms).
	CheckpointCost time.Duration
	// CheckpointFailWindow is the sliding window over which failure
	// observations feed the adaptive rate (default 2 min).
	CheckpointFailWindow time.Duration
	// CheckpointPiggybackKB caps the checkpoint payload a single
	// heartbeat may carry; snapshots whose state exceeds the remaining
	// budget travel in a standalone grid.checkpoint RPC instead
	// (default 4 KB).
	CheckpointPiggybackKB int
	// CheckpointStateKB, when set, makes the simulated resumable work
	// attach that much synthetic state to every snapshot — a test and
	// experiment knob for exercising the oversized-checkpoint path.
	CheckpointStateKB int
	// CheckpointWorkflowAware makes the adaptive policy honor the
	// per-job CkptBias hint the flow engine stamps on critical-path and
	// high-fan-out workflow stages: the Young's-rule interval is divided
	// by sqrt(bias), so the stages whose loss would re-execute the most
	// downstream work snapshot the most often (Ni & Harwood's
	// workflow-aware refinement). Default off: bias hints are carried
	// but ignored, which is what plain-adaptive comparisons and seeded
	// replays of earlier PRs expect. Requires CheckpointAdaptive.
	CheckpointWorkflowAware bool
	// ProgressSlice is the execution-accounting quantum: run nodes
	// advance jobs in slices of at most this much nominal work so
	// executed-work accounting and drop-aborts have bounded lag, even
	// with checkpointing off (default HeartbeatEvery).
	ProgressSlice time.Duration

	// Replicas is the sabotage-tolerance redundancy degree R: owners
	// schedule every job on R independent run nodes and vote on the
	// returned result digests (default 1: the paper's single-execution
	// protocol, no voting). Raised to Quorum when set below it.
	Replicas int
	// Quorum is how many matching digests accept a result (default 1).
	// With Replicas=1/Quorum=1 the voting path is disabled entirely and
	// the wire protocol and event traces are unchanged.
	Quorum int
	// Trust, when set, is this node's local peer-reputation table:
	// voting outcomes feed it, matchmaking skips its blacklisted peers,
	// and probes spot-check them. Independent of Replicas/Quorum — but
	// only voting outcomes and probes ever update it.
	Trust *trust.Table
	// ProbeEvery spaces known-answer probe jobs sent to the worst
	// blacklisted peer in Trust (default 0: probing off).
	ProbeEvery time.Duration
	// ProbeWork is the simulated execution time of one probe job
	// (default 100 ms).
	ProbeWork time.Duration
	// Byzantine, when set, makes THIS node a saboteur as a run node: for
	// each (job, attempt) it may return a corrupted result digest
	// (wrong) or silently withhold the result (withhold). Installed by
	// the fault-injection layer; nil on honest nodes.
	Byzantine func(jobID ids.ID, attempt int) (wrong, withhold bool)

	// ReplicaK enables owner-state replication (DESIGN.md §10): every
	// owner mutation is also written to a replicated store that pushes
	// it to the first ReplicaK live ring successors, and replicas
	// promote themselves to owner when probes declare the owner dead —
	// removing the client resubmit from the owner+run double-failure
	// path. Default 0: off, the paper's owner+run-only replication.
	// Requires ReplicaRing.
	ReplicaK int
	// ReplicaRing supplies ring position and successor targets for the
	// replica subsystem (replica.ChordRing over chord in deployments;
	// tests substitute scripted rings).
	ReplicaRing ReplicaRing
	// ReplicaPushEvery is the owner-side anti-entropy period (default 1 s).
	ReplicaPushEvery time.Duration
	// ReplicaProbeEvery is the replica-side owner-liveness probe period
	// (default 1 s).
	ReplicaProbeEvery time.Duration
	// ReplicaDeadAfter is how long an owner must fail probes before a
	// replica takes its keys over (default 3 s).
	ReplicaDeadAfter time.Duration

	// OwnerCapacity bounds the owner's inject queue: how many jobs one
	// node will track as owner at once. Injections beyond it are
	// rejected with a retry-after hint instead of growing the owned
	// set without bound — a hot owner sheds load rather than
	// collapsing (default 0: unbounded, the paper's behavior).
	// Recovery paths (adoption, replica promotion) bypass the bound;
	// shedding those would lose jobs that are already placed.
	OwnerCapacity int
	// RetryAfter is the base backoff an at-capacity owner suggests to
	// rejected clients (default 500ms); clients jitter around it.
	RetryAfter time.Duration
	// InjectRetries bounds one submission's classified retry loop:
	// transient delivery failures re-route and retry, retry-after
	// rejections honor the owner's hint, anything else fails fast
	// (default 3; the client monitor resubmits what the loop gives
	// up on).
	InjectRetries int
	// InjectBatchMax caps how many jobs one grid.injectbatch /
	// grid.ownbatch RPC carries (default 64).
	InjectBatchMax int
	// InjectFlushWindow, when set, coalesces concurrent Submit calls:
	// a submission waits up to this long for peers to accumulate, then
	// the whole batch travels in one routed grid.injectbatch RPC
	// (default 0: off, every submission is its own RPC — the paper's
	// behavior, and what deterministic replays of old seeds expect).
	InjectFlushWindow time.Duration

	// Notify, when set, attaches the DHT pub/sub notification overlay
	// (DESIGN.md §13): this node publishes every owner-side job-state
	// transition to the job lineage's topic (the attempt-0 GUID), and
	// the client side subscribes on submit so the monitor becomes
	// push-driven — per-job status polling demotes to a slow liveness
	// fallback that fires only on notification silence. Default nil:
	// off, the paper's polling monitor, and what seeded replays of
	// earlier PRs expect. All publish/subscribe I/O runs on
	// broker-owned activities, never on the protocol hot path, so
	// protocol outcomes are unchanged with it on or off.
	Notify *pubsub.Broker
	// NotifySilence is how long a push notification keeps a due
	// pending job fresh in the client monitor before the polling
	// fallback probes it anyway (default 3*HeartbeatEvery).
	NotifySilence time.Duration

	// Obs, when set, attaches the live observability layer: lifecycle
	// metrics feed its registry, job traces its tracer, and structured
	// events its hub. Observability is trace-neutral — it never feeds
	// back into protocol decisions, and attaching it to a deterministic
	// simulation leaves the recorded event trace byte-identical (see
	// obs_soak_test.go). Nil disables it at zero cost beyond one
	// predictable branch per instrument call.
	Obs *obs.Obs

	// PeerDown, when set, reports whether the transport layer currently
	// fast-fails calls to addr — an open per-peer circuit breaker
	// (nettransport.Host.PeerDown). Matchmaking demotes such peers for
	// the round instead of spending an assignment attempt on them, and
	// the client monitor probes them last. Nil (the simulator) disables
	// degradation, keeping seeded replays byte-identical.
	PeerDown func(addr transport.Addr) bool
	// Health, when set, supplies the transport's per-peer breaker
	// snapshot answered over the grid.health RPC (gridctl health). Nil
	// reports no peers.
	Health func() []PeerHealth
}

func (c Config) withDefaults() Config {
	if c.HeartbeatEvery == 0 {
		c.HeartbeatEvery = 2 * time.Second
	}
	if c.RunDeadAfter == 0 {
		c.RunDeadAfter = 8 * time.Second
	}
	if c.OwnerDeadAfter == 0 {
		c.OwnerDeadAfter = 8 * time.Second
	}
	if c.IdlePoll == 0 {
		c.IdlePoll = 250 * time.Millisecond
	}
	if c.MaxRematch == 0 {
		c.MaxRematch = 5
	}
	if c.MatchRetryEvery == 0 {
		c.MatchRetryEvery = 5 * time.Second
	}
	if c.ResultRetries == 0 {
		c.ResultRetries = 3
	}
	if c.CheckpointMinEvery == 0 {
		c.CheckpointMinEvery = time.Second
	}
	if c.CheckpointMaxEvery == 0 {
		c.CheckpointMaxEvery = time.Minute
	}
	if c.CheckpointCost == 0 {
		c.CheckpointCost = 500 * time.Millisecond
	}
	if c.CheckpointFailWindow == 0 {
		c.CheckpointFailWindow = 2 * time.Minute
	}
	if c.CheckpointPiggybackKB == 0 {
		c.CheckpointPiggybackKB = 4
	}
	if c.ProgressSlice == 0 {
		c.ProgressSlice = c.HeartbeatEvery
	}
	if c.Replicas == 0 {
		c.Replicas = 1
	}
	if c.Quorum == 0 {
		c.Quorum = 1
	}
	if c.Replicas < c.Quorum {
		c.Replicas = c.Quorum
	}
	if c.ProbeWork == 0 {
		c.ProbeWork = 100 * time.Millisecond
	}
	if c.ReplicaPushEvery == 0 {
		c.ReplicaPushEvery = time.Second
	}
	if c.ReplicaProbeEvery == 0 {
		c.ReplicaProbeEvery = time.Second
	}
	if c.ReplicaDeadAfter == 0 {
		c.ReplicaDeadAfter = 3 * time.Second
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = 500 * time.Millisecond
	}
	if c.InjectRetries == 0 {
		c.InjectRetries = 3
	}
	if c.InjectBatchMax == 0 {
		c.InjectBatchMax = 64
	}
	if c.NotifySilence == 0 {
		c.NotifySilence = 3 * c.HeartbeatEvery
	}
	return c
}

// RetryAfterError is an owner's backpressure rejection: the inject
// queue is full and the client should try again after the suggested
// backoff (with jitter). On the wire it travels as the RetryAfterMS
// field of the response payload — identically over both transports —
// and is reconstructed into this type client-side.
type RetryAfterError struct{ After time.Duration }

func (e *RetryAfterError) Error() string {
	return fmt.Sprintf("grid: owner at capacity, retry after %s", e.After)
}

// votingOn reports whether the redundant-execution/quorum-voting path
// is active. With it off the owner state machine is byte-for-byte the
// pre-voting protocol.
func (c Config) votingOn() bool { return c.Replicas > 1 || c.Quorum > 1 }

// Profile describes a job: the paper's "data and associated profile".
type Profile struct {
	ID      ids.ID
	Client  transport.Addr
	Seq     int // client-local submission number
	Attempt int // resubmission counter
	Cons    resource.Constraints
	// Work is the nominal execution time (divided by CPU capability
	// when SpeedScaling is on).
	Work time.Duration
	// InputKB/OutputKB model the paper's "modest I/O requirements"
	// (KB-scale datasets); they only affect recorded transfer sizes.
	InputKB  int
	OutputKB int
	// Input is the job's real input payload: the run node seeds its
	// resumable state from these bytes before the first slice, so the
	// job computes from upstream data instead of re-deriving it. The
	// flow engine ships stage N's delivered output here for stage N+1;
	// once execution starts the bytes travel onward inside ordinary
	// checkpoints (heartbeat piggyback / grid.checkpoint / AssignReq),
	// so mid-stage recovery reuses the existing transfer path.
	Input []byte
	// CkptBias is the workflow-aware checkpoint hint (>= 1; 0 or 1
	// means unbiased). The flow engine sets it from the DAG shape —
	// the ratio of downstream work hanging off this stage to the
	// stage's own work — and run nodes honor it only when
	// Config.CheckpointWorkflowAware is on.
	CkptBias float64
	// CarryOutput asks the run node to attach the job's derived output
	// bytes to the Result (Result.Data); the flow engine sets it on
	// stages with dependents so their output can ship downstream.
	CarryOutput bool
}

// JobGUID derives a job's GUID the way the paper's injection node does:
// by hashing the submission identity.
func JobGUID(client transport.Addr, seq, attempt int) ids.ID {
	return ids.HashString(fmt.Sprintf("%s/%d/%d", client, seq, attempt))
}

// TraceID is a job lineage's trace identifier: the attempt-0 GUID,
// stable across resubmissions so one trace spans every attempt — and
// derivable from the submission identity alone, so any node can
// reconstruct it for an untraced legacy message.
func TraceID(client transport.Addr, seq int) ids.ID {
	return JobGUID(client, seq, 0)
}

// Checkpoint is a snapshot of one job's partial progress, produced by
// the run node's resumable work (workload.Resumable) and replicated at
// the owner so recovery resumes instead of restarting. Done is the
// nominal work completed; Data is the computation's serialized state
// (empty for pure-duration simulated jobs).
type Checkpoint struct {
	JobID   ids.ID
	Attempt int
	Run     transport.Addr // run node that took the snapshot
	Done    time.Duration
	Data    []byte
	At      time.Duration // virtual time of the snapshot
}

// Zero reports whether the checkpoint holds no progress.
func (c Checkpoint) Zero() bool { return c.Done <= 0 }

// Result is what the run node returns to the client.
type Result struct {
	JobID    ids.ID
	Attempt  int
	RunNode  transport.Addr
	Started  time.Duration
	Finished time.Duration
	OutputKB int
	// Err reports an execution failure (the job ran but its computation
	// returned an error); empty on success.
	Err string
	// Digest fingerprints the result's content for quorum voting; empty
	// on the legacy single-execution path.
	Digest string
	// Data is the job's output payload, attached only when the profile
	// asked for it (Profile.CarryOutput) — a deterministic function of
	// the submission identity and input bytes, so every attempt and
	// every honest run node produces identical output. The flow engine
	// feeds it to dependent stages as their Input.
	Data []byte
}

// ResultDigest fingerprints a result's content. It deliberately covers
// only what the computation determines — the submission identity and
// the output — so honest replicas of the same job produce identical
// digests regardless of which run node or attempt computed them.
func ResultDigest(client transport.Addr, seq, outputKB int, execErr string) string {
	return ids.HashString(fmt.Sprintf("result/%s/%d/%d/%s", client, seq, outputKB, execErr)).String()
}

// CorruptDigest is the wrong answer a Byzantine run node returns:
// derived from the correct digest AND the saboteur's own address, so
// independent (non-colluding) saboteurs corrupt differently and cannot
// accidentally form a quorum of identical wrong answers.
func CorruptDigest(correct string, node transport.Addr) string {
	return ids.HashString(fmt.Sprintf("corrupt/%s/%s", correct, node)).String()
}

// ProbeDigest is the known answer to a spot-check probe job with the
// given nonce; the prober computes it locally and compares.
func ProbeDigest(nonce string) string {
	return ids.HashString("probe/" + nonce).String()
}

// StageOutput derives the output payload a CarryOutput job produces: a
// pure function of the submission identity and the input bytes, sized
// OutputKB (minimum 1 KB). Like ResultDigest it deliberately covers
// only what the computation determines, so every attempt on every
// honest run node derives identical bytes — data passing stays safe
// across resubmission, rematch, and owner handoff.
func StageOutput(prof Profile) []byte {
	kb := prof.OutputKB
	if kb <= 0 {
		kb = 1
	}
	seed := fmt.Sprintf("stage-out/%s/%d/%s", prof.Client, prof.Seq, ids.Hash(prof.Input))
	return workload.DeriveBytes(seed, kb*1024)
}

// MatchStats quantifies one matchmaking operation, aggregated across
// whatever algorithm produced it.
type MatchStats struct {
	Hops        int // overlay messages used
	Visits      int // nodes examined (tree search)
	Pushes      int // CAN load-push steps
	Escalations int // RN-Tree ancestor climbs
	WalkHops    int // random-walk hops
}

// Overlay routes a job to its owner node.
type Overlay interface {
	// RouteJob returns the owner's address for a job plus overlay hop
	// count.
	RouteJob(rt transport.Runtime, jobID ids.ID, cons resource.Constraints) (transport.Addr, int, error)
}

// Matchmaker chooses a run node; it executes on the owner's host.
type Matchmaker interface {
	FindRunNode(rt transport.Runtime, cons resource.Constraints, exclude []transport.Addr) (transport.Addr, MatchStats, error)
}

// EventKind enumerates job lifecycle events.
type EventKind int

// Lifecycle events recorded through the Recorder.
const (
	EvSubmitted EventKind = iota
	EvInjected
	EvOwned
	EvMatched
	EvMatchFailed
	EvEnqueued
	EvStarted
	EvCompleted
	EvResultDelivered
	EvRunFailureDetected
	EvOwnerFailureDetected
	EvOwnerAdopted
	EvResubmitted
	EvDropped
	EvGaveUp
	EvCheckpointed
	EvResumed
	// Sabotage-tolerance events (appended — earlier kinds keep their
	// values so pre-voting traces stay comparable).
	EvVoted        // a replica's digest was tallied at the owner
	EvAccepted     // quorum reached; Digest is the winning digest
	EvRejected     // a replica dissented from the accepted digest
	EvQuorumFailed // replica/rematch budget exhausted without quorum
	EvReputation   // a peer's trust score changed; Delta is the change
	EvBlacklisted  // the change crossed the peer into the blacklist
	EvProbed       // a known-answer probe completed; Delta is the change
	// Replication events (appended; see DESIGN.md §10).
	EvPromoted // a replica took ownership of a job after owner death
	EvHandoff  // a promoted/restored owner re-established the execution path
	EvDemoted  // a stale owner stood down after being fenced
	EvRestored // a replica handed a restarted owner its job state back
	// Backpressure events (appended; see DESIGN.md §11).
	EvInjectRejected // an at-capacity owner refused an injection with retry-after
)

var eventNames = [...]string{
	"submitted", "injected", "owned", "matched", "match-failed",
	"enqueued", "started", "completed", "result-delivered",
	"run-failure-detected", "owner-failure-detected", "owner-adopted",
	"resubmitted", "dropped", "gave-up", "checkpointed", "resumed",
	"voted", "accepted", "rejected", "quorum-failed", "reputation",
	"blacklisted", "probed",
	"promoted", "handoff", "demoted", "restored",
	"inject-rejected",
}

func (k EventKind) String() string {
	if int(k) < len(eventNames) {
		return eventNames[k]
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one recorded lifecycle step.
type Event struct {
	Kind    EventKind
	JobID   ids.ID
	Attempt int
	At      time.Duration
	Node    transport.Addr
	Hops    int
	Match   MatchStats
	// Progress carries event-specific work accounting: the snapshot's
	// completed work for EvCheckpointed, the resume offset for
	// EvStarted/EvResumed, the checkpointed work salvageable at the
	// point of failure for EvRunFailureDetected, and the job's nominal
	// work for EvResultDelivered.
	Progress time.Duration
	// Digest carries the result fingerprint: the expected (correct)
	// digest on EvSubmitted, the replica's digest on EvVoted, the
	// winning digest on EvAccepted, and the delivered digest on
	// EvResultDelivered — the ground-truth channel wrong-accept
	// accounting compares.
	Digest string
	// Delta is the reputation change for EvReputation/EvBlacklisted/
	// EvProbed.
	Delta float64
	// Seq is the client-local submission number on EvSubmitted, letting
	// collectors recompute the expected digest independently.
	Seq int
}

// Recorder receives lifecycle events; experiment harnesses install one
// shared recorder to compute wait times and recovery counts.
type Recorder interface {
	Record(ev Event)
}

// RecorderFunc adapts a function to the Recorder interface.
type RecorderFunc func(ev Event)

// Record implements Recorder.
func (f RecorderFunc) Record(ev Event) { f(ev) }

type nopRecorder struct{}

func (nopRecorder) Record(Event) {}
