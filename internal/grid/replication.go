package grid

import (
	"bytes"
	"encoding/gob"
	"time"

	"repro/internal/ids"
	"repro/internal/obs"
	replpkg "repro/internal/replica"
	"repro/internal/transport"
)

// ReplicaRing is the ring abstraction the replica subsystem consumes;
// re-exported so deployments configure grid.Config without importing
// internal/replica directly.
type ReplicaRing = replpkg.Ring

// OwnerRecord is the owner-side job state a node replicates to its ring
// successors (DESIGN.md §10): enough to rebuild an ownedJob — profile,
// execution placement, exclusion history, and the latest checkpoint —
// but none of the transient coordination state (relay buffers, vote
// tallies), which the promoted owner rebuilds from the protocol itself.
type OwnerRecord struct {
	Prof     Profile
	Run      transport.Addr
	Matched  bool
	Excluded []transport.Addr
	Ckpt     Checkpoint
	TC       obs.TC
}

func encodeOwnerRecord(or OwnerRecord) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(or); err != nil {
		// All OwnerRecord fields are gob-encodable; failure here is a
		// programming error, and replication is best-effort anyway.
		return nil
	}
	return buf.Bytes()
}

func decodeOwnerRecord(data []byte) (OwnerRecord, error) {
	var or OwnerRecord
	err := gob.NewDecoder(bytes.NewReader(data)).Decode(&or)
	return or, err
}

// replTargets returns this owner's current ranked replica targets (the
// replication push set, nearest ring successor first), or nil when
// replication is off. Assignments carry it so run nodes can steer
// adoption at the replica chain — the nodes holding the job's state and
// the ones rank-based promotion elects from — instead of walk-routing
// to a random second owner.
func (n *Node) replTargets() []transport.Addr {
	if n.repl == nil {
		return nil
	}
	return n.cfg.ReplicaRing.Successors(n.cfg.ReplicaK)
}

// republish pushes a job's current owner state into the replicated
// store. Call after every owner-side mutation worth surviving this
// node's death: ownership, match results, exclusions, checkpoints.
// No-op when replication is off or the job is no longer owned.
func (n *Node) republish(jobID ids.ID) {
	if n.repl == nil {
		return
	}
	n.mu.Lock()
	job, ok := n.owned[jobID]
	var or OwnerRecord
	if ok {
		or = OwnerRecord{
			Prof:     job.prof,
			Run:      job.run,
			Matched:  job.matched,
			Excluded: append([]transport.Addr(nil), job.excluded...),
			Ckpt:     job.ckpt,
			TC:       job.tc,
		}
	}
	n.mu.Unlock()
	if !ok {
		return
	}
	n.repl.Publish(jobID, encodeOwnerRecord(or))
}

// retire tombstones a job's replicated record once its lifecycle ends
// at this owner (delivered, relayed, or given up) so replicas stop
// guarding it and the tombstone fences any copy still in flight.
func (n *Node) retire(now time.Duration, jobID ids.ID) {
	if n.repl == nil {
		return
	}
	n.repl.Delete(now, jobID)
}

// ReplicaKick asks the replica subsystem for an immediate push+probe
// round; the overlay calls it on ring changes (chord.SetRingChange) so
// re-targeting and takeover don't wait out a full anti-entropy period.
func (n *Node) ReplicaKick() {
	if n.repl != nil {
		n.repl.Kick()
	}
}

// onReplicaOwn is the replica subsystem's ownership callback: this node
// just became responsible for a replicated job record — promoted after
// the previous owner died, or restored after this node itself restarted
// and a surviving replica pushed its state back. It rebuilds the
// ownedJob and re-establishes the execution path: re-attach to the
// recorded run node when one is known, otherwise rematch (or refill the
// replica set, on the voting path) from the replicated checkpoint.
func (n *Node) onReplicaOwn(rt transport.Runtime, rec replpkg.Record, promoted bool) {
	or, err := decodeOwnerRecord(rec.Data)
	if err != nil || or.Prof.ID != rec.Key {
		return
	}
	now := rt.Now()
	n.mu.Lock()
	if _, dup := n.owned[or.Prof.ID]; dup {
		n.mu.Unlock()
		return
	}
	var job *ownedJob
	var proc string
	var spawn func(rt transport.Runtime)
	if n.cfg.votingOn() {
		// The dead owner's vote tallies are lost (same rule as adoption):
		// restart the vote from scratch; surviving replicas re-register
		// through their heartbeats' adopt path and the filler tops up.
		job = n.newVotingJobLocked(or.Prof)
		job.excluded = or.Excluded
		job.tc = or.TC
		proc, spawn = "grid.fill", func(rt transport.Runtime) { n.fillReplicas(rt, or.Prof.ID) }
	} else {
		job = &ownedJob{prof: or.Prof, excluded: or.Excluded, lastHB: now, tc: or.TC}
		if or.Ckpt.Attempt == or.Prof.Attempt {
			job.ckpt = or.Ckpt
		}
		if or.Matched && or.Run != "" && !job.isExcluded(or.Run) {
			job.run = or.Run
			job.matched = true
			proc, spawn = "grid.reattach", func(rt transport.Runtime) { n.reattachRun(rt, or.Prof.ID) }
		} else {
			job.matching = true
			proc, spawn = "grid.rematch", func(rt transport.Runtime) { n.matchAndAssign(rt, or.Prof.ID) }
		}
	}
	n.owned[or.Prof.ID] = job
	saved := job.ckpt.Done
	n.mu.Unlock()

	kind, stage := EvRestored, "restored"
	if promoted {
		kind, stage = EvPromoted, "promoted"
	}
	tc := n.trace(or.TC, now, stage, or.Prof.Attempt, rec.Owner, n.traceNote("epoch=%d", rec.Epoch))
	n.rec.Record(Event{Kind: kind, JobID: or.Prof.ID, Attempt: or.Prof.Attempt, At: now, Node: n.host.Addr(), Progress: saved})
	n.notifyTransition(now, or.Prof, kind, n.host.Addr(), saved)
	tc = n.trace(tc, now, "handoff", or.Prof.Attempt, or.Run, n.traceNote("path=%s", proc))
	n.rec.Record(Event{Kind: EvHandoff, JobID: or.Prof.ID, Attempt: or.Prof.Attempt, At: now, Node: n.host.Addr(), Progress: saved})
	n.notifyTransition(now, or.Prof, EvHandoff, or.Run, saved)
	n.mu.Lock()
	if job, ok := n.owned[or.Prof.ID]; ok {
		job.tc = tc
	}
	n.mu.Unlock()
	// Republishing under this node's ownership keeps the epoch the
	// replica layer just opened and fans the record out to OUR
	// successors, fencing the dead owner should it resurface.
	n.republish(or.Prof.ID)
	n.host.Go(proc, spawn)
}

// reattachRun re-establishes the owner<->run relationship after a
// handoff: the recorded run node gets a (idempotent) re-assignment
// naming this node as owner, which re-aims its heartbeats; if the run
// node is unreachable — the correlated owner+run double failure — the
// job falls back to ordinary rematch from the replicated checkpoint.
func (n *Node) reattachRun(rt transport.Runtime, jobID ids.ID) {
	n.mu.Lock()
	job, ok := n.owned[jobID]
	if !ok || job.vote != nil || !job.matched {
		n.mu.Unlock()
		return
	}
	prof, run, ckpt, tc := job.prof, job.run, job.ckpt, job.tc
	n.mu.Unlock()
	req := AssignReq{Prof: prof, Owner: n.host.Addr(), Ckpt: ckpt, Reps: n.replTargets(), TC: tc}
	var err error
	if run == n.host.Addr() {
		_, err = n.assign(rt, req)
	} else {
		_, err = rt.Call(run, MAssign, req)
	}
	if err == nil {
		n.mu.Lock()
		if job, ok := n.owned[jobID]; ok {
			job.lastHB = rt.Now()
		}
		n.mu.Unlock()
		n.trace(tc, rt.Now(), "reattached", prof.Attempt, run, "")
		n.republish(jobID)
		return
	}
	n.mu.Lock()
	if job, ok := n.owned[jobID]; ok && job.vote == nil {
		job.excluded = append(job.excluded, run)
		job.run = ""
		job.matched = false
		job.matching = true
	}
	n.mu.Unlock()
	n.republish(jobID)
	n.matchAndAssign(rt, jobID)
}

// onReplicaFenced is the replica subsystem's demotion callback: a newer
// record owned elsewhere displaced one this node was serving — this
// node is a stale owner (it resurfaced after a replica promoted, or
// lost an adoption race) and must stand down so the job doesn't run
// under two owners. Dropping the ownedJob also drops its heartbeat
// registration: the zombie-side rules (excluded heartbeats, complete
// fencing) already keep a displaced run node from double-delivering.
func (n *Node) onReplicaFenced(rt transport.Runtime, rec replpkg.Record) {
	n.mu.Lock()
	job, ok := n.owned[rec.Key]
	var prof Profile
	var tc obs.TC
	if ok {
		prof = job.prof
		tc = job.tc
		delete(n.owned, rec.Key)
	}
	n.mu.Unlock()
	if !ok {
		return
	}
	n.trace(tc, rt.Now(), "demoted", prof.Attempt, rec.Owner, n.traceNote("epoch=%d", rec.Epoch))
	n.rec.Record(Event{Kind: EvDemoted, JobID: prof.ID, Attempt: prof.Attempt, At: rt.Now(), Node: n.host.Addr()})
}

// MReplicas is the diagnostics RPC behind `gridctl replicas`.
const MReplicas = "grid.replicas"

// ReplicasReq asks a node for a job's replication status.
type ReplicasReq struct {
	JobID ids.ID
}

// ReplicasResp returns the node's view of the record: ordering fields,
// current owner, and (when asked of the owner) per-replica ack state.
// Known is false when replication is off or the record is unknown here.
type ReplicasResp struct {
	Status replpkg.Status
}

func (n *Node) handleReplicas(rt transport.Runtime, from transport.Addr, req any) (any, error) {
	r := req.(ReplicasReq)
	if n.repl == nil {
		return ReplicasResp{}, nil
	}
	return ReplicasResp{Status: n.repl.Status(r.JobID)}, nil
}
