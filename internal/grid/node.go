package grid

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/ids"
	"repro/internal/obs"
	replpkg "repro/internal/replica"
	"repro/internal/resource"
	"repro/internal/transport"
	"repro/internal/trust"
)

// Errors returned by the grid layer.
var (
	ErrConstraints = errors.New("grid: node does not satisfy job constraints")
	ErrUnknownJob  = errors.New("grid: unknown job")
)

// RPC message types. Job-scoped messages carry a propagated trace
// context (TC) so the observability layer can reconstruct a job's
// lifecycle across nodes; handlers record and forward it but never
// branch on it (the trace-neutrality invariant — see internal/obs).
// Node-scoped messages (heartbeat, probe, trust, stats) carry none.
type (
	// InjectReq asks any node to insert a job for a client. TC is the
	// submission's trace context; zero from untraced legacy clients, in
	// which case the injection node derives it from the submission
	// identity.
	InjectReq struct {
		Client   transport.Addr
		Seq      int
		Attempt  int
		Cons     resource.Constraints
		Work     time.Duration
		InputKB  int
		OutputKB int
		// Input/CkptBias/CarryOutput mirror the JobSpec fields of the
		// same names (workflow data passing; see Profile).
		Input       []byte
		CkptBias    float64
		CarryOutput bool
		TC          obs.TC
	}
	// InjectResp confirms insertion: the assigned GUID and owner, plus
	// (with replication on) the owner's ranked replica target list so
	// the client's monitor can probe the chain if the owner goes silent.
	// RetryAfterMS, when non-zero, is an owner backpressure rejection
	// instead: nothing was inserted, try again after that many
	// milliseconds (plus jitter).
	InjectResp struct {
		JobID        ids.ID
		Owner        transport.Addr
		Hops         int
		Reps         []transport.Addr
		RetryAfterMS int64
	}
	// InjectBatchReq carries many submissions through one routed RPC —
	// the high-throughput injection path (DESIGN.md §11).
	InjectBatchReq struct {
		Items []InjectReq
	}
	// InjectBatchResp answers positionally: Results[i] is Items[i]'s
	// outcome.
	InjectBatchResp struct {
		Results []InjectResult
	}
	// InjectResult is one batched item's outcome: an accepted job
	// carries its GUID/owner/replica chain; an owner rejection carries
	// RetryAfterMS; a routing or handoff failure carries Err (transient
	// — the client re-routes and retries).
	InjectResult struct {
		JobID        ids.ID
		Owner        transport.Addr
		Hops         int
		Reps         []transport.Addr
		RetryAfterMS int64
		Err          string
	}
	// OwnReq hands a job profile to its owner node.
	OwnReq struct {
		Prof Profile
		TC   obs.TC
	}
	// OwnResp acknowledges ownership. Reps is the new owner's ranked
	// replica target list (nil when replication is off), handed back
	// through injection to the submitting client. RetryAfterMS, when
	// non-zero, is a backpressure rejection: the owner is at capacity
	// and took nothing.
	OwnResp struct {
		Reps         []transport.Addr
		RetryAfterMS int64
	}
	// OwnBatchReq hands every profile the injection node routed to one
	// owner over in a single RPC.
	OwnBatchReq struct {
		Items []OwnReq
	}
	// OwnBatchResp answers positionally; items beyond the owner's
	// remaining capacity carry RetryAfterMS.
	OwnBatchResp struct {
		Results []OwnResult
	}
	// OwnResult is one batched handoff's outcome.
	OwnResult struct {
		Reps         []transport.Addr
		RetryAfterMS int64
	}
	// AssignReq enqueues a job at a run node. Ckpt, when non-zero,
	// carries the owner's latest checkpoint so the run node resumes
	// from saved progress instead of restarting. Reps, when replication
	// is on, is the owner's ranked replica target list: if the owner
	// later dies, the run node offers adoption to these nodes in rank
	// order, converging on the same successor the replica layer's
	// rank-based promotion elects instead of recruiting a random
	// walk-routed second owner.
	AssignReq struct {
		Prof  Profile
		Owner transport.Addr
		Ckpt  Checkpoint
		Reps  []transport.Addr
		TC    obs.TC
	}
	// AssignResp acknowledges with the queue position.
	AssignResp struct{ Position int }
	// HeartbeatReq is the run node's periodic per-owner report. Ckpts
	// piggybacks fresh job checkpoints whose state fits the configured
	// payload cap; oversized snapshots travel via CheckpointReq.
	HeartbeatReq struct {
		Run   transport.Addr
		Jobs  []ids.ID
		Ckpts []Checkpoint
	}
	// HeartbeatResp lists jobs the run node should drop (reassigned or
	// unknown to this owner).
	HeartbeatResp struct{ Drop []ids.ID }
	// CompleteReq tells the owner a job finished. Under redundant
	// execution it doubles as the replica's vote: Digest fingerprints
	// the result content and Res carries the full result so the owner
	// can deliver the quorum winner itself. Legacy (R=1) senders leave
	// both zero.
	CompleteReq struct {
		JobID  ids.ID
		Run    transport.Addr
		Digest string
		Res    Result
		TC     obs.TC
	}
	// CompleteResp acknowledges completion.
	CompleteResp struct{}
	// ResultReq delivers a result to the client.
	ResultReq struct {
		Res Result
		TC  obs.TC
	}
	// ResultResp acknowledges delivery.
	ResultResp struct{}
	// RelayReq asks the owner to deliver a result the run node could
	// not deliver directly.
	RelayReq struct {
		Res Result
		TC  obs.TC
	}
	// RelayResp acknowledges the relay request.
	RelayResp struct{}
	// AdoptReq asks a node to become the new owner of an orphaned job.
	// Ckpt carries the run node's newest snapshot so the adopting
	// owner is immediately recovery-capable.
	AdoptReq struct {
		Prof Profile
		Run  transport.Addr
		Ckpt Checkpoint
		TC   obs.TC
	}
	// AdoptResp acknowledges adoption.
	AdoptResp struct{}
	// CheckpointReq ships one snapshot too large for heartbeat
	// piggybacking to the job's owner.
	CheckpointReq struct {
		Run  transport.Addr
		Ckpt Checkpoint
		TC   obs.TC
	}
	// CheckpointResp acknowledges checkpoint receipt.
	CheckpointResp struct{}
	// ProbeJobReq is a known-answer spot-check: the prober asks a
	// (typically blacklisted) peer to execute Work's worth of synthetic
	// computation whose correct digest the prober already knows.
	ProbeJobReq struct {
		Nonce string
		Work  time.Duration
	}
	// ProbeJobResp returns the probe's result digest.
	ProbeJobResp struct{ Digest string }
	// TrustReq asks a node for its local reputation table.
	TrustReq struct{}
	// TrustResp returns the table's entries (empty when the node keeps
	// no table).
	TrustResp struct{ Entries []trust.Entry }
	// StatusReq asks an owner about a job.
	StatusReq struct {
		JobID ids.ID
		TC    obs.TC
	}
	// StatusResp reports whether the responder tracks the job. A node
	// that owns the job also reports itself (Owner) and its current
	// replica chain (Reps) so the probing client re-aims future probes
	// after an adoption or promotion moved the job; a replica answering
	// on a live owner's behalf leaves both empty.
	StatusResp struct {
		Known   bool
		Matched bool
		Run     transport.Addr
		Owner   transport.Addr
		Reps    []transport.Addr
	}
)

// Method names registered on the host.
const (
	MInject      = "grid.inject"
	MInjectBatch = "grid.injectbatch"
	MOwn         = "grid.own"
	MOwnBatch    = "grid.ownbatch"
	MAssign      = "grid.assign"
	MHeartbeat   = "grid.heartbeat"
	MComplete    = "grid.complete"
	MResult      = "grid.result"
	MRelay       = "grid.relay"
	MAdopt       = "grid.adopt"
	MStatus      = "grid.status"
	MCkpt        = "grid.checkpoint"
	MProbe       = "grid.probe"
	MTrust       = "grid.trust"
)

// ownedJob is the owner-side record of a job.
type ownedJob struct {
	prof       Profile
	run        transport.Addr
	matched    bool
	excluded   []transport.Addr
	lastHB     time.Duration
	matching   bool
	relay      *Result    // result awaiting relay to the client
	relayTries int        // failed relay attempts so far
	ckpt       Checkpoint // latest checkpoint received from a run node
	// tc is the job's trace context (observability only: carried and
	// recorded, never read by protocol logic).
	tc obs.TC
	// vote, when non-nil, switches this job to the redundant-execution
	// state machine (see voting.go); run/matched/lastHB/ckpt are unused.
	vote *voteState
}

// absorbCkpt keeps ck if it is fresh progress for this job from a run
// node the owner has not disavowed. It reports whether ck was kept.
func (j *ownedJob) absorbCkpt(ck Checkpoint) bool {
	if ck.Zero() || ck.Attempt != j.prof.Attempt || ck.Done <= j.ckpt.Done {
		return false
	}
	if j.isExcluded(ck.Run) {
		return false
	}
	if j.matched && j.run != ck.Run {
		return false
	}
	j.ckpt = ck
	return true
}

func (j *ownedJob) isExcluded(a transport.Addr) bool {
	for _, x := range j.excluded {
		if x == a {
			return true
		}
	}
	return false
}

// queuedJob is the run-node-side record.
type queuedJob struct {
	prof  Profile
	owner transport.Addr
	// reps is the owner's ranked replica target list as of the last
	// assignment — the adoption candidates tried, in order, if the
	// owner goes silent (empty when replication is off).
	reps []transport.Addr
	// ckpt is the newest local checkpoint: seeded by a resumed
	// assignment, refreshed by the executor at every snapshot.
	ckpt Checkpoint
	// shippedDone is the progress mark of the last checkpoint the
	// owner acknowledged; snapshots beyond it are pending shipment.
	shippedDone time.Duration
	// tc/enqueuedAt are observability-only (trace context and queue-wait
	// measurement); tc is always read and written under the node lock.
	tc         obs.TC
	enqueuedAt time.Duration
}

// Node is one grid peer: simultaneously a potential injection node,
// owner node, and run node, plus a client submitting its own jobs.
type Node struct {
	host    transport.Host
	cfg     Config
	caps    resource.Vector
	os      string
	overlay Overlay
	matcher Matchmaker
	rec     Recorder
	obsv    *obs.Obs // nil when observability is off
	om      *nodeObs // resolved instruments (never nil; no-op fields)
	// repl is the replicated owner-state store (DESIGN.md §10); nil
	// unless cfg.ReplicaK > 0 and a ReplicaRing is supplied.
	repl *replpkg.Manager

	mu      sync.Mutex
	owned   map[ids.ID]*ownedJob
	queue   []*queuedJob
	running *queuedJob
	done    map[ids.ID]bool // jobs completed or dropped on this run node
	started bool

	// client role
	clientSeq int
	pending   map[ids.ID]*pendingJob

	// submit-side coalescing queue (client.go); guarded by its own
	// mutex so slow flushes never contend with the job-state lock.
	batchMu sync.Mutex
	batchQ  []*batchItem

	// failObs holds recent failure-signal instants (owner declared
	// dead, resumed assignment received) feeding the adaptive
	// checkpoint interval.
	failObs []time.Duration

	// nextProbe schedules the next known-answer spot-check (lazily
	// initialized to now+ProbeEvery on the first monitor tick);
	// probeSeq numbers probes for unique nonces.
	nextProbe time.Duration
	probeSeq  int

	// Stats, readable after a run.
	Completed  int64         // jobs this node finished as run node
	Executed   time.Duration // nominal work executed (completed slices)
	executedBy map[ids.ID]time.Duration

	// Client-side notification stats (guarded by mu): push
	// notifications received, and status probes actually sent by the
	// monitor — the pair the notifsweep experiment compares.
	NotifyRecv   int64
	StatusProbes int64

	// resultWaiters are one-shot channels parked in AwaitResultEvent on
	// the live transport, pulsed on result arrival or push notification
	// (guarded by mu; see client.go).
	resultWaiters []chan struct{}
}

type pendingJob struct {
	seq      int
	attempt  int
	cons     resource.Constraints
	work     time.Duration
	inputKB  int
	outputKB int
	// input/ckptBias/carryOutput mirror the JobSpec so a resubmission
	// rebuilds the full spec — a workflow stage resubmitted by the
	// monitor must keep its upstream input bytes and checkpoint bias.
	input       []byte
	ckptBias    float64
	carryOutput bool
	submitAt    time.Duration
	resultAt    time.Duration
	got         bool
	// res is the delivered result (valid once got); kept so workflow
	// harvesters can read stage output by seq after delivery.
	res Result
	// owner/reps aim the monitor's status probes: the job's owner as of
	// injection (re-aimed by each successful probe) and that owner's
	// replica chain. Under walk placement the overlay cannot re-route a
	// GUID to its owner, so these pointers are how the client finds
	// whoever still tracks the job before concluding it is lost.
	owner transport.Addr
	reps  []transport.Addr
	// lastNotify is when the last push notification for this lineage
	// arrived (zero if none). A fresh value lets the monitor skip the
	// status probe: someone alive is demonstrably driving the job.
	lastNotify time.Duration
}

// NewNode creates a grid peer bound to host, using the given overlay
// for owner routing and matcher for run-node selection. rec may be nil.
func NewNode(host transport.Host, caps resource.Vector, os string, overlay Overlay, matcher Matchmaker, rec Recorder, cfg Config) *Node {
	if rec == nil {
		rec = nopRecorder{}
	}
	n := &Node{
		host:       host,
		cfg:        cfg.withDefaults(),
		caps:       caps,
		os:         os,
		overlay:    overlay,
		matcher:    matcher,
		rec:        rec,
		owned:      make(map[ids.ID]*ownedJob),
		done:       make(map[ids.ID]bool),
		pending:    make(map[ids.ID]*pendingJob),
		executedBy: make(map[ids.ID]time.Duration),
	}
	n.obsv = n.cfg.Obs
	n.om = newNodeObs(n, n.cfg.Obs)
	if n.cfg.Obs != nil {
		n.rec = &obsTee{n: n, hub: n.cfg.Obs.GetHub(), next: n.rec}
	}
	host.Handle(MInject, n.handleInject)
	host.Handle(MInjectBatch, n.handleInjectBatch)
	host.Handle(MOwn, n.handleOwn)
	host.Handle(MOwnBatch, n.handleOwnBatch)
	host.Handle(MAssign, n.handleAssign)
	host.Handle(MHeartbeat, n.handleHeartbeat)
	host.Handle(MComplete, n.handleComplete)
	host.Handle(MResult, n.handleResult)
	host.Handle(MRelay, n.handleRelay)
	host.Handle(MAdopt, n.handleAdopt)
	host.Handle(MStatus, n.handleStatus)
	host.Handle(MCkpt, n.handleCheckpoint)
	host.Handle(MProbe, n.handleProbe)
	host.Handle(MTrust, n.handleTrust)
	host.Handle(MStats, n.handleStats)
	host.Handle(MTrace, n.handleTrace)
	host.Handle(MReplicas, n.handleReplicas)
	host.Handle(MHealth, n.handleHealth)
	if n.cfg.ReplicaK > 0 && n.cfg.ReplicaRing != nil {
		n.repl = replpkg.New(host, n.cfg.ReplicaRing, replpkg.Config{
			K:          n.cfg.ReplicaK,
			PushEvery:  n.cfg.ReplicaPushEvery,
			ProbeEvery: n.cfg.ReplicaProbeEvery,
			DeadAfter:  n.cfg.ReplicaDeadAfter,
			OnOwn:      n.onReplicaOwn,
			OnFenced:   n.onReplicaFenced,
			Obs:        n.cfg.Obs,
		})
	}
	return n
}

// Caps returns the node's capability vector.
func (n *Node) Caps() resource.Vector { return n.caps }

// OS returns the node's operating system label.
func (n *Node) OS() string { return n.os }

// Addr returns the node's address.
func (n *Node) Addr() transport.Addr { return n.host.Addr() }

// QueueLen returns the run queue length including the running job —
// the load metric matchmakers consume.
func (n *Node) QueueLen() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	l := len(n.queue)
	if n.running != nil {
		l++
	}
	return l
}

// Start launches the node's background activities: the executor, the
// heartbeat loop, and the owner monitor.
func (n *Node) Start() {
	n.mu.Lock()
	if n.started {
		n.mu.Unlock()
		return
	}
	n.started = true
	n.mu.Unlock()
	n.host.Go("grid.exec", n.execLoop)
	n.host.Go("grid.heartbeat", n.heartbeatLoop)
	n.host.Go("grid.monitor", n.ownerMonitorLoop)
	if n.repl != nil {
		n.repl.Start()
	}
}

// Restart models a process restart after a crash: all server-side soft
// state (owned jobs, run queue, drop markers) is lost and the
// background loops relaunch. Client-side submission tracking survives,
// as if persisted. Call only after the host has crashed and been
// brought back up — the crash killed the previous loops; calling this
// on a live node would double them.
func (n *Node) Restart() {
	n.mu.Lock()
	n.owned = make(map[ids.ID]*ownedJob)
	n.queue = nil
	n.running = nil
	n.done = make(map[ids.ID]bool)
	n.failObs = nil
	n.started = false
	n.mu.Unlock()
	if n.repl != nil {
		// Replicated records are soft state too; the surviving replicas
		// push them back (probe push-back -> onReplicaOwn restore).
		n.repl.Reset()
	}
	n.Start()
}

func (n *Node) record(kind EventKind, prof Profile, at time.Duration, extra ...MatchStats) {
	ev := Event{Kind: kind, JobID: prof.ID, Attempt: prof.Attempt, At: at, Node: n.host.Addr()}
	if len(extra) > 0 {
		ev.Match = extra[0]
	}
	n.rec.Record(ev)
}

// --- injection ---

// errRoute marks an owner-routing failure. Routing depends on live
// ring state, so these are always worth retrying (a fresh route lands
// elsewhere) — the submit loop classifies them as transient.
var errRoute = errors.New("grid: owner routing failed")

// Inject performs the injection-node role locally: assign a GUID,
// route to the owner, and hand the job over. Exposed for clients that
// are themselves grid nodes. An owner backpressure rejection returns a
// *RetryAfterError (and a response whose RetryAfterMS mirrors it, for
// wire callers).
func (n *Node) Inject(rt transport.Runtime, req InjectReq) (InjectResp, error) {
	began := rt.Now()
	prof := Profile{
		ID:          JobGUID(req.Client, req.Seq, req.Attempt),
		Client:      req.Client,
		Seq:         req.Seq,
		Attempt:     req.Attempt,
		Cons:        req.Cons,
		Work:        req.Work,
		InputKB:     req.InputKB,
		OutputKB:    req.OutputKB,
		Input:       req.Input,
		CkptBias:    req.CkptBias,
		CarryOutput: req.CarryOutput,
	}
	tc := req.TC
	if tc.Zero() {
		// Untraced legacy sender: the trace ID is derivable from the
		// submission identity, so the lifecycle stays reconstructable.
		tc = obs.TC{ID: TraceID(req.Client, req.Seq)}
	}
	owner, hops, err := n.overlay.RouteJob(rt, prof.ID, prof.Cons)
	if err != nil {
		return InjectResp{}, fmt.Errorf("%w: job %s: %v", errRoute, prof.ID.Short(), err)
	}
	tc = n.trace(tc, rt.Now(), "injected", prof.Attempt, owner, n.traceNote("hops=%d", hops))
	n.rec.Record(Event{Kind: EvInjected, JobID: prof.ID, Attempt: prof.Attempt, At: rt.Now(), Node: n.host.Addr(), Hops: hops})
	var reps []transport.Addr
	if owner == n.host.Addr() {
		if err := n.ownJob(rt, prof, tc); err != nil {
			return injectRejection(err)
		}
		reps = n.replTargets()
	} else if raw, err := rt.Call(owner, MOwn, OwnReq{Prof: prof, TC: tc}); err != nil {
		return InjectResp{}, fmt.Errorf("grid: hand job %s to owner %s: %w", prof.ID.Short(), owner, err)
	} else {
		oresp := raw.(OwnResp)
		if oresp.RetryAfterMS > 0 {
			return injectRejection(&RetryAfterError{After: time.Duration(oresp.RetryAfterMS) * time.Millisecond})
		}
		reps = oresp.Reps
	}
	n.om.injectSecs.Observe((rt.Now() - began).Seconds())
	return InjectResp{JobID: prof.ID, Owner: owner, Hops: hops, Reps: reps}, nil
}

// injectRejection renders an owner rejection both ways at once: as the
// typed error for in-process callers and as the RetryAfterMS response
// field for wire callers.
func injectRejection(err error) (InjectResp, error) {
	var ra *RetryAfterError
	if errors.As(err, &ra) {
		return InjectResp{RetryAfterMS: ra.After.Milliseconds()}, ra
	}
	return InjectResp{}, err
}

func (n *Node) handleInject(rt transport.Runtime, from transport.Addr, req any) (any, error) {
	resp, err := n.Inject(rt, req.(InjectReq))
	var ra *RetryAfterError
	if errors.As(err, &ra) {
		// Backpressure is an answer, not a handler failure: it crosses
		// the wire in the response payload so the typed hint survives
		// both transports.
		return resp, nil
	}
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// --- owner role ---

func (n *Node) handleOwn(rt transport.Runtime, from transport.Addr, req any) (any, error) {
	o := req.(OwnReq)
	if err := n.ownJob(rt, o.Prof, o.TC); err != nil {
		var ra *RetryAfterError
		if errors.As(err, &ra) {
			return OwnResp{RetryAfterMS: ra.After.Milliseconds()}, nil
		}
		return nil, err
	}
	return OwnResp{Reps: n.replTargets()}, nil
}

func (n *Node) handleOwnBatch(rt transport.Runtime, from transport.Addr, req any) (any, error) {
	b := req.(OwnBatchReq)
	out := make([]OwnResult, len(b.Items))
	for i, it := range b.Items {
		if err := n.ownJob(rt, it.Prof, it.TC); err != nil {
			var ra *RetryAfterError
			if !errors.As(err, &ra) {
				return nil, err
			}
			out[i].RetryAfterMS = ra.After.Milliseconds()
			continue
		}
		out[i].Reps = n.replTargets()
	}
	return OwnBatchResp{Results: out}, nil
}

// admitOwnLocked applies the bounded inject queue: with OwnerCapacity
// set and the owned map full, new injections are refused with a
// retry-after hint scaled by how far past capacity demand is pushing.
// Called under n.mu.
func (n *Node) admitOwnLocked() error {
	if n.cfg.OwnerCapacity <= 0 || len(n.owned) < n.cfg.OwnerCapacity {
		return nil
	}
	over := len(n.owned) - n.cfg.OwnerCapacity
	after := n.cfg.RetryAfter * time.Duration(1+over)
	if max := 10 * n.cfg.RetryAfter; after > max {
		after = max
	}
	return &RetryAfterError{After: after}
}

// ownJob records ownership and starts matchmaking asynchronously so the
// injection path acknowledges quickly. It returns a *RetryAfterError
// when the bounded inject queue is full (nothing recorded). Recovery
// paths (adoption, promotion) do not come through here and are never
// shed.
func (n *Node) ownJob(rt transport.Runtime, prof Profile, tc obs.TC) error {
	n.mu.Lock()
	if _, dup := n.owned[prof.ID]; dup {
		n.mu.Unlock()
		return nil
	}
	if err := n.admitOwnLocked(); err != nil {
		n.mu.Unlock()
		n.rec.Record(Event{Kind: EvInjectRejected, JobID: prof.ID, Attempt: prof.Attempt, At: rt.Now(), Node: n.host.Addr()})
		return err
	}
	job := &ownedJob{prof: prof, lastHB: rt.Now(), matching: true, tc: tc}
	if n.cfg.votingOn() {
		job.matching = false
		job.vote = newVoteState()
		job.vote.filling = true
	}
	n.owned[prof.ID] = job
	n.mu.Unlock()
	n.trace(tc, rt.Now(), "owned", prof.Attempt, "", "")
	n.record(EvOwned, prof, rt.Now())
	n.notifyTransition(rt.Now(), prof, EvOwned, n.host.Addr(), 0)
	n.republish(prof.ID)
	if job.vote != nil {
		n.host.Go("grid.match", func(rt transport.Runtime) {
			n.fillReplicas(rt, prof.ID)
		})
		return nil
	}
	n.host.Go("grid.match", func(rt transport.Runtime) {
		n.matchAndAssign(rt, prof.ID)
	})
	return nil
}

// matchAndAssign chooses a run node for an owned job and hands the job
// to it, retrying with exclusions on assignment failure.
func (n *Node) matchAndAssign(rt transport.Runtime, jobID ids.ID) {
	defer func() {
		n.mu.Lock()
		if job, ok := n.owned[jobID]; ok {
			job.matching = false
		}
		n.mu.Unlock()
	}()
	// demoted collects candidates whose transport breaker is open this
	// round. They are excluded from further picks here but never
	// recorded on the job, so a peer is eligible again the moment its
	// circuit closes.
	var demoted []transport.Addr
	for tries := 0; tries < n.cfg.MaxRematch; tries++ {
		n.mu.Lock()
		job, ok := n.owned[jobID]
		if !ok {
			n.mu.Unlock()
			return
		}
		prof := job.prof
		tc := job.tc
		excluded := append([]transport.Addr(nil), job.excluded...)
		excluded = append(excluded, demoted...)
		ckpt := job.ckpt
		n.mu.Unlock()

		run, stats, err := n.matcher.FindRunNode(rt, prof.Cons, excluded)
		if err != nil {
			n.trace(tc, rt.Now(), "match-failed", prof.Attempt, "", "")
			n.record(EvMatchFailed, prof, rt.Now(), stats)
			rt.Sleep(n.cfg.MatchRetryEvery)
			continue
		}
		if n.peerDown(run) {
			// Every call to this candidate would fast-fail right now
			// (open breaker): demote it and pick again instead of
			// spending an assignment attempt and its timeout.
			demoted = append(demoted, run)
			continue
		}
		// The "matched" trace step is recorded before the assignment so
		// the run node's "enqueued" hop sorts strictly after it; a failed
		// assignment leaves a matched step with no enqueue following it.
		tc = n.trace(tc, rt.Now(), "matched", prof.Attempt, run, n.traceNote("hops=%d visits=%d", stats.Hops, stats.Visits))
		req := AssignReq{Prof: prof, Owner: n.host.Addr(), Ckpt: ckpt, Reps: n.replTargets(), TC: tc}
		var assignErr error
		if run == n.host.Addr() {
			_, assignErr = n.assign(rt, req)
		} else {
			_, assignErr = rt.Call(run, MAssign, req)
		}
		if assignErr != nil {
			n.mu.Lock()
			if job, ok := n.owned[jobID]; ok {
				job.excluded = append(job.excluded, run)
			}
			n.mu.Unlock()
			n.republish(jobID)
			continue
		}
		n.mu.Lock()
		if job, ok := n.owned[jobID]; ok {
			job.run = run
			job.matched = true
			job.lastHB = rt.Now()
			job.tc = tc
		}
		n.mu.Unlock()
		n.record(EvMatched, prof, rt.Now(), stats)
		n.notifyTransition(rt.Now(), prof, EvMatched, run, 0)
		n.republish(jobID)
		return
	}
	n.mu.Lock()
	job, ok := n.owned[jobID]
	var prof Profile
	var tc obs.TC
	if ok {
		prof = job.prof
		tc = job.tc
		delete(n.owned, jobID)
	}
	n.mu.Unlock()
	if ok {
		n.trace(tc, rt.Now(), "gave-up", prof.Attempt, "", "")
		n.record(EvGaveUp, prof, rt.Now())
		n.notifyTransition(rt.Now(), prof, EvGaveUp, n.host.Addr(), 0)
		n.retire(rt.Now(), jobID)
	}
}

// ownerMonitorLoop watches heartbeats of owned jobs and rematches jobs
// whose run node has gone silent; it also retries pending result
// relays.
func (n *Node) ownerMonitorLoop(rt transport.Runtime) {
	for {
		rt.Sleep(n.cfg.HeartbeatEvery)
		n.monitorTick(rt)
	}
}

// deadRun is one job whose run node was declared dead, with the
// profile (and salvageable checkpoint progress) captured under the
// same lock that scanned it.
type deadRun struct {
	id    ids.ID
	prof  Profile
	run   transport.Addr // the run node declared dead
	tc    obs.TC
	saved time.Duration
}

// monitorTick performs one owner-monitor pass. The profile of every
// job marked for rematch is captured inside the scan's critical
// section: a concurrent handleComplete/tryRelay may delete the job
// between the scan and the rematch spawn, so the owned map must not be
// re-read afterwards.
func (n *Node) monitorTick(rt transport.Runtime) {
	now := rt.Now()
	var rematch []deadRun
	var deadReps []deadRun // dead replicas of voting jobs (no rematch spawn)
	var fills []ids.ID
	var relays []Result
	n.mu.Lock()
	jobIDs := make([]ids.ID, 0, len(n.owned))
	for id := range n.owned {
		jobIDs = append(jobIDs, id)
	}
	sort.Slice(jobIDs, func(i, j int) bool { return jobIDs[i].Less(jobIDs[j]) })
	for _, id := range jobIDs {
		job := n.owned[id]
		if job.relay != nil {
			relays = append(relays, *job.relay)
			continue
		}
		if job.vote != nil {
			if fill := n.voteTickLocked(now, id, job, &deadReps); fill {
				fills = append(fills, id)
			}
			continue
		}
		if !job.matched || job.matching {
			continue
		}
		if now-job.lastHB > n.cfg.RunDeadAfter {
			rematch = append(rematch, deadRun{id: id, prof: job.prof, run: job.run, tc: job.tc, saved: job.ckpt.Done})
			job.excluded = append(job.excluded, job.run)
			job.matched = false
			job.matching = true
		}
	}
	n.mu.Unlock()
	for _, d := range deadReps {
		n.trace(d.tc, now, "run-failure-detected", d.prof.Attempt, d.run, "")
		n.rec.Record(Event{
			Kind: EvRunFailureDetected, JobID: d.prof.ID, Attempt: d.prof.Attempt,
			At: now, Node: n.host.Addr(),
		})
		n.notifyTransition(now, d.prof, EvRunFailureDetected, d.run, 0)
		n.republish(d.id)
	}
	for _, d := range rematch {
		n.trace(d.tc, now, "run-failure-detected", d.prof.Attempt, d.run, n.traceNote("saved=%s", d.saved))
		n.rec.Record(Event{
			Kind: EvRunFailureDetected, JobID: d.prof.ID, Attempt: d.prof.Attempt,
			At: now, Node: n.host.Addr(), Progress: d.saved,
		})
		n.notifyTransition(now, d.prof, EvRunFailureDetected, d.run, d.saved)
		n.republish(d.id)
		id := d.id
		n.host.Go("grid.rematch", func(rt transport.Runtime) {
			n.matchAndAssign(rt, id)
		})
	}
	for _, id := range fills {
		id := id
		n.host.Go("grid.fill", func(rt transport.Runtime) {
			n.fillReplicas(rt, id)
		})
	}
	for _, res := range relays {
		n.tryRelay(rt, res)
	}
	n.maybeProbe(rt, now)
}

// tryRelay forwards a result to the client on the run node's behalf.
// Attempts are bounded by ResultRetries: a client that never comes
// back must not pin the owned entry forever, so the owner eventually
// gives the job up (the client's own monitor resubmits if it returns).
func (n *Node) tryRelay(rt transport.Runtime, res Result) {
	n.mu.Lock()
	job, ok := n.owned[res.JobID]
	var clientAddr transport.Addr
	var tc obs.TC
	if ok {
		clientAddr = job.prof.Client
		tc = job.tc
	}
	n.mu.Unlock()
	if !ok {
		return
	}
	tc = n.trace(tc, rt.Now(), "result-relayed", res.Attempt, clientAddr, "")
	if _, err := rt.Call(clientAddr, MResult, ResultReq{Res: res, TC: tc}); err == nil {
		n.mu.Lock()
		delete(n.owned, res.JobID)
		n.mu.Unlock()
		n.retire(rt.Now(), res.JobID)
		return
	}
	n.mu.Lock()
	job, ok = n.owned[res.JobID]
	var prof Profile
	gaveUp := false
	if ok {
		job.relayTries++
		if job.relayTries >= n.cfg.ResultRetries {
			prof = job.prof
			delete(n.owned, res.JobID)
			gaveUp = true
		}
	}
	n.mu.Unlock()
	if gaveUp {
		n.trace(tc, rt.Now(), "gave-up", prof.Attempt, "", "")
		n.record(EvGaveUp, prof, rt.Now())
		n.notifyTransition(rt.Now(), prof, EvGaveUp, n.host.Addr(), 0)
		n.retire(rt.Now(), res.JobID)
	}
}

func (n *Node) handleComplete(rt transport.Runtime, from transport.Addr, req any) (any, error) {
	c := req.(CompleteReq)
	n.mu.Lock()
	job, ok := n.owned[c.JobID]
	if ok && job.vote != nil {
		evs, fill := n.applyVoteLocked(rt.Now(), job, c)
		jobTC := job.tc
		prof := job.prof
		n.mu.Unlock()
		n.traceVoteEvents(c.TC, jobTC, evs)
		for _, ev := range evs {
			n.rec.Record(ev)
			n.notifyTransition(ev.At, prof, ev.Kind, c.Run, 0)
		}
		if fill {
			n.host.Go("grid.fill", func(rt transport.Runtime) {
				n.fillReplicas(rt, c.JobID)
			})
		}
		return CompleteResp{}, nil
	}
	// A complete from a run node this owner has disavowed (excluded
	// after a heartbeat timeout, or displaced by a rematch) is a zombie:
	// accepting it would forget the job while the replacement still runs
	// it — the same rule heartbeats already apply.
	if ok && (job.isExcluded(c.Run) || (job.matched && job.run != c.Run)) {
		n.mu.Unlock()
		return CompleteResp{}, nil
	}
	var tc obs.TC
	if ok {
		tc = c.TC
		if tc.Zero() {
			tc = job.tc
		}
	}
	retired := ok && job.relay == nil
	if retired {
		delete(n.owned, c.JobID)
	}
	n.mu.Unlock()
	if ok {
		n.trace(tc, rt.Now(), "completed", job.prof.Attempt, c.Run, "")
		n.record(EvCompleted, job.prof, rt.Now())
		n.notifyTransition(rt.Now(), job.prof, EvCompleted, c.Run, 0)
	}
	if retired {
		n.retire(rt.Now(), c.JobID)
	}
	return CompleteResp{}, nil
}

func (n *Node) handleRelay(rt transport.Runtime, from transport.Addr, req any) (any, error) {
	r := req.(RelayReq)
	n.mu.Lock()
	job, ok := n.owned[r.Res.JobID]
	if ok {
		res := r.Res
		job.relay = &res
		if !r.TC.Zero() {
			job.tc = r.TC
		}
	}
	n.mu.Unlock()
	if ok {
		n.trace(r.TC, rt.Now(), "relay-accepted", r.Res.Attempt, from, "")
	}
	return RelayResp{}, nil
}

func (n *Node) handleAdopt(rt transport.Runtime, from transport.Addr, req any) (any, error) {
	a := req.(AdoptReq)
	n.mu.Lock()
	fill := false
	if job, dup := n.owned[a.Prof.ID]; dup {
		if !a.TC.Zero() {
			job.tc = a.TC
		}
		if job.vote != nil {
			// The surviving run node re-registers as one replica of the
			// restarted vote.
			adoptReplicaLocked(job, a.Run, rt.Now())
		} else {
			// Already owned (a duplicated adopt, or the run node re-routed
			// to an owner that already tracks the job): keep the existing
			// record, but absorb any fresher checkpoint the run node sent.
			job.absorbCkpt(a.Ckpt)
		}
	} else if n.cfg.votingOn() {
		// Owner failover under redundant execution: the dead owner's
		// vote state (partial tallies) is lost. The adopting owner
		// restarts the vote seeded with this surviving replica; other
		// survivors re-register through their own adopt calls, and the
		// filler tops the set back up to R.
		fill = true
		job := n.newVotingJobLocked(a.Prof)
		job.tc = a.TC
		adoptReplicaLocked(job, a.Run, rt.Now())
		n.owned[a.Prof.ID] = job
	} else {
		job := &ownedJob{
			prof:    a.Prof,
			run:     a.Run,
			matched: true,
			lastHB:  rt.Now(),
			tc:      a.TC,
		}
		job.absorbCkpt(a.Ckpt)
		n.owned[a.Prof.ID] = job
	}
	n.mu.Unlock()
	n.trace(a.TC, rt.Now(), "owner-adopted", a.Prof.Attempt, a.Run, "")
	n.record(EvOwnerAdopted, a.Prof, rt.Now())
	n.notifyTransition(rt.Now(), a.Prof, EvOwnerAdopted, a.Run, 0)
	// Adoption is an ownership transfer: republish opens a new epoch
	// that fences out whatever the previous owner replicated.
	n.republish(a.Prof.ID)
	if fill {
		n.host.Go("grid.fill", func(rt transport.Runtime) {
			n.fillReplicas(rt, a.Prof.ID)
		})
	}
	return AdoptResp{}, nil
}

// handleCheckpoint accepts a standalone checkpoint shipment (snapshots
// too large for heartbeat piggybacking).
func (n *Node) handleCheckpoint(rt transport.Runtime, from transport.Addr, req any) (any, error) {
	c := req.(CheckpointReq)
	n.mu.Lock()
	absorbed := false
	var prof Profile
	if job, ok := n.owned[c.Ckpt.JobID]; ok && job.vote == nil {
		absorbed = job.absorbCkpt(c.Ckpt)
		prof = job.prof
	}
	n.mu.Unlock()
	if absorbed {
		n.trace(c.TC, rt.Now(), "checkpoint-stored", c.Ckpt.Attempt, c.Run,
			n.traceNote("done=%s bytes=%d", c.Ckpt.Done, len(c.Ckpt.Data)))
		n.notifyTransition(rt.Now(), prof, EvCheckpointed, c.Run, c.Ckpt.Done)
		n.republish(c.Ckpt.JobID)
	}
	return CheckpointResp{}, nil
}

func (n *Node) handleStatus(rt transport.Runtime, from transport.Addr, req any) (any, error) {
	s := req.(StatusReq)
	n.mu.Lock()
	defer n.mu.Unlock()
	job, ok := n.owned[s.JobID]
	if !ok {
		// With replication on, a job this node does not own may still be
		// in good hands: mid-handoff (owner just died, a replica is about
		// to promote) or owned elsewhere after this node restarted.
		// Answering Known keeps the client's monitor patient; a record
		// whose owner is confirmed dead falls through to resubmission.
		if n.repl != nil && n.repl.Responsible(rt.Now(), s.JobID) {
			return StatusResp{Known: true}, nil
		}
		return StatusResp{}, nil
	}
	if job.vote != nil {
		return StatusResp{Known: true, Matched: len(job.vote.reps) > 0, Owner: n.host.Addr(), Reps: n.replTargets()}, nil
	}
	return StatusResp{Known: true, Matched: job.matched, Run: job.run, Owner: n.host.Addr(), Reps: n.replTargets()}, nil
}

func (n *Node) handleHeartbeat(rt transport.Runtime, from transport.Addr, req any) (any, error) {
	hb := req.(HeartbeatReq)
	n.om.hbRecv.Inc()
	var drop []ids.ID
	now := rt.Now()
	n.mu.Lock()
	for _, id := range hb.Jobs {
		job, ok := n.owned[id]
		if !ok {
			drop = append(drop, id)
			continue
		}
		if job.vote != nil {
			// Redundant execution: refresh the sender's replica. A
			// heartbeat from a non-replica, an excluded node, or for a
			// job whose quorum already accepted a result tells the
			// sender to stop — that drop is what cancels the losing
			// replicas still running after acceptance.
			if job.vote.winner == "" && !job.isExcluded(hb.Run) && job.vote.refresh(hb.Run, now) {
				continue
			}
			drop = append(drop, id)
			continue
		}
		// A sender in job.excluded is a run node this owner has already
		// given up on: even while a rematch is in flight (job unmatched),
		// its heartbeat must not refresh lastHB, and it must be told to
		// drop the job — otherwise the job runs twice once the rematch
		// lands.
		if (job.matched && job.run != hb.Run) || job.isExcluded(hb.Run) {
			drop = append(drop, id)
			continue
		}
		job.lastHB = now
	}
	// Piggybacked checkpoints: absorbCkpt re-validates the sender per
	// job, so a heartbeat answered with drops can still carry valid
	// progress for the jobs this owner does track from this run node.
	// Voting jobs ignore checkpoints: replicas restart from scratch
	// (redundant execution and checkpoint-resume do not compose; see
	// DESIGN.md §7).
	var absorbed []ids.ID
	for _, ck := range hb.Ckpts {
		if job, ok := n.owned[ck.JobID]; ok && job.vote == nil {
			if job.absorbCkpt(ck) {
				absorbed = append(absorbed, ck.JobID)
			}
		}
	}
	n.mu.Unlock()
	for _, id := range absorbed {
		n.republish(id)
	}
	return HeartbeatResp{Drop: drop}, nil
}
