package grid_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/ids"
	"repro/internal/match"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/simhost"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// recorder collects lifecycle events for assertions.
type recorder struct {
	mu  sync.Mutex
	evs []grid.Event
}

func (r *recorder) Record(ev grid.Event) {
	r.mu.Lock()
	r.evs = append(r.evs, ev)
	r.mu.Unlock()
}

func (r *recorder) count(kind grid.EventKind) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, ev := range r.evs {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

func (r *recorder) byJob(jobID ids.ID) []grid.Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []grid.Event
	for _, ev := range r.evs {
		if ev.JobID == jobID {
			out = append(out, ev)
		}
	}
	return out
}

// cluster is a simulated grid for tests, using the omniscient central
// matchmaker (grid mechanics under test, not matchmaking quality).
type cluster struct {
	e     *sim.Engine
	net   *simnet.Net
	hosts []*simhost.Host
	nodes []*grid.Node
	eps   []*simnet.Endpoint
	reg   *match.Registry
	rec   *recorder
}

// switchableOverlay routes jobs to the first live owner in its list —
// a test double standing in for DHT re-keying after owner failure.
type switchableOverlay struct {
	owners []*simnet.Endpoint
}

func (o *switchableOverlay) RouteJob(rt transport.Runtime, jobID ids.ID, cons resource.Constraints) (transport.Addr, int, error) {
	for _, ep := range o.owners {
		if ep.Up() {
			return transport.Addr(ep.Addr()), 1, nil
		}
	}
	return "", 0, fmt.Errorf("no live owner")
}

func newCluster(t *testing.T, n int, seed int64, cfg grid.Config, caps func(i int) (resource.Vector, string)) *cluster {
	return newClusterCfg(t, n, seed, func(int) grid.Config { return cfg }, caps)
}

// newClusterCfg builds a cluster with per-node grid configuration —
// the Byzantine soak needs saboteur hooks on some nodes only.
func newClusterCfg(t *testing.T, n int, seed int64, cfgFor func(i int) grid.Config, caps func(i int) (resource.Vector, string)) *cluster {
	return newClusterPrep(t, n, seed, cfgFor, caps, nil)
}

// newClusterPrep additionally invokes prep with each node's host and
// (mutable) grid config before grid.NewNode, so tests can attach
// host-bound services — a pub/sub broker, say — into the config. A
// non-nil Matchmaker return overrides the default central matcher.
func newClusterPrep(t *testing.T, n int, seed int64, cfgFor func(i int) grid.Config, caps func(i int) (resource.Vector, string), prep func(i int, h *simhost.Host, cfg *grid.Config) grid.Matchmaker) *cluster {
	t.Helper()
	e := sim.NewEngine(seed)
	net := simnet.New(e)
	net.Latency = simnet.UniformLatency{Min: 5 * time.Millisecond, Max: 20 * time.Millisecond}
	c := &cluster{e: e, net: net, reg: match.NewRegistry(), rec: &recorder{}}
	overlay := &switchableOverlay{}
	for i := 0; i < n; i++ {
		ep := net.NewEndpoint(simnet.Addr(fmt.Sprintf("n%03d", i)))
		h := simhost.New(ep)
		cv, os := caps(i)
		cfg := cfgFor(i)
		var matcher grid.Matchmaker = &match.Central{Reg: c.reg}
		if prep != nil {
			if m := prep(i, h, &cfg); m != nil {
				matcher = m
			}
		}
		if cfg.Trust != nil {
			matcher = &match.Trusted{Inner: matcher, Table: cfg.Trust}
		}
		gn := grid.NewNode(h, cv, os, overlay, matcher, c.rec, cfg)
		c.hosts = append(c.hosts, h)
		c.eps = append(c.eps, ep)
		c.nodes = append(c.nodes, gn)
		overlay.owners = append(overlay.owners, ep)
		c.reg.Register(h.Addr(), match.RegistryEntry{
			Caps: cv,
			OS:   os,
			Load: gn.QueueLen,
			Up:   ep.Up,
		})
		gn.Start()
	}
	return c
}

func (c *cluster) do(i int, fn func(rt transport.Runtime)) {
	done := false
	c.hosts[i].Go("test", func(rt transport.Runtime) {
		defer func() { done = true }()
		fn(rt)
	})
	for !done {
		c.e.RunFor(time.Second)
	}
}

func uniform(i int) (resource.Vector, string) { return resource.Vector{5, 4096, 100}, "linux" }

func varied(i int) (resource.Vector, string) {
	return resource.Vector{float64(1 + i%10), float64(256 * (1 + i%8)), float64(10 * (1 + i%16))}, "linux"
}

func TestSingleJobLifecycle(t *testing.T) {
	c := newCluster(t, 4, 1, grid.Config{}, uniform)
	defer c.e.Shutdown()
	var jobID ids.ID
	c.do(0, func(rt transport.Runtime) {
		var err error
		jobID, err = c.nodes[0].Submit(rt, grid.JobSpec{Work: 3 * time.Second})
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		if left := c.nodes[0].AwaitAll(rt, rt.Now()+time.Minute); left != 0 {
			t.Fatalf("%d jobs unfinished", left)
		}
	})
	evs := c.rec.byJob(jobID)
	var kinds []grid.EventKind
	for _, ev := range evs {
		kinds = append(kinds, ev.Kind)
	}
	// The lifecycle must pass through these stages in order.
	want := []grid.EventKind{
		grid.EvSubmitted, grid.EvInjected, grid.EvOwned, grid.EvMatched,
		grid.EvStarted, grid.EvResultDelivered,
	}
	wi := 0
	for _, k := range kinds {
		if wi < len(want) && k == want[wi] {
			wi++
		}
	}
	if wi != len(want) {
		t.Fatalf("lifecycle %v missing stage %v", kinds, want[wi])
	}
}

func TestManyJobsAllComplete(t *testing.T) {
	c := newCluster(t, 8, 2, grid.Config{}, uniform)
	defer c.e.Shutdown()
	const J = 40
	c.do(0, func(rt transport.Runtime) {
		for i := 0; i < J; i++ {
			if _, err := c.nodes[0].Submit(rt, grid.JobSpec{Work: time.Second}); err != nil {
				t.Fatalf("submit %d: %v", i, err)
			}
		}
		if left := c.nodes[0].AwaitAll(rt, rt.Now()+10*time.Minute); left != 0 {
			t.Fatalf("%d jobs unfinished", left)
		}
	})
	if got := c.rec.count(grid.EvResultDelivered); got != J {
		t.Fatalf("%d results, want %d", got, J)
	}
	// Work should be spread across nodes by the least-loaded rule.
	busy := 0
	for _, n := range c.nodes {
		if n.Completed > 0 {
			busy++
		}
	}
	if busy < 4 {
		t.Fatalf("only %d nodes did work", busy)
	}
}

func TestOneJobAtATimePerRunNode(t *testing.T) {
	c := newCluster(t, 3, 3, grid.Config{}, uniform)
	defer c.e.Shutdown()
	c.do(0, func(rt transport.Runtime) {
		for i := 0; i < 12; i++ {
			if _, err := c.nodes[0].Submit(rt, grid.JobSpec{Work: 2 * time.Second}); err != nil {
				t.Fatalf("submit: %v", err)
			}
		}
		if left := c.nodes[0].AwaitAll(rt, rt.Now()+10*time.Minute); left != 0 {
			t.Fatalf("%d unfinished", left)
		}
	})
	// Per node, Started events must alternate with completions:
	// reconstruct concurrency from the event log.
	running := map[transport.Addr]int{}
	c.rec.mu.Lock()
	defer c.rec.mu.Unlock()
	ends := map[ids.ID]transport.Addr{}
	for _, ev := range c.rec.evs {
		switch ev.Kind {
		case grid.EvStarted:
			running[ev.Node]++
			if running[ev.Node] > 1 {
				t.Fatalf("node %s ran two jobs concurrently", ev.Node)
			}
			ends[ev.JobID] = ev.Node
		case grid.EvResultDelivered:
			if n, ok := ends[ev.JobID]; ok {
				running[n]--
				delete(ends, ev.JobID)
			}
		}
	}
}

func TestConstraintsRespected(t *testing.T) {
	c := newCluster(t, 10, 4, grid.Config{}, varied)
	defer c.e.Shutdown()
	cons := resource.Unconstrained.Require(resource.CPU, 8)
	c.do(0, func(rt transport.Runtime) {
		for i := 0; i < 5; i++ {
			if _, err := c.nodes[0].Submit(rt, grid.JobSpec{Cons: cons, Work: time.Second}); err != nil {
				t.Fatalf("submit: %v", err)
			}
		}
		if left := c.nodes[0].AwaitAll(rt, rt.Now()+5*time.Minute); left != 0 {
			t.Fatalf("%d unfinished", left)
		}
	})
	c.rec.mu.Lock()
	defer c.rec.mu.Unlock()
	for _, ev := range c.rec.evs {
		if ev.Kind != grid.EvStarted {
			continue
		}
		for i, h := range c.hosts {
			if h.Addr() == ev.Node && !cons.SatisfiedBy(c.nodes[i].Caps(), c.nodes[i].OS()) {
				t.Fatalf("job started on non-satisfying node %s", ev.Node)
			}
		}
	}
}

func TestRunNodeFailureRecovery(t *testing.T) {
	cfg := grid.Config{HeartbeatEvery: time.Second, RunDeadAfter: 3 * time.Second}
	c := newCluster(t, 4, 5, cfg, uniform)
	defer c.e.Shutdown()
	// Exclude node 0 (client+owner) from running by making it busy? No:
	// instead find which node got the job and crash it mid-run.
	var jobID ids.ID
	c.do(0, func(rt transport.Runtime) {
		var err error
		jobID, err = c.nodes[0].Submit(rt, grid.JobSpec{Work: 30 * time.Second})
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		// Wait until it starts somewhere.
		for c.rec.count(grid.EvStarted) == 0 {
			rt.Sleep(time.Second)
		}
	})
	var runAddr transport.Addr
	c.rec.mu.Lock()
	for _, ev := range c.rec.evs {
		if ev.Kind == grid.EvStarted {
			runAddr = ev.Node
		}
	}
	c.rec.mu.Unlock()
	var victim int = -1
	for i, h := range c.hosts {
		if h.Addr() == runAddr {
			victim = i
		}
	}
	if victim == 0 {
		t.Skip("job ran on the client node itself; crash would kill the client role")
	}
	c.eps[victim].Crash()
	c.do(0, func(rt transport.Runtime) {
		if left := c.nodes[0].AwaitAll(rt, rt.Now()+5*time.Minute); left != 0 {
			t.Fatalf("job never recovered (%d unfinished)", left)
		}
	})
	if c.rec.count(grid.EvRunFailureDetected) == 0 {
		t.Fatal("owner never detected the run-node failure")
	}
	evs := c.rec.byJob(jobID)
	delivered := false
	for _, ev := range evs {
		if ev.Kind == grid.EvResultDelivered && ev.Node != runAddr {
			delivered = true
		}
	}
	if !delivered {
		t.Fatal("result not delivered by a replacement run node")
	}
}

func TestOwnerFailureAdoption(t *testing.T) {
	cfg := grid.Config{HeartbeatEvery: time.Second, OwnerDeadAfter: 3 * time.Second}
	// Node 0 (the owner per the switchable overlay) is too weak to run
	// the job, so crashing it exercises pure owner failure.
	c := newCluster(t, 4, 6, cfg, func(i int) (resource.Vector, string) {
		cpu := 5.0
		if i == 0 {
			cpu = 1
		}
		return resource.Vector{cpu, 4096, 100}, "linux"
	})
	defer c.e.Shutdown()
	cons := resource.Unconstrained.Require(resource.CPU, 2)
	var started bool
	c.do(3, func(rt transport.Runtime) {
		if _, err := c.nodes[3].Submit(rt, grid.JobSpec{Cons: cons, Work: 40 * time.Second}); err != nil {
			t.Fatalf("submit: %v", err)
		}
		for c.rec.count(grid.EvStarted) == 0 {
			rt.Sleep(time.Second)
		}
		started = true
	})
	if !started {
		t.Fatal("job never started")
	}
	c.eps[0].Crash()
	c.do(3, func(rt transport.Runtime) {
		if left := c.nodes[3].AwaitAll(rt, rt.Now()+6*time.Minute); left != 0 {
			t.Fatalf("job lost after owner crash (%d unfinished)", left)
		}
	})
	if c.rec.count(grid.EvOwnerFailureDetected) == 0 {
		t.Fatal("run node never detected the owner failure")
	}
	if c.rec.count(grid.EvOwnerAdopted) == 0 {
		t.Fatal("no new owner adopted the orphaned job")
	}
}

func TestBothFailClientResubmits(t *testing.T) {
	cfg := grid.Config{HeartbeatEvery: time.Second, RunDeadAfter: 3 * time.Second, OwnerDeadAfter: 3 * time.Second}
	c := newCluster(t, 5, 7, cfg, uniform)
	defer c.e.Shutdown()
	c.nodes[4].StartClientMonitor(10 * time.Second)
	var runAddr transport.Addr
	c.do(4, func(rt transport.Runtime) {
		if _, err := c.nodes[4].Submit(rt, grid.JobSpec{Work: 20 * time.Second}); err != nil {
			t.Fatalf("submit: %v", err)
		}
		for c.rec.count(grid.EvStarted) == 0 {
			rt.Sleep(time.Second)
		}
	})
	c.rec.mu.Lock()
	for _, ev := range c.rec.evs {
		if ev.Kind == grid.EvStarted {
			runAddr = ev.Node
		}
	}
	c.rec.mu.Unlock()
	// Crash both the owner (n000 per switchable overlay) and run node.
	c.eps[0].Crash()
	for i, h := range c.hosts {
		if h.Addr() == runAddr && i != 4 {
			c.eps[i].Crash()
		}
	}
	c.do(4, func(rt transport.Runtime) {
		if left := c.nodes[4].AwaitAll(rt, rt.Now()+15*time.Minute); left != 0 {
			t.Fatalf("job never completed after double failure (%d left)", left)
		}
	})
	if c.rec.count(grid.EvResubmitted) == 0 {
		t.Fatal("client never resubmitted")
	}
}

func TestDuplicateResultsSuppressed(t *testing.T) {
	// Force a rematch while the original run node is still alive but
	// partitioned; when it heals and completes, its result must be
	// dropped (the client already got one from the replacement).
	cfg := grid.Config{HeartbeatEvery: time.Second, RunDeadAfter: 3 * time.Second}
	c := newCluster(t, 4, 8, cfg, uniform)
	defer c.e.Shutdown()
	var runAddr transport.Addr
	c.do(0, func(rt transport.Runtime) {
		if _, err := c.nodes[0].Submit(rt, grid.JobSpec{Work: 25 * time.Second}); err != nil {
			t.Fatalf("submit: %v", err)
		}
		for c.rec.count(grid.EvStarted) == 0 {
			rt.Sleep(time.Second)
		}
	})
	c.rec.mu.Lock()
	for _, ev := range c.rec.evs {
		if ev.Kind == grid.EvStarted {
			runAddr = ev.Node
		}
	}
	c.rec.mu.Unlock()
	// Partition the run node away from everyone (it keeps running).
	c.net.SetReachable(func(a, b simnet.Addr) bool {
		return a != simnet.Addr(runAddr) && b != simnet.Addr(runAddr)
	})
	c.do(0, func(rt transport.Runtime) {
		// Wait for rematch + completion elsewhere.
		if left := c.nodes[0].AwaitAll(rt, rt.Now()+5*time.Minute); left != 0 {
			t.Fatalf("%d unfinished", left)
		}
	})
	// Heal; let the partitioned node finish and try to deliver.
	c.net.SetReachable(nil)
	c.e.RunFor(2 * time.Minute)
	if got := c.rec.count(grid.EvResultDelivered); got != 1 {
		t.Fatalf("%d results delivered, want exactly 1", got)
	}
}

func TestQueueLen(t *testing.T) {
	c := newCluster(t, 1, 9, grid.Config{}, uniform)
	defer c.e.Shutdown()
	if c.nodes[0].QueueLen() != 0 {
		t.Fatal("fresh node has nonzero queue")
	}
	c.do(0, func(rt transport.Runtime) {
		for i := 0; i < 3; i++ {
			if _, err := c.nodes[0].Submit(rt, grid.JobSpec{Work: 10 * time.Second}); err != nil {
				t.Fatalf("submit: %v", err)
			}
		}
		rt.Sleep(5 * time.Second)
		if q := c.nodes[0].QueueLen(); q != 3 {
			t.Fatalf("QueueLen = %d, want 3 (1 running + 2 queued)", q)
		}
	})
}

func TestJobGUIDDistinctPerAttempt(t *testing.T) {
	a := grid.JobGUID("client", 1, 0)
	b := grid.JobGUID("client", 1, 1)
	cID := grid.JobGUID("client", 2, 0)
	if a == b || a == cID || b == cID {
		t.Fatal("GUIDs collide")
	}
	if a != grid.JobGUID("client", 1, 0) {
		t.Fatal("GUID not deterministic")
	}
}

func TestSpeedScaling(t *testing.T) {
	cfg := grid.Config{SpeedScaling: true}
	c := newCluster(t, 1, 10, cfg, func(i int) (resource.Vector, string) {
		return resource.Vector{4, 1024, 10}, "linux" // cpu speed 4
	})
	defer c.e.Shutdown()
	var started, finished sim.Time
	c.do(0, func(rt transport.Runtime) {
		if _, err := c.nodes[0].Submit(rt, grid.JobSpec{Work: 40 * time.Second}); err != nil {
			t.Fatalf("submit: %v", err)
		}
		if left := c.nodes[0].AwaitAll(rt, rt.Now()+5*time.Minute); left != 0 {
			t.Fatalf("unfinished")
		}
	})
	c.rec.mu.Lock()
	for _, ev := range c.rec.evs {
		if ev.Kind == grid.EvStarted {
			started = sim.Time(ev.At)
		}
		if ev.Kind == grid.EvResultDelivered {
			finished = sim.Time(ev.At)
		}
	}
	c.rec.mu.Unlock()
	elapsed := time.Duration(finished - started)
	if elapsed < 9*time.Second || elapsed > 12*time.Second {
		t.Fatalf("scaled runtime %v, want ~10s (40s work / speed 4)", elapsed)
	}
}

func TestEventKindString(t *testing.T) {
	if grid.EvSubmitted.String() != "submitted" || grid.EvGaveUp.String() != "gave-up" {
		t.Fatal("event names wrong")
	}
	if grid.EventKind(99).String() == "" {
		t.Fatal("out-of-range event name empty")
	}
}
