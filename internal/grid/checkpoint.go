package grid

import (
	"math"
	"time"

	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/transport"
)

// Checkpoint/resume, run-node side. The executor advances resumable
// work in slices (see executeAndReport); at every checkpoint interval
// it snapshots progress into the queuedJob, and the heartbeat loop
// ships fresh snapshots to the owner — piggybacked when the state fits
// the heartbeat payload cap, via a standalone grid.checkpoint RPC when
// oversized. The interval itself optionally adapts to the observed
// failure rate (Ni & Harwood's adaptive checkpointing, using Young's
// first-order optimum sqrt(2 * checkpoint-cost / failure-rate)).

// ckptEnabled reports whether the checkpoint subsystem is on.
func (n *Node) ckptEnabled() bool { return n.cfg.CheckpointEvery > 0 }

// noteFailureSignal records one observed failure (an owner declared
// dead, or an assignment arriving with saved progress — evidence a
// run node died) for the adaptive interval.
func (n *Node) noteFailureSignal(now time.Duration) {
	if !n.cfg.CheckpointAdaptive {
		return
	}
	n.mu.Lock()
	n.failObs = append(n.failObs, now)
	// Prune outside the window; the slice stays small (observations
	// arrive at heartbeat cadence at worst).
	cut := 0
	for cut < len(n.failObs) && now-n.failObs[cut] > n.cfg.CheckpointFailWindow {
		cut++
	}
	n.failObs = n.failObs[cut:]
	n.mu.Unlock()
}

// ckptInterval returns the interval until the next checkpoint. Fixed
// policy returns CheckpointEvery; adaptive policy applies Young's rule
// to the failure rate observed over CheckpointFailWindow, backing off
// to CheckpointMaxEvery when the neighbourhood has been stable.
//
// bias is the workflow hint carried on the job's profile (Ni &
// Harwood's critical-path weighting): under CheckpointWorkflowAware a
// bias > 1 divides the adaptive interval by sqrt(bias) — equivalent to
// inflating the effective failure *cost* by the downstream work a lost
// snapshot would force to re-execute. The bias also tightens the
// stable-neighbourhood backoff, so critical-path stages snapshot more
// eagerly even before the first failure observation. Fixed policy
// ignores it.
func (n *Node) ckptInterval(now time.Duration, bias float64) time.Duration {
	if !n.cfg.CheckpointAdaptive {
		return n.cfg.CheckpointEvery
	}
	n.mu.Lock()
	seen := 0
	for _, t := range n.failObs {
		if now-t <= n.cfg.CheckpointFailWindow {
			seen++
		}
	}
	n.mu.Unlock()
	opt := n.cfg.CheckpointMaxEvery
	if seen > 0 {
		rate := float64(seen) / n.cfg.CheckpointFailWindow.Seconds() // failures per second
		opt = time.Duration(math.Sqrt(2*n.cfg.CheckpointCost.Seconds()/rate) * float64(time.Second))
		if opt > n.cfg.CheckpointMaxEvery {
			opt = n.cfg.CheckpointMaxEvery
		}
	}
	if n.cfg.CheckpointWorkflowAware && bias > 1 {
		opt = time.Duration(float64(opt) / math.Sqrt(bias))
	}
	if opt < n.cfg.CheckpointMinEvery {
		opt = n.cfg.CheckpointMinEvery
	}
	return opt
}

// pendingCkpt is one checkpoint awaiting shipment to an owner.
type pendingCkpt struct {
	owner transport.Addr
	job   *queuedJob
	ckpt  Checkpoint
	tc    obs.TC // trace context captured with the snapshot
}

// collectPendingCkpts snapshots, under the node lock, every local
// checkpoint the owner has not yet acknowledged, skipping jobs already
// marked done (dropped or completed — their progress is moot).
func (n *Node) collectPendingCkpts(jobs []*queuedJob) []pendingCkpt {
	if !n.ckptEnabled() {
		return nil
	}
	var out []pendingCkpt
	n.mu.Lock()
	for _, q := range jobs {
		if n.done[q.prof.ID] || q.ckpt.Zero() || q.ckpt.Done <= q.shippedDone {
			continue
		}
		out = append(out, pendingCkpt{owner: q.owner, job: q, ckpt: q.ckpt, tc: q.tc})
	}
	n.mu.Unlock()
	return out
}

// ExecutedByJob returns a copy of this node's per-job executed work
// (nominal-work units, counted at slice boundaries) — the input to
// re-executed-work accounting.
func (n *Node) ExecutedByJob() map[ids.ID]time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[ids.ID]time.Duration, len(n.executedBy))
	for id, w := range n.executedBy {
		out[id] = w
	}
	return out
}

// markShipped records owner acknowledgement of a shipped checkpoint.
// The job pointer stays valid even if the queue entry was removed
// meanwhile; shippedDone only ever advances.
func (n *Node) markShipped(p pendingCkpt) {
	n.mu.Lock()
	if p.ckpt.Done > p.job.shippedDone {
		p.job.shippedDone = p.ckpt.Done
	}
	n.mu.Unlock()
}
