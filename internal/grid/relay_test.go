package grid_test

import (
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/ids"
	"repro/internal/match"
	"repro/internal/resource"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// relayCluster builds the 4-node relay scenario: node 0 is the owner
// (switchable overlay) but cannot run jobs, node 3 (the client) cannot
// either, so the job must land on node 1 or 2.
func relayCluster(t *testing.T, seed int64, cfg grid.Config) *cluster {
	t.Helper()
	return newCluster(t, 4, seed, cfg, func(i int) (resource.Vector, string) {
		cpu := 5.0
		if i == 0 || i == 3 {
			cpu = 1
		}
		return resource.Vector{cpu, 4096, 100}, "linux"
	})
}

// TestResultRelayThroughOwner exercises the paper's "owner node is
// responsible for ... ensuring that its results are returned to the
// client": the client is partitioned away while its job completes, the
// run node's direct delivery fails, and the owner relays the result
// once the partition heals — within the owner's bounded relay budget.
func TestResultRelayThroughOwner(t *testing.T) {
	cfg := grid.Config{HeartbeatEvery: time.Second, ResultRetries: 5}
	c := relayCluster(t, 21, cfg)
	defer c.e.Shutdown()
	clientAddr := simnet.Addr(c.hosts[3].Addr())
	cons := resource.Unconstrained.Require(resource.CPU, 2)

	c.do(3, func(rt transport.Runtime) {
		if _, err := c.nodes[3].Submit(rt, grid.JobSpec{Cons: cons, Work: 5 * time.Second}); err != nil {
			t.Fatalf("submit: %v", err)
		}
		for c.rec.count(grid.EvStarted) == 0 {
			rt.Sleep(time.Second)
		}
	})

	// Partition the client from everyone. The job finishes, direct
	// delivery fails, the run node hands the result to the owner.
	c.net.SetReachable(func(a, b simnet.Addr) bool {
		return a != clientAddr && b != clientAddr
	})
	c.e.RunFor(30 * time.Second)
	if got := c.rec.count(grid.EvResultDelivered); got != 0 {
		t.Fatalf("result delivered through a partition (%d)", got)
	}

	// Heal: the owner's monitor loop retries the relay.
	c.net.SetReachable(nil)
	c.e.RunFor(2 * time.Minute)
	if got := c.rec.count(grid.EvResultDelivered); got != 1 {
		t.Fatalf("relay after heal delivered %d results, want 1", got)
	}
	if got := c.rec.count(grid.EvGaveUp); got != 0 {
		t.Fatalf("owner gave up on a job whose client returned (%d)", got)
	}
}

// TestRelayGivesUpWhenClientNeverReturns is the other side of the
// bounded relay budget: a client that never comes back must not pin
// the owner's job entry forever. The owner retries ResultRetries
// times, records EvGaveUp, and forgets the job.
func TestRelayGivesUpWhenClientNeverReturns(t *testing.T) {
	cfg := grid.Config{HeartbeatEvery: time.Second, ResultRetries: 3}
	c := relayCluster(t, 23, cfg)
	defer c.e.Shutdown()
	clientAddr := simnet.Addr(c.hosts[3].Addr())
	cons := resource.Unconstrained.Require(resource.CPU, 2)

	var jobID ids.ID
	c.do(3, func(rt transport.Runtime) {
		var err error
		jobID, err = c.nodes[3].Submit(rt, grid.JobSpec{Cons: cons, Work: 5 * time.Second})
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		for c.rec.count(grid.EvStarted) == 0 {
			rt.Sleep(time.Second)
		}
	})

	// The client vanishes for good.
	c.net.SetReachable(func(a, b simnet.Addr) bool {
		return a != clientAddr && b != clientAddr
	})
	c.e.RunFor(3 * time.Minute)
	if got := c.rec.count(grid.EvResultDelivered); got != 0 {
		t.Fatalf("result delivered to a vanished client (%d)", got)
	}
	if got := c.rec.count(grid.EvGaveUp); got != 1 {
		t.Fatalf("EvGaveUp recorded %d times, want 1", got)
	}

	// The owner no longer tracks the job: a status probe from a live
	// node reports it unknown, which is what lets the client's monitor
	// resubmit if it ever returns.
	c.do(1, func(rt transport.Runtime) {
		raw, err := rt.Call(c.hosts[0].Addr(), grid.MStatus, grid.StatusReq{JobID: jobID})
		if err != nil {
			t.Fatalf("status: %v", err)
		}
		if raw.(grid.StatusResp).Known {
			t.Fatal("owner still tracks the given-up job")
		}
	})
}

// TestMatchRetryAfterTransientFailure verifies that an owner that finds
// no candidate keeps retrying and succeeds once capacity appears (here:
// a capable node joins the matchmaker's view mid-run).
func TestMatchRetryAfterTransientFailure(t *testing.T) {
	cfg := grid.Config{MatchRetryEvery: 2 * time.Second, MaxRematch: 10}
	c := newCluster(t, 3, 22, cfg, func(i int) (resource.Vector, string) {
		cpu := 1.0
		if i == 2 {
			cpu = 8 // the only capable node...
		}
		return resource.Vector{cpu, 1024, 50}, "linux"
	})
	defer c.e.Shutdown()
	// ...but it is invisible to the matchmaker until t=6s.
	appeared := false
	c.reg.Register(c.hosts[2].Addr(), match.RegistryEntry{
		Caps: resource.Vector{8, 1024, 50},
		OS:   "linux",
		Load: c.nodes[2].QueueLen,
		Up:   func() bool { return appeared && c.eps[2].Up() },
	})
	c.e.Schedule(6*time.Second, func() { appeared = true })

	cons := resource.Unconstrained.Require(resource.CPU, 5)
	c.do(0, func(rt transport.Runtime) {
		if _, err := c.nodes[0].Submit(rt, grid.JobSpec{Cons: cons, Work: 5 * time.Second}); err != nil {
			t.Fatalf("submit: %v", err)
		}
		if left := c.nodes[0].AwaitAll(rt, rt.Now()+5*time.Minute); left != 0 {
			t.Fatalf("%d unfinished", left)
		}
	})
	if c.rec.count(grid.EvMatchFailed) == 0 {
		t.Fatal("expected at least one failed match before capacity appeared")
	}
}
