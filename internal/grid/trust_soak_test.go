package grid_test

import (
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/grid"
	"repro/internal/ids"
	"repro/internal/transport"
	"repro/internal/trust"
)

// The Byzantine soak drives the full voting stack against active
// saboteurs: a seeded quarter of the nodes corrupt result digests or
// withhold results entirely. With R=3/quorum=2 and non-colluding
// corruption (every saboteur's wrong digest is distinct), the honest
// majority must win every vote — so the soak asserts the sabotage-
// tolerance analogue of the recovery soak's exactly-once claim: every
// job terminates exactly once at the client AND every delivered digest
// matches the honest expectation recorded at submission.

const (
	byzNodes  = 8 // node 7 is the client and is protected
	byzClient = byzNodes - 1
	byzJobs   = 8
)

func byzSoakCfg() func(i int, byz *faultinject.Byz) grid.Config {
	return func(i int, byz *faultinject.Byz) grid.Config {
		cfg := soakCfg()
		cfg.Replicas = 3
		cfg.Quorum = 2
		cfg.Trust = trust.New(trust.Config{})
		cfg.Byzantine = byz.Behavior(i)
		return cfg
	}
}

// runByzSoak executes one seeded Byzantine schedule and returns the
// event trace for replay comparison.
func runByzSoak(t *testing.T, seed int64) []string {
	t.Helper()
	byz := faultinject.GenerateByz(seed, byzNodes, faultinject.ByzPlan{
		Fraction:     0.25,
		WrongProb:    0.7,
		WithholdProb: 0.2,
		Protect:      []int{byzClient},
	})
	if len(byz.Saboteurs()) == 0 {
		t.Fatalf("seed %d: no saboteurs generated", seed)
	}
	cfgFor := byzSoakCfg()
	c := newClusterCfg(t, byzNodes, seed, func(i int) grid.Config { return cfgFor(i, byz) }, uniform)
	defer c.e.Shutdown()
	c.nodes[byzClient].StartClientMonitor(15 * time.Second)

	c.do(byzClient, func(rt transport.Runtime) {
		for i := 0; i < byzJobs; i++ {
			if _, err := c.nodes[byzClient].Submit(rt, grid.JobSpec{Work: time.Duration(2+i%4) * time.Second, OutputKB: 1 + i}); err != nil {
				t.Fatalf("seed %d: submit %d: %v", seed, i, err)
			}
		}
	})

	deadline := c.e.Now().Add(15 * time.Minute)
	for c.e.Now() < deadline && c.nodes[byzClient].PendingCount() > 0 {
		c.e.RunFor(5 * time.Second)
	}
	if left := c.nodes[byzClient].PendingCount(); left != 0 {
		t.Fatalf("seed %d: %d of %d jobs never terminated (saboteurs=%v)",
			seed, left, byzJobs, byz.Saboteurs())
	}

	// Exactly once, and never a sabotaged result: each delivery's digest
	// must equal the expectation its submission recorded.
	c.rec.mu.Lock()
	expect := map[ids.ID]string{}
	delivered := map[ids.ID]int{}
	total, votes, accepted := 0, 0, 0
	for _, ev := range c.rec.evs {
		switch ev.Kind {
		case grid.EvSubmitted:
			expect[ev.JobID] = ev.Digest
		case grid.EvResultDelivered:
			delivered[ev.JobID]++
			total++
			if want := expect[ev.JobID]; want == "" || ev.Digest != want {
				t.Errorf("seed %d: job %s delivered digest %s, want %s (sabotage accepted)",
					seed, ev.JobID.Short(), ev.Digest, want)
			}
		case grid.EvVoted:
			votes++
		case grid.EvAccepted:
			accepted++
		}
	}
	c.rec.mu.Unlock()
	for id, n := range delivered {
		if n > 1 {
			t.Fatalf("seed %d: job %s delivered %d times", seed, id.Short(), n)
		}
	}
	if total != byzJobs {
		t.Fatalf("seed %d: %d results delivered, want %d", seed, total, byzJobs)
	}
	if votes < byzJobs*2 || accepted < byzJobs {
		t.Fatalf("seed %d: voting not exercised (votes=%d accepted=%d)", seed, votes, accepted)
	}
	return eventTrace(c.rec)
}

func TestByzantineSoak(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 10
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		runByzSoak(t, seed)
	}
}

// TestByzantineSoakReplayDeterministic: saboteur selection and every
// corruption decision are pure functions of the seed, so a replayed
// schedule must produce a byte-identical event trace — including the
// voting digests and reputation deltas the trace lines carry.
func TestByzantineSoakReplayDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 2; seed++ {
		a := runByzSoak(t, seed)
		b := runByzSoak(t, seed)
		if len(a) != len(b) {
			t.Fatalf("seed %d: replay produced %d events, first run %d", seed, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: traces diverge at event %d:\n  first:  %s\n  replay: %s", seed, i, a[i], b[i])
			}
		}
	}
}
