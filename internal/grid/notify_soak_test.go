package grid_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/grid"
	"repro/internal/ids"
	"repro/internal/match"
	"repro/internal/pubsub"
	"repro/internal/resource"
	"repro/internal/simhost"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// These soaks pin the two contracts the notification overlay must
// honour (DESIGN.md §13): losing, delaying, or duplicating
// notifications can never lose or duplicate a job — the silence
// fallback re-engages status polling — and turning the overlay on
// cannot perturb the grid protocol itself: the seeded event trace
// replays byte-identical with pub/sub on and off.

// notifyCluster is a soak cluster with a pub/sub broker on every node.
// Brokers are built and started in BOTH the wired and unwired
// configurations so the simulated process structure is identical at
// build time; only the grid's Config.Notify hookup differs.
type notifyCluster struct {
	*cluster
	brokers []*pubsub.Broker
}

// firstCentral is the central matcher with the random tie-break
// removed: among least-loaded satisfying nodes it picks the lowest
// address. The neutrality soak compares runs whose proc population
// differs (pub/sub handler procs each consume one seed draw from the
// engine's master RNG), so per-proc random streams are differently
// seeded between runs; an rt.Rand()-based tie-break would diverge on
// that artefact without any protocol-visible cause. Match outcomes
// here must be a pure function of grid state.
type firstCentral struct{ reg *match.Registry }

func (m *firstCentral) FindRunNode(rt transport.Runtime, cons resource.Constraints, exclude []transport.Addr) (transport.Addr, grid.MatchStats, error) {
	var best transport.Addr
	bestLoad := -1
	for _, e := range m.reg.Snapshot() { // sorted by address
		skip := !e.Entry.Up()
		for _, x := range exclude {
			if x == e.Addr {
				skip = true
			}
		}
		if skip || !cons.SatisfiedBy(e.Entry.Caps, e.Entry.OS) {
			continue
		}
		if load := e.Entry.Load(); bestLoad < 0 || load < bestLoad {
			best, bestLoad = e.Addr, load
		}
	}
	if bestLoad < 0 {
		return "", grid.MatchStats{}, fmt.Errorf("firstCentral: no satisfying node for %s", cons)
	}
	return best, grid.MatchStats{}, nil
}

func newNotifyCluster(t *testing.T, n int, seed int64, cfg grid.Config, wired bool) *notifyCluster {
	t.Helper()
	nc := &notifyCluster{}
	// Every topic rendezvouses at node 0: these soaks probe delivery
	// semantics under faults, not ring placement (the pubsub package's
	// own tests cover lookup and rendezvous handoff).
	lookup := func(rt transport.Runtime, key ids.ID) (transport.Addr, error) {
		return "n000", nil
	}
	matcher := &firstCentral{}
	nc.cluster = newClusterPrep(t, n, seed, func(int) grid.Config { return cfg }, uniform,
		func(i int, h *simhost.Host, c *grid.Config) grid.Matchmaker {
			b := pubsub.New(h, pubsub.Config{
				Lookup:         lookup,
				FlushEvery:     50 * time.Millisecond,
				RedeliverEvery: 500 * time.Millisecond,
				RedeliverMax:   6,
			})
			nc.brokers = append(nc.brokers, b)
			if wired {
				c.Notify = b
			}
			return matcher
		})
	matcher.reg = nc.reg
	for i, b := range nc.brokers {
		b.SetOnEvent(nc.nodes[i].OnNotification)
		b.Start()
	}
	return nc
}

// notifySoakHarness restarts the broker alongside the grid node, the
// way a real process restart rebuilds both.
type notifySoakHarness struct{ nc *notifyCluster }

func (h notifySoakHarness) Crash(i int) { h.nc.eps[i].Crash() }
func (h notifySoakHarness) Restart(i int) {
	h.nc.eps[i].Restart()
	h.nc.nodes[i].Restart()
	h.nc.brokers[i].Reset()
	h.nc.brokers[i].Start()
}

// notifyStats aggregates the push-path counters of one soak run.
type notifyStats struct {
	published  int64 // events handed to brokers by owners
	delivered  int64 // fresh events handed to OnNotification anywhere
	redelivery int64 // redelivered + duplicate + abandoned (loss path)
	notifyRecv int64 // notifications absorbed by the client node
	probes     int64 // status RPCs the client monitor actually sent
	resubmits  int   // EvResubmitted events in the trace
}

func (nc *notifyCluster) gather() notifyStats {
	var s notifyStats
	for _, b := range nc.brokers {
		bs := b.Stats()
		s.published += bs.Published
		s.delivered += bs.Delivered
		s.redelivery += bs.Redelivered + bs.Duplicates + bs.Abandoned
	}
	s.notifyRecv = nc.nodes[soakClient].NotifyRecv
	s.probes = nc.nodes[soakClient].StatusProbes
	s.resubmits = nc.rec.count(grid.EvResubmitted)
	return s
}

// neutralPlan injects faults only on grid methods whose message
// sequence is identical with pub/sub on and off. No crashes or
// partitions (a resubmission's timing depends on whether the monitor
// probed or trusted a push, which is exactly the difference under
// test), and no catch-all rules: a rule matching pubsub.* methods
// would consume fault-stream draws in the wired run only and
// desynchronise every later decision.
func neutralPlan() faultinject.Plan {
	return faultinject.Plan{
		Nodes:   soakNodes,
		Protect: []int{soakClient},
		Window:  45 * time.Second,
		Rules: []faultinject.Rule{
			{Method: grid.MHeartbeat, DropProb: 0.25},
			{Method: grid.MAssign, DropProb: 0.1, DupProb: 0.1},
		},
	}
}

// runNeutralSoak executes one seeded schedule on a fixed-latency
// network — the only RNG-free latency model, so message timing cannot
// depend on the extra pub/sub traffic — and returns the event trace
// plus the run's push-path counters.
func runNeutralSoak(t *testing.T, seed int64, wired bool) ([]string, notifyStats) {
	t.Helper()
	nc := newNotifyCluster(t, soakNodes, seed, soakCfg(), wired)
	defer nc.e.Shutdown()
	nc.net.Latency = simnet.FixedLatency(12 * time.Millisecond)
	// A short resubmit grace makes the monitor actually reach the
	// probe-or-trust decision for delayed jobs; owners stay alive, so
	// probes come back Known and no resubmission fires in either run.
	nc.nodes[soakClient].StartClientMonitor(2 * time.Second)

	nc.do(soakClient, func(rt transport.Runtime) {
		for i := 0; i < soakJobs; i++ {
			if _, err := nc.nodes[soakClient].Submit(rt, grid.JobSpec{Work: time.Duration(2+i%4) * time.Second}); err != nil {
				t.Fatalf("seed %d: submit %d: %v", seed, i, err)
			}
		}
	})

	sched := faultinject.Generate(seed, neutralPlan())
	nc.net.Faults = sched.Injector(func() time.Duration { return time.Duration(nc.e.Now()) })
	disarm := sched.Arm(nc.e, nc.net, notifySoakHarness{nc}, func(i int) simnet.Addr {
		return simnet.Addr(nc.hosts[i].Addr())
	})
	defer disarm()

	deadline := nc.e.Now().Add(10 * time.Minute)
	for nc.e.Now() < deadline && nc.nodes[soakClient].PendingCount() > 0 {
		nc.e.RunFor(5 * time.Second)
	}
	if left := nc.nodes[soakClient].PendingCount(); left != 0 {
		t.Fatalf("seed %d (wired=%v): %d of %d jobs never terminated", seed, wired, left, soakJobs)
	}
	return eventTrace(nc.rec), nc.gather()
}

// TestNotifySoakTraceNeutral is the overlay's hard constraint: for the
// same seed, the grid's event trace must be byte-identical — every
// event, timestamp, digest, and attempt number — whether push
// notifications are wired up or not. Notifications may observe the
// protocol; they may never steer it.
func TestNotifySoakTraceNeutral(t *testing.T) {
	seeds := int64(5)
	if testing.Short() {
		seeds = 2
	}
	var onProbes, offProbes int64
	for seed := int64(1); seed <= seeds; seed++ {
		offTrace, off := runNeutralSoak(t, seed, false)
		onTrace, on := runNeutralSoak(t, seed, true)
		if len(offTrace) != len(onTrace) {
			t.Fatalf("seed %d: %d events with pubsub off, %d with pubsub on", seed, len(offTrace), len(onTrace))
		}
		for i := range offTrace {
			if offTrace[i] != onTrace[i] {
				t.Fatalf("seed %d: traces diverge at event %d:\n  off: %s\n  on:  %s", seed, i, offTrace[i], onTrace[i])
			}
		}
		// Non-vacuous: the wired run really pushed transitions to the
		// client, the unwired run really sent none.
		if on.published == 0 || on.notifyRecv == 0 {
			t.Fatalf("seed %d: wired run pushed nothing (published=%d notifyRecv=%d)", seed, on.published, on.notifyRecv)
		}
		if off.published != 0 || off.notifyRecv != 0 {
			t.Fatalf("seed %d: unwired run leaked notifications (published=%d notifyRecv=%d)", seed, off.published, off.notifyRecv)
		}
		if on.resubmits != 0 || off.resubmits != 0 {
			t.Fatalf("seed %d: resubmissions fired (on=%d off=%d); the neutrality plan must not reach that path", seed, on.resubmits, off.resubmits)
		}
		onProbes += on.probes
		offProbes += off.probes
	}
	// Push must only ever displace polling, never add to it.
	if onProbes > offProbes {
		t.Fatalf("client sent more status probes with push on (%d) than off (%d)", onProbes, offProbes)
	}
}

// notifyDropPlan is the full recovery soak plan plus heavy loss,
// delay, and duplication on every pub/sub method. The pubsub rules
// come first: rule matching is first-wins and the base plan ends with
// a catch-all delay rule.
func notifyDropPlan() faultinject.Plan {
	p := soakPlan()
	p.Rules = append([]faultinject.Rule{
		{Method: pubsub.MNotify, DropProb: 0.5, DupProb: 0.2, DelayProb: 0.3, DelayMin: 200 * time.Millisecond, DelayMax: 2 * time.Second},
		{Method: pubsub.MPublish, DropProb: 0.3, DupProb: 0.2},
		{Method: pubsub.MSubscribe, DropProb: 0.3},
		{Method: pubsub.MAck, DropProb: 0.3},
	}, p.Rules...)
	return p
}

// runNotifyDropSoak executes one seeded schedule with the overlay
// wired and its traffic heavily faulted, on top of the usual crashes,
// partitions, and grid-method faults. The exactly-once contract must
// survive: notifications are an optimisation, so losing them can only
// cost latency (the silence fallback polls), never correctness.
func runNotifyDropSoak(t *testing.T, seed int64) ([]string, notifyStats) {
	t.Helper()
	nc := newNotifyCluster(t, soakNodes, seed, soakCfg(), true)
	defer nc.e.Shutdown()
	nc.nodes[soakClient].StartClientMonitor(15 * time.Second)

	nc.do(soakClient, func(rt transport.Runtime) {
		for i := 0; i < soakJobs; i++ {
			if _, err := nc.nodes[soakClient].Submit(rt, grid.JobSpec{Work: time.Duration(2+i%4) * time.Second}); err != nil {
				t.Fatalf("seed %d: submit %d: %v", seed, i, err)
			}
		}
	})

	sched := faultinject.Generate(seed, notifyDropPlan())
	nc.net.Faults = sched.Injector(func() time.Duration { return time.Duration(nc.e.Now()) })
	disarm := sched.Arm(nc.e, nc.net, notifySoakHarness{nc}, func(i int) simnet.Addr {
		return simnet.Addr(nc.hosts[i].Addr())
	})
	defer disarm()

	deadline := nc.e.Now().Add(10 * time.Minute)
	for nc.e.Now() < deadline && nc.nodes[soakClient].PendingCount() > 0 {
		nc.e.RunFor(5 * time.Second)
	}
	if left := nc.nodes[soakClient].PendingCount(); left != 0 {
		t.Fatalf("seed %d: %d of %d jobs never terminated (crashes=%d parts=%d)",
			seed, left, soakJobs, len(sched.Nodes), len(sched.Parts))
	}

	// Exactly once, same contract as the base recovery soak: one
	// delivery per lineage, soakJobs deliveries in total.
	nc.rec.mu.Lock()
	delivered := map[ids.ID]int{}
	total := 0
	for _, ev := range nc.rec.evs {
		if ev.Kind == grid.EvResultDelivered {
			delivered[ev.JobID]++
			total++
		}
	}
	nc.rec.mu.Unlock()
	for id, n := range delivered {
		if n > 1 {
			t.Fatalf("seed %d: job %s delivered %d times", seed, id.Short(), n)
		}
	}
	if total != soakJobs {
		t.Fatalf("seed %d: %d results delivered, want %d", seed, total, soakJobs)
	}
	return eventTrace(nc.rec), nc.gather()
}

// TestNotifySoakDroppedNotifications runs many seeded schedules with
// the notification overlay under heavy fire and requires zero lost and
// zero duplicated jobs in every one, plus evidence (aggregated across
// seeds) that the runs actually exercised both the push path and its
// polling fallback.
func TestNotifySoakDroppedNotifications(t *testing.T) {
	seeds := 30
	if testing.Short() {
		seeds = 10
	}
	var agg notifyStats
	for seed := int64(1); seed <= int64(seeds); seed++ {
		_, s := runNotifyDropSoak(t, seed)
		agg.published += s.published
		agg.redelivery += s.redelivery
		agg.notifyRecv += s.notifyRecv
		agg.probes += s.probes
	}
	if agg.published == 0 || agg.notifyRecv == 0 {
		t.Fatalf("push path never exercised: published=%d notifyRecv=%d", agg.published, agg.notifyRecv)
	}
	if agg.redelivery == 0 {
		t.Fatalf("loss path never exercised: no redeliveries, duplicates, or abandonments in %d seeds", seeds)
	}
	if agg.probes == 0 {
		t.Fatalf("fallback polling never exercised across %d seeds", seeds)
	}
}

// TestNotifySoakReplayDeterministic re-runs dropped-notification
// schedules and requires byte-identical event traces: the pub/sub
// overlay, like every other subsystem, must stay inside the sim's
// seeded-replay discipline.
func TestNotifySoakReplayDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 2; seed++ {
		a, _ := runNotifyDropSoak(t, seed)
		b, _ := runNotifyDropSoak(t, seed)
		if len(a) != len(b) {
			t.Fatalf("seed %d: replay produced %d events, first run %d", seed, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: traces diverge at event %d:\n  first:  %s\n  replay: %s", seed, i, a[i], b[i])
			}
		}
	}
}
