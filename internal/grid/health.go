package grid

import (
	"time"

	"repro/internal/transport"
)

// The grid.health RPC exposes the transport layer's per-peer circuit
// breaker state (nettransport, DESIGN.md §12) for operators: gridctl
// health prints it. Like stats/trace this is pull-only observability —
// the snapshot never feeds scheduling. Degradation decisions instead
// go through Config.PeerDown, a live predicate, so the two uses cannot
// drift apart.

// MHealth is the health method name registered on the host.
const MHealth = "grid.health"

// PeerHealth is one peer's breaker snapshot as the grid layer reports
// it (mirrors nettransport.PeerHealth; the grid stays
// transport-agnostic, so live deployments copy fields across in an
// adapter — see cmd/gridnode).
type PeerHealth struct {
	Peer        transport.Addr
	State       string // closed | open | half-open
	ConsecFails int
	Failures    int64
	Successes   int64
	Opens       int64
	RetryIn     time.Duration // open only: until the next probe is admitted
}

// HealthReq asks a node for its per-peer breaker table.
type HealthReq struct{}

// HealthResp returns it.
type HealthResp struct {
	Node  transport.Addr
	Peers []PeerHealth
}

func (n *Node) handleHealth(rt transport.Runtime, from transport.Addr, req any) (any, error) {
	var peers []PeerHealth
	if n.cfg.Health != nil {
		peers = n.cfg.Health()
	}
	return HealthResp{Node: n.host.Addr(), Peers: peers}, nil
}

// peerDown reports whether the transport currently fast-fails calls to
// addr (open breaker). Always false without a Config.PeerDown hook —
// the simulator — so seeded runs are untouched by degradation logic.
func (n *Node) peerDown(addr transport.Addr) bool {
	return n.cfg.PeerDown != nil && addr != n.host.Addr() && n.cfg.PeerDown(addr)
}

// demoteDown stably partitions addrs so peers whose breaker is open
// sort last: probes hit likely-live candidates first, while the
// demoted ones are still reached (and fast-fail cheaply) as a last
// resort, so a peer that just recovered is never skipped outright.
func (n *Node) demoteDown(addrs []transport.Addr) []transport.Addr {
	if n.cfg.PeerDown == nil {
		return addrs
	}
	// Scan-first fast path: in the common all-breakers-closed case the
	// partition is the identity, so return the input unchanged instead
	// of rebuilding it — this runs on every monitor tick per due job.
	first := -1
	for i, a := range addrs {
		if n.peerDown(a) {
			first = i
			break
		}
	}
	if first < 0 {
		return addrs
	}
	alive := make([]transport.Addr, 0, len(addrs))
	alive = append(alive, addrs[:first]...)
	down := []transport.Addr{addrs[first]}
	for _, a := range addrs[first+1:] {
		if n.peerDown(a) {
			down = append(down, a)
		} else {
			alive = append(alive, a)
		}
	}
	return append(alive, down...)
}
