package grid_test

import (
	"errors"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/transport"
)

func TestWorkflowRunsInDependencyOrder(t *testing.T) {
	c := newCluster(t, 6, 31, grid.Config{}, uniform)
	defer c.e.Shutdown()
	// The paper's motivating shape: simulations first, one analysis
	// after each, a final report after all analyses.
	wf := grid.Workflow{Tasks: []grid.Task{
		{Name: "sim-a", Spec: grid.JobSpec{Work: 10 * time.Second}},
		{Name: "sim-b", Spec: grid.JobSpec{Work: 15 * time.Second}},
		{Name: "analyze-a", Spec: grid.JobSpec{Work: 5 * time.Second}, DependsOn: []string{"sim-a"}},
		{Name: "analyze-b", Spec: grid.JobSpec{Work: 5 * time.Second}, DependsOn: []string{"sim-b"}},
		{Name: "report", Spec: grid.JobSpec{Work: 2 * time.Second}, DependsOn: []string{"analyze-a", "analyze-b"}},
	}}
	var results map[string]grid.TaskResult
	var err error
	c.do(0, func(rt transport.Runtime) {
		results, err = c.nodes[0].RunWorkflow(rt, wf, rt.Now()+time.Hour)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("completed %d/5 tasks", len(results))
	}
	// Dependency order must hold on completion times.
	if results["analyze-a"].Finished <= results["sim-a"].Finished {
		t.Fatal("analysis finished before its simulation")
	}
	if results["report"].Finished <= results["analyze-a"].Finished ||
		results["report"].Finished <= results["analyze-b"].Finished {
		t.Fatal("report finished before analyses")
	}
	// Started must be populated (the submit instant) and consistent:
	// before Finished for every task (roots legitimately submit at the
	// virtual-clock origin), nonzero for dependent tasks, and a
	// dependent task starts only after its dependency delivered.
	for name, r := range results {
		if r.Started >= r.Finished {
			t.Fatalf("task %q Started %v >= Finished %v", name, r.Started, r.Finished)
		}
	}
	for _, name := range []string{"analyze-a", "analyze-b", "report"} {
		if results[name].Started <= 0 {
			t.Fatalf("task %q Started not populated: %v", name, results[name].Started)
		}
	}
	if results["analyze-a"].Started < results["sim-a"].Finished {
		t.Fatal("analysis submitted before its simulation delivered")
	}
	if results["report"].Started < results["analyze-b"].Finished {
		t.Fatal("report submitted before analyses delivered")
	}
}

func TestWorkflowIndependentTasksOverlap(t *testing.T) {
	c := newCluster(t, 8, 32, grid.Config{}, uniform)
	defer c.e.Shutdown()
	wf := grid.Workflow{Tasks: []grid.Task{
		{Name: "a", Spec: grid.JobSpec{Work: 30 * time.Second}},
		{Name: "b", Spec: grid.JobSpec{Work: 30 * time.Second}},
		{Name: "c", Spec: grid.JobSpec{Work: 30 * time.Second}},
	}}
	var took time.Duration
	c.do(0, func(rt transport.Runtime) {
		start := rt.Now()
		if _, err := c.nodes[0].RunWorkflow(rt, wf, rt.Now()+time.Hour); err != nil {
			t.Fatal(err)
		}
		took = rt.Now() - start
	})
	// Independent tasks run concurrently on different nodes: total time
	// is far below the 90s serial sum.
	if took > 60*time.Second {
		t.Fatalf("independent tasks apparently serialized: %v", took)
	}
}

func TestWorkflowRejectsBadGraphs(t *testing.T) {
	c := newCluster(t, 2, 33, grid.Config{}, uniform)
	defer c.e.Shutdown()
	c.do(0, func(rt transport.Runtime) {
		// Unknown dependency.
		_, err := c.nodes[0].RunWorkflow(rt, grid.Workflow{Tasks: []grid.Task{
			{Name: "x", DependsOn: []string{"ghost"}},
		}}, rt.Now()+time.Minute)
		if !errors.Is(err, grid.ErrWorkflowCycle) {
			t.Errorf("unknown dep: %v", err)
		}
		// Cycle.
		_, err = c.nodes[0].RunWorkflow(rt, grid.Workflow{Tasks: []grid.Task{
			{Name: "a", DependsOn: []string{"b"}},
			{Name: "b", DependsOn: []string{"a"}},
		}}, rt.Now()+time.Minute)
		if !errors.Is(err, grid.ErrWorkflowCycle) {
			t.Errorf("cycle: %v", err)
		}
		// Duplicate name.
		_, err = c.nodes[0].RunWorkflow(rt, grid.Workflow{Tasks: []grid.Task{
			{Name: "a"}, {Name: "a"},
		}}, rt.Now()+time.Minute)
		if err == nil {
			t.Error("duplicate accepted")
		}
	})
}

func TestWorkflowDeadline(t *testing.T) {
	c := newCluster(t, 2, 34, grid.Config{}, uniform)
	defer c.e.Shutdown()
	c.do(0, func(rt transport.Runtime) {
		_, err := c.nodes[0].RunWorkflow(rt, grid.Workflow{Tasks: []grid.Task{
			{Name: "long", Spec: grid.JobSpec{Work: time.Hour}},
		}}, rt.Now()+10*time.Second)
		if !errors.Is(err, grid.ErrWorkflowStall) {
			t.Errorf("deadline: %v", err)
		}
	})
}
