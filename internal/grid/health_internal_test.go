package grid

// White-box tests for the graceful-degradation hooks: grid.health
// pass-through and the matchmaking demotion of peers whose transport
// breaker is open (DESIGN.md §12).

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/resource"
	"repro/internal/transport"
)

func TestHandleHealthPassThrough(t *testing.T) {
	want := []PeerHealth{
		{Peer: "127.0.0.1:7002", State: "open", ConsecFails: 5, Failures: 9, Opens: 1, RetryIn: time.Second},
		{Peer: "127.0.0.1:7003", State: "closed", Successes: 42},
	}
	n, _ := newStubNode(nil, Config{Health: func() []PeerHealth { return want }})
	rt := &stubRT{rng: rand.New(rand.NewSource(1))}

	raw, err := n.handleHealth(rt, "asker", HealthReq{})
	if err != nil {
		t.Fatalf("handleHealth: %v", err)
	}
	resp := raw.(HealthResp)
	if resp.Node != "owner" {
		t.Fatalf("resp.Node = %q, want owner", resp.Node)
	}
	if len(resp.Peers) != 2 || resp.Peers[0] != want[0] || resp.Peers[1] != want[1] {
		t.Fatalf("resp.Peers = %+v, want %+v", resp.Peers, want)
	}

	// Without a Health hook (the simulator) the RPC still answers.
	n2, _ := newStubNode(nil, Config{})
	raw, err = n2.handleHealth(rt, "asker", HealthReq{})
	if err != nil {
		t.Fatalf("handleHealth without hook: %v", err)
	}
	if resp := raw.(HealthResp); len(resp.Peers) != 0 {
		t.Fatalf("hookless resp.Peers = %+v, want empty", resp.Peers)
	}
}

// scriptMatcher returns the first scripted candidate not excluded,
// recording each call's exclusion list.
type scriptMatcher struct {
	cands    []transport.Addr
	excluded [][]transport.Addr
}

func (m *scriptMatcher) FindRunNode(_ transport.Runtime, _ resource.Constraints, excl []transport.Addr) (transport.Addr, MatchStats, error) {
	m.excluded = append(m.excluded, append([]transport.Addr(nil), excl...))
	for _, c := range m.cands {
		skip := false
		for _, e := range excl {
			if c == e {
				skip = true
				break
			}
		}
		if !skip {
			return c, MatchStats{}, nil
		}
	}
	return "", MatchStats{}, transport.ErrUnreachable
}

// TestMatchAndAssignDemotesDown: the matcher's first pick has an open
// breaker, so matchAndAssign must exclude it from the re-pick and
// assign to the next candidate — without recording the demotion on the
// job, which would outlive the breaker.
func TestMatchAndAssignDemotesDown(t *testing.T) {
	id := ids.HashString("job")
	matcher := &scriptMatcher{cands: []transport.Addr{"down1", "good"}}
	h := &stubHost{addr: "owner"}
	n := NewNode(h, resource.Vector{4, 1024, 100}, "linux", nil, matcher, nil, Config{
		MaxRematch:      5,
		MatchRetryEvery: time.Millisecond,
		PeerDown:        func(a transport.Addr) bool { return a == "down1" },
	})
	n.owned[id] = &ownedJob{prof: Profile{ID: id, Client: "client"}}
	assigns := 0
	rt := &stubRT{rng: rand.New(rand.NewSource(1))}
	rt.call = func(to transport.Addr, method string, req any) (any, error) {
		if method != MAssign {
			t.Fatalf("unexpected RPC %s to %s", method, to)
		}
		assigns++
		if to != "good" {
			t.Fatalf("assigned to %s, want good", to)
		}
		return AssignResp{}, nil
	}

	n.matchAndAssign(rt, id)

	job := n.owned[id]
	if job == nil || !job.matched || job.run != "good" {
		t.Fatalf("job = %+v, want matched on good", job)
	}
	if assigns != 1 {
		t.Fatalf("%d assignments, want 1 (none to the demoted peer)", assigns)
	}
	if len(matcher.excluded) != 2 {
		t.Fatalf("matcher called %d times, want 2", len(matcher.excluded))
	}
	if len(matcher.excluded[1]) != 1 || matcher.excluded[1][0] != "down1" {
		t.Fatalf("re-pick exclusions = %v, want [down1]", matcher.excluded[1])
	}
	if len(job.excluded) != 0 {
		t.Fatalf("demotion leaked onto the job's exclusions: %v", job.excluded)
	}
}

func TestDemoteDownPartition(t *testing.T) {
	n, _ := newStubNode(nil, Config{
		PeerDown: func(a transport.Addr) bool { return a == "d1" || a == "d2" },
	})
	got := n.demoteDown([]transport.Addr{"d1", "a", "d2", "b"})
	want := []transport.Addr{"a", "b", "d1", "d2"}
	if len(got) != len(want) {
		t.Fatalf("demoteDown = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("demoteDown = %v, want %v (stable partition, down last)", got, want)
		}
	}

	// Nil hook (simulator): the slice is untouched, order and identity.
	n2, _ := newStubNode(nil, Config{})
	in := []transport.Addr{"x", "y"}
	if out := n2.demoteDown(in); &out[0] != &in[0] || out[1] != "y" {
		t.Fatalf("nil-hook demoteDown rewrote the slice: %v", out)
	}
}
