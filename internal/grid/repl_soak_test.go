package grid_test

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/grid"
	"repro/internal/ids"
	"repro/internal/replica"
	"repro/internal/resource"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// The replication soak drives the owner-state replication subsystem
// (DESIGN.md §10) through seeded schedules of correlated owner+run
// double crashes — the one failure mode the pre-replication protocol
// could only survive by client resubmission. With ReplicaK >= 2 every
// job must complete with ZERO resubmissions: a surviving replica
// promotes itself and re-establishes the execution path. A k=0 control
// over the same schedules must show the resubmissions replication
// removed, proving the schedules actually exercise the double-failure
// path.

const (
	replNodes  = 7 // node 6 is the client and is protected
	replClient = replNodes - 1
	replJobs   = 8
)

// testRing adapts the test cluster to replica.Ring, mirroring the
// switchableOverlay's routing rule: the ring owner of every key is the
// first live endpoint in cluster order, and a node's successor list is
// the next live endpoints in cyclic cluster order. When ownerIdx is
// non-nil the ownership rule is scripted instead (set to a node index)
// so tests can move the ring out from under a stale owner.
type testRing struct {
	c        *cluster
	i        int
	ownerIdx *atomic.Int32
}

func (r *testRing) Self() transport.Addr { return r.c.hosts[r.i].Addr() }

func (r *testRing) Successors(k int) []transport.Addr {
	var out []transport.Addr
	n := len(r.c.eps)
	for j := 1; j < n && len(out) < k; j++ {
		ep := r.c.eps[(r.i+j)%n]
		if ep.Up() {
			out = append(out, transport.Addr(ep.Addr()))
		}
	}
	return out
}

func (r *testRing) Owns(key ids.ID) bool {
	if r.ownerIdx != nil {
		return int(r.ownerIdx.Load()) == r.i
	}
	for _, ep := range r.c.eps {
		if ep.Up() {
			return transport.Addr(ep.Addr()) == r.Self()
		}
	}
	return false
}

// newReplCluster builds a soak cluster with owner-state replication at
// degree k on every node (k=0 disables the subsystem entirely — the
// control configuration).
func newReplCluster(t *testing.T, seed int64, k int, cfg grid.Config) *cluster {
	return newReplClusterN(t, replNodes, seed, k, cfg, nil, uniform)
}

func newReplClusterN(t *testing.T, n int, seed int64, k int, cfg grid.Config,
	ownerIdx *atomic.Int32, caps func(i int) (resource.Vector, string)) *cluster {
	t.Helper()
	rings := make([]*testRing, n)
	c := newClusterCfg(t, n, seed, func(i int) grid.Config {
		nodeCfg := cfg
		if k > 0 {
			nodeCfg.ReplicaK = k
			rings[i] = &testRing{i: i, ownerIdx: ownerIdx}
			nodeCfg.ReplicaRing = rings[i]
		}
		return nodeCfg
	}, caps)
	// The ring needs the finished cluster; nothing runs until the first
	// RunFor, so late binding here is race-free.
	for _, r := range rings {
		if r != nil {
			r.c = c
		}
	}
	return c
}

// replPlan is the double-failure schedule: correlated owner+run pair
// crashes with no restarts and no partitions (the test ring's
// ownership rule tracks endpoint liveness, which partitions don't
// change), plus light message-level faults on the heartbeat and
// anti-entropy paths.
func replPlan(pairs int, restarts bool) faultinject.Plan {
	p := faultinject.Plan{
		Nodes:       replNodes,
		Protect:     []int{replClient},
		Window:      25 * time.Second,
		PairCrashes: pairs,
		Rules: []faultinject.Rule{
			{Method: grid.MHeartbeat, DropProb: 0.2},
			{Method: replica.MSync, DropProb: 0.15},
			{DelayProb: 0.1, DelayMin: 50 * time.Millisecond, DelayMax: 300 * time.Millisecond},
		},
	}
	if restarts {
		p.Crashes = 2
		p.RestartProb = 0.6
		p.RestartDelayMin = 5 * time.Second
		p.RestartDelayMax = 15 * time.Second
	}
	return p
}

// runReplSoak executes one seeded schedule at replication degree k and
// returns the event trace plus the resubmission count. It fails the
// test if any job never terminates or any GUID is delivered twice.
func runReplSoak(t *testing.T, seed int64, k int, plan faultinject.Plan) (trace []string, resubmits int) {
	t.Helper()
	c := newReplCluster(t, seed, k, soakCfg())
	defer c.e.Shutdown()
	c.nodes[replClient].StartClientMonitor(15 * time.Second)

	c.do(replClient, func(rt transport.Runtime) {
		for i := 0; i < replJobs; i++ {
			if _, err := c.nodes[replClient].Submit(rt, grid.JobSpec{Work: time.Duration(6+i%4) * time.Second}); err != nil {
				t.Fatalf("seed %d k=%d: submit %d: %v", seed, k, i, err)
			}
		}
	})
	// Calm period before the faults: a couple of anti-entropy rounds
	// seed every successor, so the schedule probes recovery, not the
	// race between the very first push and the very first crash.
	c.e.RunFor(3 * time.Second)

	sched := faultinject.Generate(seed, plan)
	c.net.Faults = sched.Injector(func() time.Duration { return time.Duration(c.e.Now()) })
	disarm := sched.Arm(c.e, c.net, soakHarness{c}, func(i int) simnet.Addr {
		return simnet.Addr(c.hosts[i].Addr())
	})
	defer disarm()

	deadline := c.e.Now().Add(10 * time.Minute)
	for c.e.Now() < deadline && c.nodes[replClient].PendingCount() > 0 {
		c.e.RunFor(5 * time.Second)
	}
	if left := c.nodes[replClient].PendingCount(); left != 0 {
		t.Fatalf("seed %d k=%d: %d of %d jobs never terminated", seed, k, left, replJobs)
	}

	c.rec.mu.Lock()
	delivered := map[ids.ID]int{}
	total := 0
	for _, ev := range c.rec.evs {
		if ev.Kind == grid.EvResultDelivered {
			delivered[ev.JobID]++
			total++
		}
	}
	c.rec.mu.Unlock()
	for id, n := range delivered {
		if n > 1 {
			t.Fatalf("seed %d k=%d: job %s delivered %d times", seed, k, id.Short(), n)
		}
	}
	if total != replJobs {
		t.Fatalf("seed %d k=%d: %d results delivered, want %d", seed, k, total, replJobs)
	}
	return eventTrace(c.rec), c.rec.count(grid.EvResubmitted)
}

// TestReplicatedSoakNoResubmits is the tentpole acceptance soak: under
// a simultaneous owner+run pair crash, ReplicaK=2 completes every job
// with zero client resubmissions on every seed, while the k=0 control
// over the identical schedules resubmits (in aggregate) — the double
// failure really happened, and replication really absorbed it.
func TestReplicatedSoakNoResubmits(t *testing.T) {
	seeds := 10
	if testing.Short() {
		seeds = 3
	}
	controlResubmits := 0
	for seed := int64(1); seed <= int64(seeds); seed++ {
		if _, re := runReplSoak(t, seed, 2, replPlan(1, false)); re != 0 {
			t.Errorf("seed %d: %d resubmissions at ReplicaK=2, want 0", seed, re)
		}
		_, re := runReplSoak(t, seed, 0, replPlan(1, false))
		controlResubmits += re
	}
	if controlResubmits == 0 {
		t.Error("k=0 control never resubmitted: the schedules are not exercising the owner+run double failure")
	}
}

// TestReplicatedSoakWithRestarts hardens the subsystem against the
// full churn mix — pair crashes plus independent crashes with
// probabilistic restarts (restore and fencing paths live here). A
// restarted ring owner may still force a (safe) resubmission, so this
// soak asserts exactly-once termination, not zero resubmits.
func TestReplicatedSoakWithRestarts(t *testing.T) {
	seeds := 8
	if testing.Short() {
		seeds = 2
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		runReplSoak(t, seed, 2, replPlan(2, true))
	}
}

// TestReplicatedSoakReplayDeterministic: replication (anti-entropy,
// probes, promotion, fencing) must not cost the seeded soak its replay
// guarantee — same seed, byte-identical event trace.
func TestReplicatedSoakReplayDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 2; seed++ {
		a, _ := runReplSoak(t, seed, 2, replPlan(2, true))
		b, _ := runReplSoak(t, seed, 2, replPlan(2, true))
		if len(a) != len(b) {
			t.Fatalf("seed %d: replay produced %d events, first run %d", seed, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: traces diverge at event %d:\n  first:  %s\n  replay: %s", seed, i, a[i], b[i])
			}
		}
	}
}
