package grid_test

import (
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/resource"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// ckptCfg is the checkpoint-enabled recovery configuration the
// black-box tests share: fast heartbeats, snapshots every 2 s.
func ckptCfg() grid.Config {
	return grid.Config{
		HeartbeatEvery:  time.Second,
		RunDeadAfter:    3 * time.Second,
		OwnerDeadAfter:  3 * time.Second,
		CheckpointEvery: 2 * time.Second,
	}
}

// startAndFindRun submits one job from client node ci and returns the
// run node's address once execution starts.
func startAndFindRun(t *testing.T, c *cluster, ci int, spec grid.JobSpec) transport.Addr {
	t.Helper()
	c.do(ci, func(rt transport.Runtime) {
		if _, err := c.nodes[ci].Submit(rt, spec); err != nil {
			t.Fatalf("submit: %v", err)
		}
		for c.rec.count(grid.EvStarted) == 0 {
			rt.Sleep(time.Second)
		}
	})
	var runAddr transport.Addr
	c.rec.mu.Lock()
	for _, ev := range c.rec.evs {
		if ev.Kind == grid.EvStarted {
			runAddr = ev.Node
		}
	}
	c.rec.mu.Unlock()
	return runAddr
}

// TestCheckpointResumeAfterRunNodeCrash is the tentpole's core path:
// the run node snapshots progress, ships it to the owner over
// heartbeats, the owner detects the crash, and the rematch assignment
// carries the checkpoint so the replacement resumes instead of
// restarting from zero.
func TestCheckpointResumeAfterRunNodeCrash(t *testing.T) {
	c := newCluster(t, 4, 5, ckptCfg(), uniform)
	defer c.e.Shutdown()
	runAddr := startAndFindRun(t, c, 0, grid.JobSpec{Work: 30 * time.Second})
	victim := -1
	for i, h := range c.hosts {
		if h.Addr() == runAddr {
			victim = i
		}
	}
	if victim == 0 {
		t.Skip("job ran on the client node itself; crash would kill the client role")
	}
	// Let a few checkpoints be taken and shipped before the crash.
	c.e.RunFor(8 * time.Second)
	if c.rec.count(grid.EvCheckpointed) == 0 {
		t.Fatal("no checkpoints taken before the crash")
	}
	c.eps[victim].Crash()
	c.do(0, func(rt transport.Runtime) {
		if left := c.nodes[0].AwaitAll(rt, rt.Now()+5*time.Minute); left != 0 {
			t.Fatalf("job never recovered (%d unfinished)", left)
		}
	})
	if c.rec.count(grid.EvRunFailureDetected) == 0 {
		t.Fatal("owner never detected the run-node failure")
	}
	// The replacement must have resumed from owner-held progress.
	c.rec.mu.Lock()
	resumed := time.Duration(0)
	for _, ev := range c.rec.evs {
		if ev.Kind == grid.EvResumed && ev.Node != runAddr {
			resumed = ev.Progress
		}
	}
	c.rec.mu.Unlock()
	if resumed <= 0 {
		t.Fatal("replacement run node did not resume from a checkpoint")
	}
	if got := c.rec.count(grid.EvResultDelivered); got != 1 {
		t.Fatalf("%d results delivered, want exactly 1", got)
	}
}

// TestCheckpointSurvivesOwnerAndRunFailure chains both recovery paths:
// the owner dies (the adoption request carries the run node's newest
// snapshot to the new owner), then the run node dies too — the new
// owner's rematch must still resume the job from checkpointed progress.
func TestCheckpointSurvivesOwnerAndRunFailure(t *testing.T) {
	// Nodes 0 and 1 are too weak to run the job: 0 is the initial owner,
	// 1 the adoption target. Node 3 is the client; node 2 runs the job
	// first, and after its crash only the client node remains capable.
	c := newCluster(t, 4, 6, ckptCfg(), func(i int) (resource.Vector, string) {
		cpu := 5.0
		if i < 2 {
			cpu = 1
		}
		return resource.Vector{cpu, 4096, 100}, "linux"
	})
	defer c.e.Shutdown()
	cons := resource.Unconstrained.Require(resource.CPU, 2)
	runAddr := startAndFindRun(t, c, 3, grid.JobSpec{Cons: cons, Work: 40 * time.Second})
	if runAddr != c.hosts[2].Addr() {
		t.Skipf("job ran on %s, not the expected run node", runAddr)
	}
	// Checkpoints accumulate, then the owner dies.
	c.e.RunFor(8 * time.Second)
	c.eps[0].Crash()
	for i := 0; i < 60 && c.rec.count(grid.EvOwnerAdopted) == 0; i++ {
		c.e.RunFor(time.Second)
	}
	if c.rec.count(grid.EvOwnerAdopted) == 0 {
		t.Fatal("orphaned job never adopted")
	}
	// Now the run node dies; the new owner (node 1) must rematch with
	// the checkpoint it received through adoption or later heartbeats.
	c.eps[2].Crash()
	c.do(3, func(rt transport.Runtime) {
		if left := c.nodes[3].AwaitAll(rt, rt.Now()+6*time.Minute); left != 0 {
			t.Fatalf("job lost after owner+run failure (%d unfinished)", left)
		}
	})
	c.rec.mu.Lock()
	resumed := time.Duration(0)
	for _, ev := range c.rec.evs {
		if ev.Kind == grid.EvResumed && ev.Node == c.hosts[3].Addr() {
			resumed = ev.Progress
		}
	}
	c.rec.mu.Unlock()
	if resumed <= 0 {
		t.Fatal("job was not resumed from checkpointed progress after both failures")
	}
}

// TestOversizedCheckpointShipsViaRPC forces snapshot state past the
// heartbeat piggyback budget, so checkpoints must travel in standalone
// grid.checkpoint calls — and recovery must still resume from them.
func TestOversizedCheckpointShipsViaRPC(t *testing.T) {
	cfg := ckptCfg()
	cfg.CheckpointStateKB = 16 // 16 KB state vs the 4 KB piggyback cap
	c := newCluster(t, 4, 5, cfg, uniform)
	defer c.e.Shutdown()
	runAddr := startAndFindRun(t, c, 0, grid.JobSpec{Work: 30 * time.Second})
	victim := -1
	for i, h := range c.hosts {
		if h.Addr() == runAddr {
			victim = i
		}
	}
	if victim == 0 {
		t.Skip("job ran on the client node itself")
	}
	c.e.RunFor(8 * time.Second)
	c.eps[victim].Crash()
	c.do(0, func(rt transport.Runtime) {
		if left := c.nodes[0].AwaitAll(rt, rt.Now()+5*time.Minute); left != 0 {
			t.Fatalf("job never recovered (%d unfinished)", left)
		}
	})
	if c.rec.count(grid.EvResumed) == 0 {
		t.Fatal("oversized checkpoint never reached the owner (no resume)")
	}
}

// TestCheckpointDisabledByDefault: the zero config must reproduce the
// paper's restart-from-scratch behaviour — no snapshots, no resumes.
func TestCheckpointDisabledByDefault(t *testing.T) {
	cfg := grid.Config{HeartbeatEvery: time.Second, RunDeadAfter: 3 * time.Second}
	c := newCluster(t, 4, 5, cfg, uniform)
	defer c.e.Shutdown()
	runAddr := startAndFindRun(t, c, 0, grid.JobSpec{Work: 20 * time.Second})
	victim := -1
	for i, h := range c.hosts {
		if h.Addr() == runAddr {
			victim = i
		}
	}
	if victim != 0 {
		c.e.RunFor(5 * time.Second)
		c.eps[victim].Crash()
	}
	c.do(0, func(rt transport.Runtime) {
		if left := c.nodes[0].AwaitAll(rt, rt.Now()+5*time.Minute); left != 0 {
			t.Fatalf("%d unfinished", left)
		}
	})
	if n := c.rec.count(grid.EvCheckpointed); n != 0 {
		t.Fatalf("%d checkpoints taken with checkpointing off", n)
	}
	if n := c.rec.count(grid.EvResumed); n != 0 {
		t.Fatalf("%d resumes with checkpointing off", n)
	}
}

// TestCheckpointedSpeedScaling: snapshots are kept in nominal-work
// units, so resume on a faster node must still produce a correctly
// scaled runtime (no double scaling of the remaining work).
func TestCheckpointedSpeedScaling(t *testing.T) {
	cfg := ckptCfg()
	cfg.SpeedScaling = true
	c := newCluster(t, 1, 10, cfg, func(i int) (resource.Vector, string) {
		return resource.Vector{4, 1024, 10}, "linux" // cpu speed 4
	})
	defer c.e.Shutdown()
	var started, finished time.Duration
	c.do(0, func(rt transport.Runtime) {
		if _, err := c.nodes[0].Submit(rt, grid.JobSpec{Work: 40 * time.Second}); err != nil {
			t.Fatalf("submit: %v", err)
		}
		if left := c.nodes[0].AwaitAll(rt, rt.Now()+5*time.Minute); left != 0 {
			t.Fatal("unfinished")
		}
	})
	c.rec.mu.Lock()
	for _, ev := range c.rec.evs {
		if ev.Kind == grid.EvStarted {
			started = ev.At
		}
		if ev.Kind == grid.EvResultDelivered {
			finished = ev.At
		}
	}
	c.rec.mu.Unlock()
	elapsed := finished - started
	if elapsed < 9*time.Second || elapsed > 12*time.Second {
		t.Fatalf("scaled runtime %v, want ~10s (40s work / speed 4)", elapsed)
	}
}

// TestCheckpointPartitionedRunNotAbsorbed: after a rematch caused by a
// partition, the owner must reject checkpoints from the excluded (but
// still running) old node, so the replacement's progress is never
// overwritten by a zombie. Externally: exactly one delivery, and every
// recorded resume offset comes from the replacement chain.
func TestCheckpointPartitionedRunNotAbsorbed(t *testing.T) {
	c := newCluster(t, 4, 8, ckptCfg(), uniform)
	defer c.e.Shutdown()
	runAddr := startAndFindRun(t, c, 0, grid.JobSpec{Work: 25 * time.Second})
	c.e.RunFor(5 * time.Second)
	// Partition the run node away; it keeps executing and checkpointing
	// but its heartbeats and checkpoints no longer land anywhere.
	c.net.SetReachable(func(a, b simnet.Addr) bool {
		return a != simnet.Addr(runAddr) && b != simnet.Addr(runAddr)
	})
	c.do(0, func(rt transport.Runtime) {
		if left := c.nodes[0].AwaitAll(rt, rt.Now()+5*time.Minute); left != 0 {
			t.Fatalf("%d unfinished", left)
		}
	})
	c.net.SetReachable(nil)
	c.e.RunFor(2 * time.Minute)
	if got := c.rec.count(grid.EvResultDelivered); got != 1 {
		t.Fatalf("%d results delivered, want exactly 1", got)
	}
}
