package grid

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/transport"
)

// Observability wiring for the grid layer. Everything here is
// trace-neutral by construction: counters, histograms, tracer records,
// and hub publishes are synchronous in-memory updates that never touch
// the Runtime (no sleeps, no calls, no random draws), and no protocol
// decision ever reads observability state back. Attaching a Config.Obs
// to a deterministic simulation therefore leaves its recorded event
// trace byte-identical (regression: obs_soak_test.go).

// nodeObs holds the node's resolved instruments, bound once at
// construction so hot paths never touch the registry map. With
// observability off every field is nil and each instrument call is one
// predictable branch.
type nodeObs struct {
	tracer *obs.Tracer

	queueWait   *obs.Histogram // assignment -> execution start
	runSeconds  *obs.Histogram // execution start -> finish
	ckptBytes   *obs.Histogram // checkpoint snapshot payload sizes
	matchHops   *obs.Histogram // overlay messages per successful match
	matchVisits *obs.Histogram // nodes examined per successful match
	injectHops  *obs.Histogram // owner-routing hops per injection
	injectSecs  *obs.Histogram // route + owner-handoff latency per accepted injection

	hbSent   *obs.Counter // heartbeat RPCs sent (run-node side)
	hbAcked  *obs.Counter // heartbeat RPCs answered
	hbFailed *obs.Counter // heartbeat RPCs that errored
	hbRecv   *obs.Counter // heartbeat RPCs received (owner side)

	statusProbes *obs.Counter // status polls the client monitor actually sent
	notifyRecv   *obs.Counter // push notifications received (client side)

	events [len(eventNames)]*obs.Counter // per-EventKind lifecycle tallies
}

// ckptBytesBuckets spans KB-scale snapshots up to the low megabytes.
var ckptBytesBuckets = []float64{256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304}

func newNodeObs(n *Node, o *obs.Obs) *nodeObs {
	r := o.Registry()
	no := &nodeObs{
		tracer:       o.GetTracer(),
		queueWait:    r.Histogram("grid_queue_wait_seconds", obs.DefBucketsSeconds),
		runSeconds:   r.Histogram("grid_run_seconds", obs.DefBucketsSeconds),
		ckptBytes:    r.Histogram("grid_checkpoint_bytes", ckptBytesBuckets),
		matchHops:    r.Histogram("grid_match_hops", obs.DefBucketsHops),
		matchVisits:  r.Histogram("grid_match_visits", obs.DefBucketsHops),
		injectHops:   r.Histogram("grid_inject_hops", obs.DefBucketsHops),
		injectSecs:   r.Histogram("grid_inject_seconds", obs.DefBucketsSeconds),
		hbSent:       r.Counter("grid_heartbeats_sent_total"),
		hbAcked:      r.Counter("grid_heartbeats_acked_total"),
		hbFailed:     r.Counter("grid_heartbeat_failures_total"),
		hbRecv:       r.Counter("grid_heartbeats_received_total"),
		statusProbes: r.Counter("grid_status_probes_total"),
		notifyRecv:   r.Counter("grid_notifications_received_total"),
	}
	for k := range eventNames {
		no.events[k] = r.Counter("grid_events_total", "kind", eventNames[k])
	}
	// Pull-evaluated gauges: sampled only at scrape time. In multi-node
	// tests sharing one registry, re-registration is last-wins; live
	// deployments run one node per registry.
	r.GaugeFunc("grid_queue_depth", func() float64 { return float64(n.QueueLen()) })
	r.GaugeFunc("grid_owned_jobs", func() float64 { return float64(n.ownedCount()) })
	r.GaugeFunc("grid_pending_jobs", func() float64 { return float64(n.PendingCount()) })
	return no
}

// ownedCount returns how many jobs this node currently owns.
func (n *Node) ownedCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.owned)
}

// trace records one step of a job's lifecycle at this node and returns
// the context to propagate onward. Nil tracer or zero context pass
// through unchanged.
func (n *Node) trace(tc obs.TC, at time.Duration, stage string, attempt int, peer transport.Addr, note string) obs.TC {
	return n.om.tracer.Record(tc, at, n.host.Addr(), stage, attempt, peer, note)
}

// traceNote formats a trace annotation only when tracing is on, keeping
// Sprintf off the hot path of untraced runs.
func (n *Node) traceNote(format string, args ...any) string {
	if n.om.tracer == nil {
		return ""
	}
	return fmt.Sprintf(format, args...)
}

// traceVoteEvents mirrors the voting events of one grid.complete into
// the tracer, chaining hops off the replica's incoming context (falling
// back to the owner's stored context for untraced senders).
func (n *Node) traceVoteEvents(tc, fallback obs.TC, evs []Event) {
	if n.om.tracer == nil || len(evs) == 0 {
		return
	}
	if tc.Zero() {
		tc = fallback
	}
	for _, ev := range evs {
		peer := ev.Node
		if peer == n.host.Addr() {
			peer = ""
		}
		tc = n.trace(tc, ev.At, ev.Kind.String(), ev.Attempt, peer, "")
	}
}

// obsTee mirrors every lifecycle event into the metrics registry and
// the structured-event hub before handing it to the configured
// recorder. Installed only when Config.Obs is set.
type obsTee struct {
	n    *Node
	hub  *obs.EventHub
	next Recorder
}

// hubEvent is the JSONL shape of one lifecycle event on /events.
type hubEvent struct {
	Ev         string  `json:"ev"`
	Job        string  `json:"job"`
	Attempt    int     `json:"attempt,omitempty"`
	AtMS       int64   `json:"at_ms"`
	Node       string  `json:"node"`
	Hops       int     `json:"hops,omitempty"`
	ProgressMS int64   `json:"progress_ms,omitempty"`
	Digest     string  `json:"digest,omitempty"`
	Delta      float64 `json:"delta,omitempty"`
	Seq        int     `json:"seq,omitempty"`
}

// Record implements Recorder.
func (t *obsTee) Record(ev Event) {
	om := t.n.om
	if int(ev.Kind) < len(om.events) {
		om.events[ev.Kind].Inc()
	}
	switch ev.Kind {
	case EvInjected:
		om.injectHops.Observe(float64(ev.Hops))
	case EvMatched:
		om.matchHops.Observe(float64(ev.Match.Hops + ev.Match.WalkHops + ev.Match.Pushes + ev.Match.Escalations))
		om.matchVisits.Observe(float64(ev.Match.Visits))
	}
	t.hub.Publish(hubEvent{
		Ev: ev.Kind.String(), Job: ev.JobID.String(), Attempt: ev.Attempt,
		AtMS: ev.At.Milliseconds(), Node: string(ev.Node), Hops: ev.Hops,
		ProgressMS: ev.Progress.Milliseconds(), Digest: ev.Digest,
		Delta: ev.Delta, Seq: ev.Seq,
	})
	t.next.Record(ev)
}
