package grid_test

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/ids"
	"repro/internal/replica"
	"repro/internal/resource"
	"repro/internal/transport"
)

// Deterministic churn-handoff scenarios for the owner-state
// replication subsystem (DESIGN.md §10): promotion after an owner+run
// pair crash, restore after an owner restart, stale-owner fencing
// after the ring moves on, and replica-set re-targeting after a
// successor crash. These stage one transition each; the seeded soaks
// in repl_soak_test.go cover the combinatorics.

// handoffCaps keeps the client node out of the run-node candidate
// pool (its OS never matches linuxJob), so crashing "the run node"
// never collides with the protected client.
func handoffCaps(client int) func(i int) (resource.Vector, string) {
	return func(i int) (resource.Vector, string) {
		if i == client {
			return resource.Vector{5, 4096, 100}, "client-only"
		}
		return resource.Vector{5, 4096, 100}, "linux"
	}
}

func linuxJob(work time.Duration) grid.JobSpec {
	return grid.JobSpec{Cons: resource.Unconstrained.RequireOS("linux"), Work: work}
}

// submitAndStart submits one job from the client and runs the engine
// until some run node reports EvStarted; it returns the job GUID and
// the run node's address.
func submitAndStart(t *testing.T, c *cluster, client int, spec grid.JobSpec) (ids.ID, transport.Addr) {
	t.Helper()
	var jobID ids.ID
	c.do(client, func(rt transport.Runtime) {
		id, err := c.nodes[client].Submit(rt, spec)
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		jobID = id
		for c.rec.count(grid.EvStarted) == 0 {
			rt.Sleep(500 * time.Millisecond)
		}
	})
	var runAddr transport.Addr
	c.rec.mu.Lock()
	for _, ev := range c.rec.evs {
		if ev.Kind == grid.EvStarted {
			runAddr = ev.Node
		}
	}
	c.rec.mu.Unlock()
	return jobID, runAddr
}

// awaitAll drives the engine until the client's pending set drains.
func awaitAll(t *testing.T, c *cluster, client int) {
	t.Helper()
	c.do(client, func(rt transport.Runtime) {
		if left := c.nodes[client].AwaitAll(rt, rt.Now()+15*time.Minute); left != 0 {
			t.Fatalf("%d jobs never completed", left)
		}
	})
}

// runUntil advances the engine until cond holds or the budget runs out.
func runUntil(c *cluster, budget time.Duration, cond func() bool) bool {
	deadline := c.e.Now().Add(budget)
	for c.e.Now() < deadline {
		if cond() {
			return true
		}
		c.e.RunFor(time.Second)
	}
	return cond()
}

// replStatus fetches the replication status of jobID from node target
// via the grid.replicas RPC.
func replStatus(t *testing.T, c *cluster, client, target int, jobID ids.ID) replica.Status {
	t.Helper()
	var st replica.Status
	c.do(client, func(rt transport.Runtime) {
		resp, err := rt.Call(c.hosts[target].Addr(), grid.MReplicas, grid.ReplicasReq{JobID: jobID})
		if err != nil {
			t.Fatalf("grid.replicas on node %d: %v", target, err)
		}
		st = resp.(grid.ReplicasResp).Status
	})
	return st
}

// TestPairCrashPromotionHandsOver kills the owner and the run node at
// the same instant. A successor holding the replicated owner record
// must promote itself, rematch the job, and finish it — with zero
// client resubmissions.
func TestPairCrashPromotionHandsOver(t *testing.T) {
	const client = 4
	c := newReplClusterN(t, 5, 11, 2, soakCfg(), nil, handoffCaps(client))
	defer c.e.Shutdown()
	c.nodes[client].StartClientMonitor(10 * time.Second)

	_, runAddr := submitAndStart(t, c, client, linuxJob(20*time.Second))
	c.e.RunFor(2500 * time.Millisecond) // let anti-entropy seed the successors

	c.eps[0].Crash() // the switchable overlay routes ownership to n000
	for i, h := range c.hosts {
		if h.Addr() == runAddr && i != 0 {
			c.eps[i].Crash()
		}
	}

	awaitAll(t, c, client)
	if n := c.rec.count(grid.EvResubmitted); n != 0 {
		t.Errorf("client resubmitted %d times; replication should have absorbed the double failure", n)
	}
	if c.rec.count(grid.EvPromoted) == 0 {
		t.Error("no replica promoted itself after the owner died")
	}
	if c.rec.count(grid.EvHandoff) == 0 {
		t.Error("promotion never re-established an execution path (no handoff event)")
	}
	if n := c.rec.count(grid.EvResultDelivered); n != 1 {
		t.Errorf("%d results delivered, want exactly 1", n)
	}
}

// TestOwnerRestartRestores crashes the owner briefly — shorter than
// ReplicaDeadAfter, so no successor promotes — and restarts it with
// wiped state. The replicas' probe round must detect the amnesiac
// owner and push its records back (EvRestored), after which it
// re-attaches to the run node and the job completes.
func TestOwnerRestartRestores(t *testing.T) {
	const client = 4
	c := newReplClusterN(t, 5, 12, 2, soakCfg(), nil, handoffCaps(client))
	defer c.e.Shutdown()
	c.nodes[client].StartClientMonitor(10 * time.Second)

	submitAndStart(t, c, client, linuxJob(20*time.Second))
	c.e.RunFor(2500 * time.Millisecond)

	c.eps[0].Crash()
	c.e.RunFor(1200 * time.Millisecond) // well inside ReplicaDeadAfter (3s)
	soakHarness{c}.Restart(0)

	awaitAll(t, c, client)
	if c.rec.count(grid.EvRestored) == 0 {
		t.Error("restarted owner never had its records restored by its replicas")
	}
	if n := c.rec.count(grid.EvPromoted); n != 0 {
		t.Errorf("%d promotions during a sub-threshold outage, want 0", n)
	}
	if n := c.rec.count(grid.EvResubmitted); n != 0 {
		t.Errorf("client resubmitted %d times, want 0", n)
	}
	if n := c.rec.count(grid.EvResultDelivered); n != 1 {
		t.Errorf("%d results delivered, want exactly 1", n)
	}
}

// TestStaleOwnerFencedDemotes stages the split-brain case: the owner
// crashes, the ring moves on (scripted ownerIdx), a successor takes
// over, and then the old owner's endpoint comes back with its state
// intact. The new owner's anti-entropy must fence the stale owner —
// it demotes (EvDemoted) instead of fighting for the job, and the job
// still terminates exactly once.
func TestStaleOwnerFencedDemotes(t *testing.T) {
	const client = 4
	ownerIdx := &atomic.Int32{} // ring owner starts at n000
	// k=4 so the new owner's successor set wraps around to include the
	// old owner once its endpoint returns.
	c := newReplClusterN(t, 5, 13, 4, soakCfg(), ownerIdx, handoffCaps(client))
	defer c.e.Shutdown()
	c.nodes[client].StartClientMonitor(10 * time.Second)

	submitAndStart(t, c, client, linuxJob(25*time.Second))
	c.e.RunFor(2500 * time.Millisecond)

	c.eps[0].Crash()
	ownerIdx.Store(1) // the ring hands n000's arc to n001

	// The surviving run node adopts via the overlay and/or n001
	// promotes off its replica — either way n001 opens a new epoch.
	if !runUntil(c, 30*time.Second, func() bool {
		return c.rec.count(grid.EvPromoted)+c.rec.count(grid.EvOwnerAdopted) > 0
	}) {
		t.Fatal("no takeover after the owner crash")
	}
	c.e.RunFor(2 * time.Second)

	// Endpoint-only restart: the stale owner returns with its owned
	// map intact but the ring no longer assigns it the job's key.
	c.eps[0].Restart()
	if !runUntil(c, 30*time.Second, func() bool {
		return c.rec.count(grid.EvDemoted) > 0
	}) {
		t.Fatal("stale owner was never fenced and demoted")
	}

	awaitAll(t, c, client)
	if n := c.rec.count(grid.EvResubmitted); n != 0 {
		t.Errorf("client resubmitted %d times, want 0", n)
	}
	if n := c.rec.count(grid.EvResultDelivered); n != 1 {
		t.Errorf("%d results delivered, want exactly 1", n)
	}
}

// TestReplicaSetRetargets crashes one replica and checks — through the
// grid.replicas RPC — that the owner re-targets its pushes to the next
// live successor and gets an ack at the current (epoch, version).
func TestReplicaSetRetargets(t *testing.T) {
	const client = 5
	c := newReplClusterN(t, 6, 14, 2, soakCfg(), nil, handoffCaps(client))
	defer c.e.Shutdown()
	c.nodes[client].StartClientMonitor(10 * time.Second)

	jobID, _ := submitAndStart(t, c, client, linuxJob(30*time.Second))
	c.e.RunFor(2500 * time.Millisecond)

	st := replStatus(t, c, client, 0, jobID)
	if !st.Known || st.Owner != c.hosts[0].Addr() {
		t.Fatalf("owner status before crash: %+v", st)
	}
	peers := func(st replica.Status) map[transport.Addr]bool {
		m := map[transport.Addr]bool{}
		for _, p := range st.Peers {
			m[p.Addr] = p.Acked
		}
		return m
	}
	before := peers(st)
	if !before[c.hosts[1].Addr()] || !before[c.hosts[2].Addr()] {
		t.Fatalf("replica set before crash not acked on n001+n002: %+v", st.Peers)
	}

	c.eps[1].Crash()
	c.e.RunFor(3 * time.Second) // a push round re-targets and re-acks

	st = replStatus(t, c, client, 0, jobID)
	after := peers(st)
	if _, ok := after[c.hosts[1].Addr()]; ok {
		t.Errorf("crashed replica n001 still in the successor set: %+v", st.Peers)
	}
	if !after[c.hosts[2].Addr()] || !after[c.hosts[3].Addr()] {
		t.Errorf("replica set did not re-target to n002+n003 with acks: %+v", st.Peers)
	}

	awaitAll(t, c, client)
	if n := c.rec.count(grid.EvResubmitted); n != 0 {
		t.Errorf("client resubmitted %d times, want 0", n)
	}
	if n := c.rec.count(grid.EvResultDelivered); n != 1 {
		t.Errorf("%d results delivered, want exactly 1", n)
	}
}
