package grid

import (
	"bytes"
	"encoding/gob"
	"time"

	"repro/internal/ids"
	"repro/internal/transport"
)

// Push notifications (DESIGN.md §13). With Config.Notify set, every
// node publishes the job-state transitions it drives — own, match,
// start, checkpoint, vote, completion, adoption, promotion, resubmit
// — to the job lineage's pub/sub topic, and the client side
// subscribes on submit. The client monitor then treats a recent
// notification as proof of life and skips the status poll, demoting
// per-job polling to a silence-only fallback.
//
// Everything here is trace-neutral: publishes enqueue under the
// broker's own lock and ship on broker-owned activities, OnNotification
// only stamps a freshness clock the monitor reads, and with Notify nil
// none of it exists. Protocol outcomes are identical either way.

// NotifyTopic returns the pub/sub topic of a job lineage: the
// attempt-0 GUID, stable across resubmissions — the same key that
// names the lineage's trace — so one subscription spans every attempt.
func NotifyTopic(client transport.Addr, seq int) ids.ID {
	return TraceID(client, seq)
}

// JobUpdate is the payload of one push notification: a job-state
// transition as the publishing node saw it.
type JobUpdate struct {
	JobID   ids.ID // the attempt's GUID (not the lineage topic)
	Attempt int
	Kind    string         // EventKind.String()
	Node    transport.Addr // the node the transition concerns (run node for matched/started)
	From    transport.Addr // the publishing node
	At      time.Duration
	// Progress carries work accounting where the transition has any
	// (checkpointed, started-with-resume).
	Progress time.Duration
}

// EncodeJobUpdate serializes a JobUpdate for the pub/sub payload.
func EncodeJobUpdate(u JobUpdate) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(u); err != nil {
		panic("grid: encode job update: " + err.Error())
	}
	return buf.Bytes()
}

// DecodeJobUpdate parses a pub/sub payload produced by EncodeJobUpdate.
func DecodeJobUpdate(data []byte) (JobUpdate, error) {
	var u JobUpdate
	err := gob.NewDecoder(bytes.NewReader(data)).Decode(&u)
	return u, err
}

// notifyTransition publishes one job-state transition to the job
// lineage's topic. Nil-safe (no-op without a broker) and
// non-blocking: the broker queues the payload and ships it from its
// own activities, so the caller's timing — the protocol hot path —
// is untouched.
func (n *Node) notifyTransition(at time.Duration, prof Profile, kind EventKind, node transport.Addr, progress time.Duration) {
	if n.cfg.Notify == nil {
		return
	}
	n.cfg.Notify.Publish(NotifyTopic(prof.Client, prof.Seq), EncodeJobUpdate(JobUpdate{
		JobID:    prof.ID,
		Attempt:  prof.Attempt,
		Kind:     kind.String(),
		Node:     node,
		From:     n.host.Addr(),
		At:       at,
		Progress: progress,
	}))
}

// OnNotification is the client-side sink for fresh pub/sub events
// (wired as the broker's OnEvent callback). It stamps the pending
// job's freshness clock: the monitor treats a recent notification as
// proof that someone alive is driving the job and skips the status
// poll. Notifications never alter protocol state beyond that clock —
// the probe/resubmit recovery path is untouched.
func (n *Node) OnNotification(rt transport.Runtime, topic ids.ID, payload []byte) {
	u, err := DecodeJobUpdate(payload)
	if err != nil {
		return
	}
	now := rt.Now()
	n.mu.Lock()
	if pp, ok := n.pending[u.JobID]; ok && !pp.got {
		pp.lastNotify = now
	}
	n.NotifyRecv++
	n.mu.Unlock()
	n.om.notifyRecv.Inc()
	// Wake blocked result waiters (the workflow runner): a pushed
	// transition may be the delivery-completing event they sleep on.
	n.wakeResultWaiters()
}
