package grid_test

import (
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/ids"
	"repro/internal/resource"
	"repro/internal/transport"
)

// fairShareOrder submits a burst of jobs from node 1 (the heavy client)
// and one job from node 2 (the light client) to a single run node, and
// returns the position of the light client's job in the start order.
func fairShareOrder(t *testing.T, fair bool) int {
	t.Helper()
	cfg := grid.Config{FairShare: fair, IdlePoll: 100 * time.Millisecond}
	// 3 nodes: n0 is the only capable run node; n1 and n2 are clients.
	c := newCluster(t, 3, 41, cfg, func(i int) (resource.Vector, string) {
		cpu := 1.0
		if i == 0 {
			cpu = 10
		}
		return resource.Vector{cpu, 4096, 100}, "linux"
	})
	defer c.e.Shutdown()
	cons := resource.Unconstrained.Require(resource.CPU, 5)

	var lightJob ids.ID
	c.do(1, func(rt transport.Runtime) {
		for i := 0; i < 5; i++ {
			if _, err := c.nodes[1].Submit(rt, grid.JobSpec{Cons: cons, Work: 10 * time.Second}); err != nil {
				t.Fatalf("heavy submit: %v", err)
			}
		}
	})
	c.do(2, func(rt transport.Runtime) {
		// The light client arrives after the burst is queued.
		rt.Sleep(2 * time.Second)
		var err error
		lightJob, err = c.nodes[2].Submit(rt, grid.JobSpec{Cons: cons, Work: 10 * time.Second})
		if err != nil {
			t.Fatalf("light submit: %v", err)
		}
		if left := c.nodes[2].AwaitAll(rt, rt.Now()+10*time.Minute); left != 0 {
			t.Fatalf("light job unfinished")
		}
	})
	c.rec.mu.Lock()
	defer c.rec.mu.Unlock()
	pos, seen := -1, 0
	for _, ev := range c.rec.evs {
		if ev.Kind != grid.EvStarted {
			continue
		}
		seen++
		if ev.JobID == lightJob && pos < 0 {
			pos = seen
		}
	}
	return pos
}

func TestFairShareServesLightClientEarly(t *testing.T) {
	fifoPos := fairShareOrder(t, false)
	fairPos := fairShareOrder(t, true)
	// Under FIFO the light job waits behind the whole burst; under fair
	// share it runs as soon as the current job finishes.
	if fifoPos < 5 {
		t.Fatalf("FIFO started the light job at position %d; expected near the end", fifoPos)
	}
	if fairPos > 3 {
		t.Fatalf("fair share started the light job at position %d; expected near the front", fairPos)
	}
}
