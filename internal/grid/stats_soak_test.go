package grid_test

import (
	"testing"

	"repro/internal/sim"
)

// The kernel stats collector (DESIGN.md §14) promises the same
// invariant the obs layer pins: instrumentation lives strictly outside
// the virtual timeline, so a seeded run replays byte-identically with
// stats on or off. This soak proves it on the full grid stack — chord
// maintenance, heartbeats, fault injection, crashes and partitions all
// running — not just on a toy kernel scenario.

func TestStatsNeutralSoakReplay(t *testing.T) {
	seeds := int64(3)
	if testing.Short() {
		seeds = 1
	}
	for seed := int64(1); seed <= seeds; seed++ {
		plain := runSoakCfg(t, seed, soakCfg())
		var st *sim.Stats
		instrumented := runSoakPrep(t, seed, soakCfg(), func(c *cluster) {
			st = c.e.EnableStats()
		})
		if len(plain) != len(instrumented) {
			t.Fatalf("seed %d: stats-on run produced %d events, stats-off %d",
				seed, len(instrumented), len(plain))
		}
		for i := range plain {
			if plain[i] != instrumented[i] {
				t.Fatalf("seed %d: traces diverge at event %d:\n  off: %s\n  on:  %s",
					seed, i, plain[i], instrumented[i])
			}
		}
		assertStatsPopulated(t, seed, st)
	}
}

// assertStatsPopulated keeps the neutrality check non-vacuous: a
// collector that silently stopped counting would also "never perturb
// the timeline".
func assertStatsPopulated(t *testing.T, seed int64, st *sim.Stats) {
	t.Helper()
	if st == nil {
		t.Fatalf("seed %d: no stats collector", seed)
	}
	if st.EventsFired == 0 || st.EventsScheduled == 0 {
		t.Fatalf("seed %d: no events counted: %+v", seed, st)
	}
	if st.Switches == 0 || st.Spawns == 0 {
		t.Fatalf("seed %d: no proc activity counted: switches=%d spawns=%d",
			seed, st.Switches, st.Spawns)
	}
	// Cluster construction schedules a handful of events before the prep
	// hook can enable stats, so fired may exceed scheduled by that
	// startup handful — but never by more (the exact fired+stopped ==
	// scheduled identity is pinned in internal/sim's unit tests, where
	// the collector exists from the engine's birth).
	if excess := st.EventsFired + st.EventsStopped - st.EventsScheduled; excess < 0 || excess > 100 {
		t.Fatalf("seed %d: fired %d + stopped %d vs scheduled %d (excess %d)",
			seed, st.EventsFired, st.EventsStopped, st.EventsScheduled, excess)
	}
	if st.PeakQueue == 0 || st.PeakProcs == 0 {
		t.Fatalf("seed %d: peaks not tracked: queue=%d procs=%d", seed, st.PeakQueue, st.PeakProcs)
	}
	if st.TopTag() == "" {
		t.Fatalf("seed %d: no attribution buckets", seed)
	}
	// The soak exercises the grid RPC and heartbeat layers; both must
	// show up in the per-layer attribution, in the obs vocabulary.
	for _, layer := range []string{"grid", "heartbeat"} {
		ts := st.ByTag[layer]
		if ts == nil || ts.Fired == 0 {
			t.Fatalf("seed %d: layer %q missing from attribution: %+v", seed, layer, st.ByTag)
		}
	}
}
