package grid

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/transport"
)

// Batched injection (DESIGN.md §11). One grid.injectbatch RPC carries
// many submissions to an injection node, which routes every item and
// then performs one grid.ownbatch handoff per distinct owner instead of
// one grid.own per job. Results are positional: Results[i] answers
// Items[i], and a per-item failure (routing, handoff, backpressure)
// never poisons its batch-mates.

// InjectBatch performs the injection-node role for a whole batch
// locally. Exposed, like Inject, for clients that are themselves grid
// nodes; the wire handler delegates here.
func (n *Node) InjectBatch(rt transport.Runtime, reqs []InjectReq) []InjectResult {
	began := rt.Now()
	results := make([]InjectResult, len(reqs))

	// Route every item first, grouping accepted ones by owner. Owner
	// iteration order is sorted so the sim replays deterministically.
	type pending struct {
		idx  int
		prof Profile
		tc   obs.TC
	}
	byOwner := make(map[transport.Addr][]pending)
	for i, req := range reqs {
		prof := Profile{
			ID:          JobGUID(req.Client, req.Seq, req.Attempt),
			Client:      req.Client,
			Seq:         req.Seq,
			Attempt:     req.Attempt,
			Cons:        req.Cons,
			Work:        req.Work,
			InputKB:     req.InputKB,
			OutputKB:    req.OutputKB,
			Input:       req.Input,
			CkptBias:    req.CkptBias,
			CarryOutput: req.CarryOutput,
		}
		tc := req.TC
		if tc.Zero() {
			tc = obs.TC{ID: TraceID(req.Client, req.Seq)}
		}
		owner, hops, err := n.overlay.RouteJob(rt, prof.ID, prof.Cons)
		if err != nil {
			results[i].Err = fmt.Sprintf("route job %s: %v", prof.ID.Short(), err)
			continue
		}
		tc = n.trace(tc, rt.Now(), "injected", prof.Attempt, owner, n.traceNote("hops=%d batch", hops))
		n.rec.Record(Event{Kind: EvInjected, JobID: prof.ID, Attempt: prof.Attempt, At: rt.Now(), Node: n.host.Addr(), Hops: hops})
		results[i].JobID = prof.ID
		results[i].Owner = owner
		results[i].Hops = hops
		byOwner[owner] = append(byOwner[owner], pending{idx: i, prof: prof, tc: tc})
	}
	owners := make([]transport.Addr, 0, len(byOwner))
	for o := range byOwner {
		owners = append(owners, o)
	}
	sort.Slice(owners, func(i, j int) bool { return owners[i] < owners[j] })

	for _, owner := range owners {
		group := byOwner[owner]
		if owner == n.host.Addr() {
			for _, p := range group {
				if err := n.ownJob(rt, p.prof, p.tc); err != nil {
					setBatchErr(&results[p.idx], err)
					continue
				}
				results[p.idx].Reps = n.replTargets()
			}
			continue
		}
		breq := OwnBatchReq{Items: make([]OwnReq, len(group))}
		for k, p := range group {
			breq.Items[k] = OwnReq{Prof: p.prof, TC: p.tc}
		}
		raw, err := rt.Call(owner, MOwnBatch, breq)
		if err != nil {
			for _, p := range group {
				results[p.idx].Err = fmt.Sprintf("hand job %s to owner %s: %v", p.prof.ID.Short(), owner, err)
			}
			continue
		}
		bresp := raw.(OwnBatchResp)
		for k, p := range group {
			if k >= len(bresp.Results) {
				results[p.idx].Err = fmt.Sprintf("owner %s: short batch response", owner)
				continue
			}
			results[p.idx].Reps = bresp.Results[k].Reps
			results[p.idx].RetryAfterMS = bresp.Results[k].RetryAfterMS
		}
	}
	n.om.injectSecs.Observe((rt.Now() - began).Seconds())
	return results
}

// setBatchErr renders a local ownJob failure into a positional result:
// backpressure becomes the retry-after hint, anything else an opaque
// per-item error string.
func setBatchErr(res *InjectResult, err error) {
	if ra, ok := err.(*RetryAfterError); ok {
		res.RetryAfterMS = ra.After.Milliseconds()
		return
	}
	res.Err = err.Error()
}

func (n *Node) handleInjectBatch(rt transport.Runtime, from transport.Addr, req any) (any, error) {
	return InjectBatchResp{Results: n.InjectBatch(rt, req.(InjectBatchReq).Items)}, nil
}

// resultErr converts one positional InjectResult back into the typed
// error space of Inject, so retry classification is identical on both
// the single and batched paths.
func (r InjectResult) resultErr() error {
	if r.RetryAfterMS > 0 {
		return &RetryAfterError{After: time.Duration(r.RetryAfterMS) * time.Millisecond}
	}
	if r.Err != "" {
		return fmt.Errorf("%w: %s", errRoute, r.Err)
	}
	return nil
}
