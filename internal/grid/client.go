package grid

import (
	"errors"
	"sort"
	"time"

	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/resource"
	"repro/internal/transport"
)

// --- client role ---

// JobSpec is a client-side job description.
type JobSpec struct {
	Cons     resource.Constraints
	Work     time.Duration
	InputKB  int
	OutputKB int
	// Input is the job's input payload: the run node seeds its
	// resumable state from these bytes, and recovery ships them onward
	// inside ordinary checkpoints (see Profile.Input). The flow engine
	// sets it to the delivered output of the stage's dependencies.
	Input []byte
	// CkptBias is the workflow-aware checkpoint hint (Profile.CkptBias);
	// honored only under Config.CheckpointWorkflowAware.
	CkptBias float64
	// CarryOutput asks the run node to attach the job's derived output
	// bytes to the delivered Result (Profile.CarryOutput).
	CarryOutput bool
}

// Submit inserts a new job through this node acting as its own
// injection node, and tracks it for resubmission. It returns the job's
// GUID.
func (n *Node) Submit(rt transport.Runtime, spec JobSpec) (ids.ID, error) {
	n.mu.Lock()
	n.clientSeq++
	seq := n.clientSeq
	n.mu.Unlock()
	return n.submitAttempt(rt, spec, seq, 0)
}

func (n *Node) submitAttempt(rt transport.Runtime, spec JobSpec, seq, attempt int) (ids.ID, error) {
	req, jobID := n.prepareSubmit(rt, spec, seq, attempt)
	if n.cfg.InjectFlushWindow > 0 {
		return n.submitViaBatcher(rt, req, jobID)
	}
	return n.injectWithRetry(rt, req, jobID)
}

// prepareSubmit registers the pending entry and records the submission
// before anything touches the network, so the client monitor can
// recover the job even if every inject attempt afterwards fails.
func (n *Node) prepareSubmit(rt transport.Runtime, spec JobSpec, seq, attempt int) (InjectReq, ids.ID) {
	req := InjectReq{
		Client:      n.host.Addr(),
		Seq:         seq,
		Attempt:     attempt,
		Cons:        spec.Cons,
		Work:        spec.Work,
		InputKB:     spec.InputKB,
		OutputKB:    spec.OutputKB,
		Input:       spec.Input,
		CkptBias:    spec.CkptBias,
		CarryOutput: spec.CarryOutput,
	}
	jobID := JobGUID(req.Client, seq, attempt)
	n.mu.Lock()
	n.pending[jobID] = &pendingJob{
		seq:         seq,
		attempt:     attempt,
		cons:        spec.Cons,
		work:        spec.Work,
		inputKB:     spec.InputKB,
		outputKB:    spec.OutputKB,
		input:       spec.Input,
		ckptBias:    spec.CkptBias,
		carryOutput: spec.CarryOutput,
		submitAt:    rt.Now(),
	}
	n.mu.Unlock()
	// With push notifications on, subscribe to the lineage topic once,
	// at the first attempt; resubmissions publish to the same topic, so
	// the subscription spans them. The broker only queues the intent
	// here — the subscribe RPC goes out on its own activities.
	if n.cfg.Notify != nil && attempt == 0 {
		n.cfg.Notify.Subscribe(NotifyTopic(req.Client, seq))
	}
	// The trace spans the whole lineage: its ID is the attempt-0 GUID,
	// so resubmissions chain onto the same trace.
	req.TC = n.trace(obs.TC{ID: TraceID(req.Client, seq)}, rt.Now(), "submitted", attempt,
		"", n.traceNote("work=%s", spec.Work))
	// Seq and the expected digest give collectors a ground-truth channel:
	// the digest an honest execution of this job must produce, compared
	// against EvResultDelivered's digest to count accepted-wrong results.
	n.rec.Record(Event{
		Kind: EvSubmitted, JobID: jobID, Attempt: attempt, At: rt.Now(), Node: n.host.Addr(),
		Seq: seq, Digest: ResultDigest(req.Client, seq, spec.OutputKB, ""),
	})
	return req, jobID
}

// injectWithRetry drives one submission through Inject with classified
// retries, bounded by Config.InjectRetries total attempts:
//
//   - owner backpressure (*RetryAfterError): honor the hint — sleep the
//     advertised window plus jitter, then try again;
//   - routing failures and delivery-level errors (timeout, unreachable,
//     down): the routed owner candidate is likely dead; each retry
//     re-routes (under walk placement, a fresh walk), which lands
//     elsewhere. Without the retry the job sits ownerless until the
//     monitor's patience expires and resubmits it — a full patience
//     window of latency for a submit-time failure;
//   - anything else is a definitive answer from a live handler:
//     retrying the same request cannot change it, so fail fast.
func (n *Node) injectWithRetry(rt transport.Runtime, req InjectReq, jobID ids.ID) (ids.ID, error) {
	resp, err := n.Inject(rt, req)
	for tries := 1; err != nil && tries < n.cfg.InjectRetries; tries++ {
		switch cls, ra := classifyInjectErr(err); cls {
		case injectRetryAfter:
			rt.Sleep(jitterAfter(rt, ra))
		case injectTransient:
			rt.Sleep(time.Second)
		default:
			return jobID, err
		}
		resp, err = n.Inject(rt, req)
	}
	if err != nil {
		return jobID, err
	}
	n.recordInjected(jobID, resp.Owner, resp.Reps)
	return resp.JobID, nil
}

// recordInjected re-aims the pending entry at the owner that accepted
// the job so the monitor probes the right place first.
func (n *Node) recordInjected(jobID ids.ID, owner transport.Addr, reps []transport.Addr) {
	n.mu.Lock()
	if pp, ok := n.pending[jobID]; ok {
		pp.owner = owner
		pp.reps = reps
	}
	n.mu.Unlock()
}

// injectClass is the retry policy bucket one inject error falls into.
type injectClass int

const (
	// injectPermanent: a definitive answer from a live handler;
	// retrying the identical request cannot change it.
	injectPermanent injectClass = iota
	// injectTransient: routing or delivery failed; a retry re-routes
	// and lands elsewhere, so it is worth taking.
	injectTransient
	// injectRetryAfter: the owner shed the job under backpressure and
	// told us when to come back.
	injectRetryAfter
)

// classifyInjectErr sorts one inject failure into its retry bucket,
// returning the owner's suggested wait for backpressure rejections.
func classifyInjectErr(err error) (injectClass, time.Duration) {
	var ra *RetryAfterError
	switch {
	case errors.As(err, &ra):
		return injectRetryAfter, ra.After
	case errors.Is(err, errRoute), transport.Transient(err):
		return injectTransient, 0
	}
	return injectPermanent, 0
}

// jitterAfter spreads retry-after waits by up to +50% so clients that
// were rejected together do not return together. The draw comes from
// the caller's runtime stream, keeping simulation deterministic.
func jitterAfter(rt transport.Runtime, after time.Duration) time.Duration {
	if after <= 0 {
		return time.Millisecond
	}
	return after + time.Duration(rt.Rand().Int63n(int64(after)/2+1))
}

// SubmitAll inserts many jobs at once through the batched injection
// path: one grid.ownbatch handoff per distinct owner instead of one
// round trip per job (plus grid.injectbatch when submitted through a
// remote injection node via the wire). Every job is registered for
// monitoring before injection, so jobs whose inject attempts all fail
// are still recovered by the client monitor. It returns a GUID per
// spec, positionally, plus the first inject error (informational — the
// monitor will resubmit those jobs).
func (n *Node) SubmitAll(rt transport.Runtime, specs []JobSpec) ([]ids.ID, error) {
	jobIDs := make([]ids.ID, len(specs))
	reqs := make([]InjectReq, len(specs))
	n.mu.Lock()
	base := n.clientSeq
	n.clientSeq += len(specs)
	n.mu.Unlock()
	for i, spec := range specs {
		reqs[i], jobIDs[i] = n.prepareSubmit(rt, spec, base+i+1, 0)
	}
	var firstErr error
	chunk := n.cfg.InjectBatchMax
	for lo := 0; lo < len(reqs); lo += chunk {
		hi := lo + chunk
		if hi > len(reqs) {
			hi = len(reqs)
		}
		results := n.injectBatchWithRetry(rt, reqs[lo:hi])
		for k, res := range results {
			if err := res.resultErr(); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			n.recordInjected(jobIDs[lo+k], res.Owner, res.Reps)
		}
	}
	return jobIDs, firstErr
}

// injectBatchWithRetry applies the same classified retry policy as
// injectWithRetry to a batch, re-injecting only the items that failed.
// Batch item errors are route or handoff failures (both transient by
// construction — owner admission is reported as RetryAfterMS, not an
// error), so each round sleeps the longer of the transient backoff and
// the largest jittered retry-after hint among the retryable items.
func (n *Node) injectBatchWithRetry(rt transport.Runtime, reqs []InjectReq) []InjectResult {
	results := n.InjectBatch(rt, reqs)
	for tries := 1; tries < n.cfg.InjectRetries; tries++ {
		var retry []int
		var wait time.Duration
		for i := range results {
			err := results[i].resultErr()
			if err == nil {
				continue
			}
			retry = append(retry, i)
			var ra *RetryAfterError
			if errors.As(err, &ra) {
				if a := jitterAfter(rt, ra.After); a > wait {
					wait = a
				}
			} else if wait < time.Second {
				wait = time.Second
			}
		}
		if len(retry) == 0 {
			break
		}
		rt.Sleep(wait)
		sub := make([]InjectReq, len(retry))
		for k, i := range retry {
			sub[k] = reqs[i]
		}
		subres := n.InjectBatch(rt, sub)
		for k, i := range retry {
			results[i] = subres[k]
		}
	}
	return results
}

// --- submit-side coalescing ---

// batchItem is one submission waiting in the flush-window queue.
type batchItem struct {
	req   InjectReq
	res   InjectResult
	done  bool
	ready chan struct{} // closed when the flush resolved res/done
}

// submitViaBatcher coalesces concurrent Submit calls into batches: the
// first enqueuer after a flush becomes the flusher, sleeps the window,
// and injects everything queued behind it; later enqueuers wait for
// their item to resolve. On a runtime that can block on channels (the
// live transport) the waiter parks on the item's ready channel and
// wakes exactly when the flush resolves it; a simulated proc may
// suspend only via its Runtime, so there the wait stays a bounded
// sleep-poll against the virtual clock.
func (n *Node) submitViaBatcher(rt transport.Runtime, req InjectReq, jobID ids.ID) (ids.ID, error) {
	it := &batchItem{req: req, ready: make(chan struct{})}
	n.batchMu.Lock()
	n.batchQ = append(n.batchQ, it)
	flusher := len(n.batchQ) == 1
	n.batchMu.Unlock()
	if flusher {
		rt.Sleep(n.cfg.InjectFlushWindow)
		n.flushBatch(rt)
	}
	if w, ok := rt.(transport.ChanWaiter); ok {
		w.AwaitChan(it.ready)
	} else {
		poll := n.cfg.InjectFlushWindow / 4
		if poll < time.Millisecond {
			poll = time.Millisecond
		}
		for {
			n.batchMu.Lock()
			done := it.done
			n.batchMu.Unlock()
			if done {
				break
			}
			rt.Sleep(poll)
		}
	}
	if err := it.res.resultErr(); err != nil {
		return jobID, err
	}
	n.recordInjected(jobID, it.res.Owner, it.res.Reps)
	return it.res.JobID, nil
}

// flushBatch drains the queue and injects it in InjectBatchMax chunks,
// resolving each waiter's item as its chunk completes. Submissions
// that arrive while a flush is in progress find an empty queue and
// elect the next flusher.
func (n *Node) flushBatch(rt transport.Runtime) {
	n.batchMu.Lock()
	items := n.batchQ
	n.batchQ = nil
	n.batchMu.Unlock()
	chunk := n.cfg.InjectBatchMax
	for lo := 0; lo < len(items); lo += chunk {
		hi := lo + chunk
		if hi > len(items) {
			hi = len(items)
		}
		part := items[lo:hi]
		reqs := make([]InjectReq, len(part))
		for k, it := range part {
			reqs[k] = it.req
		}
		results := n.injectBatchWithRetry(rt, reqs)
		n.batchMu.Lock()
		for k, it := range part {
			it.res = results[k]
			it.done = true
			close(it.ready)
		}
		n.batchMu.Unlock()
	}
}

// AwaitAll blocks until every job this node submitted has a result or
// the deadline passes; it returns the number still pending.
func (n *Node) AwaitAll(rt transport.Runtime, deadline time.Duration) int {
	for {
		n.mu.Lock()
		waiting := 0
		for _, p := range n.pending {
			if !p.got {
				waiting++
			}
		}
		n.mu.Unlock()
		if waiting == 0 {
			return 0
		}
		if rt.Now() >= deadline {
			return waiting
		}
		rt.Sleep(500 * time.Millisecond)
	}
}

// PendingCount returns how many submitted jobs still lack results.
func (n *Node) PendingCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	waiting := 0
	for _, p := range n.pending {
		if !p.got {
			waiting++
		}
	}
	return waiting
}

// SeqStatus is the client-visible state of one submitted job lineage,
// keyed by the client-local seq — stable across resubmissions, unlike
// the per-attempt GUID (a resubmission re-keys the pending map under a
// fresh GUID, which is exactly the bug the old workflow harvester had).
type SeqStatus struct {
	JobID    ids.ID // current attempt's GUID
	Attempt  int
	Done     bool
	Finished time.Duration // delivery instant; zero until Done
	Res      Result
}

// StatusBySeq reports the lineage with the given client-local seq.
func (n *Node) StatusBySeq(seq int) (SeqStatus, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for id, p := range n.pending {
		if p.seq != seq {
			continue
		}
		return SeqStatus{JobID: id, Attempt: p.attempt, Done: p.got, Finished: p.resultAt, Res: p.res}, true
	}
	return SeqStatus{}, false
}

// SeqFor reports the client-local seq of a job this node submitted.
// Valid for the GUID any attempt was submitted under, as long as that
// attempt is the lineage's current one.
func (n *Node) SeqFor(jobID ids.ID) (int, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if p, ok := n.pending[jobID]; ok {
		return p.seq, true
	}
	return 0, false
}

// resultWakeChan registers a one-shot waiter that is pulsed on the next
// result arrival or push notification for this client's pending jobs.
func (n *Node) resultWakeChan() chan struct{} {
	ch := make(chan struct{}, 1)
	n.mu.Lock()
	n.resultWaiters = append(n.resultWaiters, ch)
	n.mu.Unlock()
	return ch
}

// wakeResultWaiters pulses and drops every registered waiter. Sends are
// non-blocking: a waiter that raced away (its timeout already pulsed
// the buffered slot) must not stall delivery.
func (n *Node) wakeResultWaiters() {
	n.mu.Lock()
	ws := n.resultWaiters
	n.resultWaiters = nil
	n.mu.Unlock()
	for _, ch := range ws {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// AwaitResultEvent parks the caller until a result or push notification
// arrives for one of this client's jobs, or maxWait passes — the
// push-first replacement for fixed-interval harvest polling. On a
// runtime that can block on channels (the live transport) the caller
// sleeps until the next event with maxWait as the silence fallback; a
// simulated proc may suspend only via its Runtime, so there the wait is
// a bounded virtual-clock sleep (IdlePoll, capped by maxWait) and the
// caller's loop re-checks its condition each round.
func (n *Node) AwaitResultEvent(rt transport.Runtime, maxWait time.Duration) {
	if maxWait <= 0 || maxWait > n.cfg.NotifySilence {
		// Cap at the silence window: an event can slip between a caller's
		// condition check and the waiter registering below, so an unbounded
		// park would turn that race into a stall. Callers loop and re-check
		// their condition each wake, so the cap costs only a re-scan.
		maxWait = n.cfg.NotifySilence
	}
	if w, ok := rt.(transport.ChanWaiter); ok {
		ch := n.resultWakeChan()
		t := time.AfterFunc(maxWait, func() {
			select {
			case ch <- struct{}{}:
			default:
			}
		})
		w.AwaitChan(ch)
		t.Stop()
		return
	}
	poll := n.cfg.IdlePoll
	if poll > maxWait {
		poll = maxWait
	}
	rt.Sleep(poll)
}

func (n *Node) handleResult(rt transport.Runtime, from transport.Addr, req any) (any, error) {
	r := req.(ResultReq)
	n.acceptResult(rt, r.Res, r.TC)
	return ResultResp{}, nil
}

// acceptResult records a delivered result (first attempt wins; later
// duplicates from recovery re-runs are ignored). It returns the trace
// context after recording the delivery.
func (n *Node) acceptResult(rt transport.Runtime, res Result, tc obs.TC) obs.TC {
	n.mu.Lock()
	p, ok := n.pending[res.JobID]
	fresh := ok && !p.got
	var work time.Duration
	seq := 0
	if fresh {
		p.got = true
		p.resultAt = rt.Now()
		p.res = res
		work = p.work
		seq = p.seq
	}
	n.mu.Unlock()
	if fresh {
		n.wakeResultWaiters()
		if n.cfg.Notify != nil {
			n.cfg.Notify.Unsubscribe(NotifyTopic(n.host.Addr(), seq))
		}
		if tc.Zero() {
			tc = obs.TC{ID: TraceID(n.host.Addr(), seq)}
		}
		tc = n.trace(tc, rt.Now(), "result-delivered", res.Attempt, res.RunNode, "")
		n.rec.Record(Event{
			Kind: EvResultDelivered, JobID: res.JobID, Attempt: res.Attempt,
			At: rt.Now(), Node: res.RunNode, Progress: work, Digest: res.Digest,
		})
	}
	return tc
}

// StartClientMonitor launches the resubmission watchdog: if a job has
// produced no result and its current owner no longer knows it (both
// owner and run node lost it), the client resubmits with a fresh GUID.
// resubmitAfter is the patience beyond the job's own expected runtime.
func (n *Node) StartClientMonitor(resubmitAfter time.Duration) {
	n.host.Go("grid.client", func(rt transport.Runtime) {
		for {
			rt.Sleep(n.cfg.HeartbeatEvery * 2)
			now := rt.Now()
			type check struct {
				id   ids.ID
				p    pendingJob
				wait time.Duration
			}
			var checks []check
			n.mu.Lock()
			for id, p := range n.pending {
				if p.got {
					continue
				}
				patience := p.work + resubmitAfter
				if now-p.submitAt <= patience {
					continue
				}
				// A recent push notification is proof of life: someone is
				// demonstrably driving the job, so grant the same patience
				// extension a Known status probe would have produced —
				// without the RPC. Polling fires only on silence.
				if n.cfg.Notify != nil && p.lastNotify > 0 && now-p.lastNotify <= n.cfg.NotifySilence {
					p.submitAt = now
					continue
				}
				checks = append(checks, check{id: id, p: *p})
			}
			n.mu.Unlock()
			// Deterministic order: map iteration would randomize which
			// job's status RPCs hit the network first (same discipline as
			// monitorTick's sorted scan of n.owned).
			sort.Slice(checks, func(i, j int) bool { return checks[i].id.Less(checks[j].id) })
			for _, c := range checks {
				n.checkAndMaybeResubmit(rt, c.id, c.p)
			}
		}
	})
}

// checkAndMaybeResubmit asks whether anyone still tracks the job; only
// when nobody answers for it is the job resubmitted as a new attempt.
// Probes go out in order of who is most likely to know: the owner
// recorded at injection (re-aimed by earlier probes), then its replica
// chain — with replication on, any surviving member keeps guarding the
// record and a promoted successor is one of them — and last the
// overlay's current routing for the GUID, which under walk placement
// lands on an arbitrary nearby node.
func (n *Node) checkAndMaybeResubmit(rt transport.Runtime, jobID ids.ID, p pendingJob) {
	probed := make(map[transport.Addr]bool, len(p.reps)+2)
	direct := make([]transport.Addr, 0, len(p.reps)+1)
	if p.owner != "" {
		direct = append(direct, p.owner)
	}
	direct = append(direct, p.reps...)
	// With transport health available, probe likely-live candidates
	// first; breaker-open peers stay in the list (their probes fail
	// fast) but no longer head-of-line block the ones that can answer.
	direct = n.demoteDown(direct)
	for _, c := range direct {
		if probed[c] {
			continue
		}
		probed[c] = true
		if n.statusKnown(rt, jobID, p, c) {
			return
		}
	}
	if routed, _, err := n.overlay.RouteJob(rt, jobID, p.cons); err == nil && !probed[routed] {
		if n.statusKnown(rt, jobID, p, routed) {
			return
		}
	}
	// Nobody owns the job anymore: resubmit under a fresh GUID.
	n.mu.Lock()
	if pp, ok := n.pending[jobID]; !ok || pp.got {
		n.mu.Unlock()
		return
	}
	delete(n.pending, jobID)
	n.mu.Unlock()
	n.trace(n.om.tracer.Context(TraceID(n.host.Addr(), p.seq)), rt.Now(), "resubmitted", p.attempt, "",
		n.traceNote("next_attempt=%d", p.attempt+1))
	n.rec.Record(Event{Kind: EvResubmitted, JobID: jobID, Attempt: p.attempt, At: rt.Now(), Node: n.host.Addr()})
	n.notifyTransition(rt.Now(), Profile{ID: jobID, Client: n.host.Addr(), Seq: p.seq, Attempt: p.attempt},
		EvResubmitted, n.host.Addr(), 0)
	spec := JobSpec{
		Cons: p.cons, Work: p.work, InputKB: p.inputKB, OutputKB: p.outputKB,
		Input: p.input, CkptBias: p.ckptBias, CarryOutput: p.carryOutput,
	}
	_, _ = n.submitAttempt(rt, spec, p.seq, p.attempt+1)
}

// statusKnown probes one candidate for the job's status. On a Known
// answer it re-aims the pending entry at whatever owner and replica
// chain the responder reports (empty when a replica answered on a live
// owner's behalf) and moves the job into watch cadence: a job that is
// confirmed alive but already past its expected runtime is exactly the
// one the client wants prompt news about, so instead of granting a
// whole fresh patience window the monitor re-probes once per grace
// interval until the result lands. This recurring poll traffic is what
// the notification overlay eliminates — a pushed transition inside the
// silence window skips the probe entirely.
func (n *Node) statusKnown(rt transport.Runtime, jobID ids.ID, p pendingJob, addr transport.Addr) bool {
	// The status probe carries the lineage's context for wire
	// uniformity; the responder records nothing for it (a query, not a
	// lifecycle step).
	sreq := StatusReq{JobID: jobID, TC: n.om.tracer.Context(TraceID(n.host.Addr(), p.seq))}
	n.mu.Lock()
	n.StatusProbes++
	n.mu.Unlock()
	n.om.statusProbes.Inc()
	var raw any
	var err error
	if addr == n.host.Addr() {
		raw, err = n.handleStatus(rt, n.host.Addr(), sreq)
	} else {
		raw, err = rt.Call(addr, MStatus, sreq)
	}
	if err != nil {
		return false
	}
	resp := raw.(StatusResp)
	if !resp.Known {
		return false
	}
	n.mu.Lock()
	if pp, ok := n.pending[jobID]; ok {
		// Backdate the clock by the runtime share of the patience budget
		// so only the grace (resubmitAfter) portion separates probes.
		pp.submitAt = rt.Now() - pp.work
		if resp.Owner != "" {
			pp.owner = resp.Owner
			pp.reps = resp.Reps
		}
	}
	n.mu.Unlock()
	return true
}
