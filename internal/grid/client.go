package grid

import (
	"sort"
	"time"

	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/resource"
	"repro/internal/transport"
)

// --- client role ---

// JobSpec is a client-side job description.
type JobSpec struct {
	Cons     resource.Constraints
	Work     time.Duration
	InputKB  int
	OutputKB int
}

// Submit inserts a new job through this node acting as its own
// injection node, and tracks it for resubmission. It returns the job's
// GUID.
func (n *Node) Submit(rt transport.Runtime, spec JobSpec) (ids.ID, error) {
	n.mu.Lock()
	n.clientSeq++
	seq := n.clientSeq
	n.mu.Unlock()
	return n.submitAttempt(rt, spec, seq, 0)
}

func (n *Node) submitAttempt(rt transport.Runtime, spec JobSpec, seq, attempt int) (ids.ID, error) {
	req := InjectReq{
		Client:   n.host.Addr(),
		Seq:      seq,
		Attempt:  attempt,
		Cons:     spec.Cons,
		Work:     spec.Work,
		InputKB:  spec.InputKB,
		OutputKB: spec.OutputKB,
	}
	jobID := JobGUID(req.Client, seq, attempt)
	n.mu.Lock()
	n.pending[jobID] = &pendingJob{
		seq:      seq,
		attempt:  attempt,
		cons:     spec.Cons,
		work:     spec.Work,
		inputKB:  spec.InputKB,
		outputKB: spec.OutputKB,
		submitAt: rt.Now(),
	}
	n.mu.Unlock()
	// The trace spans the whole lineage: its ID is the attempt-0 GUID,
	// so resubmissions chain onto the same trace.
	req.TC = n.trace(obs.TC{ID: TraceID(req.Client, seq)}, rt.Now(), "submitted", attempt,
		"", n.traceNote("work=%s", spec.Work))
	// Seq and the expected digest give collectors a ground-truth channel:
	// the digest an honest execution of this job must produce, compared
	// against EvResultDelivered's digest to count accepted-wrong results.
	n.rec.Record(Event{
		Kind: EvSubmitted, JobID: jobID, Attempt: attempt, At: rt.Now(), Node: n.host.Addr(),
		Seq: seq, Digest: ResultDigest(req.Client, seq, spec.OutputKB, ""),
	})
	resp, err := n.Inject(rt, req)
	// An injection error usually means the routed owner candidate is
	// dead or unreachable; each retry re-routes (under walk placement, a
	// fresh walk), which lands elsewhere. Without the retry the job sits
	// ownerless until the monitor's patience expires and resubmits it —
	// a full patience window of latency for a submit-time failure.
	for tries := 1; err != nil && tries < 3; tries++ {
		rt.Sleep(time.Second)
		resp, err = n.Inject(rt, req)
	}
	if err != nil {
		return jobID, err
	}
	n.mu.Lock()
	if pp, ok := n.pending[jobID]; ok {
		pp.owner = resp.Owner
		pp.reps = resp.Reps
	}
	n.mu.Unlock()
	return resp.JobID, nil
}

// AwaitAll blocks until every job this node submitted has a result or
// the deadline passes; it returns the number still pending.
func (n *Node) AwaitAll(rt transport.Runtime, deadline time.Duration) int {
	for {
		n.mu.Lock()
		waiting := 0
		for _, p := range n.pending {
			if !p.got {
				waiting++
			}
		}
		n.mu.Unlock()
		if waiting == 0 {
			return 0
		}
		if rt.Now() >= deadline {
			return waiting
		}
		rt.Sleep(500 * time.Millisecond)
	}
}

// PendingCount returns how many submitted jobs still lack results.
func (n *Node) PendingCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	waiting := 0
	for _, p := range n.pending {
		if !p.got {
			waiting++
		}
	}
	return waiting
}

func (n *Node) handleResult(rt transport.Runtime, from transport.Addr, req any) (any, error) {
	r := req.(ResultReq)
	n.acceptResult(rt, r.Res, r.TC)
	return ResultResp{}, nil
}

// acceptResult records a delivered result (first attempt wins; later
// duplicates from recovery re-runs are ignored). It returns the trace
// context after recording the delivery.
func (n *Node) acceptResult(rt transport.Runtime, res Result, tc obs.TC) obs.TC {
	n.mu.Lock()
	p, ok := n.pending[res.JobID]
	fresh := ok && !p.got
	var work time.Duration
	seq := 0
	if fresh {
		p.got = true
		p.resultAt = rt.Now()
		work = p.work
		seq = p.seq
	}
	n.mu.Unlock()
	if fresh {
		if tc.Zero() {
			tc = obs.TC{ID: TraceID(n.host.Addr(), seq)}
		}
		tc = n.trace(tc, rt.Now(), "result-delivered", res.Attempt, res.RunNode, "")
		n.rec.Record(Event{
			Kind: EvResultDelivered, JobID: res.JobID, Attempt: res.Attempt,
			At: rt.Now(), Node: res.RunNode, Progress: work, Digest: res.Digest,
		})
	}
	return tc
}

// StartClientMonitor launches the resubmission watchdog: if a job has
// produced no result and its current owner no longer knows it (both
// owner and run node lost it), the client resubmits with a fresh GUID.
// resubmitAfter is the patience beyond the job's own expected runtime.
func (n *Node) StartClientMonitor(resubmitAfter time.Duration) {
	n.host.Go("grid.client", func(rt transport.Runtime) {
		for {
			rt.Sleep(n.cfg.HeartbeatEvery * 2)
			now := rt.Now()
			type check struct {
				id   ids.ID
				p    pendingJob
				wait time.Duration
			}
			var checks []check
			n.mu.Lock()
			for id, p := range n.pending {
				if p.got {
					continue
				}
				patience := p.work*2 + resubmitAfter
				if now-p.submitAt > patience {
					checks = append(checks, check{id: id, p: *p})
				}
			}
			n.mu.Unlock()
			// Deterministic order: map iteration would randomize which
			// job's status RPCs hit the network first (same discipline as
			// monitorTick's sorted scan of n.owned).
			sort.Slice(checks, func(i, j int) bool { return checks[i].id.Less(checks[j].id) })
			for _, c := range checks {
				n.checkAndMaybeResubmit(rt, c.id, c.p)
			}
		}
	})
}

// checkAndMaybeResubmit asks whether anyone still tracks the job; only
// when nobody answers for it is the job resubmitted as a new attempt.
// Probes go out in order of who is most likely to know: the owner
// recorded at injection (re-aimed by earlier probes), then its replica
// chain — with replication on, any surviving member keeps guarding the
// record and a promoted successor is one of them — and last the
// overlay's current routing for the GUID, which under walk placement
// lands on an arbitrary nearby node.
func (n *Node) checkAndMaybeResubmit(rt transport.Runtime, jobID ids.ID, p pendingJob) {
	probed := make(map[transport.Addr]bool, len(p.reps)+2)
	direct := make([]transport.Addr, 0, len(p.reps)+1)
	if p.owner != "" {
		direct = append(direct, p.owner)
	}
	direct = append(direct, p.reps...)
	for _, c := range direct {
		if probed[c] {
			continue
		}
		probed[c] = true
		if n.statusKnown(rt, jobID, p, c) {
			return
		}
	}
	if routed, _, err := n.overlay.RouteJob(rt, jobID, p.cons); err == nil && !probed[routed] {
		if n.statusKnown(rt, jobID, p, routed) {
			return
		}
	}
	// Nobody owns the job anymore: resubmit under a fresh GUID.
	n.mu.Lock()
	if pp, ok := n.pending[jobID]; !ok || pp.got {
		n.mu.Unlock()
		return
	}
	delete(n.pending, jobID)
	n.mu.Unlock()
	n.trace(n.om.tracer.Context(TraceID(n.host.Addr(), p.seq)), rt.Now(), "resubmitted", p.attempt, "",
		n.traceNote("next_attempt=%d", p.attempt+1))
	n.rec.Record(Event{Kind: EvResubmitted, JobID: jobID, Attempt: p.attempt, At: rt.Now(), Node: n.host.Addr()})
	spec := JobSpec{Cons: p.cons, Work: p.work, InputKB: p.inputKB, OutputKB: p.outputKB}
	_, _ = n.submitAttempt(rt, spec, p.seq, p.attempt+1)
}

// statusKnown probes one candidate for the job's status. On a Known
// answer it extends the monitor's patience by resetting the submit
// clock and re-aims the pending entry at whatever owner and replica
// chain the responder reports (empty when a replica answered on a live
// owner's behalf).
func (n *Node) statusKnown(rt transport.Runtime, jobID ids.ID, p pendingJob, addr transport.Addr) bool {
	// The status probe carries the lineage's context for wire
	// uniformity; the responder records nothing for it (a query, not a
	// lifecycle step).
	sreq := StatusReq{JobID: jobID, TC: n.om.tracer.Context(TraceID(n.host.Addr(), p.seq))}
	var raw any
	var err error
	if addr == n.host.Addr() {
		raw, err = n.handleStatus(rt, n.host.Addr(), sreq)
	} else {
		raw, err = rt.Call(addr, MStatus, sreq)
	}
	if err != nil {
		return false
	}
	resp := raw.(StatusResp)
	if !resp.Known {
		return false
	}
	n.mu.Lock()
	if pp, ok := n.pending[jobID]; ok {
		pp.submitAt = rt.Now()
		if resp.Owner != "" {
			pp.owner = resp.Owner
			pp.reps = resp.Reps
		}
	}
	n.mu.Unlock()
	return true
}
