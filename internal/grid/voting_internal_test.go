package grid

// White-box tests for the quorum-voting state machine and for the
// zombie-complete regression on the legacy (non-voting) path. Like the
// recovery tests, these drive handlers directly against a stub host so
// specific interleavings are exact rather than scheduled.

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/transport"
	"repro/internal/trust"
)

// TestCompleteFromExcludedRunNodeIgnored is the complete-side mirror of
// the excluded-heartbeat rule: after the owner disavows a run node (or
// rematches the job elsewhere), a late grid.complete from that node
// must not retire the job — the replacement is still running it, and
// accepting the zombie would strand the replacement's eventual result.
func TestCompleteFromExcludedRunNodeIgnored(t *testing.T) {
	id := ids.HashString("job")
	var completed int
	rec := RecorderFunc(func(ev Event) {
		if ev.Kind == EvCompleted {
			completed++
		}
	})
	n, _ := newStubNode(rec, Config{})
	n.owned[id] = &ownedJob{
		prof:     Profile{ID: id, Client: "client"},
		run:      "new-run",
		matched:  true,
		excluded: []transport.Addr{"old-run"},
	}
	rt := &stubRT{now: time.Minute, rng: rand.New(rand.NewSource(1))}

	// Disavowed node's complete: ignored.
	if _, err := n.handleComplete(rt, "old-run", CompleteReq{JobID: id, Run: "old-run"}); err != nil {
		t.Fatalf("handleComplete: %v", err)
	}
	if _, ok := n.owned[id]; !ok {
		t.Fatal("zombie complete retired the job")
	}
	// Displaced (not formally excluded) node: also ignored.
	if _, err := n.handleComplete(rt, "elsewhere", CompleteReq{JobID: id, Run: "elsewhere"}); err != nil {
		t.Fatalf("handleComplete: %v", err)
	}
	if _, ok := n.owned[id]; !ok {
		t.Fatal("displaced run node's complete retired the job")
	}
	if completed != 0 {
		t.Fatalf("EvCompleted recorded %d times for zombie completes", completed)
	}
	// The current run node's complete still works.
	if _, err := n.handleComplete(rt, "new-run", CompleteReq{JobID: id, Run: "new-run"}); err != nil {
		t.Fatalf("handleComplete: %v", err)
	}
	if _, ok := n.owned[id]; ok {
		t.Fatal("legitimate complete did not retire the job")
	}
	if completed != 1 {
		t.Fatalf("EvCompleted recorded %d times, want 1", completed)
	}
}

// votingJob plants an owned voting job with the given replicas.
func votingJob(n *Node, id ids.ID, reps ...transport.Addr) *ownedJob {
	job := &ownedJob{prof: Profile{ID: id, Client: "client"}, vote: newVoteState()}
	for _, r := range reps {
		job.vote.reps = append(job.vote.reps, &replica{run: r})
	}
	n.owned[id] = job
	return job
}

func vote(t *testing.T, n *Node, rt transport.Runtime, id ids.ID, run transport.Addr, digest string) {
	t.Helper()
	req := CompleteReq{JobID: id, Run: run, Digest: digest, Res: Result{JobID: id, RunNode: run, Digest: digest}}
	if _, err := n.handleComplete(rt, run, req); err != nil {
		t.Fatalf("vote from %s: %v", run, err)
	}
}

// TestVotingQuorumAcceptsAndScores walks a 3-replica/quorum-2 vote with
// one dissenter: the majority digest must win, the result must be
// queued for relay, and reputation must move for all three voters.
func TestVotingQuorumAcceptsAndScores(t *testing.T) {
	id := ids.HashString("job")
	tb := trust.New(trust.Config{})
	rec := &eventLog{}
	n, _ := newStubNode(rec.record(), Config{Replicas: 3, Quorum: 2, Trust: tb})
	job := votingJob(n, id, "r1", "r2", "r3")
	rt := &stubRT{now: time.Minute, rng: rand.New(rand.NewSource(2))}

	good := ResultDigest("client", 0, 1, "")
	bad := CorruptDigest(good, "r2")
	vote(t, n, rt, id, "r1", good)
	vote(t, n, rt, id, "r2", bad)
	if job.relay != nil {
		t.Fatal("result accepted before quorum")
	}
	vote(t, n, rt, id, "r3", good)

	if job.vote.winner != good {
		t.Fatalf("winner %q, want the majority digest", job.vote.winner)
	}
	if job.relay == nil || job.relay.Digest != good {
		t.Fatal("accepted result not queued for relay")
	}
	if got := rec.count(EvVoted); got != 3 {
		t.Fatalf("EvVoted %d, want 3", got)
	}
	if got := rec.count(EvAccepted); got != 1 {
		t.Fatalf("EvAccepted %d, want 1", got)
	}
	if got := rec.count(EvRejected); got != 1 {
		t.Fatalf("EvRejected %d, want 1", got)
	}
	if got := rec.count(EvReputation); got != 3 {
		t.Fatalf("EvReputation %d, want 3", got)
	}
	if s := tb.Score("r2"); s >= tb.InitialScore() {
		t.Fatalf("dissenter score %v not penalized", s)
	}
	if s := tb.Score("r1"); s <= tb.InitialScore() {
		t.Fatalf("agreeing replica score %v not credited", s)
	}
}

// TestVotingIgnoresZombieAndDuplicateVotes: excluded replicas, never-
// assigned senders, and double votes must not move the tally.
func TestVotingIgnoresZombieAndDuplicateVotes(t *testing.T) {
	id := ids.HashString("job")
	rec := &eventLog{}
	n, _ := newStubNode(rec.record(), Config{Replicas: 2, Quorum: 2})
	job := votingJob(n, id, "r1", "r2")
	job.excluded = []transport.Addr{"zombie"}
	job.vote.reps = append(job.vote.reps, &replica{run: "zombie"}) // stale entry
	rt := &stubRT{now: time.Minute, rng: rand.New(rand.NewSource(3))}

	d := ResultDigest("client", 0, 1, "")
	vote(t, n, rt, id, "zombie", d)   // excluded: ignored
	vote(t, n, rt, id, "stranger", d) // never a replica: ignored
	vote(t, n, rt, id, "r1", d)
	vote(t, n, rt, id, "r1", d) // duplicate: ignored
	if got := rec.count(EvVoted); got != 1 {
		t.Fatalf("EvVoted %d, want 1 (zombie/stranger/dup must not count)", got)
	}
	if job.vote.votes[d] != 1 {
		t.Fatalf("tally %d, want 1", job.vote.votes[d])
	}
	if job.vote.winner != "" {
		t.Fatal("quorum reached off ignored votes")
	}
}

// TestVotingLateVoteAfterAcceptance: a settled vote stands; stragglers
// are scored against the winner but cannot change the outcome.
func TestVotingLateVoteAfterAcceptance(t *testing.T) {
	id := ids.HashString("job")
	tb := trust.New(trust.Config{})
	rec := &eventLog{}
	n, _ := newStubNode(rec.record(), Config{Replicas: 3, Quorum: 2, Trust: tb})
	job := votingJob(n, id, "r1", "r2", "r3")
	rt := &stubRT{now: time.Minute, rng: rand.New(rand.NewSource(4))}

	good := ResultDigest("client", 0, 1, "")
	vote(t, n, rt, id, "r1", good)
	vote(t, n, rt, id, "r2", good) // quorum
	accepted := *job.relay
	vote(t, n, rt, id, "r3", CorruptDigest(good, "r3")) // straggling dissent

	if got := rec.count(EvAccepted); got != 1 {
		t.Fatalf("EvAccepted %d, want 1", got)
	}
	if job.relay.RunNode != accepted.RunNode || job.relay.Digest != accepted.Digest {
		t.Fatal("late vote replaced the accepted result")
	}
	if got := rec.count(EvRejected); got != 1 {
		t.Fatalf("late dissenter not rejected (EvRejected %d)", got)
	}
	if s := tb.Score("r3"); s >= tb.InitialScore() {
		t.Fatalf("late dissenter score %v not penalized", s)
	}
}

// TestVoteTickDisavowsDeadReplica: a replica silent past RunDeadAfter
// is excluded (withholding saboteurs and crashes look identical) and a
// refill is requested.
func TestVoteTickDisavowsDeadReplica(t *testing.T) {
	id := ids.HashString("job")
	n, _ := newStubNode(nil, Config{Replicas: 2, Quorum: 2, RunDeadAfter: 3 * time.Second})
	job := votingJob(n, id, "live", "dead")
	now := 20 * time.Second
	job.vote.reps[0].lastHB = now - time.Second
	job.vote.reps[1].lastHB = now - 10*time.Second

	var dead []deadRun
	fill := n.voteTickLocked(now, id, job, &dead)
	if len(dead) != 1 {
		t.Fatalf("%d dead replicas flagged, want 1", len(dead))
	}
	if !job.isExcluded("dead") {
		t.Fatal("dead replica not excluded")
	}
	if job.vote.hasReplica("dead") {
		t.Fatal("dead replica still in the replica set")
	}
	if !fill {
		t.Fatal("no refill requested after losing a replica")
	}
}

// TestFillReplicasGivesUpWhenQuorumInfeasible: with the assignment
// budget spent and no path to quorum, the owner must abandon the job
// (EvQuorumFailed + EvGaveUp) so the client's monitor resubmits.
func TestFillReplicasGivesUpWhenQuorumInfeasible(t *testing.T) {
	id := ids.HashString("job")
	rec := &eventLog{}
	cfg := Config{Replicas: 3, Quorum: 2, MaxRematch: 2}
	n, _ := newStubNode(rec.record(), cfg)
	job := votingJob(n, id) // no replicas left
	job.vote.assigns = n.maxAssigns()
	rt := &stubRT{now: time.Minute, rng: rand.New(rand.NewSource(5))}

	n.fillReplicas(rt, id)

	if _, ok := n.owned[id]; ok {
		t.Fatal("infeasible voting job not abandoned")
	}
	if rec.count(EvQuorumFailed) != 1 || rec.count(EvGaveUp) != 1 {
		t.Fatalf("EvQuorumFailed=%d EvGaveUp=%d, want 1/1", rec.count(EvQuorumFailed), rec.count(EvGaveUp))
	}
}

// TestHandleProbeHonestAndByzantine: probes answer with the known
// digest unless the Byzantine hook corrupts or withholds them.
func TestHandleProbeHonestAndByzantine(t *testing.T) {
	rt := &stubRT{rng: rand.New(rand.NewSource(6))}
	honest, _ := newStubNode(nil, Config{})
	raw, err := honest.handleProbe(rt, "owner", ProbeJobReq{Nonce: "o/1", Work: time.Second})
	if err != nil {
		t.Fatalf("honest probe: %v", err)
	}
	if raw.(ProbeJobResp).Digest != ProbeDigest("o/1") {
		t.Fatal("honest probe digest wrong")
	}

	lying, _ := newStubNode(nil, Config{
		Byzantine: func(ids.ID, int) (bool, bool) { return true, false },
	})
	raw, err = lying.handleProbe(rt, "owner", ProbeJobReq{Nonce: "o/2"})
	if err != nil {
		t.Fatalf("lying probe: %v", err)
	}
	if raw.(ProbeJobResp).Digest == ProbeDigest("o/2") {
		t.Fatal("Byzantine node answered the probe correctly")
	}

	silent, _ := newStubNode(nil, Config{
		Byzantine: func(ids.ID, int) (bool, bool) { return false, true },
	})
	if _, err := silent.handleProbe(rt, "owner", ProbeJobReq{Nonce: "o/3"}); err == nil {
		t.Fatal("withholding node answered the probe")
	}
}

// TestMaybeProbeRedeemsAndCondemns: a correct probe answer lifts a
// blacklisted peer's score, a corrupt one sinks it further.
func TestMaybeProbeRedeemsAndCondemns(t *testing.T) {
	tb := trust.New(trust.Config{})
	rec := &eventLog{}
	n, _ := newStubNode(rec.record(), Config{ProbeEvery: 10 * time.Second, Trust: tb})
	// Sink a peer below the blacklist threshold.
	tb.Disagree("suspect")
	tb.Disagree("suspect")
	if !tb.Blacklisted("suspect") {
		t.Fatal("setup: suspect not blacklisted")
	}
	before := tb.Score("suspect")

	rt := &stubRT{now: time.Minute, rng: rand.New(rand.NewSource(7))}
	answer := func(to transport.Addr, method string, req any) (any, error) {
		if method != MProbe {
			t.Fatalf("unexpected call %s", method)
		}
		return ProbeJobResp{Digest: ProbeDigest(req.(ProbeJobReq).Nonce)}, nil
	}
	rt.call = answer

	n.maybeProbe(rt, rt.now) // first call only arms the timer
	rt.now += 11 * time.Second
	n.maybeProbe(rt, rt.now)
	if got := tb.Score("suspect"); got <= before {
		t.Fatalf("correct probe answer did not redeem: %v -> %v", before, got)
	}
	if rec.count(EvProbed) != 1 {
		t.Fatalf("EvProbed %d, want 1", rec.count(EvProbed))
	}

	// Now a corrupt answer.
	before = tb.Score("suspect")
	rt.call = func(to transport.Addr, method string, req any) (any, error) {
		return ProbeJobResp{Digest: "garbage"}, nil
	}
	rt.now += 11 * time.Second
	n.maybeProbe(rt, rt.now)
	if got := tb.Score("suspect"); got >= before {
		t.Fatalf("corrupt probe answer did not penalize: %v -> %v", before, got)
	}
}

// eventLog is a tiny thread-safe recorder for white-box tests.
type eventLog struct{ evs []Event }

func (l *eventLog) record() Recorder {
	return RecorderFunc(func(ev Event) { l.evs = append(l.evs, ev) })
}

func (l *eventLog) count(kind EventKind) int {
	n := 0
	for _, ev := range l.evs {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}
