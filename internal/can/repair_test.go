package can

import (
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/transport"
)

func TestResolveOverlapSmallerIDWins(t *testing.T) {
	m := newMesh(t, 2, 20, Config{}, capsUniform)
	defer m.e.Shutdown()
	WarmStart(m.nodes, 0)
	a, b := m.nodes[0], m.nodes[1]
	// Force a conflict: give both nodes an identical extra zone.
	extra := Zone{Lo: Point{0.1, 0.1, 0.1, 0.1}, Hi: Point{0.2, 0.2, 0.2, 0.2}}
	a.mu.Lock()
	a.zones = append(a.zones, extra)
	aID := a.ref.ID
	a.mu.Unlock()
	b.mu.Lock()
	b.zones = append(b.zones, extra)
	bID := b.ref.ID
	b.mu.Unlock()

	// The node with the larger ID must yield when it absorbs the
	// smaller-ID node's claim.
	loser, winner := a, b
	if bID.Less(aID) {
		loser, winner = a, b
	} else {
		loser, winner = b, a
	}
	loser.mu.Lock()
	loser.resolveOverlapLocked(winner.info())
	zonesAfter := len(loser.zones)
	loser.mu.Unlock()
	if zonesAfter != 1 {
		t.Fatalf("loser kept %d zones, want 1 (the conflict dropped)", zonesAfter)
	}
	// The winner absorbing the loser's info keeps both zones.
	winner.mu.Lock()
	winner.resolveOverlapLocked(loser.info())
	kept := len(winner.zones)
	winner.mu.Unlock()
	if kept != 2 {
		t.Fatalf("winner kept %d zones, want 2", kept)
	}
}

func TestGossipLearnsTwoHopNeighbors(t *testing.T) {
	// After a takeover, far-side nodes learn the claimer through shared
	// neighbors' digests. Simulate directly: absorb a digest naming an
	// unknown node whose zone abuts ours.
	m := newMesh(t, 4, 21, Config{}, capsVaried)
	defer m.e.Shutdown()
	WarmStart(m.nodes, 0)
	n := m.nodes[0]
	// Craft a brief for a fictitious node whose zone abuts one of ours.
	myZone := n.Zones()[0]
	if myZone.Hi[0] >= 1 {
		t.Skip("node 0 owns the upper face in dim 0; pick a different seed")
	}
	ghost := Brief{
		Ref:   Ref{ID: ids.HashString("ghost"), Addr: "ghost:1"},
		Zones: []Zone{{Lo: pointWith(myZone.Lo, 0, myZone.Hi[0]), Hi: pointWith(myZone.Hi, 0, 1.0)}},
	}
	// Make the ghost zone overlap our extents in other dims exactly.
	for d := 1; d < Dims; d++ {
		ghost.Zones[0].Lo[d] = myZone.Lo[d]
		ghost.Zones[0].Hi[d] = myZone.Hi[d]
	}
	n.absorb(0, m.nodes[1].info(), []Brief{ghost})
	found := false
	for _, a := range n.Neighbors() {
		if a == "ghost:1" {
			found = true
		}
	}
	if !found {
		t.Fatal("two-hop neighbor from digest not adopted")
	}
}

func pointWith(p Point, dim int, v float64) Point {
	p[dim] = v
	return p
}

func TestMultipleCrashesStillRoutable(t *testing.T) {
	m := newMesh(t, 20, 22, Config{
		GossipEvery:   400 * time.Millisecond,
		NeighborTTL:   1600 * time.Millisecond,
		TakeoverAfter: 800 * time.Millisecond,
	}, capsVaried)
	defer m.e.Shutdown()
	WarmStart(m.nodes, 0)
	for _, n := range m.nodes {
		n.Start()
	}
	m.e.RunFor(2 * time.Second)
	// Crash 5 nodes in waves.
	for i, victim := range []int{3, 7, 11, 15, 19} {
		at := time.Duration(i) * 2 * time.Second
		victim := victim
		m.e.Schedule(at, func() { m.hosts[victim].Endpoint().Crash() })
	}
	m.e.RunFor(time.Minute)
	// Connectivity after heavy churn: points inside surviving nodes'
	// original zones stay reachable from an arbitrary survivor. (Points
	// in dead territory may stay contested; the single-failure guarantee
	// is TestTakeoverHealsCoverage.)
	ok, total := 0, 0
	for i, nd := range m.nodes {
		if !m.hosts[i].Up() || i == 0 {
			continue
		}
		target := nd.Zones()[0].Center()
		total++
		m.do(0, func(rt transport.Runtime) {
			owner, _, err := m.nodes[0].Route(rt, target)
			if err == nil && owner.Addr != "" {
				ok++
			}
		})
	}
	if ok < total*9/10 {
		t.Fatalf("only %d/%d live-zone routes succeeded after churn", ok, total)
	}
}
