package can

import (
	"testing"
	"time"

	"repro/internal/resource"
	"repro/internal/transport"
)

func TestOrthantNeighborsFiltersAndSorts(t *testing.T) {
	m := newMesh(t, 16, 30, Config{}, capsVaried)
	defer m.e.Shutdown()
	WarmStart(m.nodes, 0)
	n := m.nodes[0]
	// An unconstrained job's orthant covers the whole space: every live
	// neighbor is eligible.
	all := n.orthantNeighbors(MatchReq{Cons: resource.Unconstrained})
	if len(all) != len(n.Neighbors()) {
		t.Fatalf("unconstrained orthant excluded neighbors: %d vs %d", len(all), len(n.Neighbors()))
	}
	// A maximal constraint excludes neighbors whose zones end below it.
	maxed := n.orthantNeighbors(MatchReq{Cons: resource.Unconstrained.Require(resource.CPU, 9.99)})
	for _, ref := range maxed {
		n.mu.Lock()
		nb := n.neighbors[ref.Addr]
		n.mu.Unlock()
		ok := false
		for _, z := range nb.info.Zones {
			if z.Hi[0] > 0.99 {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("neighbor %s outside the cpu-max orthant returned", ref.Addr)
		}
	}
}

func TestBasicCANFunnelsRareMatches(t *testing.T) {
	// Documents the basic-CAN pathology at unit level: when a starved
	// region's searches all enter the feasible orthant through the same
	// border, the first satisfying node soaks up every job regardless of
	// load — the behavior the paper's load-based pushing exists to fix
	// (see the tab2 experiment for the system-level contrast).
	m := newMesh(t, 24, 31, Config{}, func(i int) (resource.Vector, string) {
		cpu := 2.0
		if i >= 18 { // six capable nodes
			cpu = 10
		}
		return resource.Vector{cpu, 1024, 50}, "linux"
	})
	defer m.e.Shutdown()
	WarmStart(m.nodes, 0)
	loads := make([]int, 24)
	for i := range m.nodes {
		i := i
		m.nodes[i].SetLoadFn(func() int { return loads[i] })
	}
	cons := resource.Unconstrained.Require(resource.CPU, 9)
	chosen := map[transport.Addr]int{}
	for round := 0; round < 12; round++ {
		m.do(0, func(rt transport.Runtime) {
			run, _, err := m.nodes[0].FindRunNode(rt, cons, nil, false)
			if err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			chosen[run.Addr]++
			for i, h := range m.hosts {
				if h.Addr() == run.Addr {
					loads[i]++ // simulate the queued job
				}
			}
		})
	}
	// Every choice must be a genuinely capable node...
	for addr := range chosen {
		for i, h := range m.hosts {
			if h.Addr() == addr && i < 18 {
				t.Fatalf("incapable node %d chosen", i)
			}
		}
	}
	// ...but basic CAN concentrates them (few distinct winners).
	if len(chosen) > 3 {
		t.Logf("note: basic CAN spread across %d nodes here (geometry-dependent)", len(chosen))
	}
}

func TestMatchVisitBudgetRespected(t *testing.T) {
	m := newMesh(t, 32, 32, Config{MatchTTL: 5}, capsUniform)
	defer m.e.Shutdown()
	WarmStart(m.nodes, 0)
	// Impossible constraint forces a full DFS; the budget caps it.
	m.do(0, func(rt transport.Runtime) {
		_, stats, err := m.nodes[0].FindRunNode(rt, resource.Unconstrained.Require(resource.CPU, 99), nil, false)
		if err == nil {
			t.Fatal("impossible constraint matched")
		}
		if stats.Visits > 8 { // budget 5 + self + slack for bookkeeping
			t.Fatalf("visit budget exceeded: %+v", stats)
		}
	})
}

func TestProbeLoadLive(t *testing.T) {
	m := newMesh(t, 4, 33, Config{}, capsUniform)
	defer m.e.Shutdown()
	WarmStart(m.nodes, 0)
	m.nodes[2].SetLoadFn(func() int { return 17 })
	m.do(0, func(rt transport.Runtime) {
		load, err := m.nodes[0].probeLoad(rt, m.hosts[2].Addr())
		if err != nil || load != 17 {
			t.Fatalf("probe = %d, %v", load, err)
		}
		// Self-probe avoids the network.
		before := m.net.Stats.CallsSent
		if _, err := m.nodes[0].probeLoad(rt, m.hosts[0].Addr()); err != nil {
			t.Fatal(err)
		}
		if m.net.Stats.CallsSent != before {
			t.Fatal("self-probe used the network")
		}
	})
}

func TestDirLoadEstimates(t *testing.T) {
	m := newMesh(t, 8, 34, Config{GossipEvery: 300 * time.Millisecond}, capsUniform)
	defer m.e.Shutdown()
	WarmStart(m.nodes, 0)
	for i := range m.nodes {
		i := i
		m.nodes[i].SetLoadFn(func() int { return i }) // distinct loads
	}
	for _, n := range m.nodes {
		n.Start()
	}
	m.e.RunFor(5 * time.Second)
	// After gossip, above/below estimates must be finite and non-negative
	// for every node, and not all zero (information flowed).
	sawNonzero := false
	for _, n := range m.nodes {
		n.mu.Lock()
		for d := 0; d < Dims; d++ {
			if n.above[d] < 0 || n.below[d] < 0 {
				t.Fatalf("negative directional estimate")
			}
			if n.above[d] > 0 || n.below[d] > 0 {
				sawNonzero = true
			}
		}
		n.mu.Unlock()
	}
	if !sawNonzero {
		t.Fatal("directional load estimates never updated")
	}
}
