package can

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/resource"
	"repro/internal/transport"
)

// Ref identifies a CAN node; the ID (hash of the address) breaks ties
// deterministically during takeover races.
type Ref struct {
	ID   ids.ID
	Addr transport.Addr
}

// IsZero reports whether the Ref names no node.
func (r Ref) IsZero() bool { return r.Addr == "" }

func (r Ref) String() string {
	if r.IsZero() {
		return "<none>"
	}
	return fmt.Sprintf("%s@%s", r.ID.Short(), r.Addr)
}

// Errors returned by routing and matchmaking.
var (
	ErrRouteFailed = errors.New("can: route failed")
	ErrNoCandidate = errors.New("can: no satisfying node found")
	ErrNotJoined   = errors.New("can: node has not joined")
)

// Config tunes a CAN node. The zero value selects the defaults.
type Config struct {
	// Space normalizes raw resource values into unit coordinates
	// (default resource.DefaultSpace).
	Space resource.Space
	// DisableVirtualDim turns off the virtual dimension (node and job
	// points normally get a uniformly random final coordinate). It is
	// the ablation switch for the paper's clustering pathology.
	DisableVirtualDim bool
	// GossipEvery is the neighbor state-exchange period (default 1 s).
	GossipEvery time.Duration
	// NeighborTTL expires silent neighbors (default 4 s).
	NeighborTTL time.Duration
	// TakeoverAfter is the additional delay before claiming a dead
	// neighbor's zones (default 2 s).
	TakeoverAfter time.Duration
	// MaxRouteHops aborts runaway greedy routes (default 64).
	MaxRouteHops int
	// MatchTTL bounds the upward forwarding walk when the owner
	// neighborhood cannot satisfy a job (default 16).
	MatchTTL int
	// PushTTL bounds load-based pushing (the improved variant;
	// default 8).
	PushTTL int
	// PushThreshold is the queue length above which an owner considers
	// pushing an incoming job upward (default 2).
	PushThreshold int
	// Obs, when non-nil, receives routing and matchmaking metrics.
	// Purely observational: no routing decision reads it.
	Obs *obs.Obs
}

func (c Config) withDefaults() Config {
	if c.Space == (resource.Space{}) {
		c.Space = resource.DefaultSpace
	}
	if c.GossipEvery == 0 {
		c.GossipEvery = time.Second
	}
	if c.NeighborTTL == 0 {
		c.NeighborTTL = 4 * time.Second
	}
	if c.TakeoverAfter == 0 {
		c.TakeoverAfter = 2 * time.Second
	}
	if c.MaxRouteHops == 0 {
		c.MaxRouteHops = 64
	}
	if c.MatchTTL == 0 {
		c.MatchTTL = 16
	}
	if c.PushTTL == 0 {
		c.PushTTL = 8
	}
	if c.PushThreshold == 0 {
		c.PushThreshold = 2
	}
	return c
}

// Info is the self-description a node shares with neighbors.
type Info struct {
	Ref   Ref
	Zones []Zone
	Point Point
	Caps  resource.Vector
	OS    string
	Load  int
	// Above and Below are the node's aggregated directional load
	// estimates per dimension, consumed by the pushing variant.
	Above, Below [Dims]float64
}

// Brief is the compact neighbor digest piggybacked on gossip so
// two-hop topology changes (takeovers, joins) propagate.
type Brief struct {
	Ref   Ref
	Zones []Zone
}

// RPC message types.
type (
	// StepReq asks for one greedy routing step toward Target; Exclude
	// lists nodes the route has already visited, letting the walk step
	// sideways around coverage holes without cycling.
	StepReq struct {
		Target  Point
		Exclude []transport.Addr
	}
	// StepResp terminates (Done, Owner) or forwards (Next).
	StepResp struct {
		Done  bool
		Owner Ref
		Next  Ref
	}
	// JoinReq asks the owner of Point to split its zone with the joiner.
	JoinReq struct{ Joiner Info }
	// JoinResp assigns the joiner its zone and starter neighbor set.
	JoinResp struct {
		Zone      Zone
		Neighbors []Info
	}
	// GossipReq is the periodic neighbor state exchange.
	GossipReq struct {
		From   Info
		Digest []Brief
	}
	// GossipResp returns the receiver's state.
	GossipResp struct{ From Info }
	// MatchReq runs owner-side matchmaking at the receiver.
	MatchReq struct {
		Cons    resource.Constraints
		Exclude []transport.Addr
		// Visited lists nodes already examined by the feasible-region
		// search; TTL is the remaining visit budget.
		Visited []transport.Addr
		TTL     int
		PushTTL int
		Push    bool
	}
	// LoadReq probes a node's live queue length.
	LoadReq struct{}
	// LoadResp answers a LoadReq.
	LoadResp struct{ Load int }
	// MatchResp carries the chosen run node and accounting. Visited is
	// the cumulative set examined by the feasible-region search, so the
	// caller can continue without re-visiting.
	MatchResp struct {
		Run     Ref
		RunOS   string
		Load    int
		Hops    int
		Pushes  int
		Found   bool
		Visited []transport.Addr
	}
)

// Method names registered on the host.
const (
	MStep   = "can.step"
	MJoin   = "can.join"
	MGossip = "can.gossip"
	MMatch  = "can.match"
	MLoad   = "can.load"
)

type neighbor struct {
	info     Info
	digest   []Brief
	lastSeen time.Duration
	// claimed marks a dead neighbor whose zones we decided to take
	// over, pending the claim actually being installed.
	dead time.Duration
}

// Node is one CAN participant.
type Node struct {
	host transport.Host
	cfg  Config
	ref  Ref
	caps resource.Vector
	os   string

	mu        sync.Mutex
	point     Point
	zones     []Zone
	neighbors map[transport.Addr]*neighbor
	loadFn    func() int
	joined    bool
	started   bool
	above     [Dims]float64
	below     [Dims]float64

	// Routes counts completed local routes; RouteHops sums their hops.
	Routes    int64
	RouteHops int64

	// Resolved obs instruments (nil-safe when cfg.Obs is nil).
	mRoutes      *obs.Counter
	mRouteFails  *obs.Counter
	mRouteHops   *obs.Histogram
	mMatches     *obs.Counter
	mMatchFails  *obs.Counter
	mMatchHops   *obs.Histogram
	mMatchPushes *obs.Histogram
	mMatchVisits *obs.Histogram
}

// New creates a CAN node bound to host, advertising the given
// capabilities, and registers its RPC handlers.
func New(host transport.Host, caps resource.Vector, os string, cfg Config) *Node {
	cfg = cfg.withDefaults()
	n := &Node{
		host:      host,
		cfg:       cfg,
		ref:       Ref{ID: ids.HashString(string(host.Addr())), Addr: host.Addr()},
		caps:      caps,
		os:        os,
		neighbors: make(map[transport.Addr]*neighbor),
		loadFn:    func() int { return 0 },
	}
	if reg := cfg.Obs.Registry(); reg != nil {
		n.mRoutes = reg.Counter("can_routes_total")
		n.mRouteFails = reg.Counter("can_route_failures_total")
		n.mRouteHops = reg.Histogram("can_route_hops", obs.DefBucketsHops)
		n.mMatches = reg.Counter("can_matches_total")
		n.mMatchFails = reg.Counter("can_match_failures_total")
		n.mMatchHops = reg.Histogram("can_match_hops", obs.DefBucketsHops)
		n.mMatchPushes = reg.Histogram("can_match_pushes", obs.DefBucketsHops)
		n.mMatchVisits = reg.Histogram("can_match_visits", obs.DefBucketsHops)
	}
	host.Handle(MStep, n.handleStep)
	host.Handle(MJoin, n.handleJoin)
	host.Handle(MGossip, n.handleGossip)
	host.Handle(MMatch, n.handleMatch)
	host.Handle(MLoad, n.handleLoad)
	return n
}

// Ref returns the node's identity.
func (n *Node) Ref() Ref { return n.ref }

// Caps returns the node's capability vector.
func (n *Node) Caps() resource.Vector { return n.caps }

// OS returns the node's operating system label.
func (n *Node) OS() string { return n.os }

// Point returns the node's representative point.
func (n *Node) Point() Point {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.point
}

// Zones returns a copy of the node's current zones.
func (n *Node) Zones() []Zone {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Zone, len(n.zones))
	copy(out, n.zones)
	return out
}

// Neighbors returns the addresses of current neighbors, sorted.
func (n *Node) Neighbors() []transport.Addr {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sortedNeighborAddrsLocked()
}

func (n *Node) sortedNeighborAddrsLocked() []transport.Addr {
	out := make([]transport.Addr, 0, len(n.neighbors))
	for a := range n.neighbors {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SetLoadFn installs the queue-length provider.
func (n *Node) SetLoadFn(fn func() int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.loadFn = fn
}

// info snapshots the node's self-description.
func (n *Node) info() Info {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.infoLocked()
}

func (n *Node) infoLocked() Info {
	zones := make([]Zone, len(n.zones))
	copy(zones, n.zones)
	return Info{
		Ref:   n.ref,
		Zones: zones,
		Point: n.point,
		Caps:  n.caps,
		OS:    n.os,
		Load:  n.loadFn(),
		Above: n.above,
		Below: n.below,
	}
}

// uniformFromID maps an identifier to a uniform value in [0,1) —
// deterministic randomness for virtual coordinates, so node and job
// placement is reproducible and independent of message ordering.
func uniformFromID(id ids.ID) float64 {
	return float64(id.Uint64()>>11) / float64(uint64(1)<<53)
}

// pointFor derives this node's representative point. The virtual
// coordinate is a uniform hash of the node identity (or zero when the
// virtual dimension is disabled — the ablation case).
func (n *Node) pointFor() Point {
	virtual := 0.0
	if !n.cfg.DisableVirtualDim {
		virtual = uniformFromID(ids.HashString(string(n.host.Addr()) + "#virtual"))
	}
	return PointFor(n.cfg.Space, n.caps, virtual)
}

// JobPoint maps a job's constraints to its insertion point: its
// requirement minima in the resource dimensions plus a virtual
// coordinate hashed from the job's GUID.
func (n *Node) JobPoint(jobID ids.ID, cons resource.Constraints) Point {
	virtual := 0.0
	if !n.cfg.DisableVirtualDim {
		virtual = uniformFromID(jobID)
	}
	return PointFor(n.cfg.Space, cons.Effective(), virtual)
}

// Create initializes this node as the first member, owning the whole
// space.
func (n *Node) Create() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.point = n.pointFor()
	n.zones = []Zone{UnitZone()}
	n.joined = true
}

// Start launches the gossip/maintenance loop.
func (n *Node) Start() {
	n.mu.Lock()
	if n.started {
		n.mu.Unlock()
		return
	}
	n.started = true
	n.mu.Unlock()
	n.host.Go("can.gossip", n.gossipLoop)
}
