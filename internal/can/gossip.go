package can

import (
	"sort"
	"time"

	"repro/internal/transport"
)

// gossipLoop periodically exchanges state with every neighbor, expires
// silent ones, performs takeovers, and refreshes the directional load
// estimates used by the pushing variant.
func (n *Node) gossipLoop(rt transport.Runtime) {
	for {
		rt.Sleep(jitter(rt, n.cfg.GossipEvery))
		n.mu.Lock()
		joined := n.joined
		n.mu.Unlock()
		if !joined {
			continue
		}
		n.gossipOnce(rt)
		n.expireAndTakeover(rt)
		n.updateDirLoad()
	}
}

// gossipOnce sends our state (plus a digest of our neighbors) to every
// neighbor and absorbs the responses.
func (n *Node) gossipOnce(rt transport.Runtime) {
	n.mu.Lock()
	me := n.infoLocked()
	digest := n.digestLocked()
	addrs := n.sortedNeighborAddrsLocked()
	n.mu.Unlock()

	for _, addr := range addrs {
		raw, err := rt.Call(addr, MGossip, GossipReq{From: me, Digest: digest})
		if err != nil {
			continue
		}
		resp := raw.(GossipResp)
		n.absorb(rt.Now(), resp.From, nil)
	}
}

func (n *Node) digestLocked() []Brief {
	var out []Brief
	for _, addr := range n.sortedNeighborAddrsLocked() {
		nb := n.neighbors[addr]
		if nb.dead != 0 {
			continue
		}
		out = append(out, Brief{Ref: nb.info.Ref, Zones: nb.info.Zones})
	}
	return out
}

// absorb folds a peer's self-description (and optionally its neighbor
// digest) into our neighbor table.
func (n *Node) absorb(now time.Duration, info Info, digest []Brief) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if info.Ref.Addr != n.host.Addr() && n.abutsAnyLocked(info.Zones) {
		n.resolveOverlapLocked(info)
		n.neighbors[info.Ref.Addr] = &neighbor{info: info, digest: digest, lastSeen: now}
	} else {
		delete(n.neighbors, info.Ref.Addr)
	}
	// Learn two-hop nodes that now abut us (post-split/takeover repair).
	for _, b := range digest {
		if b.Ref.Addr == n.host.Addr() {
			continue
		}
		if _, known := n.neighbors[b.Ref.Addr]; known {
			continue
		}
		if n.abutsAnyLocked(b.Zones) {
			n.neighbors[b.Ref.Addr] = &neighbor{
				info:     Info{Ref: b.Ref, Zones: b.Zones},
				lastSeen: now,
			}
		}
	}
}

// resolveOverlapLocked handles conflicting ownership after a takeover
// race: if a peer with a smaller identifier claims a zone we also hold,
// we yield it.
func (n *Node) resolveOverlapLocked(peer Info) {
	if !peer.Ref.ID.Less(n.ref.ID) {
		return
	}
	kept := n.zones[:0]
	for _, z := range n.zones {
		conflict := false
		for _, pz := range peer.Zones {
			if z == pz || (z.Overlaps(pz) && pz.Volume() >= z.Volume()) {
				conflict = true
				break
			}
		}
		if !conflict {
			kept = append(kept, z)
		}
	}
	if len(kept) > 0 {
		n.zones = kept
	}
}

// expireAndTakeover marks silent neighbors dead and, after a further
// delay, claims their zones if we are the smallest-volume live abutting
// neighbor we know of (deterministic tie-break by identifier).
// Divergent local views can make every neighbor defer to someone else,
// so a node that still sees an unclaimed dead zone after three takeover
// periods claims it unconditionally; duplicate claims converge through
// resolveOverlapLocked (smaller identifier keeps the zone).
func (n *Node) expireAndTakeover(rt transport.Runtime) {
	now := rt.Now()
	n.mu.Lock()
	var claims [][]Zone
	var inherited []Brief
	for _, addr := range n.sortedNeighborAddrsLocked() {
		nb := n.neighbors[addr]
		if now-nb.lastSeen <= n.cfg.NeighborTTL {
			nb.dead = 0
			continue
		}
		if nb.dead == 0 {
			nb.dead = now
			continue
		}
		age := now - nb.dead
		switch {
		case age < n.cfg.TakeoverAfter:
			// grace period
		case n.claimedByLiveLocked(nb):
			// Someone else took the zones over; forget the dead node.
			delete(n.neighbors, addr)
		case n.shouldClaimLocked(nb) || age > time.Duration(3+n.claimRankLocked(nb))*n.cfg.TakeoverAfter:
			claims = append(claims, nb.info.Zones)
			inherited = append(inherited, nb.digest...)
			delete(n.neighbors, addr)
		}
	}
	for _, zones := range claims {
		n.zones = append(n.zones, zones...)
	}
	// Inherit the dead node's neighbors (from its last gossiped digest)
	// that abut our enlarged zone set — the takeover handshake of real
	// CAN, without which the claimer and the dead node's far-side
	// neighbors may never learn of each other.
	for _, b := range inherited {
		if b.Ref.Addr == n.host.Addr() {
			continue
		}
		if _, known := n.neighbors[b.Ref.Addr]; known {
			continue
		}
		if n.abutsAnyLocked(b.Zones) {
			n.neighbors[b.Ref.Addr] = &neighbor{info: Info{Ref: b.Ref, Zones: b.Zones}, lastSeen: now}
		}
	}
	n.mu.Unlock()
	if len(claims) > 0 {
		// Tell everyone right away so routing heals.
		n.gossipOnce(rt)
	}
}

// claimRankLocked orders the fallback claim: this node's position (by
// identifier) among the live neighbors we know to abut the dead node's
// zones. Staggering fallback claims by rank lets the first claimer's
// gossip reach the others before their own timers fire, so unclaimed
// zones are adopted exactly once in the common case.
func (n *Node) claimRankLocked(dead *neighbor) int {
	rank := 0
	for _, other := range n.neighbors {
		if other == dead || other.dead != 0 {
			continue
		}
		if !other.info.Ref.ID.Less(n.ref.ID) {
			continue
		}
		for _, oz := range other.info.Zones {
			abuts := false
			for _, dz := range dead.info.Zones {
				if oz.Abuts(dz) {
					abuts = true
					break
				}
			}
			if abuts {
				rank++
				break
			}
		}
	}
	return rank
}

// claimedByLiveLocked reports whether some live neighbor now owns zones
// overlapping every zone the dead node held.
func (n *Node) claimedByLiveLocked(dead *neighbor) bool {
	for _, dz := range dead.info.Zones {
		covered := false
		for _, other := range n.neighbors {
			if other == dead || other.dead != 0 {
				continue
			}
			for _, oz := range other.info.Zones {
				if oz.Overlaps(dz) {
					covered = true
					break
				}
			}
			if covered {
				break
			}
		}
		if !covered {
			return false
		}
	}
	return true
}

// shouldClaimLocked applies the takeover rule from this node's local
// view: among live neighbors abutting the dead node's zones (plus us),
// the node with the smallest total zone volume claims; ties go to the
// smaller identifier.
func (n *Node) shouldClaimLocked(dead *neighbor) bool {
	if len(dead.info.Zones) == 0 {
		return false
	}
	myVol := 0.0
	for _, z := range n.zones {
		myVol += z.Volume()
	}
	for _, other := range n.neighbors {
		if other == dead || other.dead != 0 {
			continue
		}
		abuts := false
		for _, oz := range other.info.Zones {
			for _, dz := range dead.info.Zones {
				if oz.Abuts(dz) {
					abuts = true
					break
				}
			}
		}
		if !abuts {
			continue
		}
		otherVol := 0.0
		for _, z := range other.info.Zones {
			otherVol += z.Volume()
		}
		if otherVol < myVol || (otherVol == myVol && other.info.Ref.ID.Less(n.ref.ID)) {
			return false
		}
	}
	return true
}

// updateDirLoad recomputes the directional load estimates: for each
// dimension, an exponentially-decaying aggregate of the load in the
// region above (respectively below) this node, built from the
// corresponding estimates our above/below neighbors report. This is
// the "fixed amount of current system load information propagated
// along each dimension" from the paper's improved CAN variant.
func (n *Node) updateDirLoad() {
	n.mu.Lock()
	defer n.mu.Unlock()
	own := float64(n.loadFn())
	for d := 0; d < Dims; d++ {
		var aboveSum, belowSum float64
		var aboveN, belowN int
		for _, addr := range n.sortedNeighborAddrsLocked() {
			nb := n.neighbors[addr]
			if nb.dead != 0 {
				continue
			}
			rel := relativeDir(n.zones, nb.info.Zones, d)
			switch {
			case rel > 0:
				aboveSum += (float64(nb.info.Load) + nb.info.Above[d]) / 2
				aboveN++
			case rel < 0:
				belowSum += (float64(nb.info.Load) + nb.info.Below[d]) / 2
				belowN++
			}
		}
		if aboveN > 0 {
			n.above[d] = aboveSum / float64(aboveN)
		} else {
			n.above[d] = own
		}
		if belowN > 0 {
			n.below[d] = belowSum / float64(belowN)
		} else {
			n.below[d] = own
		}
	}
}

// relativeDir classifies a neighbor's position along dimension d:
// +1 if some of its zones abut ours at our upper face, -1 at our lower
// face, 0 otherwise.
func relativeDir(mine, theirs []Zone, d int) int {
	for _, m := range mine {
		for _, t := range theirs {
			if !m.Abuts(t) {
				continue
			}
			if t.Lo[d] == m.Hi[d] {
				return 1
			}
			if t.Hi[d] == m.Lo[d] {
				return -1
			}
		}
	}
	return 0
}

// aboveNeighborsLocked returns live neighbors abutting our upper face
// along dimension d, sorted by reported load then address.
func (n *Node) aboveNeighborsLocked(d int) []Info {
	var out []Info
	for _, addr := range n.sortedNeighborAddrsLocked() {
		nb := n.neighbors[addr]
		if nb.dead != 0 {
			continue
		}
		if relativeDir(n.zones, nb.info.Zones, d) > 0 {
			out = append(out, nb.info)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Load < out[j].Load })
	return out
}

func (n *Node) handleGossip(rt transport.Runtime, from transport.Addr, req any) (any, error) {
	g := req.(GossipReq)
	n.absorb(rt.Now(), g.From, g.Digest)
	return GossipResp{From: n.info()}, nil
}

func jitter(rt transport.Runtime, d time.Duration) time.Duration {
	return d/2 + time.Duration(rt.Rand().Int63n(int64(d)))
}
