package can

import (
	"sort"
	"strconv"
	"time"

	"repro/internal/transport"
)

// WarmStart partitions the space across a set of nodes exactly as a
// sequence of joins would (in address order), then installs complete
// neighbor tables, all without exchanging messages. Large experiments
// use it to skip simulating thousands of join handshakes; the gossip
// loops then maintain the structure.
func WarmStart(nodes []*Node, now time.Duration) {
	if len(nodes) == 0 {
		return
	}
	sorted := make([]*Node, len(nodes))
	copy(sorted, nodes)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].host.Addr() < sorted[j].host.Addr()
	})

	type holding struct {
		n     *Node
		zones []Zone
	}
	held := []*holding{{n: sorted[0], zones: []Zone{UnitZone()}}}
	points := map[*Node]Point{sorted[0]: sorted[0].pointFor()}

	for _, joiner := range sorted[1:] {
		p := joiner.pointFor()
		points[joiner] = p
		// Find the zone containing the joiner's point.
		var ownerH *holding
		zi := -1
		for _, h := range held {
			for i, z := range h.zones {
				if z.Contains(p) {
					ownerH, zi = h, i
					break
				}
			}
			if ownerH != nil {
				break
			}
		}
		mine, theirs := splitFor(ownerH.zones[zi], points[ownerH.n], p)
		ownerH.zones[zi] = mine
		held = append(held, &holding{n: joiner, zones: []Zone{theirs}})
	}

	// Install zones and exact neighbor tables.
	for _, h := range held {
		h.n.mu.Lock()
		h.n.point = points[h.n]
		h.n.zones = h.zones
		h.n.joined = true
		h.n.neighbors = make(map[transport.Addr]*neighbor)
		h.n.mu.Unlock()
	}
	infos := make([]Info, len(held))
	for i, h := range held {
		h.n.mu.Lock()
		infos[i] = h.n.infoLocked()
		h.n.mu.Unlock()
	}
	for i, h := range held {
		h.n.mu.Lock()
		for j, other := range held {
			if i == j {
				continue
			}
			if h.n.abutsAnyLocked(infos[j].Zones) {
				h.n.neighbors[other.n.host.Addr()] = &neighbor{info: infos[j], lastSeen: now}
			}
		}
		h.n.mu.Unlock()
	}
	// Seed directional load estimates.
	for _, h := range held {
		h.n.updateDirLoad()
	}
}

// CoverageError checks that a set of nodes tiles the unit space: it
// probes points on a grid and returns the first point owned by zero or
// multiple nodes (diagnostics/tests). An empty string means full
// single coverage.
func CoverageError(nodes []*Node, gridSteps int) string {
	probe := func(p Point) int {
		owners := 0
		for _, n := range nodes {
			for _, z := range n.Zones() {
				if z.Contains(p) {
					owners++
				}
			}
		}
		return owners
	}
	var walk func(dim int, p Point) string
	walk = func(dim int, p Point) string {
		if dim == Dims {
			if got := probe(p); got != 1 {
				return p.String() + " owned by " + strconv.Itoa(got) + " nodes"
			}
			return ""
		}
		for i := 0; i < gridSteps; i++ {
			p[dim] = (float64(i) + 0.5) / float64(gridSteps)
			if msg := walk(dim+1, p); msg != "" {
				return msg
			}
		}
		return ""
	}
	return walk(0, Point{})
}
