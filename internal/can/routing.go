package can

import (
	"fmt"

	"repro/internal/transport"
)

// Route resolves the owner of target by iterative greedy routing from
// this node, returning the owner and the hop count.
func (n *Node) Route(rt transport.Runtime, target Point) (Ref, int, error) {
	owner, hops, err := n.routeFrom(rt, n.ref, target)
	if err == nil {
		n.mu.Lock()
		n.Routes++
		n.RouteHops += int64(hops)
		n.mu.Unlock()
		n.mRoutes.Inc()
		n.mRouteHops.Observe(float64(hops))
	} else {
		n.mRouteFails.Inc()
	}
	return owner, hops, err
}

// RouteVia starts the greedy route at a remote bootstrap node.
func (n *Node) RouteVia(rt transport.Runtime, start transport.Addr, target Point) (Ref, int, error) {
	return n.routeFrom(rt, Ref{Addr: start}, target)
}

func (n *Node) routeFrom(rt transport.Runtime, cur Ref, target Point) (Ref, int, error) {
	hops := 0
	failures := 0
	var visited []transport.Addr
	for hops < n.cfg.MaxRouteHops {
		var resp StepResp
		if cur.Addr == n.host.Addr() {
			resp = n.step(StepReq{Target: target, Exclude: visited})
		} else {
			raw, err := rt.Call(cur.Addr, MStep, StepReq{Target: target, Exclude: visited})
			hops++
			if err != nil {
				failures++
				if failures > 3 {
					return Ref{}, hops, fmt.Errorf("%w: too many step failures (last: %v)", ErrRouteFailed, err)
				}
				visited = appendAddr(visited, cur.Addr)
				cur = n.ref // restart from our own (repaired) state
				continue
			}
			resp = raw.(StepResp)
		}
		if resp.Done {
			return resp.Owner, hops, nil
		}
		if resp.Next.IsZero() {
			return Ref{}, hops, fmt.Errorf("%w: no progress at %s toward %v", ErrRouteFailed, cur.Addr, target)
		}
		visited = appendAddr(visited, cur.Addr)
		cur = resp.Next
	}
	return Ref{}, hops, fmt.Errorf("%w: exceeded %d hops", ErrRouteFailed, n.cfg.MaxRouteHops)
}

// step computes one routing step: done if we own the target, otherwise
// the unvisited neighbor whose zones are closest to it. Distance may
// plateau or even grow — combined with the caller's visited list this
// is best-first search, which routes around coverage holes that pure
// greedy descent cannot (e.g. mid-takeover after failures).
func (n *Node) step(req StepReq) StepResp {
	target := req.Target
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.joined {
		return StepResp{}
	}
	for _, z := range n.zones {
		if z.Contains(target) {
			return StepResp{Done: true, Owner: n.ref}
		}
	}
	best := Ref{}
	bestDist := 0.0
	for _, addr := range n.sortedNeighborAddrsLocked() {
		nb := n.neighbors[addr]
		if nb.dead != 0 || excluded(req.Exclude, addr) || addr == n.host.Addr() {
			continue
		}
		for _, z := range nb.info.Zones {
			if d := z.Dist(target); best.IsZero() || d < bestDist {
				bestDist = d
				best = nb.info.Ref
			}
		}
	}
	return StepResp{Next: best}
}

func (n *Node) handleStep(rt transport.Runtime, from transport.Addr, req any) (any, error) {
	return n.step(req.(StepReq)), nil
}
