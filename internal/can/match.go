package can

import (
	"fmt"
	"sort"

	"repro/internal/resource"
	"repro/internal/transport"
)

// FindRunNode performs CAN-based matchmaking starting at this node,
// which is assumed to be the owner of the job's insertion point
// (Section 3.2 of the paper):
//
//  1. With push enabled (the improved variant), the job is first pushed
//     toward under-loaded upper regions of the space while this owner
//     is overloaded relative to its directional load estimates.
//  2. The (final) owner builds the candidate set: itself plus neighbors
//     at least as capable in every dimension and more capable in at
//     least one, keeping only candidates that satisfy the job's
//     constraints, and picks the least loaded.
//  3. If the neighborhood has no satisfying candidate, a distributed
//     depth-first search explores the feasible orthant (zones at or
//     above the requirement coordinates in every constrained
//     dimension), bounded by a MatchTTL visit budget.
func (n *Node) FindRunNode(rt transport.Runtime, cons resource.Constraints, exclude []transport.Addr, push bool) (Ref, MatchStats, error) {
	resp := n.match(rt, MatchReq{
		Cons:    cons,
		Exclude: exclude,
		TTL:     n.cfg.MatchTTL,
		PushTTL: n.cfg.PushTTL,
		Push:    push,
	})
	stats := MatchStats{Hops: resp.Hops, Pushes: resp.Pushes, Visits: 1 + len(resp.Visited)}
	n.mMatches.Inc()
	n.mMatchHops.Observe(float64(stats.Hops))
	n.mMatchPushes.Observe(float64(stats.Pushes))
	n.mMatchVisits.Observe(float64(stats.Visits))
	if !resp.Found {
		n.mMatchFails.Inc()
		return Ref{}, stats, fmt.Errorf("%w: %s", ErrNoCandidate, cons)
	}
	return resp.Run, stats, nil
}

// MatchStats quantifies one matchmaking operation.
type MatchStats struct {
	Hops   int // overlay messages used by matchmaking
	Pushes int // load-based push steps taken
	Visits int // nodes examined by the feasible-region search
}

// match runs the owner-side algorithm at this node, forwarding over
// the overlay when pushing or when the local neighborhood cannot
// satisfy the job.
func (n *Node) match(rt transport.Runtime, req MatchReq) MatchResp {
	// Phase 1: load-based pushing (improved variant only).
	if req.Push && req.PushTTL > 0 {
		next, probes, ok := n.pushTarget(rt, req)
		if ok {
			fwd := req
			fwd.PushTTL--
			raw, err := rt.Call(next.Addr, MMatch, fwd)
			if err == nil {
				resp := raw.(MatchResp)
				resp.Hops += probes + 1
				resp.Pushes++
				return resp
			}
			// Push target unreachable: fall through to local matching.
		}
	}

	// Phase 2: candidate selection in the neighborhood.
	if cand, probes, ok := n.bestCandidate(rt, req); ok {
		return MatchResp{Run: cand.Ref, RunOS: cand.OS, Load: cand.Load, Hops: probes, Found: true, Visited: req.Visited}
	}

	// Phase 3: distributed depth-first search of the feasible orthant
	// — the region of the space at or above the job's requirement
	// coordinates in every constrained dimension, where any satisfying
	// node must live. The visit budget (TTL) and the shared visited set
	// bound the cost.
	// Rather than returning the first satisfying neighborhood — which
	// would funnel every starved-region job through the same border
	// nodes — the search keeps going until it has seen a few independent
	// candidates (the CAN analogue of the RN-Tree's extended search) and
	// returns the least loaded.
	const wantCandidates = 3
	visited := appendAddr(req.Visited, n.host.Addr())
	best := MatchResp{}
	founds := 0
	hops := 0
	for _, next := range n.orthantNeighbors(req) {
		remaining := req.TTL - (len(visited) - len(req.Visited))
		if remaining <= 0 || founds >= wantCandidates {
			break
		}
		if excluded(visited, next.Addr) || excluded(req.Exclude, next.Addr) {
			continue
		}
		fwd := req
		fwd.Push = false // pushing only happens before matching
		fwd.TTL = remaining
		fwd.Visited = visited
		raw, err := rt.Call(next.Addr, MMatch, fwd)
		hops++
		if err != nil {
			visited = appendAddr(visited, next.Addr) // unreachable counts as seen
			continue
		}
		sub := raw.(MatchResp)
		if len(sub.Visited) > len(visited) {
			visited = sub.Visited
		} else {
			visited = appendAddr(visited, next.Addr)
		}
		hops += sub.Hops
		if sub.Found {
			founds++
			if !best.Found || sub.Load < best.Load {
				best = sub
			}
		}
	}
	best.Hops = hops
	best.Visited = visited
	return best
}

// orthantNeighbors returns live neighbors whose zones intersect the
// job's feasible orthant, most promising (smallest capability deficit)
// first.
func (n *Node) orthantNeighbors(req MatchReq) []Ref {
	norm := n.cfg.Space.Normalize(req.Cons.Effective())
	n.mu.Lock()
	defer n.mu.Unlock()
	type scored struct {
		ref Ref
		d   float64
	}
	var out []scored
	for _, addr := range n.sortedNeighborAddrsLocked() {
		nb := n.neighbors[addr]
		if nb.dead != 0 {
			continue
		}
		eligible := false
		for _, z := range nb.info.Zones {
			inOrthant := true
			for t, m := range req.Cons.Mask {
				if m && z.Hi[t] <= norm[t] {
					inOrthant = false
					break
				}
			}
			if inOrthant {
				eligible = true
				break
			}
		}
		if !eligible {
			continue
		}
		out = append(out, scored{nb.info.Ref, deficit(req.Cons, nb.info.Caps, nb.info.OS, n.cfg.Space)})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].d != out[j].d {
			return out[i].d < out[j].d
		}
		return out[i].ref.Addr < out[j].ref.Addr
	})
	refs := make([]Ref, len(out))
	for i, s := range out {
		refs[i] = s.ref
	}
	return refs
}

func appendAddr(list []transport.Addr, a transport.Addr) []transport.Addr {
	out := make([]transport.Addr, 0, len(list)+1)
	out = append(out, list...)
	return append(out, a)
}

// pushTarget decides whether to push an incoming job upward and where.
// The owner must be loaded beyond the threshold; the directional
// gossip estimates nominate the most promising dimension, but the final
// decision probes the above-neighbors' live queue lengths (gossip
// snapshots go stale between exchanges). It returns the probe count for
// cost accounting.
func (n *Node) pushTarget(rt transport.Runtime, req MatchReq) (Ref, int, bool) {
	n.mu.Lock()
	own := n.loadFn()
	if own < n.cfg.PushThreshold {
		n.mu.Unlock()
		return Ref{}, 0, false
	}
	// Pushing along a capability dimension moves the job to more capable
	// regions; pushing along the virtual dimension spreads load across
	// the stack of similarly-capable nodes. Neither can violate the
	// job's constraints (coordinates only increase).
	seen := map[transport.Addr]bool{}
	var ups []Info
	for d := 0; d < Dims; d++ {
		for _, up := range n.aboveNeighborsLocked(d) {
			if !seen[up.Ref.Addr] && !excluded(req.Exclude, up.Ref.Addr) {
				seen[up.Ref.Addr] = true
				ups = append(ups, up)
			}
		}
	}
	n.mu.Unlock()
	const maxProbes = 4
	if len(ups) > maxProbes {
		ups = ups[:maxProbes]
	}
	probes := 0
	best := Ref{}
	bestLoad := own // only push when strictly lighter
	for _, up := range ups {
		load, err := n.probeLoad(rt, up.Ref.Addr)
		probes++
		if err != nil {
			continue
		}
		if load < bestLoad {
			bestLoad, best = load, up.Ref
		}
	}
	return best, probes, !best.IsZero()
}

type candidate struct {
	Ref  Ref
	OS   string
	Load int
}

// bestCandidate picks the least-loaded satisfying node among this node
// and its capable neighbors, probing live queue lengths.
//
// The candidate rule relaxes the paper's "more capable in at least one
// dimension" to "at least as capable in every dimension": with the
// virtual dimension, clustered populations surround an owner with
// identical-capability neighbors, and excluding them recreates the very
// clustering pathology the virtual dimension exists to break (see
// DESIGN.md).
func (n *Node) bestCandidate(rt transport.Runtime, req MatchReq) (candidate, int, bool) {
	n.mu.Lock()
	var cands []candidate
	selfOK := !excluded(req.Exclude, n.host.Addr()) && req.Cons.SatisfiedBy(n.caps, n.os)
	selfLoad := n.loadFn()
	for _, addr := range n.sortedNeighborAddrsLocked() {
		nb := n.neighbors[addr]
		if nb.dead != 0 || excluded(req.Exclude, addr) {
			continue
		}
		if !nb.info.Caps.Dominates(n.caps) {
			continue
		}
		if !req.Cons.SatisfiedBy(nb.info.Caps, nb.info.OS) {
			continue
		}
		cands = append(cands, candidate{Ref: nb.info.Ref, OS: nb.info.OS, Load: nb.info.Load})
	}
	n.mu.Unlock()

	// Probe the most promising neighbors (by gossiped load) for their
	// live queue lengths; cap probes to keep matchmaking cheap.
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].Load < cands[j].Load })
	const maxProbes = 6
	if len(cands) > maxProbes {
		cands = cands[:maxProbes]
	}
	probes := 0
	for i := range cands {
		load, err := n.probeLoad(rt, cands[i].Ref.Addr)
		probes++
		if err != nil {
			cands[i].Load = int(^uint(0) >> 1) // unreachable: never pick
			continue
		}
		cands[i].Load = load
	}
	if selfOK {
		cands = append(cands, candidate{Ref: n.ref, OS: n.os, Load: selfLoad})
	}
	ok := false
	var best candidate
	for _, c := range cands {
		if c.Load == int(^uint(0)>>1) {
			continue
		}
		if !ok || c.Load < best.Load || (c.Load == best.Load && c.Ref.Addr < best.Ref.Addr) {
			best, ok = c, true
		}
	}
	return best, probes, ok
}

// probeLoad fetches a node's live queue length.
func (n *Node) probeLoad(rt transport.Runtime, addr transport.Addr) (int, error) {
	if addr == n.host.Addr() {
		n.mu.Lock()
		defer n.mu.Unlock()
		return n.loadFn(), nil
	}
	raw, err := rt.Call(addr, MLoad, LoadReq{})
	if err != nil {
		return 0, err
	}
	return raw.(LoadResp).Load, nil
}

// deficit measures how far caps fall short of the constraints, in
// normalized coordinates; zero means fully satisfying. An OS mismatch
// adds a constant penalty so the walk prefers matching-OS regions.
func deficit(c resource.Constraints, caps resource.Vector, os string, space resource.Space) float64 {
	nc := space.Normalize(c.Effective())
	nv := space.Normalize(caps)
	d := 0.0
	for i, m := range c.Mask {
		if m && nv[i] < nc[i] {
			d += nc[i] - nv[i]
		}
	}
	if c.OS != "" && c.OS != os {
		d += 1.0
	}
	return d
}

func excluded(list []transport.Addr, a transport.Addr) bool {
	for _, x := range list {
		if x == a {
			return true
		}
	}
	return false
}

func (n *Node) handleMatch(rt transport.Runtime, from transport.Addr, req any) (any, error) {
	return n.match(rt, req.(MatchReq)), nil
}

func (n *Node) handleLoad(rt transport.Runtime, from transport.Addr, req any) (any, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return LoadResp{Load: n.loadFn()}, nil
}
