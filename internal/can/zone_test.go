package can

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/resource"
)

func zone(lo, hi [Dims]float64) Zone { return Zone{Lo: lo, Hi: hi} }

func TestUnitZoneContains(t *testing.T) {
	u := UnitZone()
	if !u.Contains(Point{0, 0, 0, 0}) {
		t.Fatal("origin not contained")
	}
	if !u.Contains(Point{0.999, 0.5, 0.1, 0.7}) {
		t.Fatal("interior point not contained")
	}
	if u.Contains(Point{1, 0, 0, 0}) {
		t.Fatal("upper bound must be exclusive")
	}
	if u.Volume() != 1 {
		t.Fatalf("unit volume = %v", u.Volume())
	}
}

func TestSplitPartitionsZone(t *testing.T) {
	u := UnitZone()
	lo, hi := u.Split(1, 0.25)
	if lo.Hi[1] != 0.25 || hi.Lo[1] != 0.25 {
		t.Fatalf("split bounds: %v %v", lo, hi)
	}
	if v := lo.Volume() + hi.Volume(); v < 0.999999 || v > 1.000001 {
		t.Fatalf("split volumes sum to %v", v)
	}
	p := Point{0.5, 0.2, 0.5, 0.5}
	if !lo.Contains(p) || hi.Contains(p) {
		t.Fatal("point membership after split wrong")
	}
}

func TestSplitPanicsOutside(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	UnitZone().Split(0, 1.5)
}

func TestDist(t *testing.T) {
	z := zone([Dims]float64{0.2, 0.2, 0.2, 0.2}, [Dims]float64{0.4, 0.4, 0.4, 0.4})
	if z.Dist(Point{0.3, 0.3, 0.3, 0.3}) != 0 {
		t.Fatal("interior distance nonzero")
	}
	got := z.Dist(Point{0.1, 0.3, 0.5, 0.3})
	want := 0.1 + 0.1000000000000000 // below in dim0 by 0.1, above in dim2 by 0.1
	if got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("Dist = %v, want %v", got, want)
	}
}

func TestAbuts(t *testing.T) {
	u := UnitZone()
	lo, hi := u.Split(0, 0.5)
	if !lo.Abuts(hi) || !hi.Abuts(lo) {
		t.Fatal("split halves must abut")
	}
	// Further split the upper half along another dim; both quarters
	// still abut the lower half.
	q1, q2 := hi.Split(1, 0.5)
	if !q1.Abuts(lo) || !q2.Abuts(lo) {
		t.Fatal("quarters must abut lower half")
	}
	if !q1.Abuts(q2) {
		t.Fatal("quarters must abut each other")
	}
	// Diagonal (corner-touching) zones do not abut.
	a := zone([Dims]float64{0, 0, 0, 0}, [Dims]float64{0.5, 0.5, 1, 1})
	b := zone([Dims]float64{0.5, 0.5, 0, 0}, [Dims]float64{1, 1, 1, 1})
	if a.Abuts(b) {
		t.Fatal("corner-touching zones must not abut")
	}
	if a.Abuts(a) {
		t.Fatal("zone must not abut itself")
	}
}

func TestOverlaps(t *testing.T) {
	a := zone([Dims]float64{0, 0, 0, 0}, [Dims]float64{0.5, 1, 1, 1})
	b := zone([Dims]float64{0.4, 0, 0, 0}, [Dims]float64{0.6, 1, 1, 1})
	c := zone([Dims]float64{0.5, 0, 0, 0}, [Dims]float64{0.7, 1, 1, 1})
	if !a.Overlaps(b) {
		t.Fatal("overlapping zones not detected")
	}
	if a.Overlaps(c) {
		t.Fatal("abutting zones must not overlap")
	}
}

func TestSplitForSeparatesPoints(t *testing.T) {
	u := UnitZone()
	owner := Point{0.2, 0.5, 0.5, 0.5}
	joiner := Point{0.8, 0.5, 0.5, 0.5}
	oz, jz := splitFor(u, owner, joiner)
	if !oz.Contains(owner) {
		t.Fatalf("owner zone %v misses owner point", oz)
	}
	if !jz.Contains(joiner) {
		t.Fatalf("joiner zone %v misses joiner point", jz)
	}
	if oz.Overlaps(jz) {
		t.Fatal("halves overlap")
	}
}

func TestSplitForIdenticalPoints(t *testing.T) {
	u := UnitZone()
	p := Point{0.3, 0.3, 0.3, 0.3}
	oz, jz := splitFor(u, p, p)
	if v := oz.Volume() + jz.Volume(); v < 0.999999 || v > 1.000001 {
		t.Fatalf("volumes sum to %v", v)
	}
	if oz.Overlaps(jz) {
		t.Fatal("halves overlap")
	}
	if !oz.Contains(p) && !jz.Contains(p) {
		t.Fatal("point lost entirely")
	}
}

func TestSplitForProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		var o, j Point
		for d := range o {
			o[d] = rng.Float64()
			j[d] = rng.Float64()
		}
		oz, jz := splitFor(UnitZone(), o, j)
		if oz.Overlaps(jz) {
			t.Fatalf("overlap for %v %v", o, j)
		}
		if v := oz.Volume() + jz.Volume(); v < 0.999999 || v > 1.000001 {
			t.Fatalf("volume leak for %v %v", o, j)
		}
		if !oz.Contains(o) {
			t.Fatalf("owner displaced: %v not in %v", o, oz)
		}
		if !jz.Contains(j) {
			t.Fatalf("joiner displaced: %v not in %v", j, jz)
		}
	}
}

func TestPointFor(t *testing.T) {
	p := PointFor(resource.DefaultSpace, resource.Vector{10, 8192, 500}, 0.5)
	for i := 0; i < int(resource.NumTypes); i++ {
		if p[i] < 0 || p[i] >= 1 {
			t.Fatalf("coordinate %d = %v outside [0,1)", i, p[i])
		}
	}
	if p[VirtualDim] != 0.5 {
		t.Fatalf("virtual = %v", p[VirtualDim])
	}
	// Clamping of the virtual coordinate.
	if PointFor(resource.DefaultSpace, resource.Vector{}, 2)[VirtualDim] >= 1 {
		t.Fatal("virtual not clamped")
	}
	if PointFor(resource.DefaultSpace, resource.Vector{}, -1)[VirtualDim] != 0 {
		t.Fatal("negative virtual not clamped")
	}
}

func TestLongestDim(t *testing.T) {
	z := zone([Dims]float64{0, 0, 0, 0}, [Dims]float64{0.2, 0.9, 0.5, 0.5})
	if z.LongestDim() != 1 {
		t.Fatalf("LongestDim = %d", z.LongestDim())
	}
}

func TestDistNonNegativeProperty(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		p := Point{frac(a), frac(b), frac(c), frac(d)}
		z := zone([Dims]float64{0.25, 0.25, 0.25, 0.25}, [Dims]float64{0.75, 0.75, 0.75, 0.75})
		dist := z.Dist(p)
		if dist < 0 {
			return false
		}
		return (dist == 0) == z.Contains(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUniformFromID(t *testing.T) {
	seen := map[float64]bool{}
	for i := 0; i < 100; i++ {
		v := uniformFromID(hashOf(i))
		if v < 0 || v >= 1 {
			t.Fatalf("uniform value %v out of range", v)
		}
		seen[v] = true
	}
	if len(seen) < 95 {
		t.Fatalf("only %d distinct values in 100 draws", len(seen))
	}
}

func frac(x float64) float64 {
	if x < 0 {
		x = -x
	}
	for x >= 1 {
		x /= 2
	}
	return x
}
