// Package can implements a Content-Addressable Network (Ratnasamy et
// al., SIGCOMM 2001) specialized for resource matchmaking as in the
// paper's Section 3.2: the space has one dimension per resource type
// plus a virtual dimension whose uniformly random coordinate breaks up
// clusters of identical nodes and jobs. Each node owns one or more
// rectangular zones of the unit box, routes greedily through neighbor
// zones, and gossips capability and load information used to pick the
// least-loaded capable run node.
//
// Unlike classic CAN the space is a bounded box, not a torus: the
// matchmaking semantics order each capability dimension ("upper regions
// hold more capable nodes"), which wrap-around would destroy. Greedy
// routing still always progresses because zones tile the box.
package can

import (
	"fmt"
	"strings"

	"repro/internal/resource"
)

// Dims is the dimensionality of the CAN space: one per resource type
// plus the virtual dimension.
const Dims = int(resource.NumTypes) + 1

// VirtualDim is the index of the virtual dimension.
const VirtualDim = Dims - 1

// Point is a position in the unit box [0,1)^Dims.
type Point [Dims]float64

func (p Point) String() string {
	parts := make([]string, Dims)
	for i, v := range p {
		parts[i] = fmt.Sprintf("%.3f", v)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// PointFor builds a node's or job's representative point from raw
// resource values normalized by space, plus a virtual coordinate.
func PointFor(space resource.Space, v resource.Vector, virtual float64) Point {
	var p Point
	n := space.Normalize(v)
	for i := 0; i < int(resource.NumTypes); i++ {
		p[i] = n[i]
	}
	if virtual < 0 {
		virtual = 0
	}
	if virtual >= 1 {
		virtual = 0.999999
	}
	p[VirtualDim] = virtual
	return p
}

// Zone is a half-open box [Lo, Hi) in the unit space.
type Zone struct {
	Lo, Hi Point
}

// UnitZone covers the whole space.
func UnitZone() Zone {
	var z Zone
	for i := range z.Hi {
		z.Hi[i] = 1
	}
	return z
}

// Contains reports whether p lies inside the zone.
func (z Zone) Contains(p Point) bool {
	for i := range p {
		if p[i] < z.Lo[i] || p[i] >= z.Hi[i] {
			return false
		}
	}
	return true
}

// Volume returns the zone's volume.
func (z Zone) Volume() float64 {
	v := 1.0
	for i := range z.Lo {
		side := z.Hi[i] - z.Lo[i]
		if side <= 0 {
			return 0
		}
		v *= side
	}
	return v
}

// Center returns the zone's midpoint.
func (z Zone) Center() Point {
	var c Point
	for i := range c {
		c[i] = (z.Lo[i] + z.Hi[i]) / 2
	}
	return c
}

// Dist returns the L1 distance from the zone to a point (zero if the
// point is inside) — the greedy routing metric.
func (z Zone) Dist(p Point) float64 {
	d := 0.0
	for i := range p {
		switch {
		case p[i] < z.Lo[i]:
			d += z.Lo[i] - p[i]
		case p[i] >= z.Hi[i]:
			d += p[i] - z.Hi[i]
		}
	}
	return d
}

// Split divides the zone at coordinate at along dim, returning the
// lower and upper halves. It panics if at is not strictly inside.
func (z Zone) Split(dim int, at float64) (lo, hi Zone) {
	if at <= z.Lo[dim] || at >= z.Hi[dim] {
		panic(fmt.Sprintf("can: split of %v at dim %d coord %v outside zone", z, dim, at))
	}
	lo, hi = z, z
	lo.Hi[dim] = at
	hi.Lo[dim] = at
	return lo, hi
}

// Abuts reports whether two zones share a (Dims-1)-dimensional face:
// they touch along exactly one dimension and their closed extents
// overlap with positive measure in every other dimension.
func (z Zone) Abuts(o Zone) bool {
	touching := 0
	for i := range z.Lo {
		zl, zh, ol, oh := z.Lo[i], z.Hi[i], o.Lo[i], o.Hi[i]
		if zh == ol || oh == zl {
			touching++
			continue
		}
		// Require positive overlap in this dimension.
		lo := zl
		if ol > lo {
			lo = ol
		}
		hi := zh
		if oh < hi {
			hi = oh
		}
		if hi <= lo {
			return false
		}
	}
	return touching == 1
}

// Overlaps reports whether the zones share interior volume — used to
// detect conflicting ownership after takeover races.
func (z Zone) Overlaps(o Zone) bool {
	for i := range z.Lo {
		lo := z.Lo[i]
		if o.Lo[i] > lo {
			lo = o.Lo[i]
		}
		hi := z.Hi[i]
		if o.Hi[i] < hi {
			hi = o.Hi[i]
		}
		if hi <= lo {
			return false
		}
	}
	return true
}

func (z Zone) String() string {
	return fmt.Sprintf("[%v..%v]", z.Lo, z.Hi)
}

// LongestDim returns the index of the zone's longest side (lowest index
// on ties).
func (z Zone) LongestDim() int {
	best, bestLen := 0, z.Hi[0]-z.Lo[0]
	for i := 1; i < Dims; i++ {
		if l := z.Hi[i] - z.Lo[i]; l > bestLen {
			best, bestLen = i, l
		}
	}
	return best
}
