package can

import (
	"fmt"

	"repro/internal/transport"
)

// Join inserts this node into the CAN that bootstrap belongs to: pick a
// representative point, route to the zone owning it, and split that
// zone with the owner.
func (n *Node) Join(rt transport.Runtime, bootstrap transport.Addr) error {
	n.mu.Lock()
	n.point = n.pointFor()
	point := n.point
	me := n.infoLocked()
	n.mu.Unlock()

	owner, _, err := n.RouteVia(rt, bootstrap, point)
	if err != nil {
		return fmt.Errorf("can: join route via %s: %w", bootstrap, err)
	}
	raw, err := rt.Call(owner.Addr, MJoin, JoinReq{Joiner: me})
	if err != nil {
		return fmt.Errorf("can: join split at %s: %w", owner.Addr, err)
	}
	resp := raw.(JoinResp)

	n.mu.Lock()
	n.zones = []Zone{resp.Zone}
	n.neighbors = make(map[transport.Addr]*neighbor)
	now := rt.Now()
	for _, info := range resp.Neighbors {
		if info.Ref.Addr == n.host.Addr() {
			continue
		}
		n.neighbors[info.Ref.Addr] = &neighbor{info: info, lastSeen: now}
	}
	n.joined = true
	n.mu.Unlock()

	// Announce ourselves to the inherited neighbors immediately so they
	// learn the new topology without waiting a gossip period.
	n.gossipOnce(rt)
	return nil
}

// handleJoin runs at the current owner of the joiner's point: split the
// zone containing it and hand one half to the joiner.
func (n *Node) handleJoin(rt transport.Runtime, from transport.Addr, req any) (any, error) {
	joiner := req.(JoinReq).Joiner
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.joined {
		return nil, ErrNotJoined
	}
	zi := -1
	for i, z := range n.zones {
		if z.Contains(joiner.Point) {
			zi = i
			break
		}
	}
	if zi < 0 {
		return nil, fmt.Errorf("can: %s does not own %v", n.host.Addr(), joiner.Point)
	}
	zone := n.zones[zi]
	mine, theirs := splitFor(zone, n.point, joiner.Point)
	n.zones[zi] = mine

	// Starter neighbor set for the joiner: us plus every neighbor whose
	// zones abut the joiner's new zone.
	starters := []Info{n.infoLocked()}
	for _, addr := range n.sortedNeighborAddrsLocked() {
		nb := n.neighbors[addr]
		if nb.dead != 0 {
			continue
		}
		for _, z := range nb.info.Zones {
			if z.Abuts(theirs) {
				starters = append(starters, nb.info)
				break
			}
		}
	}
	// Track the joiner as our neighbor.
	jinfo := joiner
	jinfo.Zones = []Zone{theirs}
	n.neighbors[joiner.Ref.Addr] = &neighbor{info: jinfo, lastSeen: rt.Now()}
	n.pruneNonAbuttingLocked()
	return JoinResp{Zone: theirs, Neighbors: starters}, nil
}

// splitFor divides zone between the owner's point and the joiner's
// point. When the points differ, the split falls midway between them
// along the dimension of greatest separation (relative to zone extent),
// guaranteeing each node keeps the half containing its own point. When
// the points coincide (virtual dimension disabled and identical
// capabilities — the paper's clustering pathology), the zone is halved
// along its longest side and the owner keeps the half with the point.
func splitFor(zone Zone, owner, joiner Point) (ownerZone, joinerZone Zone) {
	bestDim, bestSep := -1, 0.0
	for d := 0; d < Dims; d++ {
		side := zone.Hi[d] - zone.Lo[d]
		if side <= 0 {
			continue
		}
		sep := abs(owner[d]-joiner[d]) / side
		if sep > bestSep {
			bestDim, bestSep = d, sep
		}
	}
	if bestDim >= 0 {
		at := (owner[bestDim] + joiner[bestDim]) / 2
		// Guard against degenerate splits at the zone edge.
		if at > zone.Lo[bestDim] && at < zone.Hi[bestDim] {
			lo, hi := zone.Split(bestDim, at)
			if owner[bestDim] < joiner[bestDim] {
				return lo, hi
			}
			return hi, lo
		}
	}
	// Identical (or degenerate) points: halve the longest side.
	d := zone.LongestDim()
	at := (zone.Lo[d] + zone.Hi[d]) / 2
	lo, hi := zone.Split(d, at)
	if owner[d] < at {
		return lo, hi
	}
	return hi, lo
}

// pruneNonAbuttingLocked drops neighbors that no longer touch any of
// our zones (zone geometry changed after splits or takeovers).
func (n *Node) pruneNonAbuttingLocked() {
	for addr, nb := range n.neighbors {
		if n.abutsAnyLocked(nb.info.Zones) {
			continue
		}
		delete(n.neighbors, addr)
	}
}

func (n *Node) abutsAnyLocked(zones []Zone) bool {
	for _, mine := range n.zones {
		for _, theirs := range zones {
			if mine.Abuts(theirs) || mine.Overlaps(theirs) {
				return true
			}
		}
	}
	return false
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
