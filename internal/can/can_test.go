package can

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/simhost"
	"repro/internal/simnet"
	"repro/internal/transport"
)

func hashOf(i int) ids.ID { return ids.HashString(fmt.Sprintf("h%d", i)) }

// mesh is a simulated CAN deployment for tests.
type mesh struct {
	e     *sim.Engine
	net   *simnet.Net
	hosts []*simhost.Host
	nodes []*Node
}

func newMesh(t *testing.T, n int, seed int64, cfg Config, caps func(i int) (resource.Vector, string)) *mesh {
	t.Helper()
	e := sim.NewEngine(seed)
	net := simnet.New(e)
	net.Latency = simnet.UniformLatency{Min: 5 * time.Millisecond, Max: 20 * time.Millisecond}
	m := &mesh{e: e, net: net}
	for i := 0; i < n; i++ {
		h := simhost.New(net.NewEndpoint(simnet.Addr(fmt.Sprintf("n%03d", i))))
		cv, os := caps(i)
		m.hosts = append(m.hosts, h)
		m.nodes = append(m.nodes, New(h, cv, os, cfg))
	}
	return m
}

func (m *mesh) do(i int, fn func(rt transport.Runtime)) {
	done := false
	m.hosts[i].Go("test", func(rt transport.Runtime) {
		defer func() { done = true }()
		fn(rt)
	})
	for !done {
		m.e.RunFor(time.Second)
	}
}

func capsVaried(i int) (resource.Vector, string) {
	oses := []string{"linux", "windows", "macos"}
	return resource.Vector{
		float64(1 + i%10),
		float64(256 * (1 + i%8)),
		float64(10 * (1 + i%16)),
	}, oses[i%len(oses)]
}

func capsUniform(i int) (resource.Vector, string) {
	return resource.Vector{5, 4096, 100}, "linux"
}

func TestWarmStartTilesSpace(t *testing.T) {
	m := newMesh(t, 40, 1, Config{}, capsVaried)
	defer m.e.Shutdown()
	WarmStart(m.nodes, 0)
	if msg := CoverageError(m.nodes, 3); msg != "" {
		t.Fatal(msg)
	}
	// Each node contains its own point (virtual dim active, points
	// distinct, so splits always preserve point-in-zone).
	for i, n := range m.nodes {
		found := false
		for _, z := range n.Zones() {
			if z.Contains(n.Point()) {
				found = true
			}
		}
		if !found {
			t.Fatalf("node %d displaced from its own zone", i)
		}
	}
}

func TestWarmStartNeighborsSymmetric(t *testing.T) {
	m := newMesh(t, 24, 2, Config{}, capsVaried)
	defer m.e.Shutdown()
	WarmStart(m.nodes, 0)
	byAddr := map[transport.Addr]*Node{}
	for i, n := range m.nodes {
		byAddr[m.hosts[i].Addr()] = n
	}
	for i, n := range m.nodes {
		for _, na := range n.Neighbors() {
			other := byAddr[na]
			sym := false
			for _, back := range other.Neighbors() {
				if back == m.hosts[i].Addr() {
					sym = true
				}
			}
			if !sym {
				t.Fatalf("neighbor relation %s->%s not symmetric", m.hosts[i].Addr(), na)
			}
		}
		if len(n.Neighbors()) == 0 {
			t.Fatalf("node %d has no neighbors", i)
		}
	}
}

func TestRouteReachesOwner(t *testing.T) {
	m := newMesh(t, 32, 3, Config{}, capsVaried)
	defer m.e.Shutdown()
	WarmStart(m.nodes, 0)
	for trial := 0; trial < 30; trial++ {
		var target Point
		rng := m.e.NewRand()
		for d := range target {
			target[d] = rng.Float64()
		}
		src := trial % len(m.nodes)
		m.do(src, func(rt transport.Runtime) {
			owner, hops, err := m.nodes[src].Route(rt, target)
			if err != nil {
				t.Errorf("route: %v", err)
				return
			}
			// Verify ownership.
			var ownerNode *Node
			for i, h := range m.hosts {
				if h.Addr() == owner.Addr {
					ownerNode = m.nodes[i]
				}
			}
			ok := false
			for _, z := range ownerNode.Zones() {
				if z.Contains(target) {
					ok = true
				}
			}
			if !ok {
				t.Errorf("routed to %s which does not own %v", owner.Addr, target)
			}
			if hops > 32 {
				t.Errorf("%d hops for 32 nodes", hops)
			}
		})
	}
}

func TestSequentialJoinsTileSpace(t *testing.T) {
	m := newMesh(t, 12, 4, Config{}, capsVaried)
	defer m.e.Shutdown()
	m.nodes[0].Create()
	m.nodes[0].Start()
	for i := 1; i < len(m.nodes); i++ {
		i := i
		m.do(i, func(rt transport.Runtime) {
			if err := m.nodes[i].Join(rt, m.hosts[0].Addr()); err != nil {
				t.Fatalf("join %d: %v", i, err)
			}
		})
		m.nodes[i].Start()
		m.e.RunFor(2 * time.Second)
	}
	m.e.RunFor(10 * time.Second)
	if msg := CoverageError(m.nodes, 3); msg != "" {
		t.Fatal(msg)
	}
	// Routing works between arbitrary pairs after joins.
	m.do(7, func(rt transport.Runtime) {
		if _, _, err := m.nodes[7].Route(rt, Point{0.9, 0.9, 0.9, 0.9}); err != nil {
			t.Fatalf("route after joins: %v", err)
		}
	})
}

func TestMatchPrefersLeastLoaded(t *testing.T) {
	m := newMesh(t, 16, 5, Config{}, capsUniform)
	defer m.e.Shutdown()
	loads := make([]int, 16)
	for i := range m.nodes {
		i := i
		m.nodes[i].SetLoadFn(func() int { return loads[i] })
	}
	for i := range loads {
		loads[i] = 5
	}
	loads[3] = 0
	WarmStart(m.nodes, 0) // neighbor info snapshots the loads
	// Find an owner adjacent to node 3 so it appears in the candidate
	// set; with uniform caps nobody strictly dominates, so the owner
	// itself is usually chosen — unless it IS node 3's neighborhood.
	m.do(3, func(rt transport.Runtime) {
		run, _, err := m.nodes[3].FindRunNode(rt, resource.Unconstrained, nil, false)
		if err != nil {
			t.Fatalf("match: %v", err)
		}
		if run.Addr != m.hosts[3].Addr() {
			t.Fatalf("expected owner itself (least loaded), got %s", run.Addr)
		}
	})
}

func TestMatchDominatingNeighborWins(t *testing.T) {
	m := newMesh(t, 16, 6, Config{}, capsVaried)
	defer m.e.Shutdown()
	for i := range m.nodes {
		i := i
		m.nodes[i].SetLoadFn(func() int { return 10 })
	}
	WarmStart(m.nodes, 0)
	// Give every node's neighbors a fresh view where one dominating
	// neighbor has load 0; run matchmaking from each node and confirm
	// the choice always satisfies the constraints.
	cons := resource.Unconstrained.Require(resource.CPU, 3)
	for src := 0; src < 16; src++ {
		src := src
		m.do(src, func(rt transport.Runtime) {
			run, _, err := m.nodes[src].FindRunNode(rt, cons, nil, false)
			if errors.Is(err, ErrNoCandidate) {
				return // acceptable from low-capability corners
			}
			if err != nil {
				t.Errorf("from %d: %v", src, err)
				return
			}
			for i, h := range m.hosts {
				if h.Addr() == run.Addr {
					if !cons.SatisfiedBy(m.nodes[i].Caps(), m.nodes[i].OS()) {
						t.Errorf("chosen node %d does not satisfy %s", i, cons)
					}
				}
			}
		})
	}
}

func TestMatchForwardsTowardCapability(t *testing.T) {
	// Only one node can satisfy the constraint; matchmaking starting at
	// the weakest corner must walk upward and find it.
	m := newMesh(t, 24, 7, Config{}, func(i int) (resource.Vector, string) {
		cpu := 2.0
		if i == 20 {
			cpu = 10
		}
		return resource.Vector{cpu, 1024, 50}, "linux"
	})
	defer m.e.Shutdown()
	WarmStart(m.nodes, 0)
	cons := resource.Unconstrained.Require(resource.CPU, 9)
	// Start from the owner of the job's insertion point, as the grid
	// layer would.
	m.do(0, func(rt transport.Runtime) {
		jobPt := m.nodes[0].JobPoint(ids.HashString("job1"), cons)
		owner, _, err := m.nodes[0].Route(rt, jobPt)
		if err != nil {
			t.Fatalf("route: %v", err)
		}
		var ownerIdx int
		for i, h := range m.hosts {
			if h.Addr() == owner.Addr {
				ownerIdx = i
			}
		}
		run, stats, err := m.nodes[ownerIdx].FindRunNode(rt, cons, nil, false)
		if err != nil {
			t.Fatalf("match: %v (stats %+v)", err, stats)
		}
		if run.Addr != m.hosts[20].Addr() {
			t.Fatalf("chose %s, want n020", run.Addr)
		}
	})
}

func TestMatchExcludes(t *testing.T) {
	m := newMesh(t, 8, 8, Config{}, capsUniform)
	defer m.e.Shutdown()
	WarmStart(m.nodes, 0)
	m.do(2, func(rt transport.Runtime) {
		run, _, err := m.nodes[2].FindRunNode(rt, resource.Unconstrained, []transport.Addr{m.hosts[2].Addr()}, false)
		if err != nil {
			// With uniform caps nobody dominates, so excluding the owner
			// may legitimately exhaust candidates after forwarding.
			if !errors.Is(err, ErrNoCandidate) {
				t.Fatalf("match: %v", err)
			}
			return
		}
		if run.Addr == m.hosts[2].Addr() {
			t.Fatal("excluded node chosen")
		}
	})
}

func TestMatchImpossible(t *testing.T) {
	m := newMesh(t, 8, 9, Config{}, capsUniform)
	defer m.e.Shutdown()
	WarmStart(m.nodes, 0)
	m.do(0, func(rt transport.Runtime) {
		_, _, err := m.nodes[0].FindRunNode(rt, resource.Unconstrained.Require(resource.CPU, 99), nil, false)
		if !errors.Is(err, ErrNoCandidate) {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestVirtualDimSeparatesIdenticalNodes(t *testing.T) {
	m := newMesh(t, 16, 10, Config{}, capsUniform)
	defer m.e.Shutdown()
	WarmStart(m.nodes, 0)
	points := map[Point]bool{}
	for _, n := range m.nodes {
		points[n.Point()] = true
	}
	if len(points) != 16 {
		t.Fatalf("only %d distinct points for 16 identical nodes", len(points))
	}
	if msg := CoverageError(m.nodes, 3); msg != "" {
		t.Fatal(msg)
	}
}

func TestNoVirtualDimStillTiles(t *testing.T) {
	m := newMesh(t, 16, 11, Config{DisableVirtualDim: true}, capsUniform)
	defer m.e.Shutdown()
	WarmStart(m.nodes, 0)
	if msg := CoverageError(m.nodes, 3); msg != "" {
		t.Fatal(msg)
	}
}

func TestTakeoverHealsCoverage(t *testing.T) {
	m := newMesh(t, 16, 12, Config{
		GossipEvery:   500 * time.Millisecond,
		NeighborTTL:   2 * time.Second,
		TakeoverAfter: time.Second,
	}, capsVaried)
	defer m.e.Shutdown()
	WarmStart(m.nodes, 0)
	for _, n := range m.nodes {
		n.Start()
	}
	m.e.RunFor(3 * time.Second)
	victim := 5
	m.hosts[victim].Endpoint().Crash()
	m.e.RunFor(30 * time.Second)
	live := make([]*Node, 0, 15)
	for i, n := range m.nodes {
		if m.hosts[i].Up() {
			live = append(live, n)
		}
	}
	if msg := CoverageError(live, 3); msg != "" {
		t.Fatalf("coverage hole after takeover: %s", msg)
	}
	// Routing to a point in the dead node's former zone succeeds.
	deadZones := m.nodes[victim].Zones()
	target := deadZones[0].Center()
	m.do(0, func(rt transport.Runtime) {
		owner, _, err := m.nodes[0].Route(rt, target)
		if err != nil {
			t.Fatalf("route into dead zone: %v", err)
		}
		if owner.Addr == m.hosts[victim].Addr() {
			t.Fatal("route returned the dead node")
		}
	})
}

func TestGossipSpreadsLoadInfo(t *testing.T) {
	m := newMesh(t, 8, 13, Config{GossipEvery: 500 * time.Millisecond}, capsUniform)
	defer m.e.Shutdown()
	WarmStart(m.nodes, 0)
	for _, n := range m.nodes {
		n.Start()
	}
	m.nodes[2].SetLoadFn(func() int { return 77 })
	m.e.RunFor(5 * time.Second)
	// Some neighbor of node 2 must know its load.
	addr2 := m.hosts[2].Addr()
	known := false
	for i, n := range m.nodes {
		if i == 2 {
			continue
		}
		n.mu.Lock()
		if nb, ok := n.neighbors[addr2]; ok && nb.info.Load == 77 {
			known = true
		}
		n.mu.Unlock()
	}
	if !known {
		t.Fatal("load info did not spread via gossip")
	}
}

func TestPushMovesJobOffOverloadedOwner(t *testing.T) {
	// All nodes idle except the owner region; with push enabled the job
	// should land elsewhere.
	m := newMesh(t, 16, 14, Config{GossipEvery: 300 * time.Millisecond}, capsVaried)
	defer m.e.Shutdown()
	WarmStart(m.nodes, 0)
	for _, n := range m.nodes {
		n.Start()
	}
	// Pick the owner of the unconstrained-job region and overload it.
	var ownerIdx = -1
	m.do(0, func(rt transport.Runtime) {
		pt := m.nodes[0].JobPoint(ids.HashString("pushjob"), resource.Unconstrained)
		owner, _, err := m.nodes[0].Route(rt, pt)
		if err != nil {
			t.Fatalf("route: %v", err)
		}
		for i, h := range m.hosts {
			if h.Addr() == owner.Addr {
				ownerIdx = i
			}
		}
	})
	m.nodes[ownerIdx].SetLoadFn(func() int { return 50 })
	m.e.RunFor(5 * time.Second) // gossip + dir-load convergence
	m.do(ownerIdx, func(rt transport.Runtime) {
		run, stats, err := m.nodes[ownerIdx].FindRunNode(rt, resource.Unconstrained, nil, true)
		if err != nil {
			t.Fatalf("match: %v", err)
		}
		if run.Addr == m.hosts[ownerIdx].Addr() {
			t.Fatalf("push kept the job on the overloaded owner (stats %+v)", stats)
		}
		if stats.Pushes == 0 {
			t.Fatalf("no pushes recorded: %+v", stats)
		}
	})
}

func TestRefZero(t *testing.T) {
	var r Ref
	if !r.IsZero() || r.String() != "<none>" {
		t.Fatal("zero Ref misbehaves")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.MatchTTL == 0 || c.GossipEvery == 0 || c.Space == (resource.Space{}) {
		t.Fatalf("defaults not applied: %+v", c)
	}
	if c.DisableVirtualDim {
		t.Fatal("virtual dimension must default on")
	}
}
