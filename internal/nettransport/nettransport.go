// Package nettransport implements transport.Host over real TCP sockets
// with gob framing. The same Chord, CAN, RN-Tree, and grid protocol
// code that runs under the simulator runs over this transport in live
// deployments (cmd/gridnode); only the Host/Runtime binding changes.
package nettransport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/transport"
)

// DefaultCallTimeout bounds Call when no explicit timeout is given.
const DefaultCallTimeout = 5 * time.Second

// envelope frames one request on the wire.
type envelope struct {
	Method  string
	From    string
	Payload any
}

// reply frames one response.
type reply struct {
	Payload any
	ErrMsg  string
	ErrKind int // 0 none, 1 no-handler, 2 handler error
}

var seedCounter int64

// Host is one process's TCP attachment to the grid.
type Host struct {
	ln    net.Listener
	addr  transport.Addr
	start time.Time

	mu       sync.Mutex
	handlers map[string]transport.Handler
	closed   bool
	wg       sync.WaitGroup

	obsv atomic.Pointer[rpcObs]
}

// rpcObs holds the transport's resolved instruments plus a per-method
// cache, so the per-call hot path is two sync.Map loads rather than
// registry lookups that re-render labeled metric names.
type rpcObs struct {
	reg      *obs.Registry
	client   sync.Map // method -> *methodObs
	server   sync.Map // method -> *methodObs
	bytesIn  *obs.Counter
	bytesOut *obs.Counter
}

type methodObs struct {
	calls *obs.Counter
	errs  *obs.Counter
	secs  *obs.Histogram
}

func (ro *rpcObs) method(cache *sync.Map, side, method string) *methodObs {
	if m, ok := cache.Load(method); ok {
		return m.(*methodObs)
	}
	m := &methodObs{
		calls: ro.reg.Counter("rpc_"+side+"_calls_total", "method", method),
		errs:  ro.reg.Counter("rpc_"+side+"_errors_total", "method", method),
		secs:  ro.reg.Histogram("rpc_"+side+"_seconds", obs.DefBucketsSeconds, "method", method),
	}
	actual, _ := cache.LoadOrStore(method, m)
	return actual.(*methodObs)
}

// SetObs attaches an observability sink: per-method client/server call
// counts, error counts, latency histograms, and total bytes moved in
// each direction. Passing nil detaches. Safe to call at any time.
func (h *Host) SetObs(o *obs.Obs) {
	reg := o.Registry()
	if reg == nil {
		h.obsv.Store(nil)
		return
	}
	h.obsv.Store(&rpcObs{
		reg:      reg,
		bytesIn:  reg.Counter("rpc_bytes_total", "dir", "in"),
		bytesOut: reg.Counter("rpc_bytes_total", "dir", "out"),
	})
}

// countingConn counts bytes crossing a net.Conn into obs counters.
type countingConn struct {
	net.Conn
	in, out *obs.Counter
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.in.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.out.Add(int64(n))
	return n, err
}

// Listen binds a host to a TCP address ("127.0.0.1:0" picks a free
// port; Addr reports the actual one).
func Listen(addr string) (*Host, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("nettransport: listen %s: %w", addr, err)
	}
	h := &Host{
		ln:       ln,
		addr:     transport.Addr(ln.Addr().String()),
		start:    time.Now(),
		handlers: make(map[string]transport.Handler),
	}
	h.wg.Add(1)
	go h.acceptLoop()
	return h, nil
}

// Addr implements transport.Host.
func (h *Host) Addr() transport.Addr { return h.addr }

// Up implements transport.Host.
func (h *Host) Up() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return !h.closed
}

// Handle implements transport.Host.
func (h *Host) Handle(method string, fn transport.Handler) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.handlers[method] = fn
}

// Go implements transport.Host: fn runs on its own goroutine with a
// live runtime.
func (h *Host) Go(name string, fn func(rt transport.Runtime)) {
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		fn(h.newRuntime())
	}()
}

// Close shuts the listener down. In-flight handlers finish; subsequent
// calls to this host fail.
func (h *Host) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	h.mu.Unlock()
	h.ln.Close()
}

func (h *Host) newRuntime() *runtime {
	seed := atomic.AddInt64(&seedCounter, 1)
	return &runtime{
		h:   h,
		rng: rand.New(rand.NewSource(time.Now().UnixNano() ^ seed<<21)),
	}
}

func (h *Host) acceptLoop() {
	defer h.wg.Done()
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			return // listener closed
		}
		h.wg.Add(1)
		go func() {
			defer h.wg.Done()
			h.serveConn(conn)
		}()
	}
}

// serveConn handles one request per connection (simple and robust; the
// grid's direct heartbeat connections are cheap at these rates).
func (h *Host) serveConn(conn net.Conn) {
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(30 * time.Second))
	ro := h.obsv.Load()
	if ro != nil {
		conn = &countingConn{Conn: conn, in: ro.bytesIn, out: ro.bytesOut}
	}
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var env envelope
	if err := dec.Decode(&env); err != nil {
		return
	}
	h.mu.Lock()
	fn, ok := h.handlers[env.Method]
	closed := h.closed
	h.mu.Unlock()
	if closed {
		return
	}
	var mo *methodObs
	var began time.Time
	if ro != nil {
		mo = ro.method(&ro.server, "server", env.Method)
		mo.calls.Inc()
		began = time.Now()
	}
	var rep reply
	if !ok {
		rep = reply{ErrMsg: env.Method, ErrKind: 1}
	} else {
		resp, err := fn(h.newRuntime(), transport.Addr(env.From), env.Payload)
		if err != nil {
			rep = reply{ErrMsg: err.Error(), ErrKind: 2}
		} else {
			rep = reply{Payload: resp}
		}
	}
	if mo != nil {
		mo.secs.Observe(time.Since(began).Seconds())
		if rep.ErrKind != 0 {
			mo.errs.Inc()
		}
	}
	_ = enc.Encode(&rep)
}

// runtime is the live (wall-clock) transport.Runtime.
type runtime struct {
	h   *Host
	rng *rand.Rand
}

func (r *runtime) Now() time.Duration    { return time.Since(r.h.start) }
func (r *runtime) Sleep(d time.Duration) { time.Sleep(d) }
func (r *runtime) Rand() *rand.Rand      { return r.rng }

func (r *runtime) Call(to transport.Addr, method string, req any) (any, error) {
	return r.CallT(to, method, req, DefaultCallTimeout)
}

func (r *runtime) CallT(to transport.Addr, method string, req any, timeout time.Duration) (any, error) {
	if !r.h.Up() {
		return nil, transport.ErrDown
	}
	var mo *methodObs
	ro := r.h.obsv.Load()
	if ro != nil {
		mo = ro.method(&ro.client, "client", method)
		mo.calls.Inc()
		began := time.Now()
		defer func() { mo.secs.Observe(time.Since(began).Seconds()) }()
	}
	deadline := time.Now().Add(timeout)
	conn, err := net.DialTimeout("tcp", string(to), timeout)
	if err != nil {
		mo.errCount()
		var nerr net.Error
		if errors.As(err, &nerr) && nerr.Timeout() {
			return nil, transport.ErrTimeout
		}
		return nil, transport.ErrUnreachable
	}
	defer conn.Close()
	if ro != nil {
		conn = &countingConn{Conn: conn, in: ro.bytesIn, out: ro.bytesOut}
	}
	_ = conn.SetDeadline(deadline)
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode(&envelope{Method: method, From: string(r.h.addr), Payload: req}); err != nil {
		mo.errCount()
		return nil, fmt.Errorf("%w: send: %v", transport.ErrUnreachable, err)
	}
	var rep reply
	if err := dec.Decode(&rep); err != nil {
		mo.errCount()
		var nerr net.Error
		if errors.As(err, &nerr) && nerr.Timeout() {
			return nil, transport.ErrTimeout
		}
		return nil, fmt.Errorf("%w: recv: %v", transport.ErrUnreachable, err)
	}
	switch rep.ErrKind {
	case 1:
		mo.errCount()
		return nil, fmt.Errorf("%w: %s on %s", transport.ErrNoHandler, rep.ErrMsg, to)
	case 2:
		mo.errCount()
		return nil, errors.New(rep.ErrMsg)
	}
	return rep.Payload, nil
}

// errCount increments the method's error counter; nil-safe so call
// sites need no obs-enabled guard.
func (m *methodObs) errCount() {
	if m != nil {
		m.errs.Inc()
	}
}
