// Package nettransport implements transport.Host over real TCP
// sockets. The same Chord, CAN, RN-Tree, and grid protocol code that
// runs under the simulator runs over this transport in live
// deployments (cmd/gridnode); only the Host/Runtime binding changes.
//
// The wire protocol is a length-prefixed framed codec over persistent
// pooled connections (see frame.go): one connection per peer carries
// many concurrent requests, paired to responses by ID, with per-call
// deadlines carried in the request envelope, idle reaping on both
// sides, and reconnect-on-error. Opts.PerDial restores the historical
// dial-per-call behavior as a benchmarking baseline
// (scripts/live_bench.sh measures the difference).
package nettransport

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/transport"
)

// DefaultCallTimeout bounds Call when no explicit timeout is given.
const DefaultCallTimeout = 5 * time.Second

var seedCounter int64

// Opts tunes a Host. The zero value selects the defaults.
type Opts struct {
	// PerDial disables connection pooling: every call dials a fresh
	// TCP connection, sends one framed request, and closes it. This is
	// the pre-pooling baseline, kept for benchmarking.
	PerDial bool
	// IdleTimeout reaps connections (pooled client conns and inbound
	// server conns) with no traffic and no in-flight calls
	// (default 60s).
	IdleTimeout time.Duration
	// CloseDrain bounds how long Close waits for the accept loop and
	// in-flight handlers to finish before returning (default 2s).
	CloseDrain time.Duration
	// MaxFrame bounds a single frame's encoded size in both directions;
	// the reader rejects larger length prefixes before allocating
	// (default 64 MB).
	MaxFrame int
	// Chaos, when set, deterministically injects network faults into
	// this host's outbound calls — see chaos.go and gridnode -chaos.
	// Nil injects nothing.
	Chaos *Chaos
	// BreakerThreshold is how many consecutive transport-level failures
	// open a peer's circuit breaker (default 5; negative disables
	// breakers entirely). See breaker.go.
	BreakerThreshold int
	// BreakerCooldown is the first open window before a half-open probe
	// is admitted (default 1s); each failed probe doubles it up to
	// BreakerMaxCooldown (default 30s), with jitter.
	BreakerCooldown    time.Duration
	BreakerMaxCooldown time.Duration
	// DialBackoff spaces reconnect attempts to a peer whose dials fail:
	// after a failed dial, further dials to that peer are suppressed
	// (failing fast as unreachable) for an exponentially growing,
	// jittered window — default 100ms doubling up to DialBackoffMax
	// (default 5s), reset by any successful dial. Negative disables.
	DialBackoff    time.Duration
	DialBackoffMax time.Duration
}

func (o Opts) withDefaults() Opts {
	if o.IdleTimeout == 0 {
		o.IdleTimeout = 60 * time.Second
	}
	if o.CloseDrain == 0 {
		o.CloseDrain = 2 * time.Second
	}
	if o.MaxFrame == 0 {
		o.MaxFrame = defaultMaxFrame
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown == 0 {
		o.BreakerCooldown = time.Second
	}
	if o.BreakerMaxCooldown == 0 {
		o.BreakerMaxCooldown = 30 * time.Second
	}
	if o.DialBackoff == 0 {
		o.DialBackoff = 100 * time.Millisecond
	}
	if o.DialBackoffMax == 0 {
		o.DialBackoffMax = 5 * time.Second
	}
	return o
}

// Host is one process's TCP attachment to the grid.
type Host struct {
	ln    net.Listener
	addr  transport.Addr
	start time.Time
	opts  Opts
	pool  *pool
	brk   *breakerSet
	done  chan struct{} // closed when the host closes

	mu       sync.Mutex
	handlers map[string]transport.Handler
	closed   bool
	conns    map[net.Conn]struct{} // live inbound connections
	wg       sync.WaitGroup        // Go() activities (may be long-lived)
	connWg   sync.WaitGroup        // accept loop + inbound conns + in-flight handlers

	obsv atomic.Pointer[rpcObs]
}

// rpcObs holds the transport's resolved instruments plus a per-method
// cache, so the per-call hot path is two sync.Map loads rather than
// registry lookups that re-render labeled metric names.
type rpcObs struct {
	reg      *obs.Registry
	client   sync.Map // method -> *methodObs
	server   sync.Map // method -> *methodObs
	bytesIn  *obs.Counter
	bytesOut *obs.Counter
}

type methodObs struct {
	calls *obs.Counter
	errs  *obs.Counter
	secs  *obs.Histogram
}

func (ro *rpcObs) method(cache *sync.Map, side, method string) *methodObs {
	if m, ok := cache.Load(method); ok {
		return m.(*methodObs)
	}
	m := &methodObs{
		calls: ro.reg.Counter("rpc_"+side+"_calls_total", "method", method),
		errs:  ro.reg.Counter("rpc_"+side+"_errors_total", "method", method),
		secs:  ro.reg.Histogram("rpc_"+side+"_seconds", obs.DefBucketsSeconds, "method", method),
	}
	actual, _ := cache.LoadOrStore(method, m)
	return actual.(*methodObs)
}

// SetObs attaches an observability sink: per-method client/server call
// counts, error counts, latency histograms, and total bytes moved in
// each direction. Passing nil detaches. Safe to call at any time;
// connections opened before attachment keep counting with their
// original (possibly nil) sinks.
func (h *Host) SetObs(o *obs.Obs) {
	reg := o.Registry()
	if reg == nil {
		h.obsv.Store(nil)
		return
	}
	h.obsv.Store(&rpcObs{
		reg:      reg,
		bytesIn:  reg.Counter("rpc_bytes_total", "dir", "in"),
		bytesOut: reg.Counter("rpc_bytes_total", "dir", "out"),
	})
	reg.GaugeFunc("rpc_breakers_open", func() float64 {
		return float64(h.brk.openCount())
	})
}

// countingConn counts bytes crossing a net.Conn into obs counters.
type countingConn struct {
	net.Conn
	in, out *obs.Counter
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.in.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.out.Add(int64(n))
	return n, err
}

// Listen binds a pooled host to a TCP address ("127.0.0.1:0" picks a
// free port; Addr reports the actual one).
func Listen(addr string) (*Host, error) {
	return ListenOpts(addr, Opts{})
}

// ListenOpts binds a host with explicit transport options.
func ListenOpts(addr string, opts Opts) (*Host, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("nettransport: listen %s: %w", addr, err)
	}
	h := &Host{
		ln:       ln,
		addr:     transport.Addr(ln.Addr().String()),
		start:    time.Now(),
		opts:     opts.withDefaults(),
		done:     make(chan struct{}),
		handlers: make(map[string]transport.Handler),
		conns:    make(map[net.Conn]struct{}),
	}
	h.pool = newPool(h)
	h.brk = newBreakerSet(h)
	go h.pool.reapLoop()
	h.connWg.Add(1)
	go h.acceptLoop()
	return h, nil
}

// Addr implements transport.Host.
func (h *Host) Addr() transport.Addr { return h.addr }

// Up implements transport.Host.
func (h *Host) Up() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return !h.closed
}

// Handle implements transport.Host.
func (h *Host) Handle(method string, fn transport.Handler) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.handlers[method] = fn
}

// Go implements transport.Host: fn runs on its own goroutine with a
// live runtime. Activities are commonly infinite loops, so Close does
// not wait for them (unlike in-flight RPC handlers, which it drains).
func (h *Host) Go(name string, fn func(rt transport.Runtime)) {
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		fn(h.newRuntime())
	}()
}

// Close shuts the host down: the listener stops, pooled and inbound
// connections close (failing their pending calls fast), and the accept
// loop plus in-flight handlers are drained — bounded by
// Opts.CloseDrain — before Close returns, so a caller may immediately
// re-listen on the same address without racing the old host's
// goroutines.
func (h *Host) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	conns := make([]net.Conn, 0, len(h.conns))
	for c := range h.conns {
		conns = append(conns, c)
	}
	h.mu.Unlock()
	close(h.done)
	h.ln.Close()
	h.pool.closeAll()
	for _, c := range conns {
		c.Close()
	}
	drained := make(chan struct{})
	go func() {
		h.connWg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-time.After(h.opts.CloseDrain):
	}
}

func (h *Host) isClosed() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.closed
}

// registerConn tracks an inbound connection for teardown on Close. It
// reports false (and closes the conn) when the host already closed.
func (h *Host) registerConn(conn net.Conn) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		conn.Close()
		return false
	}
	h.conns[conn] = struct{}{}
	return true
}

func (h *Host) dropConn(conn net.Conn) {
	h.mu.Lock()
	delete(h.conns, conn)
	h.mu.Unlock()
}

func (h *Host) newRuntime() *runtime {
	seed := atomic.AddInt64(&seedCounter, 1)
	return &runtime{
		h:   h,
		rng: rand.New(rand.NewSource(time.Now().UnixNano() ^ seed<<21)),
	}
}

func (h *Host) acceptLoop() {
	defer h.connWg.Done()
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !h.registerConn(conn) {
			return
		}
		h.connWg.Add(1)
		go func() {
			defer h.connWg.Done()
			h.serveConn(conn)
		}()
	}
}

// serveConn demultiplexes one inbound framed connection: requests are
// served concurrently (each on its own goroutine), responses are
// written back under the connection's write lock. The loop exits when
// the peer hangs up, the host closes, or the connection sits idle past
// IdleTimeout with no handler in flight.
func (h *Host) serveConn(rawConn net.Conn) {
	defer func() {
		h.dropConn(rawConn)
		rawConn.Close()
	}()
	conn := rawConn
	if ro := h.obsv.Load(); ro != nil {
		conn = &countingConn{Conn: conn, in: ro.bytesIn, out: ro.bytesOut}
	}
	br := bufio.NewReader(conn)
	var wmu sync.Mutex
	var inflight atomic.Int64
	for {
		_ = conn.SetReadDeadline(time.Now().Add(h.opts.IdleTimeout))
		f, err := readFrame(br, h.opts.MaxFrame)
		if err != nil {
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				if inflight.Load() > 0 {
					continue // a slow handler is not idleness
				}
				return // idle reap
			}
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || h.isClosed() {
				return
			}
			// Decode failure on a live stream: frame sync is gone, so
			// nothing further can be answered. Say so (connection-scoped
			// error, ID 0) before closing — otherwise every call pending
			// on this connection blocks out its full deadline and
			// reports a timeout for what is really an unusable peer.
			_ = writeFrame(conn, &wmu, &frame{
				Kind: frameResp, ErrKind: errDown, ErrMsg: "bad frame: " + err.Error(),
			}, time.Now().Add(time.Second), h.opts.MaxFrame)
			return
		}
		if f.Kind != frameReq {
			continue
		}
		if h.isClosed() {
			_ = writeFrame(conn, &wmu, &frame{
				Kind: frameResp, ID: f.ID, ErrKind: errDown, ErrMsg: "host closed",
			}, time.Now().Add(time.Second), h.opts.MaxFrame)
			continue
		}
		inflight.Add(1)
		h.connWg.Add(1)
		go func(f *frame, recv time.Time) {
			defer h.connWg.Done()
			defer inflight.Add(-1)
			h.serveRequest(conn, &wmu, f, recv)
		}(f, time.Now())
	}
}

// serveRequest runs one handler and writes its response. The response
// write deadline comes from the caller's own timeout (carried in the
// envelope), so a handler slower than any fixed server-side constant
// still gets its reply delivered as long as the caller is waiting.
func (h *Host) serveRequest(conn net.Conn, wmu *sync.Mutex, f *frame, recv time.Time) {
	timeout := time.Duration(f.TimeoutMS) * time.Millisecond
	if timeout <= 0 {
		timeout = DefaultCallTimeout
	}
	deadline := recv.Add(timeout)
	h.mu.Lock()
	fn, ok := h.handlers[f.Method]
	closed := h.closed
	h.mu.Unlock()
	resp := &frame{Kind: frameResp, ID: f.ID}
	if closed {
		resp.ErrKind = errDown
		resp.ErrMsg = "host closed"
		_ = writeFrame(conn, wmu, resp, deadline, h.opts.MaxFrame)
		return
	}
	ro := h.obsv.Load()
	var mo *methodObs
	var began time.Time
	if ro != nil {
		mo = ro.method(&ro.server, "server", f.Method)
		mo.calls.Inc()
		began = time.Now()
	}
	if !ok {
		resp.ErrKind = errNoHandler
		resp.ErrMsg = f.Method
	} else {
		out, err := fn(h.newRuntime(), transport.Addr(f.From), f.Payload)
		if err != nil {
			resp.ErrKind = errHandler
			resp.ErrMsg = err.Error()
		} else {
			resp.Payload = out
		}
	}
	if mo != nil {
		mo.secs.Observe(time.Since(began).Seconds())
		if resp.ErrKind != errNone {
			mo.errs.Inc()
		}
	}
	if !time.Now().Before(deadline) {
		return // the caller has given up; nobody is reading this reply
	}
	_ = writeFrame(conn, wmu, resp, deadline, h.opts.MaxFrame)
}

// runtime is the live (wall-clock) transport.Runtime.
type runtime struct {
	h   *Host
	rng *rand.Rand
}

func (r *runtime) Now() time.Duration    { return time.Since(r.h.start) }
func (r *runtime) Sleep(d time.Duration) { time.Sleep(d) }
func (r *runtime) Rand() *rand.Rand      { return r.rng }

// AwaitChan implements transport.ChanWaiter: under wall-clock time a
// goroutine may park on a channel directly, so waiters wake exactly
// when the producer closes it instead of sleep-polling.
func (r *runtime) AwaitChan(ch <-chan struct{}) { <-ch }

func (r *runtime) Call(to transport.Addr, method string, req any) (any, error) {
	return r.CallT(to, method, req, DefaultCallTimeout)
}

func (r *runtime) CallT(to transport.Addr, method string, req any, timeout time.Duration) (any, error) {
	if timeout <= 0 {
		timeout = DefaultCallTimeout
	}
	if !r.h.Up() {
		return nil, transport.ErrDown
	}
	var mo *methodObs
	ro := r.h.obsv.Load()
	if ro != nil {
		mo = ro.method(&ro.client, "client", method)
		mo.calls.Inc()
		began := time.Now()
		defer func() { mo.secs.Observe(time.Since(began).Seconds()) }()
	}
	// Breaker gate: an open circuit fails the call instantly (as
	// transient unreachable, so classified retries re-route) instead of
	// burning a dial or call timeout on a peer known to be failing.
	if err := r.h.brk.allow(to); err != nil {
		mo.errCount()
		return nil, err
	}
	// Chaos gate: draw this call's fate. Refuse, blackhole, and an
	// over-budget stall resolve here without touching the network; reset
	// and throttle ride down into the write path.
	ft := r.h.opts.Chaos.fate(to, method)
	switch {
	case ft.refuse:
		r.h.brk.record(to, false)
		mo.errCount()
		return nil, fmt.Errorf("%w: %s: connection refused (chaos)", transport.ErrUnreachable, to)
	case ft.blackhole:
		r.h.sleepInterruptible(timeout)
		r.h.brk.record(to, false)
		mo.errCount()
		return nil, transport.ErrTimeout
	case ft.stall > 0:
		if ft.stall >= timeout {
			r.h.sleepInterruptible(timeout)
			r.h.brk.record(to, false)
			mo.errCount()
			return nil, transport.ErrTimeout
		}
		r.h.sleepInterruptible(ft.stall)
		timeout -= ft.stall
	}
	var rf *frame
	var err error
	if r.h.opts.PerDial {
		rf, err = r.h.callPerDial(to, method, req, timeout, ft)
	} else {
		rf, err = r.h.callPooled(to, method, req, timeout, ft)
	}
	// Only transport-level outcomes feed the breaker: a handler error
	// or missing handler is an answering, healthy peer.
	r.h.brk.record(to, err == nil && rf.ErrKind != errDown)
	if err != nil {
		mo.errCount()
		return nil, mapCallErr(err)
	}
	switch rf.ErrKind {
	case errNoHandler:
		mo.errCount()
		return nil, fmt.Errorf("%w: %s on %s", transport.ErrNoHandler, rf.ErrMsg, to)
	case errHandler:
		mo.errCount()
		return nil, errors.New(rf.ErrMsg)
	case errDown:
		mo.errCount()
		return nil, fmt.Errorf("%w: %s reported: %s", transport.ErrDown, to, rf.ErrMsg)
	}
	return rf.Payload, nil
}

// sleepInterruptible sleeps for d or until the host closes.
func (h *Host) sleepInterruptible(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-h.done:
	}
}

// callPooled performs one call over the peer's pooled connection,
// reconnecting once when a previously-pooled connection turns out to
// have died before the request reached the wire (peer restart between
// calls).
func (h *Host) callPooled(to transport.Addr, method string, req any, timeout time.Duration, ft fault) (*frame, error) {
	pc, reused, err := h.pool.get(to, timeout)
	if err != nil {
		return nil, err
	}
	rf, wrote, err := pc.call(method, h.addr, req, timeout, ft)
	if err != nil && !wrote && reused {
		pc, _, err2 := h.pool.get(to, timeout)
		if err2 != nil {
			return nil, err2
		}
		rf, _, err = pc.call(method, h.addr, req, timeout, ft)
	}
	return rf, err
}

// callPerDial is the baseline path: dial, one framed request, close.
func (h *Host) callPerDial(to transport.Addr, method string, req any, timeout time.Duration, ft fault) (*frame, error) {
	deadline := time.Now().Add(timeout)
	conn, err := net.DialTimeout("tcp", string(to), timeout)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if ro := h.obsv.Load(); ro != nil {
		conn = &countingConn{Conn: conn, in: ro.bytesIn, out: ro.bytesOut}
	}
	_ = conn.SetDeadline(deadline)
	var wmu sync.Mutex
	f := &frame{
		Kind: frameReq, ID: 1, Method: method, From: string(h.addr),
		TimeoutMS: timeout.Milliseconds(), Payload: req,
	}
	if err := writeFrameFault(conn, &wmu, f, deadline, h.opts.MaxFrame, ft); err != nil {
		return nil, err
	}
	rf, err := readFrame(bufio.NewReader(conn), h.opts.MaxFrame)
	if err != nil {
		return nil, err
	}
	if rf.ID == 0 && rf.ErrKind == errDown {
		return nil, remoteDownError{}
	}
	return rf, nil
}

// mapCallErr translates connection-level failures into the transport
// sentinels protocol code branches on.
func mapCallErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, transport.ErrTimeout),
		errors.Is(err, transport.ErrUnreachable),
		errors.Is(err, transport.ErrDown),
		errors.Is(err, transport.ErrNoHandler):
		return err
	}
	if _, ok := err.(remoteDownError); ok {
		return fmt.Errorf("%w: peer reported closed", transport.ErrDown)
	}
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		return transport.ErrTimeout
	}
	return fmt.Errorf("%w: %v", transport.ErrUnreachable, err)
}

// errCount increments the method's error counter; nil-safe so call
// sites need no obs-enabled guard.
func (m *methodObs) errCount() {
	if m != nil {
		m.errs.Inc()
	}
}
