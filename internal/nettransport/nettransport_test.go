package nettransport

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/chord"
	"repro/internal/grid"
	"repro/internal/ids"
	"repro/internal/match"
	"repro/internal/resource"
	"repro/internal/rntree"
	"repro/internal/transport"
	"repro/internal/wire"
)

func init() { wire.RegisterAll() }

func TestCallRoundTrip(t *testing.T) {
	a, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	b.Handle(chord.MPing, func(rt transport.Runtime, from transport.Addr, req any) (any, error) {
		if _, ok := req.(chord.PingReq); !ok {
			return nil, fmt.Errorf("bad payload %T", req)
		}
		return chord.PingResp{Self: chord.Ref{ID: ids.HashString("b"), Addr: b.Addr()}}, nil
	})

	done := make(chan error, 1)
	a.Go("caller", func(rt transport.Runtime) {
		resp, err := rt.Call(b.Addr(), chord.MPing, chord.PingReq{})
		if err != nil {
			done <- err
			return
		}
		pr := resp.(chord.PingResp)
		if pr.Self.Addr != b.Addr() {
			done <- fmt.Errorf("wrong self: %v", pr.Self)
			return
		}
		done <- nil
	})
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestCallErrors(t *testing.T) {
	a, _ := Listen("127.0.0.1:0")
	defer a.Close()
	b, _ := Listen("127.0.0.1:0")
	b.Handle("boom", func(rt transport.Runtime, from transport.Addr, req any) (any, error) {
		return nil, errors.New("handler exploded")
	})

	rt := a.newRuntime()
	if _, err := rt.Call(b.Addr(), "missing", chord.PingReq{}); !errors.Is(err, transport.ErrNoHandler) {
		t.Fatalf("missing handler: %v", err)
	}
	if _, err := rt.Call(b.Addr(), "boom", chord.PingReq{}); err == nil || err.Error() != "handler exploded" {
		t.Fatalf("handler error: %v", err)
	}
	bAddr := b.Addr()
	b.Close()
	time.Sleep(50 * time.Millisecond)
	if _, err := rt.CallT(bAddr, "x", chord.PingReq{}, time.Second); err == nil {
		t.Fatal("call to closed host succeeded")
	}
}

// TestLiveChordRing boots a real 5-node Chord ring over TCP and checks
// that lookups agree across nodes — the same protocol code the
// simulator runs, over real sockets.
func TestLiveChordRing(t *testing.T) {
	const N = 5
	cfg := chord.Config{
		StabilizeEvery:  50 * time.Millisecond,
		FixFingersEvery: 50 * time.Millisecond,
		CheckPredEvery:  100 * time.Millisecond,
	}
	hosts := make([]*Host, N)
	nodes := make([]*chord.Node, N)
	for i := 0; i < N; i++ {
		h, err := Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer h.Close()
		hosts[i] = h
		nodes[i] = chord.New(h, cfg)
	}
	nodes[0].Create()
	nodes[0].Start()
	var wg sync.WaitGroup
	for i := 1; i < N; i++ {
		i := i
		wg.Add(1)
		hosts[i].Go("join", func(rt transport.Runtime) {
			defer wg.Done()
			for try := 0; try < 10; try++ {
				if err := nodes[i].Join(rt, hosts[0].Addr()); err == nil {
					nodes[i].Start()
					return
				}
				rt.Sleep(100 * time.Millisecond)
			}
			t.Errorf("node %d failed to join", i)
		})
	}
	wg.Wait()
	time.Sleep(2 * time.Second) // let stabilization converge

	// All nodes agree on the owner of a set of keys.
	for k := 0; k < 5; k++ {
		key := ids.HashString(fmt.Sprintf("key%d", k))
		owners := map[string]bool{}
		for i := 0; i < N; i++ {
			rt := hosts[i].newRuntime()
			owner, _, err := nodes[i].Lookup(rt, key)
			if err != nil {
				t.Fatalf("lookup from %d: %v", i, err)
			}
			owners[string(owner.Addr)] = true
		}
		if len(owners) != 1 {
			t.Fatalf("key %d: disagreeing owners %v", k, owners)
		}
	}
}

// TestLiveGridJob runs one real job through the full grid stack over
// TCP: inject -> owner -> matchmaking (RN-Tree over Chord) -> run node
// -> result.
func TestLiveGridJob(t *testing.T) {
	const N = 4
	chCfg := chord.Config{
		StabilizeEvery:  50 * time.Millisecond,
		FixFingersEvery: 50 * time.Millisecond,
		CheckPredEvery:  100 * time.Millisecond,
	}
	rnCfg := rntree.Config{AggregateEvery: 100 * time.Millisecond, ParentRefreshEvery: 300 * time.Millisecond}
	gCfg := grid.Config{HeartbeatEvery: 200 * time.Millisecond, IdlePoll: 50 * time.Millisecond}

	hosts := make([]*Host, N)
	chords := make([]*chord.Node, N)
	rns := make([]*rntree.Node, N)
	grids := make([]*grid.Node, N)
	for i := 0; i < N; i++ {
		h, err := Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer h.Close()
		hosts[i] = h
		caps := resource.Vector{float64(2 + i), 1024, 50}
		chords[i] = chord.New(h, chCfg)
		rns[i] = rntree.New(h, chords[i], caps, "linux", rnCfg)
		overlay := &match.ChordOverlay{Chord: chords[i], Walk: rns[i]}
		matcher := &match.RNTree{RN: rns[i]}
		grids[i] = grid.NewNode(h, caps, "linux", overlay, matcher, nil, gCfg)
		rns[i].SetLoadFn(grids[i].QueueLen)
	}
	chords[0].Create()
	var wg sync.WaitGroup
	for i := 1; i < N; i++ {
		i := i
		wg.Add(1)
		hosts[i].Go("join", func(rt transport.Runtime) {
			defer wg.Done()
			for try := 0; try < 10; try++ {
				if err := chords[i].Join(rt, hosts[0].Addr()); err == nil {
					return
				}
				rt.Sleep(100 * time.Millisecond)
			}
			t.Errorf("join %d failed", i)
		})
	}
	wg.Wait()
	for i := 0; i < N; i++ {
		chords[i].Start()
		rns[i].Start()
		grids[i].Start()
	}
	time.Sleep(2 * time.Second) // ring + tree convergence

	done := make(chan error, 1)
	hosts[0].Go("client", func(rt transport.Runtime) {
		if _, err := grids[0].Submit(rt, grid.JobSpec{Work: 200 * time.Millisecond}); err != nil {
			done <- err
			return
		}
		if left := grids[0].AwaitAll(rt, rt.Now()+20*time.Second); left != 0 {
			done <- fmt.Errorf("%d jobs unfinished", left)
			return
		}
		done <- nil
	})
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("live grid job timed out")
	}
}
