package nettransport

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rntree"
	"repro/internal/transport"
)

// chaosPair boots a serving host b and a client host a whose outbound
// calls run under the given chaos schedule. The handler counts its
// invocations so tests can prove a fault kept a request off the peer.
func chaosPair(t *testing.T, opts Opts) (a, b *Host, served *atomic.Int64) {
	t.Helper()
	b, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	served = &atomic.Int64{}
	b.Handle("echo", func(rt transport.Runtime, from transport.Addr, req any) (any, error) {
		served.Add(1)
		return rntree.SearchResp{Visits: req.(rntree.SearchReq).K}, nil
	})
	a, err = ListenOpts("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	return a, b, served
}

// TestChaosFateDeterministic is the replay contract: the same seed and
// rules draw the identical fate sequence for a (peer, method) pair,
// and a different seed draws a different one.
func TestChaosFateDeterministic(t *testing.T) {
	rules := []ChaosRule{{Refuse: 0.2, Reset: 0.2, Blackhole: 0.1, Stall: 0.2, StallFor: time.Second}}
	const N = 300
	seq := func(seed int64) []string {
		c := NewChaos(seed, rules...)
		out := make([]string, N)
		for i := range out {
			out[i] = c.fate("127.0.0.1:9999", "grid.assign").name()
		}
		return out
	}
	runA, runB, other := seq(7), seq(7), seq(8)
	faults := 0
	for i := range runA {
		if runA[i] != runB[i] {
			t.Fatalf("draw %d: seed 7 gave %q then %q — schedule not deterministic", i, runA[i], runB[i])
		}
		if runA[i] != "none" {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("300 draws at ~50% fault mass injected nothing")
	}
	same := 0
	for i := range runA {
		if runA[i] == other[i] {
			same++
		}
	}
	if same == N {
		t.Fatal("seeds 7 and 8 drew identical fate sequences")
	}
}

// TestChaosFateIndependentOfInterleaving checks that two pairs' draw
// sequences don't perturb each other: interleaving calls to a second
// peer leaves the first peer's sequence unchanged.
func TestChaosFateIndependentOfInterleaving(t *testing.T) {
	rules := []ChaosRule{{Refuse: 0.3, Reset: 0.3}}
	solo := NewChaos(3, rules...)
	mixed := NewChaos(3, rules...)
	var want, got []string
	for i := 0; i < 100; i++ {
		want = append(want, solo.fate("p1", "m").name())
	}
	for i := 0; i < 100; i++ {
		mixed.fate("p2", "m") // interleaved traffic to another peer
		got = append(got, mixed.fate("p1", "m").name())
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("draw %d for p1: %q solo vs %q interleaved", i, want[i], got[i])
		}
	}
}

func TestParseRules(t *testing.T) {
	rules, err := ParseRules("method=grid.assign reset=0.1; peer=127.0.0.1:7702 stall=0.2:300ms throttle=0.5:2048; blackhole=0.05")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("parsed %d rules, want 3", len(rules))
	}
	if rules[0].Method != "grid.assign" || rules[0].Reset != 0.1 {
		t.Fatalf("rule 0 = %+v", rules[0])
	}
	if rules[1].Peer != "127.0.0.1:7702" || rules[1].Stall != 0.2 ||
		rules[1].StallFor != 300*time.Millisecond || rules[1].Rate != 2048 {
		t.Fatalf("rule 1 = %+v", rules[1])
	}
	if rules[2].Blackhole != 0.05 || rules[2].Peer != "" || rules[2].Method != "" {
		t.Fatalf("rule 2 = %+v", rules[2])
	}
	for _, bad := range []string{"refuse=1.5", "stall=0.1", "throttle=0.1:0", "nonsense=1", "refuse"} {
		if _, err := ParseRules(bad); err == nil {
			t.Errorf("ParseRules(%q) accepted", bad)
		}
	}
}

func TestChaosRefuseKeepsRequestOffPeer(t *testing.T) {
	a, b, served := chaosPair(t, Opts{
		Chaos:            NewChaos(1, ChaosRule{Method: "echo", Refuse: 1}),
		BreakerThreshold: -1,
	})
	rt := a.newRuntime()
	_, err := rt.Call(b.Addr(), "echo", rntree.SearchReq{K: 1})
	if !transport.Transient(err) {
		t.Fatalf("refused call: err = %v, want transient", err)
	}
	if !strings.Contains(err.Error(), "chaos") {
		t.Fatalf("err %q does not name the injection", err)
	}
	if got := served.Load(); got != 0 {
		t.Fatalf("peer served %d requests through a refused connect", got)
	}
}

func TestChaosBlackholeBurnsCallerTimeout(t *testing.T) {
	a, b, served := chaosPair(t, Opts{
		Chaos:            NewChaos(1, ChaosRule{Blackhole: 1}),
		BreakerThreshold: -1,
	})
	rt := a.newRuntime()
	began := time.Now()
	_, err := rt.CallT(b.Addr(), "echo", rntree.SearchReq{K: 1}, 120*time.Millisecond)
	if err != transport.ErrTimeout {
		t.Fatalf("blackholed call: err = %v, want ErrTimeout", err)
	}
	if el := time.Since(began); el < 100*time.Millisecond {
		t.Fatalf("blackholed call returned after %s; must burn the timeout", el)
	}
	if got := served.Load(); got != 0 {
		t.Fatalf("peer served %d blackholed requests", got)
	}
}

// TestChaosResetScopedByMethod injects a guaranteed mid-frame reset on
// one method: it must fail transient while a following call on an
// unmatched method redials and succeeds.
func TestChaosResetScopedByMethod(t *testing.T) {
	a, b, served := chaosPair(t, Opts{
		Chaos:            NewChaos(1, ChaosRule{Method: "echo", Reset: 1}),
		BreakerThreshold: -1,
	})
	b.Handle("other", func(rt transport.Runtime, from transport.Addr, req any) (any, error) {
		return rntree.SearchResp{Visits: 9}, nil
	})
	rt := a.newRuntime()
	if _, err := rt.Call(b.Addr(), "echo", rntree.SearchReq{K: 1}); !transport.Transient(err) {
		t.Fatalf("reset call: err = %v, want transient", err)
	}
	if served.Load() != 0 {
		t.Fatal("truncated request still decoded on the peer")
	}
	resp, err := rt.Call(b.Addr(), "other", rntree.SearchReq{})
	if err != nil {
		t.Fatalf("call after reset: %v", err)
	}
	if resp.(rntree.SearchResp).Visits != 9 {
		t.Fatalf("bad response after reset recovery: %+v", resp)
	}
}

func TestChaosStall(t *testing.T) {
	// A stall at least as long as the caller's budget is a timeout...
	a, b, _ := chaosPair(t, Opts{
		Chaos:            NewChaos(1, ChaosRule{Stall: 1, StallFor: time.Second}),
		BreakerThreshold: -1,
	})
	rt := a.newRuntime()
	if _, err := rt.CallT(b.Addr(), "echo", rntree.SearchReq{}, 80*time.Millisecond); err != transport.ErrTimeout {
		t.Fatalf("over-budget stall: err = %v, want ErrTimeout", err)
	}
	// ...while a shorter stall only delays the (successful) call.
	a2, b2, _ := chaosPair(t, Opts{
		Chaos:            NewChaos(1, ChaosRule{Stall: 1, StallFor: 100 * time.Millisecond}),
		BreakerThreshold: -1,
	})
	began := time.Now()
	resp, err := a2.newRuntime().CallT(b2.Addr(), "echo", rntree.SearchReq{K: 5}, 2*time.Second)
	if err != nil {
		t.Fatalf("stalled call: %v", err)
	}
	if resp.(rntree.SearchResp).Visits != 5 {
		t.Fatalf("bad response: %+v", resp)
	}
	if el := time.Since(began); el < 100*time.Millisecond {
		t.Fatalf("stalled call finished in %s, faster than its 100ms stall", el)
	}
}

func TestChaosThrottleDelaysButDelivers(t *testing.T) {
	a, b, _ := chaosPair(t, Opts{
		Chaos:            NewChaos(1, ChaosRule{Throttle: 1, Rate: 2000}),
		BreakerThreshold: -1,
	})
	rt := a.newRuntime()
	began := time.Now()
	resp, err := rt.CallT(b.Addr(), "echo", rntree.SearchReq{K: 3}, 5*time.Second)
	if err != nil {
		t.Fatalf("throttled call: %v", err)
	}
	if resp.(rntree.SearchResp).Visits != 3 {
		t.Fatalf("bad response: %+v", resp)
	}
	// A few hundred frame bytes at 2000 B/s in >=64-byte chunks means
	// at least a few paced sleeps.
	if el := time.Since(began); el < 60*time.Millisecond {
		t.Fatalf("throttled call finished in %s; rate limit did not engage", el)
	}
	if a.opts.Chaos.Counts()["throttle"] == 0 {
		t.Fatal("throttle counter did not move")
	}
}
