package nettransport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// The framed codec: every message on a connection is one
// length-prefixed frame (4-byte big-endian length, then a gob-encoded
// frame struct). Frames are self-delimiting, so one persistent
// connection carries many concurrent requests in both directions;
// request IDs pair responses with callers. Each frame is encoded with
// a fresh gob encoder — type descriptors are re-sent per frame, a few
// hundred bytes of overhead that buys frame independence: a decode
// failure poisons one frame boundary, not an entire long-lived stream
// state.

// Frame kinds.
const (
	frameReq  = 1
	frameResp = 2
)

// Response error kinds carried in frame.ErrKind.
const (
	errNone      = 0
	errNoHandler = 1 // no handler registered for the method
	errHandler   = 2 // handler returned an error
	errDown      = 3 // peer is not serving: host closed or stream unusable
)

// maxFrame bounds a single frame's payload; anything larger is a
// protocol error (checkpoint payloads cap in the low MBs).
const maxFrame = 64 << 20

// frame is the unit of the wire protocol.
type frame struct {
	Kind byte
	// ID pairs a response with its request. ID 0 is reserved for
	// connection-scoped error responses (a decode failure leaves the
	// server unable to name the request it was parsing).
	ID     uint64
	Method string // request only
	From   string // request only
	// TimeoutMS is the caller's remaining time budget. The server
	// derives the response write deadline from it, so a slow handler's
	// reply is bounded by what the caller asked for — not by a fixed
	// server-side constant.
	TimeoutMS int64
	Payload   any
	ErrMsg    string // response only
	ErrKind   int    // response only
}

// encodeFrame renders f as [length][gob bytes], ready for one write.
func encodeFrame(f *frame) ([]byte, error) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0}) // length placeholder
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		return nil, fmt.Errorf("nettransport: encode frame: %w", err)
	}
	b := buf.Bytes()
	n := len(b) - 4
	if n > maxFrame {
		return nil, fmt.Errorf("nettransport: frame too large (%d bytes)", n)
	}
	binary.BigEndian.PutUint32(b[:4], uint32(n))
	return b, nil
}

// writeFrame sends one frame under the connection's write lock with the
// given deadline. A zero deadline means no deadline.
func writeFrame(conn net.Conn, wmu *sync.Mutex, f *frame, deadline time.Time) error {
	b, err := encodeFrame(f)
	if err != nil {
		return err
	}
	wmu.Lock()
	defer wmu.Unlock()
	_ = conn.SetWriteDeadline(deadline)
	_, err = conn.Write(b)
	return err
}

// readFrame reads one length-prefixed frame from r.
func readFrame(r io.Reader) (*frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrame {
		return nil, fmt.Errorf("nettransport: bad frame length %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	var f frame
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&f); err != nil {
		return nil, fmt.Errorf("nettransport: decode frame: %w", err)
	}
	return &f, nil
}
