package nettransport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// The framed codec: every message on a connection is one
// length-prefixed frame (4-byte big-endian length, then a gob-encoded
// frame struct). Frames are self-delimiting, so one persistent
// connection carries many concurrent requests in both directions;
// request IDs pair responses with callers. Each frame is encoded with
// a fresh gob encoder — type descriptors are re-sent per frame, a few
// hundred bytes of overhead that buys frame independence: a decode
// failure poisons one frame boundary, not an entire long-lived stream
// state.

// Frame kinds.
const (
	frameReq  = 1
	frameResp = 2
)

// Response error kinds carried in frame.ErrKind.
const (
	errNone      = 0
	errNoHandler = 1 // no handler registered for the method
	errHandler   = 2 // handler returned an error
	errDown      = 3 // peer is not serving: host closed or stream unusable
)

// defaultMaxFrame bounds a single frame's payload unless Opts.MaxFrame
// overrides it (checkpoint payloads cap in the low MBs). The reader
// enforces the bound on the length prefix alone, before any
// allocation, so a corrupt or hostile peer cannot make us allocate an
// arbitrarily large buffer.
const defaultMaxFrame = 64 << 20

// frame is the unit of the wire protocol.
type frame struct {
	Kind byte
	// ID pairs a response with its request. ID 0 is reserved for
	// connection-scoped error responses (a decode failure leaves the
	// server unable to name the request it was parsing).
	ID     uint64
	Method string // request only
	From   string // request only
	// TimeoutMS is the caller's remaining time budget. The server
	// derives the response write deadline from it, so a slow handler's
	// reply is bounded by what the caller asked for — not by a fixed
	// server-side constant.
	TimeoutMS int64
	Payload   any
	ErrMsg    string // response only
	ErrKind   int    // response only
}

// encodeFrame renders f as [length][gob bytes], ready for one write.
func encodeFrame(f *frame, max int) ([]byte, error) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0}) // length placeholder
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		return nil, fmt.Errorf("nettransport: encode frame: %w", err)
	}
	b := buf.Bytes()
	n := len(b) - 4
	if n > max {
		return nil, fmt.Errorf("nettransport: frame too large (%d bytes, max %d)", n, max)
	}
	binary.BigEndian.PutUint32(b[:4], uint32(n))
	return b, nil
}

// writeFrame sends one frame under the connection's write lock with the
// given deadline. A zero deadline means no deadline.
func writeFrame(conn net.Conn, wmu *sync.Mutex, f *frame, deadline time.Time, max int) error {
	return writeFrameFault(conn, wmu, f, deadline, max, fault{})
}

// errChaosReset marks a request that was cut off mid-frame by the
// chaos layer: part of it reached the wire, so unlike an ordinary
// write failure the peer may have observed bytes and the call must not
// be retried as never-sent.
var errChaosReset = errors.New("nettransport: connection reset mid-frame (chaos)")

// chaosTimeoutError surfaces a throttled write that outlived the
// caller's deadline between chunks (the conn's own write deadline only
// bounds each Write, not the injected sleeps).
type chaosTimeoutError struct{}

func (chaosTimeoutError) Error() string   { return "nettransport: write timed out (chaos throttle)" }
func (chaosTimeoutError) Timeout() bool   { return true }
func (chaosTimeoutError) Temporary() bool { return true }

// writeFrameFault is writeFrame with an injected fault applied:
// wf.reset truncates the frame mid-body and kills the connection;
// wf.rate trickles the bytes out in paced chunks.
func writeFrameFault(conn net.Conn, wmu *sync.Mutex, f *frame, deadline time.Time, max int, wf fault) error {
	b, err := encodeFrame(f, max)
	if err != nil {
		return err
	}
	wmu.Lock()
	defer wmu.Unlock()
	_ = conn.SetWriteDeadline(deadline)
	if wf.reset {
		// Claim the full length, deliver roughly half the body, then
		// slam the connection shut — the receiver sees a short read
		// inside a frame, exactly what a peer crash mid-send produces.
		cut := len(b) * 2 / 3
		if cut < 5 {
			cut = len(b)
		}
		_, _ = conn.Write(b[:cut])
		conn.Close()
		return errChaosReset
	}
	if wf.rate > 0 {
		chunk := wf.rate / 20 // ~50ms of budget per chunk
		if chunk < 64 {
			chunk = 64
		}
		for off := 0; off < len(b); off += chunk {
			if !deadline.IsZero() && time.Now().After(deadline) {
				return chaosTimeoutError{}
			}
			end := off + chunk
			if end > len(b) {
				end = len(b)
			}
			if _, err := conn.Write(b[off:end]); err != nil {
				return err
			}
			if end < len(b) {
				time.Sleep(time.Duration(end-off) * time.Second / time.Duration(wf.rate))
			}
		}
		return nil
	}
	_, err = conn.Write(b)
	return err
}

// readFrame reads one length-prefixed frame from r, rejecting any
// length prefix beyond max before allocating for the body.
func readFrame(r io.Reader, max int) (*frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > uint32(max) {
		return nil, fmt.Errorf("nettransport: bad frame length %d (max %d)", n, max)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	var f frame
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&f); err != nil {
		return nil, fmt.Errorf("nettransport: decode frame: %w", err)
	}
	return &f, nil
}
