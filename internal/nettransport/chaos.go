package nettransport

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ids"
	"repro/internal/transport"
)

// Deterministic network chaos for the live transport — the real-socket
// counterpart of internal/faultinject's simulator rules. A Chaos
// attached to Opts.Chaos injects faults into this host's *outbound*
// calls only (faults are client-side, so a schedule describes what one
// process does to the network, never what the network does to it):
//
//   - refuse:    the call fails instantly as if the peer's port were
//     closed; no bytes move.
//   - reset:     the request frame is cut off mid-write and the
//     connection killed — the real mid-frame reset case, seen by both
//     ends.
//   - blackhole: the request is swallowed; the caller burns its full
//     timeout. The peer never sees the call.
//   - stall:     the call pauses for the rule's duration before the
//     request is written (a stall at least as long as the caller's
//     timeout becomes a timeout).
//   - throttle:  the request bytes trickle onto the wire at the rule's
//     byte rate.
//
// Determinism contract: every fate is a pure function of
// (seed, peer, method, seq), where seq counts that (peer, method)
// pair's calls on this Chaos. Two runs with the same seed, rules, and
// per-pair call counts draw the identical fault sequence per pair, no
// matter how goroutines interleave — the same hash-draw idiom as
// faultinject.Byz. scripts/live_chaos.sh verifies the contract by
// diffing decision logs across runs. (Breaker cooldown jitter is
// deliberately outside this contract; the schedule governs injected
// faults, not recovery pacing.)

// ChaosRule matches outbound calls and assigns fault probabilities.
// The first matching rule decides; probabilities within a rule are
// drawn independently but applied mutually exclusively in the order
// refuse, reset, blackhole, stall, throttle.
type ChaosRule struct {
	// Peer restricts the rule to one destination address; "" or "*"
	// matches every peer.
	Peer string
	// Method restricts the rule to one RPC method; "" or "*" matches
	// every method.
	Method string

	Refuse    float64 // P(connect refused)
	Reset     float64 // P(mid-frame reset)
	Blackhole float64 // P(request swallowed; full-timeout burn)
	Stall     float64 // P(write stalled for StallFor)
	StallFor  time.Duration
	Throttle  float64 // P(request throttled to Rate bytes/sec)
	Rate      int
}

func (r ChaosRule) matches(peer, method string) bool {
	if r.Peer != "" && r.Peer != "*" && r.Peer != peer {
		return false
	}
	if r.Method != "" && r.Method != "*" && r.Method != method {
		return false
	}
	return true
}

// Chaos is a seeded fault schedule. The zero value is not usable; use
// NewChaos. A nil *Chaos injects nothing (all hooks are nil-safe).
type Chaos struct {
	seed  int64
	rules []ChaosRule

	mu   sync.Mutex
	seq  map[string]int // per "peer method" call counter
	logw io.Writer

	// Injection counters, exported via Counts for tests and harnesses.
	refused    atomic.Int64
	resets     atomic.Int64
	blackholes atomic.Int64
	stalls     atomic.Int64
	throttled  atomic.Int64
	clean      atomic.Int64
}

// NewChaos builds a schedule from a seed and an ordered rule list.
func NewChaos(seed int64, rules ...ChaosRule) *Chaos {
	return &Chaos{seed: seed, rules: rules, seq: make(map[string]int)}
}

// SetLog mirrors every fate decision (including clean passes on
// matched calls) to w, one "peer method seq fate" line each — the
// replay evidence live_chaos.sh compares across runs. Writes happen
// under the schedule's lock; pass something cheap (a file).
func (c *Chaos) SetLog(w io.Writer) {
	c.mu.Lock()
	c.logw = w
	c.mu.Unlock()
}

// Counts reports how many faults of each kind have been injected.
func (c *Chaos) Counts() map[string]int64 {
	if c == nil {
		return nil
	}
	return map[string]int64{
		"refuse":    c.refused.Load(),
		"reset":     c.resets.Load(),
		"blackhole": c.blackholes.Load(),
		"stall":     c.stalls.Load(),
		"throttle":  c.throttled.Load(),
		"clean":     c.clean.Load(),
	}
}

// fault is one call's drawn fate. The zero value means "no fault".
type fault struct {
	refuse    bool
	reset     bool
	blackhole bool
	stall     time.Duration
	rate      int // throttle bytes/sec; 0 = unthrottled
}

func (f fault) name() string {
	switch {
	case f.refuse:
		return "refuse"
	case f.reset:
		return "reset"
	case f.blackhole:
		return "blackhole"
	case f.stall > 0:
		return "stall"
	case f.rate > 0:
		return "throttle"
	}
	return "none"
}

// fate draws one call's fault. Nil-safe.
func (c *Chaos) fate(peer transport.Addr, method string) fault {
	if c == nil {
		return fault{}
	}
	var rule *ChaosRule
	for i := range c.rules {
		if c.rules[i].matches(string(peer), method) {
			rule = &c.rules[i]
			break
		}
	}
	if rule == nil {
		return fault{}
	}
	key := string(peer) + " " + method
	c.mu.Lock()
	seq := c.seq[key]
	c.seq[key] = seq + 1
	var f fault
	switch {
	case c.draw("refuse", key, seq) < rule.Refuse:
		f.refuse = true
		c.refused.Add(1)
	case c.draw("reset", key, seq) < rule.Reset:
		f.reset = true
		c.resets.Add(1)
	case c.draw("blackhole", key, seq) < rule.Blackhole:
		f.blackhole = true
		c.blackholes.Add(1)
	case c.draw("stall", key, seq) < rule.Stall:
		f.stall = rule.StallFor
		c.stalls.Add(1)
	case c.draw("throttle", key, seq) < rule.Throttle:
		f.rate = rule.Rate
		c.throttled.Add(1)
	default:
		c.clean.Add(1)
	}
	if c.logw != nil {
		fmt.Fprintf(c.logw, "%s %s %d %s\n", peer, method, seq, f.name())
	}
	c.mu.Unlock()
	return f
}

// draw maps (seed, kind, peer+method, seq) onto [0, 1) via the ids
// hash — the same uniform-draw construction as faultinject.Byz.chance,
// so a decision depends only on its inputs, never on wall clock or
// scheduling.
func (c *Chaos) draw(kind, key string, seq int) float64 {
	h := ids.HashString(fmt.Sprintf("chaos/%d/%s/%s/%d", c.seed, kind, key, seq))
	return float64(h.Uint64()>>11) / float64(1<<53)
}

// ParseRules parses the flag-friendly schedule syntax used by
// gridnode -chaos. Rules are ';'-separated; each rule is a
// whitespace-separated list of key=value fields:
//
//	peer=ADDR            match one destination ('*' or absent = all)
//	method=NAME          match one RPC method ('*' or absent = all)
//	refuse=P             connect-refused probability
//	reset=P              mid-frame reset probability
//	blackhole=P          swallow-request probability
//	stall=P:DUR          stall probability and duration (e.g. 0.2:300ms)
//	throttle=P:RATE      throttle probability and bytes/sec (e.g. 0.5:2048)
//
// Example: "method=grid.assign reset=0.1; stall=0.2:300ms blackhole=0.02"
func ParseRules(spec string) ([]ChaosRule, error) {
	var rules []ChaosRule
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var r ChaosRule
		for _, tok := range strings.Fields(part) {
			k, v, ok := strings.Cut(tok, "=")
			if !ok {
				return nil, fmt.Errorf("nettransport: chaos rule field %q: want key=value", tok)
			}
			var err error
			switch k {
			case "peer":
				r.Peer = v
			case "method":
				r.Method = v
			case "refuse":
				r.Refuse, err = parseProb(v)
			case "reset":
				r.Reset, err = parseProb(v)
			case "blackhole":
				r.Blackhole, err = parseProb(v)
			case "stall":
				p, arg, cutOK := strings.Cut(v, ":")
				if !cutOK {
					return nil, fmt.Errorf("nettransport: chaos stall %q: want P:DURATION", v)
				}
				if r.Stall, err = parseProb(p); err == nil {
					r.StallFor, err = time.ParseDuration(arg)
				}
			case "throttle":
				p, arg, cutOK := strings.Cut(v, ":")
				if !cutOK {
					return nil, fmt.Errorf("nettransport: chaos throttle %q: want P:BYTES_PER_SEC", v)
				}
				if r.Throttle, err = parseProb(p); err == nil {
					r.Rate, err = strconv.Atoi(arg)
					if err == nil && r.Rate <= 0 {
						err = fmt.Errorf("rate must be positive")
					}
				}
			default:
				return nil, fmt.Errorf("nettransport: unknown chaos field %q", k)
			}
			if err != nil {
				return nil, fmt.Errorf("nettransport: chaos field %q: %w", tok, err)
			}
		}
		rules = append(rules, r)
	}
	return rules, nil
}

func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v outside [0, 1]", p)
	}
	return p, nil
}
