package nettransport

import (
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/rntree"
	"repro/internal/transport"
)

// deadAddr reserves a TCP address and immediately closes the listener,
// so dials to it are refused by the OS.
func deadAddr(t *testing.T) transport.Addr {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return transport.Addr(addr)
}

// TestBreakerOpensAndFastFails drives consecutive transport failures to
// a dead peer past the threshold and checks the breaker then short-
// circuits without a dial, surfacing as a transient error the grid's
// retry classification re-routes.
func TestBreakerOpensAndFastFails(t *testing.T) {
	a, err := ListenOpts("127.0.0.1:0", Opts{
		BreakerThreshold: 3,
		BreakerCooldown:  time.Minute, // never half-opens within the test
		DialBackoff:      -1,          // isolate the breaker from dial suppression
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	dead := deadAddr(t)
	rt := a.newRuntime()

	for i := 0; i < 3; i++ {
		if _, err := rt.CallT(dead, "echo", rntree.SearchReq{}, time.Second); !transport.Transient(err) {
			t.Fatalf("call %d to dead peer: err = %v, want transient", i, err)
		}
	}
	dialsBefore := a.pool.dials.Load()
	_, err = rt.CallT(dead, "echo", rntree.SearchReq{}, time.Second)
	if !transport.Transient(err) {
		t.Fatalf("call with open breaker: err = %v, want transient", err)
	}
	if !strings.Contains(err.Error(), "circuit open") {
		t.Fatalf("call with open breaker: err = %v, want circuit-open fast fail", err)
	}
	if got := a.pool.dials.Load(); got != dialsBefore {
		t.Fatalf("open breaker still dialed (%d -> %d dials)", dialsBefore, got)
	}

	if !a.PeerDown(dead) {
		t.Fatal("PeerDown(dead) = false with breaker open")
	}
	hs := a.Health()
	if len(hs) != 1 {
		t.Fatalf("Health() returned %d entries, want 1", len(hs))
	}
	h := hs[0]
	if h.Peer != dead || h.State != "open" || h.Opens != 1 || h.ConsecFails < 3 || h.RetryIn <= 0 {
		t.Fatalf("Health() = %+v, want open breaker for %s", h, dead)
	}
}

// TestBreakerRecoversHalfOpen lets the cooldown expire, revives the
// peer at the same address, and checks one successful probe closes the
// breaker again.
func TestBreakerRecoversHalfOpen(t *testing.T) {
	a, err := ListenOpts("127.0.0.1:0", Opts{
		BreakerThreshold: 2,
		BreakerCooldown:  50 * time.Millisecond,
		DialBackoff:      -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	dead := deadAddr(t)
	rt := a.newRuntime()
	for i := 0; i < 2; i++ {
		if _, err := rt.CallT(dead, "echo", rntree.SearchReq{}, time.Second); err == nil {
			t.Fatalf("call %d to dead peer succeeded", i)
		}
	}
	if !a.PeerDown(dead) {
		t.Fatal("breaker did not open after threshold failures")
	}

	// Revive the peer at the same address. The OS may briefly refuse the
	// rebind; retry rather than flake.
	var b *Host
	for try := 0; ; try++ {
		b, err = Listen(string(dead))
		if err == nil {
			break
		}
		if try == 20 {
			t.Fatalf("rebinding %s: %v", dead, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	defer b.Close()
	b.Handle("echo", func(rt transport.Runtime, from transport.Addr, req any) (any, error) {
		return rntree.SearchResp{Visits: 1}, nil
	})

	// Past the cooldown (plus its <=25% jitter) a half-open probe goes
	// through and the success closes the breaker.
	time.Sleep(100 * time.Millisecond)
	var lastErr error
	for try := 0; try < 10; try++ {
		if _, lastErr = rt.CallT(dead, "echo", rntree.SearchReq{}, time.Second); lastErr == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if lastErr != nil {
		t.Fatalf("probe after cooldown never succeeded: %v", lastErr)
	}
	if a.PeerDown(dead) {
		t.Fatal("PeerDown still true after successful probe")
	}
	hs := a.Health()
	if len(hs) != 1 || hs[0].State != "closed" || hs[0].Successes == 0 {
		t.Fatalf("Health() = %+v, want closed breaker with a success", hs)
	}
}
