package nettransport

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/transport"
)

// Client-side connection pool: one persistent framed connection per
// peer, multiplexing concurrent requests by ID. A connection is dialed
// on first use, re-dialed after an error, and reaped after sitting
// idle with no in-flight calls.

// pool holds this host's outbound connections.
type pool struct {
	h  *Host
	mu sync.Mutex
	// peers is keyed by destination address. Entries serialize dialing
	// per peer so a dead destination's dial timeout never blocks calls
	// to other peers.
	peers map[transport.Addr]*peerEntry

	// dials counts actual TCP dial attempts (tests assert that backoff
	// keeps this far below the call count against a dead peer).
	dials atomic.Int64
}

type peerEntry struct {
	mu sync.Mutex
	pc *peerConn
	// Reconnect backoff: after a failed dial, further dials are
	// suppressed until nextDial so a dead peer is not hammered in a
	// tight loop. backoff doubles per consecutive failure (jittered,
	// capped at Opts.DialBackoffMax) and resets on success.
	backoff  time.Duration
	nextDial time.Time
}

func newPool(h *Host) *pool {
	return &pool{h: h, peers: make(map[transport.Addr]*peerEntry)}
}

// get returns a live pooled connection to addr, dialing if needed.
// reused reports whether the connection predates this call — the
// caller may retry once on a fresh dial if a reused conn turns out to
// have died since its last use (peer restart).
func (p *pool) get(addr transport.Addr, dialTimeout time.Duration) (pc *peerConn, reused bool, err error) {
	p.mu.Lock()
	e := p.peers[addr]
	if e == nil {
		e = &peerEntry{}
		p.peers[addr] = e
	}
	p.mu.Unlock()

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.pc != nil && !e.pc.isClosed() {
		return e.pc, true, nil
	}
	bo := p.h.opts.DialBackoff
	if bo > 0 && time.Now().Before(e.nextDial) {
		return nil, false, fmt.Errorf("%w: dial to %s suppressed for %s (reconnect backoff)",
			transport.ErrUnreachable, addr, time.Until(e.nextDial).Round(time.Millisecond))
	}
	pc, err = p.dial(addr, dialTimeout)
	if err != nil {
		if bo > 0 {
			if e.backoff == 0 {
				e.backoff = bo
			} else {
				e.backoff *= 2
				if e.backoff > p.h.opts.DialBackoffMax {
					e.backoff = p.h.opts.DialBackoffMax
				}
			}
			// Up to 25% jitter so many callers' retries decorrelate.
			e.nextDial = time.Now().Add(e.backoff + time.Duration(rand.Int63n(int64(e.backoff)/4+1)))
		}
		return nil, false, err
	}
	e.backoff = 0
	e.nextDial = time.Time{}
	e.pc = pc
	return pc, false, nil
}

// discard drops pc from the pool if it is still the cached connection
// for its address (a racing redial may already have replaced it).
func (p *pool) discard(pc *peerConn) {
	p.mu.Lock()
	e := p.peers[pc.addr]
	p.mu.Unlock()
	if e == nil {
		return
	}
	e.mu.Lock()
	if e.pc == pc {
		e.pc = nil
	}
	e.mu.Unlock()
	pc.close(transport.ErrUnreachable)
}

func (p *pool) dial(addr transport.Addr, timeout time.Duration) (*peerConn, error) {
	p.dials.Add(1)
	conn, err := net.DialTimeout("tcp", string(addr), timeout)
	if err != nil {
		return nil, err
	}
	if ro := p.h.obsv.Load(); ro != nil {
		conn = &countingConn{Conn: conn, in: ro.bytesIn, out: ro.bytesOut}
	}
	pc := &peerConn{
		p:     p,
		addr:  addr,
		conn:  conn,
		calls: make(map[uint64]chan *frame),
	}
	pc.touch()
	go pc.readLoop()
	return pc, nil
}

// closeAll tears down every pooled connection (host shutdown). Pending
// calls fail with ErrDown.
func (p *pool) closeAll() {
	p.mu.Lock()
	entries := make([]*peerEntry, 0, len(p.peers))
	for _, e := range p.peers {
		entries = append(entries, e)
	}
	p.mu.Unlock()
	for _, e := range entries {
		e.mu.Lock()
		pc := e.pc
		e.pc = nil
		e.mu.Unlock()
		if pc != nil {
			pc.close(transport.ErrDown)
		}
	}
}

// reapLoop closes connections idle past the host's IdleTimeout with no
// in-flight calls. It exits when the host closes.
func (p *pool) reapLoop() {
	period := p.h.opts.IdleTimeout / 2
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-p.h.done:
			return
		case <-t.C:
		}
		cutoff := time.Now().Add(-p.h.opts.IdleTimeout).UnixNano()
		p.mu.Lock()
		entries := make([]*peerEntry, 0, len(p.peers))
		for _, e := range p.peers {
			entries = append(entries, e)
		}
		p.mu.Unlock()
		for _, e := range entries {
			e.mu.Lock()
			pc := e.pc
			if pc != nil && pc.lastUsed.Load() < cutoff && pc.pendingCount() == 0 {
				e.pc = nil
				e.mu.Unlock()
				pc.close(transport.ErrDown)
				continue
			}
			e.mu.Unlock()
		}
	}
}

// peerConn is one pooled connection.
type peerConn struct {
	p    *pool
	addr transport.Addr
	conn net.Conn
	wmu  sync.Mutex // serializes frame writes

	mu     sync.Mutex
	calls  map[uint64]chan *frame
	closed bool
	reason error // why the conn closed; nil while open

	nextID   atomic.Uint64
	lastUsed atomic.Int64 // unix nanos of last call start
}

func (pc *peerConn) touch() { pc.lastUsed.Store(time.Now().UnixNano()) }

func (pc *peerConn) isClosed() bool {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.closed
}

func (pc *peerConn) pendingCount() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return len(pc.calls)
}

// call sends one request and waits for its response or the timeout.
// wrote reports whether the request made it onto the wire — a false
// return means the peer cannot have seen it, so the caller may safely
// retry on a fresh connection.
func (pc *peerConn) call(method string, from transport.Addr, req any, timeout time.Duration, ft fault) (resp *frame, wrote bool, err error) {
	pc.touch()
	id := pc.nextID.Add(1)
	ch := make(chan *frame, 1)
	pc.mu.Lock()
	if pc.closed {
		pc.mu.Unlock()
		return nil, false, transport.ErrUnreachable
	}
	pc.calls[id] = ch
	pc.mu.Unlock()

	f := &frame{
		Kind: frameReq, ID: id, Method: method, From: string(from),
		TimeoutMS: timeout.Milliseconds(), Payload: req,
	}
	if err := writeFrameFault(pc.conn, &pc.wmu, f, time.Now().Add(timeout), pc.p.h.opts.MaxFrame, ft); err != nil {
		pc.unregister(id)
		pc.p.discard(pc)
		// A chaos reset put part of the frame on the wire, so the peer
		// may have seen bytes: report wrote=true to veto the
		// reconnect-once retry (at-most-once must hold under chaos too).
		return nil, errors.Is(err, errChaosReset), transport.ErrUnreachable
	}

	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case rf, ok := <-ch:
		if !ok {
			// Connection failed under us; the close reason is terminal.
			return nil, true, pc.closeReason()
		}
		return rf, true, nil
	case <-t.C:
		pc.unregister(id)
		return nil, true, transport.ErrTimeout
	case <-pc.p.h.done:
		pc.unregister(id)
		return nil, true, transport.ErrDown
	}
}

func (pc *peerConn) unregister(id uint64) {
	pc.mu.Lock()
	delete(pc.calls, id)
	pc.mu.Unlock()
}

// readLoop dispatches responses to waiting calls until the connection
// dies, then fails everything still pending.
func (pc *peerConn) readLoop() {
	br := bufio.NewReader(pc.conn)
	for {
		f, err := readFrame(br, pc.p.h.opts.MaxFrame)
		if err != nil {
			pc.p.discard(pc)
			return
		}
		if f.ID == 0 && f.ErrKind == errDown {
			// Connection-scoped error: the peer declared itself down (or
			// lost frame sync decoding a request). Nothing further will
			// be answered on this stream.
			pc.close(remoteDownError{})
			return
		}
		pc.mu.Lock()
		ch := pc.calls[f.ID]
		delete(pc.calls, f.ID)
		pc.mu.Unlock()
		if ch != nil {
			ch <- f
		}
	}
}

// close fails all pending calls with reason and shuts the socket. Safe
// to call more than once.
func (pc *peerConn) close(reason error) {
	pc.mu.Lock()
	if pc.closed {
		pc.mu.Unlock()
		return
	}
	pc.closed = true
	pc.reason = reason
	waiting := pc.calls
	pc.calls = make(map[uint64]chan *frame)
	pc.mu.Unlock()
	pc.conn.Close()
	for _, ch := range waiting {
		close(ch)
	}
}

func (pc *peerConn) closeReason() error {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.reason != nil {
		return pc.reason
	}
	return transport.ErrUnreachable
}

// remoteDownError marks a peer that answered "I am closed" — distinct
// from a connection failure so the caller maps it to ErrDown rather
// than ErrUnreachable.
type remoteDownError struct{}

func (remoteDownError) Error() string { return "remote host is down" }
