package nettransport

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rntree"
	"repro/internal/transport"
)

func (h *Host) inboundConns() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.conns)
}

func (h *Host) pooledConn(addr transport.Addr) *peerConn {
	h.pool.mu.Lock()
	e := h.pool.peers[addr]
	h.pool.mu.Unlock()
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.pc
}

// TestPooledConcurrentCalls multiplexes many overlapping requests over
// the single pooled connection and checks that every response pairs
// back to its own request ID.
func TestPooledConcurrentCalls(t *testing.T) {
	a, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.Handle("echo", func(rt transport.Runtime, from transport.Addr, req any) (any, error) {
		rt.Sleep(20 * time.Millisecond) // force the calls to overlap
		return rntree.SearchResp{Visits: req.(rntree.SearchReq).K}, nil
	})

	const N = 32
	var wg sync.WaitGroup
	errs := make([]error, N)
	for i := 0; i < N; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rt := a.newRuntime()
			resp, err := rt.Call(b.Addr(), "echo", rntree.SearchReq{K: i})
			if err != nil {
				errs[i] = err
				return
			}
			if got := resp.(rntree.SearchResp).Visits; got != i {
				t.Errorf("call %d answered with %d: responses crossed", i, got)
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if n := b.inboundConns(); n != 1 {
		t.Fatalf("server saw %d connections for %d pooled concurrent calls, want 1", n, N)
	}
}

// TestPooledPeerRestart kills and revives the peer between calls: the
// stale pooled connection must be replaced transparently (the
// reconnect-on-error path) without surfacing an error to the caller.
func TestPooledPeerRestart(t *testing.T) {
	a, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	serve := func(addr string) *Host {
		h, err := Listen(addr)
		if err != nil {
			t.Fatalf("listen %s: %v", addr, err)
		}
		h.Handle("ping", func(rt transport.Runtime, from transport.Addr, req any) (any, error) {
			return rntree.SearchResp{Visits: 1}, nil
		})
		return h
	}
	b := serve("127.0.0.1:0")
	addr := b.Addr()
	rt := a.newRuntime()
	if _, err := rt.Call(addr, "ping", rntree.SearchReq{}); err != nil {
		t.Fatalf("first call: %v", err)
	}

	for round := 0; round < 3; round++ {
		b.Close()
		b = serve(string(addr))
		// No settling sleep on purpose: the pooled conn may or may not
		// have noticed the restart yet, exercising both the redial and
		// the write-failed retry paths across rounds.
		if _, err := rt.CallT(addr, "ping", rntree.SearchReq{}, 2*time.Second); err != nil {
			// Narrow race: the write can land in the instant between the
			// peer's FIN and the read loop noticing it; that surfaces as
			// one transient error, and the next call must redial cleanly.
			if !transport.Transient(err) {
				t.Fatalf("round %d: non-transient error across restart: %v", round, err)
			}
			if _, err2 := rt.CallT(addr, "ping", rntree.SearchReq{}, 2*time.Second); err2 != nil {
				t.Fatalf("round %d: call after redial: %v (first: %v)", round, err2, err)
			}
		}
	}
	b.Close()
}

// TestIdleReap checks both sides drop a connection with no traffic and
// nothing in flight, and that the next call transparently redials.
func TestIdleReap(t *testing.T) {
	opts := Opts{IdleTimeout: 50 * time.Millisecond}
	a, err := ListenOpts("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenOpts("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.Handle("ping", func(rt transport.Runtime, from transport.Addr, req any) (any, error) {
		return rntree.SearchResp{}, nil
	})

	rt := a.newRuntime()
	if _, err := rt.Call(b.Addr(), "ping", rntree.SearchReq{}); err != nil {
		t.Fatal(err)
	}
	if a.pooledConn(b.Addr()) == nil {
		t.Fatal("no pooled connection after a call")
	}
	deadline := time.Now().Add(2 * time.Second)
	for a.pooledConn(b.Addr()) != nil || b.inboundConns() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("idle connection not reaped: client pooled=%v server inbound=%d",
				a.pooledConn(b.Addr()) != nil, b.inboundConns())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := rt.Call(b.Addr(), "ping", rntree.SearchReq{}); err != nil {
		t.Fatalf("call after reap: %v", err)
	}
}

// TestCloseDrainsInflight is the regression for Close returning while
// handlers still run: Close must wait (bounded) for in-flight requests.
func TestCloseDrainsInflight(t *testing.T) {
	a, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	var finished atomic.Bool
	b.Handle("slow", func(rt transport.Runtime, from transport.Addr, req any) (any, error) {
		close(started)
		rt.Sleep(200 * time.Millisecond)
		finished.Store(true)
		return rntree.SearchResp{}, nil
	})

	go func() {
		rt := a.newRuntime()
		_, _ = rt.CallT(b.Addr(), "slow", rntree.SearchReq{}, 2*time.Second)
	}()
	<-started
	b.Close()
	if !finished.Load() {
		t.Fatal("Close returned before the in-flight handler finished")
	}
}

// TestSlowHandlerGetsReply covers the per-call deadline carried in the
// request envelope: a handler far slower than the server's idle window
// must still deliver its reply, because the response deadline derives
// from the caller's timeout, not a fixed server constant.
func TestSlowHandlerGetsReply(t *testing.T) {
	opts := Opts{IdleTimeout: 50 * time.Millisecond}
	a, err := ListenOpts("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenOpts("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.Handle("slow", func(rt transport.Runtime, from transport.Addr, req any) (any, error) {
		rt.Sleep(400 * time.Millisecond) // 8x the idle window
		return rntree.SearchResp{Visits: 7}, nil
	})

	rt := a.newRuntime()
	resp, err := rt.CallT(b.Addr(), "slow", rntree.SearchReq{}, 2*time.Second)
	if err != nil {
		t.Fatalf("slow handler reply lost: %v", err)
	}
	if resp.(rntree.SearchResp).Visits != 7 {
		t.Fatalf("wrong reply: %+v", resp)
	}

	// And when the caller gives up first, the client times out cleanly.
	if _, err := rt.CallT(b.Addr(), "slow", rntree.SearchReq{}, 100*time.Millisecond); !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("want ErrTimeout when caller deadline < handler time, got %v", err)
	}
}

// TestBadFrameGetsDownReply is the regression for serveConn returning
// silently on a decode failure: the server must answer with a
// connection-scoped down error (ID 0) before hanging up, and the client
// maps that to transport.ErrDown.
func TestBadFrameGetsDownReply(t *testing.T) {
	b, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	conn, err := net.Dial("tcp", string(b.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
	// A length prefix followed by bytes that are not a gob frame.
	if _, err := conn.Write([]byte{0, 0, 0, 4, 0xde, 0xad, 0xbe, 0xef}); err != nil {
		t.Fatal(err)
	}
	f, err := readFrame(bufio.NewReader(conn), defaultMaxFrame)
	if err != nil {
		t.Fatalf("no error reply to bad frame: %v", err)
	}
	if f.ID != 0 || f.ErrKind != errDown {
		t.Fatalf("bad frame answered with ID=%d kind=%d, want connection-scoped down error", f.ID, f.ErrKind)
	}
	if got := mapCallErr(remoteDownError{}); !errors.Is(got, transport.ErrDown) {
		t.Fatalf("remote down reply maps to %v, want ErrDown", got)
	}
}

// TestPerDialBaseline sanity-checks the benchmarking baseline path:
// every call opens its own connection.
func TestPerDialBaseline(t *testing.T) {
	a, err := ListenOpts("127.0.0.1:0", Opts{PerDial: true})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.Handle("ping", func(rt transport.Runtime, from transport.Addr, req any) (any, error) {
		return rntree.SearchResp{Visits: 3}, nil
	})
	rt := a.newRuntime()
	for i := 0; i < 3; i++ {
		resp, err := rt.Call(b.Addr(), "ping", rntree.SearchReq{})
		if err != nil {
			t.Fatalf("per-dial call %d: %v", i, err)
		}
		if resp.(rntree.SearchResp).Visits != 3 {
			t.Fatalf("wrong reply: %+v", resp)
		}
	}
	if pc := a.pooledConn(b.Addr()); pc != nil {
		t.Fatal("per-dial host cached a pooled connection")
	}
}
