package nettransport

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/transport"
)

// Per-peer circuit breakers. Every outbound call reports its
// transport-level outcome to the peer's breaker; a run of consecutive
// failures opens it, after which calls to that peer fail instantly
// with an ErrUnreachable-wrapped "circuit open" error instead of each
// burning a dial or call timeout. The fast-fail is transient under
// transport.Transient, so the grid layer's classified retries
// (classifyInjectErr) re-route around the peer rather than giving up.
//
// State machine (DESIGN.md §12):
//
//	closed ──(threshold consecutive failures)──▶ open
//	open ──(cooldown expires)──▶ half-open (exactly one probe admitted)
//	half-open ──probe fails──▶ open (cooldown doubled + jitter, capped)
//	half-open ──probe succeeds──▶ closed (cooldown reset)
//
// Only transport-level outcomes count: a handler error or a missing
// handler is a live, answering peer and closes the circuit like any
// success.

// Breaker states.
const (
	brClosed = iota
	brOpen
	brHalfOpen
)

var brStateNames = [...]string{"closed", "open", "half-open"}

// PeerHealth is one peer's breaker snapshot, exported over Host.Health
// and (through the grid layer) the grid.health RPC.
type PeerHealth struct {
	Peer        transport.Addr
	State       string
	ConsecFails int           // consecutive failures while closed
	Failures    int64         // cumulative transport-level failures
	Successes   int64         // cumulative successes
	Opens       int64         // times the circuit opened
	RetryIn     time.Duration // open only: time until the next probe is admitted
}

type breakerSet struct {
	h  *Host
	mu sync.Mutex
	m  map[transport.Addr]*breaker
	// rng drives cooldown jitter only — recovery pacing, deliberately
	// outside the chaos determinism contract (see chaos.go).
	rng *rand.Rand
}

type breaker struct {
	state    int
	consec   int
	cooldown time.Duration // current open window; doubles per reopen
	until    time.Time     // open: when a half-open probe is admitted
	probing  bool          // half-open: a probe call is in flight

	fails, oks, opens int64
}

func newBreakerSet(h *Host) *breakerSet {
	return &breakerSet{
		h:   h,
		m:   make(map[transport.Addr]*breaker),
		rng: rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

func (s *breakerSet) enabled() bool { return s.h.opts.BreakerThreshold > 0 }

func (s *breakerSet) get(addr transport.Addr) *breaker {
	b := s.m[addr]
	if b == nil {
		b = &breaker{}
		s.m[addr] = b
	}
	return b
}

// allow admits or fast-fails one call to addr. A non-nil error wraps
// transport.ErrUnreachable and must be returned to the caller without
// recording an outcome (no network operation happened).
func (s *breakerSet) allow(addr transport.Addr) error {
	if !s.enabled() {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.get(addr)
	switch b.state {
	case brOpen:
		if time.Now().Before(b.until) {
			return openErr(addr, b.until)
		}
		// Cooldown over: admit exactly one probe.
		b.state = brHalfOpen
		b.probing = true
		s.transition("half-open")
		return nil
	case brHalfOpen:
		if b.probing {
			return openErr(addr, b.until)
		}
		b.probing = true
		return nil
	}
	return nil
}

func openErr(addr transport.Addr, until time.Time) error {
	return fmt.Errorf("%w: circuit open to %s (retry in %s)",
		transport.ErrUnreachable, addr, time.Until(until).Round(time.Millisecond))
}

// record feeds one call's transport-level outcome back.
func (s *breakerSet) record(addr transport.Addr, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.get(addr)
	if ok {
		b.oks++
		b.probing = false
		if b.state != brClosed {
			b.state = brClosed
			s.transition("closed")
		}
		b.consec = 0
		b.cooldown = 0
		return
	}
	b.fails++
	b.probing = false
	switch b.state {
	case brHalfOpen:
		s.open(b)
	case brClosed:
		b.consec++
		if s.enabled() && b.consec >= s.h.opts.BreakerThreshold {
			s.open(b)
		}
	case brOpen:
		// A call already in flight when the circuit opened; the open
		// window is unchanged.
	}
}

// open (re)opens b: the first open uses the base cooldown, each reopen
// from half-open doubles it up to the cap, and every window gets up to
// 25% jitter so probes from many callers don't synchronize.
func (s *breakerSet) open(b *breaker) {
	b.state = brOpen
	b.opens++
	if b.cooldown == 0 {
		b.cooldown = s.h.opts.BreakerCooldown
	} else {
		b.cooldown *= 2
		if b.cooldown > s.h.opts.BreakerMaxCooldown {
			b.cooldown = s.h.opts.BreakerMaxCooldown
		}
	}
	jitter := time.Duration(s.rng.Int63n(int64(b.cooldown)/4 + 1))
	b.until = time.Now().Add(b.cooldown + jitter)
	s.transition("open")
}

// transition counts a state change in the host's metrics registry (a
// no-op without an attached obs sink). The registry caches counters by
// name, so resolving here keeps breaker setup independent of when —
// or whether — SetObs runs.
func (s *breakerSet) transition(to string) {
	if ro := s.h.obsv.Load(); ro != nil {
		ro.reg.Counter("rpc_breaker_transitions_total", "to", to).Inc()
	}
}

// down reports whether a call to addr would fast-fail right now,
// without mutating breaker state.
func (s *breakerSet) down(addr transport.Addr) bool {
	if !s.enabled() {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.m[addr]
	if b == nil {
		return false
	}
	switch b.state {
	case brOpen:
		return time.Now().Before(b.until)
	case brHalfOpen:
		return b.probing
	}
	return false
}

func (s *breakerSet) openCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, b := range s.m {
		if b.state == brOpen {
			n++
		}
	}
	return n
}

// Health snapshots every peer this host has called, sorted by address.
func (h *Host) Health() []PeerHealth {
	s := h.brk
	s.mu.Lock()
	out := make([]PeerHealth, 0, len(s.m))
	now := time.Now()
	for addr, b := range s.m {
		ph := PeerHealth{
			Peer:        addr,
			State:       brStateNames[b.state],
			ConsecFails: b.consec,
			Failures:    b.fails,
			Successes:   b.oks,
			Opens:       b.opens,
		}
		if b.state == brOpen && b.until.After(now) {
			ph.RetryIn = b.until.Sub(now)
		}
		out = append(out, ph)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

// PeerDown reports whether calls to addr currently fast-fail (open
// circuit). The grid layer uses it to demote such peers in matchmaking
// and status probing (grid.Config.PeerDown).
func (h *Host) PeerDown(addr transport.Addr) bool {
	return h.brk.down(addr)
}
