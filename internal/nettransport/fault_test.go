package nettransport

import (
	"bufio"
	"bytes"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/rntree"
	"repro/internal/transport"
)

// TestFrameLengthBound covers the decoder's length-prefix bound at
// every enforcement point: the raw reader, the sending encoder, and a
// live server rejecting an oversized inbound frame.
func TestFrameLengthBound(t *testing.T) {
	// Raw reader: a hostile length prefix is rejected from the header
	// alone, before any body allocation.
	hostile := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := readFrame(bytes.NewReader(hostile), defaultMaxFrame); err == nil ||
		!strings.Contains(err.Error(), "bad frame length") {
		t.Fatalf("readFrame(4GB prefix) = %v, want bad frame length", err)
	}
	if _, err := readFrame(bytes.NewReader([]byte{0, 0, 0, 0}), defaultMaxFrame); err == nil {
		t.Fatal("readFrame accepted a zero-length frame")
	}

	// Sender side: a payload beyond the local MaxFrame never reaches the
	// wire; the call fails transient.
	big := rntree.SearchReq{Exclude: transport.Addr(strings.Repeat("x", 8192))}
	b, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.Handle("echo", func(rt transport.Runtime, from transport.Addr, req any) (any, error) {
		return rntree.SearchResp{}, nil
	})
	small, err := ListenOpts("127.0.0.1:0", Opts{MaxFrame: 4096, BreakerThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer small.Close()
	if _, err := small.newRuntime().Call(b.Addr(), "echo", big); !transport.Transient(err) {
		t.Fatalf("oversized send: err = %v, want transient", err)
	}

	// Receiver side: a server with a tight bound drops the connection on
	// an oversized frame; the sender's pending call fails as down.
	srv, err := ListenOpts("127.0.0.1:0", Opts{MaxFrame: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Handle("echo", func(rt transport.Runtime, from transport.Addr, req any) (any, error) {
		return rntree.SearchResp{}, nil
	})
	cl, err := ListenOpts("127.0.0.1:0", Opts{BreakerThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	rt := cl.newRuntime()
	if _, err := rt.Call(srv.Addr(), "echo", big); !transport.Transient(err) {
		t.Fatalf("frame over server bound: err = %v, want transient", err)
	}
	// A small frame still round-trips afterwards.
	if _, err := rt.Call(srv.Addr(), "echo", rntree.SearchReq{K: 1}); err != nil {
		t.Fatalf("small frame after rejection: %v", err)
	}
}

// TestDialBackoffLimitsDials hammers a dead peer and checks the
// reconnect backoff collapses the dial storm: most calls fail fast from
// the suppression window instead of burning a TCP connect each.
func TestDialBackoffLimitsDials(t *testing.T) {
	a, err := ListenOpts("127.0.0.1:0", Opts{
		BreakerThreshold: -1, // isolate backoff from the breaker
		DialBackoff:      50 * time.Millisecond,
		DialBackoffMax:   200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	dead := deadAddr(t)
	rt := a.newRuntime()

	sawSuppressed := false
	for i := 0; i < 20; i++ {
		_, err := rt.CallT(dead, "echo", rntree.SearchReq{}, time.Second)
		if !transport.Transient(err) {
			t.Fatalf("call %d: err = %v, want transient", i, err)
		}
		if strings.Contains(err.Error(), "reconnect backoff") {
			sawSuppressed = true
		}
		time.Sleep(10 * time.Millisecond)
	}
	dials := a.pool.dials.Load()
	if dials < 1 {
		t.Fatal("no dial attempted at all")
	}
	// 20 calls over ~200ms against a 50ms-then-doubling window: without
	// suppression that is 20 dials; with it, a handful.
	if dials > 6 {
		t.Fatalf("%d dials for 20 calls; backoff not suppressing reconnects", dials)
	}
	if !sawSuppressed {
		t.Fatal("no call reported the backoff suppression window")
	}
}

// TestMidFrameResetDoesNotPoisonPending stages a peer that answers one
// multiplexed request, truncates the response to a second mid-frame,
// and dies. The answered call must succeed, the truncated one must fail
// transient, and the next call must recover on a fresh connection.
func TestMidFrameResetDoesNotPoisonPending(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	srvErr := make(chan error, 1)
	go func() {
		srvErr <- func() error {
			conn, err := ln.Accept()
			if err != nil {
				return err
			}
			br := bufio.NewReader(conn)
			f1, err := readFrame(br, defaultMaxFrame)
			if err != nil {
				return err
			}
			f2, err := readFrame(br, defaultMaxFrame)
			if err != nil {
				return err
			}
			var wmu sync.Mutex
			// Full response for the first request...
			if err := writeFrame(conn, &wmu, &frame{
				Kind: frameResp, ID: f1.ID, Payload: rntree.SearchResp{Visits: 1},
			}, time.Time{}, defaultMaxFrame); err != nil {
				return err
			}
			// ...then half a response for the second, and a dead socket.
			b, err := encodeFrame(&frame{
				Kind: frameResp, ID: f2.ID, Payload: rntree.SearchResp{Visits: 2},
			}, defaultMaxFrame)
			if err != nil {
				return err
			}
			if _, err := conn.Write(b[:len(b)/2]); err != nil {
				return err
			}
			conn.Close()
			// The client's next call redials; serve it properly.
			conn2, err := ln.Accept()
			if err != nil {
				return err
			}
			f3, err := readFrame(bufio.NewReader(conn2), defaultMaxFrame)
			if err != nil {
				return err
			}
			defer conn2.Close()
			return writeFrame(conn2, &wmu, &frame{
				Kind: frameResp, ID: f3.ID, Payload: rntree.SearchResp{Visits: 3},
			}, time.Time{}, defaultMaxFrame)
		}()
	}()

	a, err := ListenOpts("127.0.0.1:0", Opts{BreakerThreshold: -1, DialBackoff: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	peer := transport.Addr(ln.Addr().String())

	aDone := make(chan error, 1)
	a.Go("first", func(rt transport.Runtime) {
		resp, err := rt.CallT(peer, "echo", rntree.SearchReq{K: 1}, 5*time.Second)
		if err == nil && resp.(rntree.SearchResp).Visits != 1 {
			t.Errorf("first call got %+v, want Visits 1", resp)
		}
		aDone <- err
	})
	time.Sleep(100 * time.Millisecond) // let the first request hit the wire first
	rt := a.newRuntime()
	_, bErr := rt.CallT(peer, "echo", rntree.SearchReq{K: 2}, 5*time.Second)
	if !transport.Transient(bErr) {
		t.Fatalf("truncated call: err = %v, want transient", bErr)
	}
	if err := <-aDone; err != nil {
		t.Fatalf("multiplexed sibling call failed alongside the reset: %v", err)
	}

	// Fresh connection, full service: the pool recovered.
	resp, err := rt.CallT(peer, "echo", rntree.SearchReq{K: 3}, 5*time.Second)
	if err != nil {
		t.Fatalf("call after reset: %v", err)
	}
	if resp.(rntree.SearchResp).Visits != 3 {
		t.Fatalf("recovery call got %+v, want Visits 3", resp)
	}
	if err := <-srvErr; err != nil {
		t.Fatalf("staged peer: %v", err)
	}
}
