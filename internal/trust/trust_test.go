package trust

import (
	"math"
	"testing"

	"repro/internal/transport"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestDefaultsAndInitialScore(t *testing.T) {
	tb := New(Config{})
	if got := tb.InitialScore(); got != 0.5 {
		t.Fatalf("InitialScore = %v, want 0.5", got)
	}
	if got := tb.Score("never-seen"); got != 0.5 {
		t.Fatalf("Score(unseen) = %v, want 0.5", got)
	}
	if tb.Blacklisted("never-seen") {
		t.Fatal("unseen peer must not be blacklisted")
	}
}

func TestAgreeDisagreeDeltasAndCounts(t *testing.T) {
	tb := New(Config{})
	a := transport.Addr("n001")

	d, black := tb.Agree(a)
	if !approx(d, 0.05) || black {
		t.Fatalf("Agree = (%v, %v), want (0.05, false)", d, black)
	}
	if got := tb.Score(a); !approx(got, 0.55) {
		t.Fatalf("score after agree = %v, want 0.55", got)
	}

	d, black = tb.Disagree(a)
	if !approx(d, -0.3) || black {
		t.Fatalf("Disagree = (%v, %v), want (-0.3, false)", d, black)
	}

	snap := tb.Snapshot()
	if len(snap) != 1 || snap[0].Agreed != 1 || snap[0].Disagreed != 1 {
		t.Fatalf("snapshot = %+v, want one entry with Agreed=1 Disagreed=1", snap)
	}
}

func TestBlacklistCrossingAndClamp(t *testing.T) {
	tb := New(Config{})
	a := transport.Addr("evil")

	// 0.5 -> 0.2: not yet blacklisted (threshold is strict <).
	if _, black := tb.Disagree(a); black {
		t.Fatal("0.2 is not below the 0.2 threshold")
	}
	if tb.Blacklisted(a) {
		t.Fatal("peer at exactly the threshold must not be blacklisted")
	}
	// 0.2 -> 0: crosses into the blacklist, clamped at 0.
	d, black := tb.Disagree(a)
	if !black {
		t.Fatal("second disagree must cross into the blacklist")
	}
	if !approx(d, -0.2) {
		t.Fatalf("clamped delta = %v, want -0.2", d)
	}
	if got := tb.Score(a); !approx(got, 0) {
		t.Fatalf("score = %v, want clamp at 0", got)
	}
	if !tb.Blacklisted(a) {
		t.Fatal("peer must be blacklisted")
	}
	// Further penalties do not re-report the crossing.
	if _, black := tb.ProbeBad(a); black {
		t.Fatal("already-blacklisted peer must not re-report crossing")
	}

	// Redemption via probes: 0 -> 0.15 -> 0.3 clears the blacklist.
	tb.ProbeOK(a)
	if !tb.Blacklisted(a) {
		t.Fatal("0.15 is still below the threshold")
	}
	tb.ProbeOK(a)
	if tb.Blacklisted(a) {
		t.Fatal("0.3 must clear the blacklist")
	}

	snap := tb.Snapshot()
	if snap[0].ProbesOK != 2 || snap[0].ProbesBad != 1 {
		t.Fatalf("probe counts = %+v, want ProbesOK=2 ProbesBad=1", snap[0])
	}
}

func TestScoreClampAtOne(t *testing.T) {
	tb := New(Config{})
	a := transport.Addr("saint")
	for i := 0; i < 20; i++ {
		tb.Agree(a)
	}
	if got := tb.Score(a); !approx(got, 1) {
		t.Fatalf("score = %v, want clamp at 1", got)
	}
}

func TestBlacklistedPeersAndWorst(t *testing.T) {
	tb := New(Config{})
	sink := func(a transport.Addr, n int) {
		for i := 0; i < n; i++ {
			tb.Disagree(a)
		}
	}
	sink("b", 2) // score 0
	sink("a", 2) // score 0 (tie with b)
	sink("c", 1) // score 0.2, not blacklisted
	tb.Agree("d")

	got := tb.BlacklistedPeers()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("BlacklistedPeers = %v, want [a b]", got)
	}
	worst, ok := tb.WorstBlacklisted()
	if !ok || worst != "a" {
		t.Fatalf("WorstBlacklisted = (%v, %v), want (a, true)", worst, ok)
	}

	// Snapshot is sorted by address.
	snap := tb.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Node >= snap[i].Node {
			t.Fatalf("snapshot not sorted: %+v", snap)
		}
	}
}

func TestWorstBlacklistedEmpty(t *testing.T) {
	tb := New(Config{})
	tb.Agree("x")
	if _, ok := tb.WorstBlacklisted(); ok {
		t.Fatal("no peer is blacklisted")
	}
}
