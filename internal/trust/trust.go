// Package trust implements the peer-reputation half of the sabotage
// tolerance subsystem: a per-node local credibility table fed by quorum
// voting outcomes (internal/grid's redundant execution) and by
// known-answer probe jobs.
//
// The model follows the credibility-based approaches of volunteer
// computing (BOINC-style redundant computing, Sarmenta's sabotage
// tolerance): every peer starts at a neutral score, gains a little for
// each result that agreed with an accepted quorum, loses a lot for each
// dissenting result, and is blacklisted — skipped by matchmaking —
// once its score falls below a threshold. Blacklisted peers can redeem
// themselves only through spot-check probes with known answers.
//
// Tables are strictly local: each owner scores only the peers whose
// replicas it voted on. There is no gossip layer; the paper's grid has
// no global authority to aggregate scores, and local-only reputation
// is immune to badmouthing by other saboteurs.
package trust

import (
	"sort"
	"sync"

	"repro/internal/transport"
)

// Config tunes the reputation dynamics. The zero value selects the
// defaults.
type Config struct {
	// Initial is the score a never-seen peer starts with (default 0.5).
	Initial float64
	// AgreeDelta is added when a peer's replica agreed with the
	// accepted quorum digest (default +0.05).
	AgreeDelta float64
	// DisagreeDelta is added when a peer's replica dissented from the
	// accepted digest (default -0.3: one wrong answer costs six right
	// ones, the asymmetry sabotage tolerance needs).
	DisagreeDelta float64
	// ProbeOKDelta is added when a spot-check probe returned the known
	// answer (default +0.15: redemption is slower than conviction).
	ProbeOKDelta float64
	// ProbeBadDelta is added when a probe returned a wrong answer
	// (default -0.5).
	ProbeBadDelta float64
	// BlacklistBelow is the score under which a peer is blacklisted
	// (default 0.2). Scores are clamped to [0, 1].
	BlacklistBelow float64
}

func (c Config) withDefaults() Config {
	if c.Initial == 0 {
		c.Initial = 0.5
	}
	if c.AgreeDelta == 0 {
		c.AgreeDelta = 0.05
	}
	if c.DisagreeDelta == 0 {
		c.DisagreeDelta = -0.3
	}
	if c.ProbeOKDelta == 0 {
		c.ProbeOKDelta = 0.15
	}
	if c.ProbeBadDelta == 0 {
		c.ProbeBadDelta = -0.5
	}
	if c.BlacklistBelow == 0 {
		c.BlacklistBelow = 0.2
	}
	return c
}

// Entry is one peer's reputation record.
type Entry struct {
	Node        transport.Addr
	Score       float64
	Agreed      int // replicas that matched an accepted quorum
	Disagreed   int // replicas that dissented from an accepted quorum
	ProbesOK    int
	ProbesBad   int
	Blacklisted bool
}

// Table is a node-local reputation table. All methods are safe for
// concurrent use.
type Table struct {
	mu    sync.Mutex
	cfg   Config
	peers map[transport.Addr]*Entry
}

// New returns an empty table with the given (defaulted) configuration.
func New(cfg Config) *Table {
	return &Table{cfg: cfg.withDefaults(), peers: make(map[transport.Addr]*Entry)}
}

// InitialScore returns the configured neutral starting score.
func (t *Table) InitialScore() float64 { return t.cfg.Initial }

func (t *Table) entryLocked(a transport.Addr) *Entry {
	e, ok := t.peers[a]
	if !ok {
		e = &Entry{Node: a, Score: t.cfg.Initial}
		t.peers[a] = e
	}
	return e
}

// bump applies delta to a peer's score, clamped to [0, 1]. It returns
// the applied delta and whether the update crossed INTO the blacklist.
func (t *Table) bump(a transport.Addr, delta float64) (float64, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.entryLocked(a)
	before := e.Score
	e.Score += delta
	if e.Score < 0 {
		e.Score = 0
	}
	if e.Score > 1 {
		e.Score = 1
	}
	wasBlack := before < t.cfg.BlacklistBelow
	e.Blacklisted = e.Score < t.cfg.BlacklistBelow
	return e.Score - before, !wasBlack && e.Blacklisted
}

// Agree credits a peer whose replica matched an accepted quorum. It
// returns the applied score delta and whether the peer just crossed
// into the blacklist (always false here, deltas being positive).
func (t *Table) Agree(a transport.Addr) (delta float64, blacklisted bool) {
	delta, blacklisted = t.bump(a, t.cfg.AgreeDelta)
	t.mu.Lock()
	t.peers[a].Agreed++
	t.mu.Unlock()
	return delta, blacklisted
}

// Disagree penalizes a peer whose replica dissented from an accepted
// quorum.
func (t *Table) Disagree(a transport.Addr) (delta float64, blacklisted bool) {
	delta, blacklisted = t.bump(a, t.cfg.DisagreeDelta)
	t.mu.Lock()
	t.peers[a].Disagreed++
	t.mu.Unlock()
	return delta, blacklisted
}

// ProbeOK credits a peer that answered a known-answer probe correctly —
// the redemption path for blacklisted nodes.
func (t *Table) ProbeOK(a transport.Addr) (delta float64, blacklisted bool) {
	delta, blacklisted = t.bump(a, t.cfg.ProbeOKDelta)
	t.mu.Lock()
	t.peers[a].ProbesOK++
	t.mu.Unlock()
	return delta, blacklisted
}

// ProbeBad penalizes a peer that answered a probe wrongly.
func (t *Table) ProbeBad(a transport.Addr) (delta float64, blacklisted bool) {
	delta, blacklisted = t.bump(a, t.cfg.ProbeBadDelta)
	t.mu.Lock()
	t.peers[a].ProbesBad++
	t.mu.Unlock()
	return delta, blacklisted
}

// Score returns a peer's current score (the initial score for peers
// never seen).
func (t *Table) Score(a transport.Addr) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.peers[a]; ok {
		return e.Score
	}
	return t.cfg.Initial
}

// Blacklisted reports whether a peer is currently blacklisted.
func (t *Table) Blacklisted(a transport.Addr) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.peers[a]
	return ok && e.Blacklisted
}

// BlacklistedPeers returns the blacklisted addresses in sorted order —
// the exclusion list trust-aware matchmaking appends.
func (t *Table) BlacklistedPeers() []transport.Addr {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []transport.Addr
	for a, e := range t.peers {
		if e.Blacklisted {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// WorstBlacklisted returns the blacklisted peer with the lowest score
// (ties broken by address order) — the spot-check probe target. ok is
// false when nobody is blacklisted.
func (t *Table) WorstBlacklisted() (addr transport.Addr, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for a, e := range t.peers {
		if !e.Blacklisted {
			continue
		}
		if !ok || e.Score < t.peers[addr].Score || (e.Score == t.peers[addr].Score && a < addr) {
			addr, ok = a, true
		}
	}
	return addr, ok
}

// Snapshot returns a copy of every entry, sorted by address.
func (t *Table) Snapshot() []Entry {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Entry, 0, len(t.peers))
	for _, e := range t.peers {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}
