package obs

import (
	"sort"
	"sync"
	"time"

	"repro/internal/ids"
	"repro/internal/transport"
)

// TC is the trace context propagated on wire messages: the trace
// identifier (a job lineage's attempt-0 GUID, stable across
// resubmissions) and a per-trace Lamport hop counter. Node clocks in a
// live deployment measure time since their own process start and are
// not comparable across hosts, so cross-node ordering of a job's
// lifecycle rests on Hop: every traced node merges the incoming hop
// into its local counter and stamps events past it. Protocol handlers
// must never branch on TC — it is carried, recorded, and forwarded,
// nothing else (the trace-neutrality invariant).
type TC struct {
	ID  ids.ID
	Hop uint32
}

// Zero reports whether the context names no trace.
func (tc TC) Zero() bool { return tc.ID.IsZero() }

// TraceEvent is one lifecycle step observed at one node.
type TraceEvent struct {
	Trace   ids.ID
	Hop     uint32
	At      time.Duration // the observing node's local clock
	Node    transport.Addr
	Stage   string
	Attempt int
	Peer    transport.Addr // counterpart node, if any
	Note    string
}

// traceRec is the per-trace buffer plus its Lamport clock.
type traceRec struct {
	lamport uint32
	evs     []TraceEvent
	peers   map[transport.Addr]bool
}

// Tracer holds a node's local view of recent job traces: a bounded map
// of per-trace event buffers. Remote reconstruction (gridctl trace)
// pulls these buffers over the grid.trace RPC and walks the peer set to
// closure — the tracer itself never sends anything.
type Tracer struct {
	mu       sync.Mutex
	maxTrace int
	maxEvs   int
	traces   map[ids.ID]*traceRec
	order    []ids.ID // insertion order for FIFO eviction
}

// NewTracer returns a tracer retaining up to 1024 traces of up to 512
// events each.
func NewTracer() *Tracer {
	return &Tracer{maxTrace: 1024, maxEvs: 512, traces: make(map[ids.ID]*traceRec)}
}

func (t *Tracer) recLocked(id ids.ID) *traceRec {
	rec, ok := t.traces[id]
	if ok {
		return rec
	}
	if len(t.order) >= t.maxTrace {
		evict := t.order[0]
		t.order = t.order[1:]
		delete(t.traces, evict)
	}
	rec = &traceRec{peers: make(map[transport.Addr]bool)}
	t.traces[id] = rec
	t.order = append(t.order, id)
	return rec
}

// Record notes one lifecycle step observed at node and returns the
// context to propagate on any message this step causes. A nil tracer
// or zero context passes tc through unchanged, so hop numbering
// survives untraced intermediaries as far as the wire carries it.
func (t *Tracer) Record(tc TC, at time.Duration, node transport.Addr, stage string, attempt int, peer transport.Addr, note string) TC {
	if t == nil || tc.ID.IsZero() {
		return tc
	}
	t.mu.Lock()
	rec := t.recLocked(tc.ID)
	if tc.Hop > rec.lamport {
		rec.lamport = tc.Hop
	}
	rec.lamport++
	if len(rec.evs) < t.maxEvs {
		rec.evs = append(rec.evs, TraceEvent{
			Trace: tc.ID, Hop: rec.lamport, At: at, Node: node,
			Stage: stage, Attempt: attempt, Peer: peer, Note: note,
		})
	}
	if peer != "" && peer != node {
		rec.peers[peer] = true
	}
	out := TC{ID: tc.ID, Hop: rec.lamport}
	t.mu.Unlock()
	return out
}

// Context returns the current propagation context for a trace without
// recording an event (outgoing messages not tied to a new step).
func (t *Tracer) Context(id ids.ID) TC {
	if t == nil {
		return TC{ID: id}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if rec, ok := t.traces[id]; ok {
		return TC{ID: id, Hop: rec.lamport}
	}
	return TC{ID: id}
}

// Get returns this node's events for a trace, sorted by hop then local
// time, plus the peer addresses seen in the trace's context — the seed
// set a cross-node reconstruction walks next.
func (t *Tracer) Get(id ids.ID) ([]TraceEvent, []transport.Addr) {
	if t == nil {
		return nil, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	rec, ok := t.traces[id]
	if !ok {
		return nil, nil
	}
	evs := append([]TraceEvent(nil), rec.evs...)
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Hop != evs[j].Hop {
			return evs[i].Hop < evs[j].Hop
		}
		return evs[i].At < evs[j].At
	})
	peers := make([]transport.Addr, 0, len(rec.peers))
	for p := range rec.peers {
		peers = append(peers, p)
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	return evs, peers
}

// Traces returns the identifiers currently retained, newest last.
func (t *Tracer) Traces() []ids.ID {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]ids.ID(nil), t.order...)
}

// MergeSort orders events gathered from several nodes into one causal
// timeline: by Lamport hop, then by stage name and node for a stable
// tie-break (local clocks are not comparable across nodes).
func MergeSort(evs []TraceEvent) []TraceEvent {
	out := append([]TraceEvent(nil), evs...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Hop != out[j].Hop {
			return out[i].Hop < out[j].Hop
		}
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Stage < out[j].Stage
	})
	return out
}
