// Package obs is the live observability layer: a lock-cheap metrics
// registry (counters, gauges, fixed-bucket histograms with Prometheus
// text exposition), a causal job tracer whose context propagates across
// nodes on wire messages, and a JSONL structured-event hub backing the
// /events stream.
//
// Trace-neutrality invariant: nothing in this package may feed back
// into protocol decisions. Every operation is a synchronous in-memory
// update — no sleeps, no RPCs, no use of a Runtime's random stream — so
// attaching observability to a deterministic simulation leaves its
// event trace byte-identical (enforced by the soak regression tests in
// internal/grid). All instrument methods are nil-receiver safe: code
// instruments unconditionally and a nil *Obs (observability off) makes
// every call a cheap no-op.
package obs

// Obs bundles one node's observability facilities. A nil *Obs disables
// observability; the accessors below then return nil facilities whose
// methods all no-op.
type Obs struct {
	Reg    *Registry
	Tracer *Tracer
	Hub    *EventHub
}

// New returns a fully enabled observability bundle.
func New() *Obs {
	return &Obs{Reg: NewRegistry(), Tracer: NewTracer(), Hub: NewEventHub()}
}

// Registry returns the metrics registry, nil when observability is off.
func (o *Obs) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Reg
}

// GetTracer returns the job tracer, nil when observability is off.
func (o *Obs) GetTracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.Tracer
}

// GetHub returns the structured-event hub, nil when observability is
// off.
func (o *Obs) GetHub() *EventHub {
	if o == nil {
		return nil
	}
	return o.Hub
}
