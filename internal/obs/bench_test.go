package obs

import (
	"testing"
	"time"

	"repro/internal/ids"
)

// The registry sits on protocol hot paths (every heartbeat, RPC, and
// execution slice), so the uncontended instrument cost must stay under
// 100 ns/op — see EXPERIMENTS.md §obs for recorded numbers.

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncNil(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	c := NewRegistry().Counter("bench_total")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkGaugeSet(b *testing.B) {
	g := NewRegistry().Gauge("bench_gauge")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", DefBucketsSeconds)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%300) * 0.01)
	}
}

func BenchmarkHistogramObserveNil(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i))
	}
}

func BenchmarkTracerRecord(b *testing.B) {
	tr := NewTracer()
	tc := TC{ID: ids.HashString("bench")}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tc = tr.Record(tc, time.Duration(i), "n1", "stage", 0, "", "")
	}
}
