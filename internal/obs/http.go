package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler builds the node-local observability endpoint:
//
//	/metrics      Prometheus text exposition of the registry
//	/events       JSONL structured-event stream (long-lived response)
//	/debug/pprof  the standard Go profiler surface
//	/healthz      liveness probe
func Handler(o *Obs) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		o.Registry().WritePrometheus(w)
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		fl, canFlush := w.(http.Flusher)
		ch, cancel := o.GetHub().Subscribe(256)
		defer cancel()
		for {
			select {
			case line, ok := <-ch:
				if !ok {
					return
				}
				if _, err := w.Write(line); err != nil {
					return
				}
				if canFlush {
					fl.Flush()
				}
			case <-r.Context().Done():
				return
			}
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the observability HTTP endpoint on addr in the
// background and returns the server (Close to stop) and the bound
// address (addr may use port 0).
func Serve(addr string, o *Obs) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(o)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}
