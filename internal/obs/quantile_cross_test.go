package obs_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/metrics"
	"repro/internal/obs"
)

// TestHistogramQuantileVsExact cross-checks the bucketed quantile
// estimate served on /metrics against the exact-sample quantile the
// offline metrics package computes. The bucketed estimate can only be
// off by the width of the bucket the quantile lands in.
func TestHistogramQuantileVsExact(t *testing.T) {
	bounds := []float64{0.5, 1, 2, 4, 8, 16, 32, 64}
	reg := obs.NewRegistry()
	h := reg.Histogram("cross_check", bounds)

	rng := rand.New(rand.NewSource(11))
	var xs []float64
	for i := 0; i < 5000; i++ {
		// Log-uniform over (0.1, ~50): exercises several buckets.
		x := 0.1 * math.Pow(2, rng.Float64()*9)
		xs = append(xs, x)
		h.Observe(x)
	}

	for _, q := range []float64{0.50, 0.95, 0.99} {
		exact := metrics.Quantile(xs, q)
		est := h.Quantile(q)
		lo, hi := bucketAround(bounds, exact)
		if est < lo || est > hi {
			t.Errorf("q=%.2f: bucketed %v outside bucket [%v, %v] of exact %v", q, est, lo, hi, exact)
		}
	}
}

// bucketAround returns the bounds of the histogram bucket containing v.
func bucketAround(bounds []float64, v float64) (lo, hi float64) {
	lo = 0
	for _, b := range bounds {
		if v <= b {
			return lo, b
		}
		lo = b
	}
	return lo, lo * 2 // overflow bucket: estimate clamps near the last bound
}
