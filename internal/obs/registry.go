package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is
// usable; a nil *Counter no-ops, so call sites instrument
// unconditionally and pay one predictable branch when observability is
// off.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be non-negative; counters never decrease).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add shifts the gauge by d.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets defined by sorted
// upper bounds (an implicit +Inf bucket catches the tail). Observation
// is a linear scan over the bounds plus three atomic updates — bounded,
// allocation-free, and lock-free.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; cumulative only at render
	n       atomic.Int64
	sumBits atomic.Uint64
}

// DefBucketsSeconds suits latencies from milliseconds to minutes.
var DefBucketsSeconds = []float64{.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30, 60, 120, 300}

// DefBucketsHops suits overlay hop and visit counts.
var DefBucketsHops = []float64{0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128}

// newHistogram copies bounds (which must be sorted ascending).
func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sumBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// N returns the observation count.
func (h *Histogram) N() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-quantile (0 < q < 1) by linear
// interpolation inside the bucket where the cumulative count crosses
// q*N. Resolution is bounded by bucket width; values beyond the last
// finite bound report that bound. Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.n.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			if i >= len(h.bounds) {
				// +Inf bucket: the best point estimate is the last
				// finite bound.
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// gaugeFn is a pull-evaluated gauge (sampled only at scrape time, so it
// can read live state like a queue length without push-side cost).
type gaugeFn func() float64

// Registry holds named metrics. Names follow the Prometheus data
// model: an optional brace-delimited label set after the family name
// (built by the variadic label pairs on the getters). Getters are
// get-or-create and idempotent; call sites resolve instruments once and
// keep the pointer, so the hot path never touches the registry map. A
// nil *Registry returns nil instruments throughout.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string]gaugeFn
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		gaugeFns: make(map[string]gaugeFn),
		hists:    make(map[string]*Histogram),
	}
}

// metricName renders name{k1="v1",k2="v2"} from label pairs.
func metricName(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list for %s: %v", name, labels))
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", labels[i], labels[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	full := metricName(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[full]
	if !ok {
		c = &Counter{}
		r.counters[full] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	full := metricName(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[full]
	if !ok {
		g = &Gauge{}
		r.gauges[full] = g
	}
	return g
}

// GaugeFunc registers a pull-evaluated gauge; fn runs at scrape time.
// Re-registering a name replaces the function (last wins — shared
// registries in multi-node tests overwrite harmlessly).
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...string) {
	if r == nil || fn == nil {
		return
	}
	full := metricName(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFns[full] = fn
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (later calls reuse the existing buckets).
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	full := metricName(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[full]
	if !ok {
		h = newHistogram(bounds)
		r.hists[full] = h
	}
	return h
}

// Sample is one rendered metric value (histograms expand to _count,
// _sum, and quantile point estimates).
type Sample struct {
	Name  string
	Value float64
}

// Snapshot renders every metric as flat samples sorted by name — the
// payload of the grid.stats RPC.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	fns := make(map[string]gaugeFn, len(r.gaugeFns))
	for k, v := range r.gaugeFns {
		fns[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	var out []Sample
	for k, c := range counters {
		out = append(out, Sample{k, float64(c.Value())})
	}
	for k, g := range gauges {
		out = append(out, Sample{k, g.Value()})
	}
	for k, fn := range fns {
		out = append(out, Sample{k, fn()})
	}
	for k, h := range hists {
		out = append(out,
			Sample{k + "_count", float64(h.N())},
			Sample{k + "_sum", h.Sum()},
			Sample{k + "_p50", h.Quantile(0.50)},
			Sample{k + "_p95", h.Quantile(0.95)},
			Sample{k + "_p99", h.Quantile(0.99)},
		)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// family splits a full metric name into its family and the label body
// (without braces); labels is empty when the name carries none.
func family(full string) (fam, labels string) {
	if i := strings.IndexByte(full, '{'); i >= 0 {
		return full[:i], strings.TrimSuffix(full[i+1:], "}")
	}
	return full, ""
}

// withLabel appends one more label to a rendered name.
func withLabel(fam, labels, k, v string) string {
	lbl := fmt.Sprintf("%s=%q", k, v)
	if labels != "" {
		lbl = labels + "," + lbl
	}
	return fam + "{" + lbl + "}"
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format, sorted by name for stable scrapes.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	type hline struct {
		name string
		h    *Histogram
	}
	lines := make(map[string]string) // full sample name -> rendered line(s)
	types := make(map[string]string) // family -> TYPE
	for k, c := range r.counters {
		fam, _ := family(k)
		types[fam] = "counter"
		lines[k] = fmt.Sprintf("%s %d\n", k, c.Value())
	}
	for k, g := range r.gauges {
		fam, _ := family(k)
		types[fam] = "gauge"
		lines[k] = fmt.Sprintf("%s %v\n", k, g.Value())
	}
	var fnNames []string
	fns := make(map[string]gaugeFn)
	for k, fn := range r.gaugeFns {
		fnNames = append(fnNames, k)
		fns[k] = fn
	}
	var hl []hline
	for k, h := range r.hists {
		hl = append(hl, hline{k, h})
	}
	r.mu.Unlock()

	// Gauge functions and histogram renders happen outside the registry
	// lock: fns may read arbitrary live state.
	for _, k := range fnNames {
		fam, _ := family(k)
		types[fam] = "gauge"
		lines[k] = fmt.Sprintf("%s %v\n", k, fns[k]())
	}
	for _, e := range hl {
		fam, labels := family(e.name)
		types[fam] = "histogram"
		var b strings.Builder
		var cum int64
		for i, bound := range e.h.bounds {
			cum += e.h.counts[i].Load()
			fmt.Fprintf(&b, "%s %d\n", withLabel(fam+"_bucket", labels, "le", trimFloat(bound)), cum)
		}
		cum += e.h.counts[len(e.h.bounds)].Load()
		fmt.Fprintf(&b, "%s %d\n", withLabel(fam+"_bucket", labels, "le", "+Inf"), cum)
		fmt.Fprintf(&b, "%s %v\n", metricName(fam+"_sum", nil)+bracesOf(labels), e.h.Sum())
		fmt.Fprintf(&b, "%s %d\n", metricName(fam+"_count", nil)+bracesOf(labels), e.h.N())
		lines[e.name] = b.String()
	}

	names := make([]string, 0, len(lines))
	for k := range lines {
		names = append(names, k)
	}
	sort.Strings(names)
	emitted := make(map[string]bool)
	for _, k := range names {
		fam, _ := family(k)
		if !emitted[fam] {
			emitted[fam] = true
			fmt.Fprintf(w, "# TYPE %s %s\n", fam, types[fam])
		}
		io.WriteString(w, lines[k])
	}
}

func bracesOf(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// trimFloat renders a bucket bound the way Prometheus expects
// (shortest decimal; %g is already minimal).
func trimFloat(f float64) string {
	return fmt.Sprintf("%g", f)
}
