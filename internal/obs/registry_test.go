package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("jobs_total") != c {
		t.Fatalf("counter getter not idempotent")
	}
	g := r.Gauge("depth")
	g.Set(3)
	g.Add(-1.5)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter should stay 0")
	}
	g := r.Gauge("y")
	g.Set(1)
	g.Add(1)
	h := r.Histogram("z", DefBucketsSeconds)
	h.Observe(1)
	if h.N() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram should stay empty")
	}
	r.GaugeFunc("f", func() float64 { return 1 })
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot should be nil")
	}
	var o *Obs
	if o.Registry() != nil || o.GetTracer() != nil || o.GetHub() != nil {
		t.Fatal("nil Obs accessors must return nil")
	}
}

func TestCounterLabels(t *testing.T) {
	r := NewRegistry()
	r.Counter("rpc_total", "method", "grid.assign").Add(2)
	r.Counter("rpc_total", "method", "grid.own").Inc()
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE rpc_total counter",
		`rpc_total{method="grid.assign"} 2`,
		`rpc_total{method="grid.own"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// One TYPE line per family, not per labeled child.
	if strings.Count(out, "# TYPE rpc_total") != 1 {
		t.Fatalf("duplicated TYPE line:\n%s", out)
	}
}

func TestHistogramObserveAndExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("wait_seconds", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1.5, 1.6, 4, 100} {
		h.Observe(v)
	}
	if h.N() != 5 {
		t.Fatalf("N = %d, want 5", h.N())
	}
	if math.Abs(h.Sum()-107.6) > 1e-9 {
		t.Fatalf("Sum = %v, want 107.6", h.Sum())
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE wait_seconds histogram",
		`wait_seconds_bucket{le="1"} 1`,
		`wait_seconds_bucket{le="2"} 3`,
		`wait_seconds_bucket{le="5"} 4`,
		`wait_seconds_bucket{le="+Inf"} 5`,
		"wait_seconds_sum 107.6",
		"wait_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{10, 20, 30, 40, 50})
	// Uniform 1..50: quantiles should land near q*50 within one bucket.
	for i := 1; i <= 50; i++ {
		h.Observe(float64(i))
	}
	cases := []struct{ q, want, tol float64 }{
		{0.5, 25, 10},
		{0.9, 45, 10},
		{0.99, 50, 10},
	}
	for _, c := range cases {
		got := h.Quantile(c.q)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("Quantile(%v) = %v, want %v±%v", c.q, got, c.want, c.tol)
		}
	}
	// Tail beyond the last finite bound reports that bound.
	h2 := newHistogram([]float64{1})
	h2.Observe(99)
	if got := h2.Quantile(0.5); got != 1 {
		t.Errorf("overflow quantile = %v, want 1", got)
	}
	var empty *Histogram
	if empty.Quantile(0.5) != 0 {
		t.Error("nil histogram quantile should be 0")
	}
}

func TestGaugeFuncAndSnapshot(t *testing.T) {
	r := NewRegistry()
	depth := 7
	r.GaugeFunc("queue_depth", func() float64 { return float64(depth) })
	r.Counter("c").Add(3)
	h := r.Histogram("lat", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	snap := r.Snapshot()
	got := make(map[string]float64)
	for _, s := range snap {
		got[s.Name] = s.Value
	}
	if got["queue_depth"] != 7 || got["c"] != 3 || got["lat_count"] != 2 {
		t.Fatalf("snapshot wrong: %+v", got)
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name > snap[i].Name {
			t.Fatalf("snapshot not sorted: %q > %q", snap[i-1].Name, snap[i].Name)
		}
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	h := r.Histogram("h", DefBucketsHops)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i % 64))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || h.N() != 8000 {
		t.Fatalf("lost updates: counter=%d hist=%d", c.Value(), h.N())
	}
}
