package obs

import (
	"testing"
	"time"

	"repro/internal/ids"
)

func TestTracerLamportOrdering(t *testing.T) {
	// Three nodes with incomparable clocks; the propagated context must
	// order the lifecycle regardless.
	client, owner, run := NewTracer(), NewTracer(), NewTracer()
	id := ids.HashString("job")

	tc := TC{ID: id}
	tc = client.Record(tc, 5*time.Second, "client:1", "submitted", 0, "", "")
	tc = client.Record(tc, 5*time.Second, "client:1", "injected", 0, "owner:1", "")
	// Owner's clock reads far earlier than the client's.
	tc = owner.Record(tc, 100*time.Millisecond, "owner:1", "owned", 0, "", "")
	tc = owner.Record(tc, 200*time.Millisecond, "owner:1", "matched", 0, "run:1", "")
	tc = run.Record(tc, 9*time.Hour, "run:1", "started", 0, "", "")

	var all []TraceEvent
	for _, tr := range []*Tracer{client, owner, run} {
		evs, _ := tr.Get(id)
		all = append(all, evs...)
	}
	merged := MergeSort(all)
	wantStages := []string{"submitted", "injected", "owned", "matched", "started"}
	if len(merged) != len(wantStages) {
		t.Fatalf("got %d events, want %d", len(merged), len(wantStages))
	}
	for i, ev := range merged {
		if ev.Stage != wantStages[i] {
			t.Fatalf("event %d = %q, want %q (merged order %+v)", i, ev.Stage, wantStages[i], merged)
		}
		if ev.Hop != uint32(i+1) {
			t.Fatalf("event %q hop = %d, want %d", ev.Stage, ev.Hop, i+1)
		}
	}
}

func TestTracerPeersAndContext(t *testing.T) {
	tr := NewTracer()
	id := ids.HashString("j")
	tc := tr.Record(TC{ID: id}, 0, "a:1", "injected", 0, "b:1", "")
	tr.Record(tc, 0, "a:1", "matched", 0, "c:1", "")
	_, peers := tr.Get(id)
	if len(peers) != 2 || peers[0] != "b:1" || peers[1] != "c:1" {
		t.Fatalf("peers = %v, want [b:1 c:1]", peers)
	}
	if got := tr.Context(id); got.Hop != 2 {
		t.Fatalf("Context hop = %d, want 2", got.Hop)
	}
	// Unknown trace: zero-hop context, no events.
	other := ids.HashString("other")
	if got := tr.Context(other); got.Hop != 0 || got.ID != other {
		t.Fatalf("unknown Context = %+v", got)
	}
	if evs, _ := tr.Get(other); evs != nil {
		t.Fatalf("unknown Get = %v, want nil", evs)
	}
}

func TestTracerNilAndZeroContext(t *testing.T) {
	var tr *Tracer
	tc := TC{ID: ids.HashString("x"), Hop: 7}
	if got := tr.Record(tc, 0, "n", "s", 0, "", ""); got != tc {
		t.Fatalf("nil tracer must pass context through, got %+v", got)
	}
	if got := tr.Context(tc.ID); got.ID != tc.ID || got.Hop != 0 {
		t.Fatalf("nil tracer Context = %+v", got)
	}
	live := NewTracer()
	if got := live.Record(TC{}, 0, "n", "s", 0, "", ""); !got.Zero() {
		t.Fatalf("zero context must stay zero, got %+v", got)
	}
	if len(live.Traces()) != 0 {
		t.Fatal("zero context must not create a trace")
	}
}

func TestTracerEviction(t *testing.T) {
	tr := &Tracer{maxTrace: 2, maxEvs: 2, traces: make(map[ids.ID]*traceRec)}
	a, b, c := ids.HashString("a"), ids.HashString("b"), ids.HashString("c")
	tr.Record(TC{ID: a}, 0, "n", "s1", 0, "", "")
	tr.Record(TC{ID: a}, 0, "n", "s2", 0, "", "")
	tr.Record(TC{ID: a}, 0, "n", "s3", 0, "", "") // over maxEvs: dropped
	tr.Record(TC{ID: b}, 0, "n", "s", 0, "", "")
	tr.Record(TC{ID: c}, 0, "n", "s", 0, "", "") // evicts a
	if evs, _ := tr.Get(a); evs != nil {
		t.Fatalf("trace a should be evicted, got %v", evs)
	}
	if evs, _ := tr.Get(b); len(evs) != 1 {
		t.Fatalf("trace b missing: %v", evs)
	}
	if got := tr.Traces(); len(got) != 2 {
		t.Fatalf("retained = %v, want 2 traces", got)
	}
}

func TestEventHubPublishSubscribe(t *testing.T) {
	h := NewEventHub()
	h.Publish(map[string]any{"kind": "backlog"})
	ch, cancel := h.Subscribe(16)
	defer cancel()
	if line := <-ch; string(line) != "{\"kind\":\"backlog\"}\n" {
		t.Fatalf("backlog line = %q", line)
	}
	h.Publish(struct {
		Kind string `json:"kind"`
	}{"live"})
	if line := <-ch; string(line) != "{\"kind\":\"live\"}\n" {
		t.Fatalf("live line = %q", line)
	}
	cancel()
	if _, ok := <-ch; ok {
		t.Fatal("channel should close after cancel")
	}
	// Publishing to a cancelled hub and nil hub must not panic.
	h.Publish("x")
	var nilHub *EventHub
	nilHub.Publish("y")
}
