package obs

import (
	"encoding/json"
	"sync"
)

// EventHub fans structured events out to subscribers as JSON lines —
// the backend of the /events stream. Publishing never blocks: slow
// subscribers drop lines (each subscription counts its drops), so the
// hub can sit on protocol hot paths without back-pressuring them.
type EventHub struct {
	mu      sync.Mutex
	nextID  int
	subs    map[int]*subscription
	backlog [][]byte // ring of recent lines for late subscribers
	head    int
	filled  bool
}

const hubBacklog = 256

type subscription struct {
	ch      chan []byte
	dropped int64
}

// NewEventHub returns an empty hub.
func NewEventHub() *EventHub {
	return &EventHub{subs: make(map[int]*subscription), backlog: make([][]byte, hubBacklog)}
}

// Publish marshals v as one JSON line and delivers it to every
// subscriber. Marshal failures are dropped silently (observability
// must never error into the caller). Nil hubs no-op.
func (h *EventHub) Publish(v any) {
	if h == nil {
		return
	}
	b, err := json.Marshal(v)
	if err != nil {
		return
	}
	b = append(b, '\n')
	h.mu.Lock()
	h.backlog[h.head] = b
	h.head = (h.head + 1) % len(h.backlog)
	if h.head == 0 {
		h.filled = true
	}
	for _, s := range h.subs {
		select {
		case s.ch <- b:
		default:
			s.dropped++
		}
	}
	h.mu.Unlock()
}

// Subscribe registers a consumer. The returned channel first receives
// the retained backlog, then live lines; cancel unregisters and closes
// it. buffer sizes the channel (min 16).
func (h *EventHub) Subscribe(buffer int) (<-chan []byte, func()) {
	if h == nil {
		ch := make(chan []byte)
		close(ch)
		return ch, func() {}
	}
	if buffer < 16 {
		buffer = 16
	}
	h.mu.Lock()
	id := h.nextID
	h.nextID++
	// Backlog replay: oldest first.
	var replay [][]byte
	if h.filled {
		replay = append(replay, h.backlog[h.head:]...)
	}
	replay = append(replay, h.backlog[:h.head]...)
	s := &subscription{ch: make(chan []byte, buffer+len(replay))}
	for _, line := range replay {
		if line != nil {
			s.ch <- line
		}
	}
	h.subs[id] = s
	h.mu.Unlock()

	cancel := func() {
		h.mu.Lock()
		if cur, ok := h.subs[id]; ok && cur == s {
			delete(h.subs, id)
			close(s.ch)
		}
		h.mu.Unlock()
	}
	return s.ch, cancel
}
